#pragma once

#include <cstdint>
#include <string>

#include "telemetry/sinks.hpp"
#include "telemetry/tracer.hpp"

namespace mltcp::runner {

/// Index-keyed Chrome-trace path for one campaign run:
/// `<dir>/<base>.run<index>.trace.json`. Keying by run index (not by worker
/// or completion order) is what lets serial and parallel campaigns produce
/// byte-identical files.
std::string trace_path(const std::string& dir, const std::string& base,
                       std::size_t run_index);

/// Index-keyed path for any other per-run campaign artifact:
/// `<dir>/<base>.run<index>.<ext>` (e.g. per-pattern FCT CDF CSVs). Same
/// keying contract as trace_path: the name depends only on the run index,
/// never on worker identity or completion order.
std::string artifact_path(const std::string& dir, const std::string& base,
                          std::size_t run_index, const std::string& ext);

/// Per-run tracing bundle for campaign bodies: a Tracer streaming to a
/// Chrome-trace JSON file. Construct one inside the run body (each run owns
/// its world), attach it to the run's Simulator, and finish() (or let the
/// destructor) close the file:
///
///   RunTrace trace(trace_path(dir, "fig6", index), Category::kJob |
///                  Category::kFlow | Category::kTcp | Category::kMltcp);
///   trace.attach(sim);
///   ... run ...
///   trace.finish();
class RunTrace {
 public:
  /// Opens the trace file (throws std::runtime_error on failure).
  /// `ring_capacity > 0` additionally enables the flight recorder.
  RunTrace(const std::string& path, std::uint32_t categories,
           std::size_t ring_capacity = 0);
  ~RunTrace();

  RunTrace(const RunTrace&) = delete;
  RunTrace& operator=(const RunTrace&) = delete;

  /// Points `sim` at this bundle's tracer.
  void attach(sim::Simulator& sim) { sim.set_tracer(&tracer_); }

  telemetry::Tracer& tracer() { return tracer_; }
  const telemetry::ChromeTraceSink& sink() const { return sink_; }

  /// Closes the JSON file. Idempotent; also run by the destructor.
  void finish() { sink_.finish(); }

 private:
  telemetry::ChromeTraceSink sink_;
  telemetry::Tracer tracer_;
};

}  // namespace mltcp::runner
