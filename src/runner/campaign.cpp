#include "runner/campaign.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace mltcp::runner {

CampaignOptions options_from_env() {
  CampaignOptions opts;
  if (const char* env = std::getenv("MLTCP_THREADS")) {
    opts.threads = std::atoi(env);
    if (opts.threads < 0) opts.threads = 0;
    return opts;
  }
  if (const char* env = std::getenv("MLTCP_SHARDS")) {
    const int shards = std::atoi(env);
    if (shards > 1) {
      // Each run wants `shards` worker threads of its own: divide the
      // machine between campaign width and within-run width.
      const unsigned hw = std::thread::hardware_concurrency();
      opts.threads = std::max(1, static_cast<int>(hw) / shards);
    }
  }
  return opts;
}

void Report::addf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed > 0) {
    std::string chunk(static_cast<std::size_t>(needed) + 1, '\0');
    std::vsnprintf(chunk.data(), chunk.size(), fmt, args_copy);
    chunk.resize(static_cast<std::size_t>(needed));
    text_ += chunk;
  }
  va_end(args_copy);
}

std::vector<Report> run_and_print(const std::vector<SimSpec>& specs,
                                  const CampaignOptions& opts) {
  std::vector<Report> reports = run_campaign<SimSpec, Report>(
      specs, [](const SimSpec& spec, std::size_t) { return spec.run(spec); },
      opts);
  for (const Report& report : reports) {
    std::fputs(report.text().c_str(), stdout);
  }
  return reports;
}

}  // namespace mltcp::runner
