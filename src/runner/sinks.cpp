#include "runner/sinks.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "sim/trace.hpp"

namespace mltcp::runner {

namespace {

std::string format_double(double value) {
  char buf[64];
  // Same format as sim::CsvWriter so runner-produced CSVs match the
  // hand-written ones byte for byte.
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void write_text(const std::string& path, const std::string& text,
                const char* who) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error(std::string(who) + ": cannot open " + path);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

}  // namespace

// ------------------------------------------------------------------ CsvSink

CsvSink::CsvSink(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvSink::append(std::size_t run_index, std::vector<std::string> row) {
  std::lock_guard<std::mutex> lock(mu_);
  rows_by_run_[run_index].push_back(std::move(row));
}

void CsvSink::append(std::size_t run_index, const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v));
  append(run_index, std::move(cells));
}

std::string CsvSink::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    out += sim::csv_escape(header_[i]);
    out += i + 1 < header_.size() ? "," : "\n";
  }
  for (const auto& [run, rows] : rows_by_run_) {
    for (const auto& row : rows) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        out += sim::csv_escape(row[i]);
        out += i + 1 < row.size() ? "," : "\n";
      }
      if (row.empty()) out += "\n";
    }
  }
  return out;
}

void CsvSink::write(const std::string& path) const {
  write_text(path, serialize(), "CsvSink");
}

std::size_t CsvSink::row_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [run, rows] : rows_by_run_) n += rows.size();
  return n;
}

// ----------------------------------------------------------------- JsonSink

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void JsonSink::put_literal(std::size_t run_index, const std::string& key,
                           std::string literal) {
  std::lock_guard<std::mutex> lock(mu_);
  fields_by_run_[run_index].push_back(Field{key, std::move(literal)});
}

void JsonSink::put(std::size_t run_index, const std::string& key,
                   double value) {
  put_literal(run_index, key, format_double(value));
}

void JsonSink::put(std::size_t run_index, const std::string& key,
                   const std::string& value) {
  put_literal(run_index, key, "\"" + json_escape(value) + "\"");
}

std::string JsonSink::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[\n";
  bool first_run = true;
  for (const auto& [run, fields] : fields_by_run_) {
    if (!first_run) out += ",\n";
    first_run = false;
    out += "  {\"run\": " + std::to_string(run);
    for (const Field& f : fields) {
      out += ", \"" + json_escape(f.key) + "\": " + f.literal;
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

void JsonSink::write(const std::string& path) const {
  write_text(path, serialize(), "JsonSink");
}

}  // namespace mltcp::runner
