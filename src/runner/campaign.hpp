#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runner/thread_pool.hpp"

namespace mltcp::runner {

/// How a campaign is executed. threads == 0 picks the hardware concurrency;
/// threads == 1 is the serial reference execution. Because results are
/// always keyed by spec index, every thread count produces byte-identical
/// aggregated output — the count only changes wall-clock time.
struct CampaignOptions {
  int threads = 0;
};

/// Reads the MLTCP_THREADS environment variable (0 or unset = hardware
/// concurrency) so any campaign binary can be forced serial or to a fixed
/// parallelism without a rebuild.
///
/// Thread budgeting with sharded runs: when MLTCP_SHARDS asks each run for
/// N > 1 worker threads and MLTCP_THREADS is unset, the campaign's width
/// defaults to max(1, hardware / N) instead of the full hardware
/// concurrency, so campaign parallelism x within-run parallelism stays at
/// (not above) the machine. An explicit MLTCP_THREADS always wins.
CampaignOptions options_from_env();

/// printf-style text accumulator. Campaign bodies run concurrently, so they
/// must not write to stdout directly; they build a Report instead and the
/// campaign prints the reports in spec order once everything has finished —
/// making parallel terminal output byte-identical to a serial run.
class Report {
 public:
  void addf(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 2, 3)))
#endif
      ;
  void add(const std::string& text) { text_ += text; }

  const std::string& text() const { return text_; }
  bool empty() const { return text_.empty(); }

 private:
  std::string text_;
};

/// Runs body(specs[i], i) for every spec across the pool and returns the
/// results in spec order, regardless of completion order. The generic core:
/// each bench defines its own Spec/Result types (a Spec must be
/// self-contained — config + seed, no pointers into shared mutable state,
/// because bodies execute on different threads).
template <typename Spec, typename Result>
std::vector<Result> run_campaign(
    const std::vector<Spec>& specs,
    const std::function<Result(const Spec&, std::size_t)>& body,
    const CampaignOptions& opts = {}) {
  std::vector<std::optional<Result>> slots(specs.size());
  WorkStealingPool pool(opts.threads);
  pool.run(specs.size(), [&](std::size_t i) { slots[i] = body(specs[i], i); });
  std::vector<Result> ordered;
  ordered.reserve(specs.size());
  for (std::optional<Result>& slot : slots) {
    ordered.push_back(std::move(*slot));
  }
  return ordered;
}

/// One self-contained simulation run of a campaign: a label for reports,
/// a seed for whatever randomness the body wants, and the body itself,
/// which owns its entire world (Simulator, topology, workload) and returns
/// its text report. Used by benches whose per-run result is "what to print".
struct SimSpec {
  std::string name;
  std::uint64_t seed = 1;
  std::function<Report(const SimSpec&)> run;
};

/// Executes the specs across the pool and prints each report to stdout in
/// spec order. Returns the reports (also in spec order).
std::vector<Report> run_and_print(const std::vector<SimSpec>& specs,
                                  const CampaignOptions& opts = {});

}  // namespace mltcp::runner
