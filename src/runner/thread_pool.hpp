#pragma once

#include <cstddef>
#include <functional>

namespace mltcp::runner {

/// Work-stealing executor for batches of independent, index-addressed tasks.
///
/// Tasks are dealt round-robin onto per-worker deques; each worker pops from
/// the front of its own deque and, when that runs dry, steals from the back
/// of a victim's. Stealing from the opposite end keeps contention low and
/// tends to hand thieves the large-granularity tail of a batch, which is
/// exactly what a campaign of unevenly sized simulation runs needs.
///
/// The pool is ephemeral: run() spawns its workers, blocks until every task
/// has executed, and joins them. A campaign is seconds-to-minutes of work,
/// so thread start-up cost is noise and there is no idle-pool lifetime to
/// manage.
class WorkStealingPool {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit WorkStealingPool(int threads = 0);

  int thread_count() const { return threads_; }

  /// Runs fn(0) .. fn(count - 1), each exactly once, across the pool's
  /// threads; blocks until all have finished. With one thread (or one task)
  /// everything runs inline on the caller, in index order — the serial
  /// reference path. If any task throws, the remaining tasks still run and
  /// the first exception (by worker discovery order) is rethrown.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  int threads_;
};

}  // namespace mltcp::runner
