#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mltcp::runner {

/// Thread-safe CSV aggregation for a campaign. Worker threads append rows
/// tagged with their run index in whatever order they finish; the sink
/// stores them keyed by (run_index, insertion order within that run) and
/// serializes in key order, so the emitted file is byte-identical to a
/// serial execution no matter how the campaign was scheduled.
class CsvSink {
 public:
  explicit CsvSink(std::vector<std::string> header);

  /// Thread-safe. Rows of the same run keep their append order; rows of
  /// different runs are ordered by run index at write time.
  void append(std::size_t run_index, std::vector<std::string> row);
  void append(std::size_t run_index, const std::vector<double>& row);

  /// Header plus all rows in deterministic order, as CSV text.
  std::string serialize() const;

  /// serialize() to `path`. Throws std::runtime_error if the file cannot
  /// be opened.
  void write(const std::string& path) const;

  std::size_t row_count() const;

 private:
  std::vector<std::string> header_;
  mutable std::mutex mu_;
  std::map<std::size_t, std::vector<std::vector<std::string>>> rows_by_run_;
};

/// Thread-safe JSON aggregation: one object per run, emitted as an array
/// ordered by run index. Values are numbers or strings; key order within an
/// object is the per-run insertion order, so serial and parallel campaigns
/// serialize identically.
class JsonSink {
 public:
  void put(std::size_t run_index, const std::string& key, double value);
  void put(std::size_t run_index, const std::string& key,
           const std::string& value);

  std::string serialize() const;
  void write(const std::string& path) const;

 private:
  struct Field {
    std::string key;
    std::string literal;  ///< pre-rendered JSON value
  };

  void put_literal(std::size_t run_index, const std::string& key,
                   std::string literal);

  mutable std::mutex mu_;
  std::map<std::size_t, std::vector<Field>> fields_by_run_;
};

}  // namespace mltcp::runner
