#include "runner/thread_pool.hpp"

#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mltcp::runner {

namespace {

/// One worker's task queue. A plain mutex per deque is plenty here: tasks
/// are whole simulation runs (milliseconds to seconds), so lock traffic is
/// a few acquisitions per run, not per packet.
struct WorkerDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;

  bool pop_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    out = tasks.front();
    tasks.pop_front();
    return true;
  }

  bool steal_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    out = tasks.back();
    tasks.pop_back();
    return true;
  }
};

}  // namespace

WorkStealingPool::WorkStealingPool(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

void WorkStealingPool::run(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threads_), count));
  if (workers <= 1) {
    // Same contract as the threaded path: a throwing task does not abandon
    // the rest of the batch; the first exception surfaces at the end.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  std::vector<WorkerDeque> deques(static_cast<std::size_t>(workers));
  // Round-robin deal: worker w starts with tasks w, w+workers, w+2*workers...
  // so every worker owns a slice spread across the whole index range.
  for (std::size_t i = 0; i < count; ++i) {
    deques[i % static_cast<std::size_t>(workers)].tasks.push_back(i);
  }

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker_loop = [&](int me) {
    std::size_t task = 0;
    for (;;) {
      bool found = deques[static_cast<std::size_t>(me)].pop_front(task);
      // Own deque empty: sweep the victims once; if every deque is dry the
      // batch is finished (tasks are never re-queued).
      for (int off = 1; !found && off < workers; ++off) {
        found = deques[static_cast<std::size_t>((me + off) % workers)]
                    .steal_back(task);
      }
      if (!found) return;
      try {
        fn(task);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mltcp::runner
