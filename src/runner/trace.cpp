#include "runner/trace.hpp"

namespace mltcp::runner {

std::string trace_path(const std::string& dir, const std::string& base,
                       std::size_t run_index) {
  return dir + "/" + base + ".run" + std::to_string(run_index) +
         ".trace.json";
}

std::string artifact_path(const std::string& dir, const std::string& base,
                          std::size_t run_index, const std::string& ext) {
  return dir + "/" + base + ".run" + std::to_string(run_index) + "." + ext;
}

RunTrace::RunTrace(const std::string& path, std::uint32_t categories,
                   std::size_t ring_capacity)
    : sink_(path),
      tracer_(telemetry::Tracer::Config{categories, ring_capacity}) {
  tracer_.add_sink(&sink_);
}

RunTrace::~RunTrace() { finish(); }

}  // namespace mltcp::runner
