#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace mltcp::sched {

/// The centralized scheduler's view of one periodic job: it communicates for
/// `comm_time` out of every `period` (at full bottleneck rate), the §4
/// abstraction that Cassini's geometric formulation also uses.
struct PeriodicDemand {
  std::string name;
  sim::SimTime period = 0;
  sim::SimTime comm_time = 0;
};

/// A centralized schedule: one start-time offset per job.
struct Schedule {
  std::vector<sim::SimTime> offsets;
  /// Total "excess" time-bandwidth on the hyperperiod: the integral of
  /// max(0, concurrent_comms - 1). Zero means fully interleaved.
  sim::SimTime excess = 0;
  sim::SimTime hyperperiod = 0;
};

/// Least common multiple of the job periods, saturating at
/// `max_multiple * max(period)` (the optimizer then works on a truncated
/// horizon, which is exact whenever the LCM fits).
sim::SimTime hyperperiod_of(const std::vector<PeriodicDemand>& jobs,
                            int max_multiple = 512);

/// Exact sweep-line evaluation of the excess overlap of `offsets` over one
/// hyperperiod (intervals wrap around the circle).
sim::SimTime evaluate_excess(const std::vector<PeriodicDemand>& jobs,
                             const std::vector<sim::SimTime>& offsets,
                             sim::SimTime hyperperiod);

/// Cassini-like centralized optimizer. The paper's reference point solves an
/// ILP; on the single-bottleneck scenarios evaluated here, randomized
/// coordinate descent over the offset circle with event-aligned candidate
/// offsets finds the same (zero-excess) optima while staying dependency-free.
struct CentralizedConfig {
  int restarts = 8;
  int max_rounds = 64;           ///< Coordinate-descent sweeps per restart.
  int extra_grid_candidates = 64;///< Uniform grid candidates per job scan.
  std::uint64_t seed = 42;
};

Schedule optimize_interleaving(const std::vector<PeriodicDemand>& jobs,
                               const CentralizedConfig& cfg = {});

/// True when a zero-excess (fully interleaved) schedule exists and was found.
bool is_interleavable(const std::vector<PeriodicDemand>& jobs,
                      const CentralizedConfig& cfg = {});

/// One job's timing as achievable on the wire: its nominal period (the
/// profile's ideal iteration time), the wire-level duration of its
/// communication phase (payload inflated by header overhead) and its compute
/// time.
struct JobTiming {
  sim::SimTime nominal_period = 0;
  sim::SimTime wire_comm = 0;
  sim::SimTime compute = 0;
};

/// Period harmonization (Cassini's job-compatibility alignment): a strictly
/// periodic interleaved schedule only exists when the jobs' achieved periods
/// keep their nominal ratios (e.g. exactly 2:3). Every period is scaled by
/// the smallest common factor lambda = max_j (wire_comm_j + compute_j) /
/// nominal_period_j, and the returned per-job compute pad makes job j's
/// natural period equal lambda * nominal_period_j. Pads are a few
/// milliseconds in practice.
std::vector<sim::SimTime> harmonize_compute_pads(
    const std::vector<JobTiming>& jobs);

}  // namespace mltcp::sched
