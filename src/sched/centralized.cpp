#include "sched/centralized.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mltcp::sched {

namespace {

sim::SimTime gcd64(sim::SimTime a, sim::SimTime b) {
  while (b != 0) {
    const sim::SimTime t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Event-list evaluation shared by evaluate_excess and the optimizer.
struct Event {
  sim::SimTime t;
  int delta;
  bool operator<(const Event& other) const {
    if (t != other.t) return t < other.t;
    return delta < other.delta;  // process -1 before +1 at equal times
  }
};

}  // namespace

sim::SimTime hyperperiod_of(const std::vector<PeriodicDemand>& jobs,
                            int max_multiple) {
  assert(!jobs.empty());
  sim::SimTime h = jobs.front().period;
  sim::SimTime cap = 0;
  for (const auto& j : jobs) cap = std::max(cap, j.period);
  cap *= max_multiple;
  for (const auto& j : jobs) {
    assert(j.period > 0 && j.comm_time >= 0 && j.comm_time <= j.period);
    const sim::SimTime g = gcd64(h, j.period);
    const sim::SimTime lcm = h / g * j.period;
    h = std::min(lcm, cap);
  }
  return h;
}

sim::SimTime evaluate_excess(const std::vector<PeriodicDemand>& jobs,
                             const std::vector<sim::SimTime>& offsets,
                             sim::SimTime hyperperiod) {
  assert(jobs.size() == offsets.size());
  std::vector<Event> events;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& job = jobs[j];
    if (job.comm_time <= 0) continue;
    for (sim::SimTime k = 0; k * job.period < hyperperiod; ++k) {
      sim::SimTime s = (offsets[j] + k * job.period) % hyperperiod;
      if (s < 0) s += hyperperiod;
      sim::SimTime e = s + job.comm_time;
      if (e <= hyperperiod) {
        events.push_back({s, +1});
        events.push_back({e, -1});
      } else {  // wraps around the circle
        events.push_back({s, +1});
        events.push_back({hyperperiod, -1});
        events.push_back({0, +1});
        events.push_back({e - hyperperiod, -1});
      }
    }
  }
  std::sort(events.begin(), events.end());

  sim::SimTime excess = 0;
  int active = 0;
  sim::SimTime prev = 0;
  for (const auto& ev : events) {
    if (active > 1) excess += static_cast<sim::SimTime>(active - 1) *
                              (ev.t - prev);
    active += ev.delta;
    prev = ev.t;
  }
  return excess;
}

Schedule optimize_interleaving(const std::vector<PeriodicDemand>& jobs,
                               const CentralizedConfig& cfg) {
  assert(!jobs.empty());
  const sim::SimTime h = hyperperiod_of(jobs);
  sim::Rng rng(cfg.seed);

  Schedule best;
  best.hyperperiod = h;
  best.offsets.assign(jobs.size(), 0);
  best.excess = evaluate_excess(jobs, best.offsets, h);

  for (int restart = 0; restart < cfg.restarts && best.excess > 0;
       ++restart) {
    std::vector<sim::SimTime> offsets(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      offsets[j] = restart == 0
                       ? 0
                       : rng.uniform_int(0, jobs[j].period - 1);
    }
    sim::SimTime cur = evaluate_excess(jobs, offsets, h);

    for (int round = 0; round < cfg.max_rounds && cur > 0; ++round) {
      bool improved = false;
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        // Candidate offsets: right after any other job's communication ends
        // (the tight packings all have this form), plus a uniform grid.
        std::vector<sim::SimTime> candidates;
        for (std::size_t o = 0; o < jobs.size(); ++o) {
          if (o == j) continue;
          for (sim::SimTime k = 0; k * jobs[o].period < h; ++k) {
            const sim::SimTime end =
                (offsets[o] + k * jobs[o].period + jobs[o].comm_time) % h;
            candidates.push_back(end % jobs[j].period);
          }
        }
        const int grid = std::max(cfg.extra_grid_candidates, 1);
        for (int g = 0; g < grid; ++g) {
          candidates.push_back(jobs[j].period * g / grid);
        }

        sim::SimTime best_off = offsets[j];
        sim::SimTime best_val = cur;
        for (const sim::SimTime cand : candidates) {
          const sim::SimTime saved = offsets[j];
          offsets[j] = cand;
          const sim::SimTime val = evaluate_excess(jobs, offsets, h);
          if (val < best_val) {
            best_val = val;
            best_off = cand;
          }
          offsets[j] = saved;
        }
        if (best_val < cur) {
          offsets[j] = best_off;
          cur = best_val;
          improved = true;
        }
      }
      if (!improved) break;
    }

    if (cur < best.excess) {
      best.excess = cur;
      best.offsets = offsets;
    }
  }
  return best;
}

bool is_interleavable(const std::vector<PeriodicDemand>& jobs,
                      const CentralizedConfig& cfg) {
  return optimize_interleaving(jobs, cfg).excess == 0;
}

std::vector<sim::SimTime> harmonize_compute_pads(
    const std::vector<JobTiming>& jobs) {
  double lambda = 1.0;
  for (const auto& j : jobs) {
    assert(j.nominal_period > 0);
    const double natural =
        static_cast<double>(j.wire_comm + j.compute) /
        static_cast<double>(j.nominal_period);
    lambda = std::max(lambda, natural);
  }
  std::vector<sim::SimTime> pads;
  pads.reserve(jobs.size());
  for (const auto& j : jobs) {
    const auto target = static_cast<sim::SimTime>(
        lambda * static_cast<double>(j.nominal_period) + 0.5);
    pads.push_back(target - (j.wire_comm + j.compute));
  }
  return pads;
}

}  // namespace mltcp::sched
