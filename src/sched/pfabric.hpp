#pragma once

#include <memory>

#include "tcp/cong_control.hpp"

namespace mltcp::sched {

/// pFabric end-host transport (Alizadeh et al., SIGCOMM'13), simplified per
/// the original design: flows start at (near) line rate with a fixed window
/// sized to the bandwidth-delay product, do not back off on loss (the
/// priority-dropping fabric handles contention), and rely on timeouts to
/// recover. Scheduling lives in the switches: data packets carry the flow's
/// remaining bytes as priority (enable SenderConfig::pfabric_priority) and
/// bottleneck queues run PfabricPriorityQueue.
struct PfabricConfig {
  double window_segments = 64.0;  ///< ~BDP plus headroom.
};

class PfabricCC : public tcp::CongestionControl {
 public:
  explicit PfabricCC(PfabricConfig cfg = {})
      : tcp::CongestionControl(nullptr), cfg_(cfg) {}

  void on_ack(const tcp::AckContext& ctx) override { gain_->on_ack(ctx); }
  void on_loss(sim::SimTime /*now*/) override {}
  void on_timeout(sim::SimTime /*now*/) override {}

  double cwnd() const override { return cfg_.window_segments; }
  double ssthresh() const override { return cfg_.window_segments; }
  std::string name() const override { return "pfabric"; }

 private:
  PfabricConfig cfg_;
};

inline tcp::CcFactory pfabric_factory(PfabricConfig cfg = {}) {
  return [cfg] { return std::make_unique<PfabricCC>(cfg); };
}

}  // namespace mltcp::sched
