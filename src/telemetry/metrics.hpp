#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace mltcp::telemetry {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-written floating-point metric.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution metric. Stores its observations (intended for end-of-run
/// aggregation — iteration times, per-flow totals — not per-packet rates),
/// so percentiles are exact.
class Histogram {
 public:
  void observe(double v);

  std::size_t count() const { return values_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  /// Exact quantile by nearest-rank; q in [0, 1]. 0 on an empty histogram.
  double quantile(double q) const;

 private:
  std::vector<double> values_;
};

/// Hierarchically named metrics for one run. Names are slash-separated
/// paths ("tcp/flow3/retransmissions", "net/bottleneck/drops"); the
/// find-or-create accessors make call sites one-liners and the snapshot is
/// sorted by name so every export is deterministic.
///
/// Not thread-safe: one registry per run, like the Tracer.
class MetricRegistry {
 public:
  /// Find-or-create. Throws std::logic_error if `name` already names a
  /// metric of a different kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  bool contains(const std::string& name) const {
    return metrics_.count(name) > 0;
  }
  std::size_t size() const { return metrics_.size(); }

  /// One exported value. Histograms expand into `.count`, `.min`, `.mean`,
  /// `.p50`, `.p99`, `.max` rows.
  struct Sample {
    std::string name;
    double value = 0.0;
  };

  /// Every metric flattened to (name, value), sorted by name.
  std::vector<Sample> snapshot() const;

  /// Aligned two-column text table of snapshot(), for end-of-run reports.
  std::string table() const;

  /// snapshot() as a `metric,value` CSV file (RFC 4180 quoting).
  void write_csv(const std::string& path) const;

 private:
  using Metric = std::variant<Counter, Gauge, Histogram>;
  std::map<std::string, Metric> metrics_;
};

}  // namespace mltcp::telemetry
