#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mltcp::telemetry {

/// Event categories, one bit each, so a Tracer can enable exactly the
/// subsystems an experiment cares about. Disabled categories cost one
/// pointer load and one mask test at the emission site.
enum class Category : std::uint32_t {
  kTcp = 1u << 0,     ///< Loss events: RTO, fast retransmit, recovery.
  kTcpAck = 1u << 1,  ///< Per-ACK window updates (very hot; off by default).
  kQueue = 1u << 2,   ///< Queue drops and ECN marks.
  kMltcp = 1u << 3,   ///< Gain updates, bytes_ratio milestones (Algorithm 1).
  kJob = 1u << 4,     ///< Training-job phase and iteration boundaries.
  kFlow = 1u << 5,    ///< FlowMonitor cwnd/gain counter samples.
  kLink = 1u << 6,    ///< Link-level transmission events.
  kCustom = 1u << 7,  ///< Experiment-defined events.
  kFault = 1u << 8,   ///< Scenario engine: applied faults and churn events.
  kTraffic = 1u << 9, ///< Traffic generator: arrivals and completions.
  kFlowsim = 1u << 10, ///< Flow-level backend: rate recomputation events.
};

constexpr std::uint32_t category_bit(Category c) {
  return static_cast<std::uint32_t>(c);
}
constexpr std::uint32_t operator|(Category a, Category b) {
  return category_bit(a) | category_bit(b);
}
constexpr std::uint32_t operator|(std::uint32_t a, Category b) {
  return a | category_bit(b);
}

inline constexpr std::uint32_t kAllCategories = 0xffffffffu;

/// How an event renders on a timeline (mirrors the Chrome trace phases).
enum class EventType : std::uint8_t {
  kInstant,  ///< A point in time (a drop, an RTO).
  kBegin,    ///< Opens a slice on the event's track.
  kEnd,      ///< Closes the most recent slice on the event's track.
  kCounter,  ///< A sampled numeric value (cwnd, gain, bytes_ratio).
};

/// One structured trace event. Plain value type sized for the flight
/// recorder's ring buffer: names are pointers to string literals (or other
/// storage outliving the Tracer), never owned strings.
struct TraceEvent {
  sim::SimTime when = 0;
  Category category = Category::kCustom;
  EventType type = EventType::kInstant;
  const char* name = "";    ///< Static string: event or counter name.
  std::uint64_t track = 0;  ///< Timeline the event belongs to (see track_*).
  /// Up to two numeric arguments with static names; unused when nullptr.
  const char* v0_name = nullptr;
  double v0 = 0.0;
  const char* v1_name = nullptr;
  double v1 = 0.0;
};

/// Track-id namespaces so flows, jobs and links render as distinct process
/// groups in a Chrome trace instead of colliding on raw ids.
constexpr std::uint64_t track_flow(std::int64_t flow_id) {
  return static_cast<std::uint64_t>(flow_id);
}
constexpr std::uint64_t track_job(std::uint64_t job_ordinal) {
  return 1'000'000 + job_ordinal;
}
constexpr std::uint64_t track_link(std::uint64_t link_ordinal) {
  return 2'000'000 + link_ordinal;
}
/// Keyed by the switch's NodeId (dense, assigned by the topology) rather
/// than a trace ordinal, so giving a switch a track does not shift the
/// construction-order ordinals links rely on.
constexpr std::uint64_t track_switch(std::int64_t node_id) {
  return 3'000'000 + static_cast<std::uint64_t>(node_id);
}
/// Single shared track for the scenario engine's applied-fault instants, so
/// a run's fault timeline renders as one row above the per-entity tracks.
constexpr std::uint64_t track_scenario() { return 4'000'000; }

/// Single shared track for traffic-generator arrival/completion instants —
/// background-flow churn renders as one row, like the scenario timeline.
constexpr std::uint64_t track_traffic() { return 4'000'001; }

/// Single shared track for the flow-level backend's allocation events (one
/// counter row of active flows / water-filling rounds per recompute).
constexpr std::uint64_t track_flowsim() { return 4'000'002; }

}  // namespace mltcp::telemetry
