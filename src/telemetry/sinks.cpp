#include "telemetry/sinks.hpp"

#include <cinttypes>
#include <stdexcept>

#include "sim/trace.hpp"

namespace mltcp::telemetry {

namespace {

const char* type_name(EventType t) {
  switch (t) {
    case EventType::kInstant: return "instant";
    case EventType::kBegin: return "begin";
    case EventType::kEnd: return "end";
    case EventType::kCounter: return "counter";
  }
  return "?";
}

const char* category_name(Category c) {
  switch (c) {
    case Category::kTcp: return "tcp";
    case Category::kTcpAck: return "tcp_ack";
    case Category::kQueue: return "queue";
    case Category::kMltcp: return "mltcp";
    case Category::kJob: return "job";
    case Category::kFlow: return "flow";
    case Category::kLink: return "link";
    case Category::kCustom: return "custom";
    case Category::kFault: return "fault";
    case Category::kTraffic: return "traffic";
    case Category::kFlowsim: return "flowsim";
  }
  return "?";
}

std::string json_string(const char* s) {
  std::string out = "\"";
  for (const char* p = s; p != nullptr && *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
  out += '"';
  return out;
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Microsecond timestamp for the Chrome format; sim time is integer ns, so
/// three decimals render it exactly and deterministically.
std::string format_ts(sim::SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t) / 1000.0);
  return buf;
}

}  // namespace

// -------------------------------------------------------------- InMemorySink

std::vector<TraceEvent> InMemorySink::named(const std::string& name) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_) {
    if (name == ev.name) out.push_back(ev);
  }
  return out;
}

std::size_t InMemorySink::count(const std::string& name) const {
  std::size_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (name == ev.name) ++n;
  }
  return n;
}

// -------------------------------------------------------------- CsvTraceSink

CsvTraceSink::CsvTraceSink(const std::string& path)
    : csv_(std::make_unique<sim::CsvWriter>(
          path, std::vector<std::string>{"time_s", "category", "type", "name",
                                         "track", "v0_name", "v0", "v1_name",
                                         "v1"})) {}

CsvTraceSink::~CsvTraceSink() = default;

void CsvTraceSink::on_event(const TraceEvent& ev) {
  if (csv_ == nullptr) return;
  char time_buf[64];
  std::snprintf(time_buf, sizeof(time_buf), "%.9f", sim::to_seconds(ev.when));
  csv_->row(std::vector<std::string>{
      time_buf, category_name(ev.category), type_name(ev.type), ev.name,
      std::to_string(ev.track), ev.v0_name != nullptr ? ev.v0_name : "",
      ev.v0_name != nullptr ? format_value(ev.v0) : "",
      ev.v1_name != nullptr ? ev.v1_name : "",
      ev.v1_name != nullptr ? format_value(ev.v1) : ""});
}

void CsvTraceSink::finish() { csv_.reset(); }

// ----------------------------------------------------------- ChromeTraceSink

std::string track_name(std::uint64_t track) {
  if (track >= 2'000'000) {
    return "link " + std::to_string(track - 2'000'000);
  }
  if (track >= 1'000'000) {
    return "job " + std::to_string(track - 1'000'000);
  }
  return "flow " + std::to_string(track);
}

ChromeTraceSink::ChromeTraceSink(const std::string& path) {
  f_ = std::fopen(path.c_str(), "w");
  if (f_ == nullptr) {
    throw std::runtime_error("ChromeTraceSink: cannot open " + path);
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f_);
}

ChromeTraceSink::~ChromeTraceSink() { finish(); }

void ChromeTraceSink::write_record(const std::string& json) {
  if (any_) std::fputs(",\n", f_);
  any_ = true;
  std::fputs(json.c_str(), f_);
}

void ChromeTraceSink::ensure_track_metadata(std::uint64_t track) {
  if (!known_tracks_.insert(track).second) return;
  write_record("{\"ph\":\"M\",\"pid\":" + std::to_string(track) +
               ",\"name\":\"process_name\",\"args\":{\"name\":" +
               json_string(track_name(track).c_str()) + "}}");
}

void ChromeTraceSink::on_event(const TraceEvent& ev) {
  if (f_ == nullptr) return;
  ensure_track_metadata(ev.track);

  std::string rec = "{\"ph\":\"";
  switch (ev.type) {
    case EventType::kInstant: rec += 'i'; break;
    case EventType::kBegin: rec += 'B'; break;
    case EventType::kEnd: rec += 'E'; break;
    case EventType::kCounter: rec += 'C'; break;
  }
  rec += "\",\"pid\":" + std::to_string(ev.track) + ",\"tid\":0,\"ts\":" +
         format_ts(ev.when) + ",\"name\":" + json_string(ev.name) +
         ",\"cat\":" + json_string(category_name(ev.category));
  if (ev.type == EventType::kInstant) {
    rec += ",\"s\":\"p\"";  // process-scoped marker
  }
  if (ev.v0_name != nullptr || ev.v1_name != nullptr) {
    rec += ",\"args\":{";
    if (ev.v0_name != nullptr) {
      rec += json_string(ev.v0_name) + ":" + format_value(ev.v0);
    }
    if (ev.v1_name != nullptr) {
      if (ev.v0_name != nullptr) rec += ",";
      rec += json_string(ev.v1_name) + ":" + format_value(ev.v1);
    }
    rec += "}";
  }
  rec += "}";
  write_record(rec);
  ++written_;
}

void ChromeTraceSink::finish() {
  if (f_ == nullptr) return;
  std::fputs("\n]}\n", f_);
  std::fclose(f_);
  f_ = nullptr;
}

}  // namespace mltcp::telemetry
