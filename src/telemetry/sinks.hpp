#pragma once

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "telemetry/trace_event.hpp"

namespace mltcp::sim {
class CsvWriter;
}

namespace mltcp::telemetry {

/// Destination for a stream of TraceEvents. Sinks receive every enabled
/// event as it is emitted (or a ring dump, oldest first) and are finished
/// exactly once.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
  /// Flushes/closes the sink's output. Idempotent.
  virtual void finish() {}
};

/// Collects events in memory — the sink tests and assertions use.
class InMemorySink : public TraceSink {
 public:
  void on_event(const TraceEvent& ev) override { events_.push_back(ev); }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events with the given name, in emission order.
  std::vector<TraceEvent> named(const std::string& name) const;
  std::size_t count(const std::string& name) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Streams events as CSV rows (one row per event, RFC 4180 quoting via
/// sim::CsvWriter). Columns: time_s, category, type, name, track, v0_name,
/// v0, v1_name, v1.
class CsvTraceSink : public TraceSink {
 public:
  explicit CsvTraceSink(const std::string& path);
  ~CsvTraceSink() override;

  void on_event(const TraceEvent& ev) override;
  void finish() override;

 private:
  std::unique_ptr<sim::CsvWriter> csv_;
};

/// Streams events in the Chrome trace-event JSON format, loadable directly
/// in ui.perfetto.dev (or chrome://tracing): counters become counter tracks,
/// begin/end pairs become slices, instants become markers. Each telemetry
/// track renders as its own named process ("flow 3", "job 1", ...).
class ChromeTraceSink : public TraceSink {
 public:
  /// Opens `path` for writing. Throws std::runtime_error on failure.
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  ChromeTraceSink(const ChromeTraceSink&) = delete;
  ChromeTraceSink& operator=(const ChromeTraceSink&) = delete;

  void on_event(const TraceEvent& ev) override;
  /// Writes the closing bracket and closes the file. Idempotent.
  void finish() override;

  std::uint64_t events_written() const { return written_; }

 private:
  void write_record(const std::string& json);
  void ensure_track_metadata(std::uint64_t track);

  std::FILE* f_ = nullptr;
  bool any_ = false;
  std::uint64_t written_ = 0;
  std::set<std::uint64_t> known_tracks_;
};

/// Human-readable name of a telemetry track id ("flow 3", "job 0", ...).
std::string track_name(std::uint64_t track);

}  // namespace mltcp::telemetry
