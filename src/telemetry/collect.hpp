#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace mltcp::net {
class QueueDiscipline;
class Link;
class Switch;
class Host;
}  // namespace mltcp::net
namespace mltcp::tcp {
class TcpSender;
}
namespace mltcp::workload {
class Job;
class Cluster;
}  // namespace mltcp::workload
namespace mltcp::flowsim {
struct FlowSimStats;
}

namespace mltcp::telemetry {

/// Absorbers for the per-component stats structs scattered across the
/// codebase (SenderStats, QueueStats, Switch::routeless_drops, ...): each
/// call copies one component's end-of-run totals into the registry under
/// `prefix`. Call once per component when the run finishes, then snapshot or
/// print the registry — the one consolidated view of a run.

/// tcp: <prefix>/{data_packets_sent,retransmissions,fast_retransmits,
/// timeouts,rtt_karn_skipped,segments_acked,messages_completed,cwnd,srtt_us}
void collect_sender(MetricRegistry& reg, const std::string& prefix,
                    const tcp::TcpSender& sender);

/// net: <prefix>/{enqueued,drops,ecn_marks,max_backlog_bytes}
void collect_queue(MetricRegistry& reg, const std::string& prefix,
                   const net::QueueDiscipline& queue);

/// net: <prefix>/{bytes_tx,packets_tx} plus the egress queue's counters.
void collect_link(MetricRegistry& reg, const std::string& prefix,
                  const net::Link& link);

/// net: <prefix>/{forwarded,routeless_drops}
void collect_switch(MetricRegistry& reg, const std::string& prefix,
                    const net::Switch& sw);

/// net: <prefix>/{delivered,unclaimed}
void collect_host(MetricRegistry& reg, const std::string& prefix,
                  const net::Host& host);

/// workload: <prefix>/iterations counter plus <prefix>/iter_time_s and
/// <prefix>/comm_time_s histograms over the job's completed iterations.
void collect_job(MetricRegistry& reg, const std::string& prefix,
                 const workload::Job& job);

/// Every job of the cluster (under <prefix>/job/<name>) and every flow's
/// sender (under <prefix>/flow/<id>).
void collect_cluster(MetricRegistry& reg, const std::string& prefix,
                     const workload::Cluster& cluster);

/// flowsim: <prefix>/{recomputes,full_recomputes,waterfill_rounds,
/// waterfill_channels,frozen_skips,dirty_links,heap_updates,
/// messages_posted,messages_completed,reroutes,stalls} — the flow-level
/// backend's solver counters, so an algorithmic regression (e.g. a silent
/// fall-back to full recomputes) is visible in the consolidated registry,
/// not just in wall time.
void collect_flowsim(MetricRegistry& reg, const std::string& prefix,
                     const flowsim::FlowSimStats& stats);

}  // namespace mltcp::telemetry
