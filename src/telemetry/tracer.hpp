#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/trace_event.hpp"

namespace mltcp::telemetry {

class TraceSink;

/// Structured event tracer for one simulation. Attach it to a Simulator
/// (`sim.set_tracer(&tracer)`) and instrumented components emit TraceEvents
/// through it; a null tracer or a disabled category costs one pointer load
/// and one mask test at the emission site (see tracer_for()).
///
/// Two retention modes, combinable:
///  - streaming: every enabled event is forwarded to the attached sinks;
///  - flight recorder: with `ring_capacity > 0` the last N events are kept
///    in a bounded ring buffer that can be dumped on an anomaly (an RTO
///    burst, a divergent run) — the black-box view of *why* a run went bad.
///
/// Not thread-safe: a Tracer belongs to exactly one Simulator, and campaign
/// runs each own their world (simulator + tracer + sinks), which is what
/// keeps per-run trace files byte-identical between serial and parallel
/// execution.
class Tracer {
 public:
  struct Config {
    /// Bitmask of enabled categories (see Category / operator|).
    std::uint32_t categories = 0;
    /// Flight-recorder capacity in events; 0 disables the ring.
    std::size_t ring_capacity = 0;
  };

  Tracer() = default;
  explicit Tracer(Config cfg);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool wants(Category c) const {
    return (categories_ & category_bit(c)) != 0;
  }
  std::uint32_t categories() const { return categories_; }
  void set_categories(std::uint32_t mask) { categories_ = mask; }

  /// Registers a sink (not owned; must outlive the tracer's last emit).
  void add_sink(TraceSink* sink);

  /// Records one event. Callers are expected to gate on wants()/tracer_for()
  /// first; emit() itself does not re-check the category.
  void emit(const TraceEvent& ev);

  /// Convenience emitters. Same gating contract as emit().
  void instant(Category c, const char* name, sim::SimTime when,
               std::uint64_t track, const char* v0_name = nullptr,
               double v0 = 0.0, const char* v1_name = nullptr,
               double v1 = 0.0);
  void counter(Category c, const char* name, sim::SimTime when,
               std::uint64_t track, double value);
  void begin(Category c, const char* name, sim::SimTime when,
             std::uint64_t track);
  void end(Category c, const char* name, sim::SimTime when,
           std::uint64_t track);

  /// Total events emitted (including ones the ring has since overwritten).
  std::uint64_t emitted() const { return emitted_; }

  /// --- flight recorder ---
  bool ring_enabled() const { return ring_capacity_ > 0; }
  std::size_t ring_capacity() const { return ring_capacity_; }
  /// Events overwritten because the ring was full.
  std::uint64_t ring_overwritten() const;
  /// Empties the flight recorder (capacity unchanged); emitted() keeps
  /// counting across clears.
  void clear_ring();
  /// The retained events, oldest first.
  std::vector<TraceEvent> ring_snapshot() const;
  /// Replays the retained events (oldest first) into `sink` and finishes it.
  void dump_ring(TraceSink& sink) const;

 private:
  std::uint32_t categories_ = 0;
  std::vector<TraceSink*> sinks_;
  std::uint64_t emitted_ = 0;

  std::size_t ring_capacity_ = 0;
  std::size_t ring_next_ = 0;  ///< Next write slot when the ring is full.
  std::uint64_t ring_base_ = 0;  ///< emitted() value at the last clear.
  std::vector<TraceEvent> ring_;
};

/// The one-line gate instrumented code uses:
///
///   if (auto* t = telemetry::tracer_for(sim_, Category::kTcp))
///     t->instant(...);
///
/// Compiles to a load, a null test and a mask test when tracing is off.
inline Tracer* tracer_for(const sim::Simulator& s, Category c) {
  Tracer* t = s.tracer();
  return (t != nullptr && t->wants(c)) ? t : nullptr;
}

}  // namespace mltcp::telemetry
