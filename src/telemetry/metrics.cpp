#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/trace.hpp"

namespace mltcp::telemetry {

// ---------------------------------------------------------------- Histogram

void Histogram::observe(double v) { values_.push_back(v); }

double Histogram::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Histogram::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Histogram::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Histogram::quantile(double q) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

// ----------------------------------------------------------- MetricRegistry

namespace {

template <typename T>
T& get_or_create(std::map<std::string, std::variant<Counter, Gauge, Histogram>>&
                     metrics,
                 const std::string& name, const char* kind) {
  auto [it, inserted] = metrics.try_emplace(name, T{});
  if (!inserted && !std::holds_alternative<T>(it->second)) {
    throw std::logic_error("MetricRegistry: '" + name + "' is not a " + kind);
  }
  return std::get<T>(it->second);
}

}  // namespace

Counter& MetricRegistry::counter(const std::string& name) {
  return get_or_create<Counter>(metrics_, name, "counter");
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  return get_or_create<Gauge>(metrics_, name, "gauge");
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  return get_or_create<Histogram>(metrics_, name, "histogram");
}

std::vector<MetricRegistry::Sample> MetricRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  // metrics_ is a std::map, so iteration (and thus export order) is sorted.
  for (const auto& [name, metric] : metrics_) {
    if (const auto* c = std::get_if<Counter>(&metric)) {
      out.push_back(Sample{name, static_cast<double>(c->value())});
    } else if (const auto* g = std::get_if<Gauge>(&metric)) {
      out.push_back(Sample{name, g->value()});
    } else if (const auto* h = std::get_if<Histogram>(&metric)) {
      out.push_back(Sample{name + ".count", static_cast<double>(h->count())});
      out.push_back(Sample{name + ".min", h->min()});
      out.push_back(Sample{name + ".mean", h->mean()});
      out.push_back(Sample{name + ".p50", h->quantile(0.50)});
      out.push_back(Sample{name + ".p99", h->quantile(0.99)});
      out.push_back(Sample{name + ".max", h->max()});
    }
  }
  return out;
}

std::string MetricRegistry::table() const {
  const std::vector<Sample> samples = snapshot();
  std::size_t width = 0;
  for (const Sample& s : samples) width = std::max(width, s.name.size());
  std::string out;
  char buf[64];
  for (const Sample& s : samples) {
    out += s.name;
    out.append(width - s.name.size() + 2, ' ');
    std::snprintf(buf, sizeof(buf), "%.9g", s.value);
    out += buf;
    out += '\n';
  }
  return out;
}

void MetricRegistry::write_csv(const std::string& path) const {
  sim::CsvWriter csv(path, {"metric", "value"});
  char buf[64];
  for (const Sample& s : snapshot()) {
    std::snprintf(buf, sizeof(buf), "%.9g", s.value);
    csv.row(std::vector<std::string>{s.name, buf});
  }
}

}  // namespace mltcp::telemetry
