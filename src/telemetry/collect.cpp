#include "telemetry/collect.hpp"

#include "flowsim/flow_simulator.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "tcp/sender.hpp"
#include "workload/cluster.hpp"
#include "workload/job.hpp"

namespace mltcp::telemetry {

void collect_sender(MetricRegistry& reg, const std::string& prefix,
                    const tcp::TcpSender& sender) {
  const tcp::SenderStats& s = sender.stats();
  reg.counter(prefix + "/data_packets_sent").add(s.data_packets_sent);
  reg.counter(prefix + "/retransmissions").add(s.retransmissions);
  reg.counter(prefix + "/fast_retransmits").add(s.fast_retransmits);
  reg.counter(prefix + "/timeouts").add(s.timeouts);
  reg.counter(prefix + "/rtt_karn_skipped").add(s.rtt_samples_karn_skipped);
  reg.counter(prefix + "/segments_acked").add(s.segments_acked);
  reg.counter(prefix + "/messages_completed").add(s.messages_completed);
  reg.gauge(prefix + "/cwnd").set(sender.cc().cwnd());
  reg.gauge(prefix + "/srtt_us")
      .set(sim::to_microseconds(sender.rtt().srtt()));
}

void collect_queue(MetricRegistry& reg, const std::string& prefix,
                   const net::QueueDiscipline& queue) {
  const net::QueueStats& s = queue.stats();
  reg.counter(prefix + "/enqueued").add(s.enqueued_packets);
  reg.counter(prefix + "/drops").add(s.dropped_packets);
  reg.counter(prefix + "/ecn_marks").add(s.marked_packets);
  reg.gauge(prefix + "/max_backlog_bytes")
      .set(static_cast<double>(s.max_backlog_bytes));
}

void collect_link(MetricRegistry& reg, const std::string& prefix,
                  const net::Link& link) {
  reg.counter(prefix + "/bytes_tx").add(link.bytes_transmitted());
  reg.counter(prefix + "/packets_tx").add(link.packets_transmitted());
  collect_queue(reg, prefix, link.queue());
}

void collect_switch(MetricRegistry& reg, const std::string& prefix,
                    const net::Switch& sw) {
  reg.counter(prefix + "/forwarded").add(sw.forwarded_packets());
  reg.counter(prefix + "/routeless_drops").add(sw.routeless_drops());
}

void collect_host(MetricRegistry& reg, const std::string& prefix,
                  const net::Host& host) {
  reg.counter(prefix + "/delivered").add(host.delivered_packets());
  reg.counter(prefix + "/unclaimed").add(host.unclaimed_packets());
}

void collect_job(MetricRegistry& reg, const std::string& prefix,
                 const workload::Job& job) {
  reg.counter(prefix + "/iterations").add(job.completed_iterations());
  Histogram& iter = reg.histogram(prefix + "/iter_time_s");
  for (double t : job.iteration_times_seconds()) iter.observe(t);
  Histogram& comm = reg.histogram(prefix + "/comm_time_s");
  for (double t : job.comm_times_seconds()) comm.observe(t);
}

void collect_cluster(MetricRegistry& reg, const std::string& prefix,
                     const workload::Cluster& cluster) {
  for (std::size_t j = 0; j < cluster.job_count(); ++j) {
    const workload::Job* job = cluster.job(j);
    collect_job(reg, prefix + "/job/" + job->name(), *job);
    for (const tcp::TcpFlow* flow : cluster.flows_of(j)) {
      collect_sender(reg, prefix + "/flow/" + std::to_string(flow->id()),
                     flow->sender());
    }
  }
}

void collect_flowsim(MetricRegistry& reg, const std::string& prefix,
                     const flowsim::FlowSimStats& stats) {
  reg.counter(prefix + "/recomputes").add(stats.recomputes);
  reg.counter(prefix + "/full_recomputes").add(stats.full_recomputes);
  reg.counter(prefix + "/waterfill_rounds").add(stats.waterfill_rounds);
  reg.counter(prefix + "/waterfill_channels").add(stats.waterfill_channels);
  reg.counter(prefix + "/frozen_skips").add(stats.frozen_skips);
  reg.counter(prefix + "/dirty_links").add(stats.dirty_links);
  reg.counter(prefix + "/heap_updates").add(stats.heap_updates);
  reg.counter(prefix + "/messages_posted").add(stats.messages_posted);
  reg.counter(prefix + "/messages_completed").add(stats.messages_completed);
  reg.counter(prefix + "/reroutes").add(stats.reroutes);
  reg.counter(prefix + "/stalls").add(stats.stalls);
}

}  // namespace mltcp::telemetry
