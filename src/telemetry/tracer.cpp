#include "telemetry/tracer.hpp"

#include "telemetry/sinks.hpp"

namespace mltcp::telemetry {

Tracer::Tracer(Config cfg)
    : categories_(cfg.categories), ring_capacity_(cfg.ring_capacity) {
  ring_.reserve(ring_capacity_);
}

void Tracer::add_sink(TraceSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void Tracer::emit(const TraceEvent& ev) {
  ++emitted_;
  if (ring_capacity_ > 0) {
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(ev);
    } else {
      ring_[ring_next_] = ev;
      ring_next_ = (ring_next_ + 1) % ring_capacity_;
    }
  }
  for (TraceSink* sink : sinks_) sink->on_event(ev);
}

void Tracer::instant(Category c, const char* name, sim::SimTime when,
                     std::uint64_t track, const char* v0_name, double v0,
                     const char* v1_name, double v1) {
  TraceEvent ev;
  ev.when = when;
  ev.category = c;
  ev.type = EventType::kInstant;
  ev.name = name;
  ev.track = track;
  ev.v0_name = v0_name;
  ev.v0 = v0;
  ev.v1_name = v1_name;
  ev.v1 = v1;
  emit(ev);
}

void Tracer::counter(Category c, const char* name, sim::SimTime when,
                     std::uint64_t track, double value) {
  TraceEvent ev;
  ev.when = when;
  ev.category = c;
  ev.type = EventType::kCounter;
  ev.name = name;
  ev.track = track;
  ev.v0_name = "value";
  ev.v0 = value;
  emit(ev);
}

void Tracer::begin(Category c, const char* name, sim::SimTime when,
                   std::uint64_t track) {
  TraceEvent ev;
  ev.when = when;
  ev.category = c;
  ev.type = EventType::kBegin;
  ev.name = name;
  ev.track = track;
  emit(ev);
}

void Tracer::end(Category c, const char* name, sim::SimTime when,
                 std::uint64_t track) {
  TraceEvent ev;
  ev.when = when;
  ev.category = c;
  ev.type = EventType::kEnd;
  ev.name = name;
  ev.track = track;
  emit(ev);
}

std::uint64_t Tracer::ring_overwritten() const {
  if (ring_capacity_ == 0 || ring_.size() < ring_capacity_) return 0;
  return emitted_ - ring_base_ - static_cast<std::uint64_t>(ring_.size());
}

void Tracer::clear_ring() {
  ring_.clear();
  ring_next_ = 0;
  ring_base_ = emitted_;
}

std::vector<TraceEvent> Tracer::ring_snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once full, ring_next_ points at the oldest retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::dump_ring(TraceSink& sink) const {
  for (const TraceEvent& ev : ring_snapshot()) sink.on_event(ev);
  sink.finish();
}

}  // namespace mltcp::telemetry
