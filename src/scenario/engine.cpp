#include "scenario/engine.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "tcp/reno.hpp"
#include "telemetry/tracer.hpp"

namespace mltcp::scenario {

const char* action_name(const Action& action) {
  struct Namer {
    const char* operator()(const LinkDown&) const { return "link_down"; }
    const char* operator()(const LinkUp&) const { return "link_up"; }
    const char* operator()(const LinkRate&) const { return "link_rate"; }
    const char* operator()(const Blackhole& b) const {
      return b.on ? "blackhole_on" : "blackhole_off";
    }
    const char* operator()(const DropBurst& d) const {
      return d.probability > 0.0 ? "drop_burst_on" : "drop_burst_off";
    }
    const char* operator()(const JobDeparture&) const {
      return "job_departure";
    }
    const char* operator()(const Straggler&) const { return "straggler"; }
    const char* operator()(const JobArrival&) const { return "job_arrival"; }
    const char* operator()(const BackgroundBurst&) const {
      return "background_burst";
    }
    const char* operator()(const TrafficBurst&) const {
      return "traffic_burst";
    }
  };
  return std::visit(Namer{}, action);
}

ScenarioEngine::ScenarioEngine(sim::Simulator& simulator,
                               net::Topology& topology,
                               workload::Cluster& cluster)
    : sim_(simulator),
      topo_(topology),
      cluster_(cluster),
      ctx_(simulator, topology, cluster),
      timer_(simulator, [this] { on_timer(); }) {}

void ScenarioEngine::install(const Scenario& scenario) {
  assert(events_.empty() && "install() must be called at most once");
  if (scenario.empty()) return;  // Nothing scheduled: zero perturbation.
  events_ = scenario.events();
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  next_ = 0;
  // Manual replay (sharded runs): the coordinator pulls events through
  // next_event_time()/apply_through() at global barriers; no timer. The
  // serial timer arms at the barrier key so an event applies before
  // everything else at its instant — exactly what the barriers enforce.
  if (!manual_) {
    timer_.arm_at_keyed(events_.front().at, sim::EventQueue::kBarrierKey);
  }
}

void ScenarioEngine::on_timer() {
  while (next_ < events_.size() && events_[next_].at <= sim_.now()) {
    apply(events_[next_]);
    ++next_;
  }
  if (next_ < events_.size()) {
    timer_.arm_at_keyed(events_[next_].at, sim::EventQueue::kBarrierKey);
  }
}

void ScenarioEngine::apply(const Event& e) {
  struct Applier {
    ScenarioEngine& eng;
    bool operator()(const LinkDown& a) {
      net::Node* na = eng.topo_.find_node(a.node_a);
      net::Node* nb = eng.topo_.find_node(a.node_b);
      assert(na != nullptr && nb != nullptr && "unknown node in LinkDown");
      if (na == nullptr || nb == nullptr) return false;
      eng.topo_.set_link_pair_state(*na, *nb, false);
      return true;
    }
    bool operator()(const LinkUp& a) {
      net::Node* na = eng.topo_.find_node(a.node_a);
      net::Node* nb = eng.topo_.find_node(a.node_b);
      assert(na != nullptr && nb != nullptr && "unknown node in LinkUp");
      if (na == nullptr || nb == nullptr) return false;
      eng.topo_.set_link_pair_state(*na, *nb, true);
      return true;
    }
    bool operator()(const LinkRate& a) {
      net::Node* na = nullptr;
      net::Node* nb = nullptr;
      net::Link* fwd = eng.resolve_link(a.node_a, a.node_b, &na, &nb);
      if (fwd == nullptr) return false;
      net::Link* rev = eng.topo_.link_between(*nb, *na);
      fwd->set_rate_bps(a.rate_bps);
      if (rev != nullptr) rev->set_rate_bps(a.rate_bps);
      // Routes are unchanged but capacities moved: a flow-level backend
      // listening on the topology must recompute its allocation.
      eng.topo_.notify_changed();
      return true;
    }
    bool operator()(const Blackhole& a) {
      net::Link* link = eng.resolve_link(a.node_a, a.node_b);
      if (link == nullptr) return false;
      link->set_blackhole(a.on);
      eng.topo_.notify_changed();
      return true;
    }
    bool operator()(const DropBurst& a) {
      net::Link* link = eng.resolve_link(a.node_a, a.node_b);
      if (link == nullptr) return false;
      link->set_fault_drop(a.probability, a.seed);
      eng.topo_.notify_changed();
      return true;
    }
    bool operator()(const JobDeparture& a) {
      workload::Job* job = eng.cluster_.find_job(a.job);
      assert(job != nullptr && "unknown job in JobDeparture");
      if (job == nullptr) return false;
      job->stop();
      return true;
    }
    bool operator()(const Straggler& a) {
      workload::Job* job = eng.cluster_.find_job(a.job);
      assert(job != nullptr && "unknown job in Straggler");
      if (job == nullptr) return false;
      job->inject_straggler(a.iterations, a.extra_compute);
      return true;
    }
    bool operator()(const JobArrival& a) {
      assert(a.spawn != nullptr);
      if (a.spawn == nullptr) return false;
      a.spawn(eng.ctx_);
      return true;
    }
    bool operator()(const BackgroundBurst& a) {
      workload::Channel* flow = eng.background_flow(a.src_host, a.dst_host);
      if (flow == nullptr) return false;
      // Sharded runs: the send's events (pacing, serialization) belong to
      // the source host's shard; applies run at a global barrier, so
      // binding here is race-free.
      const auto& hosts = eng.topo_.hosts();
      sim::Simulator::ShardGuard guard(
          eng.sim_,
          eng.shard_mapper_
              ? eng.shard_mapper_(hosts[static_cast<std::size_t>(a.src_host)])
              : 0);
      flow->send_message(a.bytes, [](sim::SimTime) {});
      return true;
    }
    bool operator()(const TrafficBurst& a) {
      // Each burst owns its source (own connection pool + FCT records);
      // like BackgroundBurst legacy flows it runs classic Reno, the
      // non-MLTCP competitor.
      auto source = std::make_unique<traffic::TrafficSource>(
          eng.sim_, eng.cluster_, eng.topo_.hosts(),
          traffic::SourceOptions{
              [] { return std::make_unique<tcp::RenoCC>(); }, {}, {}});
      // Sharded runs: split the replay into per-shard lanes so each
      // arrival's events start in the shard owning its source host.
      if (eng.shard_mapper_) {
        source->set_lane_map(
            [mapper = eng.shard_mapper_](const net::Host* h) {
              return mapper(h);
            },
            eng.shards_);
      }
      source->install(a.config);
      eng.traffic_.push_back(std::move(source));
      eng.traffic_labels_.push_back(a.label);
      return true;
    }
  };
  if (std::visit(Applier{*this}, e.action)) {
    ++applied_;
    trace_applied(e);
  } else {
    ++skipped_;
  }
}

net::Link* ScenarioEngine::resolve_link(const std::string& a,
                                        const std::string& b,
                                        net::Node** node_a,
                                        net::Node** node_b) {
  net::Node* na = topo_.find_node(a);
  net::Node* nb = topo_.find_node(b);
  assert(na != nullptr && nb != nullptr && "unknown node in link action");
  if (na == nullptr || nb == nullptr) return nullptr;
  net::Link* link = topo_.link_between(*na, *nb);
  assert(link != nullptr && "nodes are not adjacent");
  if (node_a != nullptr) *node_a = na;
  if (node_b != nullptr) *node_b = nb;
  return link;
}

const traffic::TrafficSource* ScenarioEngine::traffic_source(
    const std::string& label) const {
  for (std::size_t i = 0; i < traffic_labels_.size(); ++i) {
    if (traffic_labels_[i] == label) return traffic_[i].get();
  }
  return nullptr;
}

workload::Channel* ScenarioEngine::background_flow(int src_host,
                                                   int dst_host) {
  const auto& hosts = topo_.hosts();
  assert(src_host >= 0 && static_cast<std::size_t>(src_host) < hosts.size());
  assert(dst_host >= 0 && static_cast<std::size_t>(dst_host) < hosts.size());
  if (src_host < 0 || dst_host < 0 ||
      static_cast<std::size_t>(src_host) >= hosts.size() ||
      static_cast<std::size_t>(dst_host) >= hosts.size()) {
    return nullptr;
  }
  auto [it, inserted] = bg_flows_.try_emplace({src_host, dst_host}, nullptr);
  if (inserted) {
    // Legacy traffic is classic Reno — the non-MLTCP competitor of the
    // paper's fairness experiments.
    workload::FlowSpec fs;
    fs.src = hosts[static_cast<std::size_t>(src_host)];
    fs.dst = hosts[static_cast<std::size_t>(dst_host)];
    it->second = cluster_.add_channel(
        fs, [] { return std::make_unique<tcp::RenoCC>(); });
  }
  return it->second;
}

void ScenarioEngine::trace_applied(const Event& e) {
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kFault)) {
    t->instant(telemetry::Category::kFault, action_name(e.action), sim_.now(),
               telemetry::track_scenario(), "applied",
               static_cast<double>(applied_));
  }
}

}  // namespace mltcp::scenario
