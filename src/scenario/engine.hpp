#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"

namespace mltcp::scenario {

/// What a JobArrival callback sees: the run's own world, so arrivals build
/// their JobSpec against this run's hosts and start the job in place.
class EngineContext {
 public:
  EngineContext(sim::Simulator& simulator, net::Topology& topology,
                workload::Cluster& cluster)
      : sim_(simulator), topo_(topology), cluster_(cluster) {}

  sim::Simulator& simulator() { return sim_; }
  net::Topology& topology() { return topo_; }
  workload::Cluster& cluster() { return cluster_; }

  /// Shard owning `node` (0 in serial runs). Arrival callbacks that start
  /// jobs under sharded execution wrap the start in
  /// sim::Simulator::ShardGuard(simulator(), shard_of(sender_host)) so the
  /// job's events land in the shard that owns its senders.
  int shard_of(const net::Node* node) const {
    return shard_mapper_ ? shard_mapper_(node) : 0;
  }

 private:
  friend class ScenarioEngine;

  sim::Simulator& sim_;
  net::Topology& topo_;
  workload::Cluster& cluster_;
  std::function<int(const net::Node*)> shard_mapper_;  ///< Null when serial.
};

/// Replays a Scenario against one simulation run. One engine per run; the
/// engine must outlive the run (it owns the replay timer and the context
/// handed to arrival callbacks).
///
/// Determinism: the replay is a pure function of the scenario and the run's
/// seed — events fire in (time, insertion-order) order off a single timer,
/// faults consume randomness only from their own per-link streams, and an
/// empty scenario schedules nothing at all, leaving the run byte-identical
/// to one without an engine.
class ScenarioEngine {
 public:
  ScenarioEngine(sim::Simulator& simulator, net::Topology& topology,
                 workload::Cluster& cluster);

  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  /// Installs the scenario and schedules its replay. Call once, before (or
  /// during) the run; events whose time is already past fire immediately.
  void install(const Scenario& scenario);

  // -- Manual replay (sharded execution) -----------------------------------

  /// Switches the engine to externally-driven replay: install() stops
  /// arming the timer and a coordinator (pdes::ShardedRunner) pulls events
  /// through next_event_time()/apply_through() at global barriers instead.
  /// Call before install().
  void set_manual_replay(bool manual) { manual_ = manual; }

  /// Time of the next unapplied event; kTimeInfinity when drained.
  /// Manual-replay use.
  sim::SimTime next_event_time() const {
    return next_ < events_.size() ? events_[next_].at : sim::kTimeInfinity;
  }

  /// Applies every unapplied event with `at <= when`, in (time, insertion)
  /// order. Manual-replay use: the caller guarantees the simulation is at a
  /// global barrier at `when`.
  void apply_through(sim::SimTime when) {
    while (next_ < events_.size() && events_[next_].at <= when) {
      apply(events_[next_]);
      ++next_;
    }
  }

  /// Sharded runs: maps a node to the shard that owns it, so actions that
  /// initiate traffic (BackgroundBurst sends, TrafficBurst sources,
  /// JobArrival spawns via EngineContext) place their events in the right
  /// shard's queue. `shards` is the shard count, handed to per-lane traffic
  /// sources. Unset = serial behaviour.
  void set_shard_mapper(std::function<int(const net::Node*)> mapper,
                        int shards) {
    shard_mapper_ = std::move(mapper);
    ctx_.shard_mapper_ = shard_mapper_;
    shards_ = shards;
  }

  /// Events applied so far.
  int applied_events() const { return applied_; }
  /// Events dropped because a named target did not resolve (asserts in
  /// debug builds; released binaries skip and count).
  int skipped_events() const { return skipped_; }

  /// Traffic sources spawned by TrafficBurst events, in apply order, so
  /// reports can read their FCT records after the run.
  const std::vector<std::unique_ptr<traffic::TrafficSource>>&
  traffic_sources() const {
    return traffic_;
  }
  /// The source installed for the TrafficBurst labelled `label` (first
  /// match; nullptr if that event has not applied).
  const traffic::TrafficSource* traffic_source(const std::string& label)
      const;

 private:
  void on_timer();
  void apply(const Event& e);
  net::Link* resolve_link(const std::string& a, const std::string& b,
                          net::Node** node_a = nullptr,
                          net::Node** node_b = nullptr);
  workload::Channel* background_flow(int src_host, int dst_host);
  void trace_applied(const Event& e);

  sim::Simulator& sim_;
  net::Topology& topo_;
  workload::Cluster& cluster_;
  EngineContext ctx_;
  std::vector<Event> events_;  ///< Sorted by (at, insertion order).
  std::size_t next_ = 0;
  sim::Timer timer_;
  bool manual_ = false;  ///< Replay driven externally (sharded runs).
  std::function<int(const net::Node*)> shard_mapper_;  ///< Null when serial.
  int shards_ = 1;
  /// Legacy background channels, keyed by (src, dst) host index so repeated
  /// bursts between a pair share one connection.
  std::map<std::pair<int, int>, workload::Channel*> bg_flows_;
  /// Engine-owned traffic-matrix sources, one per applied TrafficBurst.
  std::vector<std::unique_ptr<traffic::TrafficSource>> traffic_;
  std::vector<std::string> traffic_labels_;  ///< Parallel to traffic_.
  int applied_ = 0;
  int skipped_ = 0;
};

}  // namespace mltcp::scenario
