#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sim/time.hpp"
#include "traffic/pattern.hpp"

namespace mltcp::scenario {

class EngineContext;

// Typed fault / churn actions. Every action names its targets symbolically
// (topology node names, job names, host indices), never by pointer, so a
// Scenario is a self-contained copyable value: a campaign Spec can carry one
// across worker threads and every run resolves it against its own world.

/// Takes both directions between two adjacent nodes down (cable cut).
/// Routes are repaired incrementally (Topology::set_link_pair_state).
struct LinkDown {
  std::string node_a;
  std::string node_b;
};

/// Brings both directions back up; triggers a full route rebuild.
struct LinkUp {
  std::string node_a;
  std::string node_b;
};

/// Renegotiates the line rate of both directions (autoneg downshift /
/// recovery). Routes are unchanged.
struct LinkRate {
  std::string node_a;
  std::string node_b;
  double rate_bps = 0.0;
};

/// Forwarding-plane blackhole on the a->b direction only: the link stays
/// administratively up (routes keep pointing at it) but drops everything.
struct Blackhole {
  std::string node_a;
  std::string node_b;
  bool on = true;
};

/// Probabilistic drop burst on the a->b direction; probability 0 clears.
/// The per-link splitmix64 stream is advanced only while active, so runs
/// whose scenario never reaches this event consume no randomness.
struct DropBurst {
  std::string node_a;
  std::string node_b;
  double probability = 0.0;
  std::uint64_t seed = 1;
};

/// Stops a running job (departure / preemption). In-flight bytes drain but
/// complete no further iteration.
struct JobDeparture {
  std::string job;
};

/// The job's next `iterations` compute phases each take `extra_compute`
/// longer — one slow worker stalling the synchronous barrier.
struct Straggler {
  std::string job;
  int iterations = 1;
  sim::SimTime extra_compute = 0;
};

/// Mid-run job arrival. The callback builds and starts the job against the
/// run's own world (add_job + start) — specs hold hosts by pointer, so the
/// construction must happen inside the run, not when the Scenario is built.
/// `label` is what telemetry and reports call the arrival.
struct JobArrival {
  std::string label;
  std::function<void(EngineContext&)> spawn;
};

/// A burst of classic (non-MLTCP) legacy traffic: `bytes` posted on an
/// engine-owned Reno flow from hosts()[src_host] to hosts()[dst_host].
/// Repeated bursts between the same pair reuse the same flow.
struct BackgroundBurst {
  int src_host = 0;
  int dst_host = 0;
  std::int64_t bytes = 0;
};

/// A whole traffic-matrix stream (Poisson / incast / tornado / all-to-all /
/// permutation) switched on mid-run: the engine expands the config against
/// the run's own hosts and replays it on classic-Reno background
/// connections (traffic::TrafficSource). `config.start/stop` are absolute
/// simulation times; the event's `at` only controls when the source is
/// installed. The config is a pure value, so a Scenario carrying one stays
/// copyable across campaign worker threads, and its per-run arrivals stay
/// byte-identical at every MLTCP_THREADS.
struct TrafficBurst {
  std::string label;
  traffic::TrafficConfig config;
};

using Action = std::variant<LinkDown, LinkUp, LinkRate, Blackhole, DropBurst,
                            JobDeparture, Straggler, JobArrival,
                            BackgroundBurst, TrafficBurst>;

/// One scheduled action.
struct Event {
  sim::SimTime at = 0;
  Action action;
};

/// A deterministic, scripted fault-injection timeline: a time-ordered list
/// of typed events the ScenarioEngine replays against one simulation run.
/// Events added out of order are fine — the engine replays them sorted by
/// time, ties in insertion order (stable), so a scenario's effect is a pure
/// function of its contents.
class Scenario {
 public:
  Scenario& at(sim::SimTime when, Action action) {
    events_.push_back(Event{when, std::move(action)});
    return *this;
  }

  // Fluent builders, chainable: s.link_down(t1, "swL", "swR")
  //                              .link_up(t2, "swL", "swR");
  Scenario& link_down(sim::SimTime when, std::string a, std::string b) {
    return at(when, LinkDown{std::move(a), std::move(b)});
  }
  Scenario& link_up(sim::SimTime when, std::string a, std::string b) {
    return at(when, LinkUp{std::move(a), std::move(b)});
  }
  Scenario& link_rate(sim::SimTime when, std::string a, std::string b,
                      double rate_bps) {
    return at(when, LinkRate{std::move(a), std::move(b), rate_bps});
  }
  Scenario& blackhole(sim::SimTime when, std::string a, std::string b,
                      bool on) {
    return at(when, Blackhole{std::move(a), std::move(b), on});
  }
  Scenario& drop_burst(sim::SimTime when, std::string a, std::string b,
                       double probability, std::uint64_t seed = 1) {
    return at(when, DropBurst{std::move(a), std::move(b), probability, seed});
  }
  Scenario& job_departure(sim::SimTime when, std::string job) {
    return at(when, JobDeparture{std::move(job)});
  }
  Scenario& straggler(sim::SimTime when, std::string job, int iterations,
                      sim::SimTime extra_compute) {
    return at(when, Straggler{std::move(job), iterations, extra_compute});
  }
  Scenario& job_arrival(sim::SimTime when, std::string label,
                        std::function<void(EngineContext&)> spawn) {
    return at(when, JobArrival{std::move(label), std::move(spawn)});
  }
  Scenario& background_burst(sim::SimTime when, int src_host, int dst_host,
                             std::int64_t bytes) {
    return at(when, BackgroundBurst{src_host, dst_host, bytes});
  }
  Scenario& traffic_burst(sim::SimTime when, std::string label,
                          traffic::TrafficConfig config) {
    return at(when, TrafficBurst{std::move(label), config});
  }

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

/// Static display name of an action, for telemetry (which requires static
/// strings) and reports.
const char* action_name(const Action& action);

}  // namespace mltcp::scenario
