#include "flowsim/flow_simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <limits>

#include "core/mltcp.hpp"
#include "telemetry/tracer.hpp"

namespace mltcp::flowsim {

namespace {

/// Bytes left below which a message counts as fully serialized. Predictions
/// arm the timer one nanosecond past the exact drain time, so remaining
/// lands at or below zero; the epsilon only absorbs float drift.
constexpr double kDrainEpsilon = 1e-3;

bool env_full_recompute() {
  const char* v = std::getenv("MLTCP_FLOWSIM_FULL_RECOMPUTE");
  return v != nullptr && v[0] == '1';
}

/// What a faulted link can actually carry, in bytes/second. Down and
/// blackholed links carry nothing (routes may still point at them); a
/// drop-burst fault derates the link to the goodput a loss-recovering
/// transport sustains across it.
double effective_capacity(const net::Link& link) {
  if (!link.up() || link.blackhole()) return 0.0;
  const double keep = 1.0 - link.fault_drop_probability();
  return keep > 0.0 ? link.rate_bps() * keep / 8.0 : 0.0;
}

/// Walks the data path src -> dst the way a packet would travel it: host
/// uplink first, then each switch's ECMP choice for this flow id
/// (Switch::route_for_flow — the identical hash the packet backend runs),
/// until the destination host. Returns false when no complete path exists.
bool resolve_route(net::Host* src, net::Host* dst, net::FlowId flow,
                   std::size_t max_hops,
                   std::vector<const net::Link*>& route,
                   sim::SimTime& delay) {
  route.clear();
  delay = 0;
  net::Link* link = src->uplink();
  const net::NodeId dst_id = dst->id();
  std::size_t hops = 0;
  while (link != nullptr) {
    route.push_back(link);
    delay += link->propagation_delay();
    net::Node* next = link->destination();
    if (next == dst) return true;
    auto* sw = dynamic_cast<net::Switch*>(next);
    if (sw == nullptr) return false;      // Landed on the wrong host.
    if (++hops > max_hops) return false;  // Transient routing loop.
    link = sw->route_for_flow(dst_id, flow);
  }
  return false;  // No uplink, or a switch had no route (fault repair).
}

}  // namespace

/// One channel of the flow-level backend: a FIFO of messages, the head of
/// which is in flight as a fluid flow. The channel's remaining-bytes account
/// settles lazily — only when its own rate changes, its weight is read, or
/// it completes — and both settle instants and rate values are invariant
/// between the incremental and full-recompute allocation modes, which is
/// what keeps the two bit-identical.
class FlowSimulator::FlowChannel final : public workload::Channel {
 public:
  enum class State {
    kIdle,      ///< No message in flight.
    kSending,   ///< Head message serializing at rate_.
    kDraining,  ///< All bytes serialized; last byte propagating.
  };

  FlowChannel(FlowSimulator& owner, net::Host* src, net::Host* dst,
              net::FlowId id, std::int32_t ordinal,
              std::shared_ptr<const core::AggressivenessFunction> f)
      : owner_(owner),
        src_(src),
        dst_(dst),
        id_(id),
        ordinal_(ordinal),
        f_(std::move(f)) {}

  void send_message(std::int64_t bytes, Completion on_complete) override {
    assert(bytes >= 0);
    queue_.push_back(Message{bytes, std::move(on_complete)});
    ++owner_.stats_.messages_posted;
    // A busy channel needs no recompute: the new message queues FIFO
    // behind the head and the allocation is untouched until it starts.
    if (state_ == State::kIdle && !in_start_queue_) {
      in_start_queue_ = true;
      owner_.start_queue_.push_back(this);
      owner_.schedule_recompute();
    }
  }

  net::FlowId id() const override { return id_; }

 private:
  friend class FlowSimulator;
  friend struct FlowSimulator::HeapPosOf;

  struct Message {
    std::int64_t bytes = 0;
    Completion done;
  };

  /// Current max-min weight: F(bytes_ratio) of the in-flight message for
  /// MLTCP channels, the neutral 1.0 otherwise. Clamped away from zero so a
  /// pathological F cannot starve the water-filling loop. Reads remaining_,
  /// so the channel must be settled to "now" first.
  double current_weight() const {
    if (f_ == nullptr) return 1.0;
    const double ratio =
        total_ > 0.0 ? std::clamp((total_ - remaining_) / total_, 0.0, 1.0)
                     : 1.0;
    return std::max((*f_)(ratio), 1e-6);
  }

  FlowSimulator& owner_;
  net::Host* src_;
  net::Host* dst_;
  net::FlowId id_;
  std::int32_t ordinal_;  ///< Creation index: the canonical channel order.
  std::shared_ptr<const core::AggressivenessFunction> f_;

  std::deque<Message> queue_;  ///< Head = in-flight message (when busy).
  State state_ = State::kIdle;
  double total_ = 0.0;      ///< Bytes of the head message.
  double remaining_ = 0.0;  ///< Bytes not yet sent, as of settled_at_.
  double rate_ = 0.0;       ///< Allocated rate, bytes/second.
  double new_rate_ = 0.0;   ///< Water-filling output staging.
  double weight_ = 1.0;     ///< Weight used by the current allocation.
  sim::SimTime settled_at_ = 0;   ///< Instant remaining_ is accurate for.
  sim::SimTime drain_until_ = 0;  ///< Last-byte arrival (kDraining).
  sim::SimTime next_refresh_ = 0;  ///< MLTCP weight-refresh deadline.
  bool stalled_ = false;  ///< Route dead/unroutable; waiting on topology.
  bool in_start_queue_ = false;
  bool frozen_ = false;      ///< Water-filling scratch.
  bool in_members_ = false;  ///< Present in the per-link member lists.
  std::uint32_t visit_epoch_ = 0;  ///< Dirty-closure BFS mark.

  /// Resolved route as a (base, len) span into the owner's route_pool_
  /// (dense link indices) and slot_pool_ (member-list positions).
  std::int32_t route_base_ = 0;
  std::int32_t route_len_ = 0;
  std::int32_t route_cap_ = 0;
  sim::SimTime route_delay_ = 0;  ///< Sum of propagation delays en route.
  bool route_valid_ = false;

  std::int32_t heap_pos_ = -1;  ///< Slot in the drain heap (-1 = absent).
  std::int32_t busy_pos_ = -1;  ///< Slot in busy_ (-1 = not busy).
};

std::int32_t& FlowSimulator::HeapPosOf::operator()(FlowChannel* ch) const {
  return ch->heap_pos_;
}

FlowSimulator::FlowSimulator(sim::Simulator& simulator,
                             net::Topology& topology, FlowSimConfig cfg)
    : sim_(simulator),
      topo_(topology),
      cfg_(cfg),
      timer_(simulator, [this] { on_timer(); }) {
  cfg_.full_recompute = cfg_.full_recompute || env_full_recompute();
  topo_.set_change_hook([this] {
    routes_dirty_ = true;
    schedule_recompute();
  });
}

FlowSimulator::~FlowSimulator() { topo_.set_change_hook({}); }

workload::Channel* FlowSimulator::create_channel(
    const workload::ChannelSpec& spec) {
  assert(spec.src != nullptr && spec.dst != nullptr);
  // Probe the congestion-control factory once: an MLTCP-augmented
  // controller carries the aggressiveness function the fluid allocation
  // needs; everything else is packet-level mechanism the fluid model
  // abstracts away — window arithmetic (Reno/Cubic/DCTCP/Swift) and
  // rate-based state machines (BBR's bandwidth filter, Gemini's dual loop)
  // alike, since at fluid fidelity both reduce to a max-min weight.
  std::shared_ptr<const core::AggressivenessFunction> f;
  if (spec.cc) {
    if (const auto probe = spec.cc(); probe != nullptr) {
      if (const auto* gain =
              dynamic_cast<const core::MltcpGain*>(&probe->window_gain())) {
        f = gain->function_ptr();
      }
    }
  }
  const auto ordinal = static_cast<std::int32_t>(channels_.size());
  channels_.push_back(std::make_unique<FlowChannel>(
      *this, spec.src, spec.dst, spec.id, ordinal, std::move(f)));
  return channels_.back().get();
}

std::vector<FlowRate> FlowSimulator::current_rates() const {
  std::vector<FlowRate> out;
  for (const FlowChannel* ch : busy_) {
    if (ch->state_ != FlowChannel::State::kSending) continue;
    out.push_back(FlowRate{ch->id_, ch->rate_ * 8.0, ch->weight_});
  }
  std::sort(out.begin(), out.end(),
            [](const FlowRate& a, const FlowRate& b) { return a.flow < b.flow; });
  return out;
}

std::vector<FlowRate> FlowSimulator::reference_rates() const {
  // Gather sending channels in creation order — the same canonical order
  // the incremental path seeds its water-fill in.
  struct Ref {
    const FlowChannel* ch = nullptr;
    double rate = 0.0;
    bool frozen = false;
  };
  std::vector<Ref> refs;
  for (const auto& owned : channels_) {
    const FlowChannel* ch = owned.get();
    if (ch->state_ != FlowChannel::State::kSending) continue;
    refs.push_back(Ref{ch, 0.0, false});
  }

  const std::size_t nl = link_ptrs_.size();
  std::vector<double> residual(nl, 0.0);
  std::vector<double> wsum(nl, 0.0);
  std::vector<std::int32_t> active(nl, 0);
  std::vector<std::uint8_t> seen(nl, 0);
  std::vector<std::vector<std::size_t>> members(nl);
  std::vector<std::int32_t> used;

  std::size_t unfrozen = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const FlowChannel* ch = refs[i].ch;
    // Stalled channels hold rate zero by fiat, outside the water-fill.
    if (ch->stalled_ || !ch->route_valid_) continue;
    ++unfrozen;
    for (std::int32_t h = 0; h < ch->route_len_; ++h) {
      const std::int32_t li = route_pool_[ch->route_base_ + h];
      const auto l = static_cast<std::size_t>(li);
      if (!seen[l]) {
        seen[l] = 1;
        used.push_back(li);
        // Capacities read fresh off the links, independent of the cached
        // link_capacity_ array — a stale cache shows up as a differential
        // failure instead of hiding.
        residual[l] = effective_capacity(*link_ptrs_[l]);
      }
      active[l] += 1;
      wsum[l] += ch->weight_;
      members[l].push_back(i);
    }
  }

  while (unfrozen > 0) {
    double min_share = std::numeric_limits<double>::infinity();
    std::int32_t bottleneck = -1;
    for (const std::int32_t li : used) {
      const auto l = static_cast<std::size_t>(li);
      if (active[l] <= 0) continue;
      const double share = std::max(residual[l], 0.0) / wsum[l];
      if (share < min_share) {
        min_share = share;
        bottleneck = li;
      }
    }
    assert(bottleneck >= 0 && "unfrozen flows imply an unfrozen link");
    if (bottleneck < 0) break;
    for (const std::size_t idx : members[static_cast<std::size_t>(bottleneck)]) {
      Ref& r = refs[idx];
      if (r.frozen) continue;
      r.frozen = true;
      r.rate = r.ch->weight_ * min_share;
      --unfrozen;
      for (std::int32_t h = 0; h < r.ch->route_len_; ++h) {
        const auto l =
            static_cast<std::size_t>(route_pool_[r.ch->route_base_ + h]);
        residual[l] -= r.rate;
        wsum[l] -= r.ch->weight_;
        active[l] -= 1;
      }
    }
  }

  std::vector<FlowRate> out;
  out.reserve(refs.size());
  for (const Ref& r : refs) {
    out.push_back(FlowRate{r.ch->id_, r.rate * 8.0, r.ch->weight_});
  }
  std::sort(out.begin(), out.end(),
            [](const FlowRate& a, const FlowRate& b) { return a.flow < b.flow; });
  return out;
}

void FlowSimulator::schedule_recompute() {
  if (in_recompute_) {
    recompute_pending_ = true;
    return;
  }
  timer_.arm(0);
}

void FlowSimulator::settle_channel(FlowChannel* ch, sim::SimTime now) {
  const sim::SimTime dt = now - ch->settled_at_;
  ch->settled_at_ = now;
  if (dt <= 0) return;
  if (ch->state_ != FlowChannel::State::kSending || ch->rate_ <= 0.0) return;
  ch->remaining_ -= ch->rate_ * sim::to_seconds(dt);
  if (ch->remaining_ < 0.0) ch->remaining_ = 0.0;
}

void FlowSimulator::ensure_link_arrays() {
  const auto& links = topo_.links();
  if (link_ptrs_.size() == links.size()) return;
  assert(links.size() > link_ptrs_.size() && "topology links are append-only");
  const std::size_t n = links.size();
  link_index_.reserve(n);
  for (std::size_t i = link_ptrs_.size(); i < n; ++i) {
    link_ptrs_.push_back(links[i].get());
    link_index_.emplace(links[i].get(), static_cast<std::int32_t>(i));
  }
  link_capacity_.resize(n, 0.0);
  link_members_.resize(n);
  link_residual_.resize(n, 0.0);
  link_weight_sum_.resize(n, 0.0);
  link_active_.resize(n, 0);
  link_dirty_.resize(n, 0);
  refresh_capacities();
}

void FlowSimulator::refresh_capacities() {
  for (std::size_t i = 0; i < link_ptrs_.size(); ++i) {
    link_capacity_[i] = effective_capacity(*link_ptrs_[i]);
  }
}

bool FlowSimulator::resolve_route_span(FlowChannel* ch) {
  std::vector<const net::Link*> links;
  sim::SimTime delay = 0;
  const bool ok = resolve_route(ch->src_, ch->dst_, ch->id_,
                                topo_.links().size(), links, delay);
  ch->route_delay_ = delay;
  if (!ok) {
    ch->route_len_ = 0;
    ch->route_valid_ = false;
    return false;
  }
  const auto len = static_cast<std::int32_t>(links.size());
  if (len > ch->route_cap_) {
    ch->route_base_ = static_cast<std::int32_t>(route_pool_.size());
    route_pool_.resize(route_pool_.size() + static_cast<std::size_t>(len));
    slot_pool_.resize(slot_pool_.size() + static_cast<std::size_t>(len), -1);
    ch->route_cap_ = len;
  }
  ch->route_len_ = len;
  for (std::int32_t h = 0; h < len; ++h) {
    route_pool_[ch->route_base_ + h] = link_index_.at(links[h]);
  }
  ch->route_valid_ = true;
  return true;
}

void FlowSimulator::mark_link_dirty(std::int32_t li) {
  if (dirty_all_ || link_dirty_[static_cast<std::size_t>(li)]) return;
  link_dirty_[static_cast<std::size_t>(li)] = 1;
  dirty_links_.push_back(li);
}

void FlowSimulator::mark_route_dirty(const FlowChannel* ch) {
  if (dirty_all_) return;
  for (std::int32_t h = 0; h < ch->route_len_; ++h) {
    mark_link_dirty(route_pool_[ch->route_base_ + h]);
  }
}

void FlowSimulator::ensure_member_capacity(std::int32_t li) {
  LinkList& list = link_members_[static_cast<std::size_t>(li)];
  if (list.size < list.cap) return;
  const std::int32_t new_cap = list.cap == 0 ? 4 : list.cap * 2;
  const auto cls = static_cast<std::size_t>(
      std::countr_zero(static_cast<std::uint32_t>(new_cap)));
  std::int32_t base;
  if (!member_free_[cls].empty()) {
    base = member_free_[cls].back();
    member_free_[cls].pop_back();
  } else {
    base = static_cast<std::int32_t>(member_pool_.size());
    member_pool_.resize(member_pool_.size() + static_cast<std::size_t>(new_cap));
  }
  for (std::int32_t i = 0; i < list.size; ++i) {
    member_pool_[base + i] = member_pool_[list.base + i];
  }
  if (list.cap > 0) {
    member_free_[static_cast<std::size_t>(
                     std::countr_zero(static_cast<std::uint32_t>(list.cap)))]
        .push_back(list.base);
  }
  list.base = base;
  list.cap = new_cap;
}

void FlowSimulator::add_membership(FlowChannel* ch) {
  assert(!ch->in_members_);
  ch->in_members_ = true;
  for (std::int32_t h = 0; h < ch->route_len_; ++h) {
    const std::int32_t li = route_pool_[ch->route_base_ + h];
    ensure_member_capacity(li);
    LinkList& list = link_members_[static_cast<std::size_t>(li)];
    member_pool_[list.base + list.size] = MemberEntry{ch, h};
    slot_pool_[ch->route_base_ + h] = list.size;
    ++list.size;
  }
}

void FlowSimulator::remove_membership(FlowChannel* ch) {
  if (!ch->in_members_) return;
  ch->in_members_ = false;
  for (std::int32_t h = 0; h < ch->route_len_; ++h) {
    const std::int32_t li = route_pool_[ch->route_base_ + h];
    LinkList& list = link_members_[static_cast<std::size_t>(li)];
    const std::int32_t pos = slot_pool_[ch->route_base_ + h];
    const std::int32_t last = --list.size;
    assert(pos >= 0 && pos <= last &&
           member_pool_[list.base + pos].ch == ch);
    if (pos != last) {
      const MemberEntry moved = member_pool_[list.base + last];
      member_pool_[list.base + pos] = moved;
      slot_pool_[moved.ch->route_base_ + moved.hop] = pos;
    }
  }
}

void FlowSimulator::busy_add(FlowChannel* ch) {
  assert(ch->busy_pos_ < 0);
  ch->busy_pos_ = static_cast<std::int32_t>(busy_.size());
  busy_.push_back(ch);
}

void FlowSimulator::busy_remove(FlowChannel* ch) {
  const std::int32_t pos = ch->busy_pos_;
  assert(pos >= 0 && busy_[static_cast<std::size_t>(pos)] == ch);
  FlowChannel* last = busy_.back();
  busy_[static_cast<std::size_t>(pos)] = last;
  last->busy_pos_ = pos;
  busy_.pop_back();
  ch->busy_pos_ = -1;
}

sim::SimTime FlowSimulator::predict_drain(const FlowChannel* ch,
                                          sim::SimTime now) const {
  assert(ch->settled_at_ == now && "predictions read a settled account");
  if (ch->rate_ <= 0.0) return sim::kTimeInfinity;
  const double secs = ch->remaining_ / ch->rate_;
  return now + static_cast<sim::SimTime>(std::ceil(secs * 1e9)) + 1;
}

void FlowSimulator::heap_update(FlowChannel* ch, sim::SimTime key) {
  ++stats_.heap_updates;
  drain_heap_.update(ch, key);
}

void FlowSimulator::heap_remove(FlowChannel* ch) {
  if (ch->heap_pos_ < 0) return;
  ++stats_.heap_updates;
  drain_heap_.remove(ch);
}

void FlowSimulator::make_stalled(FlowChannel* ch, sim::SimTime now) {
  assert(!ch->stalled_);
  settle_channel(ch, now);
  ch->rate_ = 0.0;
  ch->stalled_ = true;
  ++stats_.stalls;
  remove_membership(ch);
  heap_remove(ch);
  --sending_count_;
  if (ch->f_ != nullptr) --mltcp_sending_;
}

void FlowSimulator::make_unstalled(FlowChannel* ch, sim::SimTime now) {
  assert(ch->stalled_);
  settle_channel(ch, now);  // Arithmetic no-op at rate 0; stamps settled_at_.
  ch->stalled_ = false;
  ++sending_count_;
  if (ch->f_ != nullptr) {
    ++mltcp_sending_;
    ch->weight_ = ch->current_weight();
    ch->next_refresh_ = now + cfg_.weight_refresh;
    // Seed a heap entry so the refresh deadline fires even if the fill
    // leaves the rate at zero (saturated component).
    heap_update(ch, ch->next_refresh_);
  }
  add_membership(ch);
}

void FlowSimulator::reroute_busy() {
  for (FlowChannel* ch : busy_) {
    remove_membership(ch);  // No-op for draining/stalled channels.
    resolve_route_span(ch);
    ++stats_.reroutes;
  }
}

void FlowSimulator::reallocate(sim::SimTime now) {
  ++stats_.recomputes;
  ++visit_epoch_;
  const bool refresh_all = dirty_all_;
  const bool fill_all = dirty_all_ || cfg_.full_recompute;
  if (fill_all) ++stats_.full_recomputes;

  // Weight refresh rides the perturbation: every MLTCP channel whose
  // component the dirty region touches gets F(bytes_ratio) re-read
  // (settling it to "now" first) — the same cadence the old global
  // recompute refreshed at, since any pass that would have moved a
  // channel's rate visits its component. Quiet components fall back to the
  // per-channel weight_refresh deadline in the drain heap. The refresh set
  // is derived from the dirty closure in BOTH recompute modes, so settle
  // instants — and with them the float trajectories — are mode-invariant.
  affected_.clear();
  if (refresh_all) {
    for (FlowChannel* ch : busy_) {
      if (ch->state_ != FlowChannel::State::kSending || ch->stalled_) continue;
      if (ch->f_ != nullptr) {
        settle_channel(ch, now);
        ch->weight_ = ch->current_weight();
      }
      affected_.push_back(ch);
    }
  } else {
    // Transitive closure of the dirty links over the link<->flow sharing
    // graph: every flow whose allocation the dirty region can influence is
    // in here; everything else keeps a provably unchanged rate (max-min
    // decomposes over connected components of this graph). A visited
    // channel's refreshed weight needs no extra dirty marks — the visit
    // already marks its whole route.
    for (std::size_t qi = 0; qi < dirty_links_.size(); ++qi) {
      const LinkList& list =
          link_members_[static_cast<std::size_t>(dirty_links_[qi])];
      for (std::int32_t i = 0; i < list.size; ++i) {
        FlowChannel* ch = member_pool_[list.base + i].ch;
        if (ch->visit_epoch_ == visit_epoch_) continue;
        ch->visit_epoch_ = visit_epoch_;
        if (ch->f_ != nullptr) {
          settle_channel(ch, now);
          ch->weight_ = ch->current_weight();
        }
        affected_.push_back(ch);
        for (std::int32_t h = 0; h < ch->route_len_; ++h) {
          mark_link_dirty(route_pool_[ch->route_base_ + h]);
        }
      }
    }
    if (fill_all) {
      // Escape hatch: same refresh set as the incremental path (computed
      // above), but the fill runs over every sending channel — the
      // reference the closure restriction is differentially checked
      // against.
      affected_.clear();
      for (FlowChannel* ch : busy_) {
        if (ch->state_ != FlowChannel::State::kSending || ch->stalled_) {
          continue;
        }
        affected_.push_back(ch);
      }
    }
  }

  if (!affected_.empty()) {
    // Canonical order: the full-recompute reference and any dirty closure
    // seed the fill in channel-creation order, so a component's arithmetic
    // is the same operation sequence no matter which mode ran it.
    std::sort(affected_.begin(), affected_.end(),
              [](const FlowChannel* a, const FlowChannel* b) {
                return a->ordinal_ < b->ordinal_;
              });
    stats_.waterfill_channels += static_cast<std::int64_t>(affected_.size());
    stats_.frozen_skips +=
        sending_count_ - static_cast<std::int64_t>(affected_.size());

    used_links_.clear();
    for (FlowChannel* ch : affected_) {
      ch->frozen_ = false;
      ch->new_rate_ = 0.0;
      for (std::int32_t h = 0; h < ch->route_len_; ++h) {
        const std::int32_t li = route_pool_[ch->route_base_ + h];
        const auto l = static_cast<std::size_t>(li);
        if (link_active_[l] == 0) {
          used_links_.push_back(li);
          link_residual_[l] = link_capacity_[l];
          link_weight_sum_[l] = 0.0;
        }
        link_active_[l] += 1;
        link_weight_sum_[l] += ch->weight_;
      }
    }
    stats_.dirty_links += static_cast<std::int64_t>(used_links_.size());

    // Weighted max-min water-filling: repeatedly find the tightest link
    // (smallest residual capacity per unit of unfrozen weight), freeze its
    // flows at weight * share, and charge their rates to every other link
    // on their routes. Rates stage into new_rate_ so an unchanged result
    // leaves the channel — its settle account and its heap entry — alone.
    std::size_t unfrozen = affected_.size();
    while (unfrozen > 0) {
      ++stats_.waterfill_rounds;
      double min_share = std::numeric_limits<double>::infinity();
      std::int32_t bottleneck = -1;
      for (const std::int32_t li : used_links_) {
        const auto l = static_cast<std::size_t>(li);
        if (link_active_[l] <= 0) continue;
        const double share =
            std::max(link_residual_[l], 0.0) / link_weight_sum_[l];
        if (share < min_share) {
          min_share = share;
          bottleneck = li;
        }
      }
      assert(bottleneck >= 0 && "unfrozen flows imply an unfrozen link");
      if (bottleneck < 0) break;
      const LinkList& list =
          link_members_[static_cast<std::size_t>(bottleneck)];
      for (std::int32_t i = 0; i < list.size; ++i) {
        FlowChannel* ch = member_pool_[list.base + i].ch;
        if (ch->frozen_) continue;
        ch->frozen_ = true;
        ch->new_rate_ = ch->weight_ * min_share;
        --unfrozen;
        for (std::int32_t h = 0; h < ch->route_len_; ++h) {
          const auto l =
              static_cast<std::size_t>(route_pool_[ch->route_base_ + h]);
          link_residual_[l] -= ch->new_rate_;
          link_weight_sum_[l] -= ch->weight_;
          link_active_[l] -= 1;
        }
      }
    }
    for (const std::int32_t li : used_links_) {
      link_active_[static_cast<std::size_t>(li)] = 0;
    }

    // Commit: settle and re-key only channels whose rate actually moved.
    // The comparison is bit-exact on purpose — it makes the set of settle
    // points a function of the model trajectory alone, not of which
    // recompute mode produced it.
    for (FlowChannel* ch : affected_) {
      if (ch->new_rate_ == ch->rate_) continue;
      settle_channel(ch, now);
      ch->rate_ = ch->new_rate_;
      sim::SimTime key = predict_drain(ch, now);
      if (ch->f_ != nullptr && ch->next_refresh_ < key) {
        key = ch->next_refresh_;
      }
      if (key < sim::kTimeInfinity) {
        heap_update(ch, key);
      } else {
        heap_remove(ch);
      }
    }
  } else {
    stats_.frozen_skips += sending_count_;
  }

  for (const std::int32_t li : dirty_links_) {
    link_dirty_[static_cast<std::size_t>(li)] = 0;
  }
  dirty_links_.clear();
  dirty_all_ = false;

  if (!drain_heap_.empty()) {
    timer_.arm_at(drain_heap_.min_key());
  } else {
    timer_.cancel();
  }

  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kFlowsim)) {
    t->instant(telemetry::Category::kFlowsim, "reallocate", now,
               telemetry::track_flowsim(), "active",
               static_cast<double>(affected_.size()), "rounds",
               static_cast<double>(stats_.waterfill_rounds));
  }
}

void FlowSimulator::on_timer() {
  const sim::SimTime now = sim_.now();
  in_recompute_ = true;
  ensure_link_arrays();

  // Pop exactly the channels whose predicted instant arrived; everyone
  // else stays untouched in the heap. Processing order is channel-creation
  // order — deterministic, independent of heap internals and shard count.
  due_.clear();
  while (!drain_heap_.empty() && drain_heap_.min_key() <= now) {
    due_.push_back(drain_heap_.pop_min());
  }
  std::sort(due_.begin(), due_.end(),
            [](const FlowChannel* a, const FlowChannel* b) {
              return a->ordinal_ < b->ordinal_;
            });

  completed_scratch_.clear();
  for (FlowChannel* ch : due_) {
    if (ch->state_ == FlowChannel::State::kDraining) {
      if (ch->drain_until_ <= now) {
        completed_scratch_.push_back(ch);
      } else {
        heap_update(ch, ch->drain_until_);
      }
      continue;
    }
    if (ch->state_ != FlowChannel::State::kSending || ch->stalled_) continue;
    settle_channel(ch, now);
    if (ch->remaining_ <= kDrainEpsilon && ch->rate_ > 0.0) {
      // Serialization complete: the channel's capacity returns to the pool
      // (its route links go dirty) and the last byte propagates.
      mark_route_dirty(ch);
      remove_membership(ch);
      ch->state_ = FlowChannel::State::kDraining;
      ch->drain_until_ = now + ch->route_delay_;
      ch->rate_ = 0.0;
      --sending_count_;
      if (ch->f_ != nullptr) --mltcp_sending_;
      if (ch->drain_until_ <= now) {
        completed_scratch_.push_back(ch);
      } else {
        heap_update(ch, ch->drain_until_);
      }
      continue;
    }
    // Not drained: this firing is the channel's weight-refresh deadline
    // (or a prediction that settled a hair early — re-key either way).
    if (ch->f_ != nullptr && now >= ch->next_refresh_) {
      const double w = ch->current_weight();
      ch->next_refresh_ = now + cfg_.weight_refresh;
      if (w != ch->weight_) {
        ch->weight_ = w;
        mark_route_dirty(ch);
      }
    }
    sim::SimTime key = predict_drain(ch, now);
    if (ch->f_ != nullptr && ch->next_refresh_ < key) key = ch->next_refresh_;
    if (key < sim::kTimeInfinity) heap_update(ch, key);
  }

  for (FlowChannel* ch : completed_scratch_) {
    assert(!ch->queue_.empty());
    FlowChannel::Message msg = std::move(ch->queue_.front());
    ch->queue_.pop_front();
    ch->state_ = FlowChannel::State::kIdle;
    ch->total_ = ch->remaining_ = 0.0;
    busy_remove(ch);
    ++stats_.messages_completed;
    // The callback may post new messages (request/response patterns do,
    // synchronously); they land in start_queue_ and enter this same
    // timestamp's allocation.
    if (msg.done) msg.done(now);
    // FIFO backlog on this channel: restart via the same start path.
    if (!ch->queue_.empty() && !ch->in_start_queue_) {
      ch->in_start_queue_ = true;
      start_queue_.push_back(ch);
    }
  }

  if (routes_dirty_) {
    routes_dirty_ = false;
    refresh_capacities();
    reroute_busy();
    // Stall/unstall transitions ride topology-change passes only: between
    // them capacities are constant, so aliveness cannot change.
    for (FlowChannel* ch : busy_) {
      if (ch->state_ != FlowChannel::State::kSending) continue;
      bool alive = ch->route_valid_;
      if (alive) {
        for (std::int32_t h = 0; h < ch->route_len_; ++h) {
          if (link_capacity_[static_cast<std::size_t>(
                  route_pool_[ch->route_base_ + h])] <= 0.0) {
            alive = false;
            break;
          }
        }
      }
      if (alive) {
        if (ch->stalled_) {
          make_unstalled(ch, now);
        } else {
          add_membership(ch);  // Re-enter under the re-resolved route.
        }
      } else if (!ch->stalled_) {
        make_stalled(ch, now);
      }
    }
    dirty_all_ = true;
  }

  for (FlowChannel* ch : start_queue_) {
    ch->in_start_queue_ = false;
    if (ch->state_ != FlowChannel::State::kIdle || ch->queue_.empty()) {
      continue;
    }
    ch->state_ = FlowChannel::State::kSending;
    ch->total_ = ch->remaining_ =
        static_cast<double>(ch->queue_.front().bytes);
    ch->rate_ = 0.0;
    ch->settled_at_ = now;
    ch->stalled_ = false;
    busy_add(ch);
    if (!ch->route_valid_) resolve_route_span(ch);
    bool alive = ch->route_valid_;
    if (alive) {
      for (std::int32_t h = 0; h < ch->route_len_; ++h) {
        if (link_capacity_[static_cast<std::size_t>(
                route_pool_[ch->route_base_ + h])] <= 0.0) {
          alive = false;
          break;
        }
      }
    }
    if (alive) {
      ch->weight_ = ch->current_weight();
      ++sending_count_;
      if (ch->f_ != nullptr) {
        ++mltcp_sending_;
        ch->next_refresh_ = now + cfg_.weight_refresh;
        heap_update(ch, ch->next_refresh_);
      }
      add_membership(ch);
      mark_route_dirty(ch);
    } else {
      ch->stalled_ = true;
      ++stats_.stalls;
    }
  }
  start_queue_.clear();

  // Everything requested so far (starts, completions) is absorbed by the
  // allocation below; only topology churn arriving mid-callback still needs
  // its own pass.
  if (!routes_dirty_) recompute_pending_ = false;

  reallocate(now);
  in_recompute_ = false;
  if (recompute_pending_) {
    recompute_pending_ = false;
    timer_.arm(0);
  }
}

}  // namespace mltcp::flowsim
