#include "flowsim/flow_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>

#include "core/mltcp.hpp"
#include "telemetry/tracer.hpp"

namespace mltcp::flowsim {

namespace {

/// Bytes left below which a message counts as fully serialized. Predictions
/// arm the timer one nanosecond past the exact drain time, so remaining
/// lands at or below zero; the epsilon only absorbs float drift.
constexpr double kDrainEpsilon = 1e-3;

/// What a faulted link can actually carry, in bytes/second. Down and
/// blackholed links carry nothing (routes may still point at them); a
/// drop-burst fault derates the link to the goodput a loss-recovering
/// transport sustains across it.
double effective_capacity(const net::Link& link) {
  if (!link.up() || link.blackhole()) return 0.0;
  const double keep = 1.0 - link.fault_drop_probability();
  return keep > 0.0 ? link.rate_bps() * keep / 8.0 : 0.0;
}

/// Walks the data path src -> dst the way a packet would travel it: host
/// uplink first, then each switch's ECMP choice for this flow id
/// (Switch::route_for_flow — the identical hash the packet backend runs),
/// until the destination host. Returns false when no complete path exists.
bool resolve_route(net::Host* src, net::Host* dst, net::FlowId flow,
                   std::size_t max_hops,
                   std::vector<const net::Link*>& route,
                   sim::SimTime& delay) {
  route.clear();
  delay = 0;
  net::Link* link = src->uplink();
  const net::NodeId dst_id = dst->id();
  std::size_t hops = 0;
  while (link != nullptr) {
    route.push_back(link);
    delay += link->propagation_delay();
    net::Node* next = link->destination();
    if (next == dst) return true;
    auto* sw = dynamic_cast<net::Switch*>(next);
    if (sw == nullptr) return false;      // Landed on the wrong host.
    if (++hops > max_hops) return false;  // Transient routing loop.
    link = sw->route_for_flow(dst_id, flow);
  }
  return false;  // No uplink, or a switch had no route (fault repair).
}

}  // namespace

/// One channel of the flow-level backend: a FIFO of messages, the head of
/// which is in flight as a fluid flow.
class FlowSimulator::FlowChannel final : public workload::Channel {
 public:
  enum class State {
    kIdle,      ///< No message in flight.
    kSending,   ///< Head message serializing at rate_.
    kDraining,  ///< All bytes serialized; last byte propagating.
  };

  FlowChannel(FlowSimulator& owner, net::Host* src, net::Host* dst,
              net::FlowId id,
              std::shared_ptr<const core::AggressivenessFunction> f)
      : owner_(owner), src_(src), dst_(dst), id_(id), f_(std::move(f)) {}

  void send_message(std::int64_t bytes, Completion on_complete) override {
    assert(bytes >= 0);
    queue_.push_back(Message{bytes, std::move(on_complete)});
    ++owner_.stats_.messages_posted;
    // A busy channel needs no recompute: the new message queues FIFO
    // behind the head and the allocation is untouched until it starts.
    if (state_ == State::kIdle && !in_start_queue_) {
      in_start_queue_ = true;
      owner_.start_queue_.push_back(this);
      owner_.schedule_recompute();
    }
  }

  net::FlowId id() const override { return id_; }

 private:
  friend class FlowSimulator;

  struct Message {
    std::int64_t bytes = 0;
    Completion done;
  };

  /// Current max-min weight: F(bytes_ratio) of the in-flight message for
  /// MLTCP channels, the neutral 1.0 otherwise. Clamped away from zero so a
  /// pathological F cannot starve the water-filling loop.
  double current_weight() const {
    if (f_ == nullptr) return 1.0;
    const double ratio =
        total_ > 0.0 ? std::clamp((total_ - remaining_) / total_, 0.0, 1.0)
                     : 1.0;
    return std::max((*f_)(ratio), 1e-6);
  }

  FlowSimulator& owner_;
  net::Host* src_;
  net::Host* dst_;
  net::FlowId id_;
  std::shared_ptr<const core::AggressivenessFunction> f_;

  std::deque<Message> queue_;  ///< Head = in-flight message (when busy).
  State state_ = State::kIdle;
  double total_ = 0.0;      ///< Bytes of the head message.
  double remaining_ = 0.0;  ///< Bytes of the head message not yet sent.
  double rate_ = 0.0;       ///< Allocated rate, bytes/second.
  double weight_ = 1.0;     ///< Weight used by the current allocation.
  sim::SimTime drain_until_ = 0;  ///< Last-byte arrival (kDraining).
  bool stalled_ = false;  ///< Route dead/unroutable; waiting on topology.
  bool in_start_queue_ = false;

  std::vector<const net::Link*> route_;
  sim::SimTime route_delay_ = 0;  ///< Sum of propagation delays en route.
  bool route_valid_ = false;

  bool frozen_ = false;  ///< Water-filling scratch.
};

FlowSimulator::FlowSimulator(sim::Simulator& simulator,
                             net::Topology& topology, FlowSimConfig cfg)
    : sim_(simulator),
      topo_(topology),
      cfg_(cfg),
      timer_(simulator, [this] { on_timer(); }) {
  topo_.set_change_hook([this] {
    routes_dirty_ = true;
    schedule_recompute();
  });
}

FlowSimulator::~FlowSimulator() { topo_.set_change_hook({}); }

workload::Channel* FlowSimulator::create_channel(
    const workload::ChannelSpec& spec) {
  assert(spec.src != nullptr && spec.dst != nullptr);
  // Probe the congestion-control factory once: an MLTCP-augmented
  // controller carries the aggressiveness function the fluid allocation
  // needs; everything else (Reno/Cubic/DCTCP/Swift, window configs) is
  // packet-level mechanism the fluid model abstracts away.
  std::shared_ptr<const core::AggressivenessFunction> f;
  if (spec.cc) {
    if (const auto probe = spec.cc(); probe != nullptr) {
      if (const auto* gain =
              dynamic_cast<const core::MltcpGain*>(&probe->window_gain())) {
        f = gain->function_ptr();
      }
    }
  }
  channels_.push_back(std::make_unique<FlowChannel>(*this, spec.src, spec.dst,
                                                    spec.id, std::move(f)));
  return channels_.back().get();
}

std::vector<FlowRate> FlowSimulator::current_rates() const {
  std::vector<FlowRate> out;
  for (const FlowChannel* ch : busy_) {
    if (ch->state_ != FlowChannel::State::kSending) continue;
    out.push_back(FlowRate{ch->id_, ch->rate_ * 8.0, ch->weight_});
  }
  std::sort(out.begin(), out.end(),
            [](const FlowRate& a, const FlowRate& b) { return a.flow < b.flow; });
  return out;
}

void FlowSimulator::schedule_recompute() {
  if (in_recompute_) {
    recompute_pending_ = true;
    return;
  }
  timer_.arm(0);
}

void FlowSimulator::settle(sim::SimTime now) {
  const sim::SimTime dt = now - settled_at_;
  settled_at_ = now;
  if (dt <= 0) return;
  const double dts = sim::to_seconds(dt);
  for (FlowChannel* ch : busy_) {
    if (ch->state_ != FlowChannel::State::kSending || ch->rate_ <= 0.0) {
      continue;
    }
    ch->remaining_ -= ch->rate_ * dts;
    if (ch->remaining_ < 0.0) ch->remaining_ = 0.0;
  }
}

void FlowSimulator::reroute_busy() {
  for (FlowChannel* ch : busy_) {
    ch->route_valid_ =
        resolve_route(ch->src_, ch->dst_, ch->id_, topo_.links().size(),
                      ch->route_, ch->route_delay_);
    ++stats_.reroutes;
  }
}

void FlowSimulator::reallocate(sim::SimTime now) {
  // Grow the dense link index if the topology gained links since last pass.
  const auto& links = topo_.links();
  if (link_index_.size() != links.size()) {
    link_index_.clear();
    link_index_.reserve(links.size());
    for (std::size_t i = 0; i < links.size(); ++i) {
      link_index_.emplace(links[i].get(), static_cast<std::int32_t>(i));
    }
    link_residual_.resize(links.size());
    link_weight_sum_.resize(links.size());
    link_active_.assign(links.size(), 0);
    link_flows_.resize(links.size());
  }

  // Classify channels: sending channels with a live route enter the
  // water-fill; dead-path channels stall at rate zero until the topology
  // change hook wakes them.
  active_scratch_.clear();
  for (FlowChannel* ch : busy_) {
    if (ch->state_ != FlowChannel::State::kSending) continue;
    if (!ch->route_valid_) {
      ch->route_valid_ = resolve_route(ch->src_, ch->dst_, ch->id_,
                                       links.size(), ch->route_,
                                       ch->route_delay_);
    }
    bool alive = ch->route_valid_;
    if (alive) {
      for (const net::Link* l : ch->route_) {
        if (effective_capacity(*l) <= 0.0) {
          alive = false;
          break;
        }
      }
    }
    if (!alive) {
      if (!ch->stalled_) {
        ch->stalled_ = true;
        ++stats_.stalls;
      }
      ch->rate_ = 0.0;
      continue;
    }
    ch->stalled_ = false;
    ch->weight_ = ch->current_weight();
    ch->frozen_ = false;
    active_scratch_.push_back(ch);
  }

  // Weighted max-min water-filling: repeatedly find the tightest link
  // (smallest residual capacity per unit of unfrozen weight), freeze its
  // flows at weight * share, and charge their rates to every other link on
  // their routes.
  used_links_.clear();
  for (FlowChannel* ch : active_scratch_) {
    for (const net::Link* l : ch->route_) {
      const auto li = static_cast<std::size_t>(link_index_.at(l));
      if (link_active_[li] == 0) {
        used_links_.push_back(static_cast<std::int32_t>(li));
        link_residual_[li] = effective_capacity(*l);
        link_weight_sum_[li] = 0.0;
        link_flows_[li].clear();
      }
      link_active_[li] += 1;
      link_weight_sum_[li] += ch->weight_;
      link_flows_[li].push_back(ch);
    }
  }

  std::size_t unfrozen = active_scratch_.size();
  ++stats_.recomputes;
  while (unfrozen > 0) {
    ++stats_.waterfill_rounds;
    double min_share = std::numeric_limits<double>::infinity();
    std::int32_t bottleneck = -1;
    for (const std::int32_t li : used_links_) {
      const auto i = static_cast<std::size_t>(li);
      if (link_active_[i] <= 0) continue;
      const double share =
          std::max(link_residual_[i], 0.0) / link_weight_sum_[i];
      if (share < min_share) {
        min_share = share;
        bottleneck = li;
      }
    }
    assert(bottleneck >= 0 && "unfrozen flows imply an unfrozen link");
    if (bottleneck < 0) break;
    for (FlowChannel* ch : link_flows_[static_cast<std::size_t>(bottleneck)]) {
      if (ch->frozen_) continue;
      ch->frozen_ = true;
      ch->rate_ = ch->weight_ * min_share;
      --unfrozen;
      for (const net::Link* l : ch->route_) {
        const auto i = static_cast<std::size_t>(link_index_.at(l));
        link_residual_[i] -= ch->rate_;
        link_weight_sum_[i] -= ch->weight_;
        link_active_[i] -= 1;
      }
    }
  }
  // Reset the per-link active counts for the next pass (residual/weight
  // arrays are re-initialized on first touch).
  for (const std::int32_t li : used_links_) {
    link_active_[static_cast<std::size_t>(li)] = 0;
  }

  // Predict the next event: earliest message drain or last-byte arrival,
  // capped by the weight-refresh period while MLTCP weights are moving.
  sim::SimTime next = sim::kTimeInfinity;
  bool mltcp_active = false;
  for (const FlowChannel* ch : busy_) {
    if (ch->state_ == FlowChannel::State::kSending && ch->rate_ > 0.0) {
      const double secs = ch->remaining_ / ch->rate_;
      const auto drain =
          now + static_cast<sim::SimTime>(std::ceil(secs * 1e9)) + 1;
      next = std::min(next, drain);
      if (ch->f_ != nullptr && ch->remaining_ > kDrainEpsilon) {
        mltcp_active = true;
      }
    } else if (ch->state_ == FlowChannel::State::kDraining) {
      next = std::min(next, ch->drain_until_);
    }
  }
  if (mltcp_active && cfg_.weight_refresh > 0) {
    next = std::min(next, now + cfg_.weight_refresh);
  }
  if (next < sim::kTimeInfinity) {
    timer_.arm_at(next);
  } else {
    timer_.cancel();
  }

  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kFlowsim)) {
    t->instant(telemetry::Category::kFlowsim, "reallocate", now,
               telemetry::track_flowsim(), "active",
               static_cast<double>(active_scratch_.size()), "rounds",
               static_cast<double>(stats_.waterfill_rounds));
  }
}

void FlowSimulator::on_timer() {
  const sim::SimTime now = sim_.now();
  in_recompute_ = true;
  settle(now);

  // Serialization-complete transitions, then completions, in busy order
  // (message-start order — deterministic, single-timer driven).
  std::vector<FlowChannel*> completed;
  for (FlowChannel* ch : busy_) {
    if (ch->state_ == FlowChannel::State::kSending &&
        ch->remaining_ <= kDrainEpsilon && ch->rate_ > 0.0) {
      ch->state_ = FlowChannel::State::kDraining;
      ch->drain_until_ = now + ch->route_delay_;
      ch->rate_ = 0.0;
    }
    if (ch->state_ == FlowChannel::State::kDraining &&
        ch->drain_until_ <= now) {
      completed.push_back(ch);
    }
  }
  for (FlowChannel* ch : completed) {
    assert(!ch->queue_.empty());
    FlowChannel::Message msg = std::move(ch->queue_.front());
    ch->queue_.pop_front();
    ch->state_ = FlowChannel::State::kIdle;
    ch->total_ = ch->remaining_ = 0.0;
    ++stats_.messages_completed;
    // The callback may post new messages (request/response patterns do,
    // synchronously); they land in start_queue_ and enter this same
    // timestamp's allocation.
    if (msg.done) msg.done(now);
    // FIFO backlog on this channel: restart via the same start path.
    if (!ch->queue_.empty() && !ch->in_start_queue_) {
      ch->in_start_queue_ = true;
      start_queue_.push_back(ch);
    }
  }
  // Channels that went idle leave the busy set before starts re-add them.
  if (!completed.empty()) {
    busy_.erase(std::remove_if(busy_.begin(), busy_.end(),
                               [](const FlowChannel* ch) {
                                 return ch->state_ ==
                                        FlowChannel::State::kIdle;
                               }),
                busy_.end());
  }

  if (routes_dirty_) {
    routes_dirty_ = false;
    reroute_busy();
  }

  for (FlowChannel* ch : start_queue_) {
    ch->in_start_queue_ = false;
    if (ch->state_ != FlowChannel::State::kIdle || ch->queue_.empty()) {
      continue;
    }
    ch->state_ = FlowChannel::State::kSending;
    ch->total_ = ch->remaining_ =
        static_cast<double>(ch->queue_.front().bytes);
    ch->rate_ = 0.0;
    busy_.push_back(ch);
  }
  start_queue_.clear();

  // Everything requested so far (starts, completions) is absorbed by the
  // allocation below; only topology churn arriving mid-callback still needs
  // its own pass.
  if (!routes_dirty_) recompute_pending_ = false;

  reallocate(now);
  in_recompute_ = false;
  if (recompute_pending_) {
    recompute_pending_ = false;
    timer_.arm(0);
  }
}

}  // namespace mltcp::flowsim
