#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/aggressiveness.hpp"
#include "net/topology.hpp"
#include "sim/indexed_heap.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "workload/backend.hpp"

namespace mltcp::flowsim {

/// Tuning knobs of the flow-level backend.
struct FlowSimConfig {
  /// Upper bound on how stale an MLTCP channel's aggressiveness weight may
  /// get: while any MLTCP channel is mid-message the allocation is
  /// recomputed at least this often, so F(bytes_ratio) tracks the message's
  /// progress even when no arrival/completion forces a recompute. The
  /// packet backend updates the gain every ACK; this is the fluid analogue
  /// at a coarser, configurable grain.
  sim::SimTime weight_refresh = sim::milliseconds(20);
  /// Fraction of a link's capacity below which residual capacity is treated
  /// as exhausted by the water-filling loop (guards float drift).
  double capacity_epsilon = 1e-9;
  /// Escape hatch: water-fill the whole fabric on every recompute instead
  /// of only the dirty region — the reference the incremental path is
  /// differentially tested against. Model output (rates, completion times)
  /// is bit-identical either way; only the work done differs. Defaults to
  /// the MLTCP_FLOWSIM_FULL_RECOMPUTE environment variable.
  bool full_recompute = false;
};

/// Counters exposed for benchmarks, telemetry and the fidelity gate.
struct FlowSimStats {
  std::int64_t recomputes = 0;        ///< Allocation passes run.
  std::int64_t full_recomputes = 0;   ///< Passes with the whole fabric dirty.
  std::int64_t waterfill_rounds = 0;  ///< Bottleneck-freeze rounds, total.
  /// Channels that entered a water-fill (re-rated). The incremental path's
  /// work metric: the full-recompute reference pays |sending| per pass,
  /// the dirty-set path only the affected closure.
  std::int64_t waterfill_channels = 0;
  /// Sending channels a pass left untouched (their converged rates were
  /// provably unaffected by the dirty region).
  std::int64_t frozen_skips = 0;
  std::int64_t dirty_links = 0;   ///< Links in dirty closures, summed.
  std::int64_t heap_updates = 0;  ///< Drain-heap inserts/re-keys/removals.
  std::int64_t messages_posted = 0;
  std::int64_t messages_completed = 0;
  std::int64_t reroutes = 0;  ///< Route re-resolutions after topology churn.
  std::int64_t stalls = 0;    ///< Messages that hit an unroutable/dead path.
};

/// Instantaneous allocation of one active channel, for tests and traces.
struct FlowRate {
  net::FlowId flow = net::kInvalidFlow;
  double rate_bps = 0.0;  ///< Current fluid rate (bits/s; 0 when stalled).
  double weight = 1.0;    ///< Max-min weight in force (F(bytes_ratio)).
};

/// Flow-level simulation backend: advances transfers as fluid flows at
/// weighted max-min fair rates over the real topology's routes instead of
/// packet by packet. The weight of an MLTCP channel is F(bytes_ratio) of
/// its in-flight message — the paper's observation is that MLTCP flows
/// converge to bandwidth shares proportional to F within a few RTTs, which
/// is exactly the steady state a weighted max-min allocation computes
/// directly. Non-MLTCP channels weigh 1.0 (plain TCP's equal share).
///
/// Event model: one timer drives the whole backend, armed from an indexed
/// min-heap of predicted drain/serialization instants. Every firing settles
/// and completes exactly the channels whose predicted instant arrived
/// (callbacks fire in channel-creation order — deterministic and
/// thread-count independent), starts queued messages, re-resolves routes if
/// the topology changed, refreshes MLTCP weights, and water-fills *only the
/// dirty region*: an arrival/completion/weight change marks the links on
/// the affected channel's route dirty, and the recompute re-rates just the
/// channels whose bottleneck sets transitively intersect those links (via
/// the link->flow adjacency), leaving every other converged rate — and its
/// heap entry — untouched. Because the weighted max-min allocation
/// decomposes over connected components of the flow/link sharing graph, the
/// skipped rates are exactly what a full water-fill would recompute, so the
/// incremental and full paths produce bit-identical trajectories (enforced
/// by FlowSimConfig::full_recompute differential tests and the fidelity
/// gate). Between firings every rate is constant, so predictions are exact
/// up to nanosecond rounding.
///
/// Faults are read straight off the shared net::Link state the scenario
/// engine already mutates: a down or blackholed link contributes zero
/// capacity (channels crossing it stall and wake on the topology change
/// hook), a drop-burst fault with probability p derates the link to
/// (1 - p) of its rate (the goodput a loss-recovery transport sustains).
/// Route changes re-resolve with the same per-flow ECMP hash the packet
/// backend uses (Switch::route_for_flow), so a channel rides the same
/// spine path at either fidelity. Routes resolve once into dense spans of
/// link indices in a shared pool (the switch-route layout), so the
/// water-fill inner loops are hash-free and pointer-chase-free.
class FlowSimulator : public workload::Backend {
 public:
  /// Installs itself as `topology`'s change observer (see
  /// Topology::set_change_hook); the topology must outlive the simulator.
  FlowSimulator(sim::Simulator& simulator, net::Topology& topology,
                FlowSimConfig cfg = {});
  ~FlowSimulator() override;

  FlowSimulator(const FlowSimulator&) = delete;
  FlowSimulator& operator=(const FlowSimulator&) = delete;

  workload::Channel* create_channel(const workload::ChannelSpec& spec)
      override;
  const char* name() const override { return "flowsim"; }

  const FlowSimStats& stats() const { return stats_; }

  /// Channels currently transferring (or stalled mid-message), with their
  /// allocated rates — a debugging/testing window into the allocation.
  std::vector<FlowRate> current_rates() const;

  /// Reference allocation: re-derives every sending channel's rate with a
  /// from-scratch global water-fill over the channels' resolved routes,
  /// independent of the incremental bookkeeping (dirty sets, link
  /// membership lists), without mutating any state. The differential tests
  /// assert current_rates() == reference_rates() after arbitrary event
  /// histories.
  std::vector<FlowRate> reference_rates() const;

  /// Total channels created.
  std::size_t channel_count() const { return channels_.size(); }

 private:
  class FlowChannel;
  friend class FlowChannel;

  struct HeapPosOf {
    std::int32_t& operator()(FlowChannel* ch) const;
  };
  using DrainHeap = sim::IndexedMinHeap4<sim::SimTime, FlowChannel*, HeapPosOf>;

  /// One sending channel's membership in a link's flow list, with the hop
  /// index that lets a swap-removal repair the moved entry's slot.
  struct MemberEntry {
    FlowChannel* ch = nullptr;
    std::int32_t hop = 0;
  };
  /// Per-link flow list: a (base, size, capacity) window into the shared
  /// member pool. Blocks are power-of-two sized and recycled through
  /// per-class free lists, so growing lists never leak pool space and the
  /// per-link vectors cost no standalone heap allocations.
  struct LinkList {
    std::int32_t base = 0;
    std::int32_t size = 0;
    std::int32_t cap = 0;  ///< 0 or a power of two.
  };

  void on_timer();
  /// Brings one channel's remaining-bytes account up to `now` at its
  /// current (constant) rate. Channels settle lazily — only when their
  /// rate is about to change, their weight is read, or they complete — so
  /// untouched channels cost nothing per event.
  void settle_channel(FlowChannel* ch, sim::SimTime now);
  /// Re-resolves the route of every busy channel (after topology churn).
  void reroute_busy();
  /// Refreshes weights, water-fills the dirty closure, re-keys re-rated
  /// channels in the drain heap and arms the timer.
  void reallocate(sim::SimTime now);
  /// Called by channels when a message is posted on an idle channel and by
  /// the topology change hook.
  void schedule_recompute();

  /// Grows the dense per-link arrays (and refreshes cached capacities) if
  /// the topology gained links since the last pass.
  void ensure_link_arrays();
  void refresh_capacities();
  /// Resolves src->dst into a dense span of link indices in route_pool_.
  /// Returns false (and leaves the span empty) when no complete path
  /// exists.
  bool resolve_route_span(FlowChannel* ch);

  void mark_link_dirty(std::int32_t li);
  void mark_route_dirty(const FlowChannel* ch);

  void add_membership(FlowChannel* ch);
  void remove_membership(FlowChannel* ch);
  void ensure_member_capacity(std::int32_t li);

  void busy_add(FlowChannel* ch);
  void busy_remove(FlowChannel* ch);

  /// Predicted serialization-complete instant at the channel's current
  /// rate, one nanosecond past the exact drain time.
  sim::SimTime predict_drain(const FlowChannel* ch, sim::SimTime now) const;
  void heap_update(FlowChannel* ch, sim::SimTime key);
  void heap_remove(FlowChannel* ch);

  /// Transitions a sending channel to/from the stalled (dead-route) state,
  /// maintaining membership lists, heap entries and counters.
  void make_stalled(FlowChannel* ch, sim::SimTime now);
  void make_unstalled(FlowChannel* ch, sim::SimTime now);

  sim::Simulator& sim_;
  net::Topology& topo_;
  FlowSimConfig cfg_;
  sim::Timer timer_;

  std::vector<std::unique_ptr<FlowChannel>> channels_;
  /// Link* -> dense index, used only on the cold route-resolution path;
  /// the hot loops run on int32 spans.
  std::unordered_map<const net::Link*, std::int32_t> link_index_;
  std::vector<const net::Link*> link_ptrs_;  ///< Dense index -> link.
  std::vector<double> link_capacity_;  ///< Effective bytes/s (fault-derated).

  /// Route spans: per-channel (base, len) windows into route_pool_ (link
  /// indices) with slot_pool_ alongside (the channel's position inside each
  /// crossed link's member list).
  std::vector<std::int32_t> route_pool_;
  std::vector<std::int32_t> slot_pool_;

  /// link -> sending flows crossing it, the adjacency the dirty-set closure
  /// and the water-fill both walk.
  std::vector<LinkList> link_members_;
  std::vector<MemberEntry> member_pool_;
  std::array<std::vector<std::int32_t>, 31> member_free_;

  /// Water-fill scratch (sized to links, reused across recomputes).
  std::vector<double> link_residual_;
  std::vector<double> link_weight_sum_;
  std::vector<std::int32_t> link_active_;
  std::vector<std::int32_t> used_links_;  ///< Links touched this pass.

  /// Dirty-region bookkeeping.
  std::vector<std::uint8_t> link_dirty_;
  std::vector<std::int32_t> dirty_links_;
  bool dirty_all_ = false;

  std::vector<FlowChannel*> affected_;  ///< Closure of this pass.
  std::vector<double> prev_rate_;       ///< Rates before this pass's fill.
  std::vector<FlowChannel*> due_;       ///< Heap entries popped this firing.
  std::vector<FlowChannel*> completed_scratch_;
  std::uint32_t visit_epoch_ = 0;

  DrainHeap drain_heap_;

  /// Channels with a message in flight (sending or draining). Event-loop
  /// work scales with this concurrency bound, not with the total channel
  /// count — the property that lets a run carry hundreds of thousands of
  /// transfers over a long tail of mostly idle channels.
  std::vector<FlowChannel*> busy_;
  /// Idle channels whose queue gained a message since the last pass.
  std::vector<FlowChannel*> start_queue_;

  /// Sending, non-stalled channels (and the MLTCP subset): the population
  /// the frozen-skip metric and the weight-refresh cap are defined over.
  std::int64_t sending_count_ = 0;
  std::int64_t mltcp_sending_ = 0;

  bool in_recompute_ = false;
  bool recompute_pending_ = false;
  bool routes_dirty_ = false;
  FlowSimStats stats_;
};

}  // namespace mltcp::flowsim
