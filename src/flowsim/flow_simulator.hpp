#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/aggressiveness.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "workload/backend.hpp"

namespace mltcp::flowsim {

/// Tuning knobs of the flow-level backend.
struct FlowSimConfig {
  /// Upper bound on how stale an MLTCP channel's aggressiveness weight may
  /// get: while any MLTCP channel is mid-message the allocation is
  /// recomputed at least this often, so F(bytes_ratio) tracks the message's
  /// progress even when no arrival/completion forces a recompute. The
  /// packet backend updates the gain every ACK; this is the fluid analogue
  /// at a coarser, configurable grain.
  sim::SimTime weight_refresh = sim::milliseconds(20);
  /// Fraction of a link's capacity below which residual capacity is treated
  /// as exhausted by the water-filling loop (guards float drift).
  double capacity_epsilon = 1e-9;
};

/// Counters exposed for benchmarks and the fidelity gate.
struct FlowSimStats {
  std::int64_t recomputes = 0;        ///< Allocation passes run.
  std::int64_t waterfill_rounds = 0;  ///< Bottleneck-freeze rounds, total.
  std::int64_t messages_posted = 0;
  std::int64_t messages_completed = 0;
  std::int64_t reroutes = 0;  ///< Route re-resolutions after topology churn.
  std::int64_t stalls = 0;    ///< Messages that hit an unroutable/dead path.
};

/// Instantaneous allocation of one active channel, for tests and traces.
struct FlowRate {
  net::FlowId flow = net::kInvalidFlow;
  double rate_bps = 0.0;  ///< Current fluid rate (bits/s; 0 when stalled).
  double weight = 1.0;    ///< Max-min weight in force (F(bytes_ratio)).
};

/// Flow-level simulation backend: advances transfers as fluid flows at
/// weighted max-min fair rates over the real topology's routes instead of
/// packet by packet. The weight of an MLTCP channel is F(bytes_ratio) of
/// its in-flight message — the paper's observation is that MLTCP flows
/// converge to bandwidth shares proportional to F within a few RTTs, which
/// is exactly the steady state a weighted max-min allocation computes
/// directly. Non-MLTCP channels weigh 1.0 (plain TCP's equal share).
///
/// Event model: one timer drives the whole backend. Every firing settles
/// elapsed bytes at the current rates, completes messages whose bytes have
/// drained (callbacks fire in channel-creation order — deterministic and
/// thread-count independent), starts queued messages, re-resolves routes if
/// the topology changed, refreshes MLTCP weights, water-fills, and arms the
/// timer at the earliest predicted completion (capped by weight_refresh).
/// Between firings every rate is constant, so predictions are exact up to
/// nanosecond rounding.
///
/// Faults are read straight off the shared net::Link state the scenario
/// engine already mutates: a down or blackholed link contributes zero
/// capacity (channels crossing it stall and wake on the topology change
/// hook), a drop-burst fault with probability p derates the link to
/// (1 - p) of its rate (the goodput a loss-recovery transport sustains).
/// Route changes re-resolve with the same per-flow ECMP hash the packet
/// backend uses (Switch::route_for_flow), so a channel rides the same
/// spine path at either fidelity.
class FlowSimulator : public workload::Backend {
 public:
  /// Installs itself as `topology`'s change observer (see
  /// Topology::set_change_hook); the topology must outlive the simulator.
  FlowSimulator(sim::Simulator& simulator, net::Topology& topology,
                FlowSimConfig cfg = {});
  ~FlowSimulator() override;

  FlowSimulator(const FlowSimulator&) = delete;
  FlowSimulator& operator=(const FlowSimulator&) = delete;

  workload::Channel* create_channel(const workload::ChannelSpec& spec)
      override;
  const char* name() const override { return "flowsim"; }

  const FlowSimStats& stats() const { return stats_; }

  /// Channels currently transferring (or stalled mid-message), with their
  /// allocated rates — a debugging/testing window into the allocation.
  std::vector<FlowRate> current_rates() const;

  /// Total channels created.
  std::size_t channel_count() const { return channels_.size(); }

 private:
  class FlowChannel;
  friend class FlowChannel;

  void on_timer();
  /// Advances every sending channel by (now - settled_at_) at its current
  /// rate.
  void settle(sim::SimTime now);
  /// Re-resolves the route of every busy channel (after topology churn).
  void reroute_busy();
  /// Refreshes weights, water-fills, predicts the next event and arms the
  /// timer.
  void reallocate(sim::SimTime now);
  /// Called by channels when a message is posted on an idle channel and by
  /// the topology change hook.
  void schedule_recompute();

  sim::Simulator& sim_;
  net::Topology& topo_;
  FlowSimConfig cfg_;
  sim::Timer timer_;

  std::vector<std::unique_ptr<FlowChannel>> channels_;
  /// Dense link index for the water-filling scratch arrays; rebuilt when
  /// the topology grows.
  std::unordered_map<const net::Link*, std::int32_t> link_index_;
  /// Scratch (sized to links, reused across recomputes): residual capacity
  /// (bytes/s), unfrozen weight sum and unfrozen flow count per link, plus
  /// the unfrozen channels crossing each link.
  std::vector<double> link_residual_;
  std::vector<double> link_weight_sum_;
  std::vector<std::int32_t> link_active_;
  std::vector<std::vector<FlowChannel*>> link_flows_;
  std::vector<std::int32_t> used_links_;      ///< Links touched this pass.
  std::vector<FlowChannel*> active_scratch_;  ///< Channels in this pass.

  /// Channels with a message in flight (sending or draining). Event-loop
  /// work scales with this concurrency bound, not with the total channel
  /// count — the property that lets a run carry hundreds of thousands of
  /// transfers over a long tail of mostly idle channels.
  std::vector<FlowChannel*> busy_;
  /// Idle channels whose queue gained a message since the last pass.
  std::vector<FlowChannel*> start_queue_;

  sim::SimTime settled_at_ = 0;
  bool in_recompute_ = false;
  bool recompute_pending_ = false;
  bool routes_dirty_ = false;
  FlowSimStats stats_;
};

}  // namespace mltcp::flowsim
