#include "workload/profiles.hpp"

namespace mltcp::workload {

ModelProfile gpt3_profile() {
  return ModelProfile{"gpt3", sim::milliseconds(1200), 0.25};
}

ModelProfile gpt2_profile() {
  return ModelProfile{"gpt2", sim::milliseconds(1800), 0.15};
}

ModelProfile bert_profile() {
  return ModelProfile{"bert", sim::milliseconds(600), 0.20};
}

ModelProfile vgg_profile() {
  return ModelProfile{"vgg", sim::milliseconds(900), 0.10};
}

sim::SimTime comm_time(const ModelProfile& p) {
  return static_cast<sim::SimTime>(
      static_cast<double>(p.ideal_iteration_time) * p.comm_fraction);
}

sim::SimTime compute_time(const ModelProfile& p) {
  return p.ideal_iteration_time - comm_time(p);
}

std::int64_t comm_bytes(const ModelProfile& p, double link_rate_bps) {
  return static_cast<std::int64_t>(sim::to_seconds(comm_time(p)) *
                                   link_rate_bps / 8.0);
}

}  // namespace mltcp::workload
