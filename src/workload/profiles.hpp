#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace mltcp::workload {

/// Coarse description of one DNN model's training traffic, following the
/// §4 abstraction: an ideal (isolation) iteration time T and a communication
/// fraction a, with constant full-rate network demand during the
/// communication phase.
struct ModelProfile {
  std::string model_name;
  /// Ideal iteration time T when the job runs alone.
  sim::SimTime ideal_iteration_time = 0;
  /// Fraction a of the iteration spent communicating (at full link rate).
  double comm_fraction = 0.0;
};

/// GPT-3-like profile used for J1 in the paper's motivating experiment
/// (Fig. 1a / Fig. 2): ideal iteration time 1.2 s. The communication
/// fraction is calibrated to 0.25 so that the paper's four-job scenario
/// admits a fully interleaved schedule under the constant-demand assumption
/// of §4 (see DESIGN.md).
ModelProfile gpt3_profile();

/// GPT-2-like profile used for J2..J4 and the Figure 3/4/6 experiments:
/// ideal iteration time 1.8 s, communication fraction 0.15 (six such jobs
/// can still interleave: 6 x 0.15 < 1).
ModelProfile gpt2_profile();

/// BERT-like profile: shorter iterations, moderate communication share.
ModelProfile bert_profile();

/// VGG-like vision profile: compute heavy, light communication.
ModelProfile vgg_profile();

/// Communication-phase duration a*T of a profile.
sim::SimTime comm_time(const ModelProfile& p);

/// Compute-phase duration (1-a)*T of a profile.
sim::SimTime compute_time(const ModelProfile& p);

/// Bytes per iteration so that the communication phase lasts a*T at full
/// link rate: bytes = a * T * rate / 8.
std::int64_t comm_bytes(const ModelProfile& p, double link_rate_bps);

}  // namespace mltcp::workload
