#include "workload/cluster.hpp"

#include <cassert>

namespace mltcp::workload {

Cluster::Cluster(sim::Simulator& simulator, std::uint64_t seed)
    : sim_(simulator), rng_(seed) {}

Job* Cluster::add_job(const JobSpec& spec) {
  assert(spec.cc != nullptr && "JobSpec.cc (congestion control) must be set");
  assert(!spec.flows.empty());

  std::vector<Job::FlowBinding> bindings;
  std::vector<tcp::TcpFlow*> raw_flows;
  bindings.reserve(spec.flows.size());
  for (const FlowSpec& fs : spec.flows) {
    assert(fs.src != nullptr && fs.dst != nullptr);
    auto flow = std::make_unique<tcp::TcpFlow>(sim_, *fs.src, *fs.dst,
                                               next_flow_id_++, spec.cc(),
                                               spec.sender, spec.receiver);
    bindings.push_back(Job::FlowBinding{flow.get(), fs.bytes_per_iteration});
    raw_flows.push_back(flow.get());
    flows_.push_back(std::move(flow));
  }

  JobConfig cfg;
  cfg.name = spec.name;
  cfg.compute_time = spec.compute_time;
  cfg.noise_stddev_seconds = spec.noise_stddev_seconds;
  cfg.start_time = spec.start_time;
  cfg.max_iterations = spec.max_iterations;
  cfg.gate_period = spec.gate_period;
  cfg.comm_chunks = spec.comm_chunks;
  cfg.chunk_gap = spec.chunk_gap;

  auto job = std::make_unique<Job>(sim_, cfg, std::move(bindings),
                                   rng_.fork());
  Job* ptr = job.get();
  jobs_.push_back(std::move(job));
  flows_by_job_.push_back(std::move(raw_flows));
  return ptr;
}

tcp::TcpFlow* Cluster::add_flow(const FlowSpec& fs, const tcp::CcFactory& cc,
                                const tcp::SenderConfig& sender,
                                const tcp::ReceiverConfig& receiver) {
  assert(cc != nullptr && fs.src != nullptr && fs.dst != nullptr);
  auto flow = std::make_unique<tcp::TcpFlow>(sim_, *fs.src, *fs.dst,
                                             next_flow_id_++, cc(), sender,
                                             receiver);
  tcp::TcpFlow* ptr = flow.get();
  flows_.push_back(std::move(flow));
  return ptr;
}

void Cluster::start_all() {
  for (auto& job : jobs_) job->start();
}

Job* Cluster::find_job(const std::string& name) const {
  for (const auto& job : jobs_) {
    if (job->name() == name) return job.get();
  }
  return nullptr;
}

}  // namespace mltcp::workload
