#include "workload/cluster.hpp"

#include <cassert>

namespace mltcp::workload {

namespace {

/// Packet-backend channel: a thin adapter over one TcpFlow. The virtual
/// hop is the whole cost of backend neutrality on the packet path — the
/// message itself still goes straight to the sender.
class TcpChannel final : public Channel {
 public:
  explicit TcpChannel(tcp::TcpFlow* flow) : flow_(flow) {}

  void send_message(std::int64_t bytes, Completion on_complete) override {
    flow_->send_message(bytes, std::move(on_complete));
  }

  net::FlowId id() const override { return flow_->id(); }

  tcp::TcpFlow* tcp() override { return flow_; }

 private:
  tcp::TcpFlow* flow_;
};

}  // namespace

Cluster::Cluster(sim::Simulator& simulator, std::uint64_t seed)
    : sim_(simulator), rng_(seed) {}

void Cluster::set_backend(Backend* backend) {
  assert(flows_.empty() && channels_.empty() &&
         "install the backend before creating any channels");
  backend_ = backend;
}

Channel* Cluster::make_packet_channel(const FlowSpec& fs,
                                      const tcp::CcFactory& cc,
                                      const tcp::SenderConfig& sender,
                                      const tcp::ReceiverConfig& receiver) {
  auto flow = std::make_unique<tcp::TcpFlow>(sim_, *fs.src, *fs.dst,
                                             next_flow_id_++, cc(), sender,
                                             receiver);
  auto channel = std::make_unique<TcpChannel>(flow.get());
  Channel* ptr = channel.get();
  flows_.push_back(std::move(flow));
  channels_.push_back(std::move(channel));
  return ptr;
}

Channel* Cluster::add_channel(const FlowSpec& fs, const tcp::CcFactory& cc,
                              const tcp::SenderConfig& sender,
                              const tcp::ReceiverConfig& receiver) {
  assert(cc != nullptr && fs.src != nullptr && fs.dst != nullptr);
  if (backend_ == nullptr) {
    return make_packet_channel(fs, cc, sender, receiver);
  }
  ChannelSpec spec;
  spec.src = fs.src;
  spec.dst = fs.dst;
  spec.id = next_flow_id_++;
  spec.cc = cc;
  spec.sender = sender;
  spec.receiver = receiver;
  return backend_->create_channel(spec);
}

Job* Cluster::add_job(const JobSpec& spec) {
  assert(spec.cc != nullptr && "JobSpec.cc (congestion control) must be set");
  assert(!spec.flows.empty());

  std::vector<Job::FlowBinding> bindings;
  std::vector<tcp::TcpFlow*> raw_flows;
  bindings.reserve(spec.flows.size());
  for (const FlowSpec& fs : spec.flows) {
    assert(fs.src != nullptr && fs.dst != nullptr);
    Channel* channel = add_channel(fs, spec.cc, spec.sender, spec.receiver);
    bindings.push_back(Job::FlowBinding{channel, fs.bytes_per_iteration});
    if (tcp::TcpFlow* flow = channel->tcp()) raw_flows.push_back(flow);
  }

  JobConfig cfg;
  cfg.name = spec.name;
  cfg.compute_time = spec.compute_time;
  cfg.noise_stddev_seconds = spec.noise_stddev_seconds;
  cfg.start_time = spec.start_time;
  cfg.max_iterations = spec.max_iterations;
  cfg.gate_period = spec.gate_period;
  cfg.comm_chunks = spec.comm_chunks;
  cfg.chunk_gap = spec.chunk_gap;

  auto job = std::make_unique<Job>(sim_, cfg, std::move(bindings),
                                   rng_.fork());
  Job* ptr = job.get();
  jobs_.push_back(std::move(job));
  flows_by_job_.push_back(std::move(raw_flows));
  return ptr;
}

tcp::TcpFlow* Cluster::add_flow(const FlowSpec& fs, const tcp::CcFactory& cc,
                                const tcp::SenderConfig& sender,
                                const tcp::ReceiverConfig& receiver) {
  assert(backend_ == nullptr &&
         "add_flow is packet-only; use add_channel on other backends");
  Channel* channel = add_channel(fs, cc, sender, receiver);
  return channel->tcp();
}

void Cluster::start_all() {
  for (auto& job : jobs_) job->start();
}

Job* Cluster::find_job(const std::string& name) const {
  for (const auto& job : jobs_) {
    if (job->name() == name) return job.get();
  }
  return nullptr;
}

}  // namespace mltcp::workload
