#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/cong_control.hpp"
#include "tcp/flow.hpp"
#include "workload/backend.hpp"
#include "workload/collective.hpp"
#include "workload/job.hpp"

namespace mltcp::workload {

/// Everything needed to instantiate one job on the cluster.
struct JobSpec {
  std::string name;
  std::vector<FlowSpec> flows;
  sim::SimTime compute_time = 0;
  double noise_stddev_seconds = 0.0;
  sim::SimTime start_time = 0;
  int max_iterations = 0;
  /// See JobConfig::gate_period (centralized schedule enforcement).
  sim::SimTime gate_period = 0;
  /// See JobConfig::comm_chunks (pipeline/microbatched communication).
  int comm_chunks = 1;
  sim::SimTime chunk_gap = 0;
  /// Congestion controller per flow. Must be set.
  tcp::CcFactory cc;
  tcp::SenderConfig sender;
  tcp::ReceiverConfig receiver;
};

/// Owns the communication channels and Job state machines of one
/// experiment, allocating globally unique flow ids. The topology outlives
/// the cluster. By default channels are real TCP connections (the packet
/// backend); set_backend() reroutes every subsequently created channel
/// through an alternative simulation backend (src/flowsim) while the
/// workload state machines stay unchanged.
class Cluster {
 public:
  Cluster(sim::Simulator& simulator, std::uint64_t seed = 1);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Installs a non-owning channel backend (nullptr restores the built-in
  /// packet backend). Call before any channels exist: mixing backends
  /// within one run is not a supported configuration.
  void set_backend(Backend* backend);
  /// The installed backend, or nullptr when running packet-level.
  Backend* backend() const { return backend_; }
  /// "packet" or the installed backend's name, for reports and CSVs.
  const char* backend_name() const {
    return backend_ != nullptr ? backend_->name() : "packet";
  }

  /// Creates channels and the job state machine. The job is not started.
  /// Safe mid-run: scenario-driven job arrivals call this after start_all()
  /// and then start() the returned job themselves.
  Job* add_job(const JobSpec& spec);

  /// Creates a standalone channel (no job state machine) with a
  /// cluster-unique flow id on the active backend. Traffic sources and
  /// scenario-driven background/legacy traffic post messages on it
  /// directly; the channel lives as long as the cluster (packet) or the
  /// backend (others).
  Channel* add_channel(const FlowSpec& fs, const tcp::CcFactory& cc,
                       const tcp::SenderConfig& sender = {},
                       const tcp::ReceiverConfig& receiver = {});

  /// Packet-only convenience: add_channel + unwrap to the TCP connection.
  /// Asserts when a non-packet backend is installed.
  tcp::TcpFlow* add_flow(const FlowSpec& fs, const tcp::CcFactory& cc,
                         const tcp::SenderConfig& sender = {},
                         const tcp::ReceiverConfig& receiver = {});

  /// Starts every job added so far.
  void start_all();

  /// Job lookup by spec name (linear scan; nullptr if absent). Scenario
  /// scripts reference jobs by name, resolved at apply time.
  Job* find_job(const std::string& name) const;

  const std::vector<std::unique_ptr<Job>>& jobs() const { return jobs_; }
  Job* job(std::size_t i) const { return jobs_.at(i).get(); }
  std::size_t job_count() const { return jobs_.size(); }

  /// TCP flows created for job `i`, in FlowSpec order. Packet backend only:
  /// empty vectors under a flow-level backend (whose channels have no
  /// TcpFlow). Use job(i)->flows() for backend-neutral channel access.
  const std::vector<tcp::TcpFlow*>& flows_of(std::size_t i) const {
    return flows_by_job_.at(i);
  }

 private:
  /// Built-in packet path: creates the TcpFlow and its Channel wrapper,
  /// both cluster-owned.
  Channel* make_packet_channel(const FlowSpec& fs, const tcp::CcFactory& cc,
                               const tcp::SenderConfig& sender,
                               const tcp::ReceiverConfig& receiver);

  sim::Simulator& sim_;
  sim::Rng rng_;
  net::FlowId next_flow_id_ = 1;
  Backend* backend_ = nullptr;  ///< Non-owning; nullptr = packet.
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows_;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< Packet wrappers.
  std::vector<std::vector<tcp::TcpFlow*>> flows_by_job_;
  std::vector<std::unique_ptr<Job>> jobs_;
};

}  // namespace mltcp::workload
