#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "workload/backend.hpp"

namespace mltcp::workload {

/// One training iteration as observed by the job: when its communication
/// phase started/ended and when the following compute phase ended (== the
/// start of the next iteration's communication).
struct IterationRecord {
  int index = 0;
  sim::SimTime comm_start = 0;
  sim::SimTime comm_end = 0;
  sim::SimTime iter_end = 0;
};

struct JobConfig {
  std::string name;
  /// Compute-phase duration separating communication phases. The next
  /// iteration's communication starts `compute_time` (plus noise) after the
  /// previous communication completes — the dependency that distinguishes
  /// DNN traffic from classical periodic traffic (§2).
  sim::SimTime compute_time = 0;
  /// Standard deviation of zero-mean Gaussian noise added to each compute
  /// phase (§4's perturbation model). Negative draws are clamped at zero
  /// total compute time.
  double noise_stddev_seconds = 0.0;
  /// When the first communication phase begins.
  sim::SimTime start_time = 0;
  /// Stop after this many iterations; 0 = run until the simulation ends.
  int max_iterations = 0;
  /// Centralized-schedule enforcement (Cassini-style): when > 0, iteration
  /// k's communication phase is gated to start no earlier than
  /// start_time + k * gate_period, pinning the job to its assigned slot on
  /// the schedule circle. 0 disables gating (distributed operation).
  sim::SimTime gate_period = 0;
  /// Pipeline-parallel / microbatched communication: the iteration's bytes
  /// are sent as `comm_chunks` back-to-back transfers separated by
  /// `chunk_gap` of compute. 1 = the paper's single continuous phase (§4's
  /// network-demand assumption); larger values exercise MLTCP beyond it.
  int comm_chunks = 1;
  sim::SimTime chunk_gap = 0;
};

/// A distributed DNN training/fine-tuning job: a strictly periodic
/// alternation of a communication phase (a fixed number of bytes on each of
/// its flows) and a compute phase, with the next communication gated on the
/// completion of the previous one.
class Job {
 public:
  /// One of the job's transfers: a backend-neutral channel (see
  /// workload/backend.hpp) plus the bytes it moves each iteration.
  struct FlowBinding {
    Channel* flow = nullptr;
    std::int64_t bytes_per_iteration = 0;
  };

  Job(sim::Simulator& simulator, JobConfig cfg,
      std::vector<FlowBinding> flows, sim::Rng rng);

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Schedules the first communication phase at cfg.start_time.
  void start();

  /// Halts the job (departure / preemption). Already-scheduled phase
  /// callbacks and in-flight message completions become no-ops; bytes
  /// already handed to the flows drain normally but complete no further
  /// iteration. Completed-iteration records stay valid. Idempotent.
  void stop();

  /// Straggler injection: the next `iterations` compute phases each take
  /// `extra_compute` longer (on top of configured noise) — one slow worker
  /// stalling the synchronous barrier. Replaces any previous injection.
  void inject_straggler(int iterations, sim::SimTime extra_compute);

  const std::string& name() const { return cfg_.name; }
  const JobConfig& config() const { return cfg_; }
  const std::vector<FlowBinding>& flows() const { return flows_; }

  /// Completed iterations (communication + compute both finished).
  const std::vector<IterationRecord>& iterations() const { return records_; }
  int completed_iterations() const {
    return static_cast<int>(records_.size());
  }

  /// Iteration durations in seconds (start-of-comm to start-of-next-comm).
  std::vector<double> iteration_times_seconds() const;

  /// Communication-phase durations in seconds.
  std::vector<double> comm_times_seconds() const;

  /// Total bytes this job moves per iteration, summed over flows.
  std::int64_t bytes_per_iteration() const;

  bool running() const { return running_; }

  /// Telemetry track id (track_job namespace) for this job's phase slices.
  std::uint64_t trace_track() const { return track_; }

 private:
  void begin_iteration();
  void send_current_chunk();
  void on_flow_complete(sim::SimTime when);
  void on_compute_done();

  sim::Simulator& sim_;
  JobConfig cfg_;
  std::vector<FlowBinding> flows_;
  sim::Rng rng_;
  std::uint64_t track_;

  bool running_ = false;
  int straggler_iters_ = 0;
  sim::SimTime straggler_extra_ = 0;
  int current_iteration_ = 0;
  int current_chunk_ = 0;
  int flows_pending_ = 0;
  sim::SimTime comm_start_ = 0;
  sim::SimTime comm_end_ = 0;
  std::vector<IterationRecord> records_;
};

}  // namespace mltcp::workload
