#include "workload/collective.hpp"

#include <cassert>

namespace mltcp::workload {

std::vector<FlowSpec> ring_allreduce(const std::vector<net::Host*>& workers,
                                     std::int64_t model_bytes) {
  assert(workers.size() >= 2);
  assert(model_bytes > 0);
  const auto n = static_cast<std::int64_t>(workers.size());
  const std::int64_t per_link_bytes = 2 * (n - 1) * model_bytes / n;
  std::vector<FlowSpec> flows;
  flows.reserve(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    flows.push_back(FlowSpec{workers[i], workers[(i + 1) % workers.size()],
                             per_link_bytes});
  }
  return flows;
}

std::vector<FlowSpec> parameter_server(const std::vector<net::Host*>& workers,
                                       net::Host* server,
                                       std::int64_t model_bytes) {
  assert(server != nullptr);
  assert(model_bytes > 0);
  std::vector<FlowSpec> flows;
  flows.reserve(workers.size());
  for (net::Host* w : workers) {
    assert(w != server);
    flows.push_back(FlowSpec{w, server, model_bytes});
  }
  return flows;
}

std::vector<FlowSpec> single_flow(net::Host* src, net::Host* dst,
                                  std::int64_t bytes) {
  assert(src != nullptr && dst != nullptr && src != dst);
  assert(bytes > 0);
  return {FlowSpec{src, dst, bytes}};
}

}  // namespace mltcp::workload
