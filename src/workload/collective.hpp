#pragma once

#include <cstdint>
#include <vector>

#include "net/node.hpp"

namespace mltcp::workload {

/// One point-to-point transfer a collective decomposes into.
struct FlowSpec {
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  std::int64_t bytes_per_iteration = 0;
};

/// Decomposes a data-parallel all-reduce over `workers` into the flows of a
/// ring: worker i sends to worker (i+1) mod n. Each link of the ring carries
/// 2*(n-1)/n * model_bytes per iteration (reduce-scatter + all-gather).
std::vector<FlowSpec> ring_allreduce(const std::vector<net::Host*>& workers,
                                     std::int64_t model_bytes);

/// Parameter-server pattern: every worker exchanges `model_bytes` with the
/// server per iteration; modelled as one worker->server flow per worker of
/// `model_bytes` (the pull direction shares fate and is omitted).
std::vector<FlowSpec> parameter_server(const std::vector<net::Host*>& workers,
                                       net::Host* server,
                                       std::int64_t model_bytes);

/// The degenerate single-flow "collective" used by two-GPU jobs (the paper's
/// testbed jobs use 2 GPUs on opposite sides of the bottleneck).
std::vector<FlowSpec> single_flow(net::Host* src, net::Host* dst,
                                  std::int64_t bytes);

}  // namespace mltcp::workload
