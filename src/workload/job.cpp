#include "workload/job.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/tracer.hpp"

namespace mltcp::workload {

Job::Job(sim::Simulator& simulator, JobConfig cfg,
         std::vector<FlowBinding> flows, sim::Rng rng)
    : sim_(simulator), cfg_(std::move(cfg)), flows_(std::move(flows)),
      rng_(rng),
      track_(telemetry::track_job(simulator.allocate_trace_ordinal())) {
  assert(!flows_.empty());
  for ([[maybe_unused]] const auto& b : flows_) {
    assert(b.flow != nullptr && b.bytes_per_iteration > 0);
  }
}

void Job::start() {
  assert(!running_);
  running_ = true;
  sim_.schedule_at(cfg_.start_time, [this] { begin_iteration(); });
}

void Job::stop() {
  running_ = false;
}

void Job::inject_straggler(int iterations, sim::SimTime extra_compute) {
  assert(iterations >= 0 && extra_compute >= 0);
  straggler_iters_ = iterations;
  straggler_extra_ = extra_compute;
}

void Job::begin_iteration() {
  if (!running_) return;  // Stopped between scheduling and firing.
  comm_start_ = sim_.now();
  current_chunk_ = 0;
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kJob)) {
    t->begin(telemetry::Category::kJob, "comm", sim_.now(), track_);
  }
  send_current_chunk();
}

void Job::send_current_chunk() {
  if (!running_) return;
  const int chunks = std::max(cfg_.comm_chunks, 1);
  flows_pending_ = static_cast<int>(flows_.size());
  for (auto& binding : flows_) {
    std::int64_t bytes = binding.bytes_per_iteration / chunks;
    if (current_chunk_ == chunks - 1) {
      bytes = binding.bytes_per_iteration - bytes * (chunks - 1);
    }
    binding.flow->send_message(
        bytes, [this](sim::SimTime when) { on_flow_complete(when); });
  }
}

void Job::on_flow_complete(sim::SimTime when) {
  if (!running_) return;  // Late completion of a stopped job's bytes.
  assert(flows_pending_ > 0);
  if (--flows_pending_ > 0) return;

  const int chunks = std::max(cfg_.comm_chunks, 1);
  if (current_chunk_ + 1 < chunks) {
    ++current_chunk_;
    sim_.schedule(cfg_.chunk_gap, [this] { send_current_chunk(); });
    return;
  }
  comm_end_ = when;
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kJob)) {
    t->end(telemetry::Category::kJob, "comm", sim_.now(), track_);
    t->begin(telemetry::Category::kJob, "compute", sim_.now(), track_);
  }

  // Compute phase with the paper's Gaussian perturbation model.
  sim::SimTime compute = cfg_.compute_time;
  if (cfg_.noise_stddev_seconds > 0.0) {
    compute += sim::from_seconds(
        rng_.normal(0.0, cfg_.noise_stddev_seconds));
  }
  if (straggler_iters_ > 0) {
    compute += straggler_extra_;
    --straggler_iters_;
  }
  compute = std::max<sim::SimTime>(compute, 0);
  sim_.schedule(compute, [this] { on_compute_done(); });
}

void Job::on_compute_done() {
  if (!running_) return;
  records_.push_back(IterationRecord{current_iteration_, comm_start_,
                                     comm_end_, sim_.now()});
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kJob)) {
    t->end(telemetry::Category::kJob, "compute", sim_.now(), track_);
    t->instant(telemetry::Category::kJob, "iteration", sim_.now(), track_,
               "index", static_cast<double>(current_iteration_), "iter_s",
               sim::to_seconds(sim_.now() - comm_start_));
  }
  ++current_iteration_;
  if (cfg_.max_iterations > 0 && current_iteration_ >= cfg_.max_iterations) {
    running_ = false;
    return;
  }
  if (cfg_.gate_period > 0) {
    const sim::SimTime slot =
        cfg_.start_time + cfg_.gate_period * current_iteration_;
    if (slot > sim_.now()) {
      sim_.schedule_at(slot, [this] { begin_iteration(); });
      return;
    }
  }
  begin_iteration();
}

std::vector<double> Job::iteration_times_seconds() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    out.push_back(sim::to_seconds(r.iter_end - r.comm_start));
  }
  return out;
}

std::vector<double> Job::comm_times_seconds() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    out.push_back(sim::to_seconds(r.comm_end - r.comm_start));
  }
  return out;
}

std::int64_t Job::bytes_per_iteration() const {
  std::int64_t total = 0;
  for (const auto& b : flows_) total += b.bytes_per_iteration;
  return total;
}

}  // namespace mltcp::workload
