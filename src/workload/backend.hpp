#pragma once

#include <cstdint>
#include <functional>

#include "net/node.hpp"
#include "sim/time.hpp"
#include "tcp/cong_control.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender.hpp"

namespace mltcp::tcp {
class TcpFlow;
}

namespace mltcp::workload {

/// Backend-neutral handle to one persistent unidirectional src->dst
/// communication channel. This is the seam between the workload layer
/// (Job, ShuffleJob, ServingJob, TrafficSource, scenario backgrounds) and a
/// simulation backend: the packet backend maps a channel onto a real TCP
/// connection, the flow-level backend (src/flowsim) onto a max-min-shared
/// fluid transfer stream. Messages posted on one channel share fate in
/// order — they queue FIFO behind each other like writes on one socket —
/// on every backend, which is what makes sender-side queueing show up in
/// FCT tails identically at both fidelities.
class Channel {
 public:
  using Completion = std::function<void(sim::SimTime)>;

  virtual ~Channel() = default;

  /// Posts `bytes` on the channel; `on_complete` fires (with the completion
  /// time) once every byte has been delivered and acknowledged (packet) or
  /// fully transferred by the fluid model (flowsim).
  virtual void send_message(std::int64_t bytes, Completion on_complete) = 0;

  /// Fabric-unique flow id. Both backends hash this id for ECMP, so a
  /// channel takes the same spine path at either fidelity.
  virtual net::FlowId id() const = 0;

  /// Packet-backend escape hatch: the underlying TCP connection, or nullptr
  /// on backends without one. Monitors that sample cwnd/srtt are inherently
  /// packet-level and must check for null.
  virtual tcp::TcpFlow* tcp() { return nullptr; }
};

/// Everything a backend needs to open one channel. The transport fields
/// (cc/sender/receiver) fully configure the packet backend; the flow-level
/// backend instead inspects the congestion-control factory once to learn
/// whether the channel is MLTCP-augmented (and with which aggressiveness
/// function) — the steady-state weight the fluid allocation uses.
struct ChannelSpec {
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  net::FlowId id = 0;
  tcp::CcFactory cc;  ///< Must be set.
  tcp::SenderConfig sender;
  tcp::ReceiverConfig receiver;
};

/// A simulation backend: creates channels against one run's world. The
/// returned channels are owned by the backend and live until it is
/// destroyed (after the run, like cluster-owned TCP flows).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual Channel* create_channel(const ChannelSpec& spec) = 0;

  /// Static display name ("packet", "flowsim") for reports and CSVs.
  virtual const char* name() const = 0;
};

}  // namespace mltcp::workload
