#include "analysis/flow_monitor.hpp"

#include <cassert>

#include "telemetry/tracer.hpp"

namespace mltcp::analysis {

FlowMonitor::FlowMonitor(sim::Simulator& simulator,
                         const tcp::TcpSender& sender, sim::SimTime interval)
    : sim_(simulator),
      sender_(sender),
      interval_(interval),
      timer_(simulator, [this] { sample(); }) {
  assert(interval > 0);
  timer_.arm(0);
}

FlowMonitor::~FlowMonitor() { stop(); }

void FlowMonitor::stop() {
  stopped_ = true;
  timer_.cancel();
}

void FlowMonitor::sample() {
  if (stopped_) return;
  FlowSample s;
  s.when = sim_.now();
  s.cwnd = sender_.cc().cwnd();
  s.ssthresh = sender_.cc().ssthresh();
  s.gain = sender_.cc().window_gain().gain();
  s.srtt = sender_.rtt().srtt();
  s.inflight = sender_.inflight();
  s.segments_acked = sender_.stats().segments_acked;
  samples_.push_back(s);
  // Each sample doubles as a pair of counter events, so any run with a
  // FlowMonitor and Category::kFlow gets per-flow cwnd/gain tracks in its
  // Chrome trace for free.
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kFlow)) {
    const auto track = telemetry::track_flow(sender_.flow());
    t->counter(telemetry::Category::kFlow, "cwnd", s.when, track, s.cwnd);
    t->counter(telemetry::Category::kFlow, "gain", s.when, track, s.gain);
  }
  timer_.arm(interval_);
}

double FlowMonitor::mean_cwnd(sim::SimTime from, sim::SimTime to) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& s : samples_) {
    if (s.when >= from && s.when < to) {
      sum += s.cwnd;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

double FlowMonitor::ack_rate(sim::SimTime from, sim::SimTime to) const {
  const FlowSample* first = nullptr;
  const FlowSample* last = nullptr;
  for (const auto& s : samples_) {
    if (s.when >= from && s.when < to) {
      if (first == nullptr) first = &s;
      last = &s;
    }
  }
  if (first == nullptr || last == nullptr || last->when <= first->when) {
    return 0.0;
  }
  return static_cast<double>(last->segments_acked - first->segments_acked) /
         sim::to_seconds(last->when - first->when);
}

}  // namespace mltcp::analysis
