#include "analysis/shift.hpp"

#include <cassert>
#include <cmath>

namespace mltcp::analysis {

double shift_eq3(double delta, const ShiftParams& p) {
  assert(p.alpha > 0.0 && p.alpha <= 1.0);
  assert(p.period > 0.0);
  const double at = p.alpha * p.period;
  assert(delta >= 0.0 && delta <= at + 1e-12);
  const double denominator = at * p.intercept + delta * p.slope;
  if (denominator <= 0.0) return 0.0;
  return p.slope * delta * (at - delta) / denominator;
}

double shift(double delta, const ShiftParams& p) {
  const double t = p.period;
  delta = std::fmod(delta, t);
  if (delta < 0.0) delta += t;
  const double at = p.alpha * t;

  if (delta <= at) return shift_eq3(delta, p);
  if (delta >= t - at) return -shift_eq3(t - delta, p);
  return 0.0;  // fully interleaved: no contention, no shift
}

double loss(double delta, const ShiftParams& p, int steps) {
  assert(steps >= 2);
  if (steps % 2 != 0) ++steps;  // Simpson needs an even interval count
  if (delta == 0.0) return 0.0;
  const double h = delta / steps;
  auto f = [&](double x) { return -shift(x, p); };
  double sum = f(0.0) + f(delta);
  for (int i = 1; i < steps; ++i) {
    sum += (i % 2 == 1 ? 4.0 : 2.0) * f(i * h);
  }
  return sum * h / 3.0;
}

DescentResult descend(double delta0, const ShiftParams& p, int max_iterations,
                      double tolerance) {
  DescentResult out;
  double d = std::fmod(delta0, p.period);
  if (d < 0.0) d += p.period;
  out.trajectory.push_back(d);
  for (int i = 0; i < max_iterations; ++i) {
    const double s = shift(d, p);
    if (std::fabs(s) < tolerance) {
      out.converged = true;
      out.iterations = i;
      return out;
    }
    d += s;
    d = std::fmod(d, p.period);
    if (d < 0.0) d += p.period;
    out.trajectory.push_back(d);
  }
  out.iterations = max_iterations;
  return out;
}

double predicted_error_stddev(double sigma, double slope, double intercept) {
  assert(sigma >= 0.0 && slope > 0.0 && intercept >= 0.0);
  return 2.0 * sigma * (1.0 + intercept / slope);
}

double multi_job_loss(const std::vector<double>& offsets,
                      const ShiftParams& p) {
  double total = 0.0;
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    for (std::size_t j = i + 1; j < offsets.size(); ++j) {
      total += loss(offsets[j] - offsets[i], p);
    }
  }
  return total;
}

std::vector<double> multi_job_step(const std::vector<double>& offsets,
                                   const ShiftParams& p) {
  std::vector<double> next(offsets.size());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    double move = 0.0;
    for (std::size_t j = 0; j < offsets.size(); ++j) {
      if (j == i) continue;
      // Positive when job i trails job j closely: i is pushed later.
      move += shift(offsets[i] - offsets[j], p);
    }
    double d = std::fmod(offsets[i] + move, p.period);
    if (d < 0.0) d += p.period;
    next[i] = d;
  }
  return next;
}

MultiDescentResult multi_descend(std::vector<double> offsets,
                                 const ShiftParams& p, int max_iterations,
                                 double tolerance) {
  MultiDescentResult out;
  for (double& d : offsets) {
    d = std::fmod(d, p.period);
    if (d < 0.0) d += p.period;
  }
  out.trajectory.push_back(offsets);
  for (int k = 0; k < max_iterations; ++k) {
    double max_shift = 0.0;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      for (std::size_t j = 0; j < offsets.size(); ++j) {
        if (i != j) {
          max_shift = std::max(
              max_shift, std::fabs(shift(offsets[i] - offsets[j], p)));
        }
      }
    }
    if (max_shift < tolerance) {
      out.converged = true;
      out.iterations = k;
      return out;
    }
    offsets = multi_job_step(offsets, p);
    out.trajectory.push_back(offsets);
  }
  out.iterations = max_iterations;
  return out;
}

}  // namespace mltcp::analysis
