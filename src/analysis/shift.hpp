#pragma once

#include <vector>

namespace mltcp::analysis {

/// Parameters of the two-job analysis of §4: both jobs have ideal iteration
/// time `period` (T) and communication fraction `alpha` (a), and MLTCP runs
/// the linear aggressiveness function F = slope * r + intercept.
struct ShiftParams {
  double slope = 1.75;
  double intercept = 0.25;
  double alpha = 0.5;    ///< Communication fraction a (0 < a <= 1).
  double period = 1.8;   ///< Ideal iteration time T in seconds.
};

/// Eq. 3 on its native domain [0, a*T]:
///   Shift(D) = slope * D * (a*T - D) / (a*T * intercept + D * slope).
double shift_eq3(double delta, const ShiftParams& p);

/// The shift extended to the whole offset circle [0, T): positive (pushing
/// the offset up) while the trailing job overlaps, zero in the fully
/// interleaved band [a*T, T - a*T], and antisymmetric near T where the roles
/// of the two jobs swap. `delta` is reduced modulo T.
double shift(double delta, const ShiftParams& p);

/// Eq. 4: Loss(D) = -integral_0^D Shift(x) dx, computed by Simpson's rule
/// on the extended shift. Minimal on the interleaved band; for a = 1/2 the
/// unique minimum is at D = T/2 (Figure 5c).
double loss(double delta, const ShiftParams& p, int steps = 2000);

/// One gradient-descent trajectory: D_{i+1} = D_i + Shift(D_i) (§4: "MLTCP
/// performs a gradient descent on the loss function").
struct DescentResult {
  std::vector<double> trajectory;  ///< D_0 .. D_n (n = iterations run).
  bool converged = false;          ///< |Shift| fell below tolerance.
  int iterations = 0;              ///< Steps taken until convergence/cap.
};

DescentResult descend(double delta0, const ShiftParams& p,
                      int max_iterations = 1000, double tolerance = 1e-6);

/// §4's closed-form bound: under zero-mean Gaussian iteration-time noise of
/// standard deviation sigma per job, the steady-state convergence error is
/// normal with standard deviation 2 * sigma * (1 + intercept / slope).
double predicted_error_stddev(double sigma, double slope, double intercept);

/// --- multi-job generalization (§4 "the same analysis applies to any
/// combination of jobs", §5 "the loss becomes a function of the overlap
/// across all jobs") -------------------------------------------------------

/// Total loss of N identical jobs at the given offsets on the period
/// circle: the sum of Eq. 4's pairwise losses over all unordered pairs.
/// Minimal exactly when no two communication phases overlap.
double multi_job_loss(const std::vector<double>& offsets,
                      const ShiftParams& p);

/// One distributed step: every job moves by the superposition of its
/// pairwise shifts (the extended, antisymmetric Eq. 3). This is gradient
/// descent on multi_job_loss; the sum of offsets is conserved.
std::vector<double> multi_job_step(const std::vector<double>& offsets,
                                   const ShiftParams& p);

struct MultiDescentResult {
  std::vector<std::vector<double>> trajectory;  ///< offsets per iteration
  bool converged = false;
  int iterations = 0;
};

/// Iterates multi_job_step until every pairwise shift is below `tolerance`.
MultiDescentResult multi_descend(std::vector<double> offsets,
                                 const ShiftParams& p,
                                 int max_iterations = 1000,
                                 double tolerance = 1e-5);

}  // namespace mltcp::analysis
