#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/aggressiveness.hpp"
#include "sim/random.hpp"

namespace mltcp::analysis {

/// Fluid (flow-level) model of MLTCP on a single bottleneck: active jobs
/// share the capacity in proportion to their aggressiveness weights
/// F(bytes_ratio), which is the steady-state bandwidth allocation the
/// packet-level controller converges to within an RTT. Hundreds of jobs and
/// thousands of iterations run in milliseconds, so this is the engine for
/// convergence sweeps and the §4 noise-error experiments.
struct FluidJobSpec {
  /// Communication demand per iteration in capacity-seconds: the comm phase
  /// lasts this long when the job has the link to itself.
  double comm_seconds = 0.0;
  /// Compute-phase duration in seconds.
  double compute_seconds = 0.0;
  /// When the job's first communication phase starts.
  double start_offset = 0.0;
  /// Std-dev of zero-mean Gaussian noise added to each compute phase.
  double noise_stddev = 0.0;
};

struct FluidConfig {
  double capacity = 1.0;  ///< Link capacity (normalized units/second).
  double dt = 1e-3;       ///< Integration step in seconds.
  /// Shared aggressiveness function; null = paper's linear 1.75r + 0.25.
  /// A unit-gain function (constant 1) reproduces fair TCP sharing.
  std::shared_ptr<const core::AggressivenessFunction> f;
  std::uint64_t seed = 7;
};

struct FluidIteration {
  int index = 0;
  double comm_start = 0.0;
  double comm_end = 0.0;
  double iter_end = 0.0;
};

class FluidSimulator {
 public:
  FluidSimulator(FluidConfig cfg, std::vector<FluidJobSpec> jobs);

  /// Advances the model until every job has completed at least
  /// `iterations`; gives up at `max_time` seconds. Returns true when every
  /// job reached the target; false when the time budget ran out first
  /// (truncated() then reports true until the next run_* call). Callers
  /// averaging per-iteration statistics must check: a silently truncated
  /// run under-counts exactly the slow iterations the metric cares about.
  bool run_iterations(int iterations, double max_time = 1e6);

  /// Whether the most recent run_iterations() hit max_time before every
  /// job completed its target iterations.
  bool truncated() const { return truncated_; }

  /// Advances to absolute time `t`.
  void run_until(double t);

  double now() const { return now_; }
  std::size_t job_count() const { return jobs_.size(); }

  const std::vector<FluidIteration>& iterations(std::size_t job) const {
    return jobs_.at(job).records;
  }

  /// Iteration durations (comm start to next comm start) of one job.
  std::vector<double> iteration_times(std::size_t job) const;

  /// Start time of job `job`'s most recent communication phase.
  double last_comm_start(std::size_t job) const {
    return jobs_.at(job).comm_start;
  }

  /// Sum over time of max(0, active_jobs - 1) since construction: the
  /// "excess" contention metric matching sched::evaluate_excess.
  double accumulated_excess() const { return excess_; }

  /// Resets the excess accumulator (e.g. after a warm-up phase).
  void reset_excess() { excess_ = 0.0; }

 private:
  struct JobState {
    FluidJobSpec spec;
    enum class Phase { kIdle, kComm, kCompute } phase = Phase::kIdle;
    double bytes_sent = 0.0;    ///< Capacity-seconds already transferred.
    double comm_start = 0.0;
    double next_wakeup = 0.0;   ///< Comm start (kIdle) or compute end.
    double weight = 0.0;        ///< F(bytes_ratio), refreshed each step.
    int iteration = 0;
    std::vector<FluidIteration> records;
  };

  void step(double dt);

  FluidConfig cfg_;
  std::vector<JobState> jobs_;
  sim::Rng rng_;
  double now_ = 0.0;
  double excess_ = 0.0;
  bool truncated_ = false;
};

}  // namespace mltcp::analysis
