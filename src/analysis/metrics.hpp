#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.hpp"
#include "workload/job.hpp"

namespace mltcp::analysis {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 when fewer than 2 points.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::vector<double> xs, double p);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair.
double jain_index(const std::vector<double>& xs);

struct CdfPoint {
  double value = 0.0;
  double cumulative_probability = 0.0;
};

/// Empirical CDF (sorted values with their cumulative probability).
std::vector<CdfPoint> make_cdf(std::vector<double> xs);

/// Time-weighted excess concurrency of half-open intervals inside [from,
/// to): the integral of max(0, concurrent_intervals - 1), in seconds. Zero
/// means no two intervals ever overlap within the window.
double interval_overlap_seconds(
    const std::vector<std::pair<sim::SimTime, sim::SimTime>>& intervals,
    sim::SimTime from, sim::SimTime to);

/// interval_overlap_seconds applied to the jobs' communication phases.
/// Zero means the window was fully interleaved.
double comm_overlap_seconds(const std::vector<const workload::Job*>& jobs,
                            sim::SimTime from, sim::SimTime to);

/// Mean of the last `window` entries (or all of them when fewer exist);
/// the standard way the experiments report "converged" iteration times.
double tail_mean(const std::vector<double>& xs, std::size_t window);

}  // namespace mltcp::analysis
