#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.hpp"
#include "workload/job.hpp"

namespace mltcp::analysis {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 when fewer than 2 points.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile. `p` is clamped to [0, 100] (p999 callers
/// pass 99.9; a caller slip like 999 must not index out of range). Returns 0
/// for an empty input and the sample itself for a single-sample input —
/// tail statistics of a filtered set must not crash when the filter leaves
/// nothing.
double percentile(std::vector<double> xs, double p);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair.
double jain_index(const std::vector<double>& xs);

struct CdfPoint {
  double value = 0.0;
  double cumulative_probability = 0.0;
};

/// Empirical CDF (sorted values with their cumulative probability).
std::vector<CdfPoint> make_cdf(std::vector<double> xs);

/// Flow-completion-time distribution summary for one traffic pattern.
/// `completed` counts only flows that finished inside the run; flows still
/// open when the run ended are tallied in `open` and excluded from every
/// quantile — silently folding them in (with their truncated "duration so
/// far") skews exactly the p99/p999 tails these tables exist to report.
struct FctStats {
  std::size_t completed = 0;
  std::size_t open = 0;  ///< Flows still in flight at run end.
  double mean_s = 0.0;
  double min_s = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
  double max_s = 0.0;
};

/// Summarizes completed FCTs (seconds). `open_count` is carried through for
/// reporting; the quantiles are computed over `completed_seconds` only.
/// All-zero stats for an empty input.
FctStats fct_stats(const std::vector<double>& completed_seconds,
                   std::size_t open_count = 0);

/// Time-weighted excess concurrency of half-open intervals inside [from,
/// to): the integral of max(0, concurrent_intervals - 1), in seconds. Zero
/// means no two intervals ever overlap within the window.
double interval_overlap_seconds(
    const std::vector<std::pair<sim::SimTime, sim::SimTime>>& intervals,
    sim::SimTime from, sim::SimTime to);

/// interval_overlap_seconds applied to the jobs' communication phases.
/// Zero means the window was fully interleaved.
double comm_overlap_seconds(const std::vector<const workload::Job*>& jobs,
                            sim::SimTime from, sim::SimTime to);

/// Mean of the last `window` entries (or all of them when fewer exist);
/// the standard way the experiments report "converged" iteration times.
double tail_mean(const std::vector<double>& xs, std::size_t window);

}  // namespace mltcp::analysis
