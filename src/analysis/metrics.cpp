#include "analysis/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mltcp::analysis {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = std::min(static_cast<std::size_t>(rank), xs.size() - 1);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

std::vector<CdfPoint> make_cdf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back(CdfPoint{xs[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

FctStats fct_stats(const std::vector<double>& completed_seconds,
                   std::size_t open_count) {
  FctStats s;
  s.completed = completed_seconds.size();
  s.open = open_count;
  if (completed_seconds.empty()) return s;
  s.mean_s = mean(completed_seconds);
  s.min_s = *std::min_element(completed_seconds.begin(),
                              completed_seconds.end());
  s.max_s = *std::max_element(completed_seconds.begin(),
                              completed_seconds.end());
  std::vector<double> sorted = completed_seconds;
  std::sort(sorted.begin(), sorted.end());
  // One sort, four interpolated reads: percentile() would re-sort per call.
  const auto at = [&sorted](double p) {
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = std::min(static_cast<std::size_t>(rank),
                             sorted.size() - 1);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.p50_s = at(50.0);
  s.p90_s = at(90.0);
  s.p99_s = at(99.0);
  s.p999_s = at(99.9);
  return s;
}

double interval_overlap_seconds(
    const std::vector<std::pair<sim::SimTime, sim::SimTime>>& intervals,
    sim::SimTime from, sim::SimTime to) {
  struct Event {
    sim::SimTime t;
    int delta;
    bool operator<(const Event& o) const {
      if (t != o.t) return t < o.t;
      return delta < o.delta;
    }
  };
  std::vector<Event> events;
  for (const auto& [start, end] : intervals) {
    const sim::SimTime s = std::max(start, from);
    const sim::SimTime e = std::min(end, to);
    if (s < e) {
      events.push_back({s, +1});
      events.push_back({e, -1});
    }
  }
  std::sort(events.begin(), events.end());
  double excess = 0.0;
  int active = 0;
  sim::SimTime prev = from;
  for (const auto& ev : events) {
    if (active > 1) {
      excess += static_cast<double>(active - 1) * sim::to_seconds(ev.t - prev);
    }
    active += ev.delta;
    prev = ev.t;
  }
  return excess;
}

double comm_overlap_seconds(const std::vector<const workload::Job*>& jobs,
                            sim::SimTime from, sim::SimTime to) {
  std::vector<std::pair<sim::SimTime, sim::SimTime>> intervals;
  for (const workload::Job* job : jobs) {
    for (const auto& rec : job->iterations()) {
      intervals.emplace_back(rec.comm_start, rec.comm_end);
    }
  }
  return interval_overlap_seconds(intervals, from, to);
}

double tail_mean(const std::vector<double>& xs, std::size_t window) {
  if (xs.empty()) return 0.0;
  const std::size_t n = std::min(window, xs.size());
  double s = 0.0;
  for (std::size_t i = xs.size() - n; i < xs.size(); ++i) s += xs[i];
  return s / static_cast<double>(n);
}

}  // namespace mltcp::analysis
