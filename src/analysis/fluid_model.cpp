#include "analysis/fluid_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mltcp::analysis {

FluidSimulator::FluidSimulator(FluidConfig cfg, std::vector<FluidJobSpec> jobs)
    : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  assert(!jobs.empty());
  assert(cfg_.capacity > 0.0 && cfg_.dt > 0.0);
  if (cfg_.f == nullptr) {
    cfg_.f = std::make_shared<core::LinearAggressiveness>();
  }
  jobs_.reserve(jobs.size());
  for (const auto& spec : jobs) {
    assert(spec.comm_seconds > 0.0 && spec.compute_seconds >= 0.0);
    JobState st;
    st.spec = spec;
    st.phase = JobState::Phase::kIdle;
    st.next_wakeup = spec.start_offset;
    jobs_.push_back(std::move(st));
  }
}

void FluidSimulator::step(double dt) {
  const double t_end = now_ + dt;

  // Phase transitions into communication.
  for (auto& j : jobs_) {
    if (j.phase != JobState::Phase::kComm && j.next_wakeup <= now_) {
      if (j.phase == JobState::Phase::kIdle ||
          j.phase == JobState::Phase::kCompute) {
        j.phase = JobState::Phase::kComm;
        j.bytes_sent = 0.0;
        j.comm_start = now_;
      }
    }
  }

  // Weighted sharing among active communicators.
  double total_weight = 0.0;
  int active = 0;
  for (auto& j : jobs_) {
    if (j.phase == JobState::Phase::kComm) {
      const double ratio =
          std::min(1.0, j.bytes_sent / (j.spec.comm_seconds * cfg_.capacity));
      j.weight = (*cfg_.f)(ratio);
      total_weight += j.weight;
      ++active;
    }
  }
  if (active > 1) excess_ += (active - 1) * dt;

  for (auto& j : jobs_) {
    if (j.phase != JobState::Phase::kComm) continue;
    const double weight = j.weight;
    const double rate =
        total_weight > 0.0 ? cfg_.capacity * weight / total_weight : 0.0;
    j.bytes_sent += rate * dt;
    const double demand = j.spec.comm_seconds * cfg_.capacity;
    if (j.bytes_sent >= demand - 1e-12) {
      // Communication finished inside this step; start the compute phase.
      const double overshoot =
          rate > 0.0 ? (j.bytes_sent - demand) / rate : 0.0;
      const double comm_end = std::max(now_, t_end - overshoot);
      double compute = j.spec.compute_seconds;
      if (j.spec.noise_stddev > 0.0) {
        compute += rng_.normal(0.0, j.spec.noise_stddev);
      }
      compute = std::max(compute, 0.0);
      j.records.push_back(FluidIteration{j.iteration, j.comm_start, comm_end,
                                         comm_end + compute});
      ++j.iteration;
      j.phase = JobState::Phase::kCompute;
      j.next_wakeup = comm_end + compute;
    }
  }

  now_ = t_end;
}

void FluidSimulator::run_until(double t) {
  while (now_ < t) step(std::min(cfg_.dt, t - now_));
  truncated_ = false;  // A plain time advance has no iteration target.
}

bool FluidSimulator::run_iterations(int iterations, double max_time) {
  auto done = [&] {
    for (const auto& j : jobs_) {
      if (j.iteration < iterations) return false;
    }
    return true;
  };
  while (!done() && now_ < max_time) step(cfg_.dt);
  truncated_ = !done();
  return !truncated_;
}

std::vector<double> FluidSimulator::iteration_times(std::size_t job) const {
  const auto& recs = jobs_.at(job).records;
  std::vector<double> out;
  out.reserve(recs.size());
  for (const auto& r : recs) out.push_back(r.iter_end - r.comm_start);
  return out;
}

}  // namespace mltcp::analysis
