#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "tcp/sender.hpp"

namespace mltcp::analysis {

/// One sample of a sender's transport state.
struct FlowSample {
  sim::SimTime when = 0;
  double cwnd = 0.0;
  double ssthresh = 0.0;
  double gain = 0.0;  ///< WindowGain value (MLTCP's F(bytes_ratio)).
  sim::SimTime srtt = 0;
  std::int64_t inflight = 0;
  std::int64_t segments_acked = 0;
};

/// Periodically samples one TcpSender's congestion state — the cwnd/gain
/// time series that visualizes Eq. 1 at work. Sampling starts on
/// construction and stops when the monitor is destroyed or stop() is called.
class FlowMonitor {
 public:
  FlowMonitor(sim::Simulator& simulator, const tcp::TcpSender& sender,
              sim::SimTime interval);
  ~FlowMonitor();

  FlowMonitor(const FlowMonitor&) = delete;
  FlowMonitor& operator=(const FlowMonitor&) = delete;

  void stop();

  const std::vector<FlowSample>& samples() const { return samples_; }

  /// Mean cwnd over samples in [from, to).
  double mean_cwnd(sim::SimTime from, sim::SimTime to) const;

  /// Throughput estimate over [from, to) from the acked-segment counter, in
  /// segments per second.
  double ack_rate(sim::SimTime from, sim::SimTime to) const;

 private:
  void sample();

  sim::Simulator& sim_;
  const tcp::TcpSender& sender_;
  sim::SimTime interval_;
  sim::Timer timer_;  ///< Periodic sampler; rearms itself in place.
  bool stopped_ = false;
  std::vector<FlowSample> samples_;
};

}  // namespace mltcp::analysis
