#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mltcp::core {

/// Configuration of Algorithm 1's per-flow state.
///
/// TOTAL_BYTES and COMP_TIME can be supplied by the application (the paper's
/// INITIALIZE procedure) or learned automatically from the first few
/// iterations (§3.2: "we automatically learn these values by measuring the
/// total amount of data and computation time during the first few
/// iterations").
struct TrackerConfig {
  /// Bytes sent per training iteration; 0 = learn automatically.
  std::int64_t total_bytes = 0;
  /// ACK-gap threshold marking an iteration boundary; 0 = learn.
  sim::SimTime comp_time = 0;
  /// Packet size used for byte accounting (Algorithm 1 line 7).
  std::int32_t mtu = net::kDefaultMtu;

  /// --- auto-learning parameters ---
  /// Complete iterations to observe before locking in learned values.
  int learn_iterations = 2;
  /// During learning, an ACK gap above this counts as an iteration boundary
  /// (the paper uses "several round-trip times").
  sim::SimTime learn_min_gap = sim::milliseconds(5);
  /// Learned COMP_TIME threshold = smallest observed compute gap times this
  /// safety factor, so RTT/queueing jitter never fakes a boundary.
  double comp_time_safety = 0.5;
};

/// Per-flow iteration state of Algorithm 1: counts successfully sent bytes,
/// detects iteration boundaries from gaps in the ACK stream, and exposes
/// bytes_ratio = min(1, bytes_sent / TOTAL_BYTES).
class IterationTracker {
 public:
  explicit IterationTracker(TrackerConfig cfg = {});

  /// Algorithm 1's CONGESTION_AVOIDANCE bookkeeping, called per ACK.
  /// `num_acks` is the number of newly acknowledged segments.
  void on_ack(int num_acks, sim::SimTime now);

  /// Current fraction of the iteration's bytes confirmed sent, in [0, 1].
  double bytes_ratio() const { return bytes_ratio_; }

  std::int64_t bytes_sent() const { return bytes_sent_; }

  /// Iteration boundaries detected so far.
  int iterations_seen() const { return iterations_seen_; }

  /// True once TOTAL_BYTES and COMP_TIME are available (configured or
  /// learned).
  bool calibrated() const { return total_bytes_ > 0 && comp_time_ > 0; }

  std::int64_t total_bytes() const { return total_bytes_; }
  sim::SimTime comp_time() const { return comp_time_; }
  sim::SimTime prev_ack_timestamp() const { return prev_ack_tstamp_; }

 private:
  void learn_from_boundary(sim::SimTime gap, std::int64_t burst_bytes);

  TrackerConfig cfg_;
  std::int64_t total_bytes_ = 0;   ///< Active TOTAL_BYTES (0 until known).
  sim::SimTime comp_time_ = 0;     ///< Active COMP_TIME gap threshold.

  double bytes_ratio_ = 0.0;
  std::int64_t bytes_sent_ = 0;
  sim::SimTime prev_ack_tstamp_ = 0;
  int iterations_seen_ = 0;

  // Learning state.
  bool learning_ = false;
  std::int64_t burst_bytes_ = 0;  ///< Bytes since the last detected boundary.
  std::vector<std::int64_t> observed_bursts_;
  std::vector<sim::SimTime> observed_gaps_;
};

}  // namespace mltcp::core
