#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mltcp.hpp"
#include "tcp/cong_control.hpp"

namespace mltcp::core {

/// Per-traffic-class congestion-control selection (§5): the paper modifies
/// NCCL's FAST-socket plugin so that each traffic class can choose its own
/// congestion control algorithm and aggressiveness function. This registry
/// is that plugin's control plane: experiment harnesses register a factory
/// per class ("training", "bulk", "latency", ...) and stamp controllers out
/// of it at flow-creation time.
class TrafficClassRegistry {
 public:
  TrafficClassRegistry() = default;

  /// Registers (or replaces) the controller factory of one class.
  void register_class(const std::string& traffic_class,
                      tcp::CcFactory factory);

  bool has(const std::string& traffic_class) const {
    return factories_.count(traffic_class) > 0;
  }

  /// Factory of `traffic_class`. Throws std::out_of_range if unknown.
  const tcp::CcFactory& factory(const std::string& traffic_class) const;

  /// Creates a fresh controller for one flow of `traffic_class`.
  std::unique_ptr<tcp::CongestionControl> make(
      const std::string& traffic_class) const {
    return factory(traffic_class)();
  }

  std::vector<std::string> classes() const;

  /// The defaults the §5 discussion suggests:
  ///  - "training": MLTCP-Reno with `training` tracker parameters;
  ///  - "bulk": plain Reno (legacy traffic keeps legacy behaviour);
  ///  - "latency": MLTCP-Reno with a constant high-value aggressiveness
  ///    function ("for latency-sensitive traffic ... we recommend using a
  ///    bandwidth aggressiveness function with larger values").
  static TrafficClassRegistry with_defaults(const MltcpConfig& training,
                                            double latency_gain = 3.0);

 private:
  std::map<std::string, tcp::CcFactory> factories_;
};

}  // namespace mltcp::core
