#include "core/aggressiveness.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mltcp::core {

std::string LinearAggressiveness::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "linear(%.3g,%.3g)", slope_, intercept_);
  return buf;
}

std::unique_ptr<AggressivenessFunction> make_figure3_function(int index) {
  switch (index) {
    case 1:  // F1 = 1.75 r + 0.25
      return std::make_unique<LinearAggressiveness>(1.75, 0.25);
    case 2:  // F2 = 1.75 r^2 + 0.25
      return std::make_unique<CustomAggressiveness>(
          [](double r) { return 1.75 * r * r + 0.25; }, "F2=1.75r^2+0.25");
    case 3:  // F3 = 1 / (-3.5 r + 4)
      return std::make_unique<CustomAggressiveness>(
          [](double r) { return 1.0 / (-3.5 * r + 4.0); }, "F3=1/(-3.5r+4)");
    case 4:  // F4 = -1.75 r^2 + 3.5 r + 0.25
      return std::make_unique<CustomAggressiveness>(
          [](double r) { return -1.75 * r * r + 3.5 * r + 0.25; },
          "F4=-1.75r^2+3.5r+0.25");
    case 5:  // F5 = -1.75 r + 2 (decreasing)
      return std::make_unique<CustomAggressiveness>(
          [](double r) { return -1.75 * r + 2.0; }, "F5=-1.75r+2");
    case 6:  // F6 = -1.75 r^4 + 2 (decreasing)
      return std::make_unique<CustomAggressiveness>(
          [](double r) { return -1.75 * r * r * r * r + 2.0; },
          "F6=-1.75r^4+2");
    default:
      throw std::invalid_argument("figure-3 function index must be 1..6");
  }
}

AggressivenessCheck check_aggressiveness(const AggressivenessFunction& f,
                                         int samples) {
  assert(samples >= 2);
  AggressivenessCheck out;
  out.derivative_non_negative = true;
  double prev = f(0.0);
  out.min_value = prev;
  out.max_value = prev;
  for (int i = 1; i < samples; ++i) {
    const double r = static_cast<double>(i) / (samples - 1);
    const double v = f(r);
    // Tolerate floating-point jitter when probing monotonicity.
    if (v < prev - 1e-12) out.derivative_non_negative = false;
    out.min_value = std::min(out.min_value, v);
    out.max_value = std::max(out.max_value, v);
    prev = v;
  }
  out.range_width = out.max_value - out.min_value;
  return out;
}

}  // namespace mltcp::core
