#include "core/mltcp.hpp"

namespace mltcp::core {

MltcpGain::MltcpGain(std::shared_ptr<const AggressivenessFunction> f,
                     TrackerConfig tracker_cfg)
    : f_(std::move(f)), tracker_(tracker_cfg) {}

std::shared_ptr<const AggressivenessFunction> make_linear_function(
    const MltcpConfig& cfg) {
  return std::make_shared<LinearAggressiveness>(cfg.slope, cfg.intercept);
}

namespace {
std::shared_ptr<const AggressivenessFunction> f_or_linear(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f) {
  return f != nullptr ? std::move(f) : make_linear_function(cfg);
}
}  // namespace

std::unique_ptr<tcp::CongestionControl> make_mltcp_reno(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::RenoConfig reno) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::RenoCC>(reno, std::move(gain));
}

std::unique_ptr<tcp::CongestionControl> make_mltcp_cubic(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::CubicConfig cubic) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::CubicCC>(cubic, std::move(gain));
}

std::unique_ptr<tcp::CongestionControl> make_mltcp_dctcp(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::DctcpConfig dctcp) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::DctcpCC>(dctcp, std::move(gain));
}

std::unique_ptr<tcp::CongestionControl> make_mltcp_swift(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::SwiftConfig swift) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::SwiftCC>(swift, std::move(gain));
}

tcp::CcFactory mltcp_reno_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_reno(cfg, shared_f); };
}

tcp::CcFactory mltcp_cubic_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_cubic(cfg, shared_f); };
}

tcp::CcFactory mltcp_dctcp_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_dctcp(cfg, shared_f); };
}

tcp::CcFactory mltcp_swift_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_swift(cfg, shared_f); };
}

tcp::CcFactory reno_factory(tcp::RenoConfig cfg) {
  return [cfg] { return std::make_unique<tcp::RenoCC>(cfg); };
}

tcp::CcFactory cubic_factory(tcp::CubicConfig cfg) {
  return [cfg] { return std::make_unique<tcp::CubicCC>(cfg); };
}

tcp::CcFactory dctcp_factory(tcp::DctcpConfig cfg) {
  return [cfg] { return std::make_unique<tcp::DctcpCC>(cfg); };
}

tcp::CcFactory swift_factory(tcp::SwiftConfig cfg) {
  return [cfg] { return std::make_unique<tcp::SwiftCC>(cfg); };
}

}  // namespace mltcp::core
