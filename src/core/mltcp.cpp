#include "core/mltcp.hpp"

#include <algorithm>

#include "telemetry/tracer.hpp"

namespace mltcp::core {

MltcpGain::MltcpGain(std::shared_ptr<const AggressivenessFunction> f,
                     TrackerConfig tracker_cfg)
    : f_(std::move(f)), tracker_(tracker_cfg) {}

void MltcpGain::bind_telemetry(sim::Simulator* sim, std::int64_t flow_id) {
  sim_ = sim;
  track_ = telemetry::track_flow(flow_id);
}

void MltcpGain::on_ack(const tcp::AckContext& ctx) {
  const int prev_iters = tracker_.iterations_seen();
  tracker_.on_ack(ctx.num_acked, ctx.now);

  if (sim_ == nullptr) return;
  auto* t = telemetry::tracer_for(*sim_, telemetry::Category::kMltcp);
  if (t == nullptr) return;

  const bool boundary = tracker_.iterations_seen() != prev_iters;
  if (boundary) {
    t->instant(telemetry::Category::kMltcp, "iteration_boundary", ctx.now,
               track_, "iterations",
               static_cast<double>(tracker_.iterations_seen()), "bytes_sent",
               static_cast<double>(tracker_.bytes_sent()));
  }

  // Milestone sampling: emit the ratio/gain counters whenever bytes_ratio
  // crosses into a new quarter (or wraps at a boundary) instead of per ACK.
  const double ratio = tracker_.bytes_ratio();
  const int quarter =
      std::min(4, std::max(0, static_cast<int>(ratio * 4.0)));
  if (boundary || quarter != last_quarter_) {
    last_quarter_ = quarter;
    t->counter(telemetry::Category::kMltcp, "bytes_ratio", ctx.now, track_,
               ratio);
    t->counter(telemetry::Category::kMltcp, "gain", ctx.now, track_,
               (*f_)(ratio));
  }
}

std::shared_ptr<const AggressivenessFunction> make_linear_function(
    const MltcpConfig& cfg) {
  return std::make_shared<LinearAggressiveness>(cfg.slope, cfg.intercept);
}

namespace {
std::shared_ptr<const AggressivenessFunction> f_or_linear(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f) {
  return f != nullptr ? std::move(f) : make_linear_function(cfg);
}
}  // namespace

std::unique_ptr<tcp::CongestionControl> make_mltcp_reno(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::RenoConfig reno) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::RenoCC>(reno, std::move(gain));
}

std::unique_ptr<tcp::CongestionControl> make_mltcp_cubic(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::CubicConfig cubic) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::CubicCC>(cubic, std::move(gain));
}

std::unique_ptr<tcp::CongestionControl> make_mltcp_dctcp(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::DctcpConfig dctcp) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::DctcpCC>(dctcp, std::move(gain));
}

std::unique_ptr<tcp::CongestionControl> make_mltcp_swift(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::SwiftConfig swift) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::SwiftCC>(swift, std::move(gain));
}

std::unique_ptr<tcp::CongestionControl> make_mltcp_bbr(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::BbrConfig bbr) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::BbrCC>(bbr, std::move(gain));
}

std::unique_ptr<tcp::CongestionControl> make_mltcp_gemini(
    const MltcpConfig& cfg, std::shared_ptr<const AggressivenessFunction> f,
    tcp::GeminiConfig gemini) {
  auto gain =
      std::make_shared<MltcpGain>(f_or_linear(cfg, std::move(f)), cfg.tracker);
  return std::make_unique<tcp::GeminiCC>(gemini, std::move(gain));
}

tcp::CcFactory mltcp_reno_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_reno(cfg, shared_f); };
}

tcp::CcFactory mltcp_cubic_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_cubic(cfg, shared_f); };
}

tcp::CcFactory mltcp_dctcp_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_dctcp(cfg, shared_f); };
}

tcp::CcFactory mltcp_swift_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_swift(cfg, shared_f); };
}

tcp::CcFactory mltcp_bbr_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_bbr(cfg, shared_f); };
}

tcp::CcFactory mltcp_gemini_factory(
    MltcpConfig cfg, std::shared_ptr<const AggressivenessFunction> f) {
  auto shared_f = f_or_linear(cfg, std::move(f));
  return [cfg, shared_f] { return make_mltcp_gemini(cfg, shared_f); };
}

tcp::CcFactory reno_factory(tcp::RenoConfig cfg) {
  return [cfg] { return std::make_unique<tcp::RenoCC>(cfg); };
}

tcp::CcFactory cubic_factory(tcp::CubicConfig cfg) {
  return [cfg] { return std::make_unique<tcp::CubicCC>(cfg); };
}

tcp::CcFactory dctcp_factory(tcp::DctcpConfig cfg) {
  return [cfg] { return std::make_unique<tcp::DctcpCC>(cfg); };
}

tcp::CcFactory swift_factory(tcp::SwiftConfig cfg) {
  return [cfg] { return std::make_unique<tcp::SwiftCC>(cfg); };
}

tcp::CcFactory bbr_factory(tcp::BbrConfig cfg) {
  return [cfg] { return std::make_unique<tcp::BbrCC>(cfg); };
}

tcp::CcFactory gemini_factory(tcp::GeminiConfig cfg) {
  return [cfg] { return std::make_unique<tcp::GeminiCC>(cfg); };
}

}  // namespace mltcp::core
