#pragma once

#include <memory>
#include <string>

#include "core/aggressiveness.hpp"
#include "core/iteration_tracker.hpp"
#include "tcp/bbr.hpp"
#include "tcp/cong_control.hpp"
#include "tcp/cubic.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/gemini.hpp"
#include "tcp/reno.hpp"
#include "tcp/swift.hpp"

namespace mltcp::core {

/// MLTCP parameters shared by all augmented congestion controllers.
struct MltcpConfig {
  double slope = kDefaultSlope;
  double intercept = kDefaultIntercept;
  TrackerConfig tracker;
};

/// The MLTCP window gain: observes every acknowledgement through the
/// IterationTracker (Algorithm 1) and scales the congestion-avoidance window
/// increase by F(bytes_ratio) (Eq. 1). Plugging this gain into any of the
/// base controllers yields the corresponding MLTCP variant.
class MltcpGain : public tcp::WindowGain {
 public:
  MltcpGain(std::shared_ptr<const AggressivenessFunction> f,
            TrackerConfig tracker_cfg);

  void on_ack(const tcp::AckContext& ctx) override;

  double gain() const override { return (*f_)(tracker_.bytes_ratio()); }

  std::string name() const override { return f_->name(); }

  void bind_telemetry(sim::Simulator* sim, std::int64_t flow_id) override;

  const IterationTracker& tracker() const { return tracker_; }
  const AggressivenessFunction& function() const { return *f_; }
  /// Shared handle to F, so a flow-level backend can keep evaluating the
  /// same function after the probe controller it inspected is destroyed.
  std::shared_ptr<const AggressivenessFunction> function_ptr() const {
    return f_;
  }

 private:
  std::shared_ptr<const AggressivenessFunction> f_;
  IterationTracker tracker_;

  // Telemetry context (Category::kMltcp): iteration boundaries are emitted
  // as instants, bytes_ratio/gain as counters on quarter-ratio milestones so
  // the trace stays light at full ACK rate.
  sim::Simulator* sim_ = nullptr;
  std::uint64_t track_ = 0;
  int last_quarter_ = 0;
};

/// Builds the linear F of Eq. 2 from an MltcpConfig.
std::shared_ptr<const AggressivenessFunction> make_linear_function(
    const MltcpConfig& cfg);

/// --- Single-controller constructors -------------------------------------
/// Each returns a freshly wired controller; `f` defaults to the linear
/// function of `cfg` when null.

std::unique_ptr<tcp::CongestionControl> make_mltcp_reno(
    const MltcpConfig& cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr,
    tcp::RenoConfig reno = {});

std::unique_ptr<tcp::CongestionControl> make_mltcp_cubic(
    const MltcpConfig& cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr,
    tcp::CubicConfig cubic = {});

std::unique_ptr<tcp::CongestionControl> make_mltcp_dctcp(
    const MltcpConfig& cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr,
    tcp::DctcpConfig dctcp = {});

std::unique_ptr<tcp::CongestionControl> make_mltcp_swift(
    const MltcpConfig& cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr,
    tcp::SwiftConfig swift = {});

std::unique_ptr<tcp::CongestionControl> make_mltcp_bbr(
    const MltcpConfig& cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr,
    tcp::BbrConfig bbr = {});

std::unique_ptr<tcp::CongestionControl> make_mltcp_gemini(
    const MltcpConfig& cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr,
    tcp::GeminiConfig gemini = {});

/// --- Factories for experiment harnesses ---------------------------------
/// Stamp out one controller per flow. All flows of a job share the same
/// aggressiveness function object (requirement (iii) of §3.1) but get their
/// own tracker state.

tcp::CcFactory mltcp_reno_factory(
    MltcpConfig cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr);
tcp::CcFactory mltcp_cubic_factory(
    MltcpConfig cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr);
tcp::CcFactory mltcp_dctcp_factory(
    MltcpConfig cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr);
tcp::CcFactory mltcp_swift_factory(
    MltcpConfig cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr);
tcp::CcFactory mltcp_bbr_factory(
    MltcpConfig cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr);
tcp::CcFactory mltcp_gemini_factory(
    MltcpConfig cfg = {},
    std::shared_ptr<const AggressivenessFunction> f = nullptr);

/// Plain (unaugmented) baselines, for comparison runs.
tcp::CcFactory reno_factory(tcp::RenoConfig cfg = {});
tcp::CcFactory cubic_factory(tcp::CubicConfig cfg = {});
tcp::CcFactory dctcp_factory(tcp::DctcpConfig cfg = {});
tcp::CcFactory swift_factory(tcp::SwiftConfig cfg = {});
tcp::CcFactory bbr_factory(tcp::BbrConfig cfg = {});
tcp::CcFactory gemini_factory(tcp::GeminiConfig cfg = {});

}  // namespace mltcp::core
