#include "core/iteration_tracker.hpp"

#include <algorithm>
#include <cassert>

namespace mltcp::core {

IterationTracker::IterationTracker(TrackerConfig cfg) : cfg_(cfg) {
  assert(cfg_.mtu > 0);
  total_bytes_ = cfg_.total_bytes;
  comp_time_ = cfg_.comp_time;
  learning_ = (total_bytes_ <= 0 || comp_time_ <= 0);
}

void IterationTracker::on_ack(int num_acks, sim::SimTime now) {
  if (num_acks <= 0) return;

  // Algorithm 1 line 7: bytes accounting in MTU units.
  const std::int64_t acked_bytes =
      static_cast<std::int64_t>(num_acks) * cfg_.mtu;
  bytes_sent_ += acked_bytes;
  burst_bytes_ += acked_bytes;

  const sim::SimTime gap = now - prev_ack_tstamp_;
  const sim::SimTime threshold =
      comp_time_ > 0 ? comp_time_ : cfg_.learn_min_gap;

  // The very first ACK of a flow has no predecessor; it cannot witness an
  // iteration boundary.
  if (prev_ack_tstamp_ > 0 && gap > threshold) {
    // Algorithm 1 lines 10-13: start of a new training iteration.
    ++iterations_seen_;
    // The triggering ACK's bytes belong to the *new* iteration; exclude them
    // from the completed burst and credit them to the fresh iteration's
    // bytes_sent_ and burst_bytes_ alike. (Crediting only burst_bytes_ made
    // bytes_ratio start one ACK low each iteration, diverging from the
    // bursts the learner calibrates against.)
    if (learning_) learn_from_boundary(gap, burst_bytes_ - acked_bytes);
    bytes_sent_ = acked_bytes;
    burst_bytes_ = acked_bytes;
    bytes_ratio_ =
        total_bytes_ > 0
            ? std::min(1.0, static_cast<double>(bytes_sent_) /
                                static_cast<double>(total_bytes_))
            : 0.0;
  } else if (total_bytes_ > 0) {
    // Algorithm 1 line 16.
    bytes_ratio_ = std::min(
        1.0, static_cast<double>(bytes_sent_) /
                 static_cast<double>(total_bytes_));
  } else {
    bytes_ratio_ = 0.0;  // not calibrated yet: be conservative
  }

  prev_ack_tstamp_ = now;  // Algorithm 1 line 17.
}

void IterationTracker::learn_from_boundary(sim::SimTime gap,
                                           std::int64_t burst_bytes) {
  observed_gaps_.push_back(gap);
  observed_bursts_.push_back(burst_bytes);

  // The first observed burst may be a partial iteration (the flow could have
  // been created mid-iteration), so we require learn_iterations + 1 bursts
  // and drop the first.
  if (static_cast<int>(observed_gaps_.size()) < cfg_.learn_iterations + 1) {
    return;
  }

  if (cfg_.total_bytes <= 0) {
    std::int64_t best = 0;
    for (std::size_t i = 1; i < observed_bursts_.size(); ++i) {
      best = std::max(best, observed_bursts_[i]);
    }
    total_bytes_ = best;
  }
  if (cfg_.comp_time <= 0) {
    sim::SimTime smallest = observed_gaps_[1];
    for (std::size_t i = 2; i < observed_gaps_.size(); ++i) {
      smallest = std::min(smallest, observed_gaps_[i]);
    }
    comp_time_ = std::max<sim::SimTime>(
        static_cast<sim::SimTime>(static_cast<double>(smallest) *
                                  cfg_.comp_time_safety),
        cfg_.learn_min_gap);
  }
  learning_ = !(total_bytes_ > 0 && comp_time_ > 0);
}

}  // namespace mltcp::core
