#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mltcp::core {

/// The paper's default linear parameters (§3.1): F = 1.75·r + 0.25.
inline constexpr double kDefaultSlope = 1.75;
inline constexpr double kDefaultIntercept = 0.25;

/// Bandwidth aggressiveness function F(bytes_ratio) (§3.1): maps the fraction
/// of iteration bytes already sent to a multiplier on the congestion-window
/// increase. bytes_ratio is always in [0, 1].
class AggressivenessFunction {
 public:
  virtual ~AggressivenessFunction() = default;
  virtual double operator()(double bytes_ratio) const = 0;
  virtual std::string name() const = 0;
};

/// F(r) = slope · r + intercept — the function MLTCP ships with (Eq. 2),
/// chosen for trivial kernel implementation.
class LinearAggressiveness : public AggressivenessFunction {
 public:
  explicit LinearAggressiveness(double slope = kDefaultSlope,
                                double intercept = kDefaultIntercept)
      : slope_(slope), intercept_(intercept) {}

  double operator()(double r) const override {
    return slope_ * r + intercept_;
  }
  std::string name() const override;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

 private:
  double slope_;
  double intercept_;
};

/// Arbitrary-callable adapter, for the nonlinear functions of Figure 3 and
/// for user experimentation.
class CustomAggressiveness : public AggressivenessFunction {
 public:
  CustomAggressiveness(std::function<double(double)> fn, std::string name)
      : fn_(std::move(fn)), name_(std::move(name)) {}

  double operator()(double r) const override { return fn_(r); }
  std::string name() const override { return name_; }

 private:
  std::function<double(double)> fn_;
  std::string name_;
};

/// The six functions compared in Figure 3. Index is 1-based (F1..F6).
/// F1..F4 are non-decreasing (they interleave); F5, F6 are decreasing
/// (they do not).
std::unique_ptr<AggressivenessFunction> make_figure3_function(int index);

/// Result of checking §3.1's three requirements on a candidate function.
struct AggressivenessCheck {
  bool derivative_non_negative = false;  ///< Requirement (ii).
  double min_value = 0.0;                ///< Over [0, 1].
  double max_value = 0.0;                ///< Over [0, 1].
  double range_width = 0.0;              ///< max - min; requirement (i) needs
                                         ///< this to exceed the noise scale.
  bool valid(double min_range_width = 0.5) const {
    return derivative_non_negative && min_value > 0.0 &&
           range_width >= min_range_width;
  }
};

/// Samples `f` on [0, 1] and reports the requirement check. `samples` >= 2.
AggressivenessCheck check_aggressiveness(const AggressivenessFunction& f,
                                         int samples = 1001);

}  // namespace mltcp::core
