#include "core/traffic_class.hpp"

#include <stdexcept>

namespace mltcp::core {

void TrafficClassRegistry::register_class(const std::string& traffic_class,
                                          tcp::CcFactory factory) {
  if (factory == nullptr) {
    throw std::invalid_argument("traffic class factory must not be null");
  }
  factories_[traffic_class] = std::move(factory);
}

const tcp::CcFactory& TrafficClassRegistry::factory(
    const std::string& traffic_class) const {
  auto it = factories_.find(traffic_class);
  if (it == factories_.end()) {
    throw std::out_of_range("unknown traffic class: " + traffic_class);
  }
  return it->second;
}

std::vector<std::string> TrafficClassRegistry::classes() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

TrafficClassRegistry TrafficClassRegistry::with_defaults(
    const MltcpConfig& training, double latency_gain) {
  TrafficClassRegistry registry;
  registry.register_class("training", mltcp_reno_factory(training));
  registry.register_class("bulk", reno_factory());

  MltcpConfig latency_cfg;
  latency_cfg.tracker.total_bytes = 1;  // ratio saturates immediately
  latency_cfg.tracker.comp_time = sim::seconds(3600);
  auto eager = std::make_shared<CustomAggressiveness>(
      [latency_gain](double) { return latency_gain; },
      "eager(" + std::to_string(latency_gain) + ")");
  registry.register_class("latency",
                          mltcp_reno_factory(latency_cfg, std::move(eager)));
  return registry;
}

}  // namespace mltcp::core
