#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mltcp::pdes {

/// Wakeup primitive for a blocked shard worker (threaded mode): producers
/// bump the version and notify; the consumer re-checks its progress
/// condition against the version it last observed, so a notification
/// between "observe" and "wait" is never lost. In cooperative mode nothing
/// ever waits and the version bump is the only cost.
class ShardSignal {
 public:
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  void notify() {
    version_.fetch_add(1, std::memory_order_seq_cst);
    // Fast path: nobody parked, so the version bump alone suffices — this
    // is every notify in cooperative mode and the common case in threaded
    // mode (notifies vastly outnumber waits). seq_cst on both the bump and
    // the waiter count pairs with wait(): in the single total order, either
    // this bump precedes the waiter's version check (it won't sleep) or the
    // waiter's count increment precedes this load (we fall through and
    // notify).
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    // Pairing the notify with the mutex closes the classic missed-wakeup
    // window: a waiter past its predicate check but not yet parked holds
    // the lock, so this acquisition orders the notify after the park.
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }

  /// Blocks until the version differs from `seen`.
  void wait(std::uint64_t seen) {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return version_.load(std::memory_order_acquire) != seen;
      });
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// One timestamped packet delivery crossing a shard boundary. Per channel,
/// `when` is strictly increasing (each packet's serialization on the source
/// link takes positive time), so a channel's stream needs no reordering —
/// only merging across channels and against the local queue, both by the
/// canonical (when, key) order.
struct Delivery {
  sim::SimTime when = 0;  ///< Delivery time at the destination node.
  /// The link's canonical tiebreak key (Link::next_delivery_key) — the exact
  /// key the delivery event would carry in the serial queue, making the
  /// import merge reproduce the serial total order at equal timestamps.
  std::uint64_t key = 0;
  net::Node* dst = nullptr;
  net::Packet pkt{};
};

/// SPSC channel for one cut link: the source shard pushes deliveries and
/// advances the destination shard's lower bound on timestamp (LBTS — the
/// null-message payload of conservative synchronization); the destination
/// shard drains. Exactly one producer (the shard executing the link's
/// source node) and one consumer exist by construction, but the
/// implementation is a plain mutex-protected vector swap — simple to reason
/// about under TSan, and uncontended in cooperative mode.
///
/// Installed on the link as its DeliverySink, so Link::on_transmission_done
/// routes finished transmissions here instead of scheduling the
/// propagation-delivery event locally.
class CrossShardChannel final : public net::DeliverySink {
 public:
  CrossShardChannel(net::Link* link, int src_shard, int dst_shard, int rank)
      : link_(link), src_shard_(src_shard), dst_shard_(dst_shard),
        rank_(rank) {}

  net::Link* link() const { return link_; }
  int src_shard() const { return src_shard_; }
  int dst_shard() const { return dst_shard_; }
  /// Position in the partition's deterministic cut-link order (wiring /
  /// diagnostics only — merge order comes from each Delivery's key).
  int rank() const { return rank_; }

  // -- Producer side (source shard) ----------------------------------------

  /// net::DeliverySink: called from Link::on_transmission_done with the
  /// delivery timestamp (transmission end + propagation delay) and the
  /// link's canonical tiebreak key.
  void deliver(sim::SimTime when, std::uint64_t key, net::Node* dst,
               const net::Packet& pkt) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inbox_.push_back(Delivery{when, key, dst, pkt});
      ++pushes_;
      if (inbox_.size() > max_backlog_) max_backlog_ = inbox_.size();
    }
    // A push IS an LBTS advance (per-channel streams are time-monotone), so
    // fold it in rather than waiting for the next null message.
    advance(when);
  }

  /// Null message: promises the consumer that every future delivery on this
  /// channel has `when >= lbts` (equality is possible: a transmission-done
  /// event sitting exactly at the producer's frontier delivers at frontier +
  /// propagation). The consumer therefore executes strictly below its
  /// inbound LBTS minimum. Monotone; a no-op advance neither counts nor
  /// notifies.
  void advance(sim::SimTime lbts) {
    sim::SimTime prev = lbts_.load(std::memory_order_relaxed);
    while (prev < lbts) {
      if (lbts_.compare_exchange_weak(prev, lbts,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        null_updates_.fetch_add(1, std::memory_order_relaxed);
        if (consumer_signal_ != nullptr) consumer_signal_->notify();
        return;
      }
    }
  }

  // -- Consumer side (destination shard) -----------------------------------

  /// Appends everything pushed since the last drain, in push (= time)
  /// order. Returns the number of deliveries moved.
  std::size_t drain(std::vector<Delivery>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = inbox_.size();
    for (Delivery& d : inbox_) out.push_back(std::move(d));
    inbox_.clear();
    return n;
  }

  sim::SimTime lbts() const { return lbts_.load(std::memory_order_acquire); }

  /// Barrier-only reset: overwrites the LBTS (possibly downward) after
  /// out-of-band event injection — a scenario apply can schedule sends
  /// earlier than the frontier the producer shard had already promised
  /// past. Only sound while every shard is parked at a global barrier, with
  /// a fresh bound that really is below all future deliveries.
  void force_lbts(sim::SimTime lbts) {
    lbts_.store(lbts, std::memory_order_release);
  }

  void set_consumer_signal(ShardSignal* signal) { consumer_signal_ = signal; }

  // -- Telemetry ------------------------------------------------------------

  std::uint64_t pushes() const { return pushes_; }
  std::uint64_t null_updates() const {
    return null_updates_.load(std::memory_order_relaxed);
  }
  std::size_t max_backlog() const { return max_backlog_; }

 private:
  net::Link* link_;
  int src_shard_;
  int dst_shard_;
  int rank_;

  std::mutex mutex_;
  std::vector<Delivery> inbox_;   ///< Guarded by mutex_.
  std::size_t max_backlog_ = 0;   ///< Guarded by mutex_.
  std::uint64_t pushes_ = 0;      ///< Guarded by mutex_; read after runs.
  std::atomic<sim::SimTime> lbts_{0};
  std::atomic<std::uint64_t> null_updates_{0};
  ShardSignal* consumer_signal_ = nullptr;
};

}  // namespace mltcp::pdes
