#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "pdes/channel.hpp"
#include "pdes/partition.hpp"
#include "scenario/engine.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace mltcp::pdes {

/// Per-shard execution counters for one run.
struct ShardStats {
  std::uint64_t events = 0;        ///< Executed: local pops + imports.
  std::uint64_t imports = 0;       ///< Cross-shard deliveries executed.
  std::uint64_t null_updates = 0;  ///< LBTS advances published outbound.
  std::uint64_t stalls = 0;        ///< Blocked waits / no-progress rounds.
  std::uint64_t max_inbound_backlog = 0;  ///< Deepest channel drain seen.
};

/// Conservative-lookahead parallel executor for one simulation: runs each
/// shard of a Partition on its own event queue, connected by per-cut-link
/// CrossShardChannels carrying timestamped deliveries plus null messages
/// (LBTS advances). Each shard executes events strictly below the minimum
/// of its inbound LBTS values, so no event can ever arrive in a shard's
/// past — the classic Chandy–Misra–Bryant discipline, with the link
/// propagation delay as the per-channel lookahead.
///
/// Determinism: a shard's execution is a pure function of its queue and its
/// inbound delivery streams. Every event carries a 64-bit tiebreak key and
/// executes in (when, key) order; delivery events use a canonical key that
/// depends only on the model (link construction rank + wire FIFO ordinal,
/// below EventQueue::kOrdinalBand — see Link::next_delivery_key), identical
/// whether the delivery travels through the local queue or a cross-shard
/// channel. Imports therefore merge against local work in exactly the
/// serial engine's total order, and the remaining ordinal-keyed events are
/// partition-invariant by induction (all cross-shard interaction flows
/// through deliveries). The byte-identity tests (tests/test_pdes.cpp)
/// enforce that 1-shard, N-shard cooperative and N-shard threaded runs
/// produce identical model state.
///
/// Two schedulers share the identical per-shard step function (so their
/// outputs cannot differ):
///  - kCooperative: round-robins every shard on the calling thread. Zero
///    threading overhead — the right mode on a single core, and the
///    reference for the determinism tests.
///  - kThreaded: one worker thread per shard, blocking on eventcount
///    signals when a neighbour's LBTS pins them. The mode that buys
///    wall-clock speedup on multi-core hosts.
/// kAuto picks threaded when the host has at least as many cores as shards
/// would use (>= 2), cooperative otherwise.
///
/// Limitations (asserted): no tracer may be attached to the simulator
/// (Perfetto export remains a serial-mode guarantee), and a scenario must
/// be switched to manual replay (set_manual_replay) so its events apply at
/// global barriers between phases instead of on a single shard's timer.
class ShardedRunner {
 public:
  enum class Mode { kAuto, kCooperative, kThreaded };

  /// Installs delivery sinks on every cut link. The partition must have
  /// been computed against `topo`, and the simulator must already be
  /// configured with `partition.shards` contexts (configure_shards).
  ShardedRunner(sim::Simulator& simulator, net::Topology& topo,
                const Partition& partition, Mode mode = Mode::kAuto);
  /// Uninstalls the sinks, restoring local delivery.
  ~ShardedRunner();

  ShardedRunner(const ShardedRunner&) = delete;
  ShardedRunner& operator=(const ShardedRunner&) = delete;

  /// Attaches a manual-replay scenario engine: its events become global
  /// barriers — all shards run up to (exclusive) each event time, the event
  /// applies serially on the calling thread, and execution resumes.
  void set_scenario(scenario::ScenarioEngine* engine) { engine_ = engine; }

  /// Runs every shard until simulated time `deadline` (inclusive, matching
  /// Simulator::run_until); every shard clock ends at `deadline`.
  void run_until(sim::SimTime deadline);

  const std::vector<ShardStats>& shard_stats() const { return stats_; }
  ShardStats totals() const;
  int shards() const { return static_cast<int>(shards_.size()); }
  /// Worker threads the last run_until used (1 = cooperative).
  int workers() const { return workers_; }

  /// Publishes per-shard counters as pdes/shard<i>/... plus pdes totals.
  void export_metrics(telemetry::MetricRegistry& registry) const;

 private:
  /// Consumer-side view of one inbound channel: drained deliveries pending
  /// execution, in per-channel FIFO (= time) order.
  struct Inbound {
    CrossShardChannel* channel = nullptr;
    std::vector<Delivery> pending;
    std::size_t head = 0;

    bool empty() const { return head >= pending.size(); }
    const Delivery& front() const { return pending[head]; }
  };

  /// Held by unique_ptr: the embedded ShardSignal (mutex + condvar) pins
  /// the address, and worker threads keep references across the run.
  struct Shard {
    int index = 0;
    sim::Simulator::ShardContext* ctx = nullptr;
    std::vector<Inbound> inbound;
    std::vector<CrossShardChannel*> outbound;
    ShardSignal signal;
    ShardStats stats;
    /// Last published execution frontier; republish only on change.
    sim::SimTime front = -1;
  };

  /// One scheduling quantum for shard `s` against inclusive time bound
  /// `bound`: drains channels, executes every currently-safe event, then
  /// publishes the new frontier to downstream shards. Returns true if it
  /// executed events or moved the frontier (progress in the null-message
  /// fixed-point sense). Caller must hold the shard's ShardGuard.
  bool pump(Shard& s, sim::SimTime bound);

  /// Re-grounds every channel's LBTS and invalidates the published-frontier
  /// cache. Must run whenever events were injected outside the protocol
  /// (setup, scenario applies, between run_until calls) while all shards
  /// are at rest.
  void reset_frontiers();

  /// Runs all shards until every frontier exceeds `bound` (inclusive).
  void run_phase(sim::SimTime bound);
  void run_phase_cooperative(sim::SimTime bound);
  void run_phase_threaded(sim::SimTime bound);

  sim::Simulator& sim_;
  net::Topology& topo_;
  Mode mode_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<CrossShardChannel>> channels_;
  scenario::ScenarioEngine* engine_ = nullptr;
  std::vector<ShardStats> stats_;
  int workers_ = 1;
};

}  // namespace mltcp::pdes
