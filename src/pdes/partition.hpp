#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/time.hpp"
#include "workload/cluster.hpp"

namespace mltcp::pdes {

/// How to split one topology across shards.
struct PartitionOptions {
  /// Requested shard count; the effective count is min(shards, groups) —
  /// a topology never splits finer than its atomic node groups.
  int shards = 1;
  /// Node sets that must land in the same shard, on top of the structural
  /// rule. The workload layer uses this to pin all *sender* hosts of one
  /// job together, which keeps the job's control state machine (chunk
  /// fan-out, completion counting, compute scheduling) shard-local: flow
  /// completion fires sender-side, so every Job callback then executes on
  /// exactly one shard.
  std::vector<std::vector<const net::Node*>> co_locate;
};

/// A directed link whose source and destination nodes live in different
/// shards. Its propagation delay is the guaranteed lookahead across that
/// boundary: a delivery handed off at transmission end arrives
/// `propagation_delay` later, so the source shard can always promise the
/// destination shard that much simulated-time slack.
struct CutLink {
  net::Link* link = nullptr;
  int src_shard = 0;
  int dst_shard = 0;
};

/// Result of partitioning: a shard id per node plus the cut set.
struct Partition {
  int shards = 1;
  std::vector<int> shard_of_node;  ///< Indexed by dense NodeId.
  std::vector<CutLink> cut_links;  ///< In deterministic link-construction order.
  /// Smallest cut-link propagation delay — the binding lookahead. Infinity
  /// when nothing is cut (single shard).
  sim::SimTime min_lookahead = sim::kTimeInfinity;

  int shard_of(const net::Node* node) const {
    return shard_of_node[static_cast<std::size_t>(node->id())];
  }
};

/// Partitions `topo` along link-propagation boundaries.
///
/// Structural rule: a host is atomic with the switch its uplink feeds (its
/// ToR), so racks never split — every host<->ToR hop stays shard-internal
/// and only inter-switch (fabric) links can be cut, where propagation
/// delays are largest and the lookahead strongest. Remaining switches
/// (spines) form their own groups. co_locate constraints then merge groups,
/// and the merged groups are dealt greedily (heaviest first, deterministic
/// construction-order tiebreaks) onto the requested shards.
///
/// Every cut link must have strictly positive propagation delay — that is
/// what makes conservative synchronization deadlock-free — enforced by
/// assert.
Partition partition_topology(const net::Topology& topo,
                             const PartitionOptions& options);

/// co_locate sets for a job mix: one set per JobSpec holding the *source*
/// hosts of its flows (see PartitionOptions::co_locate for why senders).
std::vector<std::vector<const net::Node*>> co_locate_senders(
    const std::vector<workload::JobSpec>& specs);

/// Serial-equivalent Cluster::start_all() for sharded runs: starts job i
/// with its kick-off event placed in the shard owning specs[i]'s first
/// sender host (co_locate_senders guarantees all of a job's senders share
/// it, and flow completion fires sender-side, so the whole job state
/// machine stays on that shard). `specs` must list the cluster's jobs in
/// add order.
void start_all_sharded(workload::Cluster& cluster,
                       const std::vector<workload::JobSpec>& specs,
                       sim::Simulator& simulator, const Partition& partition);

/// Reads MLTCP_SHARDS (unset, 0 or 1 = serial single-shard execution).
int shards_from_env();

}  // namespace mltcp::pdes
