#include "pdes/sharded_runner.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace mltcp::pdes {

namespace {

/// Saturating add against the kTimeInfinity sentinel (a frontier of
/// "nothing left" must not wrap around).
sim::SimTime saturating_add(sim::SimTime t, sim::SimTime d) {
  return t >= sim::kTimeInfinity - d ? sim::kTimeInfinity : t + d;
}

/// Canonical merge order across channels: (when, key), where key is the
/// link's canonical delivery key — the identical tiebreak the serial queue
/// uses for delivery events, so merging imports against each other and
/// against the local queue reproduces the serial total order exactly.
bool import_before(const Delivery& a, const Delivery& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.key < b.key;
}

}  // namespace

ShardedRunner::ShardedRunner(sim::Simulator& simulator, net::Topology& topo,
                             const Partition& partition, Mode mode)
    : sim_(simulator), topo_(topo), mode_(mode) {
  assert(simulator.shard_count() == partition.shards &&
         "configure_shards(partition.shards) must run before the runner");
  assert(simulator.tracer() == nullptr &&
         "tracing is a serial-mode feature; detach the tracer for sharded "
         "runs");

  shards_.reserve(static_cast<std::size_t>(partition.shards));
  for (int i = 0; i < partition.shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->index = i;
    s->ctx = &simulator.shard_context(i);
    shards_.push_back(std::move(s));
  }

  channels_.reserve(partition.cut_links.size());
  for (std::size_t rank = 0; rank < partition.cut_links.size(); ++rank) {
    const CutLink& cut = partition.cut_links[rank];
    auto channel = std::make_unique<CrossShardChannel>(
        cut.link, cut.src_shard, cut.dst_shard, static_cast<int>(rank));
    Shard& dst = *shards_[static_cast<std::size_t>(cut.dst_shard)];
    channel->set_consumer_signal(&dst.signal);
    dst.inbound.push_back(Inbound{channel.get(), {}, 0});
    shards_[static_cast<std::size_t>(cut.src_shard)]->outbound.push_back(
        channel.get());
    cut.link->set_delivery_sink(channel.get());
    channels_.push_back(std::move(channel));
  }
  stats_.resize(shards_.size());
}

ShardedRunner::~ShardedRunner() {
  for (const auto& channel : channels_) {
    channel->link()->set_delivery_sink(nullptr);
  }
}

bool ShardedRunner::pump(Shard& s, sim::SimTime bound) {
  // Pull everything neighbours pushed since the last quantum. Per-channel
  // order is time order, so appending preserves the stream.
  for (Inbound& in : s.inbound) {
    if (in.head > 0 && in.head == in.pending.size()) {
      in.pending.clear();
      in.head = 0;
    }
    in.channel->drain(in.pending);
  }

  // Safe horizon: strictly below the minimum inbound LBTS (a neighbour may
  // still emit a delivery exactly at its promised bound), and never past
  // the phase bound.
  sim::SimTime lbts_min = sim::kTimeInfinity;
  for (const Inbound& in : s.inbound) {
    lbts_min = std::min(lbts_min, in.channel->lbts());
  }

  sim::SimTime now_limit =
      std::min(bound, lbts_min == sim::kTimeInfinity ? sim::kTimeInfinity
                                                     : lbts_min - 1);

  std::uint64_t executed = 0;
  sim::EventQueue& queue = s.ctx->queue;
  for (;;) {
    // Head of the merged import stream (canonical cross-channel order).
    Inbound* best = nullptr;
    for (Inbound& in : s.inbound) {
      if (in.empty()) continue;
      if (best == nullptr || import_before(in.front(), best->front())) {
        best = &in;
      }
    }
    if (best == nullptr || best->front().when > now_limit) {
      // No executable import: drain local work to the safe horizon. The
      // queue re-peeks each pop, so events the burst schedules at
      // still-safe times join it immediately.
      while (!queue.empty() &&
             queue.pop_and_run_before(now_limit, &s.ctx->now)) {
        ++s.ctx->executed;
        ++executed;
      }
      break;
    }
    // Run the local events that canonically precede the import — strictly
    // below (d.when, d.key) in the shared total order — then the import
    // itself, and re-evaluate (the next import may be on another channel).
    const Delivery& d = best->front();
    while (!queue.empty() &&
           queue.pop_and_run_before_key(d.when, d.key, &s.ctx->now)) {
      ++s.ctx->executed;
      ++executed;
    }
    assert(d.when >= s.ctx->now && "causality violation on import");
    s.ctx->now = d.when;
    d.dst->receive(d.pkt);
    ++best->head;
    ++s.ctx->executed;
    ++s.stats.imports;
    ++executed;
  }
  s.stats.events += executed;

  // Publish the new frontier: nothing this shard will ever emit on a cut
  // link can arrive before (earliest thing it might still execute) + that
  // link's propagation delay. The earliest candidates are the local queue
  // head, the merged import head, and lbts_min (a neighbour's promise of
  // deliveries yet to be pushed).
  sim::SimTime front = lbts_min;
  if (!queue.empty()) front = std::min(front, queue.next_time());
  for (const Inbound& in : s.inbound) {
    if (!in.empty()) front = std::min(front, in.front().when);
  }
  const bool moved = front != s.front;
  if (moved) {
    s.front = front;
    for (CrossShardChannel* out : s.outbound) {
      out->advance(
          saturating_add(front, out->link()->propagation_delay()));
    }
  }
  return executed > 0 || moved;
}

void ShardedRunner::reset_frontiers() {
  // The one bound that survives out-of-band injection: no shard holds an
  // event (queued or imported-but-unexecuted) below the global minimum M,
  // and injected events are clamped to their shard's clock, so every future
  // delivery on any cut link happens at or after M plus that link's
  // propagation delay.
  sim::SimTime global_min = sim::kTimeInfinity;
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    if (!s.ctx->queue.empty()) {
      global_min = std::min(global_min, s.ctx->queue.next_time());
    }
    for (Inbound& in : s.inbound) {
      // Deliveries can sit pushed-but-undrained past a phase end (their
      // timestamps exceed the old bound); pull them in so the minimum sees
      // every pending event in the system. All shards are parked, so the
      // consumer-side drain is safe from this thread.
      in.channel->drain(in.pending);
      if (!in.empty()) global_min = std::min(global_min, in.front().when);
    }
  }
  for (const auto& channel : channels_) {
    channel->force_lbts(
        saturating_add(global_min, channel->link()->propagation_delay()));
  }
  // Invalidate the published-frontier cache so the first pump of the next
  // phase republishes the real (protocol-maintained) bounds.
  for (const auto& sp : shards_) sp->front = -1;
}

void ShardedRunner::run_phase_cooperative(sim::SimTime bound) {
  for (;;) {
    bool progress = false;
    bool done = true;
    for (const auto& sp : shards_) {
      Shard& s = *sp;
      if (s.front > bound) continue;
      sim::Simulator::ShardGuard guard(sim_, s.index);
      const bool p = pump(s, bound);
      progress |= p;
      if (s.front <= bound) {
        done = false;
        if (!p) ++s.stats.stalls;
      }
    }
    if (done) return;
    // A full no-progress round with unfinished shards would mean the LBTS
    // fixed point stopped short of the bound — impossible while the
    // minimum-frontier shard is always executable (positive lookahead).
    assert(progress && "conservative synchronization stalled below bound");
    if (!progress) return;
  }
}

void ShardedRunner::run_phase_threaded(sim::SimTime bound) {
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (const auto& sp : shards_) {
    threads.emplace_back([this, &s = *sp, bound] {
      sim::Simulator::ShardGuard guard(sim_, s.index);
      while (s.front <= bound) {
        // Observe the signal version before reading channel state: a push
        // or LBTS advance that lands after this read bumps the version, so
        // the wait below cannot sleep through it.
        const std::uint64_t seen = s.signal.version();
        const bool progress = pump(s, bound);
        if (s.front > bound) break;
        if (!progress) {
          ++s.stats.stalls;
          s.signal.wait(seen);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

void ShardedRunner::run_phase(sim::SimTime bound) {
  bool threaded = mode_ == Mode::kThreaded;
  if (mode_ == Mode::kAuto) {
    threaded = shards_.size() > 1 && std::thread::hardware_concurrency() >= 2;
  }
  if (threaded && shards_.size() > 1) {
    workers_ = static_cast<int>(shards_.size());
    run_phase_threaded(bound);
  } else {
    workers_ = 1;
    run_phase_cooperative(bound);
  }
}

void ShardedRunner::run_until(sim::SimTime deadline) {
  // Events may have been injected out-of-band since the frontiers were last
  // published (workload setup before the first call, a previous run_until's
  // aftermath, a scenario apply) — possibly below an LBTS a producer
  // already promised past. Every such injection happens while all shards
  // are at rest, so re-grounding here is sound.
  reset_frontiers();
  if (engine_ != nullptr) {
    // Scenario events are global barriers: every shard runs strictly below
    // the event time, the clocks align to it, the event applies serially on
    // this thread (so cross-shard mutations like route repair see a world
    // at rest), and execution resumes.
    for (;;) {
      const sim::SimTime at = engine_->next_event_time();
      if (at > deadline) break;
      run_phase(at - 1);
      for (const auto& sp : shards_) {
        sp->ctx->now = std::max(sp->ctx->now, at);
      }
      engine_->apply_through(at);
      reset_frontiers();
    }
  }
  run_phase(deadline);
  for (const auto& sp : shards_) {
    sp->ctx->now = std::max(sp->ctx->now, deadline);
  }

  // Fold channel counters into the published per-shard stats.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardStats st = shards_[i]->stats;
    for (const CrossShardChannel* out : shards_[i]->outbound) {
      st.null_updates += out->null_updates();
    }
    for (const Inbound& in : shards_[i]->inbound) {
      st.max_inbound_backlog = std::max(
          st.max_inbound_backlog,
          static_cast<std::uint64_t>(in.channel->max_backlog()));
    }
    stats_[i] = st;
  }
}

ShardStats ShardedRunner::totals() const {
  ShardStats total;
  for (const ShardStats& s : stats_) {
    total.events += s.events;
    total.imports += s.imports;
    total.null_updates += s.null_updates;
    total.stalls += s.stalls;
    total.max_inbound_backlog =
        std::max(total.max_inbound_backlog, s.max_inbound_backlog);
  }
  return total;
}

void ShardedRunner::export_metrics(telemetry::MetricRegistry& registry) const {
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const std::string prefix = "pdes/shard" + std::to_string(i) + "/";
    registry.counter(prefix + "events").add(
        static_cast<std::int64_t>(stats_[i].events));
    registry.counter(prefix + "imports").add(
        static_cast<std::int64_t>(stats_[i].imports));
    registry.counter(prefix + "null_updates").add(
        static_cast<std::int64_t>(stats_[i].null_updates));
    registry.counter(prefix + "lookahead_stalls").add(
        static_cast<std::int64_t>(stats_[i].stalls));
    registry.counter(prefix + "max_inbound_backlog").add(
        static_cast<std::int64_t>(stats_[i].max_inbound_backlog));
  }
  const ShardStats total = totals();
  registry.counter("pdes/total/imports").add(
      static_cast<std::int64_t>(total.imports));
  registry.counter("pdes/total/null_updates").add(
      static_cast<std::int64_t>(total.null_updates));
  registry.counter("pdes/total/lookahead_stalls").add(
      static_cast<std::int64_t>(total.stalls));
}

}  // namespace mltcp::pdes
