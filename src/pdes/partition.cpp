#include "pdes/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <numeric>

namespace mltcp::pdes {

namespace {

/// Flat union-find with path halving; no rank (node counts are small and
/// deterministic merge order matters more than tree depth).
struct UnionFind {
  std::vector<std::uint32_t> parent;

  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  /// Deterministic union: the smaller root wins, so group identity is a
  /// pure function of the constraint set, not of merge order.
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent[b] = a;
  }
};

}  // namespace

Partition partition_topology(const net::Topology& topo,
                             const PartitionOptions& options) {
  const std::size_t n_nodes = topo.hosts().size() + topo.switches().size();
  assert(options.shards >= 1);

  UnionFind uf(n_nodes);
  // Structural rule: a host fuses with the switch its uplink feeds, so the
  // host<->ToR links (the shortest propagation delays in the fabric) are
  // never cut and racks move as units.
  for (const net::Host* host : topo.hosts()) {
    if (host->uplink() != nullptr) {
      uf.unite(static_cast<std::uint32_t>(host->id()),
               static_cast<std::uint32_t>(host->uplink()->destination()->id()));
    }
  }
  for (const auto& set : options.co_locate) {
    for (std::size_t i = 1; i < set.size(); ++i) {
      uf.unite(static_cast<std::uint32_t>(set[0]->id()),
               static_cast<std::uint32_t>(set[i]->id()));
    }
  }

  // Dense group ordinals by first appearance over NodeId order (construction
  // order — deterministic across runs and machines).
  std::vector<std::int32_t> group_of(n_nodes, -1);
  struct Group {
    std::uint32_t first_node = 0;
    std::int64_t weight = 0;
  };
  std::vector<Group> groups;
  for (std::size_t id = 0; id < n_nodes; ++id) {
    const std::uint32_t root = uf.find(static_cast<std::uint32_t>(id));
    if (group_of[root] < 0) {
      group_of[root] = static_cast<std::int32_t>(groups.size());
      groups.push_back(Group{static_cast<std::uint32_t>(id), 0});
    }
    group_of[id] = group_of[root];
  }
  // Weight: hosts dominate event load (transport endpoints), switches carry
  // forwarding work; 2:1 balances a rack group against spine-only groups.
  for (const net::Host* h : topo.hosts()) {
    groups[static_cast<std::size_t>(group_of[h->id()])].weight += 2;
  }
  for (const net::Switch* s : topo.switches()) {
    groups[static_cast<std::size_t>(group_of[s->id()])].weight += 1;
  }

  Partition out;
  out.shards = std::max(
      1, std::min(options.shards, static_cast<int>(groups.size())));
  out.shard_of_node.assign(n_nodes, 0);
  if (out.shards > 1) {
    // Greedy balance: heaviest group first onto the lightest shard, every
    // tie broken by construction order — fully deterministic.
    std::vector<std::size_t> order(groups.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return groups[a].weight > groups[b].weight;
                     });
    std::vector<std::int64_t> load(static_cast<std::size_t>(out.shards), 0);
    std::vector<int> shard_of_group(groups.size(), 0);
    for (const std::size_t g : order) {
      int lightest = 0;
      for (int s = 1; s < out.shards; ++s) {
        if (load[static_cast<std::size_t>(s)] <
            load[static_cast<std::size_t>(lightest)]) {
          lightest = s;
        }
      }
      shard_of_group[g] = lightest;
      load[static_cast<std::size_t>(lightest)] += groups[g].weight;
    }
    for (std::size_t id = 0; id < n_nodes; ++id) {
      out.shard_of_node[id] =
          shard_of_group[static_cast<std::size_t>(group_of[id])];
    }
  }

  // Cut set: a link belongs to its source node's shard; it is cut when the
  // destination lives elsewhere. Walk the adjacency in NodeId-then-connect
  // order so the cut list (and with it every cross-shard channel's rank in
  // the deterministic merge) is reproducible.
  const auto& adjacency = topo.adjacency();
  for (std::size_t src = 0; src < adjacency.size(); ++src) {
    const int src_shard = out.shard_of_node[src];
    for (const auto& [dst, link] : adjacency[src]) {
      const int dst_shard = out.shard_of_node[static_cast<std::size_t>(dst)];
      if (src_shard == dst_shard) continue;
      assert(link->propagation_delay() > 0 &&
             "cut links need positive propagation delay (lookahead)");
      out.cut_links.push_back(CutLink{link, src_shard, dst_shard});
      out.min_lookahead =
          std::min(out.min_lookahead, link->propagation_delay());
    }
  }
  return out;
}

std::vector<std::vector<const net::Node*>> co_locate_senders(
    const std::vector<workload::JobSpec>& specs) {
  std::vector<std::vector<const net::Node*>> sets;
  sets.reserve(specs.size());
  for (const workload::JobSpec& spec : specs) {
    std::vector<const net::Node*> senders;
    senders.reserve(spec.flows.size());
    for (const workload::FlowSpec& f : spec.flows) {
      if (f.src != nullptr) senders.push_back(f.src);
    }
    if (!senders.empty()) sets.push_back(std::move(senders));
  }
  return sets;
}

void start_all_sharded(workload::Cluster& cluster,
                       const std::vector<workload::JobSpec>& specs,
                       sim::Simulator& simulator, const Partition& partition) {
  assert(specs.size() == cluster.job_count() &&
         "specs must list the cluster's jobs in add order");
  for (std::size_t i = 0; i < cluster.job_count(); ++i) {
    int shard = 0;
    if (i < specs.size() && !specs[i].flows.empty() &&
        specs[i].flows.front().src != nullptr) {
      shard = partition.shard_of(specs[i].flows.front().src);
    }
    sim::Simulator::ShardGuard guard(simulator, shard);
    cluster.job(i)->start();
  }
}

int shards_from_env() {
  if (const char* env = std::getenv("MLTCP_SHARDS")) {
    const int n = std::atoi(env);
    if (n > 1) return n;
  }
  return 1;
}

}  // namespace mltcp::pdes
