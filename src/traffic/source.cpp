#include "traffic/source.hpp"

#include <cassert>

#include "telemetry/tracer.hpp"

namespace mltcp::traffic {

TrafficSource::TrafficSource(sim::Simulator& simulator,
                             workload::Cluster& cluster,
                             std::vector<net::Host*> hosts,
                             SourceOptions options)
    : sim_(simulator),
      cluster_(cluster),
      hosts_(std::move(hosts)),
      opts_(std::move(options)),
      timer_(simulator, [this] { on_timer(); }) {
  assert(opts_.cc != nullptr && "SourceOptions.cc must be set");
}

void TrafficSource::install(std::vector<FlowArrival> arrivals) {
  assert(arrivals_.empty() && "install() must be called at most once");
  if (arrivals.empty()) return;  // Nothing scheduled: zero perturbation.
  arrivals_ = std::move(arrivals);
  records_.reserve(arrivals_.size());
  next_ = 0;
  timer_.arm_at(arrivals_.front().at);
}

void TrafficSource::install(const TrafficConfig& cfg) {
  install(generate_arrivals(cfg, static_cast<int>(hosts_.size())));
}

std::vector<double> TrafficSource::completed_fcts_seconds() const {
  std::vector<double> out;
  out.reserve(completed_);
  for (const FctRecord& r : records_) {
    if (r.done()) out.push_back(r.fct_seconds());
  }
  return out;
}

void TrafficSource::on_timer() {
  while (next_ < arrivals_.size() && arrivals_[next_].at <= sim_.now()) {
    post(next_);
    ++next_;
  }
  if (next_ < arrivals_.size()) timer_.arm_at(arrivals_[next_].at);
}

void TrafficSource::post(std::size_t index) {
  const FlowArrival& a = arrivals_[index];
  workload::Channel* flow = flow_for(a.src, a.dst);
  if (flow == nullptr) return;

  const std::size_t record_index = records_.size();
  records_.push_back(FctRecord{sim_.now(), -1, a.bytes, a.src, a.dst});
  ++posted_;
  bytes_posted_ += a.bytes;

  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kTraffic)) {
    t->instant(telemetry::Category::kTraffic, "traffic_arrival", sim_.now(),
               telemetry::track_traffic(), "bytes",
               static_cast<double>(a.bytes));
  }

  flow->send_message(a.bytes, [this, record_index](sim::SimTime when) {
    FctRecord& r = records_[record_index];
    r.completed = when;
    ++completed_;
    bytes_completed_ += r.bytes;
    if (auto* t =
            telemetry::tracer_for(sim_, telemetry::Category::kTraffic)) {
      t->instant(telemetry::Category::kTraffic, "traffic_complete", when,
                 telemetry::track_traffic(), "fct_s", r.fct_seconds());
    }
  });
}

workload::Channel* TrafficSource::flow_for(std::int32_t src, std::int32_t dst) {
  assert(src >= 0 && static_cast<std::size_t>(src) < hosts_.size());
  assert(dst >= 0 && static_cast<std::size_t>(dst) < hosts_.size());
  assert(src != dst);
  if (src < 0 || dst < 0 || src == dst ||
      static_cast<std::size_t>(src) >= hosts_.size() ||
      static_cast<std::size_t>(dst) >= hosts_.size()) {
    return nullptr;
  }
  auto [it, inserted] = flows_.try_emplace({src, dst}, nullptr);
  if (inserted) {
    workload::FlowSpec fs;
    fs.src = hosts_[static_cast<std::size_t>(src)];
    fs.dst = hosts_[static_cast<std::size_t>(dst)];
    it->second =
        cluster_.add_channel(fs, opts_.cc, opts_.sender, opts_.receiver);
  }
  return it->second;
}

}  // namespace mltcp::traffic
