#include "traffic/source.hpp"

#include <cassert>

#include "telemetry/tracer.hpp"

namespace mltcp::traffic {

TrafficSource::TrafficSource(sim::Simulator& simulator,
                             workload::Cluster& cluster,
                             std::vector<net::Host*> hosts,
                             SourceOptions options)
    : sim_(simulator),
      cluster_(cluster),
      hosts_(std::move(hosts)),
      opts_(std::move(options)),
      timer_(simulator, [this] { on_timer(); }) {
  assert(opts_.cc != nullptr && "SourceOptions.cc must be set");
}

void TrafficSource::install(std::vector<FlowArrival> arrivals) {
  assert(arrivals_.empty() && "install() must be called at most once");
  if (arrivals.empty()) return;  // Nothing scheduled: zero perturbation.
  arrivals_ = std::move(arrivals);
  next_ = 0;
  if (lane_of_ == nullptr) {
    records_.reserve(arrivals_.size());
    timer_.arm_at(arrivals_.front().at);
    return;
  }

  // Lane mode. Channels are created up front, walking the arrival list in
  // its serial order, so the cluster assigns the exact flow ids a serial
  // replay's lazy first-use creation would — lanes then only look them up.
  for (const FlowArrival& a : arrivals_) flow_for(a.src, a.dst);
  // Records are written by arrival index: slots are disjoint across lanes,
  // and posted slots read back in arrival order == serial push order.
  records_.assign(arrivals_.size(), FctRecord{});
  posted_flags_.assign(arrivals_.size(), 0);

  lane_states_.reserve(static_cast<std::size_t>(lanes_));
  for (int i = 0; i < lanes_; ++i) {
    lane_states_.push_back(std::make_unique<Lane>(sim_, this, i));
  }
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    const FlowArrival& a = arrivals_[i];
    if (a.src < 0 || static_cast<std::size_t>(a.src) >= hosts_.size()) {
      continue;  // flow_for already asserted; skip like a serial post would.
    }
    const int lane = lane_of_(hosts_[static_cast<std::size_t>(a.src)]);
    assert(lane >= 0 && lane < lanes_ && "lane map out of range");
    lane_states_[static_cast<std::size_t>(lane)]->order.push_back(i);
  }
  for (int i = 0; i < lanes_; ++i) {
    Lane& lane = *lane_states_[static_cast<std::size_t>(i)];
    if (lane.order.empty()) continue;
    // First arm binds the timer's queue slot: do it in the lane's shard so
    // every replay event of this lane runs there.
    sim::Simulator::ShardGuard guard(sim_, i);
    lane.timer.arm_at(arrivals_[lane.order.front()].at);
  }
}

void TrafficSource::install(const TrafficConfig& cfg) {
  install(generate_arrivals(cfg, static_cast<int>(hosts_.size())));
}

const std::vector<FctRecord>& TrafficSource::records() const {
  if (!lane_states_.empty() && !compacted_) {
    // Compact only once the replay has drained: dropping slots while lanes
    // could still post would invalidate the arrival-index addressing.
    bool drained = true;
    for (const auto& lane : lane_states_) {
      if (lane->next < lane->order.size()) drained = false;
    }
    if (drained) {
      std::vector<FctRecord> kept;
      kept.reserve(records_.size());
      for (std::size_t i = 0; i < records_.size(); ++i) {
        if (posted_flags_[i] != 0) kept.push_back(records_[i]);
      }
      records_ = std::move(kept);
      compacted_ = true;
    }
  }
  return records_;
}

std::size_t TrafficSource::posted() const {
  if (lane_states_.empty()) return posted_;
  std::size_t n = 0;
  for (const auto& lane : lane_states_) n += lane->posted;
  return n;
}

std::size_t TrafficSource::completed() const {
  if (lane_states_.empty()) return completed_;
  std::size_t n = 0;
  for (const auto& lane : lane_states_) n += lane->completed;
  return n;
}

std::int64_t TrafficSource::bytes_posted() const {
  if (lane_states_.empty()) return bytes_posted_;
  std::int64_t n = 0;
  for (const auto& lane : lane_states_) n += lane->bytes_posted;
  return n;
}

std::int64_t TrafficSource::bytes_completed() const {
  if (lane_states_.empty()) return bytes_completed_;
  std::int64_t n = 0;
  for (const auto& lane : lane_states_) n += lane->bytes_completed;
  return n;
}

std::vector<double> TrafficSource::completed_fcts_seconds() const {
  std::vector<double> out;
  out.reserve(completed());
  for (const FctRecord& r : records()) {
    if (r.done()) out.push_back(r.fct_seconds());
  }
  return out;
}

void TrafficSource::on_timer() {
  while (next_ < arrivals_.size() && arrivals_[next_].at <= sim_.now()) {
    post(next_, nullptr);
    ++next_;
  }
  if (next_ < arrivals_.size()) timer_.arm_at(arrivals_[next_].at);
}

void TrafficSource::on_lane_timer(int lane_index) {
  Lane& lane = *lane_states_[static_cast<std::size_t>(lane_index)];
  while (lane.next < lane.order.size() &&
         arrivals_[lane.order[lane.next]].at <= sim_.now()) {
    post(lane.order[lane.next], &lane);
    ++lane.next;
  }
  if (lane.next < lane.order.size()) {
    lane.timer.arm_at(arrivals_[lane.order[lane.next]].at);
  }
}

void TrafficSource::post(std::size_t index, Lane* lane) {
  const FlowArrival& a = arrivals_[index];
  workload::Channel* flow = flow_for(a.src, a.dst);
  if (flow == nullptr) return;

  std::size_t record_index;
  if (lane == nullptr) {
    record_index = records_.size();
    records_.push_back(FctRecord{sim_.now(), -1, a.bytes, a.src, a.dst});
    ++posted_;
    bytes_posted_ += a.bytes;
  } else {
    record_index = index;
    records_[index] = FctRecord{sim_.now(), -1, a.bytes, a.src, a.dst};
    posted_flags_[index] = 1;
    ++lane->posted;
    lane->bytes_posted += a.bytes;
  }

  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kTraffic)) {
    t->instant(telemetry::Category::kTraffic, "traffic_arrival", sim_.now(),
               telemetry::track_traffic(), "bytes",
               static_cast<double>(a.bytes));
  }

  flow->send_message(a.bytes, [this, record_index, lane](sim::SimTime when) {
    FctRecord& r = records_[record_index];
    r.completed = when;
    if (lane == nullptr) {
      ++completed_;
      bytes_completed_ += r.bytes;
    } else {
      ++lane->completed;
      lane->bytes_completed += r.bytes;
    }
    if (auto* t =
            telemetry::tracer_for(sim_, telemetry::Category::kTraffic)) {
      t->instant(telemetry::Category::kTraffic, "traffic_complete", when,
                 telemetry::track_traffic(), "fct_s", r.fct_seconds());
    }
  });
}

workload::Channel* TrafficSource::flow_for(std::int32_t src, std::int32_t dst) {
  assert(src >= 0 && static_cast<std::size_t>(src) < hosts_.size());
  assert(dst >= 0 && static_cast<std::size_t>(dst) < hosts_.size());
  assert(src != dst);
  if (src < 0 || dst < 0 || src == dst ||
      static_cast<std::size_t>(src) >= hosts_.size() ||
      static_cast<std::size_t>(dst) >= hosts_.size()) {
    return nullptr;
  }
  // Lane mode after install: the map is complete and lanes run
  // concurrently, so only a read is safe (and ever needed).
  if (!lane_states_.empty()) {
    auto it = flows_.find({src, dst});
    assert(it != flows_.end() && "lane-mode channel missing from pre-create");
    return it == flows_.end() ? nullptr : it->second;
  }
  auto [it, inserted] = flows_.try_emplace({src, dst}, nullptr);
  if (inserted) {
    workload::FlowSpec fs;
    fs.src = hosts_[static_cast<std::size_t>(src)];
    fs.dst = hosts_[static_cast<std::size_t>(dst)];
    it->second =
        cluster_.add_channel(fs, opts_.cc, opts_.sender, opts_.receiver);
  }
  return it->second;
}

}  // namespace mltcp::traffic
