#include "traffic/pattern.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/random.hpp"

namespace mltcp::traffic {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kPoisson: return "poisson";
    case Pattern::kIncast: return "incast";
    case Pattern::kTornado: return "tornado";
    case Pattern::kAllToAll: return "all_to_all";
    case Pattern::kPermutation: return "permutation";
  }
  return "unknown";
}

const std::vector<Pattern>& all_patterns() {
  static const std::vector<Pattern> kAll = {
      Pattern::kPoisson, Pattern::kIncast, Pattern::kTornado,
      Pattern::kAllToAll, Pattern::kPermutation};
  return kAll;
}

namespace {

/// Salts for derive_seed, one per independent stream a config may consume.
/// Distinct constants so adding a stream never shifts an existing one.
constexpr std::uint64_t kSizeSalt = 0x5349u;     // "SI"
constexpr std::uint64_t kArrivalSalt = 0x4152u;  // "AR"
constexpr std::uint64_t kPairSalt = 0x5041u;     // "PA"

/// Draws one flow size. Sizes are at least 1 byte.
std::int64_t draw_size(const TrafficConfig& cfg, sim::Rng& rng) {
  switch (cfg.size_dist) {
    case SizeDist::kFixed:
      return std::max<std::int64_t>(1, cfg.mean_bytes);
    case SizeDist::kExponential:
      return std::max<std::int64_t>(
          1, std::llround(rng.exponential(
                 static_cast<double>(cfg.mean_bytes))));
    case SizeDist::kPareto: {
      // Bounded Pareto on [xm, max]: inverse-CDF sampling. The scale xm is
      // chosen so the *unbounded* mean is cfg.mean_bytes
      // (mean = shape/(shape-1) * xm); truncation pulls the realized mean
      // slightly below, which is fine for a workload knob.
      const double shape = std::max(1.01, cfg.pareto_shape);
      const double xm =
          static_cast<double>(cfg.mean_bytes) * (shape - 1.0) / shape;
      const double xmax =
          cfg.max_bytes > 0 ? static_cast<double>(cfg.max_bytes)
                            : 1000.0 * static_cast<double>(cfg.mean_bytes);
      const double ha = std::pow(xm / xmax, shape);
      const double u = rng.uniform();
      const double x = xm / std::pow(1.0 - u * (1.0 - ha), 1.0 / shape);
      return std::max<std::int64_t>(1, std::llround(x));
    }
  }
  return 1;
}

void poisson_pairs(const TrafficConfig& cfg, int n_hosts,
                   const std::vector<std::int32_t>* perm, sim::Rng& pair_rng,
                   sim::Rng& arrival_rng, sim::Rng& size_rng,
                   std::vector<FlowArrival>& out) {
  if (cfg.flows_per_second <= 0.0) return;
  const double mean_gap_s = 1.0 / cfg.flows_per_second;
  sim::SimTime t = cfg.start;
  while (true) {
    t += sim::from_seconds(arrival_rng.exponential(mean_gap_s));
    if (t >= cfg.stop) break;
    std::int32_t src;
    std::int32_t dst;
    if (perm != nullptr) {
      src = static_cast<std::int32_t>(
          pair_rng.uniform_int(0, n_hosts - 1));
      dst = (*perm)[static_cast<std::size_t>(src)];
    } else {
      src = static_cast<std::int32_t>(
          pair_rng.uniform_int(0, n_hosts - 1));
      dst = static_cast<std::int32_t>(
          pair_rng.uniform_int(0, n_hosts - 2));
      if (dst >= src) ++dst;  // uniform over the n-1 non-self hosts
    }
    out.push_back(FlowArrival{t, src, dst, draw_size(cfg, size_rng)});
  }
}

void incast_epochs(const TrafficConfig& cfg, int n_hosts, sim::Rng& size_rng,
                   std::vector<FlowArrival>& out) {
  const int fanin =
      cfg.incast_fanin > 0 ? std::min(cfg.incast_fanin, n_hosts - 1)
                           : n_hosts - 1;
  assert(cfg.epoch > 0);
  int round = 0;
  for (sim::SimTime t = cfg.start; t < cfg.stop; t += cfg.epoch, ++round) {
    const std::int32_t victim =
        cfg.incast_victim >= 0
            ? static_cast<std::int32_t>(cfg.incast_victim % n_hosts)
            : static_cast<std::int32_t>(round % n_hosts);
    // Senders walk away from the victim in index order, so the burst is a
    // pure function of (round, fanin) — no RNG draw decides who fires.
    for (int k = 1; k <= fanin; ++k) {
      const auto src =
          static_cast<std::int32_t>((victim + k) % n_hosts);
      out.push_back(FlowArrival{t, src, victim, draw_size(cfg, size_rng)});
    }
  }
}

void tornado_epochs(const TrafficConfig& cfg, int n_hosts, sim::Rng& size_rng,
                    std::vector<FlowArrival>& out) {
  assert(cfg.epoch > 0);
  int round = 0;
  for (sim::SimTime t = cfg.start; t < cfg.stop; t += cfg.epoch, ++round) {
    const int stride = 1 + round % (n_hosts - 1);  // never self-to-self
    for (std::int32_t src = 0; src < n_hosts; ++src) {
      const auto dst = static_cast<std::int32_t>((src + stride) % n_hosts);
      out.push_back(FlowArrival{t, src, dst, draw_size(cfg, size_rng)});
    }
  }
}

void all_to_all_epochs(const TrafficConfig& cfg, int n_hosts,
                       sim::Rng& size_rng, std::vector<FlowArrival>& out) {
  assert(cfg.epoch > 0);
  for (sim::SimTime t = cfg.start; t < cfg.stop; t += cfg.epoch) {
    for (std::int32_t src = 0; src < n_hosts; ++src) {
      for (std::int32_t dst = 0; dst < n_hosts; ++dst) {
        if (dst == src) continue;
        out.push_back(FlowArrival{t, src, dst, draw_size(cfg, size_rng)});
      }
    }
  }
}

/// Seeded fixpoint-free permutation: a Fisher-Yates shuffle re-drawn (with
/// fresh randomness, so it terminates) until no host maps to itself.
std::vector<std::int32_t> make_permutation(int n_hosts, sim::Rng& rng) {
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n_hosts));
  while (true) {
    for (int i = 0; i < n_hosts; ++i) perm[static_cast<std::size_t>(i)] = i;
    for (int i = n_hosts - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(0, i));
      std::swap(perm[static_cast<std::size_t>(i)], perm[j]);
    }
    bool fixpoint = false;
    for (int i = 0; i < n_hosts; ++i) {
      if (perm[static_cast<std::size_t>(i)] == i) fixpoint = true;
    }
    if (!fixpoint || n_hosts < 2) return perm;
  }
}

}  // namespace

std::vector<FlowArrival> generate_arrivals(const TrafficConfig& cfg,
                                           int n_hosts) {
  std::vector<FlowArrival> out;
  if (n_hosts < 2 || cfg.stop <= cfg.start) return out;

  // Independent streams per concern: the size draw of arrival k never
  // depends on how pairs were chosen, so switching patterns with the same
  // seed keeps size sequences comparable.
  sim::Rng size_rng(sim::derive_seed(cfg.seed, kSizeSalt),
                    sim::derive_seed(cfg.seed, kSizeSalt + 1));
  sim::Rng arrival_rng(sim::derive_seed(cfg.seed, kArrivalSalt),
                       sim::derive_seed(cfg.seed, kArrivalSalt + 1));
  sim::Rng pair_rng(sim::derive_seed(cfg.seed, kPairSalt),
                    sim::derive_seed(cfg.seed, kPairSalt + 1));

  switch (cfg.pattern) {
    case Pattern::kPoisson:
      poisson_pairs(cfg, n_hosts, nullptr, pair_rng, arrival_rng, size_rng,
                    out);
      break;
    case Pattern::kIncast:
      incast_epochs(cfg, n_hosts, size_rng, out);
      break;
    case Pattern::kTornado:
      tornado_epochs(cfg, n_hosts, size_rng, out);
      break;
    case Pattern::kAllToAll:
      all_to_all_epochs(cfg, n_hosts, size_rng, out);
      break;
    case Pattern::kPermutation: {
      const std::vector<std::int32_t> perm =
          make_permutation(n_hosts, pair_rng);
      poisson_pairs(cfg, n_hosts, &perm, pair_rng, arrival_rng, size_rng,
                    out);
      break;
    }
  }

  // Generation emits in time order per helper already; keep the contract
  // explicit (and stable for equal timestamps — epoch bursts).
  std::stable_sort(
      out.begin(), out.end(),
      [](const FlowArrival& a, const FlowArrival& b) { return a.at < b.at; });
  return out;
}

}  // namespace mltcp::traffic
