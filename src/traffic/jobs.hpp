#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "tcp/cong_control.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"

namespace mltcp::traffic {

/// Hadoop-sort-style shuffle: `mappers` × `reducers` hosts move
/// `bytes_per_pair` from every mapper to every reducer, wait for the whole
/// wave to land, spend `reduce_time` sorting, and repeat for `waves` rounds.
/// The bulk-synchronous storage workload that coexists with training
/// traffic in production fabrics — unlike a training ring it is all-to-all
/// and barrier-synchronized on *completion of every transfer*, so one slow
/// flow stalls the wave (the straggler shape that makes its FCT tail
/// matter).
struct ShuffleConfig {
  std::string name = "shuffle";
  std::vector<net::Host*> mappers;
  std::vector<net::Host*> reducers;
  std::int64_t bytes_per_pair = 1'000'000;
  sim::SimTime reduce_time = sim::milliseconds(200);
  int waves = 1;
  sim::SimTime start_time = 0;
  tcp::CcFactory cc;  ///< Must be set.
  tcp::SenderConfig sender;
  tcp::ReceiverConfig receiver;
};

class ShuffleJob {
 public:
  /// Creates the mapper->reducer connections through `cluster` (which owns
  /// them). The job is not started.
  ShuffleJob(sim::Simulator& simulator, workload::Cluster& cluster,
             ShuffleConfig cfg);

  ShuffleJob(const ShuffleJob&) = delete;
  ShuffleJob& operator=(const ShuffleJob&) = delete;

  /// Schedules the first wave at cfg.start_time.
  void start();
  /// Halts after the in-flight wave's transfers drain; no further wave
  /// starts. Idempotent.
  void stop();

  const std::string& name() const { return cfg_.name; }
  bool running() const { return running_; }
  int waves_completed() const { return static_cast<int>(waves_.size()); }

  /// Wall time of each completed wave (first transfer posted -> reduce
  /// done), seconds.
  const std::vector<double>& wave_times_seconds() const { return waves_; }

  /// Per-transfer records across all waves (arrival order). Transfers of an
  /// aborted wave stay open.
  const std::vector<FctRecord>& transfers() const { return records_; }
  std::vector<double> completed_fcts_seconds() const;
  std::size_t open_transfers() const { return posted_ - completed_; }

 private:
  void begin_wave();
  void on_transfer_done(std::size_t record_index, sim::SimTime when);
  void on_reduce_done();

  sim::Simulator& sim_;
  ShuffleConfig cfg_;
  /// mappers × reducers, row-major; backend-neutral channels.
  std::vector<workload::Channel*> flows_;
  sim::Timer timer_;  ///< Wave start / reduce completion.

  bool running_ = false;
  bool reducing_ = false;
  int wave_index_ = 0;
  int pending_transfers_ = 0;
  sim::SimTime wave_start_ = 0;
  std::vector<double> waves_;
  std::vector<FctRecord> records_;
  std::size_t posted_ = 0;
  std::size_t completed_ = 0;
};

/// Request-response fan-out: a stand-in for user-facing serving traffic.
/// Requests arrive at the frontend as a seeded Poisson stream; each request
/// sends `request_bytes` to `fanout` backends (chosen round-robin, so load
/// is even and deterministic) and every backend answers with
/// `response_bytes`. The request completes when the *last* response lands —
/// the classic tail-at-scale shape: request latency is a max over fan-out
/// legs, so backend-side p99 becomes frontend-side median.
struct ServingConfig {
  std::string name = "serving";
  net::Host* frontend = nullptr;
  std::vector<net::Host*> backends;
  double requests_per_second = 100.0;
  int fanout = 0;  ///< Backends touched per request; 0 = all of them.
  std::int64_t request_bytes = 2'000;     ///< Frontend -> backend.
  std::int64_t response_bytes = 100'000;  ///< Backend -> frontend.
  sim::SimTime start_time = 0;
  sim::SimTime stop_time = sim::seconds(1);
  std::uint64_t seed = 1;
  tcp::CcFactory cc;  ///< Must be set.
  tcp::SenderConfig sender;
  tcp::ReceiverConfig receiver;
};

class ServingJob {
 public:
  /// Creates the request/response connections through `cluster`. Arrival
  /// times are pre-generated here from a splitmix64-derived stream of
  /// cfg.seed, so the request schedule is a pure function of the config.
  ServingJob(sim::Simulator& simulator, workload::Cluster& cluster,
             ServingConfig cfg);

  ServingJob(const ServingJob&) = delete;
  ServingJob& operator=(const ServingJob&) = delete;

  void start();
  /// No further requests are issued; in-flight ones drain. Idempotent.
  void stop();

  const std::string& name() const { return cfg_.name; }
  bool running() const { return running_; }

  std::size_t requests_issued() const { return issued_; }
  std::size_t requests_completed() const { return completed_; }
  std::size_t open_requests() const { return issued_ - completed_; }

  /// End-to-end latency (arrival -> last response) of each completed
  /// request, in issue order, seconds.
  std::vector<double> completed_latencies_seconds() const;

  /// Per-request records; `bytes` holds the request's total response bytes.
  const std::vector<FctRecord>& requests() const { return records_; }

 private:
  void on_timer();
  void issue(sim::SimTime at);
  void on_response(std::size_t record_index, sim::SimTime when);

  sim::Simulator& sim_;
  ServingConfig cfg_;
  std::vector<workload::Channel*> to_backend_;    ///< One per backend.
  std::vector<workload::Channel*> from_backend_;  ///< One per backend.
  std::vector<sim::SimTime> schedule_;       ///< Pre-generated arrivals.
  std::size_t next_arrival_ = 0;
  sim::Timer timer_;

  bool running_ = false;
  int rr_offset_ = 0;  ///< Round-robin cursor over backends.
  std::vector<FctRecord> records_;
  std::vector<int> responses_pending_;  ///< Per request, counts down to 0.
  std::size_t issued_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace mltcp::traffic
