#include "traffic/jobs.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/tracer.hpp"

namespace mltcp::traffic {

namespace {
constexpr std::uint64_t kServingSalt = 0x5345u;  // "SE"
}  // namespace

// ---------------------------------------------------------------- Shuffle

ShuffleJob::ShuffleJob(sim::Simulator& simulator, workload::Cluster& cluster,
                       ShuffleConfig cfg)
    : sim_(simulator),
      cfg_(std::move(cfg)),
      timer_(simulator, [this] {
        if (reducing_) {
          on_reduce_done();
        } else {
          begin_wave();
        }
      }) {
  assert(cfg_.cc != nullptr && "ShuffleConfig.cc must be set");
  assert(!cfg_.mappers.empty() && !cfg_.reducers.empty());
  flows_.reserve(cfg_.mappers.size() * cfg_.reducers.size());
  for (net::Host* m : cfg_.mappers) {
    for (net::Host* r : cfg_.reducers) {
      // Colocated mapper/reducer pairs exchange through local disk, not the
      // fabric; they contribute no flow.
      if (m == r) {
        flows_.push_back(nullptr);
        continue;
      }
      workload::FlowSpec fs;
      fs.src = m;
      fs.dst = r;
      flows_.push_back(
          cluster.add_channel(fs, cfg_.cc, cfg_.sender, cfg_.receiver));
    }
  }
}

void ShuffleJob::start() {
  if (running_) return;
  running_ = true;
  timer_.arm_at(cfg_.start_time);
}

void ShuffleJob::stop() {
  running_ = false;
  timer_.cancel();
}

std::vector<double> ShuffleJob::completed_fcts_seconds() const {
  std::vector<double> out;
  out.reserve(completed_);
  for (const FctRecord& r : records_) {
    if (r.done()) out.push_back(r.fct_seconds());
  }
  return out;
}

void ShuffleJob::begin_wave() {
  if (!running_) return;
  wave_start_ = sim_.now();
  pending_transfers_ = 0;
  const auto n_reducers = static_cast<std::int32_t>(cfg_.reducers.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i] == nullptr) continue;
    const std::size_t record_index = records_.size();
    records_.push_back(FctRecord{
        sim_.now(), -1, cfg_.bytes_per_pair,
        static_cast<std::int32_t>(i) / n_reducers,
        static_cast<std::int32_t>(i) % n_reducers});
    ++posted_;
    ++pending_transfers_;
    flows_[i]->send_message(
        cfg_.bytes_per_pair, [this, record_index](sim::SimTime when) {
          on_transfer_done(record_index, when);
        });
  }
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kTraffic)) {
    t->instant(telemetry::Category::kTraffic, "shuffle_wave_start",
               sim_.now(), telemetry::track_traffic(), "wave",
               static_cast<double>(wave_index_));
  }
}

void ShuffleJob::on_transfer_done(std::size_t record_index,
                                  sim::SimTime when) {
  records_[record_index].completed = when;
  ++completed_;
  if (--pending_transfers_ > 0 || !running_) return;
  // Whole wave landed: the sort/merge phase runs, then the next wave.
  reducing_ = true;
  timer_.arm(cfg_.reduce_time);
}

void ShuffleJob::on_reduce_done() {
  reducing_ = false;
  waves_.push_back(sim::to_seconds(sim_.now() - wave_start_));
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kTraffic)) {
    t->instant(telemetry::Category::kTraffic, "shuffle_wave_done", sim_.now(),
               telemetry::track_traffic(), "wave",
               static_cast<double>(wave_index_));
  }
  ++wave_index_;
  if (wave_index_ < cfg_.waves) {
    begin_wave();
  } else {
    running_ = false;
  }
}

// ---------------------------------------------------------------- Serving

ServingJob::ServingJob(sim::Simulator& simulator, workload::Cluster& cluster,
                       ServingConfig cfg)
    : sim_(simulator),
      cfg_(std::move(cfg)),
      timer_(simulator, [this] { on_timer(); }) {
  assert(cfg_.cc != nullptr && "ServingConfig.cc must be set");
  assert(cfg_.frontend != nullptr && !cfg_.backends.empty());
  to_backend_.reserve(cfg_.backends.size());
  from_backend_.reserve(cfg_.backends.size());
  for (net::Host* b : cfg_.backends) {
    assert(b != cfg_.frontend && "frontend cannot be its own backend");
    workload::FlowSpec req;
    req.src = cfg_.frontend;
    req.dst = b;
    to_backend_.push_back(
        cluster.add_channel(req, cfg_.cc, cfg_.sender, cfg_.receiver));
    workload::FlowSpec resp;
    resp.src = b;
    resp.dst = cfg_.frontend;
    from_backend_.push_back(
        cluster.add_channel(resp, cfg_.cc, cfg_.sender, cfg_.receiver));
  }

  // Pre-generated Poisson request schedule: a pure function of the config,
  // so serial and parallel campaign runs issue identical request streams.
  if (cfg_.requests_per_second > 0.0) {
    sim::Rng rng(sim::derive_seed(cfg_.seed, kServingSalt),
                 sim::derive_seed(cfg_.seed, kServingSalt + 1));
    const double mean_gap_s = 1.0 / cfg_.requests_per_second;
    sim::SimTime t = cfg_.start_time;
    while (true) {
      t += sim::from_seconds(rng.exponential(mean_gap_s));
      if (t >= cfg_.stop_time) break;
      schedule_.push_back(t);
    }
  }
}

void ServingJob::start() {
  if (running_ || schedule_.empty()) return;
  running_ = true;
  next_arrival_ = 0;
  timer_.arm_at(schedule_.front());
}

void ServingJob::stop() {
  running_ = false;
  timer_.cancel();
}

std::vector<double> ServingJob::completed_latencies_seconds() const {
  std::vector<double> out;
  out.reserve(completed_);
  for (const FctRecord& r : records_) {
    if (r.done()) out.push_back(r.fct_seconds());
  }
  return out;
}

void ServingJob::on_timer() {
  while (next_arrival_ < schedule_.size() &&
         schedule_[next_arrival_] <= sim_.now()) {
    issue(schedule_[next_arrival_]);
    ++next_arrival_;
  }
  if (running_ && next_arrival_ < schedule_.size()) {
    timer_.arm_at(schedule_[next_arrival_]);
  }
}

void ServingJob::issue(sim::SimTime at) {
  const int n = static_cast<int>(cfg_.backends.size());
  const int fanout =
      cfg_.fanout > 0 ? std::min(cfg_.fanout, n) : n;
  const std::size_t record_index = records_.size();
  records_.push_back(FctRecord{
      at, -1, static_cast<std::int64_t>(fanout) * cfg_.response_bytes, 0,
      0});
  responses_pending_.push_back(fanout);
  ++issued_;

  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kTraffic)) {
    t->instant(telemetry::Category::kTraffic, "request_issued", sim_.now(),
               telemetry::track_traffic(), "fanout",
               static_cast<double>(fanout));
  }

  for (int k = 0; k < fanout; ++k) {
    const int b = (rr_offset_ + k) % n;
    // Request leg; when it is fully acknowledged the backend has the query
    // and fires its response leg. The response completing at the backend's
    // sender means the frontend holds every byte of the answer.
    to_backend_[static_cast<std::size_t>(b)]->send_message(
        cfg_.request_bytes, [this, record_index, b](sim::SimTime) {
          from_backend_[static_cast<std::size_t>(b)]->send_message(
              cfg_.response_bytes,
              [this, record_index](sim::SimTime when) {
                on_response(record_index, when);
              });
        });
  }
  rr_offset_ = (rr_offset_ + fanout) % n;
}

void ServingJob::on_response(std::size_t record_index, sim::SimTime when) {
  if (--responses_pending_[record_index] > 0) return;
  records_[record_index].completed = when;
  ++completed_;
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kTraffic)) {
    t->instant(telemetry::Category::kTraffic, "request_done", when,
               telemetry::track_traffic(), "latency_s",
               records_[record_index].fct_seconds());
  }
}

}  // namespace mltcp::traffic
