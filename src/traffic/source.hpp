#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "tcp/cong_control.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender.hpp"
#include "traffic/pattern.hpp"
#include "workload/cluster.hpp"

namespace mltcp::traffic {

/// One transfer's lifecycle as the source observed it. `completed == -1`
/// means the flow was still open when the run ended — FCT reporting must
/// count it separately, never fold its truncated duration into the tails.
struct FctRecord {
  sim::SimTime arrival = 0;
  sim::SimTime completed = -1;
  std::int64_t bytes = 0;
  std::int32_t src = 0;
  std::int32_t dst = 0;

  bool done() const { return completed >= 0; }
  double fct_seconds() const {
    return done() ? sim::to_seconds(completed - arrival) : -1.0;
  }
};

/// Transport configuration for the flows a TrafficSource creates.
struct SourceOptions {
  tcp::CcFactory cc;  ///< Must be set.
  tcp::SenderConfig sender;
  tcp::ReceiverConfig receiver;
};

/// Replays a pre-generated arrival list against one run's world: each
/// arrival posts its bytes as a message on a cluster-owned TCP connection
/// between the two hosts (connections are reused per (src, dst) pair, so a
/// pair's transfers share one congestion-control state and queue FIFO behind
/// each other — connection semantics, which is what makes sender-side
/// queueing show up in the FCT like it does in production).
///
/// Determinism: the arrival list is generated up front from per-run seeds
/// (generate_arrivals) and the replay runs off a single timer in list
/// order, so a run's traffic is a pure function of (config, world) — the
/// same discipline as the scenario engine.
class TrafficSource {
 public:
  /// `hosts` maps the arrival list's host indices to real hosts; flows are
  /// created lazily through `cluster` (which owns their lifetime).
  TrafficSource(sim::Simulator& simulator, workload::Cluster& cluster,
                std::vector<net::Host*> hosts, SourceOptions options);

  TrafficSource(const TrafficSource&) = delete;
  TrafficSource& operator=(const TrafficSource&) = delete;

  /// Schedules the replay. Call at most once; arrivals whose time is
  /// already past fire immediately.
  void install(std::vector<FlowArrival> arrivals);

  /// Convenience: generate_arrivals(cfg, hosts.size()) + install.
  void install(const TrafficConfig& cfg);

  /// Sharded runs: splits the replay into per-shard "lanes" — each lane
  /// owns the arrivals whose source host maps to its shard and replays them
  /// off its own timer, armed in that shard's context, so an arrival's
  /// events start in the shard that owns its source host. Lane index ==
  /// shard index by contract. Call before install().
  ///
  /// Lane mode keeps the serial replay's observable sequence: channels are
  /// pre-created at install() in serial first-use order (identical flow-id
  /// assignment), records are written by arrival index into a pre-sized
  /// vector (slots are disjoint across lanes), and records() compacts to
  /// posted-only in arrival order — exactly what a serial replay pushes.
  void set_lane_map(std::function<int(const net::Host*)> lane_of, int lanes) {
    assert(arrivals_.empty() && "set_lane_map() must precede install()");
    assert(lanes >= 1);
    lane_of_ = std::move(lane_of);
    lanes_ = lanes;
  }

  /// Per-arrival records, in arrival order. Stable once posted: completion
  /// fills in `completed` in place. Lane mode: read after the run has
  /// drained the arrival list (the first fully-drained call compacts).
  const std::vector<FctRecord>& records() const;

  /// Completion times (seconds) of every finished transfer, arrival order.
  std::vector<double> completed_fcts_seconds() const;

  std::size_t posted() const;
  std::size_t completed() const;
  /// Transfers posted but unfinished (run ended or still draining).
  std::size_t open() const { return posted() - completed(); }

  std::int64_t bytes_posted() const;
  std::int64_t bytes_completed() const;

 private:
  /// Per-shard replay state: the lane's slice of the arrival list plus its
  /// own counters (summed in the accessors), so concurrent lanes never
  /// touch shared mutable state.
  struct Lane {
    Lane(sim::Simulator& simulator, TrafficSource* source, int index)
        : timer(simulator, [source, index] { source->on_lane_timer(index); }) {
    }
    sim::Timer timer;
    std::vector<std::size_t> order;  ///< Global arrival indices, sorted.
    std::size_t next = 0;
    std::size_t posted = 0;
    std::size_t completed = 0;
    std::int64_t bytes_posted = 0;
    std::int64_t bytes_completed = 0;
  };

  void on_timer();
  void on_lane_timer(int lane_index);
  void post(std::size_t index, Lane* lane);
  workload::Channel* flow_for(std::int32_t src, std::int32_t dst);

  sim::Simulator& sim_;
  workload::Cluster& cluster_;
  std::vector<net::Host*> hosts_;
  SourceOptions opts_;

  std::vector<FlowArrival> arrivals_;  ///< Sorted by (at, order).
  std::size_t next_ = 0;
  sim::Timer timer_;

  std::function<int(const net::Host*)> lane_of_;  ///< Null when serial.
  int lanes_ = 1;
  std::vector<std::unique_ptr<Lane>> lane_states_;  ///< Empty when serial.
  std::vector<char> posted_flags_;  ///< Lane mode: per-arrival posted bit.

  /// Backend-owned channels, reused per ordered host pair. Lane mode:
  /// fully populated at install(), lookup-only afterwards.
  std::map<std::pair<std::int32_t, std::int32_t>, workload::Channel*> flows_;

  /// Mutable: records() lazily compacts lane-mode placeholder slots away.
  mutable std::vector<FctRecord> records_;
  mutable bool compacted_ = false;
  std::size_t posted_ = 0;
  std::size_t completed_ = 0;
  std::int64_t bytes_posted_ = 0;
  std::int64_t bytes_completed_ = 0;
};

}  // namespace mltcp::traffic
