#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "tcp/cong_control.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender.hpp"
#include "traffic/pattern.hpp"
#include "workload/cluster.hpp"

namespace mltcp::traffic {

/// One transfer's lifecycle as the source observed it. `completed == -1`
/// means the flow was still open when the run ended — FCT reporting must
/// count it separately, never fold its truncated duration into the tails.
struct FctRecord {
  sim::SimTime arrival = 0;
  sim::SimTime completed = -1;
  std::int64_t bytes = 0;
  std::int32_t src = 0;
  std::int32_t dst = 0;

  bool done() const { return completed >= 0; }
  double fct_seconds() const {
    return done() ? sim::to_seconds(completed - arrival) : -1.0;
  }
};

/// Transport configuration for the flows a TrafficSource creates.
struct SourceOptions {
  tcp::CcFactory cc;  ///< Must be set.
  tcp::SenderConfig sender;
  tcp::ReceiverConfig receiver;
};

/// Replays a pre-generated arrival list against one run's world: each
/// arrival posts its bytes as a message on a cluster-owned TCP connection
/// between the two hosts (connections are reused per (src, dst) pair, so a
/// pair's transfers share one congestion-control state and queue FIFO behind
/// each other — connection semantics, which is what makes sender-side
/// queueing show up in the FCT like it does in production).
///
/// Determinism: the arrival list is generated up front from per-run seeds
/// (generate_arrivals) and the replay runs off a single timer in list
/// order, so a run's traffic is a pure function of (config, world) — the
/// same discipline as the scenario engine.
class TrafficSource {
 public:
  /// `hosts` maps the arrival list's host indices to real hosts; flows are
  /// created lazily through `cluster` (which owns their lifetime).
  TrafficSource(sim::Simulator& simulator, workload::Cluster& cluster,
                std::vector<net::Host*> hosts, SourceOptions options);

  TrafficSource(const TrafficSource&) = delete;
  TrafficSource& operator=(const TrafficSource&) = delete;

  /// Schedules the replay. Call at most once; arrivals whose time is
  /// already past fire immediately.
  void install(std::vector<FlowArrival> arrivals);

  /// Convenience: generate_arrivals(cfg, hosts.size()) + install.
  void install(const TrafficConfig& cfg);

  /// Per-arrival records, in arrival order. Stable once posted: completion
  /// fills in `completed` in place.
  const std::vector<FctRecord>& records() const { return records_; }

  /// Completion times (seconds) of every finished transfer, arrival order.
  std::vector<double> completed_fcts_seconds() const;

  std::size_t posted() const { return posted_; }
  std::size_t completed() const { return completed_; }
  /// Transfers posted but unfinished (run ended or still draining).
  std::size_t open() const { return posted_ - completed_; }

  std::int64_t bytes_posted() const { return bytes_posted_; }
  std::int64_t bytes_completed() const { return bytes_completed_; }

 private:
  void on_timer();
  void post(std::size_t index);
  workload::Channel* flow_for(std::int32_t src, std::int32_t dst);

  sim::Simulator& sim_;
  workload::Cluster& cluster_;
  std::vector<net::Host*> hosts_;
  SourceOptions opts_;

  std::vector<FlowArrival> arrivals_;  ///< Sorted by (at, order).
  std::size_t next_ = 0;
  sim::Timer timer_;

  /// Backend-owned channels, reused per ordered host pair.
  std::map<std::pair<std::int32_t, std::int32_t>, workload::Channel*> flows_;

  std::vector<FctRecord> records_;
  std::size_t posted_ = 0;
  std::size_t completed_ = 0;
  std::int64_t bytes_posted_ = 0;
  std::int64_t bytes_completed_ = 0;
};

}  // namespace mltcp::traffic
