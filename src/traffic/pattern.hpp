#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mltcp::traffic {

/// Spatial structure of the generated traffic matrix.
enum class Pattern {
  /// Poisson arrivals between uniformly random distinct host pairs — the
  /// unstructured "datacenter background" baseline of the FCT literature.
  kPoisson,
  /// Synchronized N-to-1 bursts: every epoch, `incast_fanin` senders fire a
  /// short flow at the same aggregator host simultaneously (partition/
  /// aggregate, the storage-read / query-response killer pattern).
  kIncast,
  /// Tornado: host i sends to host (i + stride) mod n, with the stride
  /// advancing every epoch — a rotating permutation that keeps every host
  /// pair loaded in turn and stresses ECMP rebalancing.
  kTornado,
  /// All-to-all: every epoch each host sends one flow to every other host —
  /// the shuffle-heavy worst case (n·(n-1) flows per epoch).
  kAllToAll,
  /// A fixed random permutation (seeded, bijective, fixpoint-free for
  /// n > 1): host i sends Poisson-timed flows to perm[i] for the whole run —
  /// persistent pairwise load with no spatial churn.
  kPermutation,
};

/// Static display name ("poisson", "incast", ...), for reports and CSVs.
const char* pattern_name(Pattern p);

/// All five patterns, in declaration order (campaign sweeps iterate this).
const std::vector<Pattern>& all_patterns();

/// Flow-size distribution of one generated arrival.
enum class SizeDist {
  kFixed,        ///< Every flow carries exactly `mean_bytes`.
  kExponential,  ///< Exponential with mean `mean_bytes` (light tail).
  /// Bounded Pareto with shape `pareto_shape` and mean `mean_bytes`,
  /// truncated at `max_bytes` — the heavy tail that makes p99/p999 FCT
  /// tables mean something.
  kPareto,
};

/// One generated transfer: at time `at`, `bytes` are posted from host index
/// `src` to host index `dst` (indices into the host list handed to the
/// driver, not NodeIds — a config stays topology-agnostic).
struct FlowArrival {
  sim::SimTime at = 0;
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::int64_t bytes = 0;

  bool operator==(const FlowArrival&) const = default;
};

/// Seeded description of one traffic-matrix stream. A pure value: two
/// configs with equal fields always expand to identical arrival vectors, on
/// any thread — all randomness is drawn from splitmix64-derived streams of
/// `seed`, never from shared state (the determinism contract campaign runs
/// rely on, mirroring the per-link fault streams and flow-hash ECMP).
struct TrafficConfig {
  Pattern pattern = Pattern::kPoisson;
  SizeDist size_dist = SizeDist::kFixed;

  /// Mean flow size (exact size for kFixed).
  std::int64_t mean_bytes = 100'000;
  /// Pareto shape (tail index); must be > 1 so the mean exists. 1.05–1.3 is
  /// the web-search/data-mining range.
  double pareto_shape = 1.3;
  /// Truncation of the Pareto tail (0 = 1000x the mean).
  std::int64_t max_bytes = 0;

  /// kPoisson / kPermutation: mean arrival rate over the whole fabric.
  double flows_per_second = 100.0;

  /// kIncast / kTornado / kAllToAll: one synchronized round per epoch.
  sim::SimTime epoch = sim::milliseconds(100);

  /// kIncast: senders per burst (capped at n_hosts - 1). 0 = every other
  /// host.
  int incast_fanin = 0;
  /// kIncast: aggregator host index; -1 rotates the victim each epoch.
  int incast_victim = -1;

  /// Generation window: arrivals land in [start, stop).
  sim::SimTime start = 0;
  sim::SimTime stop = sim::seconds(1);

  std::uint64_t seed = 1;
};

/// Expands a config into its full arrival list over `n_hosts` hosts, sorted
/// by (time, generation order). Pure function of (config, n_hosts): campaign
/// bodies call this inside the run with a per-run seed, so serial and
/// MLTCP_THREADS=N executions see byte-identical traffic.
std::vector<FlowArrival> generate_arrivals(const TrafficConfig& cfg,
                                           int n_hosts);

}  // namespace mltcp::traffic
