#pragma once

#include "tcp/cong_control.hpp"

namespace mltcp::tcp {

struct RenoConfig {
  double initial_cwnd = 10.0;
  double initial_ssthresh = 1e9;  ///< Effectively "infinite" at start.
  double min_cwnd = 2.0;
};

/// TCP Reno: slow start + additive-increase/multiplicative-decrease
/// congestion avoidance with cumulative-ACK byte counting. The additive
/// increase is `gain * num_acked / cwnd` (Eq. 1 of the paper); standard Reno
/// is the special case gain == 1.
class RenoCC : public CongestionControl {
 public:
  explicit RenoCC(RenoConfig cfg = {}, std::shared_ptr<WindowGain> gain = {});

  void on_ack(const AckContext& ctx) override;
  void on_loss(sim::SimTime now) override;
  void on_timeout(sim::SimTime now) override;
  void on_idle_restart(sim::SimTime now) override;

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  std::string name() const override;

  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 protected:
  RenoConfig cfg_;
  double cwnd_;
  double ssthresh_;
};

}  // namespace mltcp::tcp
