#include "tcp/flow.hpp"

namespace mltcp::tcp {

TcpFlow::TcpFlow(sim::Simulator& simulator, net::Host& src, net::Host& dst,
                 net::FlowId flow, std::unique_ptr<CongestionControl> cc,
                 SenderConfig sender_cfg, ReceiverConfig receiver_cfg)
    : src_(src), dst_(dst), flow_(flow) {
  sender_ = std::make_unique<TcpSender>(simulator, src, dst.id(), flow,
                                        std::move(cc), sender_cfg);
  receiver_ = std::make_unique<TcpReceiver>(simulator, dst, src.id(), flow,
                                            receiver_cfg);
  src_handle_ = src_.register_flow(flow, [this](const net::Packet& p) {
    sender_->on_packet(p);
  });
  dst_handle_ = dst_.register_flow(flow, [this](const net::Packet& p) {
    receiver_->on_packet(p);
  });
}

TcpFlow::~TcpFlow() {
  // Generation-checked: if the id was reused after this flow was replaced,
  // the stale handles leave the new registration untouched.
  src_.unregister_flow(src_handle_);
  dst_.unregister_flow(dst_handle_);
}

}  // namespace mltcp::tcp
