#include "tcp/reno.hpp"

#include <algorithm>

namespace mltcp::tcp {

RenoCC::RenoCC(RenoConfig cfg, std::shared_ptr<WindowGain> gain)
    : CongestionControl(std::move(gain)),
      cfg_(cfg),
      cwnd_(cfg.initial_cwnd),
      ssthresh_(cfg.initial_ssthresh) {}

void RenoCC::on_ack(const AckContext& ctx) {
  gain_->on_ack(ctx);
  if (ctx.num_acked <= 0) return;
  if (in_slow_start()) {
    // Slow start doubles per RTT regardless of the aggressiveness function:
    // MLTCP (Alg. 1) scales only the congestion-avoidance increment.
    cwnd_ += ctx.window_acked();
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;  // do not overshoot into CA
    return;
  }
  cwnd_ += gain_->gain() * static_cast<double>(ctx.window_acked()) / cwnd_;
}

void RenoCC::on_loss(sim::SimTime /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, cfg_.min_cwnd);
  cwnd_ = ssthresh_;
}

void RenoCC::on_timeout(sim::SimTime /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, cfg_.min_cwnd);
  cwnd_ = 1.0;
}

void RenoCC::on_idle_restart(sim::SimTime /*now*/) {
  cwnd_ = cfg_.initial_cwnd;
}

std::string RenoCC::name() const {
  return gain_->name() == "unit" ? "reno" : "mltcp-reno[" + gain_->name() + "]";
}

}  // namespace mltcp::tcp
