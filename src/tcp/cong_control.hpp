#pragma once

#include <functional>
#include <memory>
#include <string>

#include "sim/time.hpp"

namespace mltcp::sim {
class Simulator;
}

namespace mltcp::tcp {

/// Everything a congestion controller may want to know about one
/// acknowledgement that advanced the window.
struct AckContext {
  sim::SimTime now = 0;
  /// Segments newly acknowledged by this ACK (the paper's `#num_acks`).
  int num_acked = 0;
  /// Cumulative acknowledgement (next expected segment).
  std::int64_t ack_seq = 0;
  /// ECN Echo flag carried by the ACK.
  bool ece = false;
  /// RTT sample from the timestamp option, or -1 when unusable (Karn).
  sim::SimTime rtt_sample = -1;
  /// Segments eligible for *window growth*; -1 means "same as num_acked".
  /// The sender bounds this on the ACK that exits fast recovery: that
  /// cumulative ACK spans the whole recovery episode, and crediting every
  /// segment of it to congestion avoidance inflates cwnd far beyond what a
  /// single ACK event may add (RFC 6582 exits with cwnd ~= ssthresh).
  /// Byte accounting (MLTCP's tracker) always uses num_acked.
  int ca_acked = -1;
  /// Segments still in flight after this ACK advanced snd_una. Rate-based
  /// controllers need it: BBR exits DRAIN once inflight falls to the BDP and
  /// sizes its round-trip accounting by the outstanding data.
  std::int64_t inflight = 0;

  /// What controllers feed their window arithmetic.
  int window_acked() const { return ca_acked >= 0 ? ca_acked : num_acked; }
};

/// Hook that scales the congestion-avoidance window increase. This is the
/// seam MLTCP plugs into: the base controllers multiply their additive
/// increase by gain(). The default is the neutral gain of standard TCP.
class WindowGain {
 public:
  virtual ~WindowGain() = default;

  /// Observes every in-sequence acknowledgement (MLTCP's byte accounting).
  virtual void on_ack(const AckContext& /*ctx*/) {}

  /// Multiplier applied to the congestion-avoidance increase step.
  virtual double gain() const { return 1.0; }

  virtual std::string name() const { return "unit"; }

  /// Called by the owning TcpSender so gain implementations can emit
  /// telemetry under the flow's identity (MLTCP traces bytes_ratio
  /// milestones and iteration boundaries). Default: no telemetry.
  virtual void bind_telemetry(sim::Simulator* /*sim*/,
                              std::int64_t /*flow_id*/) {}
};

/// Window-based congestion control. The controller owns cwnd and ssthresh;
/// the sender asks for cwnd() when deciding whether to transmit.
///
/// All window arithmetic is in segments (a double, so sub-segment additive
/// increases accumulate exactly as in the kernel's fixed-point code).
class CongestionControl {
 public:
  explicit CongestionControl(std::shared_ptr<WindowGain> gain)
      : gain_(gain != nullptr ? std::move(gain)
                              : std::make_shared<WindowGain>()) {}
  virtual ~CongestionControl() = default;

  CongestionControl(const CongestionControl&) = delete;
  CongestionControl& operator=(const CongestionControl&) = delete;

  /// Called for every ACK that acknowledged new data.
  virtual void on_ack(const AckContext& ctx) = 0;

  /// Called once per loss event (third duplicate ACK / fast retransmit).
  virtual void on_loss(sim::SimTime now) = 0;

  /// Called when the retransmission timer fires.
  virtual void on_timeout(sim::SimTime now) = 0;

  /// Called when the connection restarts after an application-limited idle
  /// period (RFC 2861 congestion window validation — Linux's
  /// tcp_slow_start_after_idle). Controllers typically reset cwnd to its
  /// initial value while keeping ssthresh.
  virtual void on_idle_restart(sim::SimTime /*now*/) {}

  virtual double cwnd() const = 0;
  virtual double ssthresh() const = 0;
  virtual std::string name() const = 0;

  /// Rate-based controllers (BBR, Gemini) drive the sender's pace timer
  /// directly: the release rate in *segments per second*, or 0 when the
  /// controller is purely window-based. When positive, the sender paces one
  /// segment every 1/rate seconds regardless of SenderConfig::pacing (cwnd
  /// stays the inflight cap); when 0 the sender falls back to cwnd/srtt
  /// pacing if configured, else ACK clocking.
  virtual double pacing_rate() const { return 0.0; }

  /// Whether data packets should be sent ECN-capable (DCTCP).
  virtual bool wants_ecn() const { return false; }

  WindowGain& window_gain() { return *gain_; }
  const WindowGain& window_gain() const { return *gain_; }

 protected:
  std::shared_ptr<WindowGain> gain_;
};

/// Factory so experiment harnesses can stamp out one controller per flow.
using CcFactory = std::function<std::unique_ptr<CongestionControl>()>;

}  // namespace mltcp::tcp
