#include "tcp/rtt_estimator.hpp"

#include <algorithm>

namespace mltcp::tcp {

RttEstimator::RttEstimator(sim::SimTime min_rto, sim::SimTime max_rto)
    : min_rto_(min_rto), max_rto_(max_rto) {}

void RttEstimator::add_sample(sim::SimTime rtt) {
  if (rtt < 0) return;
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
    return;
  }
  // RFC 6298: alpha = 1/8, beta = 1/4.
  const sim::SimTime err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
  rttvar_ = rttvar_ + (err - rttvar_) / 4;
  srtt_ = srtt_ + (rtt - srtt_) / 8;
}

sim::SimTime RttEstimator::rto() const {
  sim::SimTime base = has_sample_ ? srtt_ + 4 * rttvar_ : sim::seconds(1);
  base = std::max(base, min_rto_);
  // Exponential backoff, saturating at max_rto_.
  for (int i = 0; i < backoff_shift_ && base < max_rto_; ++i) base *= 2;
  return std::min(base, max_rto_);
}

void RttEstimator::backoff() {
  if (backoff_shift_ < 16) ++backoff_shift_;
}

}  // namespace mltcp::tcp
