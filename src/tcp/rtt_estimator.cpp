#include "tcp/rtt_estimator.hpp"

#include <algorithm>

namespace mltcp::tcp {

RttEstimator::RttEstimator(sim::SimTime min_rto, sim::SimTime max_rto)
    : min_rto_(min_rto), max_rto_(max_rto) {}

void RttEstimator::add_sample(sim::SimTime rtt) {
  if (rtt < 0) return;
  // RFC 6298 §5.7: a fresh measurement collapses the exponential backoff —
  // the path produced an unambiguous sample, so the inflated RTO no longer
  // reflects reality.
  backoff_shift_ = 0;
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = std::max<sim::SimTime>(rtt / 2, 1);
    has_sample_ = true;
    return;
  }
  // RFC 6298: alpha = 1/8, beta = 1/4. rttvar is floored at one clock tick:
  // the integer EWMA otherwise decays to 0 on a steady path and the RTO
  // degenerates to srtt itself, firing on the slightest jitter.
  const sim::SimTime err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
  rttvar_ = std::max<sim::SimTime>(rttvar_ + (err - rttvar_) / 4, 1);
  srtt_ = srtt_ + (rtt - srtt_) / 8;
}

sim::SimTime RttEstimator::rto() const {
  sim::SimTime base = has_sample_ ? srtt_ + 4 * rttvar_ : sim::seconds(1);
  base = std::max(base, min_rto_);
  // Exponential backoff, saturating at max_rto_.
  for (int i = 0; i < backoff_shift_ && base < max_rto_; ++i) base *= 2;
  return std::min(base, max_rto_);
}

void RttEstimator::backoff() {
  if (backoff_shift_ < 16) ++backoff_shift_;
}

}  // namespace mltcp::tcp
