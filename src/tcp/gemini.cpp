#include "tcp/gemini.hpp"

#include <algorithm>

namespace mltcp::tcp {

GeminiCC::GeminiCC(GeminiConfig cfg, std::shared_ptr<WindowGain> gain)
    : CongestionControl(std::move(gain)),
      cfg_(cfg),
      cwnd_(cfg.initial_cwnd),
      ssthresh_(cfg.initial_ssthresh),
      window_end_seq_(static_cast<std::int64_t>(cfg.initial_cwnd)) {}

double GeminiCC::h() const {
  if (srtt_ <= 0 || cfg_.rtt_ref <= 0) return 1.0;
  const double ratio = static_cast<double>(srtt_) /
                       static_cast<double>(cfg_.rtt_ref);
  return std::clamp(ratio, 1.0, cfg_.h_cap);
}

double GeminiCC::pacing_rate() const {
  // Smooth release at cwnd per srtt: the inter-DC segment's deep buffers
  // punish ACK-clocked bursts with delay the loop then has to cut.
  if (srtt_ <= 0) return 0.0;
  return cwnd_ / sim::to_seconds(srtt_);
}

void GeminiCC::end_of_window(const AckContext& ctx) {
  double cut = 0.0;
  if (acked_in_window_ > 0) {
    const double frac = static_cast<double>(marked_in_window_) /
                        static_cast<double>(acked_in_window_);
    alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g * frac;
    // Intra-DC loop: DCTCP's proportional cut.
    if (marked_in_window_ > 0) cut = alpha_ / 2.0;
  }
  // Inter-DC loop: queueing delay beyond the threshold cuts proportionally
  // to the excess, capped at delay_beta. The two loops fuse by applying the
  // stronger signal once per window.
  if (min_rtt_ > 0 && last_rtt_ > min_rtt_ + cfg_.delay_threshold) {
    const double excess =
        static_cast<double>(last_rtt_ - min_rtt_ - cfg_.delay_threshold) /
        static_cast<double>(cfg_.delay_threshold);
    cut = std::max(cut, cfg_.delay_beta * std::min(1.0, excess));
  }
  if (cut > 0.0) {
    cwnd_ = std::max(cwnd_ * (1.0 - cut), cfg_.min_cwnd);
    ssthresh_ = cwnd_;
    last_decrease_ = ctx.now;
  }
  acked_in_window_ = 0;
  marked_in_window_ = 0;
  window_end_seq_ = ctx.ack_seq + static_cast<std::int64_t>(cwnd_) + 1;
}

void GeminiCC::on_ack(const AckContext& ctx) {
  gain_->on_ack(ctx);
  if (ctx.num_acked <= 0) return;

  if (ctx.rtt_sample > 0) {
    last_rtt_ = ctx.rtt_sample;
    if (min_rtt_ <= 0 || ctx.rtt_sample < min_rtt_) min_rtt_ = ctx.rtt_sample;
    srtt_ = srtt_ <= 0 ? ctx.rtt_sample
                       : srtt_ + (ctx.rtt_sample - srtt_) / 8;
  }

  acked_in_window_ += ctx.num_acked;
  if (ctx.ece) marked_in_window_ += ctx.num_acked;
  if (ctx.ack_seq >= window_end_seq_) end_of_window(ctx);

  if (in_slow_start()) {
    // Slow start doubles per RTT regardless of the aggressiveness function:
    // MLTCP (Alg. 1) scales only the congestion-avoidance increment.
    cwnd_ += ctx.window_acked();
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    return;
  }
  cwnd_ += gain_->gain() * h() *
           static_cast<double>(ctx.window_acked()) / cwnd_;
}

void GeminiCC::on_loss(sim::SimTime now) {
  // At most one loss-triggered halving per RTT: dupACK trains from a single
  // drop burst must not stack decreases on top of a window-end cut.
  if (last_decrease_ >= 0 && srtt_ > 0 && now - last_decrease_ < srtt_) return;
  ssthresh_ = std::max(cwnd_ / 2.0, cfg_.min_cwnd);
  cwnd_ = ssthresh_;
  last_decrease_ = now;
}

void GeminiCC::on_timeout(sim::SimTime now) {
  ssthresh_ = std::max(cwnd_ / 2.0, cfg_.min_cwnd);
  cwnd_ = cfg_.min_cwnd;
  last_decrease_ = now;
}

void GeminiCC::on_idle_restart(sim::SimTime /*now*/) {
  cwnd_ = cfg_.initial_cwnd;
}

std::string GeminiCC::name() const {
  return gain_->name() == "unit" ? "gemini"
                                 : "mltcp-gemini[" + gain_->name() + "]";
}

}  // namespace mltcp::tcp
