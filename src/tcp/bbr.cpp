#include "tcp/bbr.hpp"

#include <algorithm>

namespace mltcp::tcp {

BbrCC::BbrCC(BbrConfig cfg, std::shared_ptr<WindowGain> gain)
    : CongestionControl(std::move(gain)), cfg_(cfg) {}

double BbrCC::bdp() const {
  if (btl_bw_ <= 0.0 || min_rtt_ <= 0) return 0.0;
  return btl_bw_ * sim::to_seconds(min_rtt_);
}

double BbrCC::cwnd() const {
  if (state_ == State::kProbeRtt) return cfg_.min_cwnd;
  const double b = bdp();
  if (b <= 0.0) return cfg_.initial_cwnd;
  if (state_ == State::kStartup) return std::max(cfg_.startup_gain * b, cfg_.min_cwnd);
  // The MLTCP seam, part 1: the inflight cap scales with F(bytes_ratio).
  // When the bottleneck is oversubscribed every flow is window-limited, the
  // queue shares capacity by inflight, and this cap is what decides the
  // flow's share — scaling only the probe gain would be invisible exactly
  // when contention is worst. Deliberately NOT floored at one BDP: early in
  // an iteration (F < 0.5 with the default gains) the cap dips below the
  // BDP, throttling the flow below its own estimate — that self-choke IS
  // the yield that lets a nearly-finished competitor monopolize the link.
  // It is graduated, not a trap: the throttled flow still delivers, its
  // bytes_ratio climbs, and past ~20% of the iteration the cap re-opens
  // probing headroom. (Flooring the factor at 1 was tried and starves:
  // probing needs inflight room beyond one BDP to ever raise the estimate.)
  return std::max(cfg_.cwnd_gain * gain_->gain() * b, cfg_.min_cwnd);
}

double BbrCC::current_pacing_gain() const {
  switch (state_) {
    case State::kStartup:
      return cfg_.startup_gain;
    case State::kDrain:
      return 1.0 / cfg_.startup_gain;
    case State::kProbeRtt:
      return 1.0;
    case State::kProbeBw:
      // The MLTCP seam, part 2: probing aggressiveness scales with
      // F(bytes_ratio), exactly where window-based variants scale their
      // additive increase.
      if (phase_ == 0) return 1.0 + (cfg_.probe_bw_up - 1.0) * gain_->gain();
      if (phase_ == 1) return cfg_.probe_bw_down;
      return 1.0;
  }
  return 1.0;
}

double BbrCC::pacing_rate() const {
  // No bandwidth estimate yet (first round of STARTUP): ACK-clocked.
  if (btl_bw_ <= 0.0) return 0.0;
  return current_pacing_gain() * btl_bw_;
}

bool BbrCC::update_round(const AckContext& ctx) {
  if (round_start_time_ < 0) {
    // First ACK ever: open the first round, no sample yet.
    round_start_time_ = ctx.now;
    round_start_delivered_ = delivered_;
    round_end_seq_ = ctx.ack_seq + std::max<std::int64_t>(ctx.inflight, 1);
    return false;
  }
  if (ctx.ack_seq < round_end_seq_) return false;
  // Everything in flight at the round start has been delivered: one
  // packet-timed round trip. Its delivery rate is a bandwidth sample —
  // unless the round closed faster than the propagation delay, which no
  // real delivery can do: that is a recovery artifact (a cumulative ACK
  // jumping a retransmitted hole) and would alias into an estimate orders
  // of magnitude above the link rate, so it is discarded.
  const sim::SimTime elapsed_time = ctx.now - round_start_time_;
  if (elapsed_time > 0 && (min_rtt_ <= 0 || elapsed_time >= min_rtt_)) {
    const double elapsed = sim::to_seconds(elapsed_time);
    const double sample =
        static_cast<double>(delivered_ - round_start_delivered_) / elapsed;
    update_bw_filter(sample);
  }
  ++round_count_;
  round_start_time_ = ctx.now;
  round_start_delivered_ = delivered_;
  round_end_seq_ = ctx.ack_seq + std::max<std::int64_t>(ctx.inflight, 1);
  return true;
}

void BbrCC::update_bw_filter(double sample) {
  // Monotonic max queue over the last bw_filter_rounds rounds: drop expired
  // heads, drop dominated tails, append, read the head as the max.
  int head = 0;
  while (head < bw_filter_size_ &&
         bw_filter_[static_cast<std::size_t>(head)].round <=
             round_count_ - cfg_.bw_filter_rounds) {
    ++head;
  }
  if (head > 0) {
    for (int i = head; i < bw_filter_size_; ++i) {
      bw_filter_[static_cast<std::size_t>(i - head)] =
          bw_filter_[static_cast<std::size_t>(i)];
    }
    bw_filter_size_ -= head;
  }
  while (bw_filter_size_ > 0 &&
         bw_filter_[static_cast<std::size_t>(bw_filter_size_ - 1)].bw <=
             sample) {
    --bw_filter_size_;
  }
  if (bw_filter_size_ < static_cast<int>(bw_filter_.size())) {
    bw_filter_[static_cast<std::size_t>(bw_filter_size_++)] =
        BwSample{round_count_, sample};
  }
  btl_bw_ = bw_filter_[0].bw;
}

void BbrCC::update_min_rtt(const AckContext& ctx) {
  if (ctx.rtt_sample > 0) {
    if (min_rtt_ <= 0 || ctx.rtt_sample <= min_rtt_) {
      min_rtt_ = ctx.rtt_sample;
      min_rtt_stamp_ = ctx.now;
    }
    // While PROBE_RTT drains the queue, remember the *lowest* sample seen —
    // the estimate is refreshed from it at exit. Accepting any sample here
    // instead would let competitors' queueing inflate min_rtt, and an
    // inflated min_rtt feeds back: bigger BDP -> bigger inflight cap ->
    // deeper queue -> even higher samples at the next refresh.
    if (state_ == State::kProbeRtt &&
        (probe_rtt_min_ <= 0 || ctx.rtt_sample < probe_rtt_min_)) {
      probe_rtt_min_ = ctx.rtt_sample;
    }
  }
  if (state_ != State::kProbeRtt && min_rtt_stamp_ >= 0 &&
      ctx.now - min_rtt_stamp_ > cfg_.min_rtt_window) {
    state_ = State::kProbeRtt;
    probe_rtt_start_ = ctx.now;
    probe_rtt_min_ = -1;
  }
}

void BbrCC::check_full_pipe() {
  if (filled_pipe_) return;
  if (btl_bw_ >= full_bw_ * cfg_.startup_growth_target) {
    full_bw_ = btl_bw_;
    full_bw_rounds_ = 0;
    return;
  }
  if (++full_bw_rounds_ >= cfg_.startup_full_bw_rounds) filled_pipe_ = true;
}

void BbrCC::enter_probe_bw() {
  state_ = State::kProbeBw;
  // Deterministic cycle start on a cruise phase (Linux randomizes to avoid
  // fleet synchronization; the simulator needs reproducibility instead).
  phase_ = 2;
}

void BbrCC::on_ack(const AckContext& ctx) {
  gain_->on_ack(ctx);
  if (ctx.num_acked <= 0) return;
  delivered_ += ctx.num_acked;

  const bool round_start = update_round(ctx);
  update_min_rtt(ctx);

  switch (state_) {
    case State::kStartup:
      if (round_start) {
        check_full_pipe();
        if (filled_pipe_) state_ = State::kDrain;
      }
      break;
    case State::kDrain:
      if (static_cast<double>(ctx.inflight) <= bdp()) enter_probe_bw();
      break;
    case State::kProbeBw:
      // One cycle phase per packet-timed round.
      if (round_start) phase_ = (phase_ + 1) % 8;
      break;
    case State::kProbeRtt:
      if (probe_rtt_start_ >= 0 &&
          ctx.now - probe_rtt_start_ >= cfg_.probe_rtt_duration) {
        // Refresh from the drained-queue observation; keep the old estimate
        // if the probe saw no samples at all.
        if (probe_rtt_min_ > 0) min_rtt_ = probe_rtt_min_;
        min_rtt_stamp_ = ctx.now;
        probe_rtt_start_ = -1;
        if (filled_pipe_) {
          enter_probe_bw();
        } else {
          state_ = State::kStartup;
        }
      }
      break;
  }
}

void BbrCC::on_loss(sim::SimTime /*now*/) {
  // BBR's congestion response lives in the model, not in loss events: the
  // sender's fast-recovery machinery retransmits, the bandwidth filter
  // adapts as delivery-rate samples shrink. (BBRv1 packet-conservation
  // during recovery is an inflight cap the cwnd_gain headroom subsumes at
  // this fidelity.)
}

void BbrCC::on_timeout(sim::SimTime /*now*/) {
  // An RTO means the model lost touch with the path (blackout, route
  // change): discard the bandwidth filter — its samples describe the old
  // path — and restart discovery. min_rtt survives; it can only have been
  // underestimated, never inflated, by the outage.
  bw_filter_size_ = 0;
  btl_bw_ = 0.0;
  full_bw_ = 0.0;
  full_bw_rounds_ = 0;
  filled_pipe_ = false;
  round_start_time_ = -1;
  state_ = State::kStartup;
  phase_ = 0;
}

void BbrCC::on_idle_restart(sim::SimTime /*now*/) {
  // The estimates stay valid across an application-limited pause; pacing
  // from the old btl_bw restarts the flow at its fair share without a
  // slow-start burst. Nothing to reset.
}

std::string BbrCC::name() const {
  return gain_->name() == "unit" ? "bbr" : "mltcp-bbr[" + gain_->name() + "]";
}

}  // namespace mltcp::tcp
