#pragma once

#include <memory>

#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender.hpp"

namespace mltcp::tcp {

/// One unidirectional TCP connection between two hosts: wires a TcpSender at
/// the source and a TcpReceiver at the destination and registers both with
/// their hosts' flow demultiplexers. Destroying the flow unregisters it.
class TcpFlow {
 public:
  TcpFlow(sim::Simulator& simulator, net::Host& src, net::Host& dst,
          net::FlowId flow, std::unique_ptr<CongestionControl> cc,
          SenderConfig sender_cfg = {}, ReceiverConfig receiver_cfg = {});
  ~TcpFlow();

  TcpFlow(const TcpFlow&) = delete;
  TcpFlow& operator=(const TcpFlow&) = delete;

  /// See TcpSender::send_message.
  void send_message(std::int64_t bytes,
                    TcpSender::CompletionCallback on_complete) {
    sender_->send_message(bytes, std::move(on_complete));
  }

  TcpSender& sender() { return *sender_; }
  const TcpSender& sender() const { return *sender_; }
  TcpReceiver& receiver() { return *receiver_; }
  const TcpReceiver& receiver() const { return *receiver_; }
  net::FlowId id() const { return flow_; }

 private:
  net::Host& src_;
  net::Host& dst_;
  net::FlowId flow_;
  net::Host::FlowHandle src_handle_;
  net::Host::FlowHandle dst_handle_;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
};

}  // namespace mltcp::tcp
