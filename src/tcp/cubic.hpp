#pragma once

#include "tcp/cong_control.hpp"

namespace mltcp::tcp {

struct CubicConfig {
  double initial_cwnd = 10.0;
  double initial_ssthresh = 1e9;
  double min_cwnd = 2.0;
  double c = 0.4;     ///< Cubic scaling constant.
  double beta = 0.7;  ///< Multiplicative-decrease factor.
};

/// TCP CUBIC (Ha, Rhee, Xu 2008): the window grows along a cubic curve
/// anchored at the window size of the last loss. The per-ACK growth step is
/// scaled by the WindowGain, which is how MLTCP-CUBIC is obtained (§6 of the
/// paper: "other congestion control schemes are augmented in a similar way").
class CubicCC : public CongestionControl {
 public:
  explicit CubicCC(CubicConfig cfg = {},
                   std::shared_ptr<WindowGain> gain = {});

  void on_ack(const AckContext& ctx) override;
  void on_loss(sim::SimTime now) override;
  void on_timeout(sim::SimTime now) override;
  void on_idle_restart(sim::SimTime now) override;

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  std::string name() const override;

  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  double w_max() const { return w_max_; }

 private:
  /// Target window of the cubic curve at time `t` after the last loss.
  double cubic_window(double t_seconds) const;
  void reset_epoch(sim::SimTime now);

  CubicConfig cfg_;
  double cwnd_;
  double ssthresh_;
  double w_max_ = 0.0;
  double k_ = 0.0;  ///< Time (s) for the curve to return to w_max_.
  sim::SimTime epoch_start_ = -1;
  sim::SimTime last_rtt_ = sim::microseconds(100);
};

}  // namespace mltcp::tcp
