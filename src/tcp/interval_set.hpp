#pragma once

#include <cstdint>
#include <map>

namespace mltcp::tcp {

/// Set of segment sequence numbers stored as disjoint half-open intervals
/// [start, end). This is the SACK-scoreboard representation: a window's
/// worth of SACKed segments collapses to a handful of intervals, so every
/// operation is O(log k) in the number of holes instead of O(window) in
/// segments — the difference between per-ACK work that is constant and work
/// that rescans the whole window (the old std::set-of-seqs bookkeeping).
class IntervalSet {
 public:
  /// Adds [start, end), merging with any overlapping or adjacent intervals.
  void insert(std::int64_t start, std::int64_t end) {
    if (start >= end) return;
    // First interval whose start is > `start`; the one before it (if any)
    // may swallow or touch the new range.
    auto next = m_.upper_bound(start);
    if (next != m_.begin()) {
      auto prev = std::prev(next);
      if (prev->second >= start) {  // overlaps or abuts on the left
        if (prev->second >= end) return;
        start = prev->first;
        end = std::max(end, prev->second);
        next = m_.erase(prev);
      }
    }
    while (next != m_.end() && next->first <= end) {  // swallow to the right
      end = std::max(end, next->second);
      next = m_.erase(next);
    }
    m_.emplace(start, end);
  }

  /// Removes [start, end) from the set, splitting intervals as needed.
  void erase(std::int64_t start, std::int64_t end) {
    if (start >= end) return;
    auto it = m_.upper_bound(start);
    if (it != m_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > start) {
        const std::int64_t prev_end = prev->second;
        prev->second = start;  // keep the left remainder
        if (prev->second == prev->first) m_.erase(prev);
        if (prev_end > end) {  // the erased range was strictly inside
          m_.emplace(end, prev_end);
          return;
        }
      }
    }
    it = m_.lower_bound(start);
    while (it != m_.end() && it->first < end) {
      if (it->second > end) {  // keep the right remainder
        m_.emplace(end, it->second);
        m_.erase(it);
        return;
      }
      it = m_.erase(it);
    }
  }

  /// Drops all coverage below `bound` (cumulative-ACK pruning).
  void erase_below(std::int64_t bound) {
    auto it = m_.begin();
    while (it != m_.end() && it->second <= bound) it = m_.erase(it);
    if (it != m_.end() && it->first < bound) {
      const std::int64_t end = it->second;
      m_.erase(it);
      m_.emplace(bound, end);
    }
  }

  bool contains(std::int64_t s) const {
    auto it = m_.upper_bound(s);
    if (it == m_.begin()) return false;
    return std::prev(it)->second > s;
  }

  /// True if any covered value lies in [start, end).
  bool overlaps(std::int64_t start, std::int64_t end) const {
    if (start >= end) return false;
    auto it = m_.upper_bound(start);
    if (it != m_.begin() && std::prev(it)->second > start) return true;
    return it != m_.end() && it->first < end;
  }

  /// Lowest value in [from, to) that is NOT covered; `to` if all covered.
  std::int64_t first_missing(std::int64_t from, std::int64_t to) const {
    auto it = m_.upper_bound(from);
    if (it != m_.begin() && std::prev(it)->second > from) {
      from = std::prev(it)->second;  // `from` is covered; skip its interval
    }
    while (from < to && it != m_.end() && it->first == from) {
      from = it->second;
      ++it;
    }
    return from < to ? from : to;
  }

  /// One past the highest covered value; 0 when empty.
  std::int64_t upper_bound_value() const {
    return m_.empty() ? 0 : m_.rbegin()->second;
  }

  bool empty() const { return m_.empty(); }
  void clear() { m_.clear(); }
  std::size_t interval_count() const { return m_.size(); }

  /// Total number of covered sequence numbers.
  std::int64_t covered_count() const {
    std::int64_t n = 0;
    for (const auto& [s, e] : m_) n += e - s;
    return n;
  }

  /// Disjoint, sorted intervals for iteration.
  const std::map<std::int64_t, std::int64_t>& intervals() const { return m_; }

 private:
  std::map<std::int64_t, std::int64_t> m_;  ///< start -> end, disjoint.
};

}  // namespace mltcp::tcp
