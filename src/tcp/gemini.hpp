#pragma once

#include <cstdint>

#include "tcp/cong_control.hpp"

namespace mltcp::tcp {

struct GeminiConfig {
  double initial_cwnd = 10.0;
  double initial_ssthresh = 1e9;
  double min_cwnd = 2.0;
  /// EWMA gain for the ECN-marked fraction (the intra-DC loop's alpha).
  double g = 1.0 / 16.0;
  /// Queueing delay (RTT above the observed minimum) the inter-DC loop
  /// tolerates before it cuts the window.
  sim::SimTime delay_threshold = sim::milliseconds(1);
  /// Maximum per-window multiplicative decrease of the delay loop; the cut
  /// ramps linearly with the excess up to this fraction.
  double delay_beta = 0.2;
  /// Reference RTT of the intra-DC segment. The additive increase is scaled
  /// by min(srtt/rtt_ref, h_cap): a flow crossing the inter-DC link ramps
  /// proportionally faster, compensating the RTT disparity that otherwise
  /// starves long-haul flows sharing a bottleneck with short ones.
  sim::SimTime rtt_ref = sim::microseconds(300);
  double h_cap = 8.0;
};

/// Gemini-style dual-loop congestion control for cross-datacenter paths
/// (Zeng et al., ICNP'19), simplified: a DCTCP-like ECN loop handles the
/// shallow-buffered intra-DC segment while a delay loop watches the
/// deep-buffered inter-DC segment; each observation window applies the
/// stronger of the two signals as a single multiplicative decrease. The
/// additive increase is RTT-compensated (longer paths ramp faster) and the
/// sender paces at cwnd/srtt.
///
/// MLTCP augmentation routes F(bytes_ratio) into the additive-increase term
/// — the same seam as Reno's AI slope — so the per-window growth step is
/// gain * h * acked / cwnd.
class GeminiCC : public CongestionControl {
 public:
  explicit GeminiCC(GeminiConfig cfg = {},
                    std::shared_ptr<WindowGain> gain = {});

  void on_ack(const AckContext& ctx) override;
  void on_loss(sim::SimTime now) override;
  void on_timeout(sim::SimTime now) override;
  void on_idle_restart(sim::SimTime now) override;

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  double pacing_rate() const override;
  std::string name() const override;
  bool wants_ecn() const override { return true; }

  double alpha() const { return alpha_; }
  sim::SimTime min_rtt() const { return min_rtt_; }
  sim::SimTime srtt() const { return srtt_; }
  /// RTT-compensation factor currently applied to the additive increase.
  double h() const;
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  void end_of_window(const AckContext& ctx);

  GeminiConfig cfg_;
  double cwnd_;
  double ssthresh_;
  /// RFC 8257 §4.2 initialization (see DctcpCC): congestion met in the very
  /// first marked window cuts conservatively while the EWMA warms up.
  double alpha_ = 1.0;

  sim::SimTime min_rtt_ = 0;   ///< Base (propagation) RTT estimate.
  sim::SimTime srtt_ = 0;      ///< EWMA of RTT samples (alpha = 1/8).
  sim::SimTime last_rtt_ = 0;  ///< Most recent sample (delay-loop signal).
  sim::SimTime last_decrease_ = -1;

  // Per-window signal accounting (same scheme as DctcpCC: the first window
  // closes one initial cwnd of segments into the stream).
  std::int64_t window_end_seq_ = 0;
  std::int64_t acked_in_window_ = 0;
  std::int64_t marked_in_window_ = 0;
};

}  // namespace mltcp::tcp
