#include "tcp/swift.hpp"

#include <algorithm>

namespace mltcp::tcp {

SwiftCC::SwiftCC(SwiftConfig cfg, std::shared_ptr<WindowGain> gain)
    : CongestionControl(std::move(gain)), cfg_(cfg),
      cwnd_(cfg.initial_cwnd) {}

bool SwiftCC::can_decrease(sim::SimTime now) const {
  // At most one multiplicative decrease per observed delay interval,
  // approximated by the last delay sample.
  return last_decrease_ < 0 || now - last_decrease_ >= last_delay_;
}

void SwiftCC::on_ack(const AckContext& ctx) {
  gain_->on_ack(ctx);
  if (ctx.num_acked <= 0) return;
  if (ctx.rtt_sample > 0) last_delay_ = ctx.rtt_sample;

  if (last_delay_ <= cfg_.target_delay || last_delay_ == 0) {
    cwnd_ += gain_->gain() * static_cast<double>(ctx.window_acked()) / cwnd_;
    return;
  }
  if (can_decrease(ctx.now)) {
    const double excess =
        static_cast<double>(last_delay_ - cfg_.target_delay) /
        static_cast<double>(last_delay_);
    const double factor =
        std::max(1.0 - cfg_.beta * excess, cfg_.max_decrease_factor);
    cwnd_ = std::max(cwnd_ * factor, cfg_.min_cwnd);
    last_decrease_ = ctx.now;
  }
}

void SwiftCC::on_loss(sim::SimTime now) {
  if (!can_decrease(now)) return;
  cwnd_ = std::max(cwnd_ * cfg_.max_decrease_factor, cfg_.min_cwnd);
  last_decrease_ = now;
}

void SwiftCC::on_timeout(sim::SimTime now) {
  // An RTO is the strongest congestion signal Swift reacts to: collapse to
  // the configured floor, never below it. The collapse is itself a decrease,
  // so it must stamp last_decrease_ — otherwise a loss arriving within the
  // same delay interval decreases again on top of the collapse.
  cwnd_ = cfg_.min_cwnd;
  last_decrease_ = now;
}

void SwiftCC::on_idle_restart(sim::SimTime /*now*/) {
  cwnd_ = cfg_.initial_cwnd;
}

std::string SwiftCC::name() const {
  return gain_->name() == "unit" ? "swift"
                                 : "mltcp-swift[" + gain_->name() + "]";
}

}  // namespace mltcp::tcp
