#pragma once

#include "tcp/cong_control.hpp"

namespace mltcp::tcp {

struct DctcpConfig {
  double initial_cwnd = 10.0;
  double initial_ssthresh = 1e9;
  double min_cwnd = 2.0;
  double g = 1.0 / 16.0;  ///< EWMA gain for the marked fraction (alpha).
};

/// DCTCP (Alizadeh et al., SIGCOMM'10): Reno-style additive increase, but the
/// multiplicative decrease is proportional to the fraction of ECN-marked
/// packets in the last window (alpha). The additive increase is scaled by the
/// WindowGain, yielding MLTCP-DCTCP.
class DctcpCC : public CongestionControl {
 public:
  explicit DctcpCC(DctcpConfig cfg = {},
                   std::shared_ptr<WindowGain> gain = {});

  void on_ack(const AckContext& ctx) override;
  void on_loss(sim::SimTime now) override;
  void on_timeout(sim::SimTime now) override;
  void on_idle_restart(sim::SimTime now) override;

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return ssthresh_; }
  std::string name() const override;
  bool wants_ecn() const override { return true; }

  double alpha() const { return alpha_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  void end_of_window(std::int64_t ack_seq);

  DctcpConfig cfg_;
  double cwnd_;
  double ssthresh_;
  /// RFC 8257 §4.2: Alpha SHOULD be initialized to 1, so a connection that
  /// meets congestion in its very first marked window halves conservatively
  /// instead of barely reacting while the EWMA warms up from 0 — the regime
  /// short incast flows live in.
  double alpha_ = 1.0;

  // Per-window mark accounting. The first observation window ends one
  // initial-cwnd of segments into the stream (sequence numbers start at 0);
  // starting it at 0 would close it on the very first ACK, feeding a
  // single-ACK marked fraction into the EWMA.
  std::int64_t window_end_seq_ = 0;
  std::int64_t acked_in_window_ = 0;
  std::int64_t marked_in_window_ = 0;
};

}  // namespace mltcp::tcp
