#pragma once

#include "tcp/cong_control.hpp"

namespace mltcp::tcp {

struct SwiftConfig {
  double initial_cwnd = 10.0;
  double min_cwnd = 2.0;
  /// End-to-end delay target; above it the window decreases.
  sim::SimTime target_delay = sim::microseconds(300);
  double beta = 0.8;                ///< Decrease scaling vs delay excess.
  double max_decrease_factor = 0.5; ///< Per-RTT multiplicative-decrease cap.
};

/// Swift-style delay-based congestion control (Kumar et al., SIGCOMM'20),
/// simplified: additive increase while the RTT sample is under the target
/// delay, multiplicative decrease proportional to the delay excess (at most
/// once per RTT). The additive increase is scaled by the WindowGain, giving
/// MLTCP-Swift — the paper notes delay-based schemes can be augmented the
/// same way as Reno (§6).
class SwiftCC : public CongestionControl {
 public:
  explicit SwiftCC(SwiftConfig cfg = {},
                   std::shared_ptr<WindowGain> gain = {});

  void on_ack(const AckContext& ctx) override;
  void on_loss(sim::SimTime now) override;
  void on_timeout(sim::SimTime now) override;
  void on_idle_restart(sim::SimTime now) override;

  double cwnd() const override { return cwnd_; }
  double ssthresh() const override { return cwnd_; }
  std::string name() const override;

  sim::SimTime last_delay() const { return last_delay_; }

 private:
  bool can_decrease(sim::SimTime now) const;

  SwiftConfig cfg_;
  double cwnd_;
  sim::SimTime last_delay_ = 0;
  sim::SimTime last_decrease_ = -1;
};

}  // namespace mltcp::tcp
