#pragma once

#include "sim/time.hpp"

namespace mltcp::tcp {

/// RFC 6298 smoothed RTT estimation and retransmission-timeout computation,
/// with a datacenter-appropriate minimum RTO.
class RttEstimator {
 public:
  explicit RttEstimator(sim::SimTime min_rto = sim::milliseconds(1),
                        sim::SimTime max_rto = sim::seconds(60));

  /// Feeds one RTT measurement (from an un-retransmitted segment).
  void add_sample(sim::SimTime rtt);

  /// Current retransmission timeout, including exponential backoff.
  sim::SimTime rto() const;

  /// Doubles the timeout after a retransmission (Karn's algorithm).
  void backoff();

  /// Clears backoff once new data is acknowledged.
  void reset_backoff() { backoff_shift_ = 0; }

  bool has_sample() const { return has_sample_; }
  sim::SimTime srtt() const { return srtt_; }
  sim::SimTime rttvar() const { return rttvar_; }
  int backoff_shift() const { return backoff_shift_; }

 private:
  sim::SimTime min_rto_;
  sim::SimTime max_rto_;
  sim::SimTime srtt_ = 0;
  sim::SimTime rttvar_ = 0;
  bool has_sample_ = false;
  int backoff_shift_ = 0;
};

}  // namespace mltcp::tcp
