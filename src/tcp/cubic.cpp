#include "tcp/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace mltcp::tcp {

CubicCC::CubicCC(CubicConfig cfg, std::shared_ptr<WindowGain> gain)
    : CongestionControl(std::move(gain)),
      cfg_(cfg),
      cwnd_(cfg.initial_cwnd),
      ssthresh_(cfg.initial_ssthresh) {}

double CubicCC::cubic_window(double t_seconds) const {
  // MLTCP-CUBIC: the aggressiveness gain steepens the cubic curve itself
  // (multiplying C), so a flow late in its iteration reclaims and probes
  // for bandwidth faster — the CUBIC analogue of scaling Reno's additive
  // increase.
  const double dt = t_seconds - k_;
  return cfg_.c * gain_->gain() * dt * dt * dt + w_max_;
}

void CubicCC::reset_epoch(sim::SimTime now) {
  epoch_start_ = now;
  if (cwnd_ < w_max_) {
    k_ = std::cbrt((w_max_ - cwnd_) / cfg_.c);
  } else {
    k_ = 0.0;
    w_max_ = cwnd_;
  }
}

void CubicCC::on_ack(const AckContext& ctx) {
  gain_->on_ack(ctx);
  if (ctx.num_acked <= 0) return;
  if (ctx.rtt_sample > 0) last_rtt_ = ctx.rtt_sample;

  if (in_slow_start()) {
    cwnd_ += ctx.window_acked();
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    return;
  }
  if (epoch_start_ < 0) reset_epoch(ctx.now);

  // Growth toward the cubic target one RTT ahead, spread across the ACKs of
  // a window, then scaled by the MLTCP gain.
  const double t =
      sim::to_seconds(ctx.now - epoch_start_) + sim::to_seconds(last_rtt_);
  double target = cubic_window(t);
  // RFC 8312 TCP-friendly region: never grow slower than an AIMD flow with
  // the same beta would. Without this, large-BDP epochs crawl along the
  // flat center of the cubic curve. The AIMD slope carries the MLTCP gain,
  // exactly as Eq. 1 scales Reno's additive increase.
  const double rtt_s = std::max(sim::to_seconds(last_rtt_), 1e-6);
  const double w_est = w_max_ * cfg_.beta +
                       gain_->gain() * 3.0 * (1.0 - cfg_.beta) /
                           (1.0 + cfg_.beta) * (t / rtt_s);
  target = std::max(target, w_est);
  double increment = 0.0;
  if (target > cwnd_) {
    increment = (target - cwnd_) / cwnd_;
  } else {
    increment = 0.01 / cwnd_;  // slow drift, as in the kernel's min growth
  }
  cwnd_ += gain_->gain() * increment * static_cast<double>(ctx.window_acked());
}

void CubicCC::on_loss(sim::SimTime now) {
  w_max_ = cwnd_;
  // MLTCP-CUBIC: CUBIC's W_max memory makes flow shares insensitive to the
  // growth-rate gain alone, so the gain also modulates the multiplicative
  // decrease: beta_eff = beta^(1/gain). gain = 1 is stock CUBIC; a flow
  // late in its iteration (gain ~ 2) backs off less, one that just started
  // (gain ~ 0.25) backs off more — the same asymmetry Eq. 1 gives Reno.
  const double g = std::max(gain_->gain(), 0.05);
  const double beta_eff = std::pow(cfg_.beta, 1.0 / g);
  cwnd_ = std::max(cwnd_ * beta_eff, cfg_.min_cwnd);
  ssthresh_ = cwnd_;
  epoch_start_ = -1;
  k_ = std::cbrt(w_max_ * (1.0 - beta_eff) / cfg_.c);
  (void)now;
}

void CubicCC::on_timeout(sim::SimTime /*now*/) {
  w_max_ = cwnd_;
  ssthresh_ = std::max(cwnd_ * cfg_.beta, cfg_.min_cwnd);
  cwnd_ = 1.0;
  epoch_start_ = -1;
}

void CubicCC::on_idle_restart(sim::SimTime /*now*/) {
  cwnd_ = cfg_.initial_cwnd;
  epoch_start_ = -1;
}

std::string CubicCC::name() const {
  return gain_->name() == "unit" ? "cubic"
                                 : "mltcp-cubic[" + gain_->name() + "]";
}

}  // namespace mltcp::tcp
