#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "tcp/cong_control.hpp"
#include "tcp/interval_set.hpp"
#include "tcp/rtt_estimator.hpp"

namespace mltcp::tcp {

struct SenderConfig {
  std::int32_t mtu = net::kDefaultMtu;
  sim::SimTime min_rto = sim::milliseconds(1);
  /// Ceiling of the exponential RTO backoff. During a long blackout (link
  /// down, scenario fault) the sender keeps probing at most this far apart,
  /// so recovery latency after the path heals is bounded by max_rto instead
  /// of growing without limit.
  sim::SimTime max_rto = sim::seconds(60);
  /// When true, data packets carry their flow's remaining bytes as the
  /// pFabric priority.
  bool pfabric_priority = false;
  /// Cap on back-to-back packets released per send opportunity, bounding
  /// burstiness after a window jump.
  int max_burst = 256;
  /// RFC 2861 congestion-window validation: when a new message starts after
  /// the connection has been idle for longer than the RTO, reset the window
  /// to its initial value (Linux's tcp_slow_start_after_idle, default on).
  bool slow_start_after_idle = true;
  /// SACK-based loss recovery: use the receiver's SACK blocks to retransmit
  /// exactly the holes instead of NewReno's one-hole-per-RTT probing.
  /// Default off so the baseline matches the classic Reno the paper builds
  /// on; bench/ablations quantifies the difference.
  bool use_sack = false;
  /// Pace data packets at cwnd/srtt instead of releasing ACK-clocked bursts
  /// (Linux's sk_pacing). Smooths queues at the cost of extra timers.
  /// Default off, matching the classic stack the paper modifies.
  bool pacing = false;
};

/// Counters exposed for tests and experiment reports.
struct SenderStats {
  std::int64_t data_packets_sent = 0;
  std::int64_t retransmissions = 0;
  std::int64_t fast_retransmits = 0;
  std::int64_t timeouts = 0;
  std::int64_t messages_completed = 0;
  std::int64_t segments_acked = 0;
  /// RTT samples discarded because the ACK covered a retransmitted segment
  /// (Karn's algorithm: the echoed timestamp is ambiguous).
  std::int64_t rtt_samples_karn_skipped = 0;
};

/// TCP send side: sliding window over segment sequence numbers, duplicate-ACK
/// fast retransmit with NewReno-style partial-ACK recovery, and a
/// retransmission timer with exponential backoff. Window sizing is delegated
/// to the pluggable CongestionControl.
///
/// The application interface is message oriented: each send_message() call
/// appends `bytes` to the stream and fires its callback when every segment of
/// the message has been cumulatively acknowledged. A DNN job posts one
/// message per training iteration.
class TcpSender {
 public:
  using CompletionCallback = std::function<void(sim::SimTime)>;

  TcpSender(sim::Simulator& simulator, net::Host& local, net::NodeId dst,
            net::FlowId flow, std::unique_ptr<CongestionControl> cc,
            SenderConfig cfg = {});
  ~TcpSender();

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Appends a message of `bytes` to the stream. Messages complete in FIFO
  /// order; `on_complete` runs when the last segment is acknowledged.
  void send_message(std::int64_t bytes, CompletionCallback on_complete);

  /// Handles one incoming ACK packet.
  void on_packet(const net::Packet& pkt);

  /// Segments of payload a message of `bytes` occupies.
  std::int64_t segments_for_bytes(std::int64_t bytes) const;

  std::int32_t payload_per_segment() const {
    return cfg_.mtu - net::kHeaderBytes;
  }

  bool idle() const { return snd_una_ == send_limit_; }
  std::int64_t inflight() const { return next_seq_ - snd_una_; }
  std::int64_t snd_una() const { return snd_una_; }
  std::int64_t next_seq() const { return next_seq_; }
  bool in_recovery() const { return in_recovery_; }

  CongestionControl& cc() { return *cc_; }
  const CongestionControl& cc() const { return *cc_; }
  const RttEstimator& rtt() const { return rtt_; }
  const SenderStats& stats() const { return stats_; }
  net::FlowId flow() const { return flow_; }

 private:
  void try_send();
  void send_segment(std::int64_t seq, bool retransmission);
  /// Payload bytes segment `seq` carries: a full MSS except for the final
  /// segment of a message, which carries only the message's remainder.
  std::int32_t payload_for_seq(std::int64_t seq) const;
  /// Application bytes of the flow not yet cumulatively acknowledged — the
  /// true pFabric remaining-size priority (headers excluded, the final
  /// short segment not padded to a full MTU).
  std::int64_t remaining_payload_bytes() const;
  void handle_new_ack(const net::Packet& pkt);
  void handle_dup_ack();
  void absorb_sack(const net::Packet& pkt);
  /// Lowest unacknowledged, un-SACKed, not-yet-retransmitted segment below
  /// the highest SACKed one; -1 when there is no such hole.
  std::int64_t next_sack_hole() const;
  void retransmit_sack_holes(int budget);
  void complete_messages();
  void arm_rto();
  void cancel_rto();
  void on_rto();
  std::int64_t usable_window() const;

  sim::Simulator& sim_;
  net::Host& local_;
  net::NodeId dst_;
  net::FlowId flow_;
  std::unique_ptr<CongestionControl> cc_;
  SenderConfig cfg_;
  RttEstimator rtt_;

  struct Message {
    std::int64_t start_seq = 0;
    std::int64_t end_seq = 0;
    std::int64_t bytes = 0;
    CompletionCallback on_complete;
  };
  std::deque<Message> messages_;

  std::int64_t send_limit_ = 0;  ///< One past the last segment to send.
  std::int64_t next_seq_ = 0;
  std::int64_t snd_una_ = 0;
  std::int64_t max_seq_sent_ = -1;  ///< Highest segment ever transmitted.
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;
  /// Retransmission timer: bound once to on_rto(), rearmed in place on every
  /// ACK instead of cancel + reschedule churn.
  sim::Timer rto_timer_;
  sim::SimTime last_activity_ = -1;  ///< Last send or ACK; -1 = never.

  // SACK scoreboard (only populated when cfg_.use_sack).
  IntervalSet sacked_;
  /// Holes already retransmitted this recovery epoch (don't resend them on
  /// every dupACK); cleared when recovery ends.
  IntervalSet rexmit_epoch_;
  /// Segments retransmitted and not yet cumulatively acknowledged — an ACK
  /// covering any of them yields an ambiguous (Karn) RTT timestamp.
  /// Maintained in every mode, not just SACK.
  IntervalSet karn_rexmit_;

  // Pacing state (only used when cfg_.pacing).
  sim::SimTime next_pace_time_ = 0;
  sim::Timer pace_timer_;

  SenderStats stats_;
};

}  // namespace mltcp::tcp
