#pragma once

#include <array>
#include <cstdint>

#include "tcp/cong_control.hpp"

namespace mltcp::tcp {

struct BbrConfig {
  double initial_cwnd = 10.0;
  /// Floor of the computed window; also the PROBE_RTT window (BBR uses 4).
  double min_cwnd = 4.0;
  /// STARTUP pacing/cwnd gain 2/ln2: doubles the delivery rate every RTT.
  double startup_gain = 2.885;
  /// PROBE_BW cycle gains for the probing and draining phases; the six
  /// remaining phases cruise at 1.0.
  double probe_bw_up = 1.25;
  double probe_bw_down = 0.75;
  /// Steady-state cwnd = cwnd_gain * BDP: headroom for delayed/aggregated
  /// ACKs without letting the queue grow unboundedly.
  double cwnd_gain = 2.0;
  /// Windowed-max bandwidth filter length, in packet-timed rounds.
  int bw_filter_rounds = 10;
  /// STARTUP exits once the bandwidth estimate has grown less than
  /// `startup_growth_target` over `startup_full_bw_rounds` consecutive
  /// rounds (the pipe is full).
  double startup_growth_target = 1.25;
  int startup_full_bw_rounds = 3;
  /// min_rtt filter window; expiry without a new low triggers PROBE_RTT.
  sim::SimTime min_rtt_window = sim::seconds(10);
  sim::SimTime probe_rtt_duration = sim::milliseconds(200);
};

/// BBR (Cardwell et al., CACM'17), simplified to the simulator's ACK model:
/// a STARTUP/DRAIN/PROBE_BW/PROBE_RTT state machine estimates the
/// bottleneck bandwidth (windowed max of per-round delivery rates, in
/// segments/sec) and the propagation delay (windowed min RTT), then paces at
/// pacing_gain * btl_bw while capping inflight at cwnd_gain * BDP. Unlike
/// the window-based controllers, congestion response lives in the model —
/// losses do not collapse the window.
///
/// MLTCP augmentation is the rate-based analogue of scaling Reno's additive
/// increase, applied at the two places BBR expresses aggressiveness:
///  1. the steady-state inflight cap becomes cwnd_gain * F * BDP — under
///     oversubscription every flow is window-limited and the queue shares
///     capacity by inflight, so this cap decides the flow's share;
///  2. the PROBE_BW *up-phase* pacing gain becomes
///     1 + (probe_bw_up - 1) * F, so a flow near the end of its iteration
///     probes for bandwidth almost twice as hard while a flow that just
///     started barely probes at all.
/// Together they produce the same asymmetry that makes the window-based
/// variants converge to interleaved schedules (§3.1, §6).
class BbrCC : public CongestionControl {
 public:
  enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };

  explicit BbrCC(BbrConfig cfg = {}, std::shared_ptr<WindowGain> gain = {});

  void on_ack(const AckContext& ctx) override;
  void on_loss(sim::SimTime now) override;
  void on_timeout(sim::SimTime now) override;
  void on_idle_restart(sim::SimTime now) override;

  double cwnd() const override;
  double ssthresh() const override { return cwnd(); }
  double pacing_rate() const override;
  std::string name() const override;

  State state() const { return state_; }
  /// Bottleneck-bandwidth estimate, segments/sec (0 until the first round).
  double btl_bw() const { return btl_bw_; }
  sim::SimTime min_rtt() const { return min_rtt_; }
  /// Estimated bandwidth-delay product in segments (0 until measured).
  double bdp() const;
  /// Current pacing gain (exposed for tests: the MLTCP seam scales the
  /// PROBE_BW up phase).
  double current_pacing_gain() const;
  int probe_bw_phase() const { return phase_; }
  bool filled_pipe() const { return filled_pipe_; }
  int round_count() const { return round_count_; }

 private:
  /// Advances round accounting; returns true when `ctx` starts a new round
  /// (every segment in flight at the previous round start has been acked).
  bool update_round(const AckContext& ctx);
  void update_bw_filter(double sample);
  void update_min_rtt(const AckContext& ctx);
  void check_full_pipe();
  void enter_probe_bw();

  BbrConfig cfg_;
  State state_ = State::kStartup;
  int phase_ = 0;  ///< PROBE_BW cycle position (0 = up, 1 = down).

  // Delivery / round accounting.
  std::int64_t delivered_ = 0;        ///< Segments cumulatively delivered.
  std::int64_t round_end_seq_ = 0;    ///< ACK seq that closes this round.
  std::int64_t round_start_delivered_ = 0;
  sim::SimTime round_start_time_ = -1;
  int round_count_ = 0;

  // Windowed-max bandwidth filter: (round, sample) pairs, newest last,
  // samples strictly decreasing — a standard monotonic max queue.
  struct BwSample {
    int round = 0;
    double bw = 0.0;
  };
  std::array<BwSample, 16> bw_filter_{};
  int bw_filter_size_ = 0;
  double btl_bw_ = 0.0;

  // min_rtt filter.
  sim::SimTime min_rtt_ = 0;
  sim::SimTime min_rtt_stamp_ = -1;
  sim::SimTime probe_rtt_start_ = -1;
  sim::SimTime probe_rtt_min_ = -1;  ///< Lowest sample this PROBE_RTT.

  // STARTUP full-pipe detection.
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  bool filled_pipe_ = false;
};

}  // namespace mltcp::tcp
