#include "tcp/dctcp.hpp"

#include <algorithm>

namespace mltcp::tcp {

DctcpCC::DctcpCC(DctcpConfig cfg, std::shared_ptr<WindowGain> gain)
    : CongestionControl(std::move(gain)),
      cfg_(cfg),
      cwnd_(cfg.initial_cwnd),
      ssthresh_(cfg.initial_ssthresh),
      window_end_seq_(static_cast<std::int64_t>(cfg.initial_cwnd)) {}

void DctcpCC::end_of_window(std::int64_t ack_seq) {
  if (acked_in_window_ > 0) {
    const double frac = static_cast<double>(marked_in_window_) /
                        static_cast<double>(acked_in_window_);
    alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g * frac;
    if (marked_in_window_ > 0) {
      cwnd_ = std::max(cwnd_ * (1.0 - alpha_ / 2.0), cfg_.min_cwnd);
      ssthresh_ = cwnd_;
    }
  }
  acked_in_window_ = 0;
  marked_in_window_ = 0;
  window_end_seq_ = ack_seq + static_cast<std::int64_t>(cwnd_) + 1;
}

void DctcpCC::on_ack(const AckContext& ctx) {
  gain_->on_ack(ctx);
  if (ctx.num_acked <= 0) return;

  acked_in_window_ += ctx.num_acked;
  if (ctx.ece) marked_in_window_ += ctx.num_acked;

  if (ctx.ack_seq >= window_end_seq_) end_of_window(ctx.ack_seq);

  if (in_slow_start()) {
    cwnd_ += ctx.window_acked();
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    return;
  }
  cwnd_ += gain_->gain() * static_cast<double>(ctx.window_acked()) / cwnd_;
}

void DctcpCC::on_loss(sim::SimTime /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, cfg_.min_cwnd);
  cwnd_ = ssthresh_;
}

void DctcpCC::on_timeout(sim::SimTime /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, cfg_.min_cwnd);
  cwnd_ = 1.0;
}

void DctcpCC::on_idle_restart(sim::SimTime /*now*/) {
  cwnd_ = cfg_.initial_cwnd;
}

std::string DctcpCC::name() const {
  return gain_->name() == "unit" ? "dctcp"
                                 : "mltcp-dctcp[" + gain_->name() + "]";
}

}  // namespace mltcp::tcp
