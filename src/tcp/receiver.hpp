#pragma once

#include <cstdint>
#include <set>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace mltcp::tcp {

struct ReceiverConfig {
  /// Send one cumulative ACK per `ack_every` in-order data packets.
  /// Out-of-order arrivals are always acknowledged immediately (dup ACKs).
  int ack_every = 1;
  /// Deadline for a delayed ACK when ack_every > 1.
  sim::SimTime delayed_ack_timeout = sim::microseconds(500);
  /// Attach SACK blocks describing buffered out-of-order ranges to ACKs.
  bool sack_enabled = true;
};

/// TCP receive side: cumulative acknowledgements over segment sequence
/// numbers, out-of-order buffering, ECN echo and timestamp echo for RTT
/// sampling.
class TcpReceiver {
 public:
  TcpReceiver(sim::Simulator& simulator, net::Host& local, net::NodeId peer,
              net::FlowId flow, ReceiverConfig cfg = {});

  /// Handles one incoming data packet.
  void on_packet(const net::Packet& pkt);

  std::int64_t rcv_next() const { return rcv_next_; }
  std::int64_t data_packets_received() const { return data_packets_; }
  std::int64_t acks_sent() const { return acks_sent_; }
  std::int64_t out_of_order_buffered() const {
    return static_cast<std::int64_t>(ooo_.size());
  }

 private:
  void send_ack(const net::Packet& trigger);
  void schedule_delayed_ack(const net::Packet& trigger);

  sim::Simulator& sim_;
  net::Host& local_;
  net::NodeId peer_;
  net::FlowId flow_;
  ReceiverConfig cfg_;

  std::int64_t rcv_next_ = 0;
  std::set<std::int64_t> ooo_;
  bool pending_ce_ = false;
  int unacked_in_order_ = 0;
  /// Reusable delayed-ACK deadline; the callback acks `pending_trigger_`.
  sim::Timer delayed_ack_timer_;
  net::Packet pending_trigger_{};

  std::int64_t data_packets_ = 0;
  std::int64_t acks_sent_ = 0;
};

}  // namespace mltcp::tcp
