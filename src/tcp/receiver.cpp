#include "tcp/receiver.hpp"

namespace mltcp::tcp {

TcpReceiver::TcpReceiver(sim::Simulator& simulator, net::Host& local,
                         net::NodeId peer, net::FlowId flow,
                         ReceiverConfig cfg)
    : sim_(simulator), local_(local), peer_(peer), flow_(flow), cfg_(cfg),
      delayed_ack_timer_(simulator, [this] { send_ack(pending_trigger_); }) {}

void TcpReceiver::on_packet(const net::Packet& pkt) {
  if (pkt.type != net::PacketType::kData) return;
  ++data_packets_;
  if (pkt.ce) pending_ce_ = true;

  if (pkt.seq == rcv_next_) {
    ++rcv_next_;
    // Absorb any previously buffered continuation.
    while (!ooo_.empty() && *ooo_.begin() == rcv_next_) {
      ooo_.erase(ooo_.begin());
      ++rcv_next_;
    }
    ++unacked_in_order_;
    if (unacked_in_order_ >= cfg_.ack_every) {
      send_ack(pkt);
    } else {
      schedule_delayed_ack(pkt);
    }
    return;
  }

  if (pkt.seq > rcv_next_) {
    ooo_.insert(pkt.seq);
  }
  // Below-window (spurious retransmission) or out-of-order: ACK immediately
  // so the sender sees duplicate ACKs.
  send_ack(pkt);
}

void TcpReceiver::schedule_delayed_ack(const net::Packet& trigger) {
  pending_trigger_ = trigger;
  if (delayed_ack_timer_.pending()) {
    return;  // timer already running; it will ack cumulatively
  }
  delayed_ack_timer_.arm(cfg_.delayed_ack_timeout);
}

void TcpReceiver::send_ack(const net::Packet& trigger) {
  delayed_ack_timer_.cancel();
  unacked_in_order_ = 0;

  net::Packet ack;
  ack.flow = flow_;
  ack.dst = peer_;
  ack.type = net::PacketType::kAck;
  ack.seq = rcv_next_;
  ack.size_bytes = net::kAckBytes;
  ack.ece = pending_ce_;
  ack.tx_timestamp = trigger.tx_timestamp;  // echo for RTT sampling

  if (cfg_.sack_enabled && !ooo_.empty()) {
    // Summarize the out-of-order buffer as up to kMaxSackBlocks contiguous
    // ranges, lowest first (the ranges nearest the hole matter most to the
    // sender's scoreboard).
    auto it = ooo_.begin();
    while (it != ooo_.end() && ack.sack_count() < net::kMaxSackBlocks) {
      const std::int64_t start = *it;
      std::int64_t end = start + 1;
      ++it;
      while (it != ooo_.end() && *it == end) {
        ++end;
        ++it;
      }
      ack.add_sack(start, end);
    }
  }

  pending_ce_ = false;
  ++acks_sent_;
  local_.send(ack);
}

}  // namespace mltcp::tcp
