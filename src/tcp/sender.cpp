#include "tcp/sender.hpp"

#include <algorithm>
#include <cassert>

namespace mltcp::tcp {

TcpSender::TcpSender(sim::Simulator& simulator, net::Host& local,
                     net::NodeId dst, net::FlowId flow,
                     std::unique_ptr<CongestionControl> cc, SenderConfig cfg)
    : sim_(simulator),
      local_(local),
      dst_(dst),
      flow_(flow),
      cc_(std::move(cc)),
      cfg_(cfg),
      rtt_(cfg.min_rto) {
  assert(cc_ != nullptr);
  assert(cfg_.mtu > net::kHeaderBytes);
}

TcpSender::~TcpSender() { cancel_rto(); }

std::int64_t TcpSender::segments_for_bytes(std::int64_t bytes) const {
  const std::int64_t payload = payload_per_segment();
  return (bytes + payload - 1) / payload;
}

void TcpSender::send_message(std::int64_t bytes,
                             CompletionCallback on_complete) {
  assert(bytes > 0);
  if (cfg_.slow_start_after_idle && idle() && last_activity_ >= 0 &&
      sim_.now() - last_activity_ > rtt_.rto()) {
    cc_->on_idle_restart(sim_.now());
  }
  send_limit_ += segments_for_bytes(bytes);
  messages_.push_back(Message{send_limit_, std::move(on_complete)});
  try_send();
}

std::int64_t TcpSender::usable_window() const {
  const auto w = static_cast<std::int64_t>(cc_->cwnd());
  return std::max<std::int64_t>(w, 1);
}

void TcpSender::try_send() {
  if (!cfg_.pacing) {
    int burst = cfg_.max_burst;
    while (next_seq_ < send_limit_ && inflight() < usable_window() &&
           burst-- > 0) {
      send_segment(next_seq_, /*retransmission=*/false);
      ++next_seq_;
    }
    if (inflight() > 0 && rto_event_ == sim::kInvalidEventId) arm_rto();
    return;
  }

  // Paced release: one segment per cwnd/srtt interval. Until an RTT sample
  // exists, fall back to ACK-clocked release (initial window only).
  while (next_seq_ < send_limit_ && inflight() < usable_window()) {
    if (rtt_.has_sample()) {
      if (sim_.now() < next_pace_time_) {
        if (pace_event_ == sim::kInvalidEventId ||
            !sim_.pending(pace_event_)) {
          pace_event_ = sim_.schedule(next_pace_time_ - sim_.now(), [this] {
            pace_event_ = sim::kInvalidEventId;
            try_send();
          });
        }
        break;
      }
      const auto interval = static_cast<sim::SimTime>(
          static_cast<double>(rtt_.srtt()) / std::max(cc_->cwnd(), 1.0));
      next_pace_time_ = sim_.now() + interval;
    }
    send_segment(next_seq_, /*retransmission=*/false);
    ++next_seq_;
  }
  if (inflight() > 0 && rto_event_ == sim::kInvalidEventId) arm_rto();
}

void TcpSender::send_segment(std::int64_t seq, bool retransmission) {
  net::Packet pkt;
  pkt.flow = flow_;
  pkt.dst = dst_;
  pkt.type = net::PacketType::kData;
  pkt.seq = seq;
  pkt.size_bytes = cfg_.mtu;
  pkt.ecn_capable = cc_->wants_ecn();
  pkt.tx_timestamp = sim_.now();
  if (cfg_.pfabric_priority) {
    // Remaining bytes of the flow's outstanding work, per pFabric.
    pkt.priority = (send_limit_ - snd_una_) * cfg_.mtu;
  }
  ++stats_.data_packets_sent;
  if (retransmission) ++stats_.retransmissions;
  last_activity_ = sim_.now();
  local_.send(pkt);
}

void TcpSender::on_packet(const net::Packet& pkt) {
  if (pkt.type != net::PacketType::kAck) return;
  if (cfg_.use_sack) absorb_sack(pkt);
  if (pkt.seq > snd_una_) {
    handle_new_ack(pkt);
  } else if (pkt.seq == snd_una_ && inflight() > 0) {
    handle_dup_ack();
  }
  try_send();
}

void TcpSender::absorb_sack(const net::Packet& pkt) {
  for (const auto& block : pkt.sack) {
    if (block.empty()) continue;
    for (std::int64_t s = std::max(block.start, snd_una_);
         s < std::min(block.end, next_seq_); ++s) {
      sacked_.insert(s);
    }
  }
}

std::int64_t TcpSender::next_sack_hole() const {
  if (sacked_.empty()) return -1;
  const std::int64_t highest = *sacked_.rbegin();
  for (std::int64_t s = snd_una_; s < highest; ++s) {
    if (sacked_.count(s) == 0 && retransmitted_.count(s) == 0) return s;
  }
  return -1;
}

void TcpSender::retransmit_sack_holes(int budget) {
  while (budget-- > 0) {
    const std::int64_t hole = next_sack_hole();
    if (hole < 0) return;
    retransmitted_.insert(hole);
    send_segment(hole, /*retransmission=*/true);
  }
}

void TcpSender::handle_new_ack(const net::Packet& pkt) {
  const auto num_acked = static_cast<int>(pkt.seq - snd_una_);
  snd_una_ = pkt.seq;
  stats_.segments_acked += num_acked;
  rtt_.reset_backoff();

  sim::SimTime rtt_sample = -1;
  if (pkt.tx_timestamp > 0 && sim_.now() >= pkt.tx_timestamp) {
    rtt_sample = sim_.now() - pkt.tx_timestamp;
    rtt_.add_sample(rtt_sample);
  }

  AckContext ctx;
  ctx.now = sim_.now();
  ctx.num_acked = num_acked;
  ctx.ack_seq = pkt.seq;
  ctx.ece = pkt.ece;
  ctx.rtt_sample = rtt_sample;

  // Cumulatively acknowledged segments leave the scoreboard.
  if (cfg_.use_sack) {
    sacked_.erase(sacked_.begin(), sacked_.lower_bound(snd_una_));
    retransmitted_.erase(retransmitted_.begin(),
                         retransmitted_.lower_bound(snd_una_));
  }

  if (in_recovery_) {
    if (snd_una_ >= recover_) {
      in_recovery_ = false;
      dup_acks_ = 0;
      retransmitted_.clear();
      cc_->on_ack(ctx);
    } else if (cfg_.use_sack) {
      // Partial ACK with SACK: the new front hole was either never sent or
      // its retransmission was itself lost — make it eligible again, then
      // plug the reported holes.
      retransmitted_.erase(snd_una_);
      retransmit_sack_holes(2);
    } else {
      // Partial ACK (NewReno): the next hole is lost too; retransmit it.
      send_segment(snd_una_, /*retransmission=*/true);
    }
  } else {
    dup_acks_ = 0;
    cc_->on_ack(ctx);
  }

  // Fresh timer for the remaining in-flight data.
  cancel_rto();
  if (inflight() > 0) arm_rto();

  complete_messages();
}

void TcpSender::handle_dup_ack() {
  ++dup_acks_;
  if (dup_acks_ == 3 && !in_recovery_) {
    in_recovery_ = true;
    recover_ = next_seq_;
    ++stats_.fast_retransmits;
    cc_->on_loss(sim_.now());
    retransmitted_.insert(snd_una_);
    send_segment(snd_una_, /*retransmission=*/true);
    cancel_rto();
    arm_rto();
  } else if (in_recovery_ && cfg_.use_sack) {
    // Every further dupACK refreshes the scoreboard; plug one hole.
    retransmit_sack_holes(1);
  }
}

void TcpSender::complete_messages() {
  while (!messages_.empty() && snd_una_ >= messages_.front().end_seq) {
    Message msg = std::move(messages_.front());
    messages_.pop_front();
    ++stats_.messages_completed;
    if (msg.on_complete) msg.on_complete(sim_.now());
  }
}

void TcpSender::arm_rto() {
  rto_event_ = sim_.schedule(rtt_.rto(), [this] { on_rto(); });
}

void TcpSender::cancel_rto() {
  if (rto_event_ != sim::kInvalidEventId) {
    sim_.cancel(rto_event_);
    rto_event_ = sim::kInvalidEventId;
  }
}

void TcpSender::on_rto() {
  rto_event_ = sim::kInvalidEventId;
  if (inflight() <= 0) return;
  ++stats_.timeouts;
  cc_->on_timeout(sim_.now());
  rtt_.backoff();
  in_recovery_ = false;
  dup_acks_ = 0;
  retransmitted_.clear();
  sacked_.clear();  // conservative: rebuild the scoreboard after an RTO
  // Go-back-N: rewind and resend from the first unacknowledged segment.
  next_seq_ = snd_una_;
  try_send();
}

}  // namespace mltcp::tcp
