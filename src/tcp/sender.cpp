#include "tcp/sender.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/tracer.hpp"

namespace mltcp::tcp {

TcpSender::TcpSender(sim::Simulator& simulator, net::Host& local,
                     net::NodeId dst, net::FlowId flow,
                     std::unique_ptr<CongestionControl> cc, SenderConfig cfg)
    : sim_(simulator),
      local_(local),
      dst_(dst),
      flow_(flow),
      cc_(std::move(cc)),
      cfg_(cfg),
      rtt_(cfg.min_rto, cfg.max_rto),
      rto_timer_(simulator, [this] { on_rto(); }),
      pace_timer_(simulator, [this] { try_send(); }) {
  assert(cc_ != nullptr);
  assert(cfg_.mtu > net::kHeaderBytes);
  cc_->window_gain().bind_telemetry(&sim_, flow_);
}

TcpSender::~TcpSender() { cancel_rto(); }

std::int64_t TcpSender::segments_for_bytes(std::int64_t bytes) const {
  const std::int64_t payload = payload_per_segment();
  return (bytes + payload - 1) / payload;
}

void TcpSender::send_message(std::int64_t bytes,
                             CompletionCallback on_complete) {
  assert(bytes > 0);
  if (cfg_.slow_start_after_idle && idle() && last_activity_ >= 0 &&
      sim_.now() - last_activity_ > rtt_.rto()) {
    cc_->on_idle_restart(sim_.now());
  }
  const std::int64_t start_seq = send_limit_;
  send_limit_ += segments_for_bytes(bytes);
  messages_.push_back(
      Message{start_seq, send_limit_, bytes, std::move(on_complete)});
  try_send();
}

std::int64_t TcpSender::usable_window() const {
  const auto w = static_cast<std::int64_t>(cc_->cwnd());
  return std::max<std::int64_t>(w, 1);
}

void TcpSender::try_send() {
  // A rate-based controller owns its release rate: its pacing_rate() drives
  // the pace timer even when SenderConfig::pacing is off (cwnd stays the
  // inflight cap). Window-based controllers return 0 and keep the configured
  // behavior.
  const double cc_rate = cc_->pacing_rate();
  if (!cfg_.pacing && cc_rate <= 0.0) {
    int burst = cfg_.max_burst;
    while (next_seq_ < send_limit_ && inflight() < usable_window() &&
           burst-- > 0) {
      // After an RTO rewind next_seq_ revisits already-sent segments; those
      // are retransmissions (Karn must not sample their RTT).
      send_segment(next_seq_, /*retransmission=*/next_seq_ <= max_seq_sent_);
      ++next_seq_;
    }
    if (inflight() > 0 && !rto_timer_.pending()) arm_rto();
    return;
  }

  // Paced release: one segment per interval. The interval is 1/pacing_rate
  // when the controller supplies a rate, cwnd/srtt otherwise. Until either
  // exists (no RTT sample, no bandwidth estimate), fall back to ACK-clocked
  // release (initial window only).
  while (next_seq_ < send_limit_ && inflight() < usable_window()) {
    if (cc_rate > 0.0 || rtt_.has_sample()) {
      if (sim_.now() < next_pace_time_) {
        if (!pace_timer_.pending()) pace_timer_.arm_at(next_pace_time_);
        break;
      }
      const auto interval =
          cc_rate > 0.0
              ? sim::from_seconds(1.0 / cc_rate)
              : static_cast<sim::SimTime>(static_cast<double>(rtt_.srtt()) /
                                          std::max(cc_->cwnd(), 1.0));
      next_pace_time_ = sim_.now() + interval;
    }
    send_segment(next_seq_, /*retransmission=*/next_seq_ <= max_seq_sent_);
    ++next_seq_;
  }
  if (inflight() > 0 && !rto_timer_.pending()) arm_rto();
}

std::int32_t TcpSender::payload_for_seq(std::int64_t seq) const {
  // Unacknowledged segments always belong to a message still queued (a
  // message is popped only once fully acked), so the linear scan touches at
  // most the handful of in-flight messages.
  for (const Message& m : messages_) {
    if (seq >= m.end_seq) continue;
    if (seq < m.start_seq) break;
    if (seq == m.end_seq - 1) {
      const auto full = static_cast<std::int64_t>(payload_per_segment());
      return static_cast<std::int32_t>(m.bytes -
                                       (m.end_seq - m.start_seq - 1) * full);
    }
    return payload_per_segment();
  }
  return payload_per_segment();
}

std::int64_t TcpSender::remaining_payload_bytes() const {
  // Messages are popped only once fully acknowledged, so every queued
  // message still owes bytes. Within the partially acked front message all
  // acknowledged segments are full-size (the short one is the last, and a
  // message with its last segment acked would already be popped).
  std::int64_t remaining = 0;
  for (const Message& m : messages_) {
    remaining += m.bytes;
    if (snd_una_ > m.start_seq && snd_una_ < m.end_seq) {
      remaining -= (snd_una_ - m.start_seq) *
                   static_cast<std::int64_t>(payload_per_segment());
    }
  }
  return remaining;
}

void TcpSender::send_segment(std::int64_t seq, bool retransmission) {
  net::Packet pkt;
  pkt.flow = flow_;
  pkt.dst = dst_;
  pkt.type = net::PacketType::kData;
  pkt.seq = seq;
  // The final segment of a message carries only the remainder, so wire-byte
  // accounting matches the application bytes instead of padding to the MTU.
  pkt.size_bytes = payload_for_seq(seq) + net::kHeaderBytes;
  pkt.ecn_capable = cc_->wants_ecn();
  pkt.tx_timestamp = sim_.now();
  if (cfg_.pfabric_priority) {
    // Remaining application bytes of the flow's outstanding work, per
    // pFabric. Counting segments * MTU would include headers and pad the
    // final short segment, biasing SRPT order against flows whose tail
    // segment is small.
    pkt.priority = remaining_payload_bytes();
  }
  ++stats_.data_packets_sent;
  if (retransmission) {
    ++stats_.retransmissions;
    karn_rexmit_.insert(seq, seq + 1);
  }
  max_seq_sent_ = std::max(max_seq_sent_, seq);
  last_activity_ = sim_.now();
  local_.send(pkt);
}

void TcpSender::on_packet(const net::Packet& pkt) {
  if (pkt.type != net::PacketType::kAck) return;
  if (cfg_.use_sack) absorb_sack(pkt);
  if (pkt.seq > snd_una_) {
    handle_new_ack(pkt);
  } else if (pkt.seq == snd_una_ && inflight() > 0) {
    handle_dup_ack();
  }
  try_send();
}

void TcpSender::absorb_sack(const net::Packet& pkt) {
  for (int i = 0; i < pkt.sack_count(); ++i) {
    const net::SackBlock block = pkt.sack(i);
    sacked_.insert(std::max(block.start, snd_una_),
                   std::min(block.end, next_seq_));
  }
}

std::int64_t TcpSender::next_sack_hole() const {
  if (sacked_.empty()) return -1;
  // Walk the gaps between SACKed intervals below the highest SACKed
  // segment; within each gap, skip what this epoch already retransmitted.
  // O(holes) per call instead of the old O(window) rescan from snd_una_.
  const std::int64_t highest = sacked_.upper_bound_value() - 1;
  std::int64_t gap_start = snd_una_;
  for (const auto& [start, end] : sacked_.intervals()) {
    const std::int64_t gap_end = std::min(start, highest);
    if (gap_start < gap_end) {
      const std::int64_t hole = rexmit_epoch_.first_missing(gap_start, gap_end);
      if (hole < gap_end) return hole;
    }
    gap_start = std::max(gap_start, end);
    if (gap_start >= highest) break;
  }
  return -1;
}

void TcpSender::retransmit_sack_holes(int budget) {
  while (budget-- > 0) {
    const std::int64_t hole = next_sack_hole();
    if (hole < 0) return;
    rexmit_epoch_.insert(hole, hole + 1);
    send_segment(hole, /*retransmission=*/true);
  }
}

void TcpSender::handle_new_ack(const net::Packet& pkt) {
  const std::int64_t prev_una = snd_una_;
  const auto num_acked = static_cast<int>(pkt.seq - snd_una_);
  snd_una_ = pkt.seq;
  stats_.segments_acked += num_acked;
  rtt_.reset_backoff();

  // Karn's algorithm: if the newly acknowledged range contains a segment
  // that was retransmitted, the echoed timestamp may belong to either the
  // original or the retransmission — feeding it to the estimator right
  // after a loss corrupts srtt/RTO. Skip the sample.
  sim::SimTime rtt_sample = -1;
  if (pkt.tx_timestamp > 0 && sim_.now() >= pkt.tx_timestamp) {
    if (karn_rexmit_.overlaps(prev_una, pkt.seq)) {
      ++stats_.rtt_samples_karn_skipped;
    } else {
      rtt_sample = sim_.now() - pkt.tx_timestamp;
      rtt_.add_sample(rtt_sample);
    }
  }
  karn_rexmit_.erase_below(snd_una_);

  AckContext ctx;
  ctx.now = sim_.now();
  ctx.num_acked = num_acked;
  ctx.ack_seq = pkt.seq;
  ctx.ece = pkt.ece;
  ctx.rtt_sample = rtt_sample;
  ctx.inflight = inflight();

  // Cumulatively acknowledged segments leave the scoreboard.
  if (cfg_.use_sack) {
    sacked_.erase_below(snd_una_);
    rexmit_epoch_.erase_below(snd_una_);
  }

  if (in_recovery_) {
    if (snd_una_ >= recover_) {
      in_recovery_ = false;
      dup_acks_ = 0;
      rexmit_epoch_.clear();
      // The full ACK that exits recovery cumulatively covers the whole
      // recovery episode. Feeding all of it to congestion avoidance would
      // grow cwnd by ~gain in one step right after the halving (double the
      // per-RTT budget); bound the exit ACK's window credit to a single
      // ACK's worth while byte accounting keeps the full num_acked.
      ctx.ca_acked = std::min(num_acked, 1);
      cc_->on_ack(ctx);
    } else {
      // Partial ACK: the window is frozen (no cc_->on_ack), but Algorithm 1
      // line 7 counts every acknowledged byte — without this the bytes
      // acked by partial ACKs never reach the MLTCP tracker and
      // bytes_ratio under-reports for the rest of the iteration.
      cc_->window_gain().on_ack(ctx);
      if (cfg_.use_sack) {
        // With SACK: the new front hole was either never sent or its
        // retransmission was itself lost — make it eligible again, then
        // plug the reported holes.
        rexmit_epoch_.erase(snd_una_, snd_una_ + 1);
        retransmit_sack_holes(2);
      } else {
        // NewReno: the next hole is lost too; retransmit it.
        send_segment(snd_una_, /*retransmission=*/true);
      }
    }
  } else {
    dup_acks_ = 0;
    cc_->on_ack(ctx);
  }

  // Fresh timer for the remaining in-flight data.
  cancel_rto();
  if (inflight() > 0) arm_rto();

  // Per-ACK window sample: very hot, so it hides behind its own category
  // (kTcpAck) that experiments opt into explicitly.
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kTcpAck)) {
    t->counter(telemetry::Category::kTcpAck, "cwnd", sim_.now(),
               telemetry::track_flow(flow_), cc_->cwnd());
  }

  complete_messages();
}

void TcpSender::handle_dup_ack() {
  ++dup_acks_;
  if (dup_acks_ == 3 && !in_recovery_) {
    in_recovery_ = true;
    recover_ = next_seq_;
    ++stats_.fast_retransmits;
    if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kTcp)) {
      t->instant(telemetry::Category::kTcp, "fast_retransmit", sim_.now(),
                 telemetry::track_flow(flow_), "seq",
                 static_cast<double>(snd_una_), "cwnd", cc_->cwnd());
    }
    cc_->on_loss(sim_.now());
    rexmit_epoch_.insert(snd_una_, snd_una_ + 1);
    send_segment(snd_una_, /*retransmission=*/true);
    cancel_rto();
    arm_rto();
  } else if (in_recovery_ && cfg_.use_sack) {
    // Every further dupACK refreshes the scoreboard; plug one hole.
    retransmit_sack_holes(1);
  }
}

void TcpSender::complete_messages() {
  while (!messages_.empty() && snd_una_ >= messages_.front().end_seq) {
    Message msg = std::move(messages_.front());
    messages_.pop_front();
    ++stats_.messages_completed;
    if (msg.on_complete) msg.on_complete(sim_.now());
  }
}

void TcpSender::arm_rto() { rto_timer_.arm(rtt_.rto()); }

void TcpSender::cancel_rto() { rto_timer_.cancel(); }

void TcpSender::on_rto() {
  if (inflight() <= 0) return;
  ++stats_.timeouts;
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kTcp)) {
    t->instant(telemetry::Category::kTcp, "rto", sim_.now(),
               telemetry::track_flow(flow_), "rto_us",
               static_cast<double>(rtt_.rto()) / 1e3, "inflight",
               static_cast<double>(inflight()));
  }
  cc_->on_timeout(sim_.now());
  rtt_.backoff();
  in_recovery_ = false;
  dup_acks_ = 0;
  rexmit_epoch_.clear();
  sacked_.clear();  // conservative: rebuild the scoreboard after an RTO
  // Go-back-N: rewind and resend from the first unacknowledged segment.
  next_seq_ = snd_una_;
  try_send();
}

}  // namespace mltcp::tcp
