#pragma once

#include <cstdint>
#include <string>

namespace mltcp::sim {

/// Simulated time. All simulation timestamps and durations are expressed in
/// integer nanoseconds to keep event ordering exact and reproducible.
using SimTime = std::int64_t;

/// Sentinel for "no deadline" / "never".
inline constexpr SimTime kTimeInfinity = INT64_MAX;

constexpr SimTime nanoseconds(std::int64_t v) { return v; }
constexpr SimTime microseconds(std::int64_t v) { return v * 1'000; }
constexpr SimTime milliseconds(std::int64_t v) { return v * 1'000'000; }
constexpr SimTime seconds(std::int64_t v) { return v * 1'000'000'000; }

/// Converts a floating-point second count to SimTime (rounded to nearest ns).
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) * 1e-6;
}
constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) * 1e-3;
}

/// Duration needed to serialize `bytes` onto a link of `rate_bps` bits/sec.
constexpr SimTime transmission_time(std::int64_t bytes, double rate_bps) {
  return from_seconds(static_cast<double>(bytes) * 8.0 / rate_bps);
}

/// Human-readable rendering, e.g. "1.250ms", used by traces and examples.
std::string format_time(SimTime t);

}  // namespace mltcp::sim
