#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace mltcp::sim {

/// Indexed implicit 4-ary min-heap: the EventQueue's heap layout (shallow
/// 4-ary levels of small entries, branch-light sift loops) generalized to
/// keyed *handles* that support decrease/increase-key and removal by item.
///
/// The item type T (cheap to copy — a pointer or small id) exposes a
/// position slot through the PosOf policy: `PosOf{}(item)` must return an
/// `std::int32_t&` the heap stores the item's current index in (-1 when the
/// item is not in the heap). That makes update()/remove() O(log4 n) with no
/// hashing and no per-operation allocation — the idiom the flow-level
/// backend's drain-event index needs: hundreds of thousands of re-keys where
/// only re-rated channels pay for their position change.
///
/// Ties: equal keys pop in unspecified (but deterministic, operation-history
/// defined) order. Callers that need a canonical order at equal keys must
/// impose it after popping (the flow simulator sorts its due set by channel
/// ordinal).
template <typename Key, typename T, typename PosOf>
class IndexedMinHeap4 {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Key of the minimum entry. Precondition: !empty().
  const Key& min_key() const {
    assert(!heap_.empty());
    return heap_.front().key;
  }

  /// Item of the minimum entry. Precondition: !empty().
  const T& min_item() const {
    assert(!heap_.empty());
    return heap_.front().item;
  }

  bool contains(const T& item) const { return PosOf{}(item) >= 0; }

  /// Inserts `item` with `key`, or re-keys it in place if already present.
  void update(const T& item, const Key& key) {
    std::int32_t& pos = PosOf{}(item);
    if (pos < 0) {
      pos = static_cast<std::int32_t>(heap_.size());
      heap_.push_back(Entry{key, item});
      sift_up(static_cast<std::size_t>(pos));
      return;
    }
    const std::size_t i = static_cast<std::size_t>(pos);
    assert(i < heap_.size() && heap_[i].item == item);
    const Key old = heap_[i].key;
    heap_[i].key = key;
    if (key < old) {
      sift_up(i);
    } else if (old < key) {
      sift_down(i);
    }
  }

  /// Removes `item` if present; no-op otherwise.
  void remove(const T& item) {
    std::int32_t& pos = PosOf{}(item);
    if (pos < 0) return;
    const std::size_t i = static_cast<std::size_t>(pos);
    assert(i < heap_.size() && heap_[i].item == item);
    pos = -1;
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      const Key displaced = heap_[i].key;
      heap_[i] = heap_[last];
      PosOf{}(heap_[i].item) = static_cast<std::int32_t>(i);
      heap_.pop_back();
      // The hole filler came from the bottom: it may need to move either way
      // relative to the removed entry's old position.
      if (heap_[i].key < displaced) {
        sift_up(i);
      } else {
        sift_down(i);
      }
    } else {
      heap_.pop_back();
    }
  }

  /// Pops and returns the minimum item. Precondition: !empty().
  T pop_min() {
    assert(!heap_.empty());
    T top = heap_.front().item;
    PosOf{}(top) = -1;
    const std::size_t last = heap_.size() - 1;
    if (last > 0) {
      heap_.front() = heap_[last];
      PosOf{}(heap_.front().item) = 0;
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return top;
  }

  void clear() {
    for (Entry& e : heap_) PosOf{}(e.item) = -1;
    heap_.clear();
  }

 private:
  struct Entry {
    Key key;
    T item;
  };

  /// Index of the smallest of the up-to-four children of `i`; size() must
  /// be > first_child(i). Mirrors EventQueue::min_child's tournament shape.
  std::size_t min_child(std::size_t first, std::size_t n) const {
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_[c].key < heap_[best].key) best = c;
    }
    return best;
  }

  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!(e.key < heap_[parent].key)) break;
      heap_[i] = heap_[parent];
      PosOf{}(heap_[i].item) = static_cast<std::int32_t>(i);
      i = parent;
    }
    heap_[i] = e;
    PosOf{}(heap_[i].item) = static_cast<std::int32_t>(i);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Entry e = heap_[i];
    while (true) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      const std::size_t c = min_child(first, n);
      if (!(heap_[c].key < e.key)) break;
      heap_[i] = heap_[c];
      PosOf{}(heap_[i].item) = static_cast<std::int32_t>(i);
      i = c;
    }
    heap_[i] = e;
    PosOf{}(heap_[i].item) = static_cast<std::int32_t>(i);
  }

  std::vector<Entry> heap_;
};

}  // namespace mltcp::sim
