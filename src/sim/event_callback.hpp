#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace mltcp::sim {

/// Inline capture budget of EventCallback. Sized for the largest hot-path
/// closure in the simulator: a propagation-delivery lambda capturing a
/// Node* plus a net::Packet by value (8 + 72 = 80 bytes; see the
/// static_asserts at the scheduling sites in net/link.cpp). Callables that
/// fit are stored in the event entry itself — scheduling them never touches
/// the heap. Oversized callables still work but fall back to one heap
/// allocation; keep hot-path captures under this budget.
inline constexpr std::size_t kInlineCallbackCapacity = 96;

/// Small-buffer-optimized, move-only `void()` callable used by the event
/// engine in place of std::function. Differences that matter here:
///  - captures up to kInlineCallbackCapacity bytes live inline, so the
///    steady-state schedule/fire cycle performs zero heap allocations;
///  - trivially copyable captures (the common case: `this` pointers and
///    packets) relocate with a plain memcpy, no manager-function call;
///  - invocation is one indirect call through a stored function pointer.
class EventCallback {
 public:
  EventCallback() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                        std::is_invocable_v<D&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors
                          // std::function's implicit construction from
                          // lambdas at every schedule() call site.
    emplace(std::forward<F>(f));
  }

  /// Installs `f`, destroying any current callable. Lets the event queue
  /// construct a closure directly in slot storage instead of building it on
  /// the caller's stack and copying it over.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                        std::is_invocable_v<D&>>>
  void emplace(F&& f) {
    reset();
    if constexpr (sizeof(D) <= kInlineCallbackCapacity &&
                  alignof(D) <= kInlineAlignment) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* b) { (*std::launder(reinterpret_cast<D*>(b)))(); };
      if constexpr (std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>) {
        // Trivial fast path: record the capture size so a move copies only
        // the bytes that exist, not the whole buffer — the difference
        // between touching one cache line and three on every schedule.
        // Captureless lambdas carry no state at all.
        size_ = std::is_empty_v<D> ? 0 : sizeof(D);
      } else {
        ops_ = &kInlineOps<D>;
      }
    } else {
      // Heap fallback for oversized or over-aligned captures; never taken
      // by the engine's own call sites (see the allocation-counting test).
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      invoke_ = [](void* b) { (**reinterpret_cast<D**>(b))(); };
      ops_ = &kHeapOps<D>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  void operator()() { invoke_(buf_); }
  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Destroys the stored callable (if any); the callback becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) ops_->destroy(buf_);
    ops_ = nullptr;
    invoke_ = nullptr;
  }

 private:
  struct Ops {
    void (*destroy)(void*) noexcept;
    /// Move-constructs the callable into `dst` and destroys the one in
    /// `src`.
    void (*relocate)(void* dst, void* src) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* b) noexcept { std::launder(reinterpret_cast<D*>(b))->~D(); },
      [](void* dst, void* src) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      }};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* b) noexcept { delete *reinterpret_cast<D**>(b); },
      [](void* dst, void* src) noexcept {
        std::memcpy(dst, src, sizeof(D*));
      }};

  void move_from(EventCallback& other) noexcept {
    invoke_ = other.invoke_;
    ops_ = other.ops_;
    size_ = other.size_;
    if (invoke_ != nullptr) {
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, size_);
      }
    }
    other.invoke_ = nullptr;
    other.ops_ = nullptr;
  }

  /// Captures needing stricter alignment than this take the heap path.
  static constexpr std::size_t kInlineAlignment = 8;

  void (*invoke_)(void*) = nullptr;
  const Ops* ops_ = nullptr;  ///< Null for trivially relocatable captures.
  std::uint32_t size_ = 0;    ///< Capture size on the trivial inline path.
  alignas(kInlineAlignment) unsigned char buf_[kInlineCallbackCapacity];
};

}  // namespace mltcp::sim
