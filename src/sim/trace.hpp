#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mltcp::sim {

/// Accumulates byte counts into fixed-width time bins and reports the rate in
/// each bin. Used to regenerate the paper's bandwidth-vs-time plots.
class RateBinner {
 public:
  /// `bin_width` is the width of each bin; must be > 0.
  explicit RateBinner(SimTime bin_width);

  /// Records `bytes` transferred at time `when`.
  void add(SimTime when, std::int64_t bytes);

  /// Number of bins touched so far (index of last non-empty bin + 1).
  std::size_t bin_count() const { return bins_.size(); }

  SimTime bin_width() const { return bin_width_; }

  /// Midpoint time of bin `i`.
  SimTime bin_time(std::size_t i) const {
    return static_cast<SimTime>(i) * bin_width_ + bin_width_ / 2;
  }

  /// Average rate in bin `i`, in bits per second.
  double rate_bps(std::size_t i) const;

  /// Average rate in bin `i`, in gigabits per second.
  double rate_gbps(std::size_t i) const { return rate_bps(i) * 1e-9; }

  std::int64_t total_bytes() const { return total_bytes_; }

 private:
  SimTime bin_width_;
  std::vector<std::int64_t> bins_;
  std::int64_t total_bytes_ = 0;
};

/// RFC 4180 field quoting: returns `field` wrapped in double quotes (with
/// embedded quotes doubled) when it contains a comma, quote, CR or LF;
/// returns it unchanged otherwise.
std::string csv_escape(const std::string& field);

/// Minimal CSV writer for experiment output. Values are written row by row;
/// the header is written on construction. String fields are quoted per
/// RFC 4180 when they contain delimiters.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

 private:
  std::FILE* f_ = nullptr;
};

}  // namespace mltcp::sim
