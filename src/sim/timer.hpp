#pragma once

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace mltcp::sim {

/// Simulator-clock convenience over QueueTimer: relative arming with the
/// same clamping rules as Simulator::schedule / schedule_at. This is the
/// handle model components use for their periodic or frequently rearmed
/// events (link transmission-done, TCP RTO / pacing / delayed ACK, flow
/// sampling): bind the callback once, then rearm in place instead of the
/// cancel + schedule churn an EventId would require.
///
/// Same lifetime rules as QueueTimer: destroy the timer before its
/// Simulator, and never from inside its own callback.
class Timer {
 public:
  Timer() = default;
  Timer(Simulator& simulator, EventCallback fn) {
    bind(simulator, std::move(fn));
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Binds the timer to a simulator and installs its callback. Must be
  /// unbound.
  void bind(Simulator& simulator, EventCallback fn) {
    sim_ = &simulator;
    inner_.bind(simulator.event_queue(), std::move(fn));
  }
  bool bound() const { return inner_.bound(); }

  /// (Re)arms the timer to fire `delay` from now, replacing any pending
  /// deadline. Negative delays clamp to 0 (fire "immediately", after
  /// currently-runnable events at now()).
  void arm(SimTime delay) {
    inner_.arm(sim_->now() + (delay > 0 ? delay : 0));
  }

  /// (Re)arms the timer at absolute time `when` (clamped to now()).
  void arm_at(SimTime when) {
    inner_.arm(when > sim_->now() ? when : sim_->now());
  }

  /// Cancels the pending deadline, if any. The binding survives.
  void cancel() { inner_.cancel(); }
  bool pending() const { return inner_.pending(); }
  /// Deadline of the pending fire; meaningless unless pending().
  SimTime deadline() const { return inner_.deadline(); }

 private:
  Simulator* sim_ = nullptr;
  QueueTimer inner_;
};

}  // namespace mltcp::sim
