#pragma once

#include <cassert>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace mltcp::sim {

/// Simulator-clock convenience over QueueTimer: relative arming with the
/// same clamping rules as Simulator::schedule / schedule_at. This is the
/// handle model components use for their periodic or frequently rearmed
/// events (link transmission-done, TCP RTO / pacing / delayed ACK, flow
/// sampling): bind the callback once, then rearm in place instead of the
/// cancel + schedule churn an EventId would require.
///
/// The queue attachment is lazy: bind() records the simulator + callback,
/// and the first arm acquires a slot in the *calling thread's* shard queue
/// (Simulator::event_queue()). In serial runs that is always the root queue
/// — identical to eager binding. In sharded runs it means a timer fires in
/// the shard that first arms it (a receiver's delayed-ACK timer lands in
/// the receiver's shard, an RTO timer in the sender's), without components
/// knowing about shards at construction time.
///
/// Same lifetime rules as QueueTimer: destroy the timer before its
/// Simulator, and never from inside its own callback.
class Timer {
 public:
  Timer() = default;
  Timer(Simulator& simulator, EventCallback fn) {
    bind(simulator, std::move(fn));
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Binds the timer to a simulator and installs its callback. Must be
  /// unbound. The event-queue slot is acquired on first arm.
  void bind(Simulator& simulator, EventCallback fn) {
    assert(sim_ == nullptr && "Timer already bound");
    sim_ = &simulator;
    fn_ = std::move(fn);
  }
  bool bound() const { return sim_ != nullptr; }

  /// (Re)arms the timer to fire `delay` from now, replacing any pending
  /// deadline. Negative delays clamp to 0 (fire "immediately", after
  /// currently-runnable events at now()).
  void arm(SimTime delay) {
    ensure_attached();
    inner_.arm(sim_->now() + (delay > 0 ? delay : 0));
  }

  /// (Re)arms the timer at absolute time `when` (clamped to now()).
  void arm_at(SimTime when) {
    ensure_attached();
    inner_.arm(when > sim_->now() ? when : sim_->now());
  }

  /// Same, with an explicit canonical tiebreak key (see
  /// EventQueue::schedule_keyed). The scenario engine arms its replay timer
  /// with EventQueue::kBarrierKey so a scenario event applies before
  /// everything else at its instant — matching the sharded runner's
  /// global-barrier semantics exactly.
  void arm_at_keyed(SimTime when, std::uint64_t key) {
    ensure_attached();
    inner_.arm_keyed(when > sim_->now() ? when : sim_->now(), key);
  }

  /// Cancels the pending deadline, if any. The binding survives.
  void cancel() {
    if (inner_.bound()) inner_.cancel();
  }
  bool pending() const { return inner_.bound() && inner_.pending(); }
  /// Deadline of the pending fire; meaningless unless pending().
  SimTime deadline() const { return inner_.deadline(); }

 private:
  void ensure_attached() {
    assert(sim_ != nullptr && "Timer armed before bind");
    if (!inner_.bound()) {
      inner_.bind(sim_->event_queue(), std::move(fn_));
    } else {
      // Once attached, a timer belongs to one shard's queue for good:
      // rearming it from another shard would race that queue.
      assert(&sim_->event_queue() == inner_.queue() &&
             "Timer rearmed from a different shard than it is attached to");
    }
  }

  Simulator* sim_ = nullptr;
  EventCallback fn_;
  QueueTimer inner_;
};

}  // namespace mltcp::sim
