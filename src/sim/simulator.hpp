#pragma once

#include <cstdint>

#include "sim/event_callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mltcp::telemetry {
class Tracer;
}

namespace mltcp::sim {

/// Owns the simulation clock and event queue. All model components hold a
/// reference to one Simulator and schedule work through it.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Negative delays are clamped to 0
  /// (fire "immediately", after currently-runnable events at `now`). The
  /// callable is forwarded through to the queue, which constructs it
  /// directly in event-slot storage.
  template <typename F>
  EventId schedule(SimTime delay, F&& fn) {
    return queue_.schedule(now_ + (delay > 0 ? delay : 0),
                           std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `when` (clamped to now()).
  template <typename F>
  EventId schedule_at(SimTime when, F&& fn) {
    return queue_.schedule(when > now_ ? when : now_, std::forward<F>(fn));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }
  bool pending(EventId id) const { return queue_.pending(id); }

  /// The underlying queue; what sim::Timer handles bind against.
  EventQueue& event_queue() { return queue_; }

  /// Runs events until the queue drains or stop() is called.
  void run();

  /// Runs events with timestamp <= `deadline`; the clock ends at `deadline`
  /// (or earlier if stopped / drained).
  void run_until(SimTime deadline);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

  /// Telemetry hook: components reach the tracer of their simulation through
  /// here (see telemetry::tracer_for). The Simulator only stores the pointer
  /// — it never dereferences it — so sim/ stays free of telemetry/ code.
  void set_tracer(telemetry::Tracer* tracer) { tracer_ = tracer; }
  telemetry::Tracer* tracer() const { return tracer_; }

  /// Hands out small per-simulation ordinals for telemetry track ids (jobs,
  /// links). Allocation follows construction order, which is deterministic,
  /// so trace output is reproducible across runs and thread counts.
  std::uint32_t allocate_trace_ordinal() { return trace_ordinals_++; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  telemetry::Tracer* tracer_ = nullptr;
  std::uint32_t trace_ordinals_ = 0;
};

}  // namespace mltcp::sim
