#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_callback.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mltcp::telemetry {
class Tracer;
}

namespace mltcp::sim {

class Simulator;

namespace detail {
/// Thread-local shard binding: which Simulator (if any) the current thread
/// is executing a shard of, and which shard context that is. Zero-initialized
/// POD so the hot-path read needs no initialization guard; a thread that
/// never entered a shard reads {nullptr, nullptr} and every Simulator call
/// falls through to its root (serial) context.
struct ShardBinding {
  const Simulator* sim;
  void* ctx;
};
extern thread_local ShardBinding tls_shard_binding;
}  // namespace detail

/// Owns the simulation clock and event queue. All model components hold a
/// reference to one Simulator and schedule work through it.
///
/// Sharded execution (src/pdes): configure_shards(n) gives the simulator n
/// independent (clock, event queue) contexts. Model components keep calling
/// the same now()/schedule() API; calls resolve against the context of the
/// shard the calling thread is executing (bound via ShardGuard during setup
/// and by the PDES coordinator's worker loop during the run), so events a
/// component schedules for itself always land in its owning shard's queue.
/// A thread with no binding — every serial run — resolves to the root
/// context (shard 0) at the cost of one thread-local load and compare.
class Simulator {
 public:
  /// One shard's execution state. Shard 0 is the root context, which doubles
  /// as the whole simulation's state when running serially.
  struct ShardContext {
    EventQueue queue;
    SimTime now = 0;
    std::uint64_t executed = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return ctx().now; }

  /// Schedules `fn` to run `delay` from now. Negative delays are clamped to 0
  /// (fire "immediately", after currently-runnable events at `now`). The
  /// callable is forwarded through to the queue, which constructs it
  /// directly in event-slot storage.
  template <typename F>
  EventId schedule(SimTime delay, F&& fn) {
    ShardContext& c = ctx();
    return c.queue.schedule(c.now + (delay > 0 ? delay : 0),
                            std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `when` (clamped to now()).
  template <typename F>
  EventId schedule_at(SimTime when, F&& fn) {
    ShardContext& c = ctx();
    return c.queue.schedule(when > c.now ? when : c.now, std::forward<F>(fn));
  }

  /// Schedules `fn` to run `delay` from now with an explicit canonical
  /// tiebreak key (see EventQueue::schedule_keyed): at equal timestamps the
  /// event fires in key order, independent of scheduling history. Link
  /// delivery events use this so serial and sharded runs share one total
  /// event order.
  template <typename F>
  EventId schedule_keyed(SimTime delay, std::uint64_t key, F&& fn) {
    ShardContext& c = ctx();
    return c.queue.schedule_keyed(c.now + (delay > 0 ? delay : 0), key,
                                  std::forward<F>(fn));
  }

  bool cancel(EventId id) { return ctx().queue.cancel(id); }
  bool pending(EventId id) const { return ctx().queue.pending(id); }

  /// The calling thread's shard queue (the root queue when unbound); what
  /// sim::Timer handles bind against on their first arm.
  EventQueue& event_queue() { return ctx().queue; }

  /// Runs events until the queue drains or stop() is called. Serial
  /// execution on the root context; sharded runs go through
  /// pdes::ShardedRunner instead.
  void run();

  /// Runs events with timestamp <= `deadline`; the clock ends at `deadline`
  /// (or earlier if stopped / drained).
  void run_until(SimTime deadline);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const;
  std::uint64_t events_executed() const;

  // -- Sharded execution support (see src/pdes) -----------------------------

  /// Splits the simulator into `n` shard contexts (shard 0 is the root
  /// context, keeping any events already scheduled). Call once, after the
  /// topology exists but before workload components are constructed, so
  /// their lazily-bound timers and setup events land in the right shard via
  /// ShardGuard. n == 1 is the serial configuration (a no-op).
  void configure_shards(int n);
  int shard_count() const {
    return 1 + static_cast<int>(extra_shards_.size());
  }
  /// Shard `i`'s context; 0 is the root. PDES-coordinator use.
  ShardContext& shard_context(int i) {
    return i == 0 ? root_ : *extra_shards_[static_cast<std::size_t>(i - 1)];
  }

  /// Binds the calling thread to shard `shard` of this simulator for the
  /// guard's lifetime: now()/schedule()/event_queue() resolve against that
  /// shard's context. Used by setup code placing per-shard work (job start
  /// events, traffic lanes) and by the PDES worker loop itself. Nests:
  /// restores the previous binding on destruction.
  class ShardGuard {
   public:
    ShardGuard(Simulator& simulator, int shard)
        : prev_(detail::tls_shard_binding) {
      detail::tls_shard_binding = {&simulator,
                                   &simulator.shard_context(shard)};
    }
    ~ShardGuard() { detail::tls_shard_binding = prev_; }
    ShardGuard(const ShardGuard&) = delete;
    ShardGuard& operator=(const ShardGuard&) = delete;

   private:
    detail::ShardBinding prev_;
  };

  /// Telemetry hook: components reach the tracer of their simulation through
  /// here (see telemetry::tracer_for). The Simulator only stores the pointer
  /// — it never dereferences it — so sim/ stays free of telemetry/ code.
  void set_tracer(telemetry::Tracer* tracer) { tracer_ = tracer; }
  telemetry::Tracer* tracer() const { return tracer_; }

  /// Hands out small per-simulation ordinals for telemetry track ids (jobs,
  /// links). Allocation follows construction order, which is deterministic,
  /// so trace output is reproducible across runs and thread counts.
  std::uint32_t allocate_trace_ordinal() { return trace_ordinals_++; }

  /// Dense per-simulation link ordinal, the static half of a link's
  /// canonical delivery key. Construction order — identical in serial and
  /// sharded runs, since sharding is configured only after the topology
  /// exists.
  std::uint32_t allocate_link_rank() { return link_ranks_++; }

 private:
  friend class ShardGuard;

  /// The calling thread's shard context: its bound shard when executing
  /// inside this simulator's sharded run, the root context otherwise. One
  /// thread-local load plus a pointer compare on the serial hot path.
  ShardContext& ctx() {
    const detail::ShardBinding& b = detail::tls_shard_binding;
    if (b.sim == this) return *static_cast<ShardContext*>(b.ctx);
    return root_;
  }
  const ShardContext& ctx() const {
    const detail::ShardBinding& b = detail::tls_shard_binding;
    if (b.sim == this) return *static_cast<const ShardContext*>(b.ctx);
    return root_;
  }

  ShardContext root_;
  /// Shards 1..n-1; unique_ptr so contexts never relocate (worker threads
  /// hold references while shard 0 stays the inline root).
  std::vector<std::unique_ptr<ShardContext>> extra_shards_;
  bool stopped_ = false;
  telemetry::Tracer* tracer_ = nullptr;
  std::uint32_t trace_ordinals_ = 0;
  std::uint32_t link_ranks_ = 0;
};

}  // namespace mltcp::sim
