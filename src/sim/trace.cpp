#include "sim/trace.hpp"

#include <cassert>
#include <stdexcept>

namespace mltcp::sim {

RateBinner::RateBinner(SimTime bin_width) : bin_width_(bin_width) {
  assert(bin_width > 0);
}

void RateBinner::add(SimTime when, std::int64_t bytes) {
  if (when < 0) when = 0;
  const auto idx = static_cast<std::size_t>(when / bin_width_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
  bins_[idx] += bytes;
  total_bytes_ += bytes;
}

double RateBinner::rate_bps(std::size_t i) const {
  if (i >= bins_.size()) return 0.0;
  return static_cast<double>(bins_[i]) * 8.0 / to_seconds(bin_width_);
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  f_ = std::fopen(path.c_str(), "w");
  if (f_ == nullptr) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  row(header);
}

CsvWriter::~CsvWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void CsvWriter::row(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f_, "%.9g%s", values[i], i + 1 < values.size() ? "," : "\n");
  }
}

void CsvWriter::row(const std::vector<std::string>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f_, "%s%s", csv_escape(values[i]).c_str(),
                 i + 1 < values.size() ? "," : "\n");
  }
}

}  // namespace mltcp::sim
