#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace mltcp::sim {

// ---------------------------------------------------------------- slot table

std::uint32_t EventQueue::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(gens_.size());
  assert(slot != kNullSlot && "event slot table exhausted");
  if ((slot & (kSlotChunkSize - 1)) == 0) {
    chunks_.push_back(std::make_unique<SlotPayload[]>(kSlotChunkSize));
  }
  gens_.push_back(0);
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) { free_.push_back(slot); }

// ---------------------------------------------------------------- 4-ary heap

void EventQueue::push_entry(SimTime when, std::uint32_t slot,
                            std::uint32_t gen) {
  heap_.push_back(HeapEntry{when, kOrdinalBand | seq_++, slot, gen});
  sift_up(heap_.size() - 1);
}

void EventQueue::push_entry_keyed(SimTime when, std::uint64_t key,
                                  std::uint32_t slot, std::uint32_t gen) {
  assert(key < kOrdinalBand && "canonical keys live below the ordinal band");
  ++seq_;  // Keeps total_scheduled() an exact push count.
  heap_.push_back(HeapEntry{when, key, slot, gen});
  sift_up(heap_.size() - 1);
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

std::size_t EventQueue::min_child(std::size_t first_child,
                                  std::size_t n) const {
  if (first_child + 4 <= n) {
    // Full group of four: a fixed tournament of three compares, each a
    // conditional move — no data-dependent branches on effectively random
    // heap keys.
    const std::size_t a =
        before(heap_[first_child + 1], heap_[first_child]) ? first_child + 1
                                                           : first_child;
    const std::size_t b =
        before(heap_[first_child + 3], heap_[first_child + 2])
            ? first_child + 3
            : first_child + 2;
    return before(heap_[b], heap_[a]) ? b : a;
  }
  std::size_t best = first_child;
  for (std::size_t c = first_child + 1; c < n; ++c) {
    best = before(heap_[c], heap_[best]) ? c : best;
  }
  return best;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t best = min_child(first_child, n);
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::pop_front() const {
  assert(!heap_.empty());
  const HeapEntry e = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Bottom-up (Wegener) reinsertion of the displaced back element: descend
  // the min-child path to a leaf without comparing against `e` (the back
  // element almost always belongs near the bottom, so comparing on the way
  // down buys nothing but branch misses), then climb to its insertion point.
  std::size_t path[kMaxHeapDepth];
  std::size_t i = 0;
  int depth = 0;
  path[0] = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    i = min_child(first_child, n);
    path[++depth] = i;
  }
  while (depth > 0 && !before(heap_[path[depth]], e)) --depth;
  for (int d = 0; d < depth; ++d) heap_[path[d]] = heap_[path[d + 1]];
  heap_[path[depth]] = e;
}

void EventQueue::drop_dead_front() const {
  if (stale_ == 0) return;  // common case: nothing tombstoned anywhere
  while (!heap_.empty() && !entry_live(heap_[0])) {
    pop_front();
    --stale_;
  }
}

void EventQueue::maybe_compact() {
  // Lazy deletion bounds: once stale entries outnumber live ones, one O(n)
  // filter-and-rebuild pays for the ≥ n/2 cancels that created them, keeping
  // the heap within a constant factor of the live count no matter how
  // cancel/rearm-heavy the workload is. The rebuilt heap pops in the same
  // (when, seq) total order, so event execution order is unaffected.
  if (stale_ <= 64 || stale_ * 2 <= heap_.size()) return;
  std::size_t w = 0;
  for (const HeapEntry& e : heap_) {
    if (entry_live(e)) heap_[w++] = e;
  }
  heap_.resize(w);
  stale_ = 0;
  if (w > 1) {
    for (std::size_t i = (w - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
}

// ----------------------------------------------------------------- schedule

EventId EventQueue::schedule(SimTime when, EventCallback fn) {
  const std::uint32_t slot = acquire_slot();
  payload(slot).fn = std::move(fn);
  const std::uint32_t gen = ++gens_[slot];  // even -> odd: armed
  ++live_;
  push_entry(when, slot, gen);
  return make_id(slot, gen);
}

bool EventQueue::cancel(EventId id) {
  std::uint32_t slot, gen;
  if (!decode(id, slot, gen)) return false;
  if (gens_[slot] != gen) return false;
  SlotPayload& p = payload(slot);
  if (p.timer != nullptr) return false;  // timer slots cancel via their timer
  ++gens_[slot];  // odd -> even: disarmed; its heap entry is now stale
  ++stale_;
  --live_;
  p.fn.reset();
  release_slot(slot);
  maybe_compact();
  return true;
}

bool EventQueue::pending(EventId id) const {
  std::uint32_t slot, gen;
  if (!decode(id, slot, gen)) return false;
  return gens_[slot] == gen;
}

SimTime EventQueue::next_time() const {
  if (live_ == 0) return kTimeInfinity;
  drop_dead_front();
  return heap_[0].when;
}

std::uint64_t EventQueue::next_key() const {
  assert(live_ != 0 && "peek on empty queue");
  drop_dead_front();
  return heap_[0].seq;
}

bool EventQueue::pop_and_run_before_key(SimTime when_limit,
                                        std::uint64_t key_limit,
                                        SimTime* clock) {
  drop_dead_front();
  assert(!heap_.empty() && "pop on empty queue");
  const SimTime when = heap_[0].when;
  if (when > when_limit || (when == when_limit && heap_[0].seq >= key_limit)) {
    return false;
  }
  *clock = when;
  const std::uint32_t slot = heap_[0].slot;
  SlotPayload& p = payload(slot);
  __builtin_prefetch(&p);
  pop_front();
  ++gens_[slot];  // consumed: odd -> even (no stale entry; it just popped)
  --live_;
  if (p.timer == nullptr) {
    p.fn();
    p.fn.reset();
    release_slot(slot);
  } else {
    p.timer->fn_();
  }
  return true;
}

bool EventQueue::pop_and_run_before(SimTime deadline, SimTime* clock) {
  drop_dead_front();
  assert(!heap_.empty() && "pop on empty queue");
  const SimTime when = heap_[0].when;
  if (when > deadline) return false;
  *clock = when;
  const std::uint32_t slot = heap_[0].slot;
  SlotPayload& p = payload(slot);
  __builtin_prefetch(&p);
  pop_front();
  ++gens_[slot];  // consumed: odd -> even (no stale entry; it just popped)
  --live_;
  if (p.timer == nullptr) {
    p.fn();
    p.fn.reset();
    release_slot(slot);
  } else {
    p.timer->fn_();
  }
  return true;
}

SimTime EventQueue::pop_and_run() {
  drop_dead_front();
  assert(!heap_.empty() && "pop on empty queue");
  const SimTime when = heap_[0].when;
  const std::uint32_t slot = heap_[0].slot;
  SlotPayload& p = payload(slot);
  // Start pulling the payload line in while the sift below runs; the two
  // are independent and the payload is usually the colder of the two.
  __builtin_prefetch(&p);
  pop_front();
  ++gens_[slot];  // consumed: odd -> even (no stale entry; it just popped)
  --live_;
  if (p.timer == nullptr) {
    // Chunked payload storage is address-stable, so the callback runs in
    // place even if it schedules new events (which may grow the table); its
    // slot returns to the free list only after it finishes.
    p.fn();
    p.fn.reset();
    release_slot(slot);
  } else {
    // Timer fire: the callback lives in the QueueTimer (stable storage), so
    // it runs in place and may rearm itself; the slot stays bound.
    p.timer->fn_();
  }
  return when;
}

// -------------------------------------------------------------- QueueTimer

std::uint32_t EventQueue::timer_bind(QueueTimer* t) {
  const std::uint32_t slot = acquire_slot();
  payload(slot).timer = t;
  return slot;
}

void EventQueue::timer_release(std::uint32_t slot) {
  timer_cancel(slot);
  payload(slot).timer = nullptr;
  release_slot(slot);
}

void EventQueue::timer_arm(std::uint32_t slot, SimTime when) {
  if ((gens_[slot] & 1) != 0) {
    // Rearm in place: bump the generation so the superseded heap entry goes
    // stale; the callback is untouched. Two bumps keep the armed parity.
    gens_[slot] += 2;
    ++stale_;
    maybe_compact();
  } else {
    ++gens_[slot];  // even -> odd: armed
    ++live_;
  }
  push_entry(when, slot, gens_[slot]);
}

void EventQueue::timer_arm_keyed(std::uint32_t slot, SimTime when,
                                 std::uint64_t key) {
  if ((gens_[slot] & 1) != 0) {
    gens_[slot] += 2;
    ++stale_;
    maybe_compact();
  } else {
    ++gens_[slot];  // even -> odd: armed
    ++live_;
  }
  push_entry_keyed(when, key, slot, gens_[slot]);
}

void EventQueue::timer_cancel(std::uint32_t slot) {
  if ((gens_[slot] & 1) == 0) return;
  ++gens_[slot];  // odd -> even: disarmed
  ++stale_;
  --live_;
  maybe_compact();
}

void QueueTimer::bind(EventQueue& queue, EventCallback fn) {
  assert(queue_ == nullptr && "timer already bound");
  assert(fn && "timer needs a callback");
  queue_ = &queue;
  fn_ = std::move(fn);
  slot_ = queue.timer_bind(this);
}

void QueueTimer::release() {
  if (queue_ == nullptr) return;
  queue_->timer_release(slot_);
  queue_ = nullptr;
  fn_.reset();
}

void QueueTimer::arm(SimTime when) {
  assert(queue_ != nullptr && "arming an unbound timer");
  deadline_ = when;
  queue_->timer_arm(slot_, when);
}

void QueueTimer::arm_keyed(SimTime when, std::uint64_t key) {
  assert(queue_ != nullptr && "arming an unbound timer");
  deadline_ = when;
  queue_->timer_arm_keyed(slot_, when, key);
}

void QueueTimer::cancel() {
  if (queue_ != nullptr) queue_->timer_cancel(slot_);
}

}  // namespace mltcp::sim
