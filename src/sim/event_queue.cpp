#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace mltcp::sim {

EventId EventQueue::schedule(SimTime when, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Heap entries cannot be removed from the middle; erasing from `pending_`
  // tombstones the entry, and drop_dead_front() discards it when it surfaces.
  return pending_.erase(id) > 0;
}

void EventQueue::drop_dead_front() const {
  while (!heap_.empty() && pending_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  if (pending_.empty()) return kTimeInfinity;
  drop_dead_front();
  return heap_.top().when;
}

std::pair<SimTime, std::function<void()>> EventQueue::pop() {
  drop_dead_front();
  assert(!heap_.empty() && "pop on empty queue");
  // Move the entry out before running: the callback may schedule or cancel.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_.erase(e.id);
  return {e.when, std::move(e.fn)};
}

SimTime EventQueue::pop_and_run() {
  auto [when, fn] = pop();
  fn();
  return when;
}

}  // namespace mltcp::sim
