#include "sim/simulator.hpp"

namespace mltcp::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    auto [when, fn] = queue_.pop();
    now_ = when;  // the clock reads `when` while the event executes
    fn();
    ++executed_;
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    auto [when, fn] = queue_.pop();
    now_ = when;
    fn();
    ++executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace mltcp::sim
