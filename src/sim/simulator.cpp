#include "sim/simulator.hpp"

#include <cassert>

namespace mltcp::sim {

namespace detail {
// Zero-initialized: threads that never bound a shard resolve to the root
// context of whichever Simulator they call into.
thread_local ShardBinding tls_shard_binding;
}  // namespace detail

void Simulator::run() {
  ShardContext& c = ctx();
  stopped_ = false;
  while (!stopped_ && !c.queue.empty()) {
    // pop_and_run_before advances the clock before invoking the callback, so
    // the clock reads the event's timestamp while the event executes.
    c.queue.pop_and_run_before(kTimeInfinity, &c.now);
    ++c.executed;
  }
}

void Simulator::run_until(SimTime deadline) {
  ShardContext& c = ctx();
  stopped_ = false;
  while (!stopped_ && !c.queue.empty()) {
    if (!c.queue.pop_and_run_before(deadline, &c.now)) break;
    ++c.executed;
  }
  if (!stopped_ && c.now < deadline) c.now = deadline;
}

void Simulator::configure_shards(int n) {
  assert(n >= 1);
  assert(extra_shards_.empty() && "configure_shards must be called once");
  extra_shards_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    auto c = std::make_unique<ShardContext>();
    c->now = root_.now;  // shards share the root's starting clock
    extra_shards_.push_back(std::move(c));
  }
}

std::size_t Simulator::pending_events() const {
  std::size_t total = root_.queue.size();
  for (const auto& c : extra_shards_) total += c->queue.size();
  return total;
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t total = root_.executed;
  for (const auto& c : extra_shards_) total += c->executed;
  return total;
}

}  // namespace mltcp::sim
