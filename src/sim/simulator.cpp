#include "sim/simulator.hpp"

namespace mltcp::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // pop_and_run_before advances the clock before invoking the callback, so
    // the clock reads the event's timestamp while the event executes.
    queue_.pop_and_run_before(kTimeInfinity, &now_);
    ++executed_;
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    if (!queue_.pop_and_run_before(deadline, &now_)) break;
    ++executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace mltcp::sim
