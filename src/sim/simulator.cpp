#include "sim/simulator.hpp"

namespace mltcp::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // The clock reads the event's timestamp while the event executes, so it
    // is advanced before pop_and_run invokes the callback.
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed_;
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    const SimTime when = queue_.next_time();
    if (when > deadline) break;
    now_ = when;
    queue_.pop_and_run();
    ++executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace mltcp::sim
