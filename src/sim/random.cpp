#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace mltcp::sim {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  const std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(
                  static_cast<std::uint64_t>(uniform() * double(span)) %
                  span);
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

Rng Rng::fork() {
  const std::uint64_t seed =
      (std::uint64_t(next_u32()) << 32) | next_u32();
  const std::uint64_t stream =
      (std::uint64_t(next_u32()) << 32) | next_u32();
  return Rng(seed, stream);
}

}  // namespace mltcp::sim
