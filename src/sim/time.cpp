#include "sim/time.hpp"

#include <cstdio>

namespace mltcp::sim {

std::string format_time(SimTime t) {
  char buf[64];
  if (t >= seconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  } else if (t >= milliseconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_milliseconds(t));
  } else if (t >= microseconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_microseconds(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace mltcp::sim
