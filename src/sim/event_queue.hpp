#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_callback.hpp"
#include "sim/time.hpp"

namespace mltcp::sim {

/// Identifies a scheduled event so it can be cancelled. An id encodes a slot
/// index plus a per-slot generation tag, so ids from a reused slot never
/// alias an earlier event: cancel()/pending() on a stale id are exact no-ops.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class QueueTimer;

/// Min-heap of timestamped callbacks. Events at equal timestamps fire in
/// ascending order of a 64-bit tiebreak key. Ordinary events get
/// `kOrdinalBand | push-ordinal` — scheduling order (FIFO), which keeps
/// serial runs deterministic. Callers that need a tie order independent of
/// scheduling history (the requirement for sharded PDES runs to reproduce
/// serial output bit-for-bit: scheduling order is partition-dependent, see
/// src/pdes) pass an explicit canonical key below kOrdinalBand via
/// schedule_keyed()/QueueTimer::arm_keyed — link deliveries encode
/// (link rank, per-link FIFO ordinal), and scenario barriers take key 0 so
/// they apply before everything else at their instant.
///
/// Engineered for the packet hot path (three trips per simulated packet):
///  - callbacks are EventCallback (inline small-buffer storage), so the
///    steady-state schedule/fire cycle performs zero heap allocations;
///  - cancellation is generation-tagged: each event owns a slot in a
///    free-list table and its id carries the slot's generation, making
///    cancel()/pending() O(1) with no hashing. Generations use parity as the
///    armed flag (odd = armed), so liveness is a single compare against a
///    flat uint32 array that stays cache-resident;
///  - callback payloads live in chunked, address-stable storage, so a firing
///    callback runs in place (no move-out copy) even when it schedules new
///    events, and QueueTimer bindings never relocate;
///  - ordering lives in an implicit 4-ary heap of 24-byte entries
///    (timestamp, FIFO sequence, slot, generation) — shallower and more
///    cache-friendly than a binary heap of fat entries;
///  - stale heap entries (cancelled or rearmed) are dropped lazily when they
///    surface and compacted away when they outnumber live ones, bounding
///    memory under cancel/reschedule-heavy workloads (RTO rearm storms).
class EventQueue {
 public:
  /// High bit of the tiebreak key: set on ordinary (push-ordinal) events,
  /// clear on canonical keys, so every canonical key sorts before every
  /// ordinary event at the same timestamp.
  static constexpr std::uint64_t kOrdinalBand = 1ull << 63;
  /// Canonical key of a scenario barrier event: applies before anything
  /// else — deliveries included — at its instant (the serial twin of the
  /// sharded runner's global-barrier semantics).
  static constexpr std::uint64_t kBarrierKey = 0;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to run at absolute time `when`.
  EventId schedule(SimTime when, EventCallback fn);

  /// Same, but constructs the callable directly in slot storage — the
  /// closure never exists on the caller's stack, saving a capture-sized
  /// copy per schedule on the packet hot path.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventId schedule(SimTime when, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    payload(slot).fn.emplace(std::forward<F>(fn));
    const std::uint32_t gen = ++gens_[slot];  // even -> odd: armed
    ++live_;
    push_entry(when, slot, gen);
    return make_id(slot, gen);
  }

  /// Schedules `fn` at `when` with an explicit canonical tiebreak key
  /// (must be below kOrdinalBand). Used for events whose same-timestamp
  /// order must not depend on scheduling history — see the class comment.
  template <typename F>
  EventId schedule_keyed(SimTime when, std::uint64_t key, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    payload(slot).fn.emplace(std::forward<F>(fn));
    const std::uint32_t gen = ++gens_[slot];  // even -> odd: armed
    ++live_;
    push_entry_keyed(when, key, slot, gen);
    return make_id(slot, gen);
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// True when an event with this id is still waiting to fire.
  bool pending(EventId id) const;

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Timestamp of the next live event; kTimeInfinity when empty.
  SimTime next_time() const;

  /// Tiebreak key of the next live event. Precondition: !empty().
  std::uint64_t next_key() const;

  /// Pops and runs the next live event, returning its timestamp.
  /// Precondition: !empty().
  SimTime pop_and_run();

  /// Fused peek + pop for the simulator's run loop: if the next live event
  /// fires at or before `deadline`, stores its timestamp to `*clock` (before
  /// invoking the callback, so the clock reads the event's time while it
  /// executes), runs it, and returns true. Otherwise leaves the event queued
  /// and returns false. One front-of-heap inspection per event instead of
  /// the two a separate next_time()/pop_and_run() pair costs.
  /// Precondition: !empty().
  bool pop_and_run_before(SimTime deadline, SimTime* clock);

  /// Like pop_and_run_before, but against the lexicographic (time, key)
  /// bound: runs the front event iff (when, key) < (when_limit, key_limit).
  /// The sharded runner's local-burst primitive — it drains exactly the
  /// events that canonically precede the next cross-shard import.
  /// Precondition: !empty().
  bool pop_and_run_before_key(SimTime when_limit, std::uint64_t key_limit,
                              SimTime* clock);

  std::uint64_t total_scheduled() const { return seq_; }

  /// Backing-store sizes, exposed so tests can assert that cancel-heavy
  /// workloads keep memory bounded (see test_event_engine.cpp).
  std::size_t heap_entries() const { return heap_.size(); }
  std::size_t slot_capacity() const { return gens_.size(); }

 private:
  friend class QueueTimer;

  static constexpr std::uint32_t kNullSlot = 0xffffffffu;
  static constexpr std::uint32_t kSlotChunkShift = 8;
  static constexpr std::uint32_t kSlotChunkSize = 1u << kSlotChunkShift;
  /// Deepest possible 4-ary heap path: ceil(log4(2^64)) + 1 levels.
  static constexpr int kMaxHeapDepth = 33;

  /// One heap element: 24 bytes, four per 64-byte span. `seq` is the
  /// tiebreak key at equal timestamps — `kOrdinalBand | push ordinal` for
  /// ordinary events (FIFO), a canonical key below the band otherwise;
  /// `gen` must match the slot's current generation for the entry to be
  /// live.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Per-slot storage that must not move: one-shot callbacks run in place
  /// from here, and timer slots keep a back-pointer to their QueueTimer
  /// (which owns the callback) across rearms. Allocated in fixed-size chunks
  /// so addresses are stable while the table grows.
  struct SlotPayload {
    // Metadata first: for small captures, the timer tag and the callback
    // header all land on the slot's first cache line.
    QueueTimer* timer = nullptr;
    EventCallback fn;
  };

  /// (when, seq) lexicographic min-order. Written without short-circuiting
  /// so the compiler can select branchlessly — heap keys are effectively
  /// random, and a mispredicting branch per comparison dominates sift cost.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    return (a.when < b.when) |
           ((a.when == b.when) & (a.seq < b.seq));
  }

  /// Live iff the slot's generation still matches. Entries are only pushed
  /// with odd (armed) generations, and every disarm bumps the counter, so a
  /// single compare also covers the armed check.
  bool entry_live(const HeapEntry& e) const {
    return gens_[e.slot] == e.gen;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }
  /// Decodes an id; returns false for ids this queue never issued (issued
  /// ids always carry an odd generation).
  bool decode(EventId id, std::uint32_t& slot, std::uint32_t& gen) const {
    const std::uint64_t hi = id >> 32;
    gen = static_cast<std::uint32_t>(id);
    if (hi == 0 || hi > gens_.size() || (gen & 1) == 0) return false;
    slot = static_cast<std::uint32_t>(hi - 1);
    return true;
  }

  SlotPayload& payload(std::uint32_t slot) {
    return chunks_[slot >> kSlotChunkShift][slot & (kSlotChunkSize - 1)];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  void push_entry(SimTime when, std::uint32_t slot, std::uint32_t gen);
  void push_entry_keyed(SimTime when, std::uint64_t key, std::uint32_t slot,
                        std::uint32_t gen);
  void sift_up(std::size_t i);
  /// Index of the smallest of the up-to-four children starting at
  /// `first_child` (heap size `n`).
  std::size_t min_child(std::size_t first_child, std::size_t n) const;
  void sift_down(std::size_t i) const;
  void pop_front() const;
  /// Removes cancelled entries sitting at the heap top.
  void drop_dead_front() const;
  /// Rebuilds the heap without stale entries once they outnumber live ones.
  void maybe_compact();

  // QueueTimer support (slots that persist across fires).
  std::uint32_t timer_bind(QueueTimer* t);
  void timer_release(std::uint32_t slot);
  void timer_arm(std::uint32_t slot, SimTime when);
  void timer_arm_keyed(std::uint32_t slot, SimTime when, std::uint64_t key);
  void timer_cancel(std::uint32_t slot);
  bool timer_pending(std::uint32_t slot) const {
    return (gens_[slot] & 1) != 0;
  }

  // `mutable` so const peeks (next_time) can drop tombstoned entries, as the
  // previous implementation did.
  mutable std::vector<HeapEntry> heap_;
  mutable std::size_t stale_ = 0;  ///< Heap entries with a mismatched gen.
  std::vector<std::uint32_t> gens_;  ///< Per-slot generation; odd = armed.
  std::vector<std::unique_ptr<SlotPayload[]>> chunks_;
  /// Recycled slot indices, LIFO. A plain stack (not an intrusive list
  /// through the payloads) so acquiring a slot never chases a pointer into
  /// cold payload memory.
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;      ///< Armed (pending) events.
  std::uint64_t seq_ = 0;     ///< Total pushes; FIFO tiebreak source.
};

/// Reusable timer handle for periodic / frequently rearmed events (link
/// transmission-done, TCP RTO, pacing, delayed ACKs). The callback is bound
/// once and owned by the timer; arm() replaces any pending deadline in
/// place, so a rearm is one heap push — no callback destruction,
/// reconstruction or allocation, and no per-rearm id to track.
///
/// Determinism: a rearm takes a fresh FIFO sequence number, so event
/// ordering is identical to the cancel + schedule pattern it replaces.
///
/// Lifetime rules: the timer must outlive its pending deadline's fire (it
/// cancels on destruction) and must be destroyed before the EventQueue it is
/// bound to. The callback must not destroy its own timer from within an
/// invocation.
class QueueTimer {
 public:
  QueueTimer() = default;
  QueueTimer(EventQueue& queue, EventCallback fn) {
    bind(queue, std::move(fn));
  }
  ~QueueTimer() { release(); }

  QueueTimer(const QueueTimer&) = delete;
  QueueTimer& operator=(const QueueTimer&) = delete;

  /// Binds the timer to a queue and installs its callback. Must be unbound.
  void bind(EventQueue& queue, EventCallback fn);
  /// Cancels and returns the slot; the timer becomes unbound.
  void release();
  bool bound() const { return queue_ != nullptr; }

  /// (Re)arms the timer to fire at absolute time `when`, replacing any
  /// pending deadline: the timer fires once, at the latest deadline set.
  void arm(SimTime when);
  /// Same, with an explicit canonical tiebreak key (see
  /// EventQueue::schedule_keyed).
  void arm_keyed(SimTime when, std::uint64_t key);
  /// Cancels the pending deadline, if any. The binding survives.
  void cancel();
  bool pending() const {
    return queue_ != nullptr && queue_->timer_pending(slot_);
  }
  /// Deadline of the pending fire; meaningless unless pending().
  SimTime deadline() const { return deadline_; }
  /// The queue this timer is bound to (null when unbound). Lets sim::Timer
  /// assert that a lazily attached timer is only rearmed from its own shard.
  EventQueue* queue() const { return queue_; }

 private:
  friend class EventQueue;

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  SimTime deadline_ = 0;
  EventCallback fn_;
};

}  // namespace mltcp::sim
