#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace mltcp::sim {

/// Identifies a scheduled event so it can be cancelled. Ids are never reused
/// within one queue instance.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of timestamped callbacks. Events at equal timestamps fire in
/// scheduling order (FIFO), which keeps runs deterministic.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to run at absolute time `when`.
  EventId schedule(SimTime when, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// True when an event with this id is still waiting to fire.
  bool pending(EventId id) const { return pending_.count(id) > 0; }

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Timestamp of the next live event; kTimeInfinity when empty.
  SimTime next_time() const;

  /// Removes the next live event and returns (timestamp, callback) without
  /// running it, so the caller can advance its clock first.
  /// Precondition: !empty().
  std::pair<SimTime, std::function<void()>> pop();

  /// Pops and runs the next live event, returning its timestamp.
  /// Precondition: !empty().
  SimTime pop_and_run();

  std::uint64_t total_scheduled() const { return next_id_ - 1; }

 private:
  struct Entry {
    SimTime when = 0;
    EventId id = kInvalidEventId;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  /// Removes cancelled entries sitting at the heap top.
  void drop_dead_front() const;

  // `mutable` so const peeks (next_time) can drop tombstoned entries.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
};

}  // namespace mltcp::sim
