#pragma once

#include <cstdint>

namespace mltcp::sim {

/// PCG32 pseudo-random generator (O'Neill, pcg-random.org): small, fast and
/// statistically strong enough for workload noise. Seeded explicitly so every
/// experiment is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean and standard deviation (Box-Muller).
  double normal(double mean, double stddev);

  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Independent generator derived from this one; used to give each model
  /// component its own stream so adding a component never perturbs others.
  Rng fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace mltcp::sim
