#pragma once

#include <cstdint>

namespace mltcp::sim {

/// One splitmix64 step (Steele et al.): advances `state` by the golden-ratio
/// increment and returns a full-avalanche mix of it. The single shared
/// definition of the stream the fault/drop/ECMP machinery already uses —
/// deterministic across runs, machines and thread counts.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from one splitmix64 step.
constexpr double splitmix64_uniform(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Derives an independent stream seed from a (run seed, component salt)
/// pair: two splitmix64 steps over the mixed input. Components that draw
/// randomness inside campaign run bodies (traffic arrivals, per-link fault
/// streams) must seed from this instead of sharing an Rng, so serial and
/// MLTCP_THREADS=N executions consume identical streams per run.
constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t state = seed ^ (salt * 0xbf58476d1ce4e5b9ULL);
  splitmix64(state);
  return splitmix64(state);
}

/// PCG32 pseudo-random generator (O'Neill, pcg-random.org): small, fast and
/// statistically strong enough for workload noise. Seeded explicitly so every
/// experiment is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean and standard deviation (Box-Muller).
  double normal(double mean, double stddev);

  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Independent generator derived from this one; used to give each model
  /// component its own stream so adding a component never perturbs others.
  Rng fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace mltcp::sim
