#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace mltcp::net {

/// Cost accounting for one build_routes() pass, exposed so tests and
/// benchmarks can assert the build is O(V·E): one BFS per destination host,
/// never per (source, destination) pair.
struct RouteBuildStats {
  std::int64_t destinations = 0;    ///< Hosts routed to (BFS roots).
  std::int64_t directed_edges = 0;  ///< Directed links in the topology.
  std::int64_t edges_scanned = 0;   ///< Adjacency entries touched, total.
  double build_ms = 0.0;            ///< Wall time of the pass.
};

/// Owns every node and link of one simulated network and computes static
/// shortest-path routes (with equal-cost sets where the fabric offers
/// multiple shortest paths — see Switch::set_routes for the ECMP contract).
class Topology {
 public:
  explicit Topology(sim::Simulator& simulator) : sim_(simulator) {}

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  Host* add_host(const std::string& name);
  Switch* add_switch(const std::string& name);

  /// Creates a bidirectional connection (two directed links) between `a` and
  /// `b`. If an endpoint is a Host its uplink is set to the new egress link.
  void connect(Node& a, Node& b, double rate_bps, sim::SimTime delay,
               const QueueFactory& queue_factory);

  /// Populates every switch's forwarding table with BFS shortest paths,
  /// installing the full equal-cost next-hop set at every switch. One BFS
  /// per destination host: O(hosts · edges) total, so cluster-sized fabrics
  /// build in milliseconds (see route_build_stats()).
  /// Must be called after all connect() calls and before traffic starts.
  void build_routes();

  /// Costs of the most recent route pass — full build_routes() or an
  /// incremental set_link_state repair (whose `destinations` then counts
  /// only the destinations actually re-routed).
  const RouteBuildStats& route_build_stats() const { return route_stats_; }

  /// Flips one directed link's administrative state and repairs routes.
  /// Link-down is incremental: only destinations whose installed routes use
  /// the link are re-BFSed (discovered by scanning switch route tables).
  /// Link-up triggers a full rebuild — a healed link can shorten the path
  /// to any destination, so there is no cheap sound subset. BFS discovery
  /// checks the forward link of each pair (exact when both directions flip
  /// together via set_link_pair_state; an approximation for asymmetric
  /// single-direction faults, where the ECMP candidate check is still
  /// exact). No-op if the link is already in the requested state.
  void set_link_state(Link* link, bool up);

  /// Flips both directions between `a` and `b` (the common fault model:
  /// a cable cut takes out the pair). Repairs routes once for the union of
  /// affected destinations.
  void set_link_pair_state(Node& a, Node& b, bool up);

  /// The directed link from `a` to `b`, or nullptr if they are not adjacent.
  Link* link_between(const Node& a, const Node& b) const;

  /// Node lookup by construction name (linear scan; nullptr if absent).
  /// Scenario scripts reference nodes by name, resolved once at apply time.
  Node* find_node(const std::string& name) const;

  const std::vector<Host*>& hosts() const { return hosts_; }
  const std::vector<Switch*>& switches() const { return switches_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  /// Outgoing (neighbour, link) pairs per node, indexed by the dense NodeId,
  /// in connect() order. This is how consumers recover a directed link's
  /// *source* node (links only store their destination): the PDES
  /// partitioner walks it to classify every link as shard-internal or cut.
  const std::vector<std::vector<std::pair<NodeId, Link*>>>& adjacency() const {
    return adjacency_;
  }

  Node* node(NodeId id) const;

  sim::Simulator& simulator() { return sim_; }

  /// Registers the (single) observer notified whenever routes or link
  /// capacities change. Route-affecting entry points (build_routes,
  /// set_link_state, set_link_pair_state) fire it themselves; callers that
  /// mutate link state directly (Link::set_rate_bps / set_blackhole /
  /// set_fault_drop) must call notify_changed() afterwards. A flow-level
  /// backend uses this to re-resolve routes and recompute its allocation;
  /// the packet backend needs no observer — packets discover the new state
  /// hop by hop.
  void set_change_hook(std::function<void()> hook) {
    change_hook_ = std::move(hook);
  }

  /// Fires the change hook (no-op if none is installed).
  void notify_changed() {
    if (change_hook_) change_hook_();
  }

 private:
  /// One BFS from destination `d` over the reverse graph, installing (or
  /// clearing) every switch's route towards `d`. Skips down links. The
  /// scratch vectors are caller-owned so a pass over many destinations
  /// reuses them.
  void rebuild_destination(NodeId d, std::vector<std::int32_t>& dist,
                           std::vector<NodeId>& frontier,
                           std::vector<Link*>& ecmp);
  /// Incremental repair shared by the set_link_state entry points:
  /// re-routes exactly `affected` (sorted, deduped) destinations.
  void repair_destinations(std::vector<NodeId>& affected);

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
  std::map<std::pair<NodeId, NodeId>, Link*> by_endpoints_;
  /// Outgoing (neighbour, link) pairs per node, indexed by the dense
  /// NodeId; entries appear in connect() order, which fixes ECMP candidate
  /// order.
  std::vector<std::vector<std::pair<NodeId, Link*>>> adjacency_;
  std::vector<std::uint8_t> is_switch_;  ///< Indexed by NodeId.
  RouteBuildStats route_stats_;
  std::function<void()> change_hook_;
};

/// A dumbbell: `hosts_per_side` hosts on each side of a two-switch
/// bottleneck, the topology of the paper's testbed.
struct DumbbellConfig {
  int hosts_per_side = 4;
  double host_rate_bps = 10e9;
  double bottleneck_rate_bps = 1e9;
  sim::SimTime host_delay = sim::microseconds(5);
  sim::SimTime bottleneck_delay = sim::microseconds(10);
  QueueFactory host_queue;        ///< Defaults to a deep drop-tail.
  QueueFactory bottleneck_queue;  ///< Defaults to a BDP-scaled drop-tail.
};

struct Dumbbell {
  std::unique_ptr<Topology> topology;
  std::vector<Host*> left;
  std::vector<Host*> right;
  Switch* left_switch = nullptr;
  Switch* right_switch = nullptr;
  Link* bottleneck = nullptr;          ///< left -> right direction.
  Link* bottleneck_reverse = nullptr;  ///< right -> left direction.
};

Dumbbell make_dumbbell(sim::Simulator& simulator, const DumbbellConfig& cfg);

/// A single-switch star with `n_hosts` hosts, each on its own access link.
struct StarConfig {
  int n_hosts = 4;
  double rate_bps = 1e9;
  sim::SimTime delay = sim::microseconds(10);
  QueueFactory queue;
};

struct Star {
  std::unique_ptr<Topology> topology;
  std::vector<Host*> hosts;
  Switch* hub = nullptr;
};

Star make_star(sim::Simulator& simulator, const StarConfig& cfg);

/// Two-tier leaf-spine: `racks` ToR switches with `hosts_per_rack` hosts
/// each, every ToR connected to every one of `spines` spine switches.
struct LeafSpineConfig {
  int racks = 2;
  int hosts_per_rack = 4;
  int spines = 1;
  double host_rate_bps = 10e9;
  double fabric_rate_bps = 10e9;
  sim::SimTime host_delay = sim::microseconds(5);
  sim::SimTime fabric_delay = sim::microseconds(10);
  QueueFactory queue;
};

struct LeafSpine {
  std::unique_ptr<Topology> topology;
  std::vector<std::vector<Host*>> racks;  ///< racks[r][h]
  std::vector<Switch*> tors;
  std::vector<Switch*> spines;
};

LeafSpine make_leaf_spine(sim::Simulator& simulator,
                          const LeafSpineConfig& cfg);

}  // namespace mltcp::net
