#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mltcp::net {

using NodeId = std::int32_t;
using FlowId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr FlowId kInvalidFlow = -1;

/// Default maximum transmission unit, matching Algorithm 1 in the paper.
inline constexpr std::int32_t kDefaultMtu = 1500;

/// Per-packet protocol overhead we model (IP + TCP headers).
inline constexpr std::int32_t kHeaderBytes = 40;

/// Wire size of a pure ACK.
inline constexpr std::int32_t kAckBytes = kHeaderBytes;

enum class PacketType : std::uint8_t { kData, kAck };

/// One SACK block: segments [start, end) received out of order.
struct SackBlock {
  std::int64_t start = 0;
  std::int64_t end = 0;
  bool empty() const { return end <= start; }
};

/// Maximum SACK blocks carried per ACK (as with TCP options space).
inline constexpr int kMaxSackBlocks = 3;

/// A network packet. Plain value type (no invariant beyond field semantics),
/// copied by value through queues and links.
struct Packet {
  FlowId flow = kInvalidFlow;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PacketType type = PacketType::kData;

  /// Data: segment sequence number (in MSS-sized segments).
  /// ACK: cumulative acknowledgement (next expected segment).
  std::int64_t seq = 0;

  /// Wire size including headers.
  std::int32_t size_bytes = kDefaultMtu;

  /// --- ECN (used by DCTCP) ---
  bool ecn_capable = false;  ///< Sender negotiated ECN.
  bool ce = false;           ///< Congestion Experienced, set by queues.
  bool ece = false;          ///< ECN Echo, set by receiver on ACKs.

  /// pFabric priority: remaining bytes of the flow when the packet was sent.
  /// Smaller value = higher priority. 0 means "not using priorities".
  std::int64_t priority = 0;

  /// Timestamp option: set by the sender on data packets and echoed back on
  /// ACKs, used for RTT sampling.
  sim::SimTime tx_timestamp = 0;

  /// SACK option (ACKs only): out-of-order ranges held by the receiver.
  SackBlock sack[kMaxSackBlocks]{};

  /// Data payload bytes (size_bytes - headers); 0 for ACKs.
  std::int32_t payload_bytes() const {
    return type == PacketType::kData ? size_bytes - kHeaderBytes : 0;
  }
};

}  // namespace mltcp::net
