#pragma once

#include <cassert>
#include <cstdint>

#include "sim/time.hpp"

namespace mltcp::net {

using NodeId = std::int32_t;
using FlowId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr FlowId kInvalidFlow = -1;

/// Default maximum transmission unit, matching Algorithm 1 in the paper.
inline constexpr std::int32_t kDefaultMtu = 1500;

/// Per-packet protocol overhead we model (IP + TCP headers).
inline constexpr std::int32_t kHeaderBytes = 40;

/// Wire size of a pure ACK.
inline constexpr std::int32_t kAckBytes = kHeaderBytes;

enum class PacketType : std::uint8_t { kData, kAck };

/// One SACK block: segments [start, end) received out of order.
struct SackBlock {
  std::int64_t start = 0;
  std::int64_t end = 0;
  bool empty() const { return end <= start; }
};

/// Maximum SACK blocks carried per ACK (as with TCP options space).
inline constexpr int kMaxSackBlocks = 3;

/// A network packet. Plain value type (no invariant beyond field semantics),
/// copied by value through queues and links — and captured by value in the
/// propagation-delivery closure of every hop — so the layout is kept
/// compact: flags are single bits, and SACK blocks are stored as 32-bit
/// (offset, length) pairs relative to `seq` instead of absolute 64-bit
/// ranges (a SACK block always sits a window's width above the cumulative
/// ACK, which is far below 2^32 segments).
struct Packet {
  /// Data: segment sequence number (in MSS-sized segments).
  /// ACK: cumulative acknowledgement (next expected segment).
  std::int64_t seq = 0;

  /// pFabric priority: remaining bytes of the flow when the packet was sent.
  /// Smaller value = higher priority. 0 means "not using priorities".
  std::int64_t priority = 0;

  /// Timestamp option: set by the sender on data packets and echoed back on
  /// ACKs, used for RTT sampling.
  sim::SimTime tx_timestamp = 0;

  FlowId flow = kInvalidFlow;

  /// Wire size including headers.
  std::int32_t size_bytes = kDefaultMtu;

  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;

  PacketType type = PacketType::kData;

  /// --- ECN (used by DCTCP) ---
  std::uint8_t ecn_capable : 1 = 0;  ///< Sender negotiated ECN.
  std::uint8_t ce : 1 = 0;           ///< Congestion Experienced, set by queues.
  std::uint8_t ece : 1 = 0;          ///< ECN Echo, set by receiver on ACKs.

  /// Populated SACK blocks (ACKs only); read them through sack().
  std::uint8_t num_sack = 0;

 private:
  /// SACK option storage: block i covers segments
  /// [seq + sack_off_[i], seq + sack_off_[i] + sack_len_[i]).
  std::uint32_t sack_off_[kMaxSackBlocks] = {};
  std::uint32_t sack_len_[kMaxSackBlocks] = {};

 public:
  int sack_count() const { return num_sack; }

  /// Block `i` as an absolute range. Precondition: i < sack_count().
  SackBlock sack(int i) const {
    return SackBlock{seq + sack_off_[i],
                     seq + sack_off_[i] + sack_len_[i]};
  }

  /// Appends a SACK block for segments [start, end). `seq` (the cumulative
  /// ACK) must already be set; blocks lie above it by construction.
  void add_sack(std::int64_t start, std::int64_t end) {
    assert(num_sack < kMaxSackBlocks);
    assert(start > seq && end > start);
    assert(start - seq <= UINT32_MAX && end - start <= UINT32_MAX);
    sack_off_[num_sack] = static_cast<std::uint32_t>(start - seq);
    sack_len_[num_sack] = static_cast<std::uint32_t>(end - start);
    ++num_sack;
  }

  /// Data payload bytes (size_bytes - headers); 0 for ACKs.
  std::int32_t payload_bytes() const {
    return type == PacketType::kData ? size_bytes - kHeaderBytes : 0;
  }
};

/// Every queue hop and propagation event copies a Packet; a pure ACK used to
/// drag a 48-byte zero-initialized SackBlock[3] through each copy. Keep the
/// struct at its current 72 bytes (fits the inline-callback capture budget
/// alongside a pointer; see sim/event_callback.hpp) — grow it only with a
/// deliberate decision here.
static_assert(sizeof(Packet) == 72, "Packet layout grew; see comment above");

}  // namespace mltcp::net
