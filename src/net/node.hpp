#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"

namespace mltcp::net {

/// A device in the topology that can receive packets.
class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  virtual void receive(Packet pkt) = 0;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

/// Output-queued switch with a static forwarding table (destination node ->
/// egress link) computed by the topology's route builder.
class Switch : public Node {
 public:
  using Node::Node;

  void receive(Packet pkt) override;

  void set_route(NodeId dst, Link* egress) { routes_[dst] = egress; }
  Link* route(NodeId dst) const;

  std::int64_t forwarded_packets() const { return forwarded_; }
  std::int64_t routeless_drops() const { return routeless_drops_; }

 private:
  std::unordered_map<NodeId, Link*> routes_;
  std::int64_t forwarded_ = 0;
  std::int64_t routeless_drops_ = 0;
};

/// End host: demultiplexes received packets to per-flow handlers and sends
/// all outbound traffic over its single uplink.
class Host : public Node {
 public:
  using PacketHandler = std::function<void(const Packet&)>;

  using Node::Node;

  void receive(Packet pkt) override;

  /// Sends a packet out the uplink. The packet's `src` is stamped with this
  /// host's id.
  void send(Packet pkt);

  void set_uplink(Link* uplink) { uplink_ = uplink; }
  Link* uplink() const { return uplink_; }

  /// Registers the receive handler for one flow. At most one handler per
  /// (flow, packet-type-class); data and ACKs of a flow arrive at different
  /// hosts so a single map suffices.
  void register_flow(FlowId flow, PacketHandler handler);
  void unregister_flow(FlowId flow);

  std::int64_t delivered_packets() const { return delivered_; }
  std::int64_t unclaimed_packets() const { return unclaimed_; }

 private:
  Link* uplink_ = nullptr;
  std::unordered_map<FlowId, PacketHandler> handlers_;
  std::int64_t delivered_ = 0;
  std::int64_t unclaimed_ = 0;
};

}  // namespace mltcp::net
