#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"

namespace mltcp::sim {
class Simulator;
}

namespace mltcp::net {

/// A device in the topology that can receive packets.
class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Packets travel the hop chain (deliver -> receive -> send -> enqueue) by
  /// reference; the only copies are at rest points (queue storage, the
  /// transmit slot, the in-flight delivery closure).
  virtual void receive(const Packet& pkt) = 0;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

/// Output-queued switch with a static forwarding table computed by the
/// topology's route builder. Node ids are dense (assigned by the topology),
/// so the table is a flat vector indexed by destination id: each entry is a
/// span into a shared egress pool, holding one link on single-path routes
/// and the full equal-cost set where ECMP applies. The hot path is one
/// bounds check, one entry load and (for ECMP) one flow-hash — no hashing
/// or pointer chasing on single-path forwarding.
class Switch : public Node {
 public:
  using Node::Node;

  void receive(const Packet& pkt) override;

  /// Installs `egress` as the only route towards `dst` (replacing any
  /// previous set).
  void set_route(NodeId dst, Link* egress);

  /// Installs an equal-cost set: flows hash across `egresses`
  /// deterministically (pure function of the flow id — stable across runs,
  /// machines and MLTCP_THREADS values). Order matters: candidate order is
  /// part of the routing contract.
  void set_routes(NodeId dst, const std::vector<Link*>& egresses);

  /// Drops all installed routes and pre-sizes the table for ids < n_nodes.
  /// Called by Topology::build_routes() before repopulating.
  void clear_routes(std::size_t n_nodes);

  /// Drops only the route(s) towards `dst`. The abandoned pool span stays
  /// allocated until the next full build_routes() — bounded growth per
  /// incremental repair, reclaimed wholesale (see set_routes).
  void clear_route(NodeId dst);

  /// Appends to `out` every destination whose installed egress set contains
  /// `link`. Linear scan of the route table — the incremental route repair
  /// in Topology::set_link_state runs it once per switch per fault, which
  /// beats maintaining an inverted link->destinations index on the hot
  /// forwarding structures.
  void routes_using(const Link* link, std::vector<NodeId>& out) const;

  /// Primary (first) egress towards `dst`, or nullptr when unreachable.
  Link* route(NodeId dst) const;
  /// The egress the ECMP hash selects for `flow`, or nullptr.
  Link* route_for_flow(NodeId dst, FlowId flow) const;
  /// Number of equal-cost egresses installed towards `dst` (0 = no route).
  std::size_t route_width(NodeId dst) const;

  /// Enables tracing of routeless drops (Category::kQueue, on this
  /// switch's track). Set by the owning topology.
  void set_trace_context(sim::Simulator* sim) { trace_sim_ = sim; }

  std::int64_t forwarded_packets() const { return forwarded_; }
  std::int64_t routeless_drops() const { return routeless_drops_; }

 private:
  /// Span into pool_: `count` egresses starting at `base`; count == 0 means
  /// no route.
  struct RouteEntry {
    std::uint32_t base = 0;
    std::uint32_t count = 0;
  };

  void trace_routeless_drop(const Packet& pkt) const;

  std::vector<RouteEntry> routes_;  ///< Indexed by destination NodeId.
  std::vector<Link*> pool_;         ///< Shared egress storage for all spans.
  sim::Simulator* trace_sim_ = nullptr;
  std::int64_t forwarded_ = 0;
  std::int64_t routeless_drops_ = 0;
};

/// End host: demultiplexes received packets to per-flow handlers and sends
/// all outbound traffic over its single uplink. Flow ids are dense (the
/// workload layer assigns them sequentially), so demux is a flat table
/// indexed by flow id; each slot carries a generation counter so a stale
/// handle from a destroyed flow can never unregister a reused id.
class Host : public Node {
 public:
  using PacketHandler = std::function<void(const Packet&)>;

  /// Identifies one registration: flow id plus the slot generation at
  /// registration time. Default-constructed handles are inert.
  struct FlowHandle {
    FlowId flow = kInvalidFlow;
    std::uint32_t gen = 0;
  };

  using Node::Node;

  void receive(const Packet& pkt) override;

  /// Sends a packet out the uplink. The packet's `src` is stamped with this
  /// host's id.
  void send(const Packet& pkt);

  void set_uplink(Link* uplink) { uplink_ = uplink; }
  Link* uplink() const { return uplink_; }

  /// Registers the receive handler for one flow and returns a handle for
  /// generation-checked unregistration. At most one handler per flow; data
  /// and ACKs of a flow arrive at different hosts so a single table
  /// suffices. Registering over a live handler replaces it (and invalidates
  /// handles to the previous registration).
  FlowHandle register_flow(FlowId flow, PacketHandler handler);

  /// Unconditionally removes the handler for `flow` (if any).
  void unregister_flow(FlowId flow);
  /// Removes the handler only if `handle` still names the live
  /// registration; a stale handle (the id was reused since) is a no-op.
  void unregister_flow(const FlowHandle& handle);

  std::int64_t delivered_packets() const { return delivered_; }
  std::int64_t unclaimed_packets() const { return unclaimed_; }

 private:
  struct HandlerSlot {
    PacketHandler handler;     ///< Empty = unregistered.
    std::uint32_t gen = 0;     ///< Bumped on every register/unregister.
  };

  Link* uplink_ = nullptr;
  std::vector<HandlerSlot> handlers_;  ///< Indexed by FlowId.
  std::int64_t delivered_ = 0;
  std::int64_t unclaimed_ = 0;
};

}  // namespace mltcp::net
