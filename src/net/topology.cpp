#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace mltcp::net {

Host* Topology::add_host(const std::string& name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  auto host = std::make_unique<Host>(id, name);
  Host* ptr = host.get();
  nodes_.push_back(std::move(host));
  hosts_.push_back(ptr);
  adjacency_.emplace_back();
  is_switch_.push_back(0);
  return ptr;
}

Switch* Topology::add_switch(const std::string& name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  auto sw = std::make_unique<Switch>(id, name);
  Switch* ptr = sw.get();
  ptr->set_trace_context(&sim_);
  nodes_.push_back(std::move(sw));
  switches_.push_back(ptr);
  adjacency_.emplace_back();
  is_switch_.push_back(1);
  return ptr;
}

void Topology::connect(Node& a, Node& b, double rate_bps, sim::SimTime delay,
                       const QueueFactory& queue_factory) {
  assert(queue_factory != nullptr);
  auto make_link = [&](Node& from, Node& to) {
    auto link = std::make_unique<Link>(
        sim_, from.name() + "->" + to.name(), rate_bps, delay, queue_factory(),
        &to);
    Link* ptr = link.get();
    links_.push_back(std::move(link));
    by_endpoints_[{from.id(), to.id()}] = ptr;
    adjacency_[static_cast<std::size_t>(from.id())].emplace_back(to.id(), ptr);
    if (auto* host = dynamic_cast<Host*>(&from)) host->set_uplink(ptr);
    return ptr;
  };
  make_link(a, b);
  make_link(b, a);
}

void Topology::build_routes() {
  const auto t0 = std::chrono::steady_clock::now();
  route_stats_ = RouteBuildStats{};
  for (const auto& adj : adjacency_) {
    route_stats_.directed_edges += static_cast<std::int64_t>(adj.size());
  }

  const std::size_t n = nodes_.size();
  for (Switch* sw : switches_) sw->clear_routes(n);

  std::vector<std::int32_t> dist(n);
  std::vector<NodeId> frontier;
  frontier.reserve(n);
  std::vector<Link*> ecmp;
  for (const Host* dst_host : hosts_) {
    rebuild_destination(dst_host->id(), dist, frontier, ecmp);
    ++route_stats_.destinations;
  }

  route_stats_.build_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  // O(V·E) guard: each destination touches every directed edge at most
  // twice (once discovering distances, once collecting ECMP candidates).
  assert(route_stats_.edges_scanned <=
         2 * route_stats_.directed_edges *
             std::max<std::int64_t>(route_stats_.destinations, 1));
  notify_changed();
}

void Topology::rebuild_destination(NodeId d, std::vector<std::int32_t>& dist,
                                   std::vector<NodeId>& frontier,
                                   std::vector<Link*>& ecmp) {
  // Stale routes towards d must go first: a repair after a fault may find
  // fewer (or no) paths, and a leftover span would keep forwarding into the
  // dead link.
  for (Switch* sw : switches_) sw->clear_route(d);

  // One BFS over the reverse graph (links are paired, so adjacency doubles
  // as reverse adjacency). dist[v] is v's hop count to the destination; a
  // switch's equal-cost next hops are its neighbours one hop closer. Hosts
  // do not forward transit traffic, so only the destination itself and
  // switches are expanded. Down links do not carry distance — checked on
  // the forward member of the pair during discovery (exact under
  // set_link_pair_state; see that header comment for the asymmetric case).
  dist.assign(nodes_.size(), -1);
  frontier.clear();
  dist[static_cast<std::size_t>(d)] = 0;
  frontier.push_back(d);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const auto u = static_cast<std::size_t>(frontier[head]);
    if (frontier[head] != d && !is_switch_[u]) continue;
    for (const auto& [v, link] : adjacency_[u]) {
      ++route_stats_.edges_scanned;
      if (!link->up()) continue;
      const auto vi = static_cast<std::size_t>(v);
      if (dist[vi] < 0) {
        dist[vi] = dist[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  for (Switch* sw : switches_) {
    const auto s = static_cast<std::size_t>(sw->id());
    if (dist[s] <= 0) continue;
    ecmp.clear();
    for (const auto& [v, link] : adjacency_[s]) {
      ++route_stats_.edges_scanned;
      const auto vi = static_cast<std::size_t>(v);
      // A valid next hop is one hop closer, reachable over an up link and
      // able to deliver: the destination itself or a forwarding switch.
      // Adjacency (connect) order fixes the candidate order — seed-stable
      // ECMP. Here `link` is the actual data-path egress, so its state
      // check is exact even for asymmetric faults.
      if (dist[vi] == dist[s] - 1 && link->up() &&
          (v == d || is_switch_[vi])) {
        ecmp.push_back(link);
      }
    }
    if (!ecmp.empty()) sw->set_routes(d, ecmp);
  }
}

void Topology::repair_destinations(std::vector<NodeId>& affected) {
  const auto t0 = std::chrono::steady_clock::now();
  route_stats_ = RouteBuildStats{};
  for (const auto& adj : adjacency_) {
    route_stats_.directed_edges += static_cast<std::int64_t>(adj.size());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  std::vector<std::int32_t> dist(nodes_.size());
  std::vector<NodeId> frontier;
  frontier.reserve(nodes_.size());
  std::vector<Link*> ecmp;
  for (NodeId d : affected) {
    rebuild_destination(d, dist, frontier, ecmp);
    ++route_stats_.destinations;
  }
  route_stats_.build_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  notify_changed();
}

void Topology::set_link_state(Link* link, bool up) {
  assert(link != nullptr);
  if (link->up() == up) return;
  if (!up) {
    // Collect the blast radius before touching state: only destinations
    // whose installed routes ride the dying link need a new BFS.
    std::vector<NodeId> affected;
    for (Switch* sw : switches_) sw->routes_using(link, affected);
    link->set_up(false);
    repair_destinations(affected);
  } else {
    link->set_up(true);
    build_routes();
  }
}

void Topology::set_link_pair_state(Node& a, Node& b, bool up) {
  Link* fwd = link_between(a, b);
  Link* rev = link_between(b, a);
  assert(fwd != nullptr && rev != nullptr && "nodes are not adjacent");
  if (!up) {
    std::vector<NodeId> affected;
    for (Switch* sw : switches_) {
      sw->routes_using(fwd, affected);
      sw->routes_using(rev, affected);
    }
    if (fwd->up()) fwd->set_up(false);
    if (rev->up()) rev->set_up(false);
    repair_destinations(affected);
  } else {
    const bool changed = !fwd->up() || !rev->up();
    fwd->set_up(true);
    rev->set_up(true);
    if (changed) build_routes();
  }
}

Link* Topology::link_between(const Node& a, const Node& b) const {
  auto it = by_endpoints_.find({a.id(), b.id()});
  return it == by_endpoints_.end() ? nullptr : it->second;
}

Node* Topology::find_node(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

Node* Topology::node(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) return nullptr;
  return nodes_[static_cast<std::size_t>(id)].get();
}

namespace {
QueueFactory default_queue_or(const QueueFactory& given,
                              std::int64_t capacity_bytes) {
  return given != nullptr ? given : make_droptail_factory(capacity_bytes);
}
}  // namespace

Dumbbell make_dumbbell(sim::Simulator& simulator, const DumbbellConfig& cfg) {
  assert(cfg.hosts_per_side > 0);
  Dumbbell d;
  d.topology = std::make_unique<Topology>(simulator);
  Topology& topo = *d.topology;

  d.left_switch = topo.add_switch("swL");
  d.right_switch = topo.add_switch("swR");

  const QueueFactory host_q = default_queue_or(cfg.host_queue, 4 * 1024 * 1024);
  // Default bottleneck buffer: ~1 BDP-ish region scaled by rate; a deep
  // enough buffer for Reno sawtooth while still forcing loss under overload.
  const auto bneck_cap = static_cast<std::int64_t>(
      cfg.bottleneck_rate_bps / 8.0 * sim::to_seconds(sim::milliseconds(2)));
  const QueueFactory bneck_q = default_queue_or(
      cfg.bottleneck_queue, bneck_cap > 64 * 1500 ? bneck_cap : 64 * 1500);

  topo.connect(*d.left_switch, *d.right_switch, cfg.bottleneck_rate_bps,
               cfg.bottleneck_delay, bneck_q);

  for (int i = 0; i < cfg.hosts_per_side; ++i) {
    Host* l = topo.add_host("hL" + std::to_string(i));
    Host* r = topo.add_host("hR" + std::to_string(i));
    topo.connect(*l, *d.left_switch, cfg.host_rate_bps, cfg.host_delay,
                 host_q);
    topo.connect(*r, *d.right_switch, cfg.host_rate_bps, cfg.host_delay,
                 host_q);
    d.left.push_back(l);
    d.right.push_back(r);
  }

  topo.build_routes();
  d.bottleneck = topo.link_between(*d.left_switch, *d.right_switch);
  d.bottleneck_reverse = topo.link_between(*d.right_switch, *d.left_switch);
  return d;
}

Star make_star(sim::Simulator& simulator, const StarConfig& cfg) {
  assert(cfg.n_hosts > 0);
  Star s;
  s.topology = std::make_unique<Topology>(simulator);
  Topology& topo = *s.topology;
  s.hub = topo.add_switch("hub");
  const QueueFactory q = default_queue_or(cfg.queue, 512 * 1500);
  for (int i = 0; i < cfg.n_hosts; ++i) {
    Host* h = topo.add_host("h" + std::to_string(i));
    topo.connect(*h, *s.hub, cfg.rate_bps, cfg.delay, q);
    s.hosts.push_back(h);
  }
  topo.build_routes();
  return s;
}

LeafSpine make_leaf_spine(sim::Simulator& simulator,
                          const LeafSpineConfig& cfg) {
  assert(cfg.racks > 0 && cfg.hosts_per_rack > 0 && cfg.spines > 0);
  LeafSpine ls;
  ls.topology = std::make_unique<Topology>(simulator);
  Topology& topo = *ls.topology;
  const QueueFactory q = default_queue_or(cfg.queue, 512 * 1500);

  for (int s = 0; s < cfg.spines; ++s) {
    ls.spines.push_back(topo.add_switch("spine" + std::to_string(s)));
  }
  for (int r = 0; r < cfg.racks; ++r) {
    Switch* tor = topo.add_switch("tor" + std::to_string(r));
    ls.tors.push_back(tor);
    ls.racks.emplace_back();
    for (int h = 0; h < cfg.hosts_per_rack; ++h) {
      Host* host =
          topo.add_host("h" + std::to_string(r) + "_" + std::to_string(h));
      topo.connect(*host, *tor, cfg.host_rate_bps, cfg.host_delay, q);
      ls.racks.back().push_back(host);
    }
    for (Switch* spine : ls.spines) {
      topo.connect(*tor, *spine, cfg.fabric_rate_bps, cfg.fabric_delay, q);
    }
  }
  topo.build_routes();
  return ls;
}

}  // namespace mltcp::net
