#include "net/queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/tracer.hpp"

namespace mltcp::net {

namespace {
void note_backlog(QueueStats& stats, std::int64_t backlog) {
  stats.max_backlog_bytes = std::max(stats.max_backlog_bytes, backlog);
}
}  // namespace

void QueueDiscipline::trace_drop(const Packet& pkt, sim::SimTime now) {
  if (trace_sim_ == nullptr) return;
  if (auto* t = telemetry::tracer_for(*trace_sim_,
                                      telemetry::Category::kQueue)) {
    t->instant(telemetry::Category::kQueue, "drop", now, trace_track_, "flow",
               static_cast<double>(pkt.flow), "bytes",
               static_cast<double>(pkt.size_bytes));
  }
}

void QueueDiscipline::trace_mark(const Packet& pkt, sim::SimTime now) {
  if (trace_sim_ == nullptr) return;
  if (auto* t = telemetry::tracer_for(*trace_sim_,
                                      telemetry::Category::kQueue)) {
    t->instant(telemetry::Category::kQueue, "ecn_mark", now, trace_track_,
               "flow", static_cast<double>(pkt.flow), "backlog",
               static_cast<double>(backlog_bytes()));
  }
}

// ---------------------------------------------------------------- DropTail

DropTailQueue::DropTailQueue(std::int64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  assert(capacity_bytes > 0);
}

bool DropTailQueue::enqueue(Packet pkt, sim::SimTime now) {
  if (backlog_ + pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  backlog_ += pkt.size_bytes;
  q_.push_back(pkt);
  ++stats_.enqueued_packets;
  note_backlog(stats_, backlog_);
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(sim::SimTime /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet pkt = q_.front();
  q_.pop_front();
  backlog_ -= pkt.size_bytes;
  return pkt;
}

// ------------------------------------------------------------ EcnThreshold

EcnThresholdQueue::EcnThresholdQueue(std::int64_t capacity_bytes,
                                     std::int64_t mark_threshold_bytes)
    : capacity_(capacity_bytes), mark_threshold_(mark_threshold_bytes) {
  assert(capacity_bytes > 0);
  assert(mark_threshold_bytes > 0 && mark_threshold_bytes <= capacity_bytes);
}

bool EcnThresholdQueue::enqueue(Packet pkt, sim::SimTime now) {
  if (backlog_ + pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  // DCTCP marks based on the instantaneous queue occupancy seen on arrival.
  if (pkt.ecn_capable && backlog_ >= mark_threshold_) {
    pkt.ce = true;
    ++stats_.marked_packets;
    trace_mark(pkt, now);
  }
  backlog_ += pkt.size_bytes;
  q_.push_back(pkt);
  ++stats_.enqueued_packets;
  note_backlog(stats_, backlog_);
  return true;
}

std::optional<Packet> EcnThresholdQueue::dequeue(sim::SimTime /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet pkt = q_.front();
  q_.pop_front();
  backlog_ -= pkt.size_bytes;
  return pkt;
}

// --------------------------------------------------------- PfabricPriority

PfabricPriorityQueue::PfabricPriorityQueue(std::int64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  assert(capacity_bytes > 0);
}

bool PfabricPriorityQueue::enqueue(Packet pkt, sim::SimTime now) {
  while (backlog_ + pkt.size_bytes > capacity_ && !q_.empty()) {
    // Evict the lowest-priority resident (largest remaining bytes) — but only
    // if the arrival beats it; otherwise drop the arrival.
    auto worst = std::prev(q_.end());
    if (worst->pkt.priority <= pkt.priority) {
      ++stats_.dropped_packets;
      trace_drop(pkt, now);
      return false;
    }
    backlog_ -= worst->pkt.size_bytes;
    ++stats_.dropped_packets;
    trace_drop(worst->pkt, now);
    q_.erase(worst);
  }
  if (backlog_ + pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  backlog_ += pkt.size_bytes;
  q_.insert(Entry{pkt, arrivals_++});
  ++stats_.enqueued_packets;
  note_backlog(stats_, backlog_);
  return true;
}

std::optional<Packet> PfabricPriorityQueue::dequeue(sim::SimTime /*now*/) {
  if (q_.empty()) return std::nullopt;
  auto best = q_.begin();
  Packet pkt = best->pkt;
  backlog_ -= pkt.size_bytes;
  q_.erase(best);
  return pkt;
}

// -------------------------------------------------------------------- DRR

DrrQueue::DrrQueue(std::int64_t capacity_bytes, std::int64_t quantum_bytes)
    : capacity_(capacity_bytes), quantum_(quantum_bytes) {
  assert(capacity_bytes > 0 && quantum_bytes > 0);
}

bool DrrQueue::enqueue(Packet pkt, sim::SimTime now) {
  if (backlog_ + pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  auto [it, inserted] = flows_.try_emplace(pkt.flow);
  if (it->second.q.empty()) {
    it->second.deficit = 0;
    round_.push_back(pkt.flow);
  }
  it->second.q.push_back(pkt);
  backlog_ += pkt.size_bytes;
  ++stats_.enqueued_packets;
  stats_.max_backlog_bytes = std::max(stats_.max_backlog_bytes, backlog_);
  return true;
}

std::optional<Packet> DrrQueue::dequeue(sim::SimTime /*now*/) {
  while (!round_.empty()) {
    const FlowId id = round_.front();
    auto it = flows_.find(id);
    if (it == flows_.end() || it->second.q.empty()) {
      round_.pop_front();
      continue;
    }
    FlowState& flow = it->second;
    if (flow.deficit < flow.q.front().size_bytes) {
      // Not enough credit: move to the back of the round with a new quantum.
      flow.deficit += quantum_;
      round_.pop_front();
      round_.push_back(id);
      continue;
    }
    Packet pkt = flow.q.front();
    flow.q.pop_front();
    flow.deficit -= pkt.size_bytes;
    backlog_ -= pkt.size_bytes;
    if (flow.q.empty()) {
      flows_.erase(it);
      round_.pop_front();
    }
    return pkt;
  }
  return std::nullopt;
}

std::size_t DrrQueue::backlog_packets() const {
  std::size_t n = 0;
  for (const auto& [id, flow] : flows_) n += flow.q.size();
  return n;
}

// -------------------------------------------------------------------- RED

RedQueue::RedQueue(Config cfg) : cfg_(cfg), rng_state_(cfg.seed | 1) {
  assert(cfg_.capacity_bytes > 0);
  assert(cfg_.min_threshold_bytes < cfg_.max_threshold_bytes);
  assert(cfg_.max_threshold_bytes <= cfg_.capacity_bytes);
}

double RedQueue::next_uniform() {
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool RedQueue::enqueue(Packet pkt, sim::SimTime now) {
  // Arrival after an idle period: the EWMA only updates on arrivals, so
  // without decay a stale high average from the last burst keeps
  // early-dropping on a near-empty queue. Age it as if `m` typical packets
  // had departed while the queue sat empty.
  if (idle_since_ >= 0 && cfg_.idle_pkt_time > 0 && now > idle_since_) {
    const double m = static_cast<double>(now - idle_since_) /
                     static_cast<double>(cfg_.idle_pkt_time);
    avg_ *= std::pow(1.0 - cfg_.ewma_weight, m);
    // Decay applied up to `now`; if this arrival ends up dropped the queue
    // stays idle from here on.
    idle_since_ = now;
  }

  avg_ = (1.0 - cfg_.ewma_weight) * avg_ +
         cfg_.ewma_weight * static_cast<double>(backlog_);

  bool early_action = false;
  if (avg_ >= static_cast<double>(cfg_.max_threshold_bytes)) {
    early_action = true;
  } else if (avg_ >= static_cast<double>(cfg_.min_threshold_bytes)) {
    const double fraction =
        (avg_ - static_cast<double>(cfg_.min_threshold_bytes)) /
        static_cast<double>(cfg_.max_threshold_bytes -
                            cfg_.min_threshold_bytes);
    early_action = next_uniform() < fraction * cfg_.max_probability;
  }

  if (early_action) {
    if (cfg_.mark_instead_of_drop && pkt.ecn_capable) {
      pkt.ce = true;
      ++stats_.marked_packets;
      trace_mark(pkt, now);
    } else {
      ++stats_.dropped_packets;
      trace_drop(pkt, now);
      return false;
    }
  }

  if (backlog_ + pkt.size_bytes > cfg_.capacity_bytes) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  backlog_ += pkt.size_bytes;
  q_.push_back(pkt);
  idle_since_ = -1;
  ++stats_.enqueued_packets;
  stats_.max_backlog_bytes = std::max(stats_.max_backlog_bytes, backlog_);
  return true;
}

std::optional<Packet> RedQueue::dequeue(sim::SimTime now) {
  if (q_.empty()) return std::nullopt;
  Packet pkt = q_.front();
  q_.pop_front();
  backlog_ -= pkt.size_bytes;
  if (q_.empty()) idle_since_ = now;
  return pkt;
}

// ------------------------------------------------------------- RandomDrop

RandomDropQueue::RandomDropQueue(std::unique_ptr<QueueDiscipline> inner,
                                 double drop_probability, std::uint64_t seed)
    : inner_(std::move(inner)), p_(drop_probability), state_(seed | 1) {
  assert(inner_ != nullptr);
  assert(drop_probability >= 0.0 && drop_probability <= 1.0);
}

bool RandomDropQueue::enqueue(Packet pkt, sim::SimTime now) {
  // splitmix64 step; cheap and adequate for Bernoulli drops.
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  // Only data packets are subject to injected loss; dropping ACKs would test
  // cumulative-ACK robustness, not congestion response.
  if (pkt.type == PacketType::kData && u < p_) {
    ++random_drops_;
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  // Mirror the inner queue's outcome so this decorator's stats cover both
  // injected and congestion drops.
  const bool admitted = inner_->enqueue(pkt, now);
  if (admitted) {
    ++stats_.enqueued_packets;
  } else {
    ++stats_.dropped_packets;
  }
  return admitted;
}

std::optional<Packet> RandomDropQueue::dequeue(sim::SimTime now) {
  return inner_->dequeue(now);
}

void RandomDropQueue::set_trace_context(sim::Simulator* sim, const char* name,
                                        std::uint64_t track) {
  QueueDiscipline::set_trace_context(sim, name, track);
  // Congestion drops happen inside the wrapped queue; give it the same
  // identity so they are traced too.
  inner_->set_trace_context(sim, name, track);
}

void RandomDropQueue::set_drop_probability(double p) {
  assert(p >= 0.0 && p <= 1.0);
  p_ = p;
}

// ----------------------------------------------------------------- factories

QueueFactory make_droptail_factory(std::int64_t capacity_bytes) {
  return [capacity_bytes] { return std::make_unique<DropTailQueue>(capacity_bytes); };
}

QueueFactory make_ecn_factory(std::int64_t capacity_bytes,
                              std::int64_t mark_threshold_bytes) {
  return [=] {
    return std::make_unique<EcnThresholdQueue>(capacity_bytes,
                                               mark_threshold_bytes);
  };
}

QueueFactory make_pfabric_factory(std::int64_t capacity_bytes) {
  return [capacity_bytes] {
    return std::make_unique<PfabricPriorityQueue>(capacity_bytes);
  };
}

QueueFactory make_drr_factory(std::int64_t capacity_bytes,
                              std::int64_t quantum_bytes) {
  return [=] {
    return std::make_unique<DrrQueue>(capacity_bytes, quantum_bytes);
  };
}

QueueFactory make_red_factory(RedQueue::Config cfg) {
  return [cfg] { return std::make_unique<RedQueue>(cfg); };
}

QueueFactory make_random_drop_factory(double drop_probability,
                                      std::int64_t capacity_bytes,
                                      std::uint64_t seed) {
  return [=] {
    return std::make_unique<RandomDropQueue>(
        std::make_unique<DropTailQueue>(capacity_bytes), drop_probability,
        seed);
  };
}

}  // namespace mltcp::net
