#include "net/queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "sim/random.hpp"
#include "telemetry/tracer.hpp"

namespace mltcp::net {

namespace {
void note_backlog(QueueStats& stats, std::int64_t backlog) {
  stats.max_backlog_bytes = std::max(stats.max_backlog_bytes, backlog);
}
}  // namespace

void PacketRing::grow() {
  const std::size_t old_cap = buf_.size();
  const std::size_t new_cap = old_cap == 0 ? 8 : old_cap * 2;
  std::vector<Packet> next(new_cap);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) next[i] = buf_[(head_ + i) & mask_];
  buf_ = std::move(next);
  mask_ = new_cap - 1;
  head_ = 0;
  tail_ = n;
}

void QueueDiscipline::trace_drop(const Packet& pkt, sim::SimTime now) {
  if (trace_sim_ == nullptr) return;
  if (auto* t = telemetry::tracer_for(*trace_sim_,
                                      telemetry::Category::kQueue)) {
    t->instant(telemetry::Category::kQueue, "drop", now, trace_track_, "flow",
               static_cast<double>(pkt.flow), "bytes",
               static_cast<double>(pkt.size_bytes));
  }
}

void QueueDiscipline::trace_mark(const Packet& pkt, sim::SimTime now) {
  if (trace_sim_ == nullptr) return;
  if (auto* t = telemetry::tracer_for(*trace_sim_,
                                      telemetry::Category::kQueue)) {
    t->instant(telemetry::Category::kQueue, "ecn_mark", now, trace_track_,
               "flow", static_cast<double>(pkt.flow), "backlog",
               static_cast<double>(backlog_bytes()));
  }
}

// ---------------------------------------------------------------- DropTail

DropTailQueue::DropTailQueue(std::int64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  assert(capacity_bytes > 0);
}

bool DropTailQueue::enqueue(const Packet& pkt, sim::SimTime now) {
  if (backlog_ + pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  backlog_ += pkt.size_bytes;
  q_.push_back(pkt);
  ++stats_.enqueued_packets;
  note_backlog(stats_, backlog_);
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(sim::SimTime /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet pkt = q_.front();
  q_.pop_front();
  backlog_ -= pkt.size_bytes;
  return pkt;
}

std::optional<Packet> DropTailQueue::enqueue_dequeue(const Packet& pkt,
                                                     sim::SimTime now) {
  if (!q_.empty()) {
    if (!enqueue(pkt, now)) return std::nullopt;
    return dequeue(now);
  }
  // Empty queue (backlog 0): admission reduces to a size check and the
  // dequeued packet is the arrival itself — skip the ring round-trip.
  if (pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return std::nullopt;
  }
  ++stats_.enqueued_packets;
  note_backlog(stats_, pkt.size_bytes);
  return pkt;
}

// ------------------------------------------------------------ EcnThreshold

EcnThresholdQueue::EcnThresholdQueue(std::int64_t capacity_bytes,
                                     std::int64_t mark_threshold_bytes)
    : capacity_(capacity_bytes), mark_threshold_(mark_threshold_bytes) {
  assert(capacity_bytes > 0);
  assert(mark_threshold_bytes > 0 && mark_threshold_bytes <= capacity_bytes);
}

bool EcnThresholdQueue::enqueue(const Packet& pkt, sim::SimTime now) {
  if (backlog_ + pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  Packet& stored = q_.push_back(pkt);
  // DCTCP marks based on the instantaneous queue occupancy seen on arrival.
  if (pkt.ecn_capable && backlog_ >= mark_threshold_) {
    stored.ce = true;
    ++stats_.marked_packets;
    trace_mark(stored, now);
  }
  backlog_ += pkt.size_bytes;
  ++stats_.enqueued_packets;
  note_backlog(stats_, backlog_);
  return true;
}

std::optional<Packet> EcnThresholdQueue::dequeue(sim::SimTime /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet pkt = q_.front();
  q_.pop_front();
  backlog_ -= pkt.size_bytes;
  return pkt;
}

std::optional<Packet> EcnThresholdQueue::enqueue_dequeue(const Packet& pkt,
                                                         sim::SimTime now) {
  if (!q_.empty()) {
    if (!enqueue(pkt, now)) return std::nullopt;
    return dequeue(now);
  }
  // Empty queue: backlog 0 is always below the (positive) mark threshold,
  // so no CE mark; admission reduces to a size check.
  if (pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return std::nullopt;
  }
  ++stats_.enqueued_packets;
  note_backlog(stats_, pkt.size_bytes);
  return pkt;
}

// --------------------------------------------------------- PfabricPriority
//
// Min-max heap layout (0-based array): even levels (root = level 0) are min
// levels, odd levels max levels. A min-level node is <= all its descendants,
// a max-level node >= all its descendants, so the minimum sits at index 0
// and the maximum at index 1 or 2.

namespace {
/// Level parity of index i: true on min (even) levels. Level of i is
/// floor(log2(i + 1)); bit_width(i + 1) is level + 1.
bool on_min_level(std::size_t i) {
  return (std::bit_width(i + 1) & 1u) != 0;
}
}  // namespace

PfabricPriorityQueue::PfabricPriorityQueue(std::int64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  assert(capacity_bytes > 0);
}

template <bool kMin>
void PfabricPriorityQueue::bubble_up(std::size_t i) {
  while (i > 2) {  // Grandparent exists iff i >= 3.
    const std::size_t gp = ((i - 1) / 2 - 1) / 2;
    const bool better = kMin ? key_less(heap_[i], heap_[gp])
                             : key_less(heap_[gp], heap_[i]);
    if (!better) break;
    std::swap(heap_[i], heap_[gp]);
    i = gp;
  }
}

template <bool kMin>
void PfabricPriorityQueue::trickle_down(std::size_t i) {
  const std::size_t n = heap_.size();
  auto better = [this](std::size_t a, std::size_t b) {
    return kMin ? key_less(heap_[a], heap_[b]) : key_less(heap_[b], heap_[a]);
  };
  while (2 * i + 1 < n) {
    // The extreme among children and grandchildren of i.
    std::size_t m = 2 * i + 1;
    const std::size_t candidates[] = {2 * i + 2, 4 * i + 3, 4 * i + 4,
                                      4 * i + 5, 4 * i + 6};
    for (const std::size_t c : candidates) {
      if (c < n && better(c, m)) m = c;
    }
    if (m > 2 * i + 2) {  // Grandchild: may need one more level of repair.
      if (!better(m, i)) return;
      std::swap(heap_[m], heap_[i]);
      const std::size_t parent = (m - 1) / 2;
      // The displaced element may violate the opposite-parity parent.
      const bool wrong = kMin ? key_less(heap_[parent], heap_[m])
                              : key_less(heap_[m], heap_[parent]);
      if (wrong) std::swap(heap_[m], heap_[parent]);
      i = m;
    } else {  // Direct child: a single swap finishes the repair.
      if (better(m, i)) std::swap(heap_[m], heap_[i]);
      return;
    }
  }
}

void PfabricPriorityQueue::push_key(Key k) {
  heap_.push_back(k);
  const std::size_t i = heap_.size() - 1;
  if (i == 0) return;
  const std::size_t parent = (i - 1) / 2;
  if (on_min_level(i)) {
    if (key_less(heap_[parent], heap_[i])) {
      std::swap(heap_[i], heap_[parent]);
      bubble_up<false>(parent);
    } else {
      bubble_up<true>(i);
    }
  } else {
    if (key_less(heap_[i], heap_[parent])) {
      std::swap(heap_[i], heap_[parent]);
      bubble_up<true>(parent);
    } else {
      bubble_up<false>(i);
    }
  }
}

std::size_t PfabricPriorityQueue::max_index() const {
  if (heap_.size() <= 2) return heap_.size() - 1;
  return key_less(heap_[1], heap_[2]) ? 2 : 1;
}

PfabricPriorityQueue::Key PfabricPriorityQueue::take_at(std::size_t i) {
  const Key out = heap_[i];
  const Key last = heap_.back();
  heap_.pop_back();
  if (i < heap_.size()) {
    heap_[i] = last;
    // For the two removal sites (min at 0, max at 1/2) the replacement can
    // only violate invariants downward: the root has no parent, and a
    // max-level node at 1/2 is bounded below by the root, which is <= every
    // element by definition. So a trickle-down fully restores the heap.
    if (on_min_level(i)) {
      trickle_down<true>(i);
    } else {
      trickle_down<false>(i);
    }
  }
  return out;
}

bool PfabricPriorityQueue::enqueue(const Packet& pkt, sim::SimTime now) {
  while (backlog_ + pkt.size_bytes > capacity_ && !heap_.empty()) {
    // Evict the lowest-priority resident (largest remaining bytes) — but only
    // if the arrival beats it; otherwise drop the arrival.
    const std::size_t wi = max_index();
    const Packet& worst = store_[heap_[wi].slot];
    if (worst.priority <= pkt.priority) {
      ++stats_.dropped_packets;
      trace_drop(pkt, now);
      return false;
    }
    backlog_ -= worst.size_bytes;
    ++stats_.dropped_packets;
    trace_drop(worst, now);
    free_slots_.push_back(heap_[wi].slot);
    take_at(wi);
  }
  if (backlog_ + pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(store_.size());
    store_.emplace_back();
  }
  store_[slot] = pkt;
  backlog_ += pkt.size_bytes;
  push_key(Key{pkt.priority, arrivals_++, slot});
  ++stats_.enqueued_packets;
  note_backlog(stats_, backlog_);
  return true;
}

std::optional<Packet> PfabricPriorityQueue::dequeue(sim::SimTime /*now*/) {
  if (heap_.empty()) return std::nullopt;
  const Key best = take_at(0);
  const Packet pkt = store_[best.slot];
  free_slots_.push_back(best.slot);
  backlog_ -= pkt.size_bytes;
  return pkt;
}

std::optional<Packet> PfabricPriorityQueue::enqueue_dequeue(
    const Packet& pkt, sim::SimTime now) {
  if (!heap_.empty()) {
    if (!enqueue(pkt, now)) return std::nullopt;
    return dequeue(now);
  }
  if (pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return std::nullopt;
  }
  ++arrivals_;  // The insert would have consumed one arrival number.
  ++stats_.enqueued_packets;
  note_backlog(stats_, pkt.size_bytes);
  return pkt;
}

// -------------------------------------------------------------------- DRR

DrrQueue::DrrQueue(std::int64_t capacity_bytes, std::int64_t quantum_bytes)
    : capacity_(capacity_bytes), quantum_(quantum_bytes) {
  assert(capacity_bytes > 0 && quantum_bytes > 0);
}

bool DrrQueue::enqueue(const Packet& pkt, sim::SimTime now) {
  if (backlog_ + pkt.size_bytes > capacity_) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  auto [it, inserted] = flows_.try_emplace(pkt.flow);
  if (it->second.q.empty()) {
    it->second.deficit = 0;
    round_.push_back(pkt.flow);
  }
  it->second.q.push_back(pkt);
  backlog_ += pkt.size_bytes;
  ++stats_.enqueued_packets;
  stats_.max_backlog_bytes = std::max(stats_.max_backlog_bytes, backlog_);
  return true;
}

std::optional<Packet> DrrQueue::dequeue(sim::SimTime /*now*/) {
  while (!round_.empty()) {
    const FlowId id = round_.front();
    auto it = flows_.find(id);
    if (it == flows_.end() || it->second.q.empty()) {
      round_.pop_front();
      continue;
    }
    FlowState& flow = it->second;
    if (flow.deficit < flow.q.front().size_bytes) {
      // Not enough credit: move to the back of the round with a new quantum.
      flow.deficit += quantum_;
      round_.pop_front();
      round_.push_back(id);
      continue;
    }
    Packet pkt = flow.q.front();
    flow.q.pop_front();
    flow.deficit -= pkt.size_bytes;
    backlog_ -= pkt.size_bytes;
    if (flow.q.empty()) {
      flows_.erase(it);
      round_.pop_front();
    }
    return pkt;
  }
  return std::nullopt;
}

std::size_t DrrQueue::backlog_packets() const {
  std::size_t n = 0;
  for (const auto& [id, flow] : flows_) n += flow.q.size();
  return n;
}

// -------------------------------------------------------------------- RED

RedQueue::RedQueue(Config cfg) : cfg_(cfg), rng_state_(cfg.seed | 1) {
  assert(cfg_.capacity_bytes > 0);
  assert(cfg_.min_threshold_bytes < cfg_.max_threshold_bytes);
  assert(cfg_.max_threshold_bytes <= cfg_.capacity_bytes);
}

double RedQueue::next_uniform() {
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool RedQueue::enqueue(const Packet& pkt, sim::SimTime now) {
  // Arrival after an idle period: the EWMA only updates on arrivals, so
  // without decay a stale high average from the last burst keeps
  // early-dropping on a near-empty queue. Age it as if `m` typical packets
  // had departed while the queue sat empty.
  if (idle_since_ >= 0 && cfg_.idle_pkt_time > 0 && now > idle_since_) {
    const double m = static_cast<double>(now - idle_since_) /
                     static_cast<double>(cfg_.idle_pkt_time);
    avg_ *= std::pow(1.0 - cfg_.ewma_weight, m);
    // Decay applied up to `now`; if this arrival ends up dropped the queue
    // stays idle from here on.
    idle_since_ = now;
  }

  avg_ = (1.0 - cfg_.ewma_weight) * avg_ +
         cfg_.ewma_weight * static_cast<double>(backlog_);

  bool early_action = false;
  if (avg_ >= static_cast<double>(cfg_.max_threshold_bytes)) {
    early_action = true;
  } else if (avg_ >= static_cast<double>(cfg_.min_threshold_bytes)) {
    const double fraction =
        (avg_ - static_cast<double>(cfg_.min_threshold_bytes)) /
        static_cast<double>(cfg_.max_threshold_bytes -
                            cfg_.min_threshold_bytes);
    early_action = next_uniform() < fraction * cfg_.max_probability;
  }

  bool mark = false;
  if (early_action) {
    if (cfg_.mark_instead_of_drop && pkt.ecn_capable) {
      mark = true;
      ++stats_.marked_packets;
      trace_mark(pkt, now);
    } else {
      ++stats_.dropped_packets;
      trace_drop(pkt, now);
      return false;
    }
  }

  if (backlog_ + pkt.size_bytes > cfg_.capacity_bytes) {
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  backlog_ += pkt.size_bytes;
  Packet& stored = q_.push_back(pkt);
  if (mark) stored.ce = true;
  idle_since_ = -1;
  ++stats_.enqueued_packets;
  stats_.max_backlog_bytes = std::max(stats_.max_backlog_bytes, backlog_);
  return true;
}

std::optional<Packet> RedQueue::dequeue(sim::SimTime now) {
  if (q_.empty()) return std::nullopt;
  Packet pkt = q_.front();
  q_.pop_front();
  backlog_ -= pkt.size_bytes;
  if (q_.empty()) idle_since_ = now;
  return pkt;
}

// ------------------------------------------------------------- RandomDrop

RandomDropQueue::RandomDropQueue(std::unique_ptr<QueueDiscipline> inner,
                                 double drop_probability, std::uint64_t seed)
    : inner_(std::move(inner)), p_(drop_probability), state_(seed | 1) {
  assert(inner_ != nullptr);
  assert(drop_probability >= 0.0 && drop_probability <= 1.0);
}

bool RandomDropQueue::enqueue(const Packet& pkt, sim::SimTime now) {
  // splitmix64 step; cheap and adequate for Bernoulli drops.
  const double u = sim::splitmix64_uniform(state_);
  // Only data packets are subject to injected loss; dropping ACKs would test
  // cumulative-ACK robustness, not congestion response.
  if (pkt.type == PacketType::kData && u < p_) {
    ++random_drops_;
    ++stats_.dropped_packets;
    trace_drop(pkt, now);
    return false;
  }
  // Mirror the inner queue's outcome so this decorator's stats cover both
  // injected and congestion drops.
  const bool admitted = inner_->enqueue(pkt, now);
  if (admitted) {
    ++stats_.enqueued_packets;
  } else {
    ++stats_.dropped_packets;
  }
  return admitted;
}

std::optional<Packet> RandomDropQueue::dequeue(sim::SimTime now) {
  return inner_->dequeue(now);
}

void RandomDropQueue::set_trace_context(sim::Simulator* sim, const char* name,
                                        std::uint64_t track) {
  QueueDiscipline::set_trace_context(sim, name, track);
  // Congestion drops happen inside the wrapped queue; give it the same
  // identity so they are traced too.
  inner_->set_trace_context(sim, name, track);
}

void RandomDropQueue::set_drop_probability(double p) {
  assert(p >= 0.0 && p <= 1.0);
  p_ = p;
}

// ----------------------------------------------------------------- factories

QueueFactory make_droptail_factory(std::int64_t capacity_bytes) {
  return [capacity_bytes] { return std::make_unique<DropTailQueue>(capacity_bytes); };
}

QueueFactory make_ecn_factory(std::int64_t capacity_bytes,
                              std::int64_t mark_threshold_bytes) {
  return [=] {
    return std::make_unique<EcnThresholdQueue>(capacity_bytes,
                                               mark_threshold_bytes);
  };
}

QueueFactory make_pfabric_factory(std::int64_t capacity_bytes) {
  return [capacity_bytes] {
    return std::make_unique<PfabricPriorityQueue>(capacity_bytes);
  };
}

QueueFactory make_drr_factory(std::int64_t capacity_bytes,
                              std::int64_t quantum_bytes) {
  return [=] {
    return std::make_unique<DrrQueue>(capacity_bytes, quantum_bytes);
  };
}

QueueFactory make_red_factory(RedQueue::Config cfg) {
  return [cfg] { return std::make_unique<RedQueue>(cfg); };
}

QueueFactory make_random_drop_factory(double drop_probability,
                                      std::int64_t capacity_bytes,
                                      std::uint64_t seed) {
  return [=] {
    return std::make_unique<RandomDropQueue>(
        std::make_unique<DropTailQueue>(capacity_bytes), drop_probability,
        seed);
  };
}

}  // namespace mltcp::net
