#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace mltcp::net {

class Node;

/// Cross-shard egress seam for sharded (PDES) execution: when a link's
/// destination lives in a different shard than its source, the coordinator
/// installs a sink and the link hands finished transmissions to it instead
/// of scheduling the propagation-delivery event locally. `when` is the
/// delivery timestamp (serialization end + propagation delay), which is
/// strictly increasing per link because serialization time is positive —
/// the monotonicity the conservative synchronization protocol relies on.
/// `key` is the link's canonical delivery key for this packet — the same
/// value the serial engine would use as the event's tiebreak, so the
/// consumer shard can merge imports against its local queue in exactly the
/// serial total order.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  virtual void deliver(sim::SimTime when, std::uint64_t key, Node* dst,
                       const Packet& pkt) = 0;
};

/// Unidirectional point-to-point link: a serializing transmitter feeding a
/// propagation delay, with a queue discipline buffering while the
/// transmitter is busy.
class Link {
 public:
  /// Called for every packet as it begins transmission; used for bandwidth
  /// traces. The packet and the transmission start time are passed.
  using TxObserver = std::function<void(const Packet&, sim::SimTime)>;

  Link(sim::Simulator& simulator, std::string name, double rate_bps,
       sim::SimTime propagation_delay, std::unique_ptr<QueueDiscipline> queue,
       Node* destination);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offers a packet for transmission. Queues (or drops, per the queue
  /// discipline) if the transmitter is busy.
  void send(const Packet& pkt);

  double rate_bps() const { return rate_bps_; }
  sim::SimTime propagation_delay() const { return prop_delay_; }
  const std::string& name() const { return name_; }
  Node* destination() const { return dst_; }

  // -- Administrative / fault state (driven by the scenario engine) --------

  bool up() const { return up_; }
  /// Takes the link down or brings it back up. Going down aborts the packet
  /// on the transmitter, drains the queue (all counted as fault drops) and
  /// silently drops every subsequent send() until the link comes back.
  /// Packets already in propagation still deliver — they left the link
  /// before the cut. The aborted serialization stays in busy_time_
  /// (sub-packet error, documented rather than tracked).
  void set_up(bool up);

  /// Renegotiates the line rate mid-run (e.g. an autoneg downshift).
  /// Applies from the next serialization; the packet currently on the
  /// transmitter finishes at the old rate.
  void set_rate_bps(double rate_bps);

  /// Blackhole fault: the link stays administratively up (routes keep
  /// pointing at it) but deterministically drops every offered packet.
  /// Models a forwarding-plane fault the control plane has not noticed.
  void set_blackhole(bool on) { blackhole_ = on; }
  bool blackhole() const { return blackhole_; }

  /// Probabilistic drop-burst fault: each offered packet is dropped with
  /// `probability`, decided by a splitmix64 stream seeded here. Pass 0 to
  /// clear. The stream is only advanced while the fault is active, so runs
  /// without faults consume no randomness and stay byte-identical.
  void set_fault_drop(double probability, std::uint64_t seed);
  double fault_drop_probability() const { return fault_p_; }

  /// Packets lost to down/blackhole/drop-burst faults (including packets
  /// drained from the queue when the link went down).
  std::int64_t fault_drops() const { return fault_drops_; }

  QueueDiscipline& queue() { return *queue_; }
  const QueueDiscipline& queue() const { return *queue_; }

  /// Registers an additional transmission observer.
  void add_tx_observer(TxObserver obs) { observers_.push_back(std::move(obs)); }

  std::int64_t bytes_transmitted() const { return bytes_tx_; }
  std::int64_t packets_transmitted() const { return packets_tx_; }

  /// Fraction of busy time over [0, now]; useful for utilization reports.
  double utilization(sim::SimTime now) const;

  /// Telemetry track id (track_link namespace) shared with the queue.
  std::uint64_t trace_track() const { return track_; }

  /// Routes finished transmissions to `sink` (cross-shard delivery) instead
  /// of the local event queue; null restores local delivery. Installed by
  /// the PDES coordinator on cut links only.
  void set_delivery_sink(DeliverySink* sink) { delivery_sink_ = sink; }
  DeliverySink* delivery_sink() const { return delivery_sink_; }

 private:
  void start_transmission(const Packet& pkt);
  void on_transmission_done();
  double next_fault_uniform();

  /// Canonical tiebreak key of the next delivery: (link rank + 1) << 40 |
  /// per-link FIFO ordinal. Below EventQueue::kOrdinalBand, so at equal
  /// timestamps deliveries run before ordinary events, ordered among
  /// themselves by link construction order then wire order — a total order
  /// that depends only on the model, never on scheduling history, which is
  /// what lets sharded runs reproduce serial output bit-for-bit (the
  /// serial FIFO ordinal is partition-dependent; this key is not).
  std::uint64_t next_delivery_key() {
    return (static_cast<std::uint64_t>(rank_) + 1) << 40 | delivery_seq_++;
  }

  sim::Simulator& sim_;
  std::string name_;
  double rate_bps_;
  sim::SimTime prop_delay_;
  std::unique_ptr<QueueDiscipline> queue_;
  Node* dst_;
  std::uint64_t track_;
  std::uint32_t rank_;             ///< Dense construction ordinal.
  std::uint64_t delivery_seq_ = 0;
  DeliverySink* delivery_sink_ = nullptr;

  /// Serialization-done deadline for the packet in `tx_pkt_`; rearmed in
  /// place for every transmission instead of scheduling a fresh closure.
  sim::Timer tx_timer_;
  Packet tx_pkt_{};  ///< The packet currently on the transmitter.

  bool busy_ = false;
  bool up_ = true;
  bool blackhole_ = false;
  double fault_p_ = 0.0;
  std::uint64_t fault_rng_ = 0;
  std::int64_t fault_drops_ = 0;
  std::int64_t bytes_tx_ = 0;
  std::int64_t packets_tx_ = 0;
  sim::SimTime busy_time_ = 0;
  std::vector<TxObserver> observers_;
};

}  // namespace mltcp::net
