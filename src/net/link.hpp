#pragma once

#include <functional>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace mltcp::net {

class Node;

/// Unidirectional point-to-point link: a serializing transmitter feeding a
/// propagation delay, with a queue discipline buffering while the
/// transmitter is busy.
class Link {
 public:
  /// Called for every packet as it begins transmission; used for bandwidth
  /// traces. The packet and the transmission start time are passed.
  using TxObserver = std::function<void(const Packet&, sim::SimTime)>;

  Link(sim::Simulator& simulator, std::string name, double rate_bps,
       sim::SimTime propagation_delay, std::unique_ptr<QueueDiscipline> queue,
       Node* destination);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offers a packet for transmission. Queues (or drops, per the queue
  /// discipline) if the transmitter is busy.
  void send(const Packet& pkt);

  double rate_bps() const { return rate_bps_; }
  sim::SimTime propagation_delay() const { return prop_delay_; }
  const std::string& name() const { return name_; }
  Node* destination() const { return dst_; }

  QueueDiscipline& queue() { return *queue_; }
  const QueueDiscipline& queue() const { return *queue_; }

  /// Registers an additional transmission observer.
  void add_tx_observer(TxObserver obs) { observers_.push_back(std::move(obs)); }

  std::int64_t bytes_transmitted() const { return bytes_tx_; }
  std::int64_t packets_transmitted() const { return packets_tx_; }

  /// Fraction of busy time over [0, now]; useful for utilization reports.
  double utilization(sim::SimTime now) const;

  /// Telemetry track id (track_link namespace) shared with the queue.
  std::uint64_t trace_track() const { return track_; }

 private:
  void start_transmission(const Packet& pkt);
  void on_transmission_done();

  sim::Simulator& sim_;
  std::string name_;
  double rate_bps_;
  sim::SimTime prop_delay_;
  std::unique_ptr<QueueDiscipline> queue_;
  Node* dst_;
  std::uint64_t track_;

  /// Serialization-done deadline for the packet in `tx_pkt_`; rearmed in
  /// place for every transmission instead of scheduling a fresh closure.
  sim::Timer tx_timer_;
  Packet tx_pkt_{};  ///< The packet currently on the transmitter.

  bool busy_ = false;
  std::int64_t bytes_tx_ = 0;
  std::int64_t packets_tx_ = 0;
  sim::SimTime busy_time_ = 0;
  std::vector<TxObserver> observers_;
};

}  // namespace mltcp::net
