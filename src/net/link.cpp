#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "net/node.hpp"
#include "sim/random.hpp"
#include "telemetry/tracer.hpp"

namespace mltcp::net {

Link::Link(sim::Simulator& simulator, std::string name, double rate_bps,
           sim::SimTime propagation_delay,
           std::unique_ptr<QueueDiscipline> queue, Node* destination)
    : sim_(simulator),
      name_(std::move(name)),
      rate_bps_(rate_bps),
      prop_delay_(propagation_delay),
      queue_(std::move(queue)),
      dst_(destination),
      track_(telemetry::track_link(simulator.allocate_trace_ordinal())),
      rank_(simulator.allocate_link_rank()),
      tx_timer_(simulator, [this] { on_transmission_done(); }) {
  assert(rate_bps_ > 0.0);
  assert(queue_ != nullptr);
  assert(dst_ != nullptr);
  queue_->set_trace_context(&sim_, name_.c_str(), track_);
}

void Link::send(const Packet& pkt) {
  // Fault gate: two flag tests and a double compare on the healthy path.
  if (!up_ || blackhole_) {
    ++fault_drops_;
    return;
  }
  if (fault_p_ > 0.0 && next_fault_uniform() < fault_p_) {
    ++fault_drops_;
    return;
  }
  if (!busy_) {
    // Transmitter idle: the packet bypasses the queue discipline's ordering
    // but still runs through its admission/marking logic.
    if (auto next = queue_->enqueue_dequeue(pkt, sim_.now())) {
      start_transmission(*next);
    }
    return;
  }
  queue_->enqueue(pkt, sim_.now());
}

void Link::start_transmission(const Packet& pkt) {
  busy_ = true;
  const sim::SimTime tx = sim::transmission_time(pkt.size_bytes, rate_bps_);
  for (const auto& obs : observers_) obs(pkt, sim_.now());
  if (auto* t = telemetry::tracer_for(sim_, telemetry::Category::kLink)) {
    t->counter(telemetry::Category::kLink, "backlog_bytes", sim_.now(), track_,
               static_cast<double>(queue_->backlog_bytes()));
  }
  busy_time_ += tx;
  tx_pkt_ = pkt;
  tx_timer_.arm(tx);
}

void Link::on_transmission_done() {
  bytes_tx_ += tx_pkt_.size_bytes;
  ++packets_tx_;
  // Hand off to propagation; delivery happens prop_delay_ later, at the
  // link's canonical tiebreak key (same key either way, so the sharded
  // import merge and the serial queue share one total order). On a cut link
  // (sharded run) the delivery crosses to the destination's shard through
  // the installed sink; otherwise each packet in flight is its own local
  // event, so the closure carries the packet by value — it must stay within
  // the inline-callback budget or every hop would heap-allocate (the
  // engine's dominant cost before this design). Captures initialize straight
  // from the members so the packet is copied once into the closure and once
  // into slot storage, nothing more.
  const std::uint64_t key = next_delivery_key();
  if (delivery_sink_ != nullptr) {
    delivery_sink_->deliver(sim_.now() + prop_delay_, key, dst_, tx_pkt_);
  } else {
    auto deliver = [dst = dst_, pkt = tx_pkt_] { dst->receive(pkt); };
    static_assert(sizeof(deliver) <= sim::kInlineCallbackCapacity,
                  "propagation closure outgrew the inline-callback budget");
    sim_.schedule_keyed(prop_delay_, key, std::move(deliver));
  }

  auto next = queue_->dequeue(sim_.now());
  if (next.has_value()) {
    start_transmission(*next);
  } else {
    busy_ = false;
  }
}

void Link::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (up) return;  // Healing needs no local cleanup; senders re-probe.
  // The cut loses the packet being serialized and everything buffered.
  if (busy_) {
    tx_timer_.cancel();
    busy_ = false;
    ++fault_drops_;
  }
  while (queue_->dequeue(sim_.now()).has_value()) ++fault_drops_;
}

void Link::set_rate_bps(double rate_bps) {
  assert(rate_bps > 0.0);
  rate_bps_ = rate_bps;
}

void Link::set_fault_drop(double probability, std::uint64_t seed) {
  assert(probability >= 0.0 && probability <= 1.0);
  fault_p_ = probability;
  if (probability > 0.0) fault_rng_ = seed;
}

double Link::next_fault_uniform() {
  // splitmix64: deterministic per-link stream, independent of global state.
  return sim::splitmix64_uniform(fault_rng_);
}

double Link::utilization(sim::SimTime now) const {
  if (now <= 0) return 0.0;
  return static_cast<double>(busy_time_) / static_cast<double>(now);
}

}  // namespace mltcp::net
