#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mltcp::sim {
class Simulator;
}

namespace mltcp::net {

/// Statistics every queue discipline keeps.
struct QueueStats {
  std::int64_t enqueued_packets = 0;
  std::int64_t dropped_packets = 0;
  std::int64_t marked_packets = 0;  ///< ECN CE marks applied.
  std::int64_t max_backlog_bytes = 0;
};

/// Buffering policy of one link. Implementations decide admission (drop),
/// ordering (dequeue) and marking (ECN).
class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  /// Offers a packet to the queue. Returns false if the packet was dropped.
  /// Implementations may instead drop a lower-priority queued packet to admit
  /// this one (pFabric).
  virtual bool enqueue(const Packet& pkt, sim::SimTime now) = 0;

  /// Removes and returns the next packet to transmit, or nullopt when empty.
  virtual std::optional<Packet> dequeue(sim::SimTime now) = 0;

  /// Single-call enqueue-then-dequeue, used by a link whose transmitter is
  /// idle: admission, marking, statistics and RNG consumption are identical
  /// to enqueue() followed by dequeue(). Disciplines whose empty-queue path
  /// is trivial override this to skip the buffer round-trip.
  virtual std::optional<Packet> enqueue_dequeue(const Packet& pkt,
                                                sim::SimTime now) {
    if (!enqueue(pkt, now)) return std::nullopt;
    return dequeue(now);
  }

  virtual bool empty() const = 0;
  virtual std::int64_t backlog_bytes() const = 0;
  virtual std::size_t backlog_packets() const = 0;

  const QueueStats& stats() const { return stats_; }

  /// Telemetry wiring, set by the owning Link: drop/mark decisions are
  /// traced (Category::kQueue) with the link's identity. `name` must
  /// outlive the queue; decorators forward the context to their inner
  /// queue. A null simulator (the default) disables tracing.
  virtual void set_trace_context(sim::Simulator* sim, const char* name,
                                 std::uint64_t track) {
    trace_sim_ = sim;
    trace_name_ = name;
    trace_track_ = track;
  }

 protected:
  /// Emit a Category::kQueue event for a dropped / ECN-marked packet.
  /// Called next to the stats_ increments; no-ops without a tracer.
  void trace_drop(const Packet& pkt, sim::SimTime now);
  void trace_mark(const Packet& pkt, sim::SimTime now);

  QueueStats stats_;
  sim::Simulator* trace_sim_ = nullptr;
  const char* trace_name_ = "";
  std::uint64_t trace_track_ = 0;
};

/// Factory used by topology builders so each link gets its own queue.
using QueueFactory = std::function<std::unique_ptr<QueueDiscipline>()>;

/// Power-of-two ring buffer of packets backing the FIFO disciplines.
/// Head/tail are monotonic counters masked into the buffer, so wraparound
/// is a single AND. Grows geometrically (relinearising the contents) and
/// never shrinks: once a queue has seen its working depth it runs
/// allocation-free — the forwarding half of the steady-state alloc-free
/// guarantee (see DESIGN.md "Forwarding path & scale").
class PacketRing {
 public:
  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }
  std::size_t capacity() const { return buf_.size(); }

  /// Appends a copy of `pkt` and returns a reference to the stored slot, so
  /// disciplines that mark on enqueue (ECN CE) can mutate in place instead
  /// of copying twice.
  Packet& push_back(const Packet& pkt) {
    if (size() == buf_.size()) grow();
    Packet& slot = buf_[tail_++ & mask_];
    slot = pkt;
    return slot;
  }
  const Packet& front() const { return buf_[head_ & mask_]; }
  void pop_front() { ++head_; }

 private:
  void grow();

  std::vector<Packet> buf_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;  ///< Monotonic; buffer index is head_ & mask_.
  std::uint64_t tail_ = 0;
};

/// FIFO with a byte-capacity bound; arrivals beyond capacity are dropped.
class DropTailQueue : public QueueDiscipline {
 public:
  explicit DropTailQueue(std::int64_t capacity_bytes);

  bool enqueue(const Packet& pkt, sim::SimTime now) override;
  std::optional<Packet> dequeue(sim::SimTime now) override;
  std::optional<Packet> enqueue_dequeue(const Packet& pkt,
                                        sim::SimTime now) override;
  bool empty() const override { return q_.empty(); }
  std::int64_t backlog_bytes() const override { return backlog_; }
  std::size_t backlog_packets() const override { return q_.size(); }

  std::int64_t capacity_bytes() const { return capacity_; }

 private:
  std::int64_t capacity_;
  std::int64_t backlog_ = 0;
  PacketRing q_;
};

/// DCTCP-style queue: drop-tail admission plus ECN CE marking of ECN-capable
/// packets when the instantaneous backlog is at or above `mark_threshold`
/// at enqueue time.
class EcnThresholdQueue : public QueueDiscipline {
 public:
  EcnThresholdQueue(std::int64_t capacity_bytes,
                    std::int64_t mark_threshold_bytes);

  bool enqueue(const Packet& pkt, sim::SimTime now) override;
  std::optional<Packet> dequeue(sim::SimTime now) override;
  std::optional<Packet> enqueue_dequeue(const Packet& pkt,
                                        sim::SimTime now) override;
  bool empty() const override { return q_.empty(); }
  std::int64_t backlog_bytes() const override { return backlog_; }
  std::size_t backlog_packets() const override { return q_.size(); }

  std::int64_t mark_threshold_bytes() const { return mark_threshold_; }

 private:
  std::int64_t capacity_;
  std::int64_t mark_threshold_;
  std::int64_t backlog_ = 0;
  PacketRing q_;
};

/// pFabric priority queue: dequeues the packet with the smallest priority
/// value (fewest remaining bytes). When full, admits a higher-priority
/// arrival by evicting the lowest-priority resident packet.
///
/// Backed by a min-max heap (Atkinson et al., CACM 1986) of 24-byte keys
/// over a slot-stable packet store: dequeue pops the min, eviction pops the
/// max, both O(log n) — admission under overload no longer pays a full
/// ordered-container rebalance per evicted packet, and deep backlogs stay
/// cheap. The key order (priority, arrival_seq) and the eviction rule are
/// identical to the original multiset implementation, so drop decisions and
/// dequeue order are byte-for-byte unchanged.
class PfabricPriorityQueue : public QueueDiscipline {
 public:
  explicit PfabricPriorityQueue(std::int64_t capacity_bytes);

  bool enqueue(const Packet& pkt, sim::SimTime now) override;
  std::optional<Packet> dequeue(sim::SimTime now) override;
  std::optional<Packet> enqueue_dequeue(const Packet& pkt,
                                        sim::SimTime now) override;
  bool empty() const override { return heap_.empty(); }
  std::int64_t backlog_bytes() const override { return backlog_; }
  std::size_t backlog_packets() const override { return heap_.size(); }

 private:
  /// Total order (priority, seq): seq is the arrival number, the FIFO
  /// tiebreak within a priority level. `slot` indexes store_.
  struct Key {
    std::int64_t priority;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool key_less(const Key& a, const Key& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  }

  std::size_t max_index() const;
  void push_key(Key k);
  /// Removes heap_[i] (i must be 0 or max_index()) and restores the heap.
  Key take_at(std::size_t i);
  template <bool kMin>
  void bubble_up(std::size_t i);
  template <bool kMin>
  void trickle_down(std::size_t i);

  std::int64_t capacity_;
  std::int64_t backlog_ = 0;
  std::uint64_t arrivals_ = 0;
  std::vector<Key> heap_;      ///< Min-max heap on (priority, seq).
  std::vector<Packet> store_;  ///< Slot-stable packet storage.
  std::vector<std::uint32_t> free_slots_;
};

/// Deficit round robin (Shreedhar & Varghese): per-flow FIFOs served in a
/// round-robin of byte quanta — switch-enforced fair sharing. Used as the
/// "perfectly fair switch" baseline: even exact fairness does not interleave
/// periodic jobs, which is the gap MLTCP fills.
class DrrQueue : public QueueDiscipline {
 public:
  DrrQueue(std::int64_t capacity_bytes, std::int64_t quantum_bytes = 1500);

  bool enqueue(const Packet& pkt, sim::SimTime now) override;
  std::optional<Packet> dequeue(sim::SimTime now) override;
  bool empty() const override { return backlog_ == 0; }
  std::int64_t backlog_bytes() const override { return backlog_; }
  std::size_t backlog_packets() const override;

  std::size_t active_flows() const { return flows_.size(); }

 private:
  struct FlowState {
    std::deque<Packet> q;
    std::int64_t deficit = 0;
  };

  std::int64_t capacity_;
  std::int64_t quantum_;
  std::int64_t backlog_ = 0;
  std::map<FlowId, FlowState> flows_;
  std::deque<FlowId> round_;  ///< Active-flow service order.
};

/// RED (Floyd & Jacobson): probabilistic early drop (or ECN mark for
/// ECN-capable packets) once the EWMA queue size exceeds min_threshold,
/// ramping to certainty at max_threshold.
class RedQueue : public QueueDiscipline {
 public:
  struct Config {
    std::int64_t capacity_bytes = 256 * 1500;
    std::int64_t min_threshold_bytes = 30 * 1500;
    std::int64_t max_threshold_bytes = 90 * 1500;
    double max_probability = 0.1;
    double ewma_weight = 0.002;
    bool mark_instead_of_drop = false;  ///< ECN mode for capable packets.
    std::uint64_t seed = 31;
    /// Transmission time of a typical packet, used to decay the EWMA across
    /// idle periods (Floyd & Jacobson §4: while the queue is empty the
    /// average ages as if one small packet departed every `idle_pkt_time`).
    /// Default: 1500 B at 1 Gbps. Set to 0 to disable idle decay.
    sim::SimTime idle_pkt_time = sim::microseconds(12);
  };

  explicit RedQueue(Config cfg);

  bool enqueue(const Packet& pkt, sim::SimTime now) override;
  std::optional<Packet> dequeue(sim::SimTime now) override;
  bool empty() const override { return q_.empty(); }
  std::int64_t backlog_bytes() const override { return backlog_; }
  std::size_t backlog_packets() const override { return q_.size(); }

  double average_queue_bytes() const { return avg_; }

 private:
  double next_uniform();

  Config cfg_;
  std::int64_t backlog_ = 0;
  double avg_ = 0.0;
  sim::SimTime idle_since_ = 0;  ///< When the queue went empty; -1 = busy.
  std::uint64_t rng_state_;
  PacketRing q_;
};

/// Decorator injecting i.i.d. Bernoulli packet loss in front of another
/// queue discipline. Used by the §5 fairness experiments to measure
/// throughput as a function of loss probability (Mathis et al. style).
class RandomDropQueue : public QueueDiscipline {
 public:
  /// `drop_probability` in [0, 1]; `seed` makes runs reproducible.
  RandomDropQueue(std::unique_ptr<QueueDiscipline> inner,
                  double drop_probability, std::uint64_t seed);

  bool enqueue(const Packet& pkt, sim::SimTime now) override;
  std::optional<Packet> dequeue(sim::SimTime now) override;
  bool empty() const override { return inner_->empty(); }
  std::int64_t backlog_bytes() const override {
    return inner_->backlog_bytes();
  }
  std::size_t backlog_packets() const override {
    return inner_->backlog_packets();
  }

  std::int64_t random_drops() const { return random_drops_; }

  /// Forwards the context to the wrapped queue so its congestion drops are
  /// traced under the same link identity.
  void set_trace_context(sim::Simulator* sim, const char* name,
                         std::uint64_t track) override;

  /// Changes the loss probability mid-run (e.g. to emulate a transient
  /// blackout or a flapping link).
  void set_drop_probability(double p);
  double drop_probability() const { return p_; }

 private:
  std::unique_ptr<QueueDiscipline> inner_;
  double p_;
  std::uint64_t state_;
  std::int64_t random_drops_ = 0;
};

/// Convenience factories.
QueueFactory make_droptail_factory(std::int64_t capacity_bytes);
QueueFactory make_ecn_factory(std::int64_t capacity_bytes,
                              std::int64_t mark_threshold_bytes);
QueueFactory make_pfabric_factory(std::int64_t capacity_bytes);
QueueFactory make_random_drop_factory(double drop_probability,
                                      std::int64_t capacity_bytes,
                                      std::uint64_t seed = 99);
QueueFactory make_drr_factory(std::int64_t capacity_bytes,
                              std::int64_t quantum_bytes = 1500);
QueueFactory make_red_factory(RedQueue::Config cfg = {});

}  // namespace mltcp::net
