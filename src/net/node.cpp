#include "net/node.hpp"

#include <cassert>

#include "sim/simulator.hpp"
#include "telemetry/tracer.hpp"

namespace mltcp::net {

namespace {

/// splitmix64 finalizer: full-avalanche mix of the flow id, so consecutive
/// ids (the workload assigns them sequentially) spread evenly across an
/// ECMP set. Pure function of the id — deterministic across runs, machines
/// and thread counts.
std::uint32_t ecmp_hash(FlowId flow) {
  std::uint64_t z =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(flow)) +
      0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::uint32_t>(z ^ (z >> 31));
}

}  // namespace

void Switch::receive(const Packet& pkt) {
  const auto idx = static_cast<std::uint32_t>(pkt.dst);
  if (idx < routes_.size()) {
    const RouteEntry e = routes_[idx];
    if (e.count != 0) {
      Link* egress =
          pool_[e.base + (e.count == 1 ? 0u : ecmp_hash(pkt.flow) % e.count)];
      ++forwarded_;
      egress->send(pkt);
      return;
    }
  }
  ++routeless_drops_;
  trace_routeless_drop(pkt);
}

void Switch::set_route(NodeId dst, Link* egress) {
  assert(egress != nullptr);
  set_routes(dst, std::vector<Link*>{egress});
}

void Switch::set_routes(NodeId dst, const std::vector<Link*>& egresses) {
  assert(dst >= 0 && !egresses.empty());
  const auto idx = static_cast<std::size_t>(dst);
  if (idx >= routes_.size()) routes_.resize(idx + 1);
  // Re-pointing a destination abandons its old pool span; the pool is
  // rebuilt from scratch on every build_routes() pass (clear_routes), so
  // waste is bounded to manual set_route churn between passes.
  routes_[idx] = RouteEntry{static_cast<std::uint32_t>(pool_.size()),
                           static_cast<std::uint32_t>(egresses.size())};
  pool_.insert(pool_.end(), egresses.begin(), egresses.end());
}

void Switch::clear_routes(std::size_t n_nodes) {
  routes_.assign(n_nodes, RouteEntry{});
  pool_.clear();
}

void Switch::clear_route(NodeId dst) {
  const auto idx = static_cast<std::size_t>(dst);
  if (idx < routes_.size()) routes_[idx] = RouteEntry{};
}

void Switch::routes_using(const Link* link, std::vector<NodeId>& out) const {
  for (std::size_t dst = 0; dst < routes_.size(); ++dst) {
    const RouteEntry e = routes_[dst];
    for (std::uint32_t i = 0; i < e.count; ++i) {
      if (pool_[e.base + i] == link) {
        out.push_back(static_cast<NodeId>(dst));
        break;
      }
    }
  }
}

Link* Switch::route(NodeId dst) const {
  const auto idx = static_cast<std::uint32_t>(dst);
  if (idx >= routes_.size() || routes_[idx].count == 0) return nullptr;
  return pool_[routes_[idx].base];
}

Link* Switch::route_for_flow(NodeId dst, FlowId flow) const {
  const auto idx = static_cast<std::uint32_t>(dst);
  if (idx >= routes_.size()) return nullptr;
  const RouteEntry e = routes_[idx];
  if (e.count == 0) return nullptr;
  return pool_[e.base + (e.count == 1 ? 0u : ecmp_hash(flow) % e.count)];
}

std::size_t Switch::route_width(NodeId dst) const {
  const auto idx = static_cast<std::uint32_t>(dst);
  return idx < routes_.size() ? routes_[idx].count : 0;
}

void Switch::trace_routeless_drop(const Packet& pkt) const {
  if (trace_sim_ == nullptr) return;
  if (auto* t = telemetry::tracer_for(*trace_sim_,
                                      telemetry::Category::kQueue)) {
    t->instant(telemetry::Category::kQueue, "routeless_drop",
               trace_sim_->now(), telemetry::track_switch(id()), "flow",
               static_cast<double>(pkt.flow), "dst",
               static_cast<double>(pkt.dst));
  }
}

void Host::receive(const Packet& pkt) {
  const auto idx = static_cast<std::uint32_t>(pkt.flow);
  if (idx < handlers_.size() && handlers_[idx].handler) {
    ++delivered_;
    handlers_[idx].handler(pkt);
    return;
  }
  ++unclaimed_;
}

void Host::send(const Packet& pkt) {
  assert(uplink_ != nullptr && "host has no uplink");
  Packet out = pkt;
  out.src = id();
  uplink_->send(out);
}

Host::FlowHandle Host::register_flow(FlowId flow, PacketHandler handler) {
  assert(flow >= 0 && "flow ids must be dense non-negative indices");
  const auto idx = static_cast<std::size_t>(flow);
  if (idx >= handlers_.size()) handlers_.resize(idx + 1);
  HandlerSlot& slot = handlers_[idx];
  slot.handler = std::move(handler);
  ++slot.gen;
  return FlowHandle{flow, slot.gen};
}

void Host::unregister_flow(FlowId flow) {
  const auto idx = static_cast<std::uint32_t>(flow);
  if (idx >= handlers_.size() || !handlers_[idx].handler) return;
  handlers_[idx].handler = nullptr;
  ++handlers_[idx].gen;
}

void Host::unregister_flow(const FlowHandle& handle) {
  const auto idx = static_cast<std::uint32_t>(handle.flow);
  if (idx >= handlers_.size()) return;
  HandlerSlot& slot = handlers_[idx];
  // Only the live registration may unregister: a handle from before the id
  // was reused has a stale generation and must not tear down the new flow.
  if (slot.gen != handle.gen || !slot.handler) return;
  slot.handler = nullptr;
  ++slot.gen;
}

}  // namespace mltcp::net
