#include "net/node.hpp"

#include <cassert>

namespace mltcp::net {

void Switch::receive(Packet pkt) {
  Link* egress = route(pkt.dst);
  if (egress == nullptr) {
    ++routeless_drops_;
    return;
  }
  ++forwarded_;
  egress->send(pkt);
}

Link* Switch::route(NodeId dst) const {
  auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : it->second;
}

void Host::receive(Packet pkt) {
  auto it = handlers_.find(pkt.flow);
  if (it == handlers_.end()) {
    ++unclaimed_;
    return;
  }
  ++delivered_;
  it->second(pkt);
}

void Host::send(Packet pkt) {
  assert(uplink_ != nullptr && "host has no uplink");
  pkt.src = id();
  uplink_->send(pkt);
}

void Host::register_flow(FlowId flow, PacketHandler handler) {
  handlers_[flow] = std::move(handler);
}

void Host::unregister_flow(FlowId flow) { handlers_.erase(flow); }

}  // namespace mltcp::net
