// Forwarding-path data structures: the dense route/handler tables, the
// power-of-two packet ring, ECMP determinism and the pFabric min-max heap.
// These are the structures the cluster-scale benchmark leans on (see
// DESIGN.md "Forwarding path & scale"), so each invariant the hot path
// assumes — dense ids, generation-checked handles, exact byte accounting,
// pure-function hashing, multiset-identical pFabric order — is pinned here.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/node.hpp"
#include "net/queue.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mltcp::net {
namespace {

Packet make_pkt(NodeId dst, FlowId flow, std::int32_t size = 1500) {
  Packet p;
  p.dst = dst;
  p.flow = flow;
  p.size_bytes = size;
  return p;
}

// ------------------------------------------------- dense route tables

// Hosts and switches share one dense id space in creation order, so a
// switch's flat route table has entries for ids that are not hosts (and
// receives can carry ids beyond the table). Those gaps must read as
// "no route", never as stale pointers or out-of-bounds access.
TEST(Forwarding, DenseRouteTablesAcrossNodeIdGaps) {
  sim::Simulator sim;
  Topology topo(sim);
  // Interleave node kinds so host ids are non-contiguous: 0, 2, 4.
  Host* h0 = topo.add_host("h0");
  Switch* s0 = topo.add_switch("s0");
  Host* h1 = topo.add_host("h1");
  Switch* s1 = topo.add_switch("s1");
  Host* h2 = topo.add_host("h2");
  ASSERT_EQ(h0->id(), 0);
  ASSERT_EQ(h1->id(), 2);
  ASSERT_EQ(h2->id(), 4);

  const QueueFactory q = make_droptail_factory(64 * 1500);
  topo.connect(*h0, *s0, 1e9, sim::microseconds(1), q);
  topo.connect(*s0, *s1, 1e9, sim::microseconds(1), q);
  topo.connect(*s1, *h1, 1e9, sim::microseconds(1), q);
  topo.connect(*s1, *h2, 1e9, sim::microseconds(1), q);
  topo.build_routes();

  // Host destinations resolve through the gaps.
  EXPECT_EQ(s0->route(h0->id()), topo.link_between(*s0, *h0));
  EXPECT_EQ(s0->route(h1->id()), topo.link_between(*s0, *s1));
  EXPECT_EQ(s0->route(h2->id()), topo.link_between(*s0, *s1));
  EXPECT_EQ(s0->route_width(h1->id()), 1u);

  // Switch ids sit in the table but are not routed destinations.
  EXPECT_EQ(s0->route(s1->id()), nullptr);
  EXPECT_EQ(s0->route_width(s1->id()), 0u);

  // Ids beyond the table (and the invalid sentinel) are clean misses.
  EXPECT_EQ(s0->route(999), nullptr);
  EXPECT_EQ(s0->route_for_flow(999, 7), nullptr);
  EXPECT_EQ(s0->route_width(999), 0u);
  EXPECT_EQ(s0->route(kInvalidNode), nullptr);

  // receive() counts those as routeless drops and keeps forwarding.
  s0->receive(make_pkt(s1->id(), 1));
  s0->receive(make_pkt(999, 1));
  s0->receive(make_pkt(kInvalidNode, 1));
  EXPECT_EQ(s0->routeless_drops(), 3);
  EXPECT_EQ(s0->forwarded_packets(), 0);
  s0->receive(make_pkt(h1->id(), 1));
  EXPECT_EQ(s0->forwarded_packets(), 1);
  EXPECT_EQ(s0->routeless_drops(), 3);
}

// ----------------------------------------------- handler generations

TEST(Forwarding, HandlerTableHandlesSparseFlowIds) {
  Host h(0, "h");
  int hits = 0;
  // Registering flow 5 first leaves slots 0..4 empty, not undefined.
  h.register_flow(5, [&](const Packet&) { ++hits; });
  h.receive(make_pkt(0, 2));
  EXPECT_EQ(h.unclaimed_packets(), 1);
  h.receive(make_pkt(0, 5));
  EXPECT_EQ(h.delivered_packets(), 1);
  EXPECT_EQ(hits, 1);
  // Beyond the table and the invalid sentinel: unclaimed, no crash.
  h.receive(make_pkt(0, 1000));
  h.receive(make_pkt(0, kInvalidFlow));
  EXPECT_EQ(h.unclaimed_packets(), 3);
}

TEST(Forwarding, StaleHandleCannotUnregisterReusedFlowId) {
  Host h(0, "h");
  std::string hit;
  const Host::FlowHandle a =
      h.register_flow(3, [&](const Packet&) { hit = "a"; });
  h.unregister_flow(a);
  h.receive(make_pkt(0, 3));
  EXPECT_EQ(h.unclaimed_packets(), 1);

  // The id is reused; the old handle must now be inert.
  const Host::FlowHandle b =
      h.register_flow(3, [&](const Packet&) { hit = "b"; });
  h.unregister_flow(a);
  h.receive(make_pkt(0, 3));
  EXPECT_EQ(hit, "b");
  EXPECT_EQ(h.delivered_packets(), 1);

  // Registering over a live handler invalidates its handle too.
  h.register_flow(3, [&](const Packet&) { hit = "c"; });
  h.unregister_flow(b);
  h.receive(make_pkt(0, 3));
  EXPECT_EQ(hit, "c");

  // Unconditional unregister always tears down; default handles are inert.
  h.unregister_flow(3);
  h.unregister_flow(Host::FlowHandle{});
  h.receive(make_pkt(0, 3));
  EXPECT_EQ(h.unclaimed_packets(), 2);
}

// ------------------------------------------------------- packet ring

TEST(Forwarding, PacketRingPreservesFifoAcrossWraparound) {
  PacketRing ring;
  // Interleaved push/pop drives the monotonic counters through many
  // multiples of the capacity; order must survive every wrap.
  std::int64_t pushed = 0, popped = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 5; ++i) {
      Packet p;
      p.seq = pushed++;
      ring.push_back(p);
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(ring.front().seq, popped++);
      ring.pop_front();
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 8u);  // 5 in flight fit the first allocation.

  // Growth at a capacity boundary with a non-zero head offset: the
  // relinearization must keep FIFO order.
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.seq = pushed++;
    ring.push_back(p);
  }
  ASSERT_EQ(ring.front().seq, popped++);
  ring.pop_front();
  while (ring.size() < ring.capacity()) {
    Packet p;
    p.seq = pushed++;
    ring.push_back(p);
  }
  Packet p;
  p.seq = pushed++;
  ring.push_back(p);  // One past capacity: grows mid-wrap.
  EXPECT_EQ(ring.capacity(), 16u);
  EXPECT_EQ(ring.capacity() & (ring.capacity() - 1), 0u);
  while (!ring.empty()) {
    ASSERT_EQ(ring.front().seq, popped++);
    ring.pop_front();
  }
  EXPECT_EQ(popped, pushed);
}

TEST(Forwarding, DropTailByteAccountingExactAcrossWrap) {
  DropTailQueue q(10 * 150);
  std::int64_t expected = 0;
  std::uint64_t rng = 7;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 33;
  };
  // Enough churn that the backing ring wraps repeatedly; the byte count
  // must track admissions and departures exactly, including at the
  // capacity boundary where arrivals bounce.
  for (int i = 0; i < 2000; ++i) {
    const std::int32_t size = 40 + static_cast<std::int32_t>(next() % 111);
    if (next() % 3 != 0) {
      if (q.enqueue(make_pkt(0, 1, size), 0)) {
        expected += size;
      } else {
        EXPECT_GT(expected + size, 10 * 150);  // Only full queues drop.
      }
    } else if (auto pkt = q.dequeue(0)) {
      expected -= pkt->size_bytes;
    }
    ASSERT_EQ(q.backlog_bytes(), expected);
  }
  while (auto pkt = q.dequeue(0)) expected -= pkt->size_bytes;
  EXPECT_EQ(expected, 0);
  EXPECT_EQ(q.backlog_bytes(), 0);
  EXPECT_GT(q.stats().dropped_packets, 0);
}

// ------------------------------------------------------------- ECMP

/// Maps the egress `tor` picks for (dst, flow) to a spine index.
int spine_of(const LeafSpine& ls, Switch* tor, NodeId dst, FlowId flow) {
  Link* egress = tor->route_for_flow(dst, flow);
  for (std::size_t s = 0; s < ls.spines.size(); ++s) {
    if (egress == ls.topology->link_between(*tor, *ls.spines[s])) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

TEST(Forwarding, EcmpIsDeterministicAcrossBuildsAndThreadEnv) {
  // The spine choice is a pure function of the flow id and the candidate
  // order fixed by connect() order — so two independent builds agree, and
  // MLTCP_THREADS (which parallelises the campaign runner, not the
  // forwarding path) cannot influence it.
  const auto picks_under = [](const char* threads) {
    setenv("MLTCP_THREADS", threads, 1);
    sim::Simulator sim;
    LeafSpineConfig cfg;
    cfg.racks = 4;
    cfg.hosts_per_rack = 2;
    cfg.spines = 4;
    LeafSpine ls = make_leaf_spine(sim, cfg);
    Switch* tor = ls.tors[0];
    const NodeId dst = ls.racks[2][1]->id();
    EXPECT_EQ(tor->route_width(dst), 4u);
    std::vector<int> picks;
    for (FlowId f = 0; f < 512; ++f) {
      const int s = spine_of(ls, tor, dst, f);
      EXPECT_GE(s, 0);
      EXPECT_EQ(s, spine_of(ls, tor, dst, f));  // Stable on re-query.
      picks.push_back(s);
    }
    return picks;
  };

  char* old = getenv("MLTCP_THREADS");
  const std::string saved = old != nullptr ? old : "";
  const std::vector<int> serial = picks_under("1");
  const std::vector<int> parallel = picks_under("4");
  if (old != nullptr) {
    setenv("MLTCP_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("MLTCP_THREADS");
  }
  EXPECT_EQ(serial, parallel);

  // The hash spreads consecutive flow ids across the whole set: every
  // spine carries a meaningful share of the 512 flows.
  std::vector<int> per_spine(4, 0);
  for (const int s : serial) ++per_spine[s];
  for (const int n : per_spine) EXPECT_GT(n, 512 / 16);
}

TEST(Forwarding, SameRackTrafficNeverClimbsToSpines) {
  sim::Simulator sim;
  LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 4;
  cfg.spines = 2;
  LeafSpine ls = make_leaf_spine(sim, cfg);
  Switch* tor = ls.tors[0];
  const NodeId dst = ls.racks[0][3]->id();
  EXPECT_EQ(tor->route_width(dst), 1u);
  for (FlowId f = 0; f < 32; ++f) {
    EXPECT_EQ(tor->route_for_flow(dst, f),
              ls.topology->link_between(*tor, *ls.racks[0][3]));
  }
}

// --------------------------------------------------- route build cost

TEST(Forwarding, BuildRoutesIsOneBfsPerDestination) {
  sim::Simulator sim;
  LeafSpineConfig cfg;
  cfg.racks = 8;
  cfg.hosts_per_rack = 4;
  cfg.spines = 2;
  LeafSpine ls = make_leaf_spine(sim, cfg);
  const RouteBuildStats& st = ls.topology->route_build_stats();
  const std::int64_t hosts = 8 * 4;
  EXPECT_EQ(st.destinations, hosts);
  // connect() makes two directed links: one per host, racks*spines fabric.
  EXPECT_EQ(st.directed_edges, 2 * (hosts + 8 * 2));
  EXPECT_GT(st.edges_scanned, 0);
  // Per destination the builder touches each directed edge at most twice —
  // once discovering distances, once collecting ECMP candidates — so the
  // whole pass is O(hosts * edges), never per (source, destination) pair.
  EXPECT_LE(st.edges_scanned, 2 * st.destinations * st.directed_edges);
}

// --------------------------------------- pFabric differential testing

/// The original multiset-backed pFabric implementation, kept as the
/// executable specification: the min-max heap must reproduce its admission
/// decisions, evictions and dequeue order exactly (same total order on
/// (priority, arrival_seq), same eviction rule).
class PfabricReference {
 public:
  explicit PfabricReference(std::int64_t capacity) : capacity_(capacity) {}

  bool enqueue(const Packet& pkt) {
    while (backlog_ + pkt.size_bytes > capacity_ && !q_.empty()) {
      auto worst = std::prev(q_.end());
      if (worst->pkt.priority <= pkt.priority) return false;
      backlog_ -= worst->pkt.size_bytes;
      q_.erase(worst);
    }
    if (backlog_ + pkt.size_bytes > capacity_) return false;
    q_.insert(Entry{pkt.priority, arrivals_++, pkt});
    backlog_ += pkt.size_bytes;
    return true;
  }

  std::optional<Packet> dequeue() {
    if (q_.empty()) return std::nullopt;
    const Packet pkt = q_.begin()->pkt;
    backlog_ -= pkt.size_bytes;
    q_.erase(q_.begin());
    return pkt;
  }

  std::optional<Packet> enqueue_dequeue(const Packet& pkt) {
    if (!q_.empty()) {
      if (!enqueue(pkt)) return std::nullopt;
      return dequeue();
    }
    if (pkt.size_bytes > capacity_) return std::nullopt;
    ++arrivals_;
    return pkt;
  }

  std::int64_t backlog_bytes() const { return backlog_; }

 private:
  struct Entry {
    std::int64_t priority;
    std::uint64_t seq;
    Packet pkt;
    bool operator<(const Entry& o) const {
      if (priority != o.priority) return priority < o.priority;
      return seq < o.seq;
    }
  };
  std::int64_t capacity_;
  std::int64_t backlog_ = 0;
  std::uint64_t arrivals_ = 0;
  std::multiset<Entry> q_;
};

void expect_same_packet(const std::optional<Packet>& got,
                        const std::optional<Packet>& want, int step) {
  ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
  if (!got.has_value()) return;
  EXPECT_EQ(got->flow, want->flow) << "step " << step;
  EXPECT_EQ(got->seq, want->seq) << "step " << step;
  EXPECT_EQ(got->priority, want->priority) << "step " << step;
  EXPECT_EQ(got->size_bytes, want->size_bytes) << "step " << step;
}

TEST(Forwarding, PfabricHeapMatchesMultisetReferenceOnSeededTrace) {
  // Small capacity so the trace spends much of its time at the eviction
  // boundary, and a narrow priority range so the arrival-seq tiebreak is
  // exercised constantly.
  const std::int64_t cap = 8 * 1500;
  PfabricPriorityQueue heap(cap);
  PfabricReference ref(cap);

  std::uint64_t rng = 0x2545F4914F6CDD1DULL;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t op = next() % 10;
    if (op < 5) {  // enqueue
      Packet p = make_pkt(0, static_cast<FlowId>(i % 97),
                          static_cast<std::int32_t>(200 + next() % 1301));
      p.seq = i;
      p.priority = static_cast<std::int64_t>(next() % 5);
      EXPECT_EQ(heap.enqueue(p, 0), ref.enqueue(p)) << "step " << i;
    } else if (op < 8) {  // dequeue
      expect_same_packet(heap.dequeue(0), ref.dequeue(), i);
    } else {  // enqueue_dequeue (idle-transmitter path)
      Packet p = make_pkt(0, static_cast<FlowId>(i % 97),
                          static_cast<std::int32_t>(200 + next() % 1301));
      p.seq = i;
      p.priority = static_cast<std::int64_t>(next() % 5);
      expect_same_packet(heap.enqueue_dequeue(p, 0), ref.enqueue_dequeue(p),
                         i);
    }
    ASSERT_EQ(heap.backlog_bytes(), ref.backlog_bytes()) << "step " << i;
    ASSERT_EQ(heap.empty(), ref.backlog_bytes() == 0) << "step " << i;
  }

  // Drain: the remaining contents must come out in the identical order.
  for (int step = 0; !heap.empty(); ++step) {
    expect_same_packet(heap.dequeue(0), ref.dequeue(), 100000 + step);
  }
  EXPECT_FALSE(ref.dequeue().has_value());
}

}  // namespace
}  // namespace mltcp::net
