// Tests for the flow monitor and the multi-job analysis extensions.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/flow_monitor.hpp"
#include "analysis/shift.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "tcp/reno.hpp"

namespace mltcp::analysis {
namespace {

// ------------------------------------------------------------ FlowMonitor

struct MonitoredFlow {
  sim::Simulator sim;
  net::Dumbbell d;
  std::unique_ptr<tcp::TcpFlow> flow;
  std::unique_ptr<FlowMonitor> monitor;

  MonitoredFlow() {
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = 1;
    d = net::make_dumbbell(sim, cfg);
    flow = std::make_unique<tcp::TcpFlow>(sim, *d.left[0], *d.right[0], 1,
                                          std::make_unique<tcp::RenoCC>());
    monitor = std::make_unique<FlowMonitor>(sim, flow->sender(),
                                            sim::milliseconds(1));
  }
};

TEST(FlowMonitor, SamplesAtConfiguredInterval) {
  MonitoredFlow m;
  m.flow->send_message(1'000'000, [](sim::SimTime) {});
  m.sim.run_until(sim::milliseconds(50));
  // ~50 samples at 1 ms cadence (plus the t=0 sample).
  EXPECT_GE(m.monitor->samples().size(), 45u);
  EXPECT_LE(m.monitor->samples().size(), 55u);
  for (std::size_t i = 1; i < m.monitor->samples().size(); ++i) {
    EXPECT_EQ(m.monitor->samples()[i].when -
                  m.monitor->samples()[i - 1].when,
              sim::milliseconds(1));
  }
}

TEST(FlowMonitor, ObservesSlowStartGrowth) {
  MonitoredFlow m;
  m.flow->send_message(5'000'000, [](sim::SimTime) {});
  m.sim.run_until(sim::milliseconds(30));
  const auto& samples = m.monitor->samples();
  ASSERT_GE(samples.size(), 10u);
  EXPECT_DOUBLE_EQ(samples.front().cwnd, 10.0);
  EXPECT_GT(samples.back().cwnd, 20.0);
}

TEST(FlowMonitor, AckRateMatchesLinkRate) {
  MonitoredFlow m;
  m.flow->send_message(20'000'000, [](sim::SimTime) {});
  m.sim.run_until(sim::milliseconds(150));
  // Steady state: 1 Gbps / 1500 B wire = ~83.3k segments/s.
  const double rate =
      m.monitor->ack_rate(sim::milliseconds(50), sim::milliseconds(150));
  EXPECT_NEAR(rate, 83'333.0, 8'000.0);
}

TEST(FlowMonitor, StopHaltsSampling) {
  MonitoredFlow m;
  m.flow->send_message(1'000'000, [](sim::SimTime) {});
  m.sim.run_until(sim::milliseconds(5));
  m.monitor->stop();
  const auto n = m.monitor->samples().size();
  m.sim.run_until(sim::milliseconds(50));
  EXPECT_EQ(m.monitor->samples().size(), n);
}

TEST(FlowMonitor, MeanCwndWindowed) {
  MonitoredFlow m;
  m.flow->send_message(1'000'000, [](sim::SimTime) {});
  m.sim.run_until(sim::milliseconds(20));
  EXPECT_GT(m.monitor->mean_cwnd(0, sim::milliseconds(20)), 0.0);
  EXPECT_DOUBLE_EQ(
      m.monitor->mean_cwnd(sim::seconds(5), sim::seconds(6)), 0.0);
}

// ----------------------------------------------------------- multi-job

ShiftParams params(double alpha = 0.2) {
  ShiftParams p;
  p.alpha = alpha;
  p.period = 1.8;
  return p;
}

bool pairwise_interleaved(const std::vector<double>& offsets,
                          const ShiftParams& p, double slack = 1e-3) {
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    for (std::size_t j = 0; j < offsets.size(); ++j) {
      if (i == j) continue;
      double d = std::fmod(offsets[j] - offsets[i], p.period);
      if (d < 0) d += p.period;
      if (d < p.alpha * p.period - slack &&
          d > slack) {  // inside the overlap band
        return false;
      }
      if (d <= slack && i < j) return false;  // coincident starts
    }
  }
  return true;
}

TEST(MultiJob, LossIsPairwiseSum) {
  const ShiftParams p = params();
  const std::vector<double> offsets = {0.0, 0.3, 1.0};
  const double expected = loss(0.3, p) + loss(1.0, p) + loss(0.7, p);
  EXPECT_NEAR(multi_job_loss(offsets, p), expected, 1e-9);
}

TEST(MultiJob, InterleavedConfigurationIsMinimal) {
  const ShiftParams p = params(0.25);
  const std::vector<double> spread = {0.0, 0.45, 0.9, 1.35};
  const std::vector<double> clumped = {0.0, 0.05, 0.10, 0.15};
  EXPECT_LT(multi_job_loss(spread, p), multi_job_loss(clumped, p));
}

TEST(MultiJob, StepConservesOffsetSum) {
  const ShiftParams p = params();
  const std::vector<double> offsets = {0.0, 0.1, 0.2, 0.9};
  const auto next = multi_job_step(offsets, p);
  double before = 0.0;
  double after = 0.0;
  for (double d : offsets) before += d;
  for (double d : next) after += d;
  // The extended shift is antisymmetric, so pairwise moves cancel; offsets
  // may individually wrap around the circle, so compare modulo the period.
  EXPECT_NEAR(std::remainder(before - after, p.period), 0.0, 1e-9);
}

TEST(MultiJob, DescentReachesInterleaving) {
  const ShiftParams p = params();
  const auto res =
      multi_descend({0.0, 0.02, 0.04, 0.06}, p, 500, 1e-5);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(pairwise_interleaved(res.trajectory.back(), p));
}

TEST(MultiJob, DescentLossTrendsDownward) {
  // All jobs move simultaneously (a Jacobi-style update), so individual
  // steps may overshoot slightly; the trend and the endpoint must still
  // descend the landscape.
  const ShiftParams p = params();
  const auto res = multi_descend({0.0, 0.05, 0.40, 0.45}, p, 200, 1e-5);
  const double first = multi_job_loss(res.trajectory.front(), p);
  const double last = multi_job_loss(res.trajectory.back(), p);
  EXPECT_LT(last, first);
  double prev = first;
  for (std::size_t k = 1; k < res.trajectory.size(); ++k) {
    const double cur = multi_job_loss(res.trajectory[k], p);
    EXPECT_LE(cur, prev + 0.02) << "large loss increase at iteration " << k;
    prev = cur;
  }
}

TEST(MultiJob, TwoJobCaseMatchesScalarDescent) {
  ShiftParams p = params(0.5);
  const auto multi = multi_descend({0.0, 0.2}, p, 300, 1e-6);
  ASSERT_TRUE(multi.converged);
  const auto& last = multi.trajectory.back();
  double rel = std::fmod(last[1] - last[0], p.period);
  if (rel < 0) rel += p.period;
  // The scalar recursion moves only one job; the symmetric two-job system
  // splits the same relative motion between both. Relative offsets agree.
  EXPECT_NEAR(rel, p.period / 2.0, 0.02);
}

}  // namespace
}  // namespace mltcp::analysis
