// Telemetry subsystem: tracer gating and near-zero disabled cost contract,
// flight-recorder ring semantics, sink output formats, metric registry, and
// the component stat collectors.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "net/queue.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "tcp/reno.hpp"
#include "telemetry/collect.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/tracer.hpp"
#include "workload/cluster.hpp"

namespace mltcp {
namespace {

using telemetry::Category;
using telemetry::EventType;
using telemetry::TraceEvent;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// ------------------------------------------------------------------ Tracer

TEST(Tracer, GatesOnAttachedTracerAndCategoryMask) {
  sim::Simulator sim;
  // No tracer attached: the gate is null for every category.
  EXPECT_EQ(telemetry::tracer_for(sim, Category::kTcp), nullptr);

  telemetry::Tracer tracer(
      telemetry::Tracer::Config{Category::kTcp | Category::kJob, 0});
  sim.set_tracer(&tracer);
  EXPECT_EQ(telemetry::tracer_for(sim, Category::kTcp), &tracer);
  EXPECT_EQ(telemetry::tracer_for(sim, Category::kJob), &tracer);
  EXPECT_EQ(telemetry::tracer_for(sim, Category::kQueue), nullptr);
  EXPECT_EQ(telemetry::tracer_for(sim, Category::kTcpAck), nullptr);

  tracer.set_categories(telemetry::kAllCategories);
  EXPECT_EQ(telemetry::tracer_for(sim, Category::kTcpAck), &tracer);
}

TEST(Tracer, ConvenienceEmittersFillEvents) {
  telemetry::Tracer tracer(
      telemetry::Tracer::Config{telemetry::kAllCategories, 0});
  telemetry::InMemorySink sink;
  tracer.add_sink(&sink);

  tracer.instant(Category::kTcp, "rto", sim::milliseconds(3), 7, "rto_us",
                 200.0, "inflight", 12.0);
  tracer.counter(Category::kFlow, "cwnd", sim::milliseconds(4), 7, 33.5);
  tracer.begin(Category::kJob, "comm", sim::milliseconds(5),
               telemetry::track_job(0));
  tracer.end(Category::kJob, "comm", sim::milliseconds(6),
             telemetry::track_job(0));

  ASSERT_EQ(sink.events().size(), 4u);
  EXPECT_EQ(tracer.emitted(), 4u);

  const TraceEvent& rto = sink.events()[0];
  EXPECT_EQ(rto.type, EventType::kInstant);
  EXPECT_STREQ(rto.name, "rto");
  EXPECT_EQ(rto.when, sim::milliseconds(3));
  EXPECT_EQ(rto.track, 7u);
  EXPECT_STREQ(rto.v0_name, "rto_us");
  EXPECT_DOUBLE_EQ(rto.v0, 200.0);
  EXPECT_STREQ(rto.v1_name, "inflight");
  EXPECT_DOUBLE_EQ(rto.v1, 12.0);

  EXPECT_EQ(sink.events()[1].type, EventType::kCounter);
  EXPECT_DOUBLE_EQ(sink.events()[1].v0, 33.5);
  EXPECT_EQ(sink.events()[2].type, EventType::kBegin);
  EXPECT_EQ(sink.events()[3].type, EventType::kEnd);
  EXPECT_EQ(sink.count("comm"), 2u);
}

TEST(Tracer, FlightRecorderKeepsLastNOldestFirst) {
  telemetry::Tracer tracer(
      telemetry::Tracer::Config{telemetry::kAllCategories, 4});
  ASSERT_TRUE(tracer.ring_enabled());

  static const char* kNames[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) {
    tracer.instant(Category::kCustom, kNames[i], sim::milliseconds(i), 0);
  }

  EXPECT_EQ(tracer.emitted(), 6u);
  EXPECT_EQ(tracer.ring_overwritten(), 2u);
  const auto snap = tracer.ring_snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_STREQ(snap[0].name, "e2");
  EXPECT_STREQ(snap[3].name, "e5");

  // dump_ring replays the same events into a sink.
  telemetry::InMemorySink dump;
  tracer.dump_ring(dump);
  ASSERT_EQ(dump.events().size(), 4u);
  EXPECT_STREQ(dump.events()[0].name, "e2");
}

TEST(Tracer, RingWithoutSinksStillRecords) {
  telemetry::Tracer tracer(
      telemetry::Tracer::Config{telemetry::kAllCategories, 8});
  tracer.instant(Category::kCustom, "lonely", 0, 0);
  EXPECT_EQ(tracer.ring_snapshot().size(), 1u);
}

// ------------------------------------------------------------------- sinks

TEST(TraceSinks, CsvSinkWritesOneRowPerEvent) {
  const std::string path = tmp_path("trace_events.csv");
  {
    telemetry::Tracer tracer(
        telemetry::Tracer::Config{telemetry::kAllCategories, 0});
    telemetry::CsvTraceSink sink(path);
    tracer.add_sink(&sink);
    tracer.counter(Category::kFlow, "cwnd", sim::seconds(1), 3, 20.0);
    tracer.instant(Category::kTcp, "rto", sim::seconds(2), 3, "rto_us",
                   400.0);
    sink.finish();
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("time_s,category,type,name,track"), std::string::npos);
  EXPECT_NE(text.find("1.000000000,flow,counter,cwnd,3,value,20"),
            std::string::npos);
  EXPECT_NE(text.find("2.000000000,tcp,instant,rto,3,rto_us,400"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceSinks, ChromeSinkEmitsLoadableTraceJson) {
  const std::string path = tmp_path("trace_events.json");
  {
    telemetry::Tracer tracer(
        telemetry::Tracer::Config{telemetry::kAllCategories, 0});
    telemetry::ChromeTraceSink sink(path);
    tracer.add_sink(&sink);
    tracer.counter(Category::kFlow, "cwnd", sim::microseconds(1500), 3, 20.0);
    tracer.begin(Category::kJob, "comm", sim::seconds(1),
                 telemetry::track_job(0));
    tracer.end(Category::kJob, "comm", sim::seconds(2),
               telemetry::track_job(0));
    tracer.instant(Category::kTcp, "rto", sim::seconds(3), 3);
    sink.finish();
    sink.finish();  // idempotent
    EXPECT_EQ(sink.events_written(), 4u);
  }
  const std::string text = slurp(path);
  EXPECT_EQ(text.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(text.substr(text.size() - 4), "\n]}\n");
  // Track metadata names the process; ts is microseconds.
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"flow 3\""), std::string::npos);
  EXPECT_NE(text.find("\"job 0\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1500.000"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceSinks, TrackNamesFollowNamespaces) {
  EXPECT_EQ(telemetry::track_name(telemetry::track_flow(5)), "flow 5");
  EXPECT_EQ(telemetry::track_name(telemetry::track_job(2)), "job 2");
  EXPECT_EQ(telemetry::track_name(telemetry::track_link(1)), "link 1");
}

// ----------------------------------------------------------------- metrics

TEST(MetricRegistry, CountersGaugesAndHistograms) {
  telemetry::MetricRegistry reg;
  reg.counter("tcp/retransmissions").add(3);
  reg.counter("tcp/retransmissions").add();
  reg.gauge("tcp/cwnd").set(17.5);
  auto& h = reg.histogram("job/iter_time_s");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));

  EXPECT_EQ(reg.counter("tcp/retransmissions").value(), 4);
  EXPECT_DOUBLE_EQ(reg.gauge("tcp/cwnd").value(), 17.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_TRUE(reg.contains("tcp/cwnd"));
  EXPECT_FALSE(reg.contains("tcp/nope"));
}

TEST(MetricRegistry, KindMismatchThrows) {
  telemetry::MetricRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
}

TEST(MetricRegistry, SnapshotIsSortedAndExpandsHistograms) {
  telemetry::MetricRegistry reg;
  reg.gauge("b").set(2.0);
  reg.counter("a").add(1);
  reg.histogram("c").observe(7.0);

  // Metrics are ordered by name; a histogram expands in place with a fixed
  // suffix order (count, min, mean, p50, p99, max).
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 8u);  // a, b, and six c.* expansions
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_EQ(snap[2].name, "c.count");
  EXPECT_DOUBLE_EQ(snap[2].value, 1.0);
  EXPECT_EQ(snap[7].name, "c.max");
  EXPECT_DOUBLE_EQ(snap[7].value, 7.0);

  const std::string table = reg.table();
  EXPECT_NE(table.find("c.p99"), std::string::npos);

  const std::string path = tmp_path("registry.csv");
  reg.write_csv(path);
  const std::string text = slurp(path);
  EXPECT_EQ(text.find("metric,value"), 0u);
  EXPECT_NE(text.find("c.count,1"), std::string::npos);
  std::remove(path.c_str());
}

// -------------------------------------------------------------- collectors

TEST(Collectors, QueueStatsLandInRegistry) {
  net::DropTailQueue q(3000);
  for (int i = 0; i < 4; ++i) {
    net::Packet pkt;
    pkt.size_bytes = 1500;
    q.enqueue(pkt, 0);  // two fit, two drop
  }
  telemetry::MetricRegistry reg;
  telemetry::collect_queue(reg, "net/bottleneck", q);
  EXPECT_EQ(reg.counter("net/bottleneck/enqueued").value(), 2);
  EXPECT_EQ(reg.counter("net/bottleneck/drops").value(), 2);
  EXPECT_DOUBLE_EQ(reg.gauge("net/bottleneck/max_backlog_bytes").value(),
                   3000.0);
}

TEST(Collectors, ClusterRollupCoversJobsAndFlows) {
  sim::Simulator sim;
  net::DumbbellConfig dcfg;
  dcfg.hosts_per_side = 2;
  net::Dumbbell d = net::make_dumbbell(sim, dcfg);
  workload::Cluster cluster(sim);

  workload::JobSpec spec;
  spec.name = "probe";
  spec.flows = workload::single_flow(d.left[0], d.right[0], 1'000'000);
  spec.compute_time = sim::milliseconds(10);
  spec.max_iterations = 3;
  spec.cc = [] { return std::make_unique<tcp::RenoCC>(); };
  workload::Job* job = cluster.add_job(spec);

  cluster.start_all();
  sim.run_until(sim::seconds(30));
  ASSERT_EQ(job->completed_iterations(), 3);

  telemetry::MetricRegistry reg;
  telemetry::collect_cluster(reg, "cluster", cluster);
  telemetry::collect_switch(reg, "net/sw0", *d.left_switch);
  telemetry::collect_link(reg, "net/bottleneck", *d.bottleneck);
  telemetry::collect_host(reg, "net/right0", *d.right[0]);

  EXPECT_EQ(reg.counter("cluster/job/probe/iterations").value(), 3);
  const auto flow_id = cluster.flows_of(0).front()->id();
  const std::string flow_prefix =
      "cluster/flow/" + std::to_string(flow_id);
  EXPECT_GT(reg.counter(flow_prefix + "/data_packets_sent").value(), 0);
  EXPECT_EQ(reg.counter(flow_prefix + "/messages_completed").value(), 3);
  EXPECT_GT(reg.counter("net/sw0/forwarded").value(), 0);
  EXPECT_EQ(reg.counter("net/sw0/routeless_drops").value(), 0);
  EXPECT_GT(reg.counter("net/bottleneck/bytes_tx").value(), 1'000'000);
  EXPECT_GT(reg.counter("net/right0/delivered").value(), 0);
}

// ------------------------------------------------- end-to-end instrumentation

TEST(Instrumentation, PacketRunEmitsJobFlowAndQueueEvents) {
  sim::Simulator sim;
  net::DumbbellConfig dcfg;
  dcfg.hosts_per_side = 2;
  // A tiny buffer guarantees drops, so kQueue events must appear.
  dcfg.bottleneck_queue = [] {
    return std::make_unique<net::DropTailQueue>(8 * 1500);
  };
  net::Dumbbell d = net::make_dumbbell(sim, dcfg);

  telemetry::Tracer tracer(telemetry::Tracer::Config{
      Category::kJob | Category::kQueue | Category::kTcp, 0});
  telemetry::InMemorySink sink;
  tracer.add_sink(&sink);
  sim.set_tracer(&tracer);

  workload::Cluster cluster(sim);
  workload::JobSpec spec;
  spec.name = "j0";
  spec.flows = workload::single_flow(d.left[0], d.right[0], 2'000'000);
  spec.compute_time = sim::milliseconds(5);
  spec.max_iterations = 2;
  spec.cc = [] { return std::make_unique<tcp::RenoCC>(); };
  workload::Job* job = cluster.add_job(spec);

  cluster.start_all();
  sim.run_until(sim::seconds(30));
  ASSERT_EQ(job->completed_iterations(), 2);

  // Phase slices pair up and iterations are marked.
  EXPECT_EQ(sink.count("comm"), 4u);     // 2 begins + 2 ends
  EXPECT_EQ(sink.count("compute"), 4u);
  EXPECT_EQ(sink.count("iteration"), 2u);
  // The shallow buffer forced drops and loss recovery.
  EXPECT_GT(sink.count("drop"), 0u);
  EXPECT_GT(sink.count("fast_retransmit") + sink.count("rto"), 0u);
  // Job events share the job's track.
  const auto comm = sink.named("comm");
  EXPECT_EQ(comm.front().track, job->trace_track());
}

TEST(Instrumentation, DisabledCategoriesEmitNothing) {
  sim::Simulator sim;
  net::DumbbellConfig dcfg;
  dcfg.hosts_per_side = 2;
  net::Dumbbell d = net::make_dumbbell(sim, dcfg);

  telemetry::Tracer tracer;  // mask = 0: attached but everything disabled
  telemetry::InMemorySink sink;
  tracer.add_sink(&sink);
  sim.set_tracer(&tracer);

  tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1,
                    std::make_unique<tcp::RenoCC>());
  sim::SimTime done = -1;
  flow.send_message(1'000'000, [&](sim::SimTime t) { done = t; });
  sim.run_until(sim::seconds(10));
  ASSERT_GT(done, 0);
  EXPECT_EQ(tracer.emitted(), 0u);
  EXPECT_TRUE(sink.events().empty());
}

}  // namespace
}  // namespace mltcp
