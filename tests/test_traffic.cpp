// Traffic-matrix subsystem tests: pattern generation must be a pure function
// of (config, n_hosts); the source's FCT accounting must reconcile posted /
// completed / open; the shuffle and serving jobs must respect their barrier
// and fan-out semantics; queue drop/mark counters must reconcile with
// sent-minus-delivered under synchronized incast; and a faulted campaign
// that carries traffic must stay byte-identical across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/metrics.hpp"
#include "net/queue.hpp"
#include "net/topology.hpp"
#include "runner/campaign.hpp"
#include "runner/sinks.hpp"
#include "scenario/engine.hpp"
#include "scenario/scenario.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/flow.hpp"
#include "tcp/reno.hpp"
#include "traffic/jobs.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"

namespace mltcp {
namespace {

using traffic::FlowArrival;
using traffic::Pattern;
using traffic::SizeDist;
using traffic::TrafficConfig;

tcp::CcFactory reno() {
  return [] { return std::make_unique<tcp::RenoCC>(); };
}

// ---------------------------------------------------------------- patterns

TEST(TrafficPattern, GenerationIsAPureFunctionOfConfig) {
  TrafficConfig cfg;
  cfg.pattern = Pattern::kPoisson;
  cfg.size_dist = SizeDist::kPareto;
  cfg.seed = 42;
  const auto a = traffic::generate_arrivals(cfg, 8);
  const auto b = traffic::generate_arrivals(cfg, 8);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  cfg.seed = 43;
  const auto c = traffic::generate_arrivals(cfg, 8);
  EXPECT_NE(a, c) << "a different seed must produce a different stream";
}

TEST(TrafficPattern, PoissonArrivalsAreSortedDistinctPairsInWindow) {
  TrafficConfig cfg;
  cfg.pattern = Pattern::kPoisson;
  cfg.flows_per_second = 2000.0;
  cfg.start = sim::milliseconds(100);
  cfg.stop = sim::milliseconds(600);
  const int n = 6;
  const auto arrivals = traffic::generate_arrivals(cfg, n);
  ASSERT_GT(arrivals.size(), 100u);  // ~1000 expected
  std::set<std::pair<int, int>> pairs;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const FlowArrival& a = arrivals[i];
    EXPECT_GE(a.at, cfg.start);
    EXPECT_LT(a.at, cfg.stop);
    if (i > 0) {
      EXPECT_LE(arrivals[i - 1].at, a.at);
    }
    EXPECT_NE(a.src, a.dst);
    EXPECT_GE(a.src, 0);
    EXPECT_LT(a.src, n);
    EXPECT_GE(a.dst, 0);
    EXPECT_LT(a.dst, n);
    EXPECT_EQ(a.bytes, cfg.mean_bytes);  // kFixed
    pairs.insert({a.src, a.dst});
  }
  // With ~1000 draws over 30 ordered pairs, every pair should appear.
  EXPECT_EQ(pairs.size(), static_cast<std::size_t>(n * (n - 1)));
}

TEST(TrafficPattern, IncastEpochsConvergeOnOneRotatingVictim) {
  TrafficConfig cfg;
  cfg.pattern = Pattern::kIncast;
  cfg.epoch = sim::milliseconds(10);
  cfg.stop = sim::milliseconds(40);  // 4 epochs
  cfg.incast_fanin = 3;
  const int n = 5;
  const auto arrivals = traffic::generate_arrivals(cfg, n);
  ASSERT_EQ(arrivals.size(), 4u * 3u);
  for (int round = 0; round < 4; ++round) {
    for (int k = 0; k < 3; ++k) {
      const FlowArrival& a = arrivals[static_cast<std::size_t>(round * 3 + k)];
      EXPECT_EQ(a.at, cfg.epoch * round);
      EXPECT_EQ(a.dst, round % n) << "victim must rotate per epoch";
      EXPECT_NE(a.src, a.dst);
    }
  }

  // A pinned victim with default fan-in pulls from every other host at once.
  cfg.incast_victim = 2;
  cfg.incast_fanin = 0;
  cfg.stop = sim::milliseconds(10);  // one epoch
  const auto pinned = traffic::generate_arrivals(cfg, n);
  ASSERT_EQ(pinned.size(), static_cast<std::size_t>(n - 1));
  std::set<std::int32_t> senders;
  for (const FlowArrival& a : pinned) {
    EXPECT_EQ(a.dst, 2);
    senders.insert(a.src);
  }
  EXPECT_EQ(senders.size(), static_cast<std::size_t>(n - 1));
}

TEST(TrafficPattern, TornadoRotatesStrideWithoutSelfFlows) {
  TrafficConfig cfg;
  cfg.pattern = Pattern::kTornado;
  cfg.epoch = sim::milliseconds(10);
  cfg.stop = sim::milliseconds(30);  // 3 epochs
  const int n = 4;
  const auto arrivals = traffic::generate_arrivals(cfg, n);
  ASSERT_EQ(arrivals.size(), 3u * static_cast<std::size_t>(n));
  for (int round = 0; round < 3; ++round) {
    const int stride = 1 + round % (n - 1);
    for (int s = 0; s < n; ++s) {
      const FlowArrival& a =
          arrivals[static_cast<std::size_t>(round * n + s)];
      EXPECT_EQ(a.dst, (a.src + stride) % n) << "round " << round;
      EXPECT_NE(a.src, a.dst);
    }
  }
}

TEST(TrafficPattern, AllToAllCoversEveryOrderedPairPerEpoch) {
  TrafficConfig cfg;
  cfg.pattern = Pattern::kAllToAll;
  cfg.epoch = sim::milliseconds(10);
  cfg.stop = sim::milliseconds(10);  // one epoch
  const int n = 5;
  const auto arrivals = traffic::generate_arrivals(cfg, n);
  ASSERT_EQ(arrivals.size(), static_cast<std::size_t>(n * (n - 1)));
  std::set<std::pair<int, int>> pairs;
  for (const FlowArrival& a : arrivals) {
    EXPECT_NE(a.src, a.dst);
    pairs.insert({a.src, a.dst});
  }
  EXPECT_EQ(pairs.size(), arrivals.size()) << "each pair exactly once";
}

TEST(TrafficPattern, PermutationIsAFixpointFreeBijection) {
  TrafficConfig cfg;
  cfg.pattern = Pattern::kPermutation;
  cfg.flows_per_second = 5000.0;
  cfg.seed = 7;
  const int n = 9;
  const auto arrivals = traffic::generate_arrivals(cfg, n);
  ASSERT_GT(arrivals.size(), 50u);
  std::vector<std::int32_t> image(static_cast<std::size_t>(n), -1);
  for (const FlowArrival& a : arrivals) {
    EXPECT_NE(a.src, a.dst) << "permutation must be fixpoint-free";
    auto& slot = image[static_cast<std::size_t>(a.src)];
    if (slot == -1) slot = a.dst;
    EXPECT_EQ(slot, a.dst) << "host " << a.src << " must keep one peer";
  }
}

TEST(TrafficPattern, ParetoSizesAreBoundedWithPlausibleMean) {
  TrafficConfig cfg;
  cfg.pattern = Pattern::kPoisson;
  cfg.size_dist = SizeDist::kPareto;
  cfg.mean_bytes = 50'000;
  cfg.max_bytes = 5'000'000;
  cfg.flows_per_second = 20'000.0;
  const auto arrivals = traffic::generate_arrivals(cfg, 4);
  ASSERT_GT(arrivals.size(), 5000u);
  double total = 0.0;
  std::int64_t biggest = 0;
  for (const FlowArrival& a : arrivals) {
    EXPECT_GE(a.bytes, 1);
    EXPECT_LE(a.bytes, cfg.max_bytes);
    total += static_cast<double>(a.bytes);
    biggest = std::max(biggest, a.bytes);
  }
  const double realized_mean = total / static_cast<double>(arrivals.size());
  // Truncation pulls the realized mean below the nominal knob; it must stay
  // the right order of magnitude and the tail must actually reach out.
  EXPECT_GT(realized_mean, 0.3 * static_cast<double>(cfg.mean_bytes));
  EXPECT_LT(realized_mean, 2.0 * static_cast<double>(cfg.mean_bytes));
  EXPECT_GT(biggest, 10 * cfg.mean_bytes) << "no heavy tail generated";
}

TEST(TrafficPattern, DegenerateConfigsGenerateNothing) {
  TrafficConfig cfg;
  EXPECT_TRUE(traffic::generate_arrivals(cfg, 1).empty());
  EXPECT_TRUE(traffic::generate_arrivals(cfg, 0).empty());
  cfg.stop = cfg.start;
  EXPECT_TRUE(traffic::generate_arrivals(cfg, 4).empty());
  cfg.stop = sim::seconds(1);
  cfg.flows_per_second = 0.0;
  EXPECT_TRUE(traffic::generate_arrivals(cfg, 4).empty());
}

// ----------------------------------------- percentile / fct_stats fixes

TEST(TrafficFct, PercentileClampsAndSurvivesDegenerateInputs) {
  EXPECT_DOUBLE_EQ(analysis::percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(analysis::percentile({3.5}, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(analysis::percentile({3.5}, 99.9), 3.5);
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  // Out-of-range p clamps to the extremes instead of indexing out of range.
  EXPECT_DOUBLE_EQ(analysis::percentile(xs, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(analysis::percentile(xs, 999.0), 4.0);
  EXPECT_DOUBLE_EQ(analysis::percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(analysis::percentile(xs, 50.0), 2.5);
}

TEST(TrafficFct, StatsExcludeOpenFlowsFromQuantiles) {
  std::vector<double> fcts(1000);
  std::iota(fcts.begin(), fcts.end(), 1.0);  // 1..1000
  const analysis::FctStats s = analysis::fct_stats(fcts, 25);
  EXPECT_EQ(s.completed, 1000u);
  EXPECT_EQ(s.open, 25u);
  EXPECT_DOUBLE_EQ(s.min_s, 1.0);
  EXPECT_DOUBLE_EQ(s.max_s, 1000.0);
  EXPECT_NEAR(s.mean_s, 500.5, 1e-9);
  EXPECT_NEAR(s.p50_s, 500.5, 1.0);
  EXPECT_NEAR(s.p99_s, 990.0, 1.5);
  EXPECT_NEAR(s.p999_s, 999.0, 1.5);

  const analysis::FctStats empty = analysis::fct_stats({}, 3);
  EXPECT_EQ(empty.completed, 0u);
  EXPECT_EQ(empty.open, 3u);
  EXPECT_DOUBLE_EQ(empty.p999_s, 0.0);

  const analysis::FctStats one = analysis::fct_stats({2.5});
  EXPECT_EQ(one.completed, 1u);
  EXPECT_DOUBLE_EQ(one.p50_s, 2.5);
  EXPECT_DOUBLE_EQ(one.p999_s, 2.5);
}

// ----------------------------------------------------------------- source

/// Dumbbell world for traffic tests, mirroring the scenario rig.
struct Rig {
  sim::Simulator sim;
  net::Dumbbell d;
  workload::Cluster cluster{sim};

  explicit Rig(int hosts_per_side = 3, net::QueueFactory bottleneck = {}) {
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = hosts_per_side;
    if (bottleneck) cfg.bottleneck_queue = std::move(bottleneck);
    d = net::make_dumbbell(sim, cfg);
  }

  std::vector<net::Host*> hosts() const {
    const auto& hs = d.topology->hosts();
    return {hs.begin(), hs.end()};
  }
};

TEST(TrafficSource, FctAccountingReconcilesAfterDrain) {
  Rig rig;
  traffic::TrafficSource source(rig.sim, rig.cluster, rig.hosts(),
                                traffic::SourceOptions{reno(), {}, {}});
  TrafficConfig cfg;
  cfg.pattern = Pattern::kPoisson;
  cfg.flows_per_second = 400.0;
  cfg.mean_bytes = 40'000;
  cfg.stop = sim::milliseconds(250);
  source.install(cfg);
  rig.sim.run_until(sim::seconds(20));  // Generous drain window.

  EXPECT_GT(source.posted(), 50u);
  EXPECT_EQ(source.completed(), source.posted());
  EXPECT_EQ(source.open(), 0u);
  EXPECT_EQ(source.bytes_completed(), source.bytes_posted());
  ASSERT_EQ(source.records().size(), source.posted());
  const auto fcts = source.completed_fcts_seconds();
  ASSERT_EQ(fcts.size(), source.completed());
  for (const traffic::FctRecord& r : source.records()) {
    EXPECT_TRUE(r.done());
    EXPECT_GT(r.fct_seconds(), 0.0);
    EXPECT_GE(r.completed, r.arrival);
  }
  const analysis::FctStats s = analysis::fct_stats(fcts, source.open());
  EXPECT_GT(s.p50_s, 0.0);
  EXPECT_GE(s.p999_s, s.p50_s);
}

TEST(TrafficSource, TruncatedRunCountsOpenFlowsSeparately) {
  Rig rig;
  traffic::TrafficSource source(rig.sim, rig.cluster, rig.hosts(),
                                traffic::SourceOptions{reno(), {}, {}});
  // One short flow early, one enormous flow that cannot finish in time.
  source.install(std::vector<FlowArrival>{
      {sim::milliseconds(1), 0, 1, 20'000},
      {sim::milliseconds(2), 2, 3, 4'000'000'000},
  });
  rig.sim.run_until(sim::milliseconds(200));

  EXPECT_EQ(source.posted(), 2u);
  EXPECT_EQ(source.completed(), 1u);
  EXPECT_EQ(source.open(), 1u);
  const auto fcts = source.completed_fcts_seconds();
  ASSERT_EQ(fcts.size(), 1u);
  // The open flow's truncated duration must not leak into the tails.
  const analysis::FctStats s = analysis::fct_stats(fcts, source.open());
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.open, 1u);
  EXPECT_DOUBLE_EQ(s.max_s, fcts.front());
  EXPECT_FALSE(source.records()[1].done());
  EXPECT_LT(source.bytes_completed(), source.bytes_posted());
}

// ------------------------------------------------------------------- jobs

TEST(TrafficJobs, ShuffleWavesBarrierOnEveryTransfer) {
  Rig rig(2);
  traffic::ShuffleConfig cfg;
  cfg.mappers = {rig.d.left[0], rig.d.left[1]};
  cfg.reducers = {rig.d.right[0], rig.d.right[1]};
  cfg.bytes_per_pair = 150'000;
  cfg.reduce_time = sim::milliseconds(10);
  cfg.waves = 3;
  cfg.cc = reno();
  traffic::ShuffleJob job(rig.sim, rig.cluster, cfg);
  job.start();
  rig.sim.run_until(sim::seconds(30));

  EXPECT_FALSE(job.running());
  EXPECT_EQ(job.waves_completed(), 3);
  ASSERT_EQ(job.transfers().size(), 3u * 4u);  // 2x2 pairs per wave
  EXPECT_EQ(job.open_transfers(), 0u);
  ASSERT_EQ(job.wave_times_seconds().size(), 3u);
  for (double w : job.wave_times_seconds()) {
    EXPECT_GE(w, sim::to_seconds(cfg.reduce_time));
  }
  // Barrier: wave k+1's transfers are posted only after every wave-k
  // transfer completed plus the reduce phase.
  for (int wave = 1; wave < 3; ++wave) {
    sim::SimTime prev_done = 0;
    for (int i = 0; i < 4; ++i) {
      prev_done = std::max(
          prev_done,
          job.transfers()[static_cast<std::size_t>((wave - 1) * 4 + i)]
              .completed);
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_GE(job.transfers()[static_cast<std::size_t>(wave * 4 + i)]
                    .arrival,
                prev_done + cfg.reduce_time)
          << "wave " << wave;
    }
  }
}

TEST(TrafficJobs, ShuffleSkipsColocatedMapperReducerPairs) {
  Rig rig(2);
  traffic::ShuffleConfig cfg;
  // Mappers and reducers share both hosts: the diagonal is local disk I/O.
  cfg.mappers = {rig.d.left[0], rig.d.left[1]};
  cfg.reducers = {rig.d.left[0], rig.d.left[1]};
  cfg.bytes_per_pair = 50'000;
  cfg.reduce_time = sim::milliseconds(1);
  cfg.waves = 1;
  cfg.cc = reno();
  traffic::ShuffleJob job(rig.sim, rig.cluster, cfg);
  job.start();
  rig.sim.run_until(sim::seconds(5));

  EXPECT_EQ(job.waves_completed(), 1);
  EXPECT_EQ(job.transfers().size(), 2u);  // 4 pairs minus the 2 colocated
  EXPECT_EQ(job.open_transfers(), 0u);
}

TEST(TrafficJobs, ServingRequestCompletesOnLastResponse) {
  Rig rig(3);
  traffic::ServingConfig cfg;
  cfg.frontend = rig.d.left[0];
  cfg.backends = {rig.d.right[0], rig.d.right[1], rig.d.right[2]};
  cfg.requests_per_second = 500.0;
  cfg.fanout = 0;  // every backend
  cfg.request_bytes = 2'000;
  cfg.response_bytes = 60'000;
  cfg.stop_time = sim::milliseconds(100);
  cfg.cc = reno();
  traffic::ServingJob job(rig.sim, rig.cluster, cfg);
  job.start();
  rig.sim.run_until(sim::seconds(20));

  EXPECT_GT(job.requests_issued(), 20u);
  EXPECT_EQ(job.requests_completed(), job.requests_issued());
  EXPECT_EQ(job.open_requests(), 0u);
  const auto lat = job.completed_latencies_seconds();
  ASSERT_EQ(lat.size(), job.requests_completed());
  // A fan-out-3 request moves 3 x 60 kB of responses after a request RTT:
  // strictly positive latency, and a max-over-legs must be at least the
  // one-way serialization of a single response over the 1 Gbps bottleneck.
  const double min_possible = 60'000.0 * 8.0 / 1e9;
  for (double l : lat) EXPECT_GT(l, min_possible);
  // The schedule is seeded: a second job with the same config issues the
  // same request count.
  sim::Simulator sim2;
  net::DumbbellConfig dcfg;
  dcfg.hosts_per_side = 3;
  auto d2 = net::make_dumbbell(sim2, dcfg);
  workload::Cluster cluster2(sim2);
  traffic::ServingConfig cfg2 = cfg;
  cfg2.frontend = d2.left[0];
  cfg2.backends = {d2.right[0], d2.right[1], d2.right[2]};
  traffic::ServingJob job2(sim2, cluster2, cfg2);
  job2.start();
  sim2.run_until(sim::seconds(20));
  EXPECT_EQ(job2.requests_issued(), job.requests_issued());
}

// ----------------------------------------- queue-layer incast reconciliation

struct IncastOutcome {
  std::int64_t sent = 0;       ///< Data packets transmitted by all senders.
  std::int64_t delivered = 0;  ///< Data packets received by the victim.
  std::int64_t enqueued = 0;   ///< Admitted at the forward bottleneck queue.
  std::int64_t dropped = 0;
  std::int64_t marked = 0;
  bool all_done = true;
};

/// N synchronized senders each push one short message at the same host
/// through the given bottleneck queue; returns the reconciled counters.
IncastOutcome run_incast(const net::QueueFactory& bottleneck,
                         const tcp::CcFactory& cc) {
  Rig rig(6, bottleneck);
  net::Host* victim = rig.d.right[0];
  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        rig.sim, *rig.d.left[i % 6], *victim, i + 1, cc()));
    // 40 full segments each: short enough to be an incast burst, big enough
    // to overflow a shallow buffer when six arrive at once.
    flows.back()->send_message(40 * (net::kDefaultMtu - net::kHeaderBytes),
                               [&done](sim::SimTime) { ++done; });
  }
  rig.sim.run_until(sim::seconds(30));

  IncastOutcome out;
  out.all_done = done == 6;
  for (const auto& f : flows) {
    out.sent += f->sender().stats().data_packets_sent;
    out.delivered += f->receiver().data_packets_received();
  }
  const net::QueueStats& qs = rig.d.bottleneck->queue().stats();
  out.enqueued = qs.enqueued_packets;
  out.dropped = qs.dropped_packets;
  out.marked = qs.marked_packets;
  return out;
}

TEST(TrafficIncast, DropTailDropsReconcileWithSentMinusDelivered) {
  // A ~16-packet buffer against a 6 x 40-segment synchronized burst: drops
  // are guaranteed, yet every flow must complete via retransmission.
  const auto out =
      run_incast(net::make_droptail_factory(16 * net::kDefaultMtu), reno());
  EXPECT_TRUE(out.all_done);
  EXPECT_GT(out.dropped, 0);
  EXPECT_EQ(out.marked, 0);
  // Every data packet that crossed the fabric was either admitted at the
  // bottleneck (and later delivered) or dropped there — the counters must
  // reconcile exactly, in packets and therefore in MTU-sized bytes.
  EXPECT_EQ(out.sent, out.enqueued + out.dropped);
  EXPECT_EQ(out.delivered, out.enqueued);
  EXPECT_EQ(out.sent - out.delivered, out.dropped);
}

TEST(TrafficIncast, EcnMarksInsteadOfDropsUnderDctcp) {
  // Deep buffer + shallow mark threshold: DCTCP keeps the incast lossless
  // while the queue marks aggressively.
  const auto out = run_incast(
      net::make_ecn_factory(400 * net::kDefaultMtu, 20 * net::kDefaultMtu),
      [] { return std::make_unique<tcp::DctcpCC>(); });
  EXPECT_TRUE(out.all_done);
  EXPECT_GT(out.marked, 0);
  EXPECT_EQ(out.dropped, 0);
  EXPECT_EQ(out.sent, out.enqueued);
  EXPECT_EQ(out.sent, out.delivered) << "lossless incast must deliver all";
}

TEST(TrafficIncast, RedMarkModeReconcilesUnderDctcp) {
  net::RedQueue::Config red;
  red.capacity_bytes = 400 * net::kDefaultMtu;
  red.min_threshold_bytes = 5 * net::kDefaultMtu;
  red.max_threshold_bytes = 40 * net::kDefaultMtu;
  red.max_probability = 0.5;
  red.ewma_weight = 0.2;  // Track the burst fast enough to act on it.
  red.mark_instead_of_drop = true;
  const auto out = run_incast(net::make_red_factory(red),
                              [] { return std::make_unique<tcp::DctcpCC>(); });
  EXPECT_TRUE(out.all_done);
  EXPECT_GT(out.marked, 0);
  // Marks never destroy packets: whatever RED did not drop on overflow must
  // reconcile exactly with the sent/delivered difference.
  EXPECT_EQ(out.sent, out.enqueued + out.dropped);
  EXPECT_EQ(out.sent - out.delivered, out.dropped);
}

// ------------------------------------------------- scenario integration

TEST(TrafficScenario, TrafficBurstInstallsALabeledSource) {
  Rig rig;
  scenario::ScenarioEngine engine(rig.sim, *rig.d.topology, rig.cluster);
  TrafficConfig cfg;
  cfg.pattern = Pattern::kIncast;
  cfg.epoch = sim::milliseconds(20);
  cfg.start = sim::milliseconds(10);
  cfg.stop = sim::milliseconds(90);
  cfg.mean_bytes = 30'000;
  cfg.incast_fanin = 3;
  engine.install(
      scenario::Scenario{}.traffic_burst(sim::milliseconds(5), "bg", cfg));
  rig.sim.run_until(sim::seconds(10));

  EXPECT_EQ(engine.applied_events(), 1);
  ASSERT_EQ(engine.traffic_sources().size(), 1u);
  const traffic::TrafficSource* src = engine.traffic_source("bg");
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(engine.traffic_source("nope"), nullptr);
  EXPECT_EQ(src->posted(), 4u * 3u);
  EXPECT_EQ(src->completed(), src->posted());
}

// ------------------------------------------------- campaign determinism

/// One faulted run that also carries background traffic; rows capture both
/// job progress and the traffic FCT distribution.
void traffic_faulted_run(std::size_t run_index, std::uint64_t seed,
                         runner::CsvSink& csv) {
  Rig rig;
  workload::JobSpec spec;
  spec.name = "train";
  spec.flows = workload::single_flow(rig.d.left[0], rig.d.right[0], 600'000);
  spec.compute_time = sim::milliseconds(5);
  spec.max_iterations = 30;
  spec.cc = reno();
  workload::Job* job = rig.cluster.add_job(spec);

  TrafficConfig tcfg;
  tcfg.pattern = Pattern::kPoisson;
  tcfg.size_dist = SizeDist::kPareto;
  tcfg.flows_per_second = 300.0;
  tcfg.mean_bytes = 30'000;
  tcfg.stop = sim::milliseconds(400);
  tcfg.seed = sim::derive_seed(seed, 0x726166666963ULL);  // "raffic"

  scenario::Scenario s;
  s.traffic_burst(0, "bg", tcfg);
  s.link_down(sim::milliseconds(40), "swL", "swR");
  s.link_up(sim::milliseconds(90), "swL", "swR");
  s.drop_burst(sim::milliseconds(150), "swL", "swR", 0.02, seed);
  s.drop_burst(sim::milliseconds(300), "swL", "swR", 0.0);

  scenario::ScenarioEngine engine(rig.sim, *rig.d.topology, rig.cluster);
  engine.install(s);
  rig.cluster.start_all();
  rig.sim.run_until(sim::seconds(20));

  const traffic::TrafficSource* bg = engine.traffic_source("bg");
  const analysis::FctStats fct =
      analysis::fct_stats(bg->completed_fcts_seconds(), bg->open());
  csv.append(run_index,
             std::vector<double>{
                 static_cast<double>(run_index),
                 static_cast<double>(job->completed_iterations()),
                 sim::to_seconds(job->iterations().back().iter_end),
                 static_cast<double>(fct.completed),
                 static_cast<double>(fct.open), fct.p50_s, fct.p99_s,
                 static_cast<double>(bg->bytes_completed())});
}

std::string traffic_faulted_campaign(int threads) {
  runner::CsvSink csv({"run", "iters", "end_s", "fct_n", "fct_open",
                       "fct_p50", "fct_p99", "bg_bytes"});
  std::vector<std::uint64_t> seeds = {21, 22, 23, 24};
  runner::CampaignOptions opts;
  opts.threads = threads;
  runner::run_campaign<std::uint64_t, int>(
      seeds,
      [&](const std::uint64_t& seed, std::size_t i) {
        traffic_faulted_run(i, seed, csv);
        return 0;
      },
      opts);
  return csv.serialize();
}

TEST(TrafficDeterminism, FaultedTrafficCampaignByteIdenticalAcrossThreads) {
  const std::string serial = traffic_faulted_campaign(1);
  EXPECT_NE(serial.find("\n3,"), std::string::npos);
  const std::string parallel = traffic_faulted_campaign(4);
  EXPECT_EQ(parallel, serial)
      << "traffic generation must not depend on campaign scheduling";
}

}  // namespace
}  // namespace mltcp
