#include <gtest/gtest.h>

#include <memory>

#include "tcp/swift.hpp"

namespace mltcp::tcp {
namespace {

class FixedGain : public WindowGain {
 public:
  explicit FixedGain(double g) : g_(g) {}
  double gain() const override { return g_; }
  std::string name() const override { return "fixed"; }

 private:
  double g_;
};

AckContext delayed_ack(sim::SimTime rtt, sim::SimTime now, int num = 1) {
  AckContext ctx;
  ctx.now = now;
  ctx.num_acked = num;
  ctx.rtt_sample = rtt;
  return ctx;
}

SwiftConfig config() {
  SwiftConfig cfg;
  cfg.initial_cwnd = 10.0;
  cfg.target_delay = sim::microseconds(300);
  return cfg;
}

TEST(SwiftCC, IncreasesBelowTargetDelay) {
  SwiftCC cc(config());
  cc.on_ack(delayed_ack(sim::microseconds(100), sim::milliseconds(1)));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.1);
}

TEST(SwiftCC, DecreasesAboveTargetDelay) {
  SwiftCC cc(config());
  cc.on_ack(delayed_ack(sim::microseconds(600), sim::milliseconds(1)));
  // excess = (600-300)/600 = 0.5; factor = max(1 - 0.8*0.5, 0.5) = 0.6.
  EXPECT_NEAR(cc.cwnd(), 6.0, 1e-9);
}

TEST(SwiftCC, DecreaseCappedPerSample) {
  SwiftConfig cfg = config();
  cfg.max_decrease_factor = 0.5;
  SwiftCC cc(cfg);
  cc.on_ack(delayed_ack(sim::milliseconds(100), sim::milliseconds(1)));
  EXPECT_GE(cc.cwnd(), 5.0 - 1e-9);
}

TEST(SwiftCC, AtMostOneDecreasePerRtt) {
  SwiftCC cc(config());
  const sim::SimTime rtt = sim::microseconds(600);
  cc.on_ack(delayed_ack(rtt, sim::microseconds(700)));
  const double after_first = cc.cwnd();
  // Immediately-following congested ACK inside the same RTT: no decrease.
  cc.on_ack(delayed_ack(rtt, sim::microseconds(750)));
  EXPECT_DOUBLE_EQ(cc.cwnd(), after_first);
  // After an RTT has elapsed the next decrease applies.
  cc.on_ack(delayed_ack(rtt, sim::microseconds(1400)));
  EXPECT_LT(cc.cwnd(), after_first);
}

TEST(SwiftCC, GainScalesAdditiveIncrease) {
  SwiftCC plain(config());
  SwiftCC scaled(config(), std::make_shared<FixedGain>(2.0));
  plain.on_ack(delayed_ack(sim::microseconds(100), 1, 5));
  scaled.on_ack(delayed_ack(sim::microseconds(100), 1, 5));
  EXPECT_DOUBLE_EQ(plain.cwnd(), 10.5);
  EXPECT_DOUBLE_EQ(scaled.cwnd(), 11.0);
}

TEST(SwiftCC, WindowFloor) {
  SwiftCC cc(config());
  for (int i = 1; i < 50; ++i) {
    cc.on_ack(delayed_ack(sim::milliseconds(50), sim::milliseconds(100 * i)));
  }
  EXPECT_GE(cc.cwnd(), 2.0);
}

TEST(SwiftCC, IdleRestartResetsWindow) {
  SwiftCC cc(config());
  for (int i = 1; i < 100; ++i) {
    cc.on_ack(delayed_ack(sim::microseconds(100), sim::microseconds(50 * i)));
  }
  EXPECT_GT(cc.cwnd(), 10.0);
  cc.on_idle_restart(sim::seconds(1));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0);
}

TEST(SwiftCC, NameReflectsGain) {
  EXPECT_EQ(SwiftCC().name(), "swift");
  SwiftCC scaled(SwiftConfig{}, std::make_shared<FixedGain>(2.0));
  EXPECT_EQ(scaled.name(), "mltcp-swift[fixed]");
}

TEST(SwiftCC, LossDecreasesWindow) {
  SwiftCC cc(config());
  cc.on_loss(sim::milliseconds(1));
  EXPECT_NEAR(cc.cwnd(), 5.0, 1e-9);
}

}  // namespace
}  // namespace mltcp::tcp
