#include <gtest/gtest.h>

#include "net/queue.hpp"

namespace mltcp::net {
namespace {

Packet flow_packet(FlowId flow, std::int32_t size = 1500, bool ecn = false) {
  Packet p;
  p.type = PacketType::kData;
  p.flow = flow;
  p.size_bytes = size;
  p.ecn_capable = ecn;
  return p;
}

// -------------------------------------------------------------------- DRR

TEST(DrrQueue, SingleFlowBehavesFifo) {
  DrrQueue q(100 * 1500);
  for (int i = 0; i < 3; ++i) {
    Packet p = flow_packet(1);
    p.seq = i;
    ASSERT_TRUE(q.enqueue(p, 0));
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.dequeue(0)->seq, i);
  EXPECT_TRUE(q.empty());
}

TEST(DrrQueue, InterleavesBackloggedFlows) {
  DrrQueue q(100 * 1500, 1500);
  for (int i = 0; i < 4; ++i) q.enqueue(flow_packet(1), 0);
  for (int i = 0; i < 4; ++i) q.enqueue(flow_packet(2), 0);
  int flow1_in_first_half = 0;
  for (int i = 0; i < 4; ++i) {
    if (q.dequeue(0)->flow == 1) ++flow1_in_first_half;
  }
  // Round-robin service: the first half of departures is split evenly.
  EXPECT_EQ(flow1_in_first_half, 2);
}

TEST(DrrQueue, ByteFairWithUnequalPacketSizes) {
  // Flow 1 sends 300 B packets, flow 2 sends 1500 B packets. DRR must give
  // both roughly the same bytes, i.e. serve ~5 small per 1 big.
  DrrQueue q(1000 * 1500, 1500);
  for (int i = 0; i < 100; ++i) q.enqueue(flow_packet(1, 300), 0);
  for (int i = 0; i < 20; ++i) q.enqueue(flow_packet(2, 1500), 0);
  std::int64_t bytes1 = 0;
  std::int64_t bytes2 = 0;
  for (int i = 0; i < 60; ++i) {
    const auto p = q.dequeue(0);
    ASSERT_TRUE(p.has_value());
    (p->flow == 1 ? bytes1 : bytes2) += p->size_bytes;
  }
  EXPECT_NEAR(static_cast<double>(bytes1) / static_cast<double>(bytes2), 1.0,
              0.25);
}

TEST(DrrQueue, DropsWhenFull) {
  DrrQueue q(2 * 1500);
  EXPECT_TRUE(q.enqueue(flow_packet(1), 0));
  EXPECT_TRUE(q.enqueue(flow_packet(2), 0));
  EXPECT_FALSE(q.enqueue(flow_packet(3), 0));
  EXPECT_EQ(q.stats().dropped_packets, 1);
}

TEST(DrrQueue, TracksActiveFlows) {
  DrrQueue q(100 * 1500);
  q.enqueue(flow_packet(1), 0);
  q.enqueue(flow_packet(2), 0);
  EXPECT_EQ(q.active_flows(), 2u);
  q.dequeue(0);
  q.dequeue(0);
  EXPECT_EQ(q.active_flows(), 0u);
  EXPECT_TRUE(q.empty());
}

// -------------------------------------------------------------------- RED

RedQueue::Config red_config() {
  RedQueue::Config cfg;
  cfg.capacity_bytes = 100 * 1500;
  cfg.min_threshold_bytes = 10 * 1500;
  cfg.max_threshold_bytes = 40 * 1500;
  cfg.max_probability = 0.5;
  cfg.ewma_weight = 1.0;  // track the instantaneous queue in tests
  return cfg;
}

TEST(RedQueue, NoEarlyDropBelowMinThreshold) {
  RedQueue q(red_config());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.enqueue(flow_packet(1), 0)) << i;
  }
  EXPECT_EQ(q.stats().dropped_packets, 0);
}

TEST(RedQueue, DropsRampBetweenThresholds) {
  RedQueue q(red_config());
  int dropped = 0;
  for (int i = 0; i < 40; ++i) {
    if (!q.enqueue(flow_packet(1), 0)) ++dropped;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_LT(dropped, 35);
}

TEST(RedQueue, MarksInsteadOfDroppingWhenConfigured) {
  RedQueue::Config cfg = red_config();
  cfg.mark_instead_of_drop = true;
  RedQueue q(cfg);
  for (int i = 0; i < 40; ++i) q.enqueue(flow_packet(1, 1500, true), 0);
  EXPECT_GT(q.stats().marked_packets, 0);
  EXPECT_EQ(q.stats().dropped_packets, 0);
  // The marks must be visible on dequeued packets.
  int marked = 0;
  while (auto p = q.dequeue(0)) {
    if (p->ce) ++marked;
  }
  EXPECT_EQ(marked, q.stats().marked_packets);
}

TEST(RedQueue, NonEcnPacketsAreDroppedNotMarked) {
  RedQueue::Config cfg = red_config();
  cfg.mark_instead_of_drop = true;
  RedQueue q(cfg);
  int dropped = 0;
  for (int i = 0; i < 40; ++i) {
    if (!q.enqueue(flow_packet(1, 1500, false), 0)) ++dropped;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(q.stats().marked_packets, 0);
}

TEST(RedQueue, HardCapacityStillEnforced) {
  RedQueue::Config cfg = red_config();
  cfg.min_threshold_bytes = 90 * 1500;
  cfg.max_threshold_bytes = 99 * 1500;
  RedQueue q(cfg);
  int admitted = 0;
  for (int i = 0; i < 200; ++i) {
    if (q.enqueue(flow_packet(1), 0)) ++admitted;
  }
  EXPECT_LE(admitted, 100);
}

TEST(RedQueue, FactoryProducesIndependentQueues) {
  auto factory = make_red_factory(red_config());
  auto q1 = factory();
  auto q2 = factory();
  q1->enqueue(flow_packet(1), 0);
  EXPECT_EQ(q2->backlog_bytes(), 0);
}

}  // namespace
}  // namespace mltcp::net
