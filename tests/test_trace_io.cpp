#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/trace.hpp"

namespace mltcp::sim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string("/tmp/mltcp_test_") + name + ".csv") {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(CsvWriter, WritesHeaderAndNumericRows) {
  TempFile f("numeric");
  {
    CsvWriter csv(f.path, {"a", "b", "c"});
    csv.row(std::vector<double>{1.0, 2.5, -3.0});
    csv.row(std::vector<double>{0.125, 0, 9e9});
  }
  EXPECT_EQ(slurp(f.path), "a,b,c\n1,2.5,-3\n0.125,0,9e+09\n");
}

TEST(CsvWriter, WritesStringRows) {
  TempFile f("strings");
  {
    CsvWriter csv(f.path, {"name", "value"});
    csv.row(std::vector<std::string>{"reno", "1.81"});
  }
  EXPECT_EQ(slurp(f.path), "name,value\nreno,1.81\n");
}

// RFC 4180 regression: fields containing delimiters, quotes, or line breaks
// must be quoted (with inner quotes doubled), and plain fields must be left
// untouched. CSV readers (pandas, spreadsheets) choke on the raw output the
// writer used to emit for such fields.
TEST(CsvWriter, QuotesFieldsPerRfc4180) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");

  TempFile f("rfc4180");
  {
    CsvWriter csv(f.path, {"name", "note"});
    csv.row(std::vector<std::string>{"job,0", "said \"go\""});
    csv.row(std::vector<std::string>{"multi\nline", "plain"});
  }
  EXPECT_EQ(slurp(f.path),
            "name,note\n"
            "\"job,0\",\"said \"\"go\"\"\"\n"
            "\"multi\nline\",plain\n");
}

TEST(CsvWriter, QuotesHeaderFieldsToo) {
  TempFile f("rfc4180_header");
  { CsvWriter csv(f.path, {"metric", "value, in seconds"}); }
  EXPECT_EQ(slurp(f.path), "metric,\"value, in seconds\"\n");
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvWriter, SingleColumnHasNoTrailingComma) {
  TempFile f("single");
  {
    CsvWriter csv(f.path, {"only"});
    csv.row(std::vector<double>{7});
  }
  EXPECT_EQ(slurp(f.path), "only\n7\n");
}

TEST(RateBinner, NegativeTimestampsClampToFirstBin) {
  RateBinner binner(milliseconds(1));
  binner.add(-5, 100);
  EXPECT_EQ(binner.total_bytes(), 100);
  EXPECT_GT(binner.rate_bps(0), 0.0);
}

TEST(RateBinner, OutOfRangeBinReadsZero) {
  RateBinner binner(milliseconds(1));
  binner.add(0, 100);
  EXPECT_DOUBLE_EQ(binner.rate_bps(500), 0.0);
}

TEST(RateBinner, BinTimeIsMidpoint) {
  RateBinner binner(milliseconds(10));
  EXPECT_EQ(binner.bin_time(0), milliseconds(5));
  EXPECT_EQ(binner.bin_time(3), milliseconds(35));
}

}  // namespace
}  // namespace mltcp::sim
