// Regression tests pinning the TCP hot-path fidelity fixes:
//   - Karn's algorithm: ACKs covering retransmitted segments must not feed
//     the RTT estimator (ambiguous echoed timestamp).
//   - Final-segment sizing: wire bytes match application bytes + headers
//     instead of padding the last segment to a full MTU.
//   - IntervalSet: the SACK scoreboard/Karn bookkeeping structure.
//   - RED idle decay: the EWMA queue average ages across idle periods.
//   - SACK stress: interval-based recovery completes under heavy loss.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/queue.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "tcp/interval_set.hpp"
#include "tcp/reno.hpp"
#include "tcp/sender.hpp"

namespace mltcp::tcp {
namespace {

// ------------------------------------------------------------ IntervalSet

TEST(IntervalSet, InsertMergesOverlappingAndAdjacent) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  EXPECT_EQ(s.interval_count(), 2u);
  s.insert(20, 30);  // adjacent on both sides: everything merges
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.covered_count(), 30);
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(39));
  EXPECT_FALSE(s.contains(40));
  EXPECT_FALSE(s.contains(9));
}

TEST(IntervalSet, InsertSwallowsMultipleIntervals) {
  IntervalSet s;
  s.insert(0, 2);
  s.insert(4, 6);
  s.insert(8, 10);
  s.insert(1, 9);  // bridges all three
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.covered_count(), 10);
}

TEST(IntervalSet, EraseSplitsInterval) {
  IntervalSet s;
  s.insert(0, 10);
  s.erase(3, 7);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(3));
  EXPECT_FALSE(s.contains(6));
  EXPECT_TRUE(s.contains(7));
  EXPECT_EQ(s.covered_count(), 6);
}

TEST(IntervalSet, EraseAcrossSeveralIntervals) {
  IntervalSet s;
  s.insert(0, 4);
  s.insert(6, 10);
  s.insert(12, 16);
  s.erase(2, 14);
  EXPECT_EQ(s.covered_count(), 4);  // [0,2) and [14,16)
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(15));
  EXPECT_FALSE(s.overlaps(2, 14));
}

TEST(IntervalSet, EraseBelowPrunesAndTrims) {
  IntervalSet s;
  s.insert(0, 5);
  s.insert(8, 12);
  s.erase_below(10);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_FALSE(s.contains(9));
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(11));
  s.erase_below(100);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.upper_bound_value(), 0);
}

TEST(IntervalSet, FirstMissingWalksGaps) {
  IntervalSet s;
  s.insert(0, 3);
  s.insert(5, 8);
  EXPECT_EQ(s.first_missing(0, 10), 3);
  EXPECT_EQ(s.first_missing(3, 10), 3);
  EXPECT_EQ(s.first_missing(4, 10), 4);
  EXPECT_EQ(s.first_missing(5, 8), 8);  // fully covered -> `to`
  EXPECT_EQ(s.first_missing(6, 10), 8);
  EXPECT_EQ(s.upper_bound_value(), 8);
}

TEST(IntervalSet, OverlapsHalfOpenSemantics) {
  IntervalSet s;
  s.insert(5, 10);
  EXPECT_TRUE(s.overlaps(0, 6));
  EXPECT_TRUE(s.overlaps(9, 20));
  EXPECT_FALSE(s.overlaps(0, 5));   // end is exclusive
  EXPECT_FALSE(s.overlaps(10, 20));
  EXPECT_FALSE(s.overlaps(7, 7));   // empty range
}

// ------------------------------------------------- sender-side ACK harness

/// Direct access to a TcpSender: data packets it emits are captured at host
/// `b`, and the test crafts ACK packets (cumulative seq + echoed timestamp)
/// delivered back to it, so retransmission-ambiguity cases are exact.
struct SenderWire {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  std::unique_ptr<TcpSender> sender;
  std::vector<net::Packet> data;

  explicit SenderWire(SenderConfig cfg = {}) {
    a = topo.add_host("a");
    b = topo.add_host("b");
    topo.connect(*a, *b, 1e9, sim::microseconds(1),
                 net::make_droptail_factory(1'000'000));
    sender = std::make_unique<TcpSender>(sim, *a, b->id(), 1,
                                         std::make_unique<RenoCC>(), cfg);
    b->register_flow(1, [this](const net::Packet& p) { data.push_back(p); });
    a->register_flow(1, [this](const net::Packet& p) {
      sender->on_packet(p);
    });
  }

  /// Runs the wire for `dt` (short of the 1 ms min RTO, so no timeouts).
  void step(sim::SimTime dt = sim::microseconds(100)) {
    sim.run_until(sim.now() + dt);
  }

  void ack(std::int64_t cumulative_seq, sim::SimTime echoed_ts) {
    net::Packet p;
    p.flow = 1;
    p.dst = a->id();
    p.type = net::PacketType::kAck;
    p.seq = cumulative_seq;
    p.tx_timestamp = echoed_ts;
    b->send(p);
    step();
  }
};

TEST(KarnAlgorithm, AmbiguousAckDoesNotFeedRttEstimator) {
  SenderWire w;
  w.sender->send_message(30 * w.sender->payload_per_segment(),
                         [](sim::SimTime) {});
  // Initial window (10 segments) reaches b: 10 x 12us serialization + 1us.
  w.step(sim::microseconds(200));
  ASSERT_GE(w.data.size(), 10u);

  // Clean ACK of segment 0 with a crafted echoed timestamp (the segments
  // themselves were stamped at t=0, which the sampler treats as "no echo").
  w.ack(1, sim::microseconds(2));
  ASSERT_TRUE(w.sender->rtt().has_sample());
  const sim::SimTime srtt_clean = w.sender->rtt().srtt();
  const sim::SimTime rto_clean = w.sender->rtt().rto();
  ASSERT_GT(srtt_clean, 0);

  // Three dup ACKs: fast retransmit of segment 1.
  w.ack(1, 0);
  w.ack(1, 0);
  w.ack(1, 0);
  EXPECT_EQ(w.sender->stats().fast_retransmits, 1);
  EXPECT_EQ(w.sender->stats().retransmissions, 1);
  EXPECT_TRUE(w.sender->in_recovery());
  const std::int64_t recover = w.sender->next_seq();  // recovery exit point

  // Ambiguous cumulative ACK covering the retransmitted segment, echoing a
  // stale (original-transmission era) timestamp. Before the fix this
  // inflated srtt/RTO right after loss; now it must be discarded.
  w.ack(5, sim::microseconds(3));
  EXPECT_EQ(w.sender->stats().rtt_samples_karn_skipped, 1);
  EXPECT_EQ(w.sender->rtt().srtt(), srtt_clean);
  EXPECT_EQ(w.sender->rtt().rto(), rto_clean);

  // Once the ACK range no longer covers any retransmitted segment, samples
  // flow into the estimator again. (The partial ACK above retransmitted the
  // new front hole, so first exit recovery, then ACK clean new data.)
  const std::int64_t skipped = w.sender->stats().rtt_samples_karn_skipped;
  w.ack(recover, 0);  // exits recovery; no echo -> no sample either way
  ASSERT_FALSE(w.sender->in_recovery());
  w.step(sim::microseconds(300));
  w.ack(recover + 1, w.sim.now() - sim::microseconds(50));
  EXPECT_EQ(w.sender->stats().rtt_samples_karn_skipped, skipped);
  EXPECT_NE(w.sender->rtt().srtt(), srtt_clean);
}

TEST(KarnAlgorithm, RtoRewindMarksResentSegmentsAmbiguous) {
  SenderWire w;
  w.sender->send_message(5 * w.sender->payload_per_segment(),
                         [](sim::SimTime) {});
  w.step();
  ASSERT_EQ(w.data.size(), 5u);
  w.ack(1, sim::microseconds(2));
  ASSERT_TRUE(w.sender->rtt().has_sample());
  const sim::SimTime srtt_clean = w.sender->rtt().srtt();

  // Let the RTO fire: the sender rewinds and resends from snd_una_.
  w.step(sim::milliseconds(30));
  ASSERT_GE(w.sender->stats().timeouts, 1);
  ASSERT_GT(w.sender->stats().retransmissions, 0);

  // ACK the whole stream with a fresh-looking echo: the range covers the
  // go-back-N retransmissions, so Karn must still discard the sample.
  const std::int64_t skipped_before =
      w.sender->stats().rtt_samples_karn_skipped;
  w.ack(5, w.sim.now() - sim::microseconds(10));
  EXPECT_GT(w.sender->stats().rtt_samples_karn_skipped, skipped_before);
  EXPECT_EQ(w.sender->rtt().srtt(), srtt_clean);
}

// ------------------------------------------------- final-segment sizing

struct BytePipe {
  sim::Simulator sim;
  net::Dumbbell d;
  std::unique_ptr<TcpFlow> flow;
  std::int64_t wire_bytes = 0;
  std::int64_t data_packets = 0;

  BytePipe() {
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = 1;
    d = net::make_dumbbell(sim, cfg);
    flow = std::make_unique<TcpFlow>(sim, *d.left[0], *d.right[0], 1,
                                     std::make_unique<RenoCC>());
    d.bottleneck->add_tx_observer(
        [this](const net::Packet& pkt, sim::SimTime) {
          if (pkt.type == net::PacketType::kData) {
            wire_bytes += pkt.size_bytes;
            ++data_packets;
          }
        });
  }
};

TEST(FinalSegmentSizing, WireBytesMatchMessageBytesPlusHeaders) {
  BytePipe p;
  // 3000 B at 1460 B payload: segments of 1460 + 1460 + 80 payload.
  const std::int64_t message = 3000;
  sim::SimTime done = -1;
  p.flow->send_message(message, [&](sim::SimTime t) { done = t; });
  p.sim.run();
  ASSERT_GT(done, 0);
  ASSERT_EQ(p.data_packets, 3);
  EXPECT_EQ(p.wire_bytes, message + 3 * net::kHeaderBytes);
}

TEST(FinalSegmentSizing, ExactMultipleStillFullMtu) {
  BytePipe p;
  const std::int64_t payload = p.flow->sender().payload_per_segment();
  sim::SimTime done = -1;
  p.flow->send_message(2 * payload, [&](sim::SimTime t) { done = t; });
  p.sim.run();
  ASSERT_GT(done, 0);
  ASSERT_EQ(p.data_packets, 2);
  EXPECT_EQ(p.wire_bytes, 2 * net::kDefaultMtu);
}

TEST(FinalSegmentSizing, BackToBackMessagesEachCarryTheirRemainder) {
  BytePipe p;
  sim::SimTime done = -1;
  p.flow->send_message(2000, [](sim::SimTime) {});
  p.flow->send_message(100, [&](sim::SimTime t) { done = t; });
  p.sim.run();
  ASSERT_GT(done, 0);
  // 1460 + 540 + 100 payload across three segments.
  ASSERT_EQ(p.data_packets, 3);
  EXPECT_EQ(p.wire_bytes, 2000 + 100 + 3 * net::kHeaderBytes);
}

// ------------------------------------------------------- RED idle decay

TEST(RedIdleDecay, AverageDecaysAcrossIdlePeriod) {
  net::RedQueue::Config cfg;
  cfg.ewma_weight = 0.5;  // fast EWMA so a short burst raises the average
  cfg.idle_pkt_time = sim::microseconds(12);
  net::RedQueue q(cfg);

  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = 1500;
  for (int i = 0; i < 20; ++i) q.enqueue(pkt, sim::microseconds(i));
  const double avg_busy = q.average_queue_bytes();
  ASSERT_GT(avg_busy, 1500.0);

  sim::SimTime now = sim::microseconds(20);
  while (!q.empty()) q.dequeue(now);

  // One second idle is ~83k idle-packet times: the average must be ~0.
  now += sim::seconds(1);
  q.enqueue(pkt, now);
  EXPECT_LT(q.average_queue_bytes(), avg_busy * 1e-3);
}

TEST(RedIdleDecay, DisabledWithZeroIdlePktTime) {
  net::RedQueue::Config cfg;
  cfg.ewma_weight = 0.5;
  cfg.idle_pkt_time = 0;
  net::RedQueue q(cfg);

  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = 1500;
  for (int i = 0; i < 20; ++i) q.enqueue(pkt, sim::microseconds(i));
  const double avg_busy = q.average_queue_bytes();

  sim::SimTime now = sim::microseconds(20);
  while (!q.empty()) q.dequeue(now);
  now += sim::seconds(1);
  q.enqueue(pkt, now);
  // With decay disabled the stale average persists (the pre-fix behavior,
  // kept reachable for comparison).
  EXPECT_GE(q.average_queue_bytes(), avg_busy * 0.5);
}

// ------------------------------------------------- recovery-exit window

TEST(RecoveryExit, FullAckCreditsOneAckOfGrowthNotTheWholeEpisode) {
  SenderWire w;
  w.sender->send_message(60 * w.sender->payload_per_segment(),
                         [](sim::SimTime) {});
  w.step(sim::microseconds(200));
  ASSERT_GE(w.data.size(), 10u);
  w.ack(1, sim::microseconds(2));

  // Three dup ACKs: fast retransmit, window halves to ssthresh.
  w.ack(1, 0);
  w.ack(1, 0);
  w.ack(1, 0);
  ASSERT_TRUE(w.sender->in_recovery());
  const std::int64_t recover = w.sender->next_seq();
  const double cwnd_in_recovery = w.sender->cc().cwnd();
  const double ssthresh = w.sender->cc().ssthresh();
  ASSERT_GT(recover, 2);  // the exit ACK spans many segments

  // The full ACK exits recovery covering the whole episode (~recover
  // segments). RFC 6582: the window exits at ~ssthresh; crediting every
  // covered segment to congestion avoidance would add recover/cwnd segments
  // in one step. The fix bounds the exit credit to a single ACK's worth.
  w.ack(recover, 0);
  ASSERT_FALSE(w.sender->in_recovery());
  const double cwnd_after = w.sender->cc().cwnd();
  EXPECT_GE(cwnd_after, ssthresh) << "window deflated across recovery exit";
  EXPECT_LE(cwnd_after, cwnd_in_recovery + 1.0 / cwnd_in_recovery + 1e-9)
      << "recovery exit inflated cwnd beyond one ACK of CA growth";
}

TEST(RecoveryExit, PartialAcksStillFeedMltcpByteAccounting) {
  // Partial ACKs freeze the window but Algorithm 1 line 7 counts every
  // acknowledged byte: the gain hook must see them even in recovery.
  struct CountingGain : WindowGain {
    int acked = 0;
    void on_ack(const AckContext& ctx) override { acked += ctx.num_acked; }
  };
  auto gain = std::make_shared<CountingGain>();
  SenderWire w;
  w.sender = std::make_unique<TcpSender>(
      w.sim, *w.a, w.b->id(), 1, std::make_unique<RenoCC>(RenoConfig{}, gain));
  w.a->register_flow(1,
                     [&w](const net::Packet& p) { w.sender->on_packet(p); });
  w.sender->send_message(60 * w.sender->payload_per_segment(),
                         [](sim::SimTime) {});
  w.step(sim::microseconds(200));
  w.ack(1, sim::microseconds(2));
  w.ack(1, 0);
  w.ack(1, 0);
  w.ack(1, 0);
  ASSERT_TRUE(w.sender->in_recovery());

  // A partial ACK (3 new segments, below the recovery point).
  const int before = gain->acked;
  w.ack(4, 0);
  ASSERT_TRUE(w.sender->in_recovery());
  EXPECT_EQ(gain->acked, before + 3)
      << "partial ACK's bytes were lost to the iteration tracker";
}

// ----------------------------------------------------------- SACK stress

TEST(SackScoreboard, HeavyLossTransferCompletesWithIntervalBookkeeping) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 1;
  dc.bottleneck_delay = sim::milliseconds(1);
  dc.bottleneck_queue = net::make_random_drop_factory(0.05, 512 * 1500, 17);
  auto d = net::make_dumbbell(sim, dc);
  SenderConfig scfg;
  scfg.use_sack = true;
  TcpFlow flow(sim, *d.left[0], *d.right[0], 1, std::make_unique<RenoCC>(),
               scfg);
  sim::SimTime done = -1;
  const std::int64_t bytes = 5'000'000;
  flow.send_message(bytes, [&](sim::SimTime t) { done = t; });
  sim.run_until(sim::seconds(120));
  ASSERT_GT(done, 0) << "SACK transfer never completed under 5% loss";
  EXPECT_EQ(flow.receiver().rcv_next(), flow.sender().segments_for_bytes(bytes));
  EXPECT_GT(flow.sender().stats().retransmissions, 0);
  EXPECT_TRUE(flow.sender().idle());
}

}  // namespace
}  // namespace mltcp::tcp
