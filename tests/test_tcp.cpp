#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/cubic.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/flow.hpp"
#include "tcp/reno.hpp"
#include "tcp/rtt_estimator.hpp"

namespace mltcp::tcp {
namespace {

AckContext ack(int num_acked, std::int64_t ack_seq = 0, bool ece = false,
               sim::SimTime now = 0) {
  AckContext ctx;
  ctx.now = now;
  ctx.num_acked = num_acked;
  ctx.ack_seq = ack_seq;
  ctx.ece = ece;
  return ctx;
}

/// Fixed-gain hook, used to verify Eq. 1's scaling in isolation.
class FixedGain : public WindowGain {
 public:
  explicit FixedGain(double g) : g_(g) {}
  double gain() const override { return g_; }
  std::string name() const override { return "fixed"; }

 private:
  double g_;
};

// ----------------------------------------------------------- RttEstimator

TEST(RttEstimator, FirstSampleInitializes) {
  RttEstimator est(sim::milliseconds(1));
  EXPECT_FALSE(est.has_sample());
  est.add_sample(sim::milliseconds(10));
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), sim::milliseconds(10));
  EXPECT_EQ(est.rttvar(), sim::milliseconds(5));
  // RTO = srtt + 4 * rttvar = 30 ms.
  EXPECT_EQ(est.rto(), sim::milliseconds(30));
}

TEST(RttEstimator, SmoothsTowardSamples) {
  RttEstimator est;
  est.add_sample(sim::milliseconds(10));
  for (int i = 0; i < 100; ++i) est.add_sample(sim::milliseconds(20));
  EXPECT_NEAR(sim::to_milliseconds(est.srtt()), 20.0, 0.5);
}

TEST(RttEstimator, RespectsMinimumRto) {
  RttEstimator est(sim::milliseconds(5));
  est.add_sample(sim::microseconds(50));
  EXPECT_GE(est.rto(), sim::milliseconds(5));
}

TEST(RttEstimator, BackoffDoublesAndResets) {
  RttEstimator est(sim::milliseconds(1));
  est.add_sample(sim::milliseconds(2));
  const sim::SimTime base = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto(), 2 * base);
  est.backoff();
  EXPECT_EQ(est.rto(), 4 * base);
  est.reset_backoff();
  EXPECT_EQ(est.rto(), base);
}

TEST(RttEstimator, DefaultRtoBeforeSamples) {
  RttEstimator est(sim::milliseconds(1));
  EXPECT_EQ(est.rto(), sim::seconds(1));
}

TEST(RttEstimator, NegativeSampleIgnored) {
  RttEstimator est;
  est.add_sample(-5);
  EXPECT_FALSE(est.has_sample());
}

// -------------------------------------------------------------------- Reno

TEST(RenoCC, SlowStartGrowsByAckedSegments) {
  RenoConfig cfg;
  cfg.initial_cwnd = 2.0;
  cfg.initial_ssthresh = 100.0;
  RenoCC cc(cfg);
  EXPECT_TRUE(cc.in_slow_start());
  cc.on_ack(ack(2));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4.0);
  cc.on_ack(ack(4));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 8.0);
}

TEST(RenoCC, SlowStartCapsAtSsthresh) {
  RenoConfig cfg;
  cfg.initial_cwnd = 8.0;
  cfg.initial_ssthresh = 10.0;
  RenoCC cc(cfg);
  cc.on_ack(ack(8));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(RenoCC, CongestionAvoidanceAdditiveIncrease) {
  RenoConfig cfg;
  cfg.initial_cwnd = 10.0;
  cfg.initial_ssthresh = 5.0;  // start in CA
  RenoCC cc(cfg);
  cc.on_ack(ack(1));
  // cwnd += 1/cwnd.
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.1);
}

TEST(RenoCC, Equation1GainScalesIncrease) {
  // Eq. 1: cwnd += F(bytes_ratio) * num_acks / cwnd.
  RenoConfig cfg;
  cfg.initial_cwnd = 10.0;
  cfg.initial_ssthresh = 5.0;
  RenoCC plain(cfg);
  RenoCC scaled(cfg, std::make_shared<FixedGain>(2.0));
  plain.on_ack(ack(5));
  scaled.on_ack(ack(5));
  EXPECT_DOUBLE_EQ(plain.cwnd(), 10.5);
  EXPECT_DOUBLE_EQ(scaled.cwnd(), 11.0);
}

TEST(RenoCC, GainDoesNotAffectSlowStart) {
  RenoConfig cfg;
  cfg.initial_cwnd = 2.0;
  cfg.initial_ssthresh = 100.0;
  RenoCC scaled(cfg, std::make_shared<FixedGain>(2.0));
  scaled.on_ack(ack(2));
  EXPECT_DOUBLE_EQ(scaled.cwnd(), 4.0);  // not 6
}

TEST(RenoCC, LossHalvesWindow) {
  RenoConfig cfg;
  cfg.initial_cwnd = 20.0;
  cfg.initial_ssthresh = 5.0;
  RenoCC cc(cfg);
  cc.on_loss(0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 10.0);
}

TEST(RenoCC, TimeoutResetsToOne) {
  RenoConfig cfg;
  cfg.initial_cwnd = 20.0;
  cfg.initial_ssthresh = 5.0;
  RenoCC cc(cfg);
  cc.on_timeout(0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 10.0);
}

TEST(RenoCC, MinimumWindowFloor) {
  RenoConfig cfg;
  cfg.initial_cwnd = 2.0;
  cfg.initial_ssthresh = 1.0;
  RenoCC cc(cfg);
  cc.on_loss(0);
  EXPECT_GE(cc.cwnd(), cfg.min_cwnd);
}

TEST(RenoCC, IdleRestartResetsWindowKeepsSsthresh) {
  RenoConfig cfg;
  cfg.initial_cwnd = 10.0;
  cfg.initial_ssthresh = 1e9;
  RenoCC cc(cfg);
  for (int i = 0; i < 100; ++i) cc.on_ack(ack(10));
  cc.on_loss(0);
  const double ssthresh = cc.ssthresh();
  cc.on_idle_restart(0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), ssthresh);
}

TEST(RenoCC, NameReflectsGain) {
  EXPECT_EQ(RenoCC().name(), "reno");
  RenoCC scaled(RenoConfig{}, std::make_shared<FixedGain>(2.0));
  EXPECT_EQ(scaled.name(), "mltcp-reno[fixed]");
}

// ------------------------------------------------------------------- CUBIC

TEST(CubicCC, SlowStartThenCubicGrowth) {
  CubicConfig cfg;
  cfg.initial_cwnd = 10.0;
  cfg.initial_ssthresh = 5.0;
  CubicCC cc(cfg);
  const double before = cc.cwnd();
  AckContext ctx = ack(1, 0, false, sim::milliseconds(10));
  ctx.rtt_sample = sim::microseconds(100);
  cc.on_ack(ctx);
  EXPECT_GT(cc.cwnd(), before);
}

TEST(CubicCC, LossAppliesBetaDecrease) {
  CubicConfig cfg;
  cfg.initial_cwnd = 100.0;
  cfg.initial_ssthresh = 5.0;
  CubicCC cc(cfg);
  cc.on_loss(sim::milliseconds(1));
  EXPECT_NEAR(cc.cwnd(), 70.0, 1e-9);
  EXPECT_NEAR(cc.w_max(), 100.0, 1e-9);
}

TEST(CubicCC, RecoversTowardWmax) {
  CubicConfig cfg;
  cfg.initial_cwnd = 100.0;
  cfg.initial_ssthresh = 5.0;
  CubicCC cc(cfg);
  cc.on_loss(0);
  // Feed ACKs over simulated time; the window must approach w_max again.
  sim::SimTime now = 0;
  for (int i = 0; i < 20000 && cc.cwnd() < 90.0; ++i) {
    now += sim::microseconds(100);
    AckContext ctx = ack(1, i, false, now);
    ctx.rtt_sample = sim::microseconds(100);
    cc.on_ack(ctx);
  }
  // The cubic curve is asymptotically flat near w_max; reaching 90% of the
  // pre-loss window demonstrates the concave recovery region.
  EXPECT_GE(cc.cwnd(), 90.0);
}

TEST(CubicCC, GainAcceleratesRecovery) {
  CubicConfig cfg;
  cfg.initial_cwnd = 100.0;
  cfg.initial_ssthresh = 5.0;
  CubicCC slow(cfg);
  CubicCC fast(cfg, std::make_shared<FixedGain>(2.0));
  slow.on_loss(0);
  fast.on_loss(0);
  sim::SimTime now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += sim::microseconds(100);
    AckContext ctx = ack(1, i, false, now);
    ctx.rtt_sample = sim::microseconds(100);
    slow.on_ack(ctx);
    fast.on_ack(ctx);
  }
  EXPECT_GT(fast.cwnd(), slow.cwnd());
}

TEST(CubicCC, TimeoutResetsToOne) {
  CubicCC cc;
  cc.on_timeout(0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
}

// ------------------------------------------------------------------- DCTCP

TEST(DctcpCC, WantsEcn) {
  DctcpCC cc;
  EXPECT_TRUE(cc.wants_ecn());
  EXPECT_FALSE(RenoCC().wants_ecn());
}

TEST(DctcpCC, AlphaRisesWithMarksAndDecaysWithout) {
  DctcpConfig cfg;
  cfg.initial_cwnd = 10.0;
  cfg.initial_ssthresh = 5.0;
  DctcpCC cc(cfg);
  // RFC 8257 §4.2: alpha starts at 1 so the very first marked window halves.
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
  // Fully-marked windows hold alpha high.
  std::int64_t seq = 0;
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 12; ++i) cc.on_ack(ack(1, ++seq, true));
  }
  EXPECT_GT(cc.alpha(), 0.3);
  const double high = cc.alpha();
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 50; ++i) cc.on_ack(ack(1, ++seq, false));
  }
  EXPECT_LT(cc.alpha(), high);
}

TEST(DctcpCC, FirstMarkedWindowHalvesFromColdStart) {
  // Regression for the RFC 8257 alpha initialization: a short flow whose
  // first window is fully marked must halve immediately, not shave off
  // g/2 of the window while the EWMA warms up from zero.
  DctcpConfig cfg;
  cfg.initial_cwnd = 10.0;
  cfg.initial_ssthresh = 5.0;  // congestion avoidance from the start
  DctcpCC cc(cfg);
  std::int64_t seq = 0;
  // The first observation window spans one initial cwnd of segments, not a
  // single ACK (window_end_seq_ starts at initial_cwnd, not 0).
  for (int i = 0; i < 10; ++i) cc.on_ack(ack(1, ++seq, true));
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
  EXPECT_LE(cc.cwnd(), cfg.initial_cwnd * 0.5 + 1.0)
      << "a fully marked first window must cut cwnd by ~half";
}

TEST(DctcpCC, MarkedWindowCutsProportionally) {
  DctcpConfig cfg;
  cfg.initial_cwnd = 100.0;
  cfg.initial_ssthresh = 5.0;
  cfg.g = 1.0;  // alpha tracks the instantaneous marked fraction
  DctcpCC cc(cfg);
  // First window: all marked -> alpha = 1 -> cwnd *= (1 - 1/2).
  std::int64_t seq = 0;
  double before = cc.cwnd();
  for (int i = 0; i < 110; ++i) cc.on_ack(ack(1, ++seq, true));
  EXPECT_LT(cc.cwnd(), before * 0.6);
}

TEST(DctcpCC, UnmarkedTrafficGrowsLikeReno) {
  DctcpConfig cfg;
  cfg.initial_cwnd = 10.0;
  cfg.initial_ssthresh = 5.0;
  DctcpCC cc(cfg);
  cc.on_ack(ack(1, 1, false));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.1);
}

// --------------------------------------------------------- end-to-end TCP

struct Pipe {
  sim::Simulator sim;
  net::Dumbbell d;
  std::unique_ptr<TcpFlow> flow;

  explicit Pipe(std::unique_ptr<CongestionControl> cc,
                net::QueueFactory bottleneck_queue = nullptr,
                SenderConfig scfg = {}, ReceiverConfig rcfg = {}) {
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = 1;
    cfg.bottleneck_queue = std::move(bottleneck_queue);
    d = net::make_dumbbell(sim, cfg);
    flow = std::make_unique<TcpFlow>(sim, *d.left[0], *d.right[0], 1,
                                     std::move(cc), scfg, rcfg);
  }
};

TEST(TcpEndToEnd, TransfersExactByteCount) {
  Pipe pipe(std::make_unique<RenoCC>());
  sim::SimTime done = -1;
  pipe.flow->send_message(1'000'000, [&](sim::SimTime t) { done = t; });
  pipe.sim.run();
  EXPECT_GT(done, 0);
  const std::int64_t segments = pipe.flow->sender().segments_for_bytes(1'000'000);
  EXPECT_EQ(pipe.flow->receiver().rcv_next(), segments);
  EXPECT_EQ(pipe.flow->sender().stats().messages_completed, 1);
  EXPECT_TRUE(pipe.flow->sender().idle());
}

TEST(TcpEndToEnd, CompletionTimeNearSerialization) {
  Pipe pipe(std::make_unique<RenoCC>());
  sim::SimTime done = -1;
  // 10 MB at 1 Gbps bottleneck: >= 685 segments * wire bytes.
  pipe.flow->send_message(10'000'000, [&](sim::SimTime t) { done = t; });
  pipe.sim.run();
  const double seconds = sim::to_seconds(done);
  EXPECT_GT(seconds, 0.082);  // pure wire time ~0.0822s
  EXPECT_LT(seconds, 0.12);   // slow start + ack tail overhead bounded
}

TEST(TcpEndToEnd, RecoversFromRandomLoss) {
  Pipe pipe(std::make_unique<RenoCC>(),
            net::make_random_drop_factory(0.01, 512 * 1500, 7));
  sim::SimTime done = -1;
  pipe.flow->send_message(2'000'000, [&](sim::SimTime t) { done = t; });
  pipe.sim.run_until(sim::seconds(30));
  EXPECT_GT(done, 0) << "transfer never completed under 1% loss";
  EXPECT_GT(pipe.flow->sender().stats().retransmissions, 0);
  const std::int64_t segments =
      pipe.flow->sender().segments_for_bytes(2'000'000);
  EXPECT_EQ(pipe.flow->receiver().rcv_next(), segments);
}

TEST(TcpEndToEnd, SurvivesHeavyLoss) {
  Pipe pipe(std::make_unique<RenoCC>(),
            net::make_random_drop_factory(0.08, 512 * 1500, 11));
  sim::SimTime done = -1;
  pipe.flow->send_message(300'000, [&](sim::SimTime t) { done = t; });
  pipe.sim.run_until(sim::seconds(60));
  EXPECT_GT(done, 0) << "transfer never completed under 8% loss";
}

TEST(TcpEndToEnd, FastRetransmitPreferredOverTimeout) {
  Pipe pipe(std::make_unique<RenoCC>(),
            net::make_random_drop_factory(0.002, 512 * 1500, 3));
  sim::SimTime done = -1;
  pipe.flow->send_message(5'000'000, [&](sim::SimTime t) { done = t; });
  pipe.sim.run_until(sim::seconds(30));
  ASSERT_GT(done, 0);
  const auto& stats = pipe.flow->sender().stats();
  EXPECT_GT(stats.fast_retransmits, 0);
  // With mild loss and plenty of dupacks, most recoveries avoid the RTO.
  EXPECT_LT(stats.timeouts, stats.fast_retransmits);
}

TEST(TcpEndToEnd, MessagesCompleteInFifoOrder) {
  Pipe pipe(std::make_unique<RenoCC>());
  std::vector<int> order;
  pipe.flow->send_message(100'000, [&](sim::SimTime) { order.push_back(1); });
  pipe.flow->send_message(100'000, [&](sim::SimTime) { order.push_back(2); });
  pipe.flow->send_message(100'000, [&](sim::SimTime) { order.push_back(3); });
  pipe.sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TcpEndToEnd, DelayedAcksHalveAckCount) {
  Pipe per_packet(std::make_unique<RenoCC>());
  ReceiverConfig rcfg;
  rcfg.ack_every = 2;
  Pipe delayed(std::make_unique<RenoCC>(), nullptr, SenderConfig{}, rcfg);

  sim::SimTime d1 = -1, d2 = -1;
  // Small enough that slow start never overflows the bottleneck queue:
  // the comparison is then loss-free and purely about ACK batching.
  per_packet.flow->send_message(300'000, [&](sim::SimTime t) { d1 = t; });
  delayed.flow->send_message(300'000, [&](sim::SimTime t) { d2 = t; });
  per_packet.sim.run();
  delayed.sim.run();
  ASSERT_GT(d1, 0);
  ASSERT_GT(d2, 0);
  EXPECT_EQ(per_packet.flow->sender().stats().retransmissions, 0);
  EXPECT_LT(delayed.flow->receiver().acks_sent(),
            per_packet.flow->receiver().acks_sent() * 6 / 10);
}

TEST(TcpEndToEnd, EcnPathMarksInsteadOfDropping) {
  Pipe pipe(std::make_unique<DctcpCC>(),
            net::make_ecn_factory(256 * 1500, 20 * 1500));
  sim::SimTime done = -1;
  pipe.flow->send_message(10'000'000, [&](sim::SimTime t) { done = t; });
  pipe.sim.run_until(sim::seconds(10));
  ASSERT_GT(done, 0);
  auto* dctcp = dynamic_cast<DctcpCC*>(&pipe.flow->sender().cc());
  ASSERT_NE(dctcp, nullptr);
  // Long single flow through a marking queue: alpha learned > 0, no loss.
  EXPECT_GT(dctcp->alpha(), 0.0);
  EXPECT_EQ(pipe.flow->sender().stats().retransmissions, 0);
}

TEST(TcpEndToEnd, TwoRenoFlowsShareFairly) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.hosts_per_side = 2;
  auto d = net::make_dumbbell(sim, cfg);
  TcpFlow f1(sim, *d.left[0], *d.right[0], 1, std::make_unique<RenoCC>());
  TcpFlow f2(sim, *d.left[1], *d.right[1], 2, std::make_unique<RenoCC>());
  sim::SimTime done1 = -1, done2 = -1;
  f1.send_message(20'000'000, [&](sim::SimTime t) { done1 = t; });
  f2.send_message(20'000'000, [&](sim::SimTime t) { done2 = t; });
  sim.run_until(sim::seconds(10));
  ASSERT_GT(done1, 0);
  ASSERT_GT(done2, 0);
  // Both ~40 MB over a 1 Gbps link: ~0.33 s each under fair sharing;
  // completion times must be within 25% of each other.
  const double ratio = sim::to_seconds(done1) / sim::to_seconds(done2);
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 1.33);
}

TEST(TcpEndToEnd, PfabricPriorityStampsRemainingBytes) {
  SenderConfig scfg;
  scfg.pfabric_priority = true;
  Pipe pipe(std::make_unique<RenoCC>(), nullptr, scfg);
  std::vector<std::int64_t> priorities;
  pipe.d.bottleneck->add_tx_observer(
      [&](const net::Packet& p, sim::SimTime) {
        if (p.type == net::PacketType::kData) priorities.push_back(p.priority);
      });
  pipe.flow->send_message(1'000'000, [](sim::SimTime) {});
  pipe.sim.run();
  ASSERT_GT(priorities.size(), 10u);
  EXPECT_GT(priorities.front(), priorities.back());
  // True remaining payload: the message's application bytes, not
  // segments * MTU (which would count headers and pad the short tail).
  EXPECT_EQ(priorities.front(), 1'000'000);
}

}  // namespace
}  // namespace mltcp::tcp
