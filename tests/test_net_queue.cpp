#include <gtest/gtest.h>

#include "net/queue.hpp"

namespace mltcp::net {
namespace {

Packet data_packet(std::int32_t size = 1500, std::int64_t priority = 0,
                   bool ecn = false) {
  Packet p;
  p.type = PacketType::kData;
  p.size_bytes = size;
  p.priority = priority;
  p.ecn_capable = ecn;
  return p;
}

// ---------------------------------------------------------------- DropTail

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10 * 1500);
  for (int i = 0; i < 3; ++i) {
    Packet p = data_packet();
    p.seq = i;
    EXPECT_TRUE(q.enqueue(p, 0));
  }
  for (int i = 0; i < 3; ++i) {
    auto p = q.dequeue(0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(2 * 1500);
  EXPECT_TRUE(q.enqueue(data_packet(), 0));
  EXPECT_TRUE(q.enqueue(data_packet(), 0));
  EXPECT_FALSE(q.enqueue(data_packet(), 0));
  EXPECT_EQ(q.stats().dropped_packets, 1);
  EXPECT_EQ(q.stats().enqueued_packets, 2);
}

TEST(DropTailQueue, ByteCapacityNotPacketCount) {
  DropTailQueue q(3000);
  EXPECT_TRUE(q.enqueue(data_packet(2000), 0));
  // 2000 + 1500 > 3000: dropped even though only one packet is resident.
  EXPECT_FALSE(q.enqueue(data_packet(1500), 0));
  EXPECT_TRUE(q.enqueue(data_packet(1000), 0));
  EXPECT_EQ(q.backlog_bytes(), 3000);
}

TEST(DropTailQueue, BacklogTracksDequeue) {
  DropTailQueue q(10 * 1500);
  q.enqueue(data_packet(), 0);
  q.enqueue(data_packet(), 0);
  EXPECT_EQ(q.backlog_bytes(), 3000);
  EXPECT_EQ(q.backlog_packets(), 2u);
  q.dequeue(0);
  EXPECT_EQ(q.backlog_bytes(), 1500);
  EXPECT_EQ(q.stats().max_backlog_bytes, 3000);
}

TEST(DropTailQueue, DequeueEmptyReturnsNullopt) {
  DropTailQueue q(1500);
  EXPECT_FALSE(q.dequeue(0).has_value());
}

// ------------------------------------------------------------ EcnThreshold

TEST(EcnThresholdQueue, MarksAboveThreshold) {
  EcnThresholdQueue q(100 * 1500, 2 * 1500);
  // First two arrivals see backlog below the 2-packet threshold: unmarked.
  q.enqueue(data_packet(1500, 0, true), 0);
  q.enqueue(data_packet(1500, 0, true), 0);
  // Third arrival sees backlog == threshold: marked.
  q.enqueue(data_packet(1500, 0, true), 0);
  EXPECT_FALSE(q.dequeue(0)->ce);
  EXPECT_FALSE(q.dequeue(0)->ce);
  EXPECT_TRUE(q.dequeue(0)->ce);
  EXPECT_EQ(q.stats().marked_packets, 1);
}

TEST(EcnThresholdQueue, DoesNotMarkNonEcnPackets) {
  EcnThresholdQueue q(100 * 1500, 1500);
  q.enqueue(data_packet(1500, 0, false), 0);
  q.enqueue(data_packet(1500, 0, false), 0);
  EXPECT_FALSE(q.dequeue(0)->ce);
  EXPECT_FALSE(q.dequeue(0)->ce);
  EXPECT_EQ(q.stats().marked_packets, 0);
}

TEST(EcnThresholdQueue, StillDropsAtCapacity) {
  EcnThresholdQueue q(2 * 1500, 1500);
  EXPECT_TRUE(q.enqueue(data_packet(1500, 0, true), 0));
  EXPECT_TRUE(q.enqueue(data_packet(1500, 0, true), 0));
  EXPECT_FALSE(q.enqueue(data_packet(1500, 0, true), 0));
}

// --------------------------------------------------------- PfabricPriority

TEST(PfabricPriorityQueue, DequeuesSmallestPriorityFirst) {
  PfabricPriorityQueue q(100 * 1500);
  q.enqueue(data_packet(1500, 9000), 0);
  q.enqueue(data_packet(1500, 1500), 0);
  q.enqueue(data_packet(1500, 4500), 0);
  EXPECT_EQ(q.dequeue(0)->priority, 1500);
  EXPECT_EQ(q.dequeue(0)->priority, 4500);
  EXPECT_EQ(q.dequeue(0)->priority, 9000);
}

TEST(PfabricPriorityQueue, FifoWithinEqualPriority) {
  PfabricPriorityQueue q(100 * 1500);
  for (int i = 0; i < 4; ++i) {
    Packet p = data_packet(1500, 7);
    p.seq = i;
    q.enqueue(p, 0);
  }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.dequeue(0)->seq, i);
}

TEST(PfabricPriorityQueue, EvictsLowestPriorityWhenFull) {
  PfabricPriorityQueue q(2 * 1500);
  q.enqueue(data_packet(1500, 100), 0);
  q.enqueue(data_packet(1500, 900), 0);
  // Higher-priority (smaller value) arrival: evicts the 900.
  EXPECT_TRUE(q.enqueue(data_packet(1500, 50), 0));
  EXPECT_EQ(q.stats().dropped_packets, 1);
  EXPECT_EQ(q.dequeue(0)->priority, 50);
  EXPECT_EQ(q.dequeue(0)->priority, 100);
  EXPECT_TRUE(q.empty());
}

TEST(PfabricPriorityQueue, DropsArrivalWorseThanResidents) {
  PfabricPriorityQueue q(2 * 1500);
  q.enqueue(data_packet(1500, 100), 0);
  q.enqueue(data_packet(1500, 200), 0);
  EXPECT_FALSE(q.enqueue(data_packet(1500, 900), 0));
  EXPECT_EQ(q.stats().dropped_packets, 1);
  EXPECT_EQ(q.backlog_packets(), 2u);
}

// ------------------------------------------------------------- RandomDrop

TEST(RandomDropQueue, ZeroProbabilityPassesEverything) {
  RandomDropQueue q(std::make_unique<DropTailQueue>(100 * 1500), 0.0, 1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.enqueue(data_packet(), 0));
  EXPECT_EQ(q.random_drops(), 0);
}

TEST(RandomDropQueue, CertainDropKillsDataButNotAcks) {
  RandomDropQueue q(std::make_unique<DropTailQueue>(100 * 1500), 1.0, 1);
  EXPECT_FALSE(q.enqueue(data_packet(), 0));
  Packet ack;
  ack.type = PacketType::kAck;
  ack.size_bytes = kAckBytes;
  EXPECT_TRUE(q.enqueue(ack, 0));
  EXPECT_EQ(q.random_drops(), 1);
}

TEST(RandomDropQueue, DropRateApproximatesProbability) {
  RandomDropQueue q(std::make_unique<DropTailQueue>(100000 * 1500), 0.1, 42);
  int dropped = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!q.enqueue(data_packet(), 0)) ++dropped;
    q.dequeue(0);
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.1, 0.01);
}

}  // namespace
}  // namespace mltcp::net
