// Event-engine regression tests: generation-tagged id exactness across slot
// reuse, bounded memory under cancel/rearm storms, reusable-timer semantics,
// and a randomized differential check of pop ordering against a reference
// priority structure.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "telemetry/trace_event.hpp"
#include "telemetry/tracer.hpp"

namespace mltcp {
namespace {

// ------------------------------------------------- id / generation exactness

TEST(EventEngineIds, StaleIdsAreExactAcrossSlotReuse) {
  sim::EventQueue q;
  const sim::EventId a = q.schedule(100, [] {});
  EXPECT_TRUE(q.pending(a));
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.pending(a));
  EXPECT_FALSE(q.cancel(a));  // double cancel: exact no-op

  // The free list is LIFO, so this reuses a's slot. The stale id must not
  // alias the new event.
  int b_fired = 0;
  const sim::EventId b = q.schedule(50, [&b_fired] { ++b_fired; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.pending(a));
  EXPECT_FALSE(q.cancel(a));  // must not kill b
  EXPECT_TRUE(q.pending(b));
  EXPECT_EQ(q.pop_and_run(), 50);
  EXPECT_EQ(b_fired, 1);
  EXPECT_FALSE(q.pending(b));  // fired: id is spent
  EXPECT_FALSE(q.cancel(b));
  EXPECT_TRUE(q.empty());
}

TEST(EventEngineIds, ForeignIdsAreRejected) {
  sim::EventQueue q;
  EXPECT_FALSE(q.cancel(sim::kInvalidEventId));
  EXPECT_FALSE(q.pending(sim::kInvalidEventId));
  // Ids this queue never issued: out-of-range slot, even generation.
  EXPECT_FALSE(q.cancel(~std::uint64_t{0}));
  EXPECT_FALSE(q.pending(std::uint64_t{1} << 32));
  const sim::EventId id = q.schedule(10, [] {});
  EXPECT_FALSE(q.cancel(id + 1));  // same slot, even (disarmed) generation
  EXPECT_TRUE(q.cancel(id));
}

TEST(EventEngineIds, ManyReusesOfOneSlotStayExact) {
  sim::EventQueue q;
  std::vector<sim::EventId> spent;
  for (int i = 0; i < 1000; ++i) {
    const sim::EventId id = q.schedule(i, [] {});
    for (const sim::EventId old : spent) {
      ASSERT_FALSE(q.pending(old));
    }
    if (i % 2 == 0) {
      EXPECT_TRUE(q.cancel(id));
    } else {
      EXPECT_EQ(q.pop_and_run(), i);
    }
    spent.push_back(id);
    if (spent.size() > 8) spent.erase(spent.begin());
  }
  EXPECT_TRUE(q.empty());
  EXPECT_LT(q.slot_capacity(), 8u);  // one slot recycled throughout
}

// -------------------------------------------------------- bounded memory

TEST(EventEngineMemory, RtoRearmStormStaysBounded) {
  sim::EventQueue q;
  int fired = 0;
  sim::QueueTimer rto(q, [&fired] { ++fired; });
  sim::SimTime now = 0;
  for (int i = 0; i < 200'000; ++i) {
    rto.arm(now + 1'000'000);  // pushed out before every fire, like an RTO
    q.schedule(now + 1, [] {});
    now = q.pop_and_run();
  }
  EXPECT_EQ(fired, 0);
  // 200k rearms left 200k stale heap entries behind over time; lazy
  // compaction must have kept the heap within a small constant of the live
  // count (2) instead of letting it grow linearly.
  EXPECT_LT(q.heap_entries(), 512u);
  EXPECT_LT(q.slot_capacity(), 64u);
  rto.cancel();
  while (!q.empty()) q.pop_and_run();
}

TEST(EventEngineMemory, CancelStormStaysBounded) {
  sim::EventQueue q;
  sim::SimTime now = 0;
  for (int i = 0; i < 200'000; ++i) {
    const sim::EventId id = q.schedule(now + 1'000'000, [] {});
    ASSERT_TRUE(q.cancel(id));
    q.schedule(now + 1, [] {});
    now = q.pop_and_run();
  }
  EXPECT_LT(q.heap_entries(), 512u);
  EXPECT_LT(q.slot_capacity(), 64u);
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------------------------ timer handle

TEST(Timer, RearmFiresOnceAtNewDeadline) {
  sim::Simulator s;
  std::vector<sim::SimTime> fires;
  sim::Timer t(s, [&] { fires.push_back(s.now()); });
  t.arm(100);
  t.arm(250);  // replaces the pending deadline in place
  s.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], 250);
}

TEST(Timer, PendingAndDeadlineTrackLifecycle) {
  sim::Simulator s;
  int fired = 0;
  sim::Timer t(s, [&fired] { ++fired; });
  EXPECT_FALSE(t.pending());
  t.arm(100);
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.deadline(), 100);
  t.arm(300);
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.deadline(), 300);
  t.cancel();
  EXPECT_FALSE(t.pending());
  s.run();
  EXPECT_EQ(fired, 0);

  t.arm(500);  // rearm after cancel works
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
  t.arm(10);  // rearm after fire works
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Timer, RearmTakesFreshFifoPositionAtEqualTimestamps) {
  // A rearm gets a fresh FIFO sequence number, exactly like the
  // cancel + schedule pattern it replaces: rearming to a deadline another
  // event already holds puts the timer behind that event.
  sim::Simulator s;
  std::vector<int> order;
  sim::Timer t(s, [&order] { order.push_back(0); });
  t.arm(100);
  s.schedule(100, [&order] { order.push_back(1); });
  t.arm_at(100);  // same deadline, fresh position: now behind the one-shot
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(Timer, CallbackMayRearmItself) {
  sim::Simulator s;
  std::vector<sim::SimTime> fires;
  sim::Timer t;
  t.bind(s, [&] {
    fires.push_back(s.now());
    if (fires.size() < 3) t.arm(10);
  });
  t.arm(5);
  s.run();
  EXPECT_EQ(fires, (std::vector<sim::SimTime>{5, 15, 25}));
}

// -------------------------------------------- telemetry trace equivalence

/// Runs the same RTO-push-out scenario either through a reusable Timer or
/// through the manual cancel + schedule pattern it replaces, and returns the
/// telemetry events it produced. Drivers at t = 0/10/20 each push the
/// deadline to now + 100; a competing one-shot shares the final fire time.
std::vector<telemetry::TraceEvent> run_rto_scenario(bool use_timer) {
  sim::Simulator s;
  telemetry::Tracer::Config cfg;
  cfg.categories = telemetry::category_bit(telemetry::Category::kCustom);
  cfg.ring_capacity = 64;
  telemetry::Tracer tracer(cfg);
  s.set_tracer(&tracer);

  const auto emit = [&s](const char* name) {
    if (auto* t = telemetry::tracer_for(s, telemetry::Category::kCustom)) {
      t->instant(telemetry::Category::kCustom, name, s.now(), 7);
    }
  };

  sim::Timer rto;
  sim::EventId rto_id = sim::kInvalidEventId;
  if (use_timer) {
    rto.bind(s, [&emit] { emit("rto_fire"); });
  }
  for (const sim::SimTime at : {0, 10, 20}) {
    s.schedule_at(at, [&, use_timer] {
      emit("rto_pushed");
      if (use_timer) {
        rto.arm(100);
      } else {
        if (s.pending(rto_id)) s.cancel(rto_id);
        rto_id = s.schedule(100, [&emit] { emit("rto_fire"); });
      }
    });
  }
  s.schedule_at(120, [&emit] { emit("other"); });  // ties with the final fire
  s.run();
  return tracer.ring_snapshot();
}

TEST(TimerTraceEquivalence, RearmMatchesCancelSchedulePattern) {
  const auto with_timer = run_rto_scenario(true);
  const auto manual = run_rto_scenario(false);
  ASSERT_EQ(with_timer.size(), manual.size());
  for (std::size_t i = 0; i < manual.size(); ++i) {
    EXPECT_EQ(with_timer[i].when, manual[i].when) << "event " << i;
    EXPECT_EQ(with_timer[i].type, manual[i].type) << "event " << i;
    EXPECT_EQ(with_timer[i].track, manual[i].track) << "event " << i;
    EXPECT_STREQ(with_timer[i].name, manual[i].name) << "event " << i;
  }
  // Sanity: the scenario fired exactly once, after the competing one-shot.
  ASSERT_EQ(manual.size(), 5u);
  EXPECT_STREQ(manual[3].name, "other");
  EXPECT_STREQ(manual[4].name, "rto_fire");
  EXPECT_EQ(manual[4].when, 120);
}

// ------------------------------------------------- randomized differential

TEST(EventEngineDifferential, MatchesReferenceOrderingUnderChurn) {
  // Reference model: a multimap keyed by timestamp. Since C++11 multimap
  // insertion places equal keys at the upper bound of their range, which is
  // exactly the queue's FIFO-at-equal-timestamp contract.
  sim::Rng rng(0xE7E47);
  sim::EventQueue q;
  std::multimap<sim::SimTime, int> ref;
  std::unordered_map<int, sim::EventId> ids;
  std::vector<int> fired;
  int next_token = 0;
  sim::SimTime now = 0;

  const auto pop_and_check = [&] {
    const auto expected = ref.begin();
    fired.clear();
    now = q.pop_and_run();
    ASSERT_EQ(now, expected->first);
    ASSERT_EQ(fired.size(), 1u);
    ASSERT_EQ(fired[0], expected->second);
    ids.erase(expected->second);
    ref.erase(expected);
  };

  for (int step = 0; step < 50'000; ++step) {
    const std::int64_t op = rng.uniform_int(0, 9);
    if (op < 5 || ref.empty()) {
      const sim::SimTime when = now + rng.uniform_int(0, 40);
      const int tok = next_token++;
      ids[tok] = q.schedule(when, [tok, &fired] { fired.push_back(tok); });
      ref.emplace(when, tok);
    } else if (op < 7) {
      // Cancel a pseudo-random outstanding event.
      auto it = ids.begin();
      std::advance(it, rng.uniform_int(
                           0, static_cast<std::int64_t>(ids.size()) - 1));
      ASSERT_TRUE(q.cancel(it->second));
      for (auto r = ref.begin(); r != ref.end(); ++r) {
        if (r->second == it->first) {
          ref.erase(r);
          break;
        }
      }
      ids.erase(it);
    } else {
      pop_and_check();
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  while (!ref.empty()) pop_and_check();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace mltcp
