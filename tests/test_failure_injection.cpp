// Failure-injection tests: transient blackouts, flapping loss, and abrupt
// competitor arrival. The transport must always recover and the MLTCP
// machinery must re-converge afterwards.

#include <gtest/gtest.h>

#include <memory>

#include "analysis/metrics.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "telemetry/collect.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/tracer.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"
#include "workload/profiles.hpp"

namespace mltcp {
namespace {

/// Dumbbell whose bottleneck loss probability can be changed mid-run.
struct LossyRig {
  sim::Simulator sim;
  net::Dumbbell d;
  net::RandomDropQueue* knob = nullptr;

  LossyRig() {
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = 2;
    cfg.bottleneck_queue = [this] {
      auto q = std::make_unique<net::RandomDropQueue>(
          std::make_unique<net::DropTailQueue>(512 * 1500), 0.0, 7);
      // Only the first-created queue (the forward bottleneck) gets the knob.
      if (knob == nullptr) knob = q.get();
      return q;
    };
    d = net::make_dumbbell(sim, cfg);
  }
};

TEST(FailureInjection, TransferSurvivesTotalBlackout) {
  LossyRig rig;
  // Flight recorder on the loss categories: if the run goes bad, the last
  // events explain it — and after the blackout it must contain the RTOs.
  telemetry::Tracer tracer(telemetry::Tracer::Config{
      telemetry::Category::kTcp | telemetry::Category::kQueue, 256});
  rig.sim.set_tracer(&tracer);

  tcp::TcpFlow flow(rig.sim, *rig.d.left[0], *rig.d.right[0], 1,
                    std::make_unique<tcp::RenoCC>());
  sim::SimTime done = -1;
  flow.send_message(10'000'000, [&](sim::SimTime t) { done = t; });

  // 50 ms in, the link goes dark for 200 ms.
  rig.sim.schedule(sim::milliseconds(50),
                   [&] { rig.knob->set_drop_probability(1.0); });
  rig.sim.schedule(sim::milliseconds(250),
                   [&] { rig.knob->set_drop_probability(0.0); });

  rig.sim.run_until(sim::seconds(30));
  ASSERT_GT(done, 0) << "flow never recovered from the blackout";
  EXPECT_EQ(flow.receiver().rcv_next(),
            flow.sender().segments_for_bytes(10'000'000));

  // The consolidated registry view must agree with the raw stats struct:
  // a full blackout is survived via RTO.
  telemetry::MetricRegistry reg;
  telemetry::collect_sender(reg, "tcp/flow1", flow.sender());
  EXPECT_GT(reg.counter("tcp/flow1/timeouts").value(), 0)
      << "a full blackout must be survived via RTO";
  EXPECT_EQ(reg.counter("tcp/flow1/timeouts").value(),
            flow.sender().stats().timeouts);

  // Anomaly detected (an RTO burst): dump the black box. The retained tail
  // must actually contain the rto/drop events of the blackout.
  telemetry::InMemorySink blackbox;
  tracer.dump_ring(blackbox);
  EXPECT_GT(tracer.emitted(), 0u);
  EXPECT_GT(blackbox.count("rto") + blackbox.count("drop"), 0u);
}

TEST(FailureInjection, RtoBackoffDuringBlackoutThenRecovers) {
  LossyRig rig;
  tcp::TcpFlow flow(rig.sim, *rig.d.left[0], *rig.d.right[0], 1,
                    std::make_unique<tcp::RenoCC>());
  sim::SimTime done = -1;
  flow.send_message(2'000'000, [&](sim::SimTime t) { done = t; });

  rig.sim.schedule(sim::milliseconds(5),
                   [&] { rig.knob->set_drop_probability(1.0); });
  rig.sim.schedule(sim::seconds(1),
                   [&] { rig.knob->set_drop_probability(0.0); });
  rig.sim.run_until(sim::seconds(90));
  ASSERT_GT(done, 0);
  // A 1 s blackout forces several backed-off RTOs, but recovery must not
  // take more than a few seconds beyond it.
  EXPECT_GE(flow.sender().stats().timeouts, 2);
  EXPECT_LT(sim::to_seconds(done), 6.0);
}

TEST(FailureInjection, FlappingLossDoesNotWedgeSack) {
  LossyRig rig;
  tcp::SenderConfig scfg;
  scfg.use_sack = true;
  tcp::TcpFlow flow(rig.sim, *rig.d.left[0], *rig.d.right[0], 1,
                    std::make_unique<tcp::RenoCC>(), scfg);
  sim::SimTime done = -1;
  flow.send_message(8'000'000, [&](sim::SimTime t) { done = t; });

  // Loss flaps between 5% and 0 every 20 ms for half a second.
  for (int i = 0; i < 25; ++i) {
    rig.sim.schedule(sim::milliseconds(20 * i), [&, i] {
      rig.knob->set_drop_probability(i % 2 == 0 ? 0.05 : 0.0);
    });
  }
  rig.sim.schedule(sim::milliseconds(500),
                   [&] { rig.knob->set_drop_probability(0.0); });
  rig.sim.run_until(sim::seconds(60));
  ASSERT_GT(done, 0);
  EXPECT_EQ(flow.receiver().rcv_next(),
            flow.sender().segments_for_bytes(8'000'000));

  // Intermittent 5% loss on a SACK flow must be absorbed by fast
  // retransmits (dupACK recovery), not by stalling into RTOs.
  telemetry::MetricRegistry reg;
  telemetry::collect_sender(reg, "tcp/flow1", flow.sender());
  EXPECT_GT(reg.counter("tcp/flow1/fast_retransmits").value(), 0)
      << "flapping loss should trigger dupACK recovery";
  EXPECT_EQ(reg.counter("tcp/flow1/fast_retransmits").value(),
            flow.sender().stats().fast_retransmits);
}

TEST(FailureInjection, MltcpJobRidesOutLossBurstAndReconverges) {
  LossyRig rig;
  workload::Cluster cluster(rig.sim);
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const std::int64_t bytes = workload::comm_bytes(gpt2, 1e9);
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = bytes;
  cfg.tracker.comp_time = workload::compute_time(gpt2) / 2;

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    workload::JobSpec spec;
    spec.name = "j" + std::to_string(i);
    spec.flows =
        workload::single_flow(rig.d.left[i], rig.d.right[i], bytes);
    spec.compute_time = workload::compute_time(gpt2);
    spec.max_iterations = 30;
    spec.cc = core::mltcp_reno_factory(cfg);
    jobs.push_back(cluster.add_job(spec));
  }

  // A 3% loss burst between t=15s and t=20s (mid-convergence).
  rig.sim.schedule(sim::seconds(15),
                   [&] { rig.knob->set_drop_probability(0.03); });
  rig.sim.schedule(sim::seconds(20),
                   [&] { rig.knob->set_drop_probability(0.0); });

  cluster.start_all();
  rig.sim.run_until(sim::seconds(120));

  const double ideal = sim::to_seconds(gpt2.ideal_iteration_time);
  for (workload::Job* job : jobs) {
    ASSERT_EQ(job->completed_iterations(), 30) << job->name();
    EXPECT_LT(analysis::tail_mean(job->iteration_times_seconds(), 5),
              ideal * 1.10)
        << job->name() << " did not re-converge after the loss burst";
  }
}

}  // namespace
}  // namespace mltcp
