#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "tcp/reno.hpp"

namespace mltcp::tcp {
namespace {

/// Harness with direct access to both directions of a two-host wire:
/// crafted data packets go A -> B, and every ACK B emits is captured at A.
struct Wire {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  std::unique_ptr<TcpReceiver> receiver;
  std::vector<net::Packet> acks;

  Wire() {
    a = topo.add_host("a");
    b = topo.add_host("b");
    topo.connect(*a, *b, 1e9, sim::microseconds(1),
                 net::make_droptail_factory(1'000'000));
    ReceiverConfig cfg;
    cfg.sack_enabled = true;
    receiver = std::make_unique<TcpReceiver>(sim, *b, a->id(), 1, cfg);
    b->register_flow(1, [this](const net::Packet& p) {
      receiver->on_packet(p);
    });
    a->register_flow(1, [this](const net::Packet& p) {
      acks.push_back(p);
    });
  }

  void deliver(std::int64_t seq) {
    net::Packet p;
    p.flow = 1;
    p.dst = b->id();
    p.type = net::PacketType::kData;
    p.seq = seq;
    p.size_bytes = 1500;
    a->send(p);
    sim.run();
  }
};

TEST(Sack, InOrderAcksCarryNoBlocks) {
  Wire w;
  w.deliver(0);
  w.deliver(1);
  ASSERT_EQ(w.acks.size(), 2u);
  for (const auto& ack : w.acks) EXPECT_EQ(ack.sack_count(), 0);
}

TEST(Sack, HoleReportedAsBlock) {
  Wire w;
  w.deliver(0);
  w.deliver(2);  // 1 missing
  ASSERT_EQ(w.acks.size(), 2u);
  const auto& dup = w.acks.back();
  EXPECT_EQ(dup.seq, 1);  // cumulative ACK stuck at the hole
  ASSERT_GE(dup.sack_count(), 1);
  EXPECT_EQ(dup.sack(0).start, 2);
  EXPECT_EQ(dup.sack(0).end, 3);
}

TEST(Sack, ContiguousOutOfOrderMergesIntoOneBlock) {
  Wire w;
  w.deliver(0);
  w.deliver(2);
  w.deliver(3);
  w.deliver(4);
  const auto& dup = w.acks.back();
  ASSERT_EQ(dup.sack_count(), 1);
  EXPECT_EQ(dup.sack(0).start, 2);
  EXPECT_EQ(dup.sack(0).end, 5);
}

TEST(Sack, MultipleHolesProduceMultipleBlocks) {
  Wire w;
  w.deliver(0);
  w.deliver(2);
  w.deliver(4);
  w.deliver(6);
  const auto& dup = w.acks.back();
  ASSERT_EQ(dup.sack_count(), 3);
  EXPECT_EQ(dup.sack(0).start, 2);
  EXPECT_EQ(dup.sack(0).end, 3);
  EXPECT_EQ(dup.sack(1).start, 4);
  EXPECT_EQ(dup.sack(1).end, 5);
  EXPECT_EQ(dup.sack(2).start, 6);
  EXPECT_EQ(dup.sack(2).end, 7);
}

TEST(Sack, BlocksClearOnceHoleFills) {
  Wire w;
  w.deliver(0);
  w.deliver(2);
  w.deliver(1);  // fills the hole
  const auto& ack = w.acks.back();
  EXPECT_EQ(ack.seq, 3);
  EXPECT_EQ(ack.sack_count(), 0);
}

TEST(Sack, DisabledConfigOmitsBlocks) {
  Wire w;
  ReceiverConfig cfg;
  cfg.sack_enabled = false;
  w.receiver = std::make_unique<TcpReceiver>(w.sim, *w.b, w.a->id(), 1, cfg);
  w.deliver(0);
  w.deliver(2);
  EXPECT_EQ(w.acks.back().sack_count(), 0);
}

// ------------------------------------------------------- end-to-end SACK

TEST(Sack, TransferCompletesUnderLossWithSack) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 1;
  dc.bottleneck_queue = net::make_random_drop_factory(0.02, 512 * 1500, 17);
  auto d = net::make_dumbbell(sim, dc);
  SenderConfig scfg;
  scfg.use_sack = true;
  TcpFlow flow(sim, *d.left[0], *d.right[0], 1, std::make_unique<RenoCC>(),
               scfg);
  sim::SimTime done = -1;
  flow.send_message(3'000'000, [&](sim::SimTime t) { done = t; });
  sim.run_until(sim::seconds(60));
  ASSERT_GT(done, 0);
  const std::int64_t segments = flow.sender().segments_for_bytes(3'000'000);
  EXPECT_EQ(flow.receiver().rcv_next(), segments);
}

TEST(Sack, SackAvoidsSpuriousGoBackNResends) {
  // Same seed and loss rate with and without SACK: SACK must not resend
  // more data than NewReno.
  auto run = [](bool sack) {
    sim::Simulator sim;
    net::DumbbellConfig dc;
    dc.hosts_per_side = 1;
    dc.bottleneck_delay = sim::milliseconds(1);
    dc.bottleneck_queue =
        net::make_random_drop_factory(0.01, 512 * 1500, 23);
    auto d = net::make_dumbbell(sim, dc);
    SenderConfig scfg;
    scfg.use_sack = sack;
    TcpFlow flow(sim, *d.left[0], *d.right[0], 1,
                 std::make_unique<RenoCC>(), scfg);
    sim::SimTime done = -1;
    flow.send_message(5'000'000, [&](sim::SimTime t) { done = t; });
    sim.run_until(sim::seconds(120));
    EXPECT_GT(done, 0);
    return flow.sender().stats().retransmissions;
  };
  EXPECT_LE(run(true), run(false) * 2)
      << "SACK retransmissions should not explode relative to NewReno";
}

}  // namespace
}  // namespace mltcp::tcp
