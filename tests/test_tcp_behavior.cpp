// Behavioural end-to-end checks of the transport: classic properties each
// congestion controller is known for, observed on the simulated dumbbell.

#include <gtest/gtest.h>

#include <memory>

#include "analysis/metrics.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"
#include "workload/profiles.hpp"
#include "sched/pfabric.hpp"

namespace mltcp {
namespace {

struct LongFlowOutcome {
  double seconds = -1.0;
  std::int64_t max_backlog_bytes = 0;
  tcp::SenderStats stats;
};

LongFlowOutcome run_long_flow(std::unique_ptr<tcp::CongestionControl> cc,
                              net::QueueFactory bottleneck_queue = nullptr) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 1;
  dc.bottleneck_queue = std::move(bottleneck_queue);
  auto d = net::make_dumbbell(sim, dc);
  tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1, std::move(cc));
  sim::SimTime done = -1;
  flow.send_message(30'000'000, [&](sim::SimTime t) { done = t; });
  sim.run_until(sim::seconds(10));
  LongFlowOutcome out;
  out.seconds = done > 0 ? sim::to_seconds(done) : -1.0;
  out.max_backlog_bytes = d.bottleneck->queue().stats().max_backlog_bytes;
  out.stats = flow.sender().stats();
  return out;
}

TEST(TcpBehavior, RenoFillsTheBufferDctcpKeepsItShallow) {
  // Classic DCTCP claim: ECN marking holds the queue near the threshold
  // while Reno drives it to (or beyond) capacity.
  const auto reno = run_long_flow(std::make_unique<tcp::RenoCC>());
  const auto dctcp = run_long_flow(std::make_unique<tcp::DctcpCC>(),
                                   net::make_ecn_factory(250'000, 30'000));
  ASSERT_GT(reno.seconds, 0);
  ASSERT_GT(dctcp.seconds, 0);
  EXPECT_GT(reno.max_backlog_bytes, 200'000);
  // Slow start overshoots the mark threshold once before alpha is learned;
  // afterwards the queue sits near 30 KB. The bound captures "well below
  // Reno's full buffer" rather than the steady state alone.
  EXPECT_LT(dctcp.max_backlog_bytes, 150'000);
  EXPECT_EQ(dctcp.stats.retransmissions, 0)
      << "marking should prevent loss entirely on a single flow";
}

TEST(TcpBehavior, RenoSawtoothsUnderDropTail) {
  const auto reno = run_long_flow(std::make_unique<tcp::RenoCC>());
  ASSERT_GT(reno.seconds, 0);
  EXPECT_GT(reno.stats.fast_retransmits, 0)
      << "a buffer-limited long flow must hit loss and recover";
  // Goodput stays within 25% of the wire rate despite the sawtooth.
  EXPECT_LT(reno.seconds, 30'000'000.0 * 8 / 1e9 / 1460.0 * 1500.0 * 1.25);
}

TEST(TcpBehavior, SwiftHoldsQueueNearDelayTarget) {
  tcp::SwiftConfig cfg;
  cfg.target_delay = sim::microseconds(500);
  const auto swift = run_long_flow(std::make_unique<tcp::SwiftCC>(cfg));
  ASSERT_GT(swift.seconds, 0);
  // 500 us of queueing at 1 Gbps is ~62 KB; allow slack for the control
  // loop's sawtooth but demand far less than Reno's ~250 KB fill.
  EXPECT_LT(swift.max_backlog_bytes, 150'000);
  EXPECT_EQ(swift.stats.timeouts, 0);
}

TEST(TcpBehavior, CubicOutpacesRenoOnLongFatPipe) {
  auto run = [](std::unique_ptr<tcp::CongestionControl> cc) {
    sim::Simulator sim;
    net::DumbbellConfig dc;
    dc.hosts_per_side = 1;
    dc.bottleneck_delay = sim::milliseconds(5);  // fatten the pipe
    auto d = net::make_dumbbell(sim, dc);
    tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1, std::move(cc));
    sim::SimTime done = -1;
    flow.send_message(40'000'000, [&](sim::SimTime t) { done = t; });
    sim.run_until(sim::seconds(60));
    return done > 0 ? sim::to_seconds(done) : 1e9;
  };
  const double reno = run(std::make_unique<tcp::RenoCC>());
  const double cubic = run(std::make_unique<tcp::CubicCC>());
  ASSERT_LT(reno, 1e8) << "Reno must complete the transfer";
  ASSERT_LT(cubic, 1e8) << "CUBIC must complete the transfer";
  // Completion time on this drop-tail scenario is chaotic in the sawtooth
  // phase alignment: sweeping the bottleneck delay swings the CUBIC/Reno
  // ratio between ~0.91 and ~1.10 (Karn-compliant RTT sampling — no samples
  // from retransmission-ambiguous ACKs — also leaves CUBIC's clock on a
  // staler RTT through recovery). Assert competitiveness with a margin that
  // covers that swing rather than a knife-edge 5%.
  EXPECT_LT(cubic, reno * 1.15)
      << "CUBIC must be at least competitive with Reno on a long fat pipe";
}

TEST(TcpBehavior, MltcpGainRampsAndResetsAcrossIterations) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 1;
  auto d = net::make_dumbbell(sim, dc);
  workload::Cluster cluster(sim);

  const std::int64_t bytes = 10'000'000;
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = bytes;
  cfg.tracker.comp_time = sim::milliseconds(100);

  workload::JobSpec spec;
  spec.name = "probe";
  spec.flows = workload::single_flow(d.left[0], d.right[0], bytes);
  spec.compute_time = sim::milliseconds(300);
  spec.max_iterations = 3;
  spec.cc = core::mltcp_reno_factory(cfg);
  cluster.add_job(spec);

  const auto* gain = dynamic_cast<const core::MltcpGain*>(
      &cluster.flows_of(0)[0]->sender().cc().window_gain());
  ASSERT_NE(gain, nullptr);

  double mid_iteration_gain = 0.0;
  // Sample the gain in the middle of the second iteration's comm phase
  // (iteration period ~ 82 ms comm + 300 ms compute).
  sim.schedule(sim::milliseconds(382 + 41), [&] {
    mid_iteration_gain = gain->gain();
  });
  cluster.start_all();
  sim.run_until(sim::seconds(5));

  EXPECT_GT(mid_iteration_gain, 0.8)
      << "halfway through an iteration the gain must be near F(0.5)";
  EXPECT_EQ(gain->tracker().iterations_seen(), 2)
      << "two compute gaps between three iterations";
}

TEST(TcpBehavior, TwoMltcpFlowsWithDifferentProgressShareUnequally) {
  // The core §3.1 insight in isolation: of two competing flows, the one
  // further into its iteration (higher bytes_ratio) must win bandwidth.
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 2;
  auto d = net::make_dumbbell(sim, dc);

  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = 40'000'000;
  cfg.tracker.comp_time = sim::seconds(10);

  tcp::TcpFlow ahead(sim, *d.left[0], *d.right[0], 1,
                     core::make_mltcp_reno(cfg));
  tcp::TcpFlow behind(sim, *d.left[1], *d.right[1], 2,
                      core::make_mltcp_reno(cfg));

  // `ahead` transfers 30 MB alone first: its bytes_ratio reaches 0.75.
  sim::SimTime ahead_done = -1;
  sim::SimTime behind_done = -1;
  ahead.send_message(30'000'000, [&](sim::SimTime) {
    // Remaining 10 MB now competes with `behind`, which starts at ratio 0.
    ahead.send_message(10'000'000,
                       [&](sim::SimTime t) { ahead_done = t; });
    behind.send_message(40'000'000,
                        [&](sim::SimTime t) { behind_done = t; });
  });
  sim.run_until(sim::seconds(10));

  ASSERT_GT(ahead_done, 0);
  ASSERT_GT(behind_done, 0);
  // Contention starts ~0.25 s in. With equal sharing, `ahead`'s last 10 MB
  // would take ~0.16 s; with its gain advantage it must finish well before
  // `behind` and faster than the fair-share bound.
  EXPECT_LT(ahead_done, behind_done);
  const double contended =
      sim::to_seconds(ahead_done) - 30'000'000.0 * 1500 / 1460 * 8 / 1e9;
  EXPECT_LT(contended, 0.155);
}

TEST(TcpBehavior, PacingSpreadsDeparturesAcrossTheRtt) {
  // Fixed window 20 on a 2 ms-RTT pipe whose BDP (~167 segments) dwarfs the
  // window: no queueing, so departures directly show the release pattern.
  // Unpaced: ACK-clocked 20-segment bursts (12 us wire spacing). Paced:
  // one segment per srtt/cwnd ~ 100 us.
  auto median_gap = [](bool pacing) {
    sim::Simulator sim;
    net::DumbbellConfig dc;
    dc.hosts_per_side = 1;
    dc.bottleneck_delay = sim::milliseconds(1);
    auto d = net::make_dumbbell(sim, dc);
    tcp::SenderConfig scfg;
    scfg.pacing = pacing;
    tcp::TcpFlow flow(
        sim, *d.left[0], *d.right[0], 1,
        std::make_unique<sched::PfabricCC>(sched::PfabricConfig{20.0}),
        scfg);
    std::vector<sim::SimTime> departures;
    d.bottleneck->add_tx_observer(
        [&](const net::Packet& p, sim::SimTime now) {
          if (p.type == net::PacketType::kData) departures.push_back(now);
        });
    sim::SimTime done = -1;
    flow.send_message(3'000'000, [&](sim::SimTime t) { done = t; });
    sim.run_until(sim::seconds(10));
    EXPECT_GT(done, 0);
    // Skip the pre-RTT-sample warm-up (first two windows).
    std::vector<double> gaps;
    for (std::size_t i = 41; i < departures.size(); ++i) {
      gaps.push_back(
          sim::to_microseconds(departures[i] - departures[i - 1]));
    }
    return analysis::percentile(gaps, 50);
  };
  const double burst_gap = median_gap(false);
  const double paced_gap = median_gap(true);
  EXPECT_LT(burst_gap, 20.0) << "unpaced sender must emit bursts";
  EXPECT_GT(paced_gap, 50.0) << "paced sender must spread across the RTT";
}

TEST(TcpBehavior, PacedMltcpJobStillConverges) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 2;
  auto d = net::make_dumbbell(sim, dc);
  workload::Cluster cluster(sim);
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const std::int64_t bytes = workload::comm_bytes(gpt2, 1e9);
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = bytes;
  cfg.tracker.comp_time = workload::compute_time(gpt2) / 2;
  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    workload::JobSpec spec;
    spec.name = "paced-" + std::to_string(i);
    spec.flows = workload::single_flow(d.left[i], d.right[i], bytes);
    spec.compute_time = workload::compute_time(gpt2);
    spec.max_iterations = 25;
    spec.sender.pacing = true;
    spec.cc = core::mltcp_reno_factory(cfg);
    jobs.push_back(cluster.add_job(spec));
  }
  cluster.start_all();
  sim.run_until(sim::seconds(90));
  for (workload::Job* job : jobs) {
    ASSERT_EQ(job->completed_iterations(), 25) << job->name();
    EXPECT_LT(analysis::tail_mean(job->iteration_times_seconds(), 5),
              sim::to_seconds(gpt2.ideal_iteration_time) * 1.10);
  }
}

}  // namespace
}  // namespace mltcp
