// Scenario-engine tests: scripted fault replay must be deterministic (same
// seed + scenario -> byte-identical campaign output at any thread count), an
// empty scenario must leave a run untouched, link faults must repair routes
// incrementally, and the transport must survive blackouts longer than the
// RTO cap.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "runner/campaign.hpp"
#include "runner/sinks.hpp"
#include "scenario/engine.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "tcp/reno.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"

namespace mltcp {
namespace {

/// Synthetic training jobs over a dumbbell: small enough to run in
/// milliseconds, real enough to exercise the full stack under faults.
struct Rig {
  sim::Simulator sim;
  net::Dumbbell d;
  workload::Cluster cluster{sim};

  explicit Rig(int hosts_per_side = 3) {
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = hosts_per_side;
    d = net::make_dumbbell(sim, cfg);
  }

  workload::Job* add_job(const std::string& name, int pair, std::int64_t bytes,
                         sim::SimTime compute, int iterations) {
    workload::JobSpec spec;
    spec.name = name;
    spec.flows = workload::single_flow(d.left[pair], d.right[pair], bytes);
    spec.compute_time = compute;
    spec.max_iterations = iterations;
    spec.cc = [] { return std::make_unique<tcp::RenoCC>(); };
    return cluster.add_job(spec);
  }
};

// ------------------------------------------------------ zero perturbation

TEST(Scenario, EmptyScenarioLeavesRunByteIdentical) {
  auto run = [](bool with_engine) {
    Rig rig;
    workload::Job* j0 = rig.add_job("j0", 0, 1'000'000, sim::milliseconds(5),
                                    15);
    workload::Job* j1 = rig.add_job("j1", 1, 1'500'000, sim::milliseconds(7),
                                    15);
    scenario::ScenarioEngine engine(rig.sim, *rig.d.topology, rig.cluster);
    if (with_engine) engine.install(scenario::Scenario{});
    rig.cluster.start_all();
    rig.sim.run_until(sim::seconds(5));
    std::vector<workload::IterationRecord> records;
    for (const workload::Job* j : {j0, j1}) {
      records.insert(records.end(), j->iterations().begin(),
                     j->iterations().end());
    }
    return records;
  };
  const auto base = run(false);
  const auto with_empty = run(true);
  ASSERT_EQ(base.size(), with_empty.size());
  ASSERT_GT(base.size(), 0u);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].comm_start, with_empty[i].comm_start) << i;
    EXPECT_EQ(base[i].comm_end, with_empty[i].comm_end) << i;
    EXPECT_EQ(base[i].iter_end, with_empty[i].iter_end) << i;
  }
}

// ------------------------------------------------- incremental route repair

TEST(Scenario, LinkDownRepairsOnlyAffectedDestinations) {
  sim::Simulator sim;
  net::LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 4;
  cfg.spines = 2;
  auto ls = net::make_leaf_spine(sim, cfg);
  net::Topology& topo = *ls.topology;
  const std::size_t n_hosts = topo.hosts().size();
  ASSERT_EQ(topo.route_build_stats().destinations,
            static_cast<std::int64_t>(n_hosts));

  // An access-link cut strands exactly one destination: only that host is
  // re-BFSed, everything else keeps its installed routes.
  net::Host* victim = ls.racks[0][0];
  topo.set_link_pair_state(*victim, *ls.tors[0], false);
  EXPECT_EQ(topo.route_build_stats().destinations, 1);
  EXPECT_EQ(ls.tors[0]->route(victim->id()), nullptr);
  EXPECT_EQ(ls.tors[1]->route(victim->id()), nullptr);
  // A sibling's route survives untouched.
  EXPECT_NE(ls.tors[0]->route(ls.racks[0][1]->id()), nullptr);

  // Healing is a full rebuild (a new link can shorten any path).
  topo.set_link_pair_state(*victim, *ls.tors[0], true);
  EXPECT_EQ(topo.route_build_stats().destinations,
            static_cast<std::int64_t>(n_hosts));
  EXPECT_NE(ls.tors[0]->route(victim->id()), nullptr);
}

TEST(Scenario, SpineLinkDownNarrowsEcmpAndKeepsConnectivity) {
  sim::Simulator sim;
  net::LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 2;
  cfg.spines = 2;
  auto ls = net::make_leaf_spine(sim, cfg);
  net::Topology& topo = *ls.topology;
  net::Host* remote = ls.racks[1][0];
  ASSERT_EQ(ls.tors[0]->route_width(remote->id()), 2u);

  // Asymmetric fault: only the tor0 -> spine0 direction dies. Blast radius
  // is tor0's remote destinations (its ECMP sets ride that link); spine0's
  // own table — whose routes use the healthy reverse direction — is
  // untouched, so the repair re-BFSes strictly fewer destinations than a
  // full build. (A pair cut in this fabric touches every destination
  // through one table or the other, so partiality needs the asymmetry.)
  topo.set_link_state(topo.link_between(*ls.tors[0], *ls.spines[0]), false);
  EXPECT_EQ(ls.tors[0]->route_width(remote->id()), 1u);
  EXPECT_LT(topo.route_build_stats().destinations,
            static_cast<std::int64_t>(topo.hosts().size()));

  // Traffic still crosses the fabric over the surviving spine.
  tcp::TcpFlow flow(sim, *ls.racks[0][0], *remote, 1,
                    std::make_unique<tcp::RenoCC>());
  sim::SimTime done = -1;
  flow.send_message(500'000, [&](sim::SimTime t) { done = t; });
  sim.run_until(sim::seconds(10));
  EXPECT_GT(done, 0) << "transfer did not survive the spine failover";
}

// ------------------------------------------------------- blackout survival

TEST(Scenario, FlowSurvivesBlackoutLongerThanMaxRto) {
  Rig rig(1);
  tcp::SenderConfig scfg;
  scfg.max_rto = sim::milliseconds(200);
  tcp::TcpFlow flow(rig.sim, *rig.d.left[0], *rig.d.right[0], 1,
                    std::make_unique<tcp::RenoCC>(), scfg);
  sim::SimTime done = -1;
  flow.send_message(2'000'000, [&](sim::SimTime t) { done = t; });

  // The bottleneck pair goes dark at 10 ms for ~3 s — 15x the RTO cap.
  scenario::ScenarioEngine engine(rig.sim, *rig.d.topology, rig.cluster);
  engine.install(scenario::Scenario{}
                     .link_down(sim::milliseconds(10), "swL", "swR")
                     .link_up(sim::seconds(3), "swL", "swR"));
  rig.sim.run_until(sim::seconds(10));

  ASSERT_GT(done, 0) << "flow never recovered from the blackout";
  EXPECT_EQ(engine.applied_events(), 2);
  EXPECT_EQ(engine.skipped_events(), 0);
  // Capped backoff keeps probing every max_rto: an uncapped doubler's next
  // probe after a 3 s outage would land past 4 s.
  EXPECT_LT(sim::to_seconds(done), 3.6);
  EXPECT_GE(flow.sender().stats().timeouts, 12);
  // The incremental repair removed the routes at link-down time, so the
  // RTO probes of the blackout die as routeless drops at the edge switch —
  // they never reach the dead link itself.
  EXPECT_GT(rig.d.left_switch->routeless_drops(), 0);
}

// ------------------------------------------------------------- job churn

TEST(Scenario, DepartureArrivalAndStragglerReplayDeterministically) {
  Rig rig;
  workload::Job* j0 =
      rig.add_job("j0", 0, 800'000, sim::milliseconds(5), 1000);
  workload::Job* j1 = rig.add_job("j1", 1, 800'000, sim::milliseconds(5), 10);

  scenario::Scenario s;
  s.straggler(0, "j1", 3, sim::milliseconds(20));
  s.job_departure(sim::milliseconds(80), "j0");
  s.job_arrival(sim::milliseconds(90), "j2", [](scenario::EngineContext& ctx) {
    const auto& hosts = ctx.topology().hosts();
    workload::JobSpec spec;
    spec.name = "j2";
    // Dumbbell host order is (hL0, hR0, hL1, ...): pair 2 is indices 4/5.
    spec.flows = workload::single_flow(
        static_cast<net::Host*>(hosts[4]), static_cast<net::Host*>(hosts[5]),
        800'000);
    spec.compute_time = sim::milliseconds(5);
    spec.max_iterations = 5;
    spec.cc = [] { return std::make_unique<tcp::RenoCC>(); };
    spec.start_time = ctx.simulator().now();
    ctx.cluster().add_job(spec)->start();
  });
  s.background_burst(sim::milliseconds(100), 0, 1, 400'000);

  scenario::ScenarioEngine engine(rig.sim, *rig.d.topology, rig.cluster);
  engine.install(s);
  rig.cluster.start_all();
  rig.sim.run_until(sim::seconds(5));

  EXPECT_EQ(engine.applied_events(), 4);
  // Departure froze j0 well short of its 1000-iteration budget.
  EXPECT_FALSE(j0->running());
  EXPECT_LT(j0->completed_iterations(), 20);
  EXPECT_GT(j0->completed_iterations(), 0);
  // The straggler stretched exactly the first three compute phases.
  ASSERT_EQ(j1->completed_iterations(), 10);
  const auto& rec = j1->iterations();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rec[i].iter_end - rec[i].comm_end, sim::milliseconds(25)) << i;
  }
  EXPECT_EQ(rec[3].iter_end - rec[3].comm_end, sim::milliseconds(5));
  // The arrival ran to completion on the run's own hosts.
  workload::Job* j2 = rig.cluster.find_job("j2");
  ASSERT_NE(j2, nullptr);
  EXPECT_EQ(j2->completed_iterations(), 5);
}

// --------------------------------------- forwarding-plane faults via engine

TEST(Scenario, BlackholeDropBurstAndRateRenegotiation) {
  Rig rig(1);
  tcp::TcpFlow flow(rig.sim, *rig.d.left[0], *rig.d.right[0], 1,
                    std::make_unique<tcp::RenoCC>());
  sim::SimTime done = -1;
  flow.send_message(3'000'000, [&](sim::SimTime t) { done = t; });

  scenario::ScenarioEngine engine(rig.sim, *rig.d.topology, rig.cluster);
  engine.install(scenario::Scenario{}
                     .blackhole(sim::milliseconds(10), "swL", "swR", true)
                     .blackhole(sim::milliseconds(60), "swL", "swR", false)
                     .drop_burst(sim::milliseconds(80), "swL", "swR", 0.05, 7)
                     .drop_burst(sim::milliseconds(120), "swL", "swR", 0.0)
                     .link_rate(sim::milliseconds(150), "swL", "swR", 5e8));
  rig.sim.run_until(sim::seconds(30));

  EXPECT_EQ(engine.applied_events(), 5);
  ASSERT_GT(done, 0) << "flow did not survive blackhole + drop burst";
  // The blackhole kept routes pointing at the link while it ate packets.
  EXPECT_GT(rig.d.bottleneck->fault_drops(), 0);
  EXPECT_FALSE(rig.d.bottleneck->blackhole());
  EXPECT_DOUBLE_EQ(rig.d.bottleneck->rate_bps(), 5e8);
  EXPECT_DOUBLE_EQ(rig.d.bottleneck_reverse->rate_bps(), 5e8);
}

// ----------------------------------------------- campaign determinism

/// One faulted run: jobs + flap + drop burst + churn, reported as CSV rows.
void faulted_run(std::size_t run_index, std::uint64_t seed,
                 runner::CsvSink& csv) {
  Rig rig;
  rig.add_job("j0", 0, 600'000, sim::milliseconds(5), 40);
  rig.add_job("j1", 1, 600'000, sim::milliseconds(5), 40);

  scenario::Scenario s;
  s.link_down(sim::milliseconds(40), "swL", "swR");
  s.link_up(sim::milliseconds(120), "swL", "swR");
  s.drop_burst(sim::milliseconds(200), "swL", "swR", 0.02, seed);
  s.drop_burst(sim::milliseconds(400), "swL", "swR", 0.0);
  s.straggler(sim::milliseconds(300), "j1", 2, sim::milliseconds(10));
  s.background_burst(sim::milliseconds(350), 0, 1, 300'000);

  scenario::ScenarioEngine engine(rig.sim, *rig.d.topology, rig.cluster);
  engine.install(s);
  rig.cluster.start_all();
  rig.sim.run_until(sim::seconds(20));

  for (std::size_t j = 0; j < rig.cluster.job_count(); ++j) {
    const workload::Job* job = rig.cluster.job(j);
    csv.append(run_index,
               std::vector<double>{
                   static_cast<double>(run_index), static_cast<double>(j),
                   static_cast<double>(job->completed_iterations()),
                   sim::to_seconds(job->iterations().back().iter_end),
                   static_cast<double>(engine.applied_events())});
  }
}

std::string faulted_campaign(int threads) {
  runner::CsvSink csv({"run", "job", "iterations", "end_s", "events"});
  std::vector<std::uint64_t> seeds = {11, 12, 13, 14, 15, 16};
  runner::CampaignOptions opts;
  opts.threads = threads;
  runner::run_campaign<std::uint64_t, int>(
      seeds,
      [&](const std::uint64_t& seed, std::size_t i) {
        faulted_run(i, seed, csv);
        return 0;
      },
      opts);
  return csv.serialize();
}

TEST(Scenario, FaultedCampaignByteIdenticalAcrossThreadCounts) {
  const std::string serial = faulted_campaign(1);
  EXPECT_NE(serial.find("\n5,"), std::string::npos);
  const std::string parallel = faulted_campaign(4);
  EXPECT_EQ(parallel, serial)
      << "scenario replay must not depend on campaign scheduling";
}

}  // namespace
}  // namespace mltcp
