// Cross-module integration tests: MLTCP end-to-end on the packet-level
// simulator. The link is scaled to 200 Mbps (bytes scale with it, so
// iteration times keep the paper's 1.8 s scale while packet counts stay
// test-friendly).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "analysis/metrics.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sched/centralized.hpp"
#include "sched/pfabric.hpp"
#include "sim/simulator.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"
#include "workload/profiles.hpp"

namespace mltcp {
namespace {

constexpr double kRate = 200e6;  // scaled bottleneck

struct Testbed {
  sim::Simulator sim;
  net::Dumbbell d;
  std::unique_ptr<workload::Cluster> cluster;

  explicit Testbed(int hosts = 6, net::QueueFactory bottleneck = nullptr) {
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = hosts;
    cfg.bottleneck_rate_bps = kRate;
    cfg.host_rate_bps = 1e9;
    cfg.bottleneck_queue = std::move(bottleneck);
    d = net::make_dumbbell(sim, cfg);
    cluster = std::make_unique<workload::Cluster>(sim);
  }

  workload::Job* add_gpt2_job(int host, const tcp::CcFactory& cc, int iters,
                              double noise = 0.0, int flows = 2,
                              double compute_scale = 1.0) {
    const workload::ModelProfile gpt2 = workload::gpt2_profile();
    workload::JobSpec spec;
    spec.name = "gpt2-" + std::to_string(host);
    const std::int64_t total = workload::comm_bytes(gpt2, kRate);
    for (int f = 0; f < flows; ++f) {
      spec.flows.push_back(
          workload::FlowSpec{d.left[host], d.right[host], total / flows});
    }
    spec.compute_time = static_cast<sim::SimTime>(
        static_cast<double>(workload::compute_time(gpt2)) * compute_scale);
    spec.noise_stddev_seconds = noise;
    spec.max_iterations = iters;
    spec.cc = cc;
    return cluster->add_job(spec);
  }
};

core::MltcpConfig gpt2_mltcp_config(int flows = 2,
                                    double compute_scale = 1.0) {
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = workload::comm_bytes(gpt2, kRate) / flows;
  cfg.tracker.comp_time = static_cast<sim::SimTime>(
      static_cast<double>(workload::compute_time(gpt2)) * compute_scale) / 2;
  return cfg;
}

double ideal_gpt2_seconds() {
  return sim::to_seconds(workload::gpt2_profile().ideal_iteration_time);
}

// ---------------------------------------------------------- convergence

TEST(Integration, ThreeMltcpJobsConvergeToIdeal) {
  Testbed tb;
  std::vector<workload::Job*> jobs;
  const auto cc = core::mltcp_reno_factory(gpt2_mltcp_config());
  for (int i = 0; i < 3; ++i) jobs.push_back(tb.add_gpt2_job(i, cc, 40));
  tb.cluster->start_all();
  tb.sim.run_until(sim::seconds(150));

  for (workload::Job* job : jobs) {
    ASSERT_EQ(job->completed_iterations(), 40);
    EXPECT_LT(analysis::tail_mean(job->iteration_times_seconds(), 8),
              ideal_gpt2_seconds() * 1.08)
        << job->name();
  }
}

TEST(Integration, ConvergedStateHasNoCommOverlap) {
  Testbed tb;
  std::vector<workload::Job*> jobs;
  const auto cc = core::mltcp_reno_factory(gpt2_mltcp_config());
  for (int i = 0; i < 3; ++i) jobs.push_back(tb.add_gpt2_job(i, cc, 40));
  tb.cluster->start_all();
  tb.sim.run_until(sim::seconds(150));

  sim::SimTime end = 0;
  for (const workload::Job* job : jobs) {
    end = std::max(end, job->iterations().back().comm_end);
  }
  std::vector<const workload::Job*> cjobs(jobs.begin(), jobs.end());
  EXPECT_LT(analysis::comm_overlap_seconds(cjobs, end - sim::seconds(15),
                                           end),
            0.15);
}

TEST(Integration, MltcpBeatsRenoUnderContention) {
  // Halve the compute phase so four jobs want ~97% of the bottleneck even
  // when perfectly interleaved: contention is structural, not a transient
  // the jobs can drift out of. Compare the mean over the *whole* run
  // (convergence included): MLTCP self-interleaves within a few iterations
  // while Reno keeps colliding — and even on runs where Reno eventually
  // staggers by luck, it pays for the long transient. This separates the
  // variants by 5-9% across noise settings, well outside run-to-run noise,
  // where a converged-tail comparison at low utilization was a coin flip.
  const double kComputeScale = 0.5;
  struct Outcome {
    double mean_all;
    double tail;
  };
  auto run = [&](const tcp::CcFactory& cc) {
    Testbed tb;
    std::vector<workload::Job*> jobs;
    for (int i = 0; i < 4; ++i) {
      jobs.push_back(tb.add_gpt2_job(i, cc, 30, 0.005, 2, kComputeScale));
    }
    tb.cluster->start_all();
    tb.sim.run_until(sim::seconds(120));
    std::vector<double> means;
    std::vector<double> tails;
    for (workload::Job* job : jobs) {
      means.push_back(analysis::mean(job->iteration_times_seconds()));
      tails.push_back(
          analysis::tail_mean(job->iteration_times_seconds(), 8));
    }
    return Outcome{analysis::mean(means), analysis::mean(tails)};
  };
  const Outcome reno = run(core::reno_factory());
  const Outcome mltcp =
      run(core::mltcp_reno_factory(gpt2_mltcp_config(2, kComputeScale)));
  EXPECT_LT(mltcp.mean_all, reno.mean_all * 0.97)
      << "MLTCP must outperform plain Reno";
  // Converged MLTCP should sit near the scaled isolation iteration time
  // (half compute + full communication phase).
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const double scaled_ideal =
      sim::to_seconds(workload::compute_time(gpt2)) * kComputeScale +
      sim::to_seconds(workload::comm_time(gpt2));
  EXPECT_LT(mltcp.tail, scaled_ideal * 1.15);
}

TEST(Integration, AutoLearnedTrackerAlsoConverges) {
  Testbed tb;
  core::MltcpConfig cfg;  // learning mode
  cfg.tracker.learn_min_gap = sim::milliseconds(20);
  const auto cc = core::mltcp_reno_factory(cfg);
  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(tb.add_gpt2_job(i, cc, 45));
  tb.cluster->start_all();
  tb.sim.run_until(sim::seconds(170));
  for (workload::Job* job : jobs) {
    EXPECT_LT(analysis::tail_mean(job->iteration_times_seconds(), 8),
              ideal_gpt2_seconds() * 1.10)
        << job->name();
  }
}

TEST(Integration, MltcpDctcpConvergesWithEcn) {
  Testbed tb(6, net::make_ecn_factory(256 * 1500, 15 * 1500));
  const auto cc = core::mltcp_dctcp_factory(gpt2_mltcp_config());
  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(tb.add_gpt2_job(i, cc, 40));
  tb.cluster->start_all();
  tb.sim.run_until(sim::seconds(150));
  for (workload::Job* job : jobs) {
    EXPECT_LT(analysis::tail_mean(job->iteration_times_seconds(), 8),
              ideal_gpt2_seconds() * 1.10)
        << job->name();
  }
}

// -------------------------------------------------- centralized baseline

TEST(Integration, GatedCentralizedScheduleAchievesIdeal) {
  Testbed tb;
  // Two identical GPT-2 jobs: offsets 0 and T/2 with per-iteration gating.
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    workload::JobSpec spec;
    spec.name = "gated-" + std::to_string(i);
    spec.flows = workload::single_flow(tb.d.left[i], tb.d.right[i],
                                       workload::comm_bytes(gpt2, kRate));
    spec.compute_time = workload::compute_time(gpt2);
    spec.max_iterations = 15;
    // Guarded period: natural period plus headroom for the ACK tail.
    spec.gate_period = gpt2.ideal_iteration_time + sim::milliseconds(30);
    spec.start_time = i * spec.gate_period / 2;
    spec.cc = core::reno_factory();
    jobs.push_back(tb.cluster->add_job(spec));
  }
  tb.cluster->start_all();
  tb.sim.run_until(sim::seconds(60));

  std::vector<const workload::Job*> cjobs(jobs.begin(), jobs.end());
  EXPECT_LT(analysis::comm_overlap_seconds(cjobs, 0, tb.sim.now()), 0.05);
}

// ------------------------------------------------------------- pFabric

TEST(Integration, PfabricPrioritizesShortFlow) {
  Testbed tb(2, net::make_pfabric_factory(36 * 1500));
  tcp::SenderConfig scfg;
  scfg.pfabric_priority = true;
  tcp::TcpFlow big(tb.sim, *tb.d.left[0], *tb.d.right[0], 101,
                   std::make_unique<sched::PfabricCC>(), scfg);
  tcp::TcpFlow small(tb.sim, *tb.d.left[1], *tb.d.right[1], 102,
                     std::make_unique<sched::PfabricCC>(), scfg);

  sim::SimTime big_done = -1, small_done = -1;
  big.send_message(20'000'000, [&](sim::SimTime t) { big_done = t; });
  small.send_message(1'000'000, [&](sim::SimTime t) { small_done = t; });
  tb.sim.run_until(sim::seconds(20));
  ASSERT_GT(big_done, 0);
  ASSERT_GT(small_done, 0);
  // SRPT: the 1 MB flow must finish close to its isolated time (~41 ms at
  // 200 Mbps), far ahead of the 20 MB flow.
  EXPECT_LT(sim::to_seconds(small_done), 0.08);
  EXPECT_GT(big_done, 10 * small_done);
}

// ----------------------------------------------- determinism & stability

TEST(Integration, RunsAreDeterministic) {
  auto run = [] {
    Testbed tb;
    std::vector<workload::Job*> jobs;
    const auto cc = core::mltcp_reno_factory(gpt2_mltcp_config());
    for (int i = 0; i < 2; ++i) {
      jobs.push_back(tb.add_gpt2_job(i, cc, 10, 0.01));
    }
    tb.cluster->start_all();
    tb.sim.run_until(sim::seconds(40));
    std::vector<double> all;
    for (workload::Job* job : jobs) {
      for (double t : job->iteration_times_seconds()) all.push_back(t);
    }
    return all;
  };
  EXPECT_EQ(run(), run());
}

TEST(Integration, InterleavingStableAcrossManyIterations) {
  // §2: "the interleaving remains stable in subsequent iterations".
  Testbed tb;
  const auto cc = core::mltcp_reno_factory(gpt2_mltcp_config());
  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) jobs.push_back(tb.add_gpt2_job(i, cc, 60));
  tb.cluster->start_all();
  tb.sim.run_until(sim::seconds(200));
  for (workload::Job* job : jobs) {
    const auto times = job->iteration_times_seconds();
    ASSERT_EQ(times.size(), 60u);
    // Every iteration in the second half stays at the ideal.
    for (std::size_t i = 30; i < times.size(); ++i) {
      EXPECT_LT(times[i], ideal_gpt2_seconds() * 1.05)
          << job->name() << " iteration " << i;
    }
  }
}

}  // namespace
}  // namespace mltcp
