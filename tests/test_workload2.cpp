// Tests for the pipeline/microbatched communication extension.

#include <gtest/gtest.h>

#include <memory>

#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"

namespace mltcp::workload {
namespace {

struct Rig {
  sim::Simulator sim;
  net::Dumbbell d;
  std::unique_ptr<Cluster> cluster;

  Rig() {
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = 2;
    d = net::make_dumbbell(sim, cfg);
    cluster = std::make_unique<Cluster>(sim);
  }
};

TEST(MicrobatchJob, ChunkGapsExtendCommPhase) {
  Rig rig;
  JobSpec spec;
  spec.name = "piped";
  spec.flows = single_flow(rig.d.left[0], rig.d.right[0], 3'000'000);
  spec.compute_time = sim::milliseconds(100);
  spec.comm_chunks = 3;
  spec.chunk_gap = sim::milliseconds(20);
  spec.max_iterations = 3;
  spec.cc = core::reno_factory();
  Job* job = rig.cluster->add_job(spec);
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(10));

  ASSERT_EQ(job->completed_iterations(), 3);
  // 3 MB wire ~ 24.7 ms + 2 gaps of 20 ms: comm phase must exceed 64 ms and
  // stay well under double that.
  for (const double c : job->comm_times_seconds()) {
    EXPECT_GT(c, 0.064);
    EXPECT_LT(c, 0.1);
  }
}

TEST(MicrobatchJob, TotalBytesPreservedAcrossChunks) {
  Rig rig;
  JobSpec spec;
  spec.name = "piped";
  // 1,000,001 bytes over 3 chunks: the remainder lands in the last chunk.
  spec.flows = single_flow(rig.d.left[0], rig.d.right[0], 1'000'001);
  spec.compute_time = sim::milliseconds(10);
  spec.comm_chunks = 3;
  spec.chunk_gap = sim::milliseconds(5);
  spec.max_iterations = 2;
  spec.cc = core::reno_factory();
  Job* job = rig.cluster->add_job(spec);
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(10));

  ASSERT_EQ(job->completed_iterations(), 2);
  const auto* flow = rig.cluster->flows_of(0)[0];
  const std::int64_t per_iter =
      flow->sender().segments_for_bytes(1'000'001 / 3) * 2 +
      flow->sender().segments_for_bytes(1'000'001 - 2 * (1'000'001 / 3));
  EXPECT_EQ(flow->receiver().rcv_next(), 2 * per_iter);
}

TEST(MicrobatchJob, SingleChunkMatchesLegacyBehaviour) {
  Rig rig;
  JobSpec a_spec;
  a_spec.name = "single";
  a_spec.flows = single_flow(rig.d.left[0], rig.d.right[0], 2'000'000);
  a_spec.compute_time = sim::milliseconds(50);
  a_spec.comm_chunks = 1;
  a_spec.max_iterations = 3;
  a_spec.cc = core::reno_factory();
  Job* job = rig.cluster->add_job(a_spec);
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(10));
  ASSERT_EQ(job->completed_iterations(), 3);
  for (const double t : job->iteration_times_seconds()) {
    EXPECT_GT(t, 0.066);
    EXPECT_LT(t, 0.08);
  }
}

TEST(MicrobatchJob, MltcpTrackerSurvivesChunkGaps) {
  // The chunk gap (15 ms) sits below COMP_TIME (60 ms): Algorithm 1 must
  // not mistake it for an iteration boundary.
  Rig rig;
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = 3'000'000;
  cfg.tracker.comp_time = sim::milliseconds(60);

  JobSpec spec;
  spec.name = "piped";
  spec.flows = single_flow(rig.d.left[0], rig.d.right[0], 3'000'000);
  spec.compute_time = sim::milliseconds(200);
  spec.comm_chunks = 2;
  spec.chunk_gap = sim::milliseconds(15);
  spec.max_iterations = 4;
  spec.cc = core::mltcp_reno_factory(cfg);
  Job* job = rig.cluster->add_job(spec);
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(10));

  ASSERT_EQ(job->completed_iterations(), 4);
  auto& gain = rig.cluster->flows_of(0)[0]->sender().cc().window_gain();
  const auto* mltcp_gain = dynamic_cast<const core::MltcpGain*>(&gain);
  ASSERT_NE(mltcp_gain, nullptr);
  // 4 iterations -> 3 inter-iteration gaps; the 4 chunk gaps (one per
  // iteration) must not have been counted.
  EXPECT_EQ(mltcp_gain->tracker().iterations_seen(), 3);
}

}  // namespace
}  // namespace mltcp::workload
