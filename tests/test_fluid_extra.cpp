// Additional fluid-model coverage: determinism, noise reproducibility,
// capacity scaling and integration-step robustness.

#include <gtest/gtest.h>

#include <memory>

#include "analysis/fluid_model.hpp"
#include "analysis/metrics.hpp"

namespace mltcp::analysis {
namespace {

FluidJobSpec job(double comm, double compute, double offset = 0.0,
                 double noise = 0.0) {
  FluidJobSpec j;
  j.comm_seconds = comm;
  j.compute_seconds = compute;
  j.start_offset = offset;
  j.noise_stddev = noise;
  return j;
}

TEST(FluidExtra, DeterministicAcrossRuns) {
  auto run = [] {
    FluidConfig cfg;
    cfg.dt = 1e-3;
    cfg.seed = 99;
    FluidSimulator fluid(cfg, {job(0.3, 1.5, 0.0, 0.01),
                               job(0.3, 1.5, 0.1, 0.01)});
    fluid.run_iterations(50, 1e4);
    return fluid.iteration_times(0);
  };
  EXPECT_EQ(run(), run());
}

TEST(FluidExtra, SeedChangesNoisyTrajectories) {
  auto run = [](std::uint64_t seed) {
    FluidConfig cfg;
    cfg.dt = 1e-3;
    cfg.seed = seed;
    FluidSimulator fluid(cfg, {job(0.3, 1.5, 0.0, 0.02),
                               job(0.3, 1.5, 0.1, 0.02)});
    fluid.run_iterations(30, 1e4);
    return fluid.iteration_times(0);
  };
  EXPECT_NE(run(1), run(2));
}

TEST(FluidExtra, CommSecondsAreCapacityInvariantInIsolation) {
  // comm_seconds is defined as the isolated comm duration ("when the job
  // has the link to itself"), so it must not depend on the capacity unit.
  for (const double capacity : {0.5, 1.0, 4.0}) {
    FluidConfig cfg;
    cfg.capacity = capacity;
    cfg.dt = 1e-4;
    FluidSimulator fluid(cfg, {job(0.3, 1.5)});
    fluid.run_iterations(5, 1e3);
    EXPECT_NEAR(fluid.iteration_times(0).back(), 0.3 + 1.5, 0.01)
        << "capacity " << capacity;
  }
}

TEST(FluidExtra, SmallerStepConvergesToSameAnswer) {
  auto converged = [](double dt) {
    FluidConfig cfg;
    cfg.dt = dt;
    FluidSimulator fluid(cfg, {job(0.45, 1.35), job(0.45, 1.35, 0.07)});
    fluid.run_iterations(40, 1e4);
    return tail_mean(fluid.iteration_times(0), 5);
  };
  EXPECT_NEAR(converged(1e-3), converged(1e-4), 0.01);
}

TEST(FluidExtra, RunIterationsReportsTruncation) {
  FluidConfig cfg;
  cfg.dt = 1e-3;
  // Each iteration takes ~1s; a 2s budget cannot fit 100 iterations.
  FluidSimulator truncated(cfg, {job(0.5, 0.5)});
  EXPECT_FALSE(truncated.run_iterations(100, 2.0));
  EXPECT_TRUE(truncated.truncated());
  EXPECT_LT(truncated.iterations(0).size(), 100u)
      << "a truncated run must not have reached its target";

  FluidSimulator complete(cfg, {job(0.5, 0.5)});
  EXPECT_TRUE(complete.run_iterations(3, 100.0));
  EXPECT_FALSE(complete.truncated());

  // A plain time advance clears the flag: it has no iteration target.
  truncated.run_until(3.0);
  EXPECT_FALSE(truncated.truncated());
}

TEST(FluidExtra, StaggeredStartsHonored) {
  FluidConfig cfg;
  cfg.dt = 1e-4;
  FluidSimulator fluid(cfg, {job(0.2, 1.0), job(0.2, 1.0, 0.5)});
  fluid.run_iterations(2, 100);
  EXPECT_NEAR(fluid.iterations(0)[0].comm_start, 0.0, 1e-3);
  EXPECT_NEAR(fluid.iterations(1)[0].comm_start, 0.5, 1e-3);
}

TEST(FluidExtra, ExcessResetZeroesAccumulator) {
  FluidConfig cfg;
  cfg.dt = 1e-3;
  cfg.f = std::make_shared<core::CustomAggressiveness>(
      [](double) { return 1.0; }, "unit");
  FluidSimulator fluid(cfg, {job(0.5, 0.5), job(0.5, 0.5)});
  fluid.run_until(5.0);
  ASSERT_GT(fluid.accumulated_excess(), 0.0);
  fluid.reset_excess();
  EXPECT_DOUBLE_EQ(fluid.accumulated_excess(), 0.0);
}

TEST(FluidExtra, HeterogeneousPeriodsRunAtTheirOwnRate) {
  FluidConfig cfg;
  cfg.dt = 1e-4;
  // Interleavable pair with different periods (1.2 s and 1.8 s).
  FluidSimulator fluid(cfg, {job(0.3, 0.9), job(0.27, 1.53, 0.35)});
  fluid.run_iterations(60, 1e4);
  EXPECT_NEAR(tail_mean(fluid.iteration_times(0), 10), 1.2, 0.02);
  EXPECT_NEAR(tail_mean(fluid.iteration_times(1), 10), 1.8, 0.02);
}

TEST(FluidExtra, OverloadedLinkSharesShortfallAcrossJobs) {
  // Three jobs each demanding half the link: utilization 1.5, no schedule
  // can reach the ideal; everyone's converged iteration must exceed it.
  FluidConfig cfg;
  cfg.dt = 1e-3;
  FluidSimulator fluid(cfg, {job(0.9, 0.9, 0.0), job(0.9, 0.9, 0.2),
                             job(0.9, 0.9, 0.4)});
  fluid.run_iterations(60, 1e4);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_GT(tail_mean(fluid.iteration_times(j), 10), 1.9) << j;
  }
  // Total goodput is conserved: average iteration time ~ 3*0.9/1 + 0.9.
  double mean_all = 0.0;
  for (std::size_t j = 0; j < 3; ++j) {
    mean_all += tail_mean(fluid.iteration_times(j), 10) / 3.0;
  }
  EXPECT_NEAR(mean_all, 0.9 * 3.0 / 1.0 * 0.9 + 0.9, 0.9)
      << "sanity: shortfall bounded";
}

}  // namespace
}  // namespace mltcp::analysis
