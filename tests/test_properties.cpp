// Property-style parameterized sweeps: invariants that must hold across the
// whole configuration space, not just hand-picked points.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sched/centralized.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"

namespace mltcp {
namespace {

// ---------------------------------------------------------------- queues

/// Conservation: every packet offered to a queue is either dropped, still
/// backlogged, or has been dequeued — for every discipline.
class QueueConservation
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

std::unique_ptr<net::QueueDiscipline> make_queue(const std::string& kind) {
  if (kind == "droptail") return net::make_droptail_factory(20 * 1500)();
  if (kind == "ecn") return net::make_ecn_factory(20 * 1500, 5 * 1500)();
  if (kind == "pfabric") return net::make_pfabric_factory(20 * 1500)();
  if (kind == "drr") return net::make_drr_factory(20 * 1500)();
  if (kind == "red") {
    net::RedQueue::Config cfg;
    cfg.capacity_bytes = 20 * 1500;
    cfg.min_threshold_bytes = 5 * 1500;
    cfg.max_threshold_bytes = 15 * 1500;
    return net::make_red_factory(cfg)();
  }
  if (kind == "lossy") {
    return net::make_random_drop_factory(0.3, 20 * 1500, 3)();
  }
  ADD_FAILURE() << "unknown queue kind " << kind;
  return nullptr;
}

TEST_P(QueueConservation, OfferedEqualsDroppedPlusServedPlusBacklog) {
  const auto [kind, offered] = GetParam();
  auto q = make_queue(kind);
  ASSERT_NE(q, nullptr);

  for (int i = 0; i < offered; ++i) {
    net::Packet p;
    p.type = net::PacketType::kData;
    p.flow = i % 3;
    p.seq = i;
    p.size_bytes = 1500;
    p.priority = (i * 37) % 1000;
    p.ecn_capable = (i % 2) == 0;
    q->enqueue(p, i);
  }
  const std::int64_t backlog =
      static_cast<std::int64_t>(q->backlog_packets());
  std::int64_t served = 0;
  while (q->dequeue(0).has_value()) ++served;

  // Conservation: every offered packet was served, dropped (including
  // pFabric evictions of already-admitted packets) or counted as backlog.
  EXPECT_EQ(served + q->stats().dropped_packets, offered);
  EXPECT_EQ(served, backlog);
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->backlog_bytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, QueueConservation,
    ::testing::Combine(::testing::Values("droptail", "ecn", "pfabric", "drr",
                                         "red", "lossy"),
                       ::testing::Values(10, 100)));

// ------------------------------------------------------------- transport

/// Reliability: a transfer completes and delivers every segment exactly
/// once, for every congestion controller and loss rate.
class TransportReliability
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

tcp::CcFactory make_cc(const std::string& kind) {
  core::MltcpConfig mcfg;
  mcfg.tracker.total_bytes = 2'000'000;
  mcfg.tracker.comp_time = sim::milliseconds(100);
  if (kind == "reno") return core::reno_factory();
  if (kind == "cubic") return core::cubic_factory();
  if (kind == "dctcp") return core::dctcp_factory();
  if (kind == "swift") return core::swift_factory();
  if (kind == "mltcp-reno") return core::mltcp_reno_factory(mcfg);
  if (kind == "mltcp-cubic") return core::mltcp_cubic_factory(mcfg);
  if (kind == "mltcp-dctcp") return core::mltcp_dctcp_factory(mcfg);
  if (kind == "mltcp-swift") return core::mltcp_swift_factory(mcfg);
  ADD_FAILURE() << "unknown cc " << kind;
  return nullptr;
}

TEST_P(TransportReliability, DeliversExactlyOnceUnderLoss) {
  const auto [cc_kind, loss] = GetParam();
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 1;
  dc.bottleneck_queue =
      net::make_random_drop_factory(loss, 512 * 1500, 1234);
  auto d = net::make_dumbbell(sim, dc);
  tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1, make_cc(cc_kind)());

  const std::int64_t bytes = 2'000'000;
  sim::SimTime done = -1;
  flow.send_message(bytes, [&](sim::SimTime t) { done = t; });
  sim.run_until(sim::seconds(120));

  ASSERT_GT(done, 0) << cc_kind << " never completed at loss " << loss;
  EXPECT_EQ(flow.receiver().rcv_next(),
            flow.sender().segments_for_bytes(bytes));
  EXPECT_TRUE(flow.sender().idle());
  EXPECT_EQ(flow.sender().stats().messages_completed, 1);
}

INSTANTIATE_TEST_SUITE_P(
    CcByLoss, TransportReliability,
    ::testing::Combine(::testing::Values("reno", "cubic", "dctcp", "swift",
                                         "mltcp-reno", "mltcp-cubic",
                                         "mltcp-dctcp", "mltcp-swift"),
                       ::testing::Values(0.0, 0.01)));

/// cwnd positivity: no controller ever drives its window below 1 segment
/// under an adversarial event mix.
class WindowPositivity : public ::testing::TestWithParam<const char*> {};

TEST_P(WindowPositivity, WindowStaysUsable) {
  auto cc = make_cc(GetParam())();
  sim::SimTime now = 0;
  std::int64_t seq = 0;
  for (int round = 0; round < 200; ++round) {
    now += sim::microseconds(100);
    tcp::AckContext ctx;
    ctx.now = now;
    ctx.num_acked = 1 + round % 3;
    seq += ctx.num_acked;
    ctx.ack_seq = seq;
    ctx.ece = (round % 5) == 0;
    ctx.rtt_sample = sim::microseconds(100 + (round % 7) * 150);
    cc->on_ack(ctx);
    if (round % 11 == 0) cc->on_loss(now);
    if (round % 47 == 0) cc->on_timeout(now);
    if (round % 31 == 0) cc->on_idle_restart(now);
    ASSERT_GE(cc->cwnd(), 1.0) << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllControllers, WindowPositivity,
                         ::testing::Values("reno", "cubic", "dctcp", "swift",
                                           "mltcp-reno", "mltcp-cubic",
                                           "mltcp-dctcp", "mltcp-swift"));

// ------------------------------------------------------------- optimizer

/// The centralized optimizer must find a zero-excess schedule whenever the
/// jobs are identical and their total communication fits the circle.
class OptimizerFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerFeasibility, PacksIdenticalJobsUpToCapacity) {
  const int n = GetParam();
  const double a = 0.9 / n;
  std::vector<sched::PeriodicDemand> jobs;
  for (int i = 0; i < n; ++i) {
    jobs.push_back(sched::PeriodicDemand{
        "j" + std::to_string(i), sim::from_seconds(1.8),
        sim::from_seconds(1.8 * a)});
  }
  const auto schedule = sched::optimize_interleaving(jobs);
  EXPECT_EQ(schedule.excess, 0) << n << " jobs";
}

INSTANTIATE_TEST_SUITE_P(JobCounts, OptimizerFeasibility,
                         ::testing::Values(2, 3, 4, 6, 8));

// -------------------------------------------------------------- tracker

/// Algorithm 1 invariant: bytes_ratio stays in [0, 1] for any ACK pattern.
class TrackerBounds : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TrackerBounds, RatioAlwaysInUnitInterval) {
  core::TrackerConfig cfg;
  cfg.total_bytes = GetParam();
  cfg.comp_time = sim::milliseconds(10);
  core::IterationTracker tracker(cfg);
  sim::Rng rng(5);
  sim::SimTime now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += rng.uniform_int(1, 30'000'000);  // 1 ns .. 30 ms gaps
    tracker.on_ack(static_cast<int>(rng.uniform_int(1, 64)), now);
    ASSERT_GE(tracker.bytes_ratio(), 0.0);
    ASSERT_LE(tracker.bytes_ratio(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(TotalBytes, TrackerBounds,
                         ::testing::Values(1500, 150'000, 1'000'000'000));

}  // namespace
}  // namespace mltcp
