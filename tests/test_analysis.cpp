#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fluid_model.hpp"
#include "analysis/metrics.hpp"
#include "analysis/shift.hpp"

namespace mltcp::analysis {
namespace {

ShiftParams half_comm() {
  ShiftParams p;
  p.alpha = 0.5;
  p.period = 1.8;
  return p;
}

// ------------------------------------------------------------------ shift

TEST(ShiftEq3, ZeroAtBothEnds) {
  const ShiftParams p = half_comm();
  EXPECT_DOUBLE_EQ(shift_eq3(0.0, p), 0.0);
  EXPECT_NEAR(shift_eq3(p.alpha * p.period, p), 0.0, 1e-12);
}

TEST(ShiftEq3, MatchesClosedFormAtMidpoint) {
  const ShiftParams p = half_comm();
  const double at = p.alpha * p.period;  // 0.9
  const double d = at / 2.0;
  const double expected =
      p.slope * d * (at - d) / (at * p.intercept + d * p.slope);
  EXPECT_DOUBLE_EQ(shift_eq3(d, p), expected);
  EXPECT_GT(expected, 0.0);
}

TEST(ShiftEq3, PositiveOnOpenInterval) {
  const ShiftParams p = half_comm();
  for (double f = 0.05; f < 1.0; f += 0.05) {
    EXPECT_GT(shift_eq3(f * p.alpha * p.period, p), 0.0) << f;
  }
}

TEST(ShiftExtended, AntisymmetricAroundPeriod) {
  const ShiftParams p = half_comm();
  for (double d = 0.1; d < 0.9; d += 0.1) {
    EXPECT_NEAR(shift(p.period - d, p), -shift(d, p), 1e-12) << d;
  }
}

TEST(ShiftExtended, ZeroInInterleavedBand) {
  ShiftParams p;
  p.alpha = 0.25;  // band is [0.25T, 0.75T]
  p.period = 2.0;
  EXPECT_DOUBLE_EQ(shift(0.6, p), 0.0);
  EXPECT_DOUBLE_EQ(shift(1.0, p), 0.0);
  EXPECT_DOUBLE_EQ(shift(1.4, p), 0.0);
  EXPECT_GT(shift(0.2, p), 0.0);
  EXPECT_LT(shift(1.9, p), 0.0);
}

TEST(ShiftExtended, ReducesModuloPeriod) {
  const ShiftParams p = half_comm();
  EXPECT_DOUBLE_EQ(shift(0.3, p), shift(0.3 + p.period, p));
  EXPECT_DOUBLE_EQ(shift(-0.3, p), shift(p.period - 0.3, p));
}

// ------------------------------------------------------------------- loss

TEST(Loss, ZeroAtOrigin) {
  EXPECT_DOUBLE_EQ(loss(0.0, half_comm()), 0.0);
}

TEST(Loss, StrictlyDecreasingTowardMinimum) {
  const ShiftParams p = half_comm();
  double prev = loss(0.0, p);
  for (double d = 0.09; d <= 0.9; d += 0.09) {
    const double cur = loss(d, p);
    EXPECT_LT(cur, prev) << d;
    prev = cur;
  }
}

TEST(Loss, MinimumAtHalfPeriodForHalfComm) {
  // Figure 5c: for a = 1/2 the unique global minimum is at D = T/2.
  const ShiftParams p = half_comm();
  double best = 1e100;
  double argmin = -1.0;
  for (int i = 0; i <= 360; ++i) {
    const double d = p.period * i / 360.0;
    const double l = loss(d, p);
    if (l < best) {
      best = l;
      argmin = d;
    }
  }
  EXPECT_NEAR(argmin, p.period / 2.0, p.period / 180.0);
}

TEST(Loss, SymmetricEndpoints) {
  // Loss over the full circle integrates the antisymmetric shift to ~0.
  const ShiftParams p = half_comm();
  EXPECT_NEAR(loss(p.period, p), 0.0, 1e-6);
}

TEST(Loss, FlatOnInterleavedBand) {
  ShiftParams p;
  p.alpha = 0.2;
  p.period = 1.0;
  const double l1 = loss(0.3, p);
  const double l2 = loss(0.5, p);
  const double l3 = loss(0.7, p);
  // Tolerance covers Simpson quadrature noise at the band edges.
  EXPECT_NEAR(l1, l2, 1e-6);
  EXPECT_NEAR(l2, l3, 1e-6);
}

// ---------------------------------------------------------------- descent

class DescentFromAnywhere : public ::testing::TestWithParam<double> {};

TEST_P(DescentFromAnywhere, ConvergesToInterleaved) {
  const ShiftParams p = half_comm();
  const auto res = descend(GetParam() * p.period, p, 500, 1e-5);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.trajectory.back(), p.period / 2.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(StartingOffsets, DescentFromAnywhere,
                         ::testing::Values(0.01, 0.1, 0.25, 0.4, 0.49, 0.51,
                                           0.75, 0.9, 0.99));

TEST(Descent, ConvergesWithinTensOfIterations) {
  // The paper observes interleaving within ~20 iterations.
  const ShiftParams p = half_comm();
  const auto res = descend(0.05 * p.period, p, 100, 1e-3);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 25);
}

TEST(Descent, AlreadyConvergedStaysPut) {
  const ShiftParams p = half_comm();
  const auto res = descend(p.period / 2.0, p, 10, 1e-6);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Descent, ErrorBoundFormula) {
  EXPECT_DOUBLE_EQ(predicted_error_stddev(0.01, 1.75, 0.25),
                   2.0 * 0.01 * (1.0 + 0.25 / 1.75));
  EXPECT_DOUBLE_EQ(predicted_error_stddev(0.0, 1.75, 0.25), 0.0);
  // Larger intercept/slope ratio -> larger steady-state error.
  EXPECT_GT(predicted_error_stddev(0.01, 1.0, 1.0),
            predicted_error_stddev(0.01, 2.0, 0.5));
}

// ------------------------------------------------------------ fluid model

FluidJobSpec fluid_job(double comm, double compute, double offset = 0.0) {
  FluidJobSpec j;
  j.comm_seconds = comm;
  j.compute_seconds = compute;
  j.start_offset = offset;
  return j;
}

TEST(Fluid, SingleJobRunsAtIdealPeriod) {
  FluidConfig cfg;
  cfg.dt = 1e-4;
  FluidSimulator fluid(cfg, {fluid_job(0.3, 0.9)});
  fluid.run_iterations(10);
  for (const double t : fluid.iteration_times(0)) {
    EXPECT_NEAR(t, 1.2, 0.002);
  }
}

TEST(Fluid, TwoAlignedUnitGainJobsStayCongested) {
  FluidConfig cfg;
  cfg.dt = 1e-4;
  cfg.f = std::make_shared<core::CustomAggressiveness>(
      [](double) { return 1.0; }, "unit");
  FluidSimulator fluid(cfg, {fluid_job(0.45, 1.35), fluid_job(0.45, 1.35)});
  fluid.run_iterations(30, 200.0);
  // Fair sharing preserves the overlap: both jobs stay at comm 0.9 forever.
  const auto times = fluid.iteration_times(0);
  ASSERT_GE(times.size(), 30u);
  EXPECT_NEAR(times.back(), 0.9 + 1.35, 0.01);
}

TEST(Fluid, TwoMltcpJobsConvergeToIdeal) {
  FluidConfig cfg;
  cfg.dt = 1e-4;
  FluidSimulator fluid(cfg,
                       {fluid_job(0.45, 1.35), fluid_job(0.45, 1.35, 0.05)});
  fluid.run_iterations(40, 300.0);
  for (std::size_t j = 0; j < 2; ++j) {
    const auto times = fluid.iteration_times(j);
    ASSERT_GE(times.size(), 40u);
    EXPECT_NEAR(times.back(), 1.8, 0.01) << "job " << j;
  }
}

TEST(Fluid, ManyJobsInterleave) {
  FluidConfig cfg;
  cfg.dt = 5e-4;
  std::vector<FluidJobSpec> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(fluid_job(0.3, 1.5, 0.01 * i));
  }
  FluidSimulator fluid(cfg, jobs);
  fluid.run_iterations(120, 500.0);
  fluid.reset_excess();
  fluid.run_until(fluid.now() + 20.0);
  EXPECT_NEAR(fluid.accumulated_excess(), 0.0, 0.2);
}

TEST(Fluid, ExcessAccumulatesUnderContention) {
  FluidConfig cfg;
  cfg.dt = 1e-3;
  cfg.f = std::make_shared<core::CustomAggressiveness>(
      [](double) { return 1.0; }, "unit");
  FluidSimulator fluid(cfg, {fluid_job(0.5, 0.5), fluid_job(0.5, 0.5)});
  fluid.run_until(10.0);
  EXPECT_GT(fluid.accumulated_excess(), 1.0);
}

TEST(Fluid, MatchesAnalyticShiftPerIteration) {
  // One descent step of the fluid model equals Eq. 3's shift.
  const ShiftParams p = half_comm();
  const double d0 = 0.2;
  FluidConfig cfg;
  cfg.dt = 5e-5;
  FluidSimulator fluid(cfg, {fluid_job(0.9, 0.9), fluid_job(0.9, 0.9, d0)});
  fluid.run_iterations(2, 50.0);
  const auto& r0 = fluid.iterations(0);
  const auto& r1 = fluid.iterations(1);
  ASSERT_GE(r0.size(), 2u);
  ASSERT_GE(r1.size(), 2u);
  const double d1 = r1[1].comm_start - r0[1].comm_start;
  EXPECT_NEAR(d1 - d0, shift_eq3(d0, p), 0.01);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(Metrics, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15);
}

TEST(Metrics, JainIndexBounds) {
  EXPECT_DOUBLE_EQ(jain_index({5, 5, 5}), 1.0);
  EXPECT_NEAR(jain_index({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
}

TEST(Metrics, CdfIsMonotone) {
  const auto cdf = make_cdf({3, 1, 2});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1);
  EXPECT_NEAR(cdf[0].cumulative_probability, 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_probability, 1.0);
}

TEST(Metrics, TailMean) {
  EXPECT_DOUBLE_EQ(tail_mean({1, 2, 3, 4}, 2), 3.5);
  EXPECT_DOUBLE_EQ(tail_mean({1, 2}, 10), 1.5);
  EXPECT_DOUBLE_EQ(tail_mean({}, 3), 0.0);
}

TEST(Metrics, IntervalOverlap) {
  using P = std::pair<sim::SimTime, sim::SimTime>;
  const std::vector<P> disjoint = {{0, sim::seconds(1)},
                                   {sim::seconds(2), sim::seconds(3)}};
  EXPECT_DOUBLE_EQ(interval_overlap_seconds(disjoint, 0, sim::seconds(10)),
                   0.0);

  const std::vector<P> overlapping = {{0, sim::seconds(2)},
                                      {sim::seconds(1), sim::seconds(3)}};
  EXPECT_NEAR(interval_overlap_seconds(overlapping, 0, sim::seconds(10)),
              1.0, 1e-9);
}

TEST(Metrics, IntervalOverlapWindowClips) {
  using P = std::pair<sim::SimTime, sim::SimTime>;
  const std::vector<P> overlapping = {{0, sim::seconds(4)},
                                      {0, sim::seconds(4)}};
  EXPECT_NEAR(interval_overlap_seconds(overlapping, sim::seconds(1),
                                       sim::seconds(2)),
              1.0, 1e-9);
}

}  // namespace
}  // namespace mltcp::analysis
