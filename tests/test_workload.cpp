#include <gtest/gtest.h>

#include <memory>

#include "analysis/metrics.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"
#include "workload/job.hpp"
#include "workload/profiles.hpp"

namespace mltcp::workload {
namespace {

struct Rig {
  sim::Simulator sim;
  net::Dumbbell d;
  std::unique_ptr<Cluster> cluster;

  explicit Rig(int hosts = 2) {
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = hosts;
    d = net::make_dumbbell(sim, cfg);
    cluster = std::make_unique<Cluster>(sim);
  }

  JobSpec basic_spec(int host, std::int64_t bytes, sim::SimTime compute,
                     int iters) {
    JobSpec spec;
    spec.name = "job" + std::to_string(host);
    spec.flows = single_flow(d.left[host], d.right[host], bytes);
    spec.compute_time = compute;
    spec.max_iterations = iters;
    spec.cc = core::reno_factory();
    return spec;
  }
};

// ------------------------------------------------------------------- jobs

TEST(Job, RunsExactlyMaxIterations) {
  Rig rig;
  Job* job = rig.cluster->add_job(
      rig.basic_spec(0, 1'000'000, sim::milliseconds(50), 7));
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(20));
  EXPECT_EQ(job->completed_iterations(), 7);
  EXPECT_FALSE(job->running());
}

TEST(Job, IterationTimeIsCommPlusCompute) {
  Rig rig;
  // 1 MB at 1 Gbps ~ 8.4 ms wire time; compute 100 ms.
  Job* job = rig.cluster->add_job(
      rig.basic_spec(0, 1'000'000, sim::milliseconds(100), 5));
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(10));
  for (const double t : job->iteration_times_seconds()) {
    EXPECT_GT(t, 0.108);
    EXPECT_LT(t, 0.125);
  }
}

TEST(Job, NextCommGatedOnPreviousCompletion) {
  Rig rig;
  Job* job = rig.cluster->add_job(
      rig.basic_spec(0, 1'000'000, sim::milliseconds(100), 4));
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(10));
  const auto& recs = job->iterations();
  ASSERT_EQ(recs.size(), 4u);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    // Comm i starts exactly when iteration i-1 ends (the DNN dependency).
    EXPECT_EQ(recs[i].comm_start, recs[i - 1].iter_end);
    EXPECT_GE(recs[i].comm_end, recs[i].comm_start);
  }
}

TEST(Job, StartTimeDelaysFirstIteration) {
  Rig rig;
  auto spec = rig.basic_spec(0, 500'000, sim::milliseconds(10), 2);
  spec.start_time = sim::milliseconds(250);
  Job* job = rig.cluster->add_job(spec);
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(5));
  ASSERT_GE(job->completed_iterations(), 1);
  EXPECT_EQ(job->iterations()[0].comm_start, sim::milliseconds(250));
}

TEST(Job, GatePeriodPinsSlots) {
  Rig rig;
  auto spec = rig.basic_spec(0, 500'000, sim::milliseconds(10), 5);
  spec.gate_period = sim::milliseconds(200);
  spec.start_time = sim::milliseconds(30);
  Job* job = rig.cluster->add_job(spec);
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(5));
  const auto& recs = job->iterations();
  ASSERT_EQ(recs.size(), 5u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].comm_start,
              sim::milliseconds(30) + sim::milliseconds(200) * (int)i);
  }
}

TEST(Job, GaussianNoisePerturbsComputePhase) {
  Rig rig;
  auto spec = rig.basic_spec(0, 500'000, sim::milliseconds(100), 40);
  spec.noise_stddev_seconds = 0.01;
  Job* job = rig.cluster->add_job(spec);
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(30));
  const auto times = job->iteration_times_seconds();
  ASSERT_EQ(times.size(), 40u);
  const double sd = analysis::stddev(times);
  EXPECT_GT(sd, 0.004);
  EXPECT_LT(sd, 0.02);
}

TEST(Job, MultiFlowIterationWaitsForAllFlows) {
  Rig rig;
  JobSpec spec;
  spec.name = "multi";
  // Two flows with very different sizes: completion waits for the big one.
  spec.flows.push_back(FlowSpec{rig.d.left[0], rig.d.right[0], 100'000});
  spec.flows.push_back(FlowSpec{rig.d.left[1], rig.d.right[1], 5'000'000});
  spec.compute_time = sim::milliseconds(10);
  spec.max_iterations = 2;
  spec.cc = core::reno_factory();
  Job* job = rig.cluster->add_job(spec);
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(10));
  ASSERT_EQ(job->completed_iterations(), 2);
  // 5 MB at 1 Gbps ~ 41 ms; comm duration reflects the big flow.
  for (const double c : job->comm_times_seconds()) EXPECT_GT(c, 0.04);
  EXPECT_EQ(job->bytes_per_iteration(), 5'100'000);
}

// ------------------------------------------------------------- collectives

TEST(Collective, RingAllreduceFlowsAndVolume) {
  Rig rig(4);
  std::vector<net::Host*> workers = {rig.d.left[0], rig.d.right[0],
                                     rig.d.left[1], rig.d.right[1]};
  const auto flows = ring_allreduce(workers, 4'000'000);
  ASSERT_EQ(flows.size(), 4u);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(flows[i].src, workers[i]);
    EXPECT_EQ(flows[i].dst, workers[(i + 1) % 4]);
    // 2 * (n-1)/n * bytes = 2 * 3/4 * 4 MB = 6 MB per ring link.
    EXPECT_EQ(flows[i].bytes_per_iteration, 6'000'000);
  }
}

TEST(Collective, ParameterServerOneFlowPerWorker) {
  Rig rig(3);
  std::vector<net::Host*> workers = {rig.d.left[0], rig.d.left[1],
                                     rig.d.left[2]};
  const auto flows = parameter_server(workers, rig.d.right[0], 1'000'000);
  ASSERT_EQ(flows.size(), 3u);
  for (const auto& f : flows) {
    EXPECT_EQ(f.dst, rig.d.right[0]);
    EXPECT_EQ(f.bytes_per_iteration, 1'000'000);
  }
}

TEST(Collective, RingJobRunsOnTopology) {
  Rig rig(2);
  JobSpec spec;
  spec.name = "ring";
  spec.flows = ring_allreduce(
      {rig.d.left[0], rig.d.right[0], rig.d.left[1], rig.d.right[1]},
      2'000'000);
  spec.compute_time = sim::milliseconds(50);
  spec.max_iterations = 3;
  spec.cc = core::reno_factory();
  Job* job = rig.cluster->add_job(spec);
  rig.cluster->start_all();
  rig.sim.run_until(sim::seconds(20));
  EXPECT_EQ(job->completed_iterations(), 3);
}

// ---------------------------------------------------------------- cluster

TEST(Cluster, AllocatesUniqueFlowIds) {
  Rig rig;
  rig.cluster->add_job(rig.basic_spec(0, 100'000, 0, 1));
  rig.cluster->add_job(rig.basic_spec(1, 100'000, 0, 1));
  EXPECT_NE(rig.cluster->flows_of(0)[0]->id(),
            rig.cluster->flows_of(1)[0]->id());
}

TEST(Cluster, TracksJobsAndFlows) {
  Rig rig;
  JobSpec spec = rig.basic_spec(0, 100'000, 0, 1);
  spec.flows.push_back(FlowSpec{rig.d.left[1], rig.d.right[1], 100'000});
  rig.cluster->add_job(spec);
  EXPECT_EQ(rig.cluster->job_count(), 1u);
  EXPECT_EQ(rig.cluster->flows_of(0).size(), 2u);
}

// ---------------------------------------------------------------- profiles

TEST(Profiles, TimingDecomposition) {
  const ModelProfile gpt2 = gpt2_profile();
  EXPECT_EQ(comm_time(gpt2) + compute_time(gpt2), gpt2.ideal_iteration_time);
  EXPECT_EQ(comm_time(gpt2), sim::milliseconds(270));
}

TEST(Profiles, CommBytesMatchLinkRate) {
  // 0.27 s at 1 Gbps = 33.75 MB.
  EXPECT_EQ(comm_bytes(gpt2_profile(), 1e9), 33'750'000);
  // Scaling the link scales the bytes.
  EXPECT_EQ(comm_bytes(gpt2_profile(), 50e9), 50 * 33'750'000LL);
}

TEST(Profiles, AllProfilesWellFormed) {
  for (const auto& p : {gpt3_profile(), gpt2_profile(), bert_profile(),
                        vgg_profile()}) {
    EXPECT_GT(p.ideal_iteration_time, 0) << p.model_name;
    EXPECT_GT(p.comm_fraction, 0.0) << p.model_name;
    EXPECT_LT(p.comm_fraction, 1.0) << p.model_name;
  }
}

TEST(Profiles, Figure2ScenarioIsInterleavable) {
  // 0.25 + 3 * 0.15 = 0.70 < 1: the four-job scenario has packing slack.
  const double util = gpt3_profile().comm_fraction +
                      3.0 * gpt2_profile().comm_fraction;
  EXPECT_LT(util, 1.0);
}

}  // namespace
}  // namespace mltcp::workload
