#include <gtest/gtest.h>

#include <stdexcept>

#include "core/traffic_class.hpp"

namespace mltcp::core {
namespace {

TEST(TrafficClassRegistry, RegisterAndMake) {
  TrafficClassRegistry registry;
  registry.register_class("training", mltcp_reno_factory());
  ASSERT_TRUE(registry.has("training"));
  auto cc = registry.make("training");
  EXPECT_NE(cc->name().find("mltcp-reno"), std::string::npos);
}

TEST(TrafficClassRegistry, UnknownClassThrows) {
  TrafficClassRegistry registry;
  EXPECT_FALSE(registry.has("bulk"));
  EXPECT_THROW(registry.factory("bulk"), std::out_of_range);
  EXPECT_THROW(registry.make("bulk"), std::out_of_range);
}

TEST(TrafficClassRegistry, NullFactoryRejected) {
  TrafficClassRegistry registry;
  EXPECT_THROW(registry.register_class("x", nullptr), std::invalid_argument);
}

TEST(TrafficClassRegistry, ReRegisterReplaces) {
  TrafficClassRegistry registry;
  registry.register_class("t", reno_factory());
  registry.register_class("t", cubic_factory());
  EXPECT_EQ(registry.make("t")->name(), "cubic");
}

TEST(TrafficClassRegistry, ListsClassesSorted) {
  TrafficClassRegistry registry;
  registry.register_class("zeta", reno_factory());
  registry.register_class("alpha", reno_factory());
  const auto classes = registry.classes();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], "alpha");
  EXPECT_EQ(classes[1], "zeta");
}

TEST(TrafficClassRegistry, DefaultsMatchSection5) {
  MltcpConfig training;
  training.tracker.total_bytes = 1'000'000;
  training.tracker.comp_time = sim::milliseconds(100);
  const auto registry = TrafficClassRegistry::with_defaults(training);

  ASSERT_TRUE(registry.has("training"));
  ASSERT_TRUE(registry.has("bulk"));
  ASSERT_TRUE(registry.has("latency"));

  EXPECT_NE(registry.make("training")->name().find("mltcp-reno"),
            std::string::npos);
  EXPECT_EQ(registry.make("bulk")->name(), "reno");

  // The latency class uses a constant high-gain aggressiveness function, so
  // its window gain exceeds standard TCP's from the first ACK.
  auto latency = registry.make("latency");
  EXPECT_GT(latency->window_gain().gain(), 1.0);
}

TEST(TrafficClassRegistry, LatencyGainConfigurable) {
  MltcpConfig training;
  const auto registry = TrafficClassRegistry::with_defaults(training, 5.0);
  EXPECT_DOUBLE_EQ(registry.make("latency")->window_gain().gain(), 5.0);
}

}  // namespace
}  // namespace mltcp::core
