// Transport-zoo tests: the rate-based controllers (BBR's state machine and
// Gemini's dual loop), the MLTCP seams they expose, the Swift/RTO
// decrease-accounting regression fixes, and proof that both new controllers
// stay byte-identical under the fluid backend and the sharded PDES engine.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/mltcp.hpp"
#include "flowsim/flow_simulator.hpp"
#include "net/topology.hpp"
#include "pdes/partition.hpp"
#include "pdes/sharded_runner.hpp"
#include "runner/campaign.hpp"
#include "sim/simulator.hpp"
#include "tcp/bbr.hpp"
#include "tcp/flow.hpp"
#include "tcp/gemini.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/swift.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"

namespace mltcp {
namespace {

class FixedGain : public tcp::WindowGain {
 public:
  explicit FixedGain(double g) : g_(g) {}
  double gain() const override { return g_; }
  std::string name() const override { return "fixed"; }

 private:
  double g_;
};

// ------------------------------------------------------------------- BBR

/// Feeds BbrCC a synthetic ACK stream with explicit sequence/inflight
/// bookkeeping, the two inputs its round accounting runs on.
struct BbrDriver {
  explicit BbrDriver(tcp::BbrCC& cc) : cc_(cc) {}

  void ack(int num, std::int64_t inflight, sim::SimTime rtt,
           sim::SimTime step) {
    now_ += step;
    seq_ += num;
    tcp::AckContext ctx;
    ctx.now = now_;
    ctx.num_acked = num;
    ctx.ack_seq = seq_;
    ctx.rtt_sample = rtt;
    ctx.inflight = inflight;
    cc_.on_ack(ctx);
  }

  sim::SimTime now() const { return now_; }

 private:
  tcp::BbrCC& cc_;
  sim::SimTime now_ = 0;
  std::int64_t seq_ = 0;
};

constexpr sim::SimTime kRtt = sim::microseconds(100);
constexpr double kSegsPerSec = 1e5;  // 10 segments per 100 us round.

/// Constant 10-segment rounds at 100 us: bandwidth plateaus immediately, so
/// STARTUP exits after startup_full_bw_rounds flat rounds, DRAIN exits as
/// soon as inflight <= BDP (= 10 segments).
void drive_to_probe_bw(BbrDriver& d) {
  for (int i = 0; i < 6; ++i) d.ack(10, 10, kRtt, kRtt);
}

TEST(BbrCC, StartupPlateauDrainsIntoProbeBw) {
  tcp::BbrCC cc;
  BbrDriver d(cc);
  EXPECT_EQ(cc.state(), tcp::BbrCC::State::kStartup);
  EXPECT_DOUBLE_EQ(cc.pacing_rate(), 0.0) << "ACK-clocked until measured";
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0);

  drive_to_probe_bw(d);
  EXPECT_EQ(cc.state(), tcp::BbrCC::State::kProbeBw);
  EXPECT_TRUE(cc.filled_pipe());
  EXPECT_NEAR(cc.btl_bw(), kSegsPerSec, 1.0);
  EXPECT_EQ(cc.min_rtt(), kRtt);
  EXPECT_NEAR(cc.bdp(), 10.0, 1e-6);
  // Steady state: cwnd_gain * BDP, cruise pacing at btl_bw.
  EXPECT_NEAR(cc.cwnd(), 20.0, 1e-6);
  EXPECT_EQ(cc.probe_bw_phase(), 2) << "deterministic cruise-phase start";
  EXPECT_NEAR(cc.pacing_rate(), kSegsPerSec, 1.0);
}

TEST(BbrCC, ProbeBwCyclesOnePhasePerRound) {
  tcp::BbrCC cc;
  BbrDriver d(cc);
  drive_to_probe_bw(d);
  int phase = cc.probe_bw_phase();
  for (int i = 0; i < 8; ++i) {
    d.ack(10, 10, kRtt, kRtt);
    EXPECT_EQ(cc.probe_bw_phase(), (phase + 1) % 8);
    phase = cc.probe_bw_phase();
  }
}

TEST(BbrCC, MltcpGainScalesOnlyTheUpPhase) {
  // The augmentation seam: up-phase pacing gain is 1 + (1.25-1)*F, the
  // down/cruise phases are untouched — a finishing flow probes harder, it
  // never drains or cruises differently.
  auto run = [](std::shared_ptr<tcp::WindowGain> gain) {
    tcp::BbrCC cc(tcp::BbrConfig{}, std::move(gain));
    BbrDriver d(cc);
    drive_to_probe_bw(d);
    std::vector<double> by_phase(8, 0.0);
    for (int i = 0; i < 8; ++i) {
      d.ack(10, 10, kRtt, kRtt);
      by_phase[static_cast<std::size_t>(cc.probe_bw_phase())] =
          cc.current_pacing_gain();
    }
    return by_phase;
  };
  const auto plain = run(nullptr);
  const auto eager = run(std::make_shared<FixedGain>(2.0));
  const auto shy = run(std::make_shared<FixedGain>(0.25));
  EXPECT_DOUBLE_EQ(plain[0], 1.25);
  EXPECT_DOUBLE_EQ(eager[0], 1.5);
  EXPECT_DOUBLE_EQ(shy[0], 1.0625);
  for (int p = 1; p < 8; ++p) {
    EXPECT_DOUBLE_EQ(eager[static_cast<std::size_t>(p)],
                     plain[static_cast<std::size_t>(p)])
        << "phase " << p << " must not be gain-scaled";
    EXPECT_DOUBLE_EQ(shy[static_cast<std::size_t>(p)],
                     plain[static_cast<std::size_t>(p)]);
  }
  EXPECT_DOUBLE_EQ(plain[1], 0.75);
}

TEST(BbrCC, ProbeRttCollapsesWindowThenResumes) {
  tcp::BbrCC cc;
  BbrDriver d(cc);
  drive_to_probe_bw(d);
  // min_rtt keeps getting restamped while samples equal the minimum; an
  // elevated sample after the window expires must trigger PROBE_RTT.
  d.ack(10, 10, sim::microseconds(150), sim::seconds(11));
  ASSERT_EQ(cc.state(), tcp::BbrCC::State::kProbeRtt);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4.0) << "PROBE_RTT drains to min_cwnd";
  // While draining, any sample refreshes the estimate.
  d.ack(10, 4, sim::microseconds(150), sim::milliseconds(200));
  EXPECT_EQ(cc.state(), tcp::BbrCC::State::kProbeBw);
  EXPECT_EQ(cc.min_rtt(), sim::microseconds(150));
  EXPECT_EQ(cc.probe_bw_phase(), 2);
}

TEST(BbrCC, TimeoutDiscardsModelAndRestartsDiscovery) {
  tcp::BbrCC cc;
  BbrDriver d(cc);
  drive_to_probe_bw(d);
  ASSERT_GT(cc.btl_bw(), 0.0);
  cc.on_timeout(d.now());
  EXPECT_EQ(cc.state(), tcp::BbrCC::State::kStartup);
  EXPECT_DOUBLE_EQ(cc.btl_bw(), 0.0);
  EXPECT_FALSE(cc.filled_pipe());
  EXPECT_DOUBLE_EQ(cc.pacing_rate(), 0.0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0) << "back to initial_cwnd until measured";
  EXPECT_EQ(cc.min_rtt(), kRtt) << "min_rtt survives the outage";
}

TEST(BbrCC, NameReflectsGain) {
  EXPECT_EQ(tcp::BbrCC().name(), "bbr");
  tcp::BbrCC scaled(tcp::BbrConfig{}, std::make_shared<FixedGain>(2.0));
  EXPECT_EQ(scaled.name(), "mltcp-bbr[fixed]");
}

// ---------------------------------------------------------------- Gemini

tcp::AckContext gem_ack(sim::SimTime now, std::int64_t ack_seq, int num,
                        sim::SimTime rtt, bool ece = false) {
  tcp::AckContext ctx;
  ctx.now = now;
  ctx.num_acked = num;
  ctx.ack_seq = ack_seq;
  ctx.rtt_sample = rtt;
  ctx.ece = ece;
  return ctx;
}

/// Congestion-avoidance configuration: ssthresh below cwnd from the start.
tcp::GeminiConfig gem_ca() {
  tcp::GeminiConfig cfg;
  cfg.initial_ssthresh = 1.0;
  return cfg;
}

TEST(GeminiCC, EcnLoopCutsProportionallyAtWindowEnd) {
  tcp::GeminiCC cc(gem_ca());
  // A fully-marked first window: alpha stays at its RFC 8257 init of 1.0,
  // the cut is alpha/2 and ssthresh records the post-cut window.
  cc.on_ack(gem_ack(sim::milliseconds(1), 11, 10, sim::microseconds(300),
                    /*ece=*/true));
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 5.0);
  // After the cut the same ACK's congestion-avoidance step still applies:
  // 5 + 1 * h(=1) * 10/5.
  EXPECT_NEAR(cc.cwnd(), 7.0, 1e-9);
}

TEST(GeminiCC, DelayLoopCutsWhenQueueingExceedsThreshold) {
  tcp::GeminiCC cc(gem_ca());
  cc.on_ack(gem_ack(sim::milliseconds(1), 5, 5, sim::microseconds(300)));
  EXPECT_NEAR(cc.cwnd(), 10.5, 1e-9);  // under threshold: pure increase
  // 2 ms of queueing over the 300 us base: excess = (2000-1000)/1000 = 1.0
  // -> the full delay_beta = 0.2 cut on the 10.5 window.
  cc.on_ack(gem_ack(sim::milliseconds(2), 11, 6, sim::microseconds(2300)));
  EXPECT_NEAR(cc.ssthresh(), 10.5 * 0.8, 1e-9);
  EXPECT_NEAR(cc.alpha(), 15.0 / 16.0, 1e-12) << "unmarked window decays alpha";
}

TEST(GeminiCC, FusedLoopsApplyOnlyTheStrongerCut) {
  tcp::GeminiCC cc(gem_ca());
  cc.on_ack(gem_ack(sim::milliseconds(1), 5, 5, sim::microseconds(300),
                    /*ece=*/true));
  // Window end sees both signals: ECN cut 0.5 beats delay cut 0.2; they
  // must not compound.
  cc.on_ack(gem_ack(sim::milliseconds(2), 11, 6, sim::microseconds(2300),
                    /*ece=*/true));
  EXPECT_NEAR(cc.ssthresh(), 10.5 * 0.5, 1e-9);
}

TEST(GeminiCC, AdditiveIncreaseScalesWithGainAndRtt) {
  // Plain at the reference RTT: the Reno step.
  tcp::GeminiCC plain(gem_ca());
  plain.on_ack(gem_ack(1, 5, 5, sim::microseconds(300)));
  EXPECT_DOUBLE_EQ(plain.cwnd(), 10.5);
  // MLTCP seam: F scales the step.
  tcp::GeminiCC scaled(gem_ca(), std::make_shared<FixedGain>(2.0));
  scaled.on_ack(gem_ack(1, 5, 5, sim::microseconds(300)));
  EXPECT_DOUBLE_EQ(scaled.cwnd(), 11.0);
  // RTT compensation: a 4x-longer path ramps 4x faster (h = srtt/rtt_ref).
  tcp::GeminiCC faraway(gem_ca());
  faraway.on_ack(gem_ack(1, 5, 5, sim::microseconds(1200)));
  EXPECT_DOUBLE_EQ(faraway.h(), 4.0);
  EXPECT_DOUBLE_EQ(faraway.cwnd(), 12.0);
}

TEST(GeminiCC, SlowStartIsNotGainScaled) {
  // MLTCP (Alg. 1) scales only congestion avoidance; with the default
  // ssthresh the flow is in slow start and doubles regardless of F.
  tcp::GeminiCC cc(tcp::GeminiConfig{}, std::make_shared<FixedGain>(5.0));
  ASSERT_TRUE(cc.in_slow_start());
  cc.on_ack(gem_ack(1, 5, 5, sim::microseconds(300)));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 15.0);
}

TEST(GeminiCC, PacesAtWindowPerSrtt) {
  tcp::GeminiCC cc(gem_ca());
  EXPECT_DOUBLE_EQ(cc.pacing_rate(), 0.0) << "no srtt yet";
  cc.on_ack(gem_ack(1, 5, 5, sim::microseconds(300)));
  EXPECT_NEAR(cc.pacing_rate(), cc.cwnd() / 300e-6, 1e-6);
}

TEST(GeminiCC, AtMostOneLossDecreasePerSrtt) {
  tcp::GeminiCC cc(gem_ca());
  cc.on_ack(gem_ack(sim::milliseconds(1), 5, 5, sim::microseconds(300)));
  cc.on_loss(sim::milliseconds(2));
  EXPECT_NEAR(cc.cwnd(), 5.25, 1e-9);
  cc.on_loss(sim::milliseconds(2) + sim::microseconds(100));
  EXPECT_NEAR(cc.cwnd(), 5.25, 1e-9) << "dupACK train must not stack cuts";
  cc.on_loss(sim::milliseconds(2) + sim::microseconds(400));
  EXPECT_NEAR(cc.cwnd(), 2.625, 1e-9);
}

TEST(GeminiCC, TimeoutCollapsesToFloorAndStampsDecrease) {
  tcp::GeminiCC cc(gem_ca());
  cc.on_ack(gem_ack(sim::milliseconds(1), 5, 5, sim::microseconds(300)));
  cc.on_timeout(sim::milliseconds(2));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 2.0);
  EXPECT_NEAR(cc.ssthresh(), 5.25, 1e-9);
  // The collapse counts as this srtt's decrease.
  cc.on_loss(sim::milliseconds(2) + sim::microseconds(100));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 2.0);
}

TEST(GeminiCC, NameReflectsGain) {
  EXPECT_EQ(tcp::GeminiCC().name(), "gemini");
  tcp::GeminiCC scaled(tcp::GeminiConfig{}, std::make_shared<FixedGain>(2.0));
  EXPECT_EQ(scaled.name(), "mltcp-gemini[fixed]");
}

// ------------------------------------------- Swift / RTO regression fixes

tcp::AckContext swift_ack(sim::SimTime rtt, sim::SimTime now) {
  tcp::AckContext ctx;
  ctx.now = now;
  ctx.num_acked = 1;
  ctx.rtt_sample = rtt;
  return ctx;
}

TEST(SwiftCC, TimeoutClampsToConfiguredFloor) {
  // Regression: the old timeout path reset the window below min_cwnd.
  tcp::SwiftCC cc;
  cc.on_timeout(sim::milliseconds(1));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 2.0);
}

TEST(SwiftCC, TimeoutCountsAsTheDelayIntervalDecrease) {
  // Regression: the timeout collapse never stamped last_decrease_, so a
  // loss arriving within the same delay interval cut the window a second
  // time on top of the collapse.
  tcp::SwiftCC cc;
  // Congested sample: decrease to 6.0, last_delay = 600 us.
  cc.on_ack(swift_ack(sim::microseconds(600), sim::microseconds(700)));
  ASSERT_NEAR(cc.cwnd(), 6.0, 1e-9);
  cc.on_timeout(sim::milliseconds(1));
  ASSERT_DOUBLE_EQ(cc.cwnd(), 2.0);
  // Recover a little; the 250 us sample is below target so the window
  // grows, and it becomes the new decrease interval.
  cc.on_ack(swift_ack(sim::microseconds(250), sim::microseconds(1050)));
  ASSERT_NEAR(cc.cwnd(), 2.5, 1e-9);
  // A loss 200 us after the timeout is inside the interval: no second cut.
  cc.on_loss(sim::microseconds(1200));
  EXPECT_NEAR(cc.cwnd(), 2.5, 1e-9);
  // Once the interval has elapsed the next loss decreases normally.
  cc.on_loss(sim::microseconds(1300));
  EXPECT_NEAR(cc.cwnd(), 2.0, 1e-9);
}

TEST(RttEstimator, FreshSampleCollapsesBackoff) {
  // RFC 6298 (5.7): a backed-off RTO must return to the computed value as
  // soon as a new (un-retransmitted) sample arrives, not persist until the
  // next explicit reset.
  tcp::RttEstimator est;
  est.add_sample(sim::milliseconds(10));
  const sim::SimTime base = est.rto();
  est.backoff();
  est.backoff();
  ASSERT_EQ(est.rto(), base * 4);
  est.add_sample(sim::milliseconds(10));
  EXPECT_EQ(est.backoff_shift(), 0);
  EXPECT_LT(est.rto(), base * 2);
}

TEST(RttEstimator, RttvarNeverDecaysToZero) {
  // Perfectly constant samples decay rttvar geometrically; without a floor
  // it hits zero and the RTO degenerates to srtt exactly — any jitter then
  // fires a spurious retransmission. Floor is one clock tick.
  tcp::RttEstimator est(/*min_rto=*/1, /*max_rto=*/sim::seconds(60));
  for (int i = 0; i < 200; ++i) est.add_sample(sim::microseconds(10));
  EXPECT_GE(est.rttvar(), 1);
  EXPECT_GT(est.rto(), est.srtt());
}

// ------------------------------------------------ end-to-end on the wire

struct LongFlowOutcome {
  double seconds = -1.0;
  std::int64_t max_backlog_bytes = 0;
  tcp::SenderStats stats;
};

LongFlowOutcome run_long_flow(std::unique_ptr<tcp::CongestionControl> cc,
                              net::QueueFactory bottleneck_queue = nullptr) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 1;
  dc.bottleneck_queue = std::move(bottleneck_queue);
  auto d = net::make_dumbbell(sim, dc);
  tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1, std::move(cc));
  sim::SimTime done = -1;
  flow.send_message(30'000'000, [&](sim::SimTime t) { done = t; });
  sim.run_until(sim::seconds(10));
  LongFlowOutcome out;
  out.seconds = done > 0 ? sim::to_seconds(done) : -1.0;
  out.max_backlog_bytes = d.bottleneck->queue().stats().max_backlog_bytes;
  out.stats = flow.sender().stats();
  return out;
}

TEST(TransportZoo, BbrSaturatesTheDumbbell) {
  // 30 MB over the 1 Gb/s bottleneck: wire-rate ideal is ~0.25 s. The
  // pacing seam (pacing_rate() -> sender pace timer) must carry the flow
  // there without window-based ACK clocking.
  const auto bbr = run_long_flow(std::make_unique<tcp::BbrCC>());
  ASSERT_GT(bbr.seconds, 0) << "BBR flow must complete";
  EXPECT_LT(bbr.seconds, 0.32);
}

TEST(TransportZoo, BbrHoldsQueueBelowLossBasedFill) {
  // The headline BBR property: pacing at the estimated bottleneck rate
  // keeps the standing queue near the BDP instead of filling the buffer
  // the way a loss-based controller does.
  const auto bbr = run_long_flow(std::make_unique<tcp::BbrCC>());
  ASSERT_GT(bbr.seconds, 0);
  EXPECT_LT(bbr.max_backlog_bytes, 200'000) << "Reno fills ~250 KB here";
}

TEST(TransportZoo, GeminiSaturatesTheDumbbell) {
  const auto gem = run_long_flow(std::make_unique<tcp::GeminiCC>(),
                                 net::make_ecn_factory(250'000, 30'000));
  ASSERT_GT(gem.seconds, 0) << "Gemini flow must complete";
  EXPECT_LT(gem.seconds, 0.32);
  EXPECT_EQ(gem.stats.timeouts, 0);
}

// --------------------------------------- fluid backend probes the new CCs

TEST(TransportZoo, FluidBackendProbesRateBasedMltcpVariants) {
  // The flow-level backend learns each channel's aggressiveness function by
  // probing one controller instance. BBR and Gemini carry the same
  // MltcpGain seam as the window-based family, so the fluid allocation must
  // favor the flow further into its message exactly as it does for Reno.
  for (const bool use_bbr : {true, false}) {
    sim::Simulator sim;
    net::DumbbellConfig dc;
    dc.hosts_per_side = 2;
    auto d = net::make_dumbbell(sim, dc);
    flowsim::FlowSimulator fs(sim, *d.topology);
    workload::Cluster cluster(sim);
    cluster.set_backend(&fs);

    const core::MltcpConfig cfg;
    const tcp::CcFactory cc = use_bbr ? core::mltcp_bbr_factory(cfg)
                                      : core::mltcp_gemini_factory(cfg);
    workload::Channel* ahead =
        cluster.add_channel({d.left[0], d.right[0], 0}, cc);
    workload::Channel* behind =
        cluster.add_channel({d.left[1], d.right[1], 0}, cc);

    ahead->send_message(10'000'000, [](sim::SimTime) {});
    sim.run_until(sim::milliseconds(60));
    behind->send_message(10'000'000, [](sim::SimTime) {});
    sim.run_until(sim::milliseconds(80));

    const auto rates = fs.current_rates();
    ASSERT_EQ(rates.size(), 2u);
    const flowsim::FlowRate& ra =
        rates[0].flow == ahead->id() ? rates[0] : rates[1];
    const flowsim::FlowRate& rb =
        rates[0].flow == behind->id() ? rates[0] : rates[1];
    EXPECT_GT(ra.weight, rb.weight)
        << (use_bbr ? "bbr" : "gemini")
        << ": F(bytes_ratio) must reach the fluid allocator";
    EXPECT_GT(ra.rate_bps, rb.rate_bps);
  }
}

// -------------------------------------- determinism / byte-identity matrix

/// Observable model state of a transport-zoo run (same scheme as the PDES
/// identity tests): job iteration records plus link/host/switch counters.
std::string zoo_digest(const workload::Cluster& cluster,
                       const net::Topology& topo) {
  std::ostringstream os;
  for (std::size_t j = 0; j < cluster.job_count(); ++j) {
    const workload::Job* job = cluster.job(j);
    os << "job " << j << ' ' << job->completed_iterations() << '\n';
    for (const workload::IterationRecord& r : job->iterations()) {
      os << r.index << ' ' << r.comm_start << ' ' << r.comm_end << ' '
         << r.iter_end << '\n';
    }
  }
  for (const auto& link : topo.links()) {
    os << "link " << link->bytes_transmitted() << ' '
       << link->packets_transmitted() << '\n';
  }
  for (const net::Host* h : topo.hosts()) {
    os << "host " << h->delivered_packets() << '\n';
  }
  for (const net::Switch* s : topo.switches()) {
    os << "switch " << s->forwarded_packets() << '\n';
  }
  return os.str();
}

std::vector<workload::JobSpec> zoo_specs(const net::Dumbbell& d) {
  // One job per new-controller flavor (plain and MLTCP-augmented for both),
  // so the identity check exercises the pacing seam of every variant.
  std::vector<workload::JobSpec> specs;
  const core::MltcpConfig mcfg;
  const tcp::CcFactory ccs[3] = {
      core::bbr_factory(),
      core::mltcp_bbr_factory(mcfg),
      core::mltcp_gemini_factory(mcfg),
  };
  for (int j = 0; j < 3; ++j) {
    workload::JobSpec spec;
    spec.name = "zoo" + std::to_string(j);
    spec.flows =
        workload::single_flow(d.left[j], d.right[j], 300'000 + 150'000 * j);
    spec.compute_time = sim::milliseconds(2 + j);
    spec.max_iterations = 8;
    spec.cc = ccs[j];
    specs.push_back(spec);
  }
  return specs;
}

std::string zoo_run(bool sharded, pdes::ShardedRunner::Mode mode) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.hosts_per_side = 3;
  auto d = net::make_dumbbell(sim, cfg);
  workload::Cluster cluster(sim);
  const auto specs = zoo_specs(d);
  for (const workload::JobSpec& spec : specs) cluster.add_job(spec);

  const sim::SimTime kEnd = sim::seconds(2);
  if (!sharded) {
    cluster.start_all();
    sim.run_until(kEnd);
  } else {
    pdes::PartitionOptions opts;
    opts.shards = 2;
    opts.co_locate = pdes::co_locate_senders(specs);
    const pdes::Partition part = pdes::partition_topology(*d.topology, opts);
    EXPECT_EQ(part.shards, 2) << "test expects a real split";
    sim.configure_shards(part.shards);
    pdes::ShardedRunner runner(sim, *d.topology, part, mode);
    pdes::start_all_sharded(cluster, specs, sim, part);
    runner.run_until(kEnd);
    EXPECT_GT(runner.totals().events, 0u);
  }
  return zoo_digest(cluster, *d.topology);
}

TEST(TransportZoo, RateBasedControllersAreByteIdenticalUnderSharding) {
  const std::string serial =
      zoo_run(false, pdes::ShardedRunner::Mode::kCooperative);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, zoo_run(true, pdes::ShardedRunner::Mode::kCooperative));
  EXPECT_EQ(serial, zoo_run(true, pdes::ShardedRunner::Mode::kThreaded));
}

TEST(TransportZoo, CampaignResultsIndependentOfThreadCount) {
  // The cc_family bench runs its variant matrix through run_campaign; the
  // new controllers must produce the same digests whether the campaign is
  // serial or parallel (spec-indexed results, no shared mutable state).
  const std::vector<int> variants = {0, 1, 2, 3};
  const std::function<std::string(const int&, std::size_t)> body =
      [](const int& variant, std::size_t) {
        sim::Simulator sim;
        net::DumbbellConfig dc;
        dc.hosts_per_side = 2;
        auto d = net::make_dumbbell(sim, dc);
        workload::Cluster cluster(sim);
        const core::MltcpConfig mcfg;
        workload::JobSpec spec;
        spec.name = "v" + std::to_string(variant);
        spec.flows = workload::single_flow(d.left[0], d.right[0], 400'000);
        spec.compute_time = sim::milliseconds(2);
        spec.max_iterations = 6;
        switch (variant) {
          case 0: spec.cc = core::bbr_factory(); break;
          case 1: spec.cc = core::mltcp_bbr_factory(mcfg); break;
          case 2: spec.cc = core::gemini_factory(); break;
          default: spec.cc = core::mltcp_gemini_factory(mcfg); break;
        }
        cluster.add_job(spec);
        cluster.start_all();
        sim.run_until(sim::seconds(1));
        return zoo_digest(cluster, *d.topology);
      };
  const auto serial =
      runner::run_campaign(variants, body, runner::CampaignOptions{1});
  const auto parallel =
      runner::run_campaign(variants, body, runner::CampaignOptions{4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "variant " << i;
  }
}

}  // namespace
}  // namespace mltcp
