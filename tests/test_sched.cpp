#include <gtest/gtest.h>

#include "sched/centralized.hpp"
#include "sched/pfabric.hpp"

namespace mltcp::sched {
namespace {

PeriodicDemand demand(double period_s, double comm_s,
                      const std::string& name = "j") {
  return PeriodicDemand{name, sim::from_seconds(period_s),
                        sim::from_seconds(comm_s)};
}

// ------------------------------------------------------------- hyperperiod

TEST(Hyperperiod, LcmOfCommensuratePeriods) {
  const auto h = hyperperiod_of({demand(1.2, 0.1), demand(1.8, 0.1)});
  EXPECT_EQ(h, sim::from_seconds(3.6));
}

TEST(Hyperperiod, SinglePeriodIsItself) {
  EXPECT_EQ(hyperperiod_of({demand(1.8, 0.2)}), sim::from_seconds(1.8));
}

TEST(Hyperperiod, SaturatesForIncommensurate) {
  // Coprime nanosecond counts would explode; the cap bounds the horizon.
  const auto h =
      hyperperiod_of({demand(1.000000001, 0.1), demand(1.3, 0.1)}, 16);
  EXPECT_LE(h, 16 * sim::from_seconds(1.3));
}

// ---------------------------------------------------------- excess metric

TEST(EvaluateExcess, DisjointIntervalsZero) {
  const std::vector<PeriodicDemand> jobs = {demand(10, 4), demand(10, 4)};
  EXPECT_EQ(evaluate_excess(jobs, {0, sim::from_seconds(4)},
                            sim::from_seconds(10)),
            0);
}

TEST(EvaluateExcess, FullyAlignedIsCommTime) {
  const std::vector<PeriodicDemand> jobs = {demand(10, 4), demand(10, 4)};
  EXPECT_EQ(evaluate_excess(jobs, {0, 0}, sim::from_seconds(10)),
            sim::from_seconds(4));
}

TEST(EvaluateExcess, PartialOverlapMeasured) {
  const std::vector<PeriodicDemand> jobs = {demand(10, 4), demand(10, 4)};
  // [0,4) and [2,6): overlap 2 s.
  EXPECT_EQ(evaluate_excess(jobs, {0, sim::from_seconds(2)},
                            sim::from_seconds(10)),
            sim::from_seconds(2));
}

TEST(EvaluateExcess, WrapAroundInterval) {
  const std::vector<PeriodicDemand> jobs = {demand(10, 4), demand(10, 4)};
  // [8,10)+[0,2) wraps; [0,4) overlaps it on [0,2): 2 s.
  EXPECT_EQ(evaluate_excess(jobs, {0, sim::from_seconds(8)},
                            sim::from_seconds(10)),
            sim::from_seconds(2));
}

TEST(EvaluateExcess, ThreeWayOverlapCountsDouble) {
  const std::vector<PeriodicDemand> jobs = {demand(10, 4), demand(10, 4),
                                            demand(10, 4)};
  // Three aligned intervals: excess = 2 * 4 s.
  EXPECT_EQ(evaluate_excess(jobs, {0, 0, 0}, sim::from_seconds(10)),
            sim::from_seconds(8));
}

TEST(EvaluateExcess, MixedPeriodsOnHyperperiod) {
  // J1 (T=2, c=1) at offset 0 occupies [0,1),[2,3); J2 (T=4, c=1) at offset
  // 1 occupies [1,2): no overlap.
  const std::vector<PeriodicDemand> jobs = {demand(2, 1), demand(4, 1)};
  EXPECT_EQ(evaluate_excess(jobs, {0, sim::from_seconds(1)},
                            sim::from_seconds(4)),
            0);
  // At offset 0, J2 collides with one J1 comm per hyperperiod.
  EXPECT_EQ(evaluate_excess(jobs, {0, 0}, sim::from_seconds(4)),
            sim::from_seconds(1));
}

// --------------------------------------------------------------- optimizer

TEST(Optimizer, TwoIdenticalJobsInterleave) {
  const std::vector<PeriodicDemand> jobs = {demand(1.8, 0.8),
                                            demand(1.8, 0.8)};
  const Schedule s = optimize_interleaving(jobs);
  EXPECT_EQ(s.excess, 0);
  EXPECT_TRUE(is_interleavable(jobs));
}

TEST(Optimizer, SixJobsAtNinetyPercentUtilization) {
  std::vector<PeriodicDemand> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(demand(1.8, 0.27));
  const Schedule s = optimize_interleaving(jobs);
  EXPECT_EQ(s.excess, 0);
}

TEST(Optimizer, PaperFigure2ScenarioInterleavable) {
  // 1 GPT-3-like (T=1.2, c=0.3) + 3 GPT-2-like (T=1.8, c=0.27).
  std::vector<PeriodicDemand> jobs = {demand(1.2, 0.3, "gpt3")};
  for (int i = 0; i < 3; ++i) jobs.push_back(demand(1.8, 0.27, "gpt2"));
  const Schedule s = optimize_interleaving(jobs);
  EXPECT_EQ(s.excess, 0);
  EXPECT_EQ(s.hyperperiod, sim::from_seconds(3.6));
}

TEST(Optimizer, OverloadedScenarioHasResidualExcess) {
  // Three jobs each communicating half their period: utilization 1.5.
  std::vector<PeriodicDemand> jobs = {demand(2, 1), demand(2, 1),
                                      demand(2, 1)};
  const Schedule s = optimize_interleaving(jobs);
  EXPECT_GT(s.excess, 0);
  EXPECT_FALSE(is_interleavable(jobs));
  // Best possible: total comm 3 s per 2 s circle -> excess >= 1 s.
  EXPECT_GE(s.excess, sim::from_seconds(1));
}

TEST(Optimizer, ScheduleOffsetsVerifiable) {
  std::vector<PeriodicDemand> jobs = {demand(1.2, 0.3), demand(1.8, 0.27),
                                      demand(1.8, 0.27), demand(1.8, 0.27)};
  const Schedule s = optimize_interleaving(jobs);
  // The returned offsets must reproduce the reported excess.
  EXPECT_EQ(evaluate_excess(jobs, s.offsets, s.hyperperiod), s.excess);
}

TEST(Optimizer, ZeroCommJobsAreFree) {
  std::vector<PeriodicDemand> jobs = {demand(1.0, 0.0), demand(1.0, 0.9)};
  EXPECT_TRUE(is_interleavable(jobs));
}

// -------------------------------------------------------------- harmonize

TEST(Harmonize, NoPadWhenAlreadyCommensurate) {
  std::vector<JobTiming> jobs = {
      {sim::from_seconds(1.2), sim::from_seconds(0.3),
       sim::from_seconds(0.9)},
      {sim::from_seconds(1.8), sim::from_seconds(0.27),
       sim::from_seconds(1.53)}};
  const auto pads = harmonize_compute_pads(jobs);
  EXPECT_EQ(pads[0], 0);
  EXPECT_EQ(pads[1], 0);
}

TEST(Harmonize, PadsRestoreNominalRatio) {
  // Job 0 naturally runs 1% long; job 1 exactly nominal.
  std::vector<JobTiming> jobs = {
      {sim::from_seconds(1.2), sim::from_seconds(0.312),
       sim::from_seconds(0.9)},
      {sim::from_seconds(1.8), sim::from_seconds(0.27),
       sim::from_seconds(1.53)}};
  const auto pads = harmonize_compute_pads(jobs);
  EXPECT_EQ(pads[0], 0) << "the slowest job sets lambda and gets no pad";
  // Job 1's padded period must be exactly 1.5x job 0's natural period.
  const sim::SimTime p0 = jobs[0].wire_comm + jobs[0].compute + pads[0];
  const sim::SimTime p1 = jobs[1].wire_comm + jobs[1].compute + pads[1];
  EXPECT_NEAR(static_cast<double>(p1) / static_cast<double>(p0), 1.5, 1e-6);
}

TEST(Harmonize, AllPadsNonNegative) {
  std::vector<JobTiming> jobs = {
      {sim::from_seconds(1.0), sim::from_seconds(0.4),
       sim::from_seconds(0.7)},
      {sim::from_seconds(2.0), sim::from_seconds(0.3),
       sim::from_seconds(1.6)},
      {sim::from_seconds(0.5), sim::from_seconds(0.1),
       sim::from_seconds(0.45)}};
  for (const auto pad : harmonize_compute_pads(jobs)) EXPECT_GE(pad, 0);
}

// ----------------------------------------------------------------- pfabric

TEST(PfabricCC, WindowIsConstant) {
  PfabricCC cc(PfabricConfig{48.0});
  EXPECT_DOUBLE_EQ(cc.cwnd(), 48.0);
  tcp::AckContext ctx;
  ctx.num_acked = 10;
  cc.on_ack(ctx);
  cc.on_loss(0);
  cc.on_timeout(0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 48.0);
  EXPECT_EQ(cc.name(), "pfabric");
}

}  // namespace
}  // namespace mltcp::sched
