#include <gtest/gtest.h>

#include <memory>

#include "core/aggressiveness.hpp"
#include "core/iteration_tracker.hpp"
#include "core/mltcp.hpp"

namespace mltcp::core {
namespace {

// --------------------------------------------------- aggressiveness checks

TEST(Aggressiveness, PaperDefaultLinearValues) {
  LinearAggressiveness f;  // 1.75 r + 0.25
  EXPECT_DOUBLE_EQ(f(0.0), 0.25);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(0.5), 1.125);
}

TEST(Aggressiveness, CustomWrapsCallable) {
  CustomAggressiveness f([](double r) { return r * r; }, "sq");
  EXPECT_DOUBLE_EQ(f(0.5), 0.25);
  EXPECT_EQ(f.name(), "sq");
}

/// §3.1 requirements over the six Figure-3 candidates: F1..F4 must pass the
/// checker, F5 and F6 (decreasing) must fail requirement (ii).
class Figure3Functions : public ::testing::TestWithParam<int> {};

TEST_P(Figure3Functions, RangeMatchesPaper) {
  const auto f = make_figure3_function(GetParam());
  const auto check = check_aggressiveness(*f);
  // "All these functions have the same range (0.25 - 2)".
  EXPECT_NEAR(check.min_value, 0.25, 1e-9);
  EXPECT_NEAR(check.max_value, 2.0, 1e-9);
}

TEST_P(Figure3Functions, MonotonicityMatchesPaper) {
  const int i = GetParam();
  const auto f = make_figure3_function(i);
  const auto check = check_aggressiveness(*f);
  if (i <= 4) {
    EXPECT_TRUE(check.derivative_non_negative) << "F" << i;
    EXPECT_TRUE(check.valid()) << "F" << i;
  } else {
    EXPECT_FALSE(check.derivative_non_negative) << "F" << i;
    EXPECT_FALSE(check.valid()) << "F" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSix, Figure3Functions,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Aggressiveness, InvalidIndexThrows) {
  EXPECT_THROW(make_figure3_function(0), std::invalid_argument);
  EXPECT_THROW(make_figure3_function(7), std::invalid_argument);
}

TEST(Aggressiveness, CheckerFlagsNarrowRange) {
  CustomAggressiveness flat([](double) { return 1.0; }, "flat");
  const auto check = check_aggressiveness(flat);
  EXPECT_TRUE(check.derivative_non_negative);
  EXPECT_FALSE(check.valid()) << "flat function cannot absorb noise (req i)";
}

TEST(Aggressiveness, CheckerFlagsZeroCrossing) {
  CustomAggressiveness neg([](double r) { return r - 0.5; }, "neg");
  EXPECT_FALSE(check_aggressiveness(neg).valid())
      << "negative values would shrink the window on ACKs";
}

// -------------------------------------------------------- IterationTracker

TrackerConfig configured(std::int64_t total_bytes = 150'000,
                         sim::SimTime comp_time = sim::milliseconds(100)) {
  TrackerConfig cfg;
  cfg.total_bytes = total_bytes;
  cfg.comp_time = comp_time;
  return cfg;
}

TEST(IterationTracker, AccumulatesBytesInMtuUnits) {
  IterationTracker t(configured());
  t.on_ack(2, sim::microseconds(100));
  EXPECT_EQ(t.bytes_sent(), 2 * 1500);
  t.on_ack(3, sim::microseconds(200));
  EXPECT_EQ(t.bytes_sent(), 5 * 1500);
}

TEST(IterationTracker, BytesRatioFollowsAlgorithm1Line16) {
  IterationTracker t(configured(150'000));
  t.on_ack(10, sim::microseconds(100));  // 15,000 / 150,000
  EXPECT_DOUBLE_EQ(t.bytes_ratio(), 0.1);
  t.on_ack(40, sim::microseconds(200));
  EXPECT_DOUBLE_EQ(t.bytes_ratio(), 0.5);
}

TEST(IterationTracker, BytesRatioClampedToOne) {
  IterationTracker t(configured(15'000));
  t.on_ack(100, sim::microseconds(100));
  EXPECT_DOUBLE_EQ(t.bytes_ratio(), 1.0);
}

TEST(IterationTracker, GapTriggersBoundaryReset) {
  IterationTracker t(configured(150'000, sim::milliseconds(10)));
  t.on_ack(50, sim::milliseconds(1));
  t.on_ack(50, sim::milliseconds(2));
  EXPECT_EQ(t.iterations_seen(), 0);
  EXPECT_GT(t.bytes_ratio(), 0.9);
  // A gap above COMP_TIME marks the next iteration (Alg. 1 lines 10-13).
  // The triggering ACK's bytes belong to the new iteration: bytes_sent and
  // bytes_ratio both restart from that ACK, not from zero.
  t.on_ack(1, sim::milliseconds(50));
  EXPECT_EQ(t.iterations_seen(), 1);
  EXPECT_EQ(t.bytes_sent(), 1500);
  EXPECT_DOUBLE_EQ(t.bytes_ratio(), 1500.0 / 150'000.0);
}

TEST(IterationTracker, SubThresholdGapIsNotBoundary) {
  IterationTracker t(configured(150'000, sim::milliseconds(10)));
  t.on_ack(10, sim::milliseconds(1));
  t.on_ack(10, sim::milliseconds(9));  // 8 ms < 10 ms threshold
  EXPECT_EQ(t.iterations_seen(), 0);
  EXPECT_EQ(t.bytes_sent(), 20 * 1500);
}

TEST(IterationTracker, FirstAckNeverBoundary) {
  IterationTracker t(configured(150'000, sim::milliseconds(1)));
  t.on_ack(10, sim::seconds(100));  // huge absolute time, no predecessor
  EXPECT_EQ(t.iterations_seen(), 0);
}

TEST(IterationTracker, ZeroOrNegativeAcksIgnored) {
  IterationTracker t(configured());
  t.on_ack(0, sim::milliseconds(1));
  t.on_ack(-3, sim::milliseconds(2));
  EXPECT_EQ(t.bytes_sent(), 0);
}

TEST(IterationTracker, ConfiguredModeIsCalibratedImmediately) {
  IterationTracker t(configured());
  EXPECT_TRUE(t.calibrated());
  EXPECT_EQ(t.total_bytes(), 150'000);
}

/// Feeds the tracker a synthetic training pattern: bursts of `acks_per_iter`
/// ACKs 1 ms apart separated by `gap`.
void feed_iterations(IterationTracker& t, int iterations, int acks_per_iter,
                     sim::SimTime gap, sim::SimTime& now) {
  for (int it = 0; it < iterations; ++it) {
    for (int a = 0; a < acks_per_iter; ++a) {
      now += sim::milliseconds(1);
      t.on_ack(1, now);
    }
    now += gap;
  }
}

TEST(IterationTracker, AutoLearnsTotalBytesAndCompTime) {
  TrackerConfig cfg;  // total_bytes = comp_time = 0 -> learning mode
  cfg.learn_iterations = 2;
  cfg.learn_min_gap = sim::milliseconds(5);
  IterationTracker t(cfg);
  EXPECT_FALSE(t.calibrated());

  sim::SimTime now = 0;
  feed_iterations(t, 4, 100, sim::milliseconds(200), now);

  EXPECT_TRUE(t.calibrated());
  EXPECT_EQ(t.total_bytes(), 100 * 1500);
  // Learned threshold = smallest observed gap * safety(0.5) ~ 100 ms.
  EXPECT_NEAR(sim::to_milliseconds(t.comp_time()), 100.0, 5.0);
}

TEST(IterationTracker, LearningIgnoresPartialFirstBurst) {
  TrackerConfig cfg;
  cfg.learn_iterations = 2;
  cfg.learn_min_gap = sim::milliseconds(5);
  IterationTracker t(cfg);

  sim::SimTime now = 0;
  // Partial first burst (flow created mid-iteration): only 10 ACKs.
  feed_iterations(t, 1, 10, sim::milliseconds(200), now);
  feed_iterations(t, 3, 100, sim::milliseconds(200), now);
  EXPECT_TRUE(t.calibrated());
  EXPECT_EQ(t.total_bytes(), 100 * 1500);
}

TEST(IterationTracker, RatioIsZeroWhileLearning) {
  TrackerConfig cfg;  // learning mode
  IterationTracker t(cfg);
  sim::SimTime now = 0;
  feed_iterations(t, 1, 50, sim::milliseconds(0), now);
  EXPECT_DOUBLE_EQ(t.bytes_ratio(), 0.0)
      << "uncalibrated flows must stay at F(0) = Intercept";
}

TEST(IterationTracker, UsableAfterLearning) {
  TrackerConfig cfg;
  cfg.learn_iterations = 2;
  cfg.learn_min_gap = sim::milliseconds(5);
  IterationTracker t(cfg);
  sim::SimTime now = 0;
  feed_iterations(t, 4, 100, sim::milliseconds(200), now);
  ASSERT_TRUE(t.calibrated());
  // The first ACK after the gap triggers the boundary reset and its bytes
  // are credited to the fresh iteration, so the ratio restarts from one
  // ACK's worth rather than zero.
  now += sim::milliseconds(1);
  t.on_ack(1, now);
  EXPECT_DOUBLE_EQ(t.bytes_ratio(), 1500.0 / 150'000.0);
  now += sim::milliseconds(1);
  t.on_ack(50, now);
  EXPECT_NEAR(t.bytes_ratio(), 0.51, 0.02);
}

// ------------------------------------------------------------- MltcpGain

TEST(MltcpGain, GainIsInterceptAtIterationStart) {
  MltcpGain gain(std::make_shared<LinearAggressiveness>(), configured());
  EXPECT_DOUBLE_EQ(gain.gain(), 0.25);
}

TEST(MltcpGain, GainGrowsWithProgress) {
  MltcpGain gain(std::make_shared<LinearAggressiveness>(),
                 configured(150'000));
  tcp::AckContext ctx;
  ctx.num_acked = 50;
  ctx.now = sim::milliseconds(1);
  gain.on_ack(ctx);  // 75,000 / 150,000 = 0.5
  EXPECT_DOUBLE_EQ(gain.gain(), 1.75 * 0.5 + 0.25);
}

TEST(MltcpGain, ResetsAtBoundary) {
  MltcpGain gain(std::make_shared<LinearAggressiveness>(),
                 configured(150'000, sim::milliseconds(10)));
  tcp::AckContext ctx;
  ctx.num_acked = 100;
  ctx.now = sim::milliseconds(1);
  gain.on_ack(ctx);
  EXPECT_DOUBLE_EQ(gain.gain(), 2.0);
  ctx.num_acked = 1;
  ctx.now = sim::milliseconds(100);
  gain.on_ack(ctx);
  // The boundary ACK restarts the ratio at its own 1500 bytes:
  // F(1500/150000) = 1.75 * 0.01 + 0.25.
  EXPECT_DOUBLE_EQ(gain.gain(), 1.75 * 0.01 + 0.25);
}

// -------------------------------------------------------------- factories

TEST(Factories, MltcpRenoNameAndIndependentTrackers) {
  MltcpConfig cfg;
  cfg.tracker = configured();
  auto factory = mltcp_reno_factory(cfg);
  auto cc1 = factory();
  auto cc2 = factory();
  EXPECT_NE(cc1.get(), cc2.get());
  EXPECT_EQ(cc1->name(), "mltcp-reno[linear(1.75,0.25)]");

  // Trackers are per-flow: advancing one must not affect the other.
  tcp::AckContext ctx;
  ctx.num_acked = 50;
  ctx.now = sim::milliseconds(1);
  cc1->window_gain().on_ack(ctx);
  EXPECT_GT(cc1->window_gain().gain(), cc2->window_gain().gain());
}

TEST(Factories, SharedAggressivenessFunctionAcrossFlows) {
  // §3.1 requirement (iii): all flows employ the same F.
  MltcpConfig cfg;
  cfg.tracker = configured();
  auto f = std::shared_ptr<const AggressivenessFunction>(
      make_figure3_function(2).release());
  auto factory = mltcp_reno_factory(cfg, f);
  auto cc = factory();
  EXPECT_NE(cc->name().find("F2"), std::string::npos);
}

TEST(Factories, DctcpVariantsWantEcn) {
  MltcpConfig cfg;
  cfg.tracker = configured();
  EXPECT_TRUE(make_mltcp_dctcp(cfg)->wants_ecn());
  EXPECT_FALSE(make_mltcp_reno(cfg)->wants_ecn());
  EXPECT_FALSE(make_mltcp_cubic(cfg)->wants_ecn());
}

TEST(Factories, PlainBaselinesHaveUnitGain) {
  EXPECT_DOUBLE_EQ(reno_factory()()->window_gain().gain(), 1.0);
  EXPECT_DOUBLE_EQ(cubic_factory()()->window_gain().gain(), 1.0);
  EXPECT_DOUBLE_EQ(dctcp_factory()()->window_gain().gain(), 1.0);
}

TEST(Factories, LinearFunctionFromConfig) {
  MltcpConfig cfg;
  cfg.slope = 3.0;
  cfg.intercept = 0.5;
  auto f = make_linear_function(cfg);
  EXPECT_DOUBLE_EQ((*f)(1.0), 3.5);
}

}  // namespace
}  // namespace mltcp::core
