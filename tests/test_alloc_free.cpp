// Allocation accounting for the event engine: after warmup, the
// schedule/fire, timer-rearm and cancel cycles must not touch the heap at
// all. Counts every global operator new by replacing it, so any hidden
// allocation on the hot path — a std::function fallback, a node-based
// container, a vector regrowth — fails the test instead of shipping as a
// per-event cost.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>

#include "net/node.hpp"
#include "net/queue.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n > 0 ? n : 1);
}
}  // namespace

// Replacements for the throwing and sized forms; the nothrow forms route
// through these per the standard. Aligned forms are left alone — the engine
// never over-aligns (EventCallback rejects captures aligned beyond 8).
void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mltcp {
namespace {

/// Packet-scale capture: the size class of the propagation-delivery closures
/// the simulator schedules three times per packet (Node* + 72-byte Packet).
struct PacketScaleCapture {
  std::int64_t payload[9];
  std::int64_t* sink;
  void operator()() const { *sink += payload[0]; }
};
static_assert(sizeof(PacketScaleCapture) == 80);
static_assert(sizeof(PacketScaleCapture) <= sim::kInlineCallbackCapacity);
static_assert(std::is_trivially_copyable_v<PacketScaleCapture>);

TEST(AllocFree, CounterSeesHeapFallback) {
  // Negative control: an oversized capture must take the heap path, proving
  // the counter actually observes engine allocations.
  sim::EventQueue q;
  struct Oversized {
    char bytes[sim::kInlineCallbackCapacity + 8];
    void operator()() const {}
  };
  const std::uint64_t before = g_alloc_count.load();
  q.schedule(1, Oversized{});
  q.pop_and_run();
  EXPECT_GT(g_alloc_count.load(), before);
}

TEST(AllocFree, OneShotScheduleFireCycleIsAllocationFree) {
  sim::EventQueue q;
  std::int64_t sink = 0;
  const auto cycle = [&q, &sink](int iters) {
    sim::SimTime now = 0;
    for (int i = 0; i < iters; ++i) {
      PacketScaleCapture c{};
      c.payload[0] = i;
      c.sink = &sink;
      q.schedule(now + 1 + (i * 37) % 101, c);
      if (i >= 32) now = q.pop_and_run();  // hold ~32 in flight
    }
    while (!q.empty()) q.pop_and_run();
  };
  cycle(4096);  // warmup: heap, slot chunks and free list reach steady state
  const std::uint64_t before = g_alloc_count.load();
  cycle(4096);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << "schedule/fire cycle allocated on the steady-state path";
  EXPECT_GT(sink, 0);
}

TEST(AllocFree, TimerRearmStormIsAllocationFree) {
  sim::EventQueue q;
  std::int64_t fired = 0;
  sim::QueueTimer rto(q, [&fired] { ++fired; });
  sim::SimTime now = 0;
  const auto cycle = [&](int iters) {
    for (int i = 0; i < iters; ++i) {
      rto.arm(now + 1'000'000);
      q.schedule(now + 1, [] {});
      now = q.pop_and_run();
    }
  };
  cycle(20'000);  // warmup covers lazy-compaction growth and shrink cycles
  const std::uint64_t before = g_alloc_count.load();
  cycle(20'000);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u) << "timer rearm allocated";
  EXPECT_EQ(fired, 0);
  rto.cancel();
  while (!q.empty()) q.pop_and_run();
}

TEST(AllocFree, CancelHeavyCycleIsAllocationFree) {
  sim::EventQueue q;
  sim::SimTime now = 0;
  const auto cycle = [&](int iters) {
    for (int i = 0; i < iters; ++i) {
      const sim::EventId id = q.schedule(now + 1'000'000, [] {});
      q.cancel(id);
      q.schedule(now + 1, [] {});
      now = q.pop_and_run();
    }
  };
  cycle(20'000);
  const std::uint64_t before = g_alloc_count.load();
  cycle(20'000);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u) << "cancel/reschedule cycle allocated";
  EXPECT_TRUE(q.empty());
}

TEST(AllocFree, ForwardingPathSteadyStateIsAllocationFree) {
  // The full packet path — Host::send, queue admission (ring storage under
  // a busy transmitter), transmission timer, propagation closure, switch
  // forwarding, handler demux — must run allocation-free once the rings,
  // the event-engine slots and the route tables have reached their working
  // sizes. Bursts of 4 keep the link busy so packets actually rest in the
  // PacketRing instead of taking the idle-transmitter bypass.
  sim::Simulator sim;
  net::Topology topo(sim);
  net::Host* a = topo.add_host("a");
  net::Host* b = topo.add_host("b");
  net::Switch* s = topo.add_switch("s");
  const net::QueueFactory qf = net::make_droptail_factory(64 * 1500);
  topo.connect(*a, *s, 1e9, sim::microseconds(5), qf);
  topo.connect(*s, *b, 1e9, sim::microseconds(5), qf);
  topo.build_routes();

  constexpr int kBurst = 4;
  constexpr int kWarmupRounds = 512;
  constexpr int kMeasuredRounds = 512;
  int rounds = 0;
  int pending = 0;
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  const auto burst = [&](net::Host& from, net::NodeId to) {
    for (int i = 0; i < kBurst; ++i) {
      net::Packet p;
      p.flow = 1;
      p.dst = to;
      p.seq = rounds * kBurst + i;
      from.send(p);
    }
  };
  const auto on_burst_done = [&](net::Host& replier, net::NodeId to) {
    if (++pending < kBurst) return;
    pending = 0;
    ++rounds;
    if (rounds == kWarmupRounds) before = g_alloc_count.load();
    if (rounds == kWarmupRounds + kMeasuredRounds) {
      after = g_alloc_count.load();
      return;  // Stop bouncing; the simulator drains and finishes.
    }
    burst(replier, to);
  };
  a->register_flow(1, [&](const net::Packet&) { on_burst_done(*a, b->id()); });
  b->register_flow(1, [&](const net::Packet&) { on_burst_done(*b, a->id()); });

  burst(*a, b->id());
  sim.run();
  ASSERT_EQ(rounds, kWarmupRounds + kMeasuredRounds);
  EXPECT_EQ(after - before, 0u)
      << "forwarding path allocated on the steady-state path";
  EXPECT_EQ(s->forwarded_packets(),
            static_cast<std::int64_t>(rounds) * kBurst);
  EXPECT_EQ(s->routeless_drops(), 0);
}

}  // namespace
}  // namespace mltcp
