// Flow-level backend tests: the max-min allocation must reproduce the
// analytic fair shares (weighted by MLTCP's aggressiveness function), route
// resolution must agree with the packet backend's ECMP hash, faults must
// stall/derate/reroute fluid flows the way they kill packets, channels must
// keep connection FIFO semantics, campaign output must stay byte-identical
// across thread counts, and a small-topology run must land within a stated
// tolerance of the packet backend.

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/aggressiveness.hpp"
#include "core/mltcp.hpp"
#include "flowsim/flow_simulator.hpp"
#include "net/topology.hpp"
#include "pdes/partition.hpp"
#include "pdes/sharded_runner.hpp"
#include "runner/campaign.hpp"
#include "runner/sinks.hpp"
#include "scenario/engine.hpp"
#include "scenario/scenario.hpp"
#include "sim/indexed_heap.hpp"
#include "sim/simulator.hpp"
#include "tcp/reno.hpp"
#include "traffic/jobs.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"

namespace mltcp {
namespace {

tcp::CcFactory reno() {
  return [] { return std::make_unique<tcp::RenoCC>(); };
}

/// Dumbbell world with the flow-level backend installed.
struct FluidRig {
  sim::Simulator sim;
  net::Dumbbell d;
  std::unique_ptr<flowsim::FlowSimulator> fs;
  workload::Cluster cluster{sim};

  explicit FluidRig(int hosts_per_side = 2,
                    flowsim::FlowSimConfig cfg = {}) {
    net::DumbbellConfig dc;
    dc.hosts_per_side = hosts_per_side;
    d = net::make_dumbbell(sim, dc);
    fs = std::make_unique<flowsim::FlowSimulator>(sim, *d.topology, cfg);
    cluster.set_backend(fs.get());
  }
};

// ------------------------------------------------------------ max-min core

TEST(FlowsimMaxMin, EqualShareOnSharedBottleneck) {
  FluidRig rig;
  workload::Channel* a =
      rig.cluster.add_channel({rig.d.left[0], rig.d.right[0], 0}, reno());
  workload::Channel* b =
      rig.cluster.add_channel({rig.d.left[1], rig.d.right[1], 0}, reno());

  const std::int64_t bytes = 10'000'000;
  sim::SimTime done_a = -1;
  sim::SimTime done_b = -1;
  a->send_message(bytes, [&](sim::SimTime t) { done_a = t; });
  b->send_message(bytes, [&](sim::SimTime t) { done_b = t; });
  rig.sim.run_until(sim::seconds(5));

  ASSERT_GT(done_a, 0);
  ASSERT_GT(done_b, 0);
  // Two equal flows split the 1 Gb/s bottleneck: 10 MB at 0.5 Gb/s = 160 ms
  // (plus microseconds of propagation).
  const double expect = 8.0 * static_cast<double>(bytes) / 0.5e9;
  EXPECT_NEAR(sim::to_seconds(done_a), expect, 0.01 * expect);
  EXPECT_NEAR(sim::to_seconds(done_b), expect, 0.01 * expect);
}

TEST(FlowsimMaxMin, NonBottleneckedFlowsRunAtAccessRate) {
  // Opposite directions: each flow has its own bottleneck direction, so
  // both run at the full 1 Gb/s.
  FluidRig rig;
  workload::Channel* fwd =
      rig.cluster.add_channel({rig.d.left[0], rig.d.right[0], 0}, reno());
  workload::Channel* rev =
      rig.cluster.add_channel({rig.d.right[1], rig.d.left[1], 0}, reno());
  sim::SimTime done_f = -1;
  sim::SimTime done_r = -1;
  fwd->send_message(10'000'000, [&](sim::SimTime t) { done_f = t; });
  rev->send_message(10'000'000, [&](sim::SimTime t) { done_r = t; });
  rig.sim.run_until(sim::seconds(5));
  const double expect = 8.0 * 10'000'000 / 1e9;
  ASSERT_GT(done_f, 0);
  ASSERT_GT(done_r, 0);
  EXPECT_NEAR(sim::to_seconds(done_f), expect, 0.01 * expect);
  EXPECT_NEAR(sim::to_seconds(done_r), expect, 0.01 * expect);
}

TEST(FlowsimMaxMin, WeightedShareFollowsAggressivenessFunction) {
  // A constant-F MLTCP channel against a plain one: the fluid allocation
  // must split the bottleneck F : 1.
  FluidRig rig;
  auto f3 = std::make_shared<core::CustomAggressiveness>(
      [](double) { return 3.0; }, "const3");
  workload::Channel* heavy = rig.cluster.add_channel(
      {rig.d.left[0], rig.d.right[0], 0},
      core::mltcp_reno_factory(core::MltcpConfig{}, f3));
  workload::Channel* light =
      rig.cluster.add_channel({rig.d.left[1], rig.d.right[1], 0}, reno());

  heavy->send_message(50'000'000, [](sim::SimTime) {});
  light->send_message(50'000'000, [](sim::SimTime) {});
  rig.sim.run_until(sim::milliseconds(50));

  const auto rates = rig.fs->current_rates();
  ASSERT_EQ(rates.size(), 2u);
  const double heavy_rate =
      rates[0].flow == heavy->id() ? rates[0].rate_bps : rates[1].rate_bps;
  const double light_rate =
      rates[0].flow == light->id() ? rates[0].rate_bps : rates[1].rate_bps;
  EXPECT_NEAR(heavy_rate, 0.75e9, 1e6);
  EXPECT_NEAR(light_rate, 0.25e9, 1e6);
}

TEST(FlowsimMaxMin, LinearRampRaisesWeightWithProgress) {
  // The paper's linear F: a flow further into its message carries a higher
  // weight. Start one flow half a message ahead of the other and compare
  // the weights the allocator assigns.
  FluidRig rig;
  const core::MltcpConfig cfg;
  workload::Channel* ahead = rig.cluster.add_channel(
      {rig.d.left[0], rig.d.right[0], 0}, core::mltcp_reno_factory(cfg));
  workload::Channel* behind = rig.cluster.add_channel(
      {rig.d.left[1], rig.d.right[1], 0}, core::mltcp_reno_factory(cfg));

  ahead->send_message(10'000'000, [](sim::SimTime) {});
  rig.sim.run_until(sim::milliseconds(60));  // ~60% through at full rate.
  behind->send_message(10'000'000, [](sim::SimTime) {});
  rig.sim.run_until(sim::milliseconds(80));

  const auto rates = rig.fs->current_rates();
  ASSERT_EQ(rates.size(), 2u);
  const flowsim::FlowRate& ra =
      rates[0].flow == ahead->id() ? rates[0] : rates[1];
  const flowsim::FlowRate& rb =
      rates[0].flow == behind->id() ? rates[0] : rates[1];
  EXPECT_GT(ra.weight, rb.weight)
      << "F(bytes_ratio) must favor the flow closer to completion";
  EXPECT_GT(ra.rate_bps, rb.rate_bps);
}

TEST(FlowsimMaxMin, ChannelIsFifoLikeAConnection) {
  FluidRig rig;
  workload::Channel* ch =
      rig.cluster.add_channel({rig.d.left[0], rig.d.right[0], 0}, reno());
  std::vector<int> order;
  sim::SimTime first = -1;
  sim::SimTime second = -1;
  ch->send_message(10'000'000, [&](sim::SimTime t) {
    order.push_back(1);
    first = t;
  });
  ch->send_message(10'000'000, [&](sim::SimTime t) {
    order.push_back(2);
    second = t;
  });
  rig.sim.run_until(sim::seconds(5));
  ASSERT_EQ(order, (std::vector<int>{1, 2}));
  // Sole flow on the bottleneck: each message serializes at 1 Gb/s, the
  // second strictly after the first.
  const double one = 8.0 * 10'000'000 / 1e9;
  EXPECT_NEAR(sim::to_seconds(first), one, 0.01 * one);
  EXPECT_NEAR(sim::to_seconds(second), 2 * one, 0.01 * one);
}

// --------------------------------------------------------------- ECMP parity

TEST(FlowsimEcmp, RouteChoiceMatchesPacketBackendHash) {
  // Blackhole one tor->spine link: exactly the flows whose packet-backend
  // ECMP hash (Switch::route_for_flow) picks that spine must stall.
  sim::Simulator sim;
  net::LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 2;
  cfg.spines = 2;
  auto ls = net::make_leaf_spine(sim, cfg);
  flowsim::FlowSimulator fs(sim, *ls.topology);
  workload::Cluster cluster(sim);
  cluster.set_backend(&fs);

  net::Host* src = ls.racks[0][0];
  net::Host* dst = ls.racks[1][0];
  net::Link* poisoned = ls.topology->link_between(*ls.tors[0], *ls.spines[0]);
  ASSERT_NE(poisoned, nullptr);
  poisoned->set_blackhole(true);
  ls.topology->notify_changed();

  std::vector<workload::Channel*> chans;
  std::vector<bool> done;
  for (int i = 0; i < 8; ++i) {
    workload::Channel* ch = cluster.add_channel({src, dst, 0}, reno());
    const std::size_t idx = done.size();
    done.push_back(false);
    ch->send_message(1'000'000, [&done, idx](sim::SimTime) {
      done[idx] = true;
    });
    chans.push_back(ch);
  }
  sim.run_until(sim::seconds(10));

  int stalled = 0;
  for (std::size_t i = 0; i < chans.size(); ++i) {
    const net::Link* packet_choice =
        ls.tors[0]->route_for_flow(dst->id(), chans[i]->id());
    if (packet_choice == poisoned) {
      ++stalled;
      EXPECT_FALSE(done[i]) << "flow " << chans[i]->id()
                            << " hashes into the blackhole and must stall";
    } else {
      EXPECT_TRUE(done[i]) << "flow " << chans[i]->id()
                           << " avoids the blackhole and must finish";
    }
  }
  EXPECT_GT(stalled, 0) << "hash never picked the poisoned spine (test vacuous)";
  EXPECT_LT(stalled, 8) << "hash always picked the poisoned spine";
}

// -------------------------------------------------------------------- faults

TEST(FlowsimFaults, BlackholeStallsAndResumeCompletes) {
  FluidRig rig;
  workload::Channel* ch =
      rig.cluster.add_channel({rig.d.left[0], rig.d.right[0], 0}, reno());
  sim::SimTime done = -1;
  ch->send_message(10'000'000, [&](sim::SimTime t) { done = t; });

  rig.sim.run_until(sim::milliseconds(20));  // ~25% transferred.
  rig.d.bottleneck->set_blackhole(true);
  rig.d.topology->notify_changed();
  rig.sim.run_until(sim::milliseconds(500));
  EXPECT_EQ(done, -1) << "flow completed through a blackholed bottleneck";
  EXPECT_GE(rig.fs->stats().stalls, 1);

  rig.d.bottleneck->set_blackhole(false);
  rig.d.topology->notify_changed();
  rig.sim.run_until(sim::seconds(5));
  ASSERT_GT(done, 0);
  // 80 ms of transfer work + the 480 ms stall window.
  const double expect = 0.08 + 0.48;
  EXPECT_NEAR(sim::to_seconds(done), expect, 0.01);
}

TEST(FlowsimFaults, DropBurstDeratesCapacity) {
  FluidRig rig;
  workload::Channel* ch =
      rig.cluster.add_channel({rig.d.left[0], rig.d.right[0], 0}, reno());
  sim::SimTime done = -1;
  rig.d.bottleneck->set_fault_drop(0.5, 7);
  rig.d.topology->notify_changed();
  ch->send_message(10'000'000, [&](sim::SimTime t) { done = t; });
  rig.sim.run_until(sim::seconds(5));
  ASSERT_GT(done, 0);
  // Half the packets die: the goodput model halves the link.
  const double expect = 8.0 * 10'000'000 / 0.5e9;
  EXPECT_NEAR(sim::to_seconds(done), expect, 0.01 * expect);
}

TEST(FlowsimFaults, LinkDownReroutesOverSurvivingSpine) {
  sim::Simulator sim;
  net::LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 2;
  cfg.spines = 2;
  auto ls = net::make_leaf_spine(sim, cfg);
  flowsim::FlowSimulator fs(sim, *ls.topology);
  workload::Cluster cluster(sim);
  cluster.set_backend(&fs);

  // Find a flow id the hash sends over spine0, then cut spine0 mid-flight:
  // the incremental route repair must push it onto spine1 and it must still
  // complete.
  net::Host* src = ls.racks[0][0];
  net::Host* dst = ls.racks[1][0];
  net::Link* doomed = ls.topology->link_between(*ls.tors[0], *ls.spines[0]);
  workload::Channel* victim = nullptr;
  sim::SimTime done = -1;
  for (int i = 0; i < 8 && victim == nullptr; ++i) {
    workload::Channel* ch = cluster.add_channel({src, dst, 0}, reno());
    if (ls.tors[0]->route_for_flow(dst->id(), ch->id()) == doomed) {
      victim = ch;
    }
  }
  ASSERT_NE(victim, nullptr) << "no flow id hashed onto spine0";
  victim->send_message(50'000'000, [&](sim::SimTime t) { done = t; });
  sim.run_until(sim::milliseconds(10));
  ls.topology->set_link_pair_state(*ls.tors[0], *ls.spines[0], false);
  sim.run_until(sim::seconds(10));
  ASSERT_GT(done, 0) << "flow did not survive the spine failover";
  EXPECT_GE(fs.stats().reroutes, 1);
  EXPECT_EQ(fs.stats().stalls, 0)
      << "repair left a live path; the flow must not stall";
}

// ------------------------------------------------------ workload integration

TEST(FlowsimWorkload, TrainingJobCompletesIterations) {
  FluidRig rig;
  workload::JobSpec spec;
  spec.name = "train";
  spec.flows = {{rig.d.left[0], rig.d.right[0], 1'000'000},
                {rig.d.left[1], rig.d.right[1], 1'000'000}};
  spec.compute_time = sim::milliseconds(5);
  spec.max_iterations = 10;
  spec.cc = reno();
  workload::Job* job = rig.cluster.add_job(spec);
  rig.cluster.start_all();
  rig.sim.run_until(sim::seconds(5));

  EXPECT_EQ(job->completed_iterations(), 10);
  // Comm phase: two 1 MB flows split the bottleneck, 16 ms each.
  const auto comm = job->comm_times_seconds();
  ASSERT_FALSE(comm.empty());
  EXPECT_NEAR(comm.front(), 0.016, 0.002);
  EXPECT_EQ(rig.fs->stats().messages_completed, 20);
}

TEST(FlowsimWorkload, ServingJobFanoutOnFluidBackend) {
  FluidRig rig(4);
  traffic::ServingConfig cfg;
  cfg.frontend = rig.d.left[0];
  cfg.backends = {rig.d.right[0], rig.d.right[1], rig.d.right[2]};
  cfg.requests_per_second = 200.0;
  cfg.fanout = 2;
  cfg.stop_time = sim::milliseconds(500);
  cfg.cc = reno();
  traffic::ServingJob serving(rig.sim, rig.cluster, cfg);
  serving.start();
  rig.sim.run_until(sim::seconds(5));
  EXPECT_GT(serving.requests_issued(), 50u);
  EXPECT_EQ(serving.requests_completed(), serving.requests_issued());
}

// ---------------------------------------------------------------- determinism

/// One faulted flowsim run reported as CSV rows (mirrors the scenario
/// suite's faulted_run, with the fluid backend installed).
void fluid_faulted_run(std::size_t run_index, std::uint64_t seed,
                       runner::CsvSink& csv) {
  FluidRig rig;
  workload::JobSpec spec;
  spec.name = "j0";
  spec.flows = {{rig.d.left[0], rig.d.right[0], 600'000}};
  spec.compute_time = sim::milliseconds(5);
  spec.max_iterations = 40;
  spec.cc = core::mltcp_reno_factory();
  rig.cluster.add_job(spec);

  scenario::Scenario s;
  s.link_down(sim::milliseconds(40), "swL", "swR");
  s.link_up(sim::milliseconds(120), "swL", "swR");
  s.drop_burst(sim::milliseconds(200), "swL", "swR", 0.02, seed);
  s.drop_burst(sim::milliseconds(400), "swL", "swR", 0.0);
  s.background_burst(sim::milliseconds(350), 0, 1, 300'000);

  scenario::ScenarioEngine engine(rig.sim, *rig.d.topology, rig.cluster);
  engine.install(s);
  rig.cluster.start_all();
  rig.sim.run_until(sim::seconds(20));

  const workload::Job* job = rig.cluster.job(0);
  ASSERT_GT(job->completed_iterations(), 0);
  csv.append(run_index,
             std::vector<double>{
                 static_cast<double>(run_index),
                 static_cast<double>(job->completed_iterations()),
                 sim::to_seconds(job->iterations().back().iter_end),
                 static_cast<double>(rig.fs->stats().messages_completed),
                 static_cast<double>(rig.fs->stats().recomputes),
                 static_cast<double>(engine.applied_events())});
}

std::string fluid_faulted_campaign(int threads) {
  runner::CsvSink csv(
      {"run", "iterations", "end_s", "messages", "recomputes", "events"});
  std::vector<std::uint64_t> seeds = {21, 22, 23, 24, 25, 26};
  runner::CampaignOptions opts;
  opts.threads = threads;
  runner::run_campaign<std::uint64_t, int>(
      seeds,
      [&](const std::uint64_t& seed, std::size_t i) {
        fluid_faulted_run(i, seed, csv);
        return 0;
      },
      opts);
  return csv.serialize();
}

TEST(FlowsimDeterminism, FaultedCampaignByteIdenticalAcrossThreadCounts) {
  const std::string serial = fluid_faulted_campaign(1);
  EXPECT_NE(serial.find("\n5,"), std::string::npos);
  const std::string parallel = fluid_faulted_campaign(4);
  EXPECT_EQ(parallel, serial)
      << "fluid allocation must not depend on campaign scheduling";
}

// ------------------------------------------------------ incremental solver

/// Bit-exact trace of the faulted training scenario: iteration end times as
/// raw IEEE-754 bit patterns plus the backend's message/recompute counters.
/// Any arithmetic divergence between the incremental and full-recompute
/// solvers shows up as a byte difference.
std::string faulted_trace(bool full_recompute) {
  flowsim::FlowSimConfig cfg;
  cfg.full_recompute = full_recompute;
  FluidRig rig(2, cfg);
  workload::JobSpec spec;
  spec.name = "j0";
  spec.flows = {{rig.d.left[0], rig.d.right[0], 600'000},
                {rig.d.left[1], rig.d.right[1], 600'000}};
  spec.compute_time = sim::milliseconds(5);
  spec.max_iterations = 40;
  spec.cc = core::mltcp_reno_factory();
  rig.cluster.add_job(spec);

  scenario::Scenario s;
  s.link_down(sim::milliseconds(40), "swL", "swR");
  s.link_up(sim::milliseconds(120), "swL", "swR");
  s.drop_burst(sim::milliseconds(200), "swL", "swR", 0.02, 23);
  s.drop_burst(sim::milliseconds(400), "swL", "swR", 0.0);
  s.background_burst(sim::milliseconds(350), 0, 1, 300'000);

  scenario::ScenarioEngine engine(rig.sim, *rig.d.topology, rig.cluster);
  engine.install(s);
  rig.cluster.start_all();
  rig.sim.run_until(sim::seconds(20));

  std::string out;
  char buf[64];
  for (const auto& it : rig.cluster.job(0)->iterations()) {
    const double end_s = sim::to_seconds(it.iter_end);
    std::uint64_t bits;
    std::memcpy(&bits, &end_s, sizeof bits);
    std::snprintf(buf, sizeof buf, "%016" PRIx64 "\n", bits);
    out += buf;
  }
  const auto& st = rig.fs->stats();
  std::snprintf(buf, sizeof buf, "msgs=%lld recomputes=%lld\n",
                static_cast<long long>(st.messages_completed),
                static_cast<long long>(st.recomputes));
  out += buf;
  return out;
}

TEST(FlowsimIncremental, FullRecomputeModeBitIdenticalOnFaultedRun) {
  const std::string incremental = faulted_trace(false);
  const std::string full = faulted_trace(true);
  EXPECT_EQ(incremental, full)
      << "the dirty-set solver must reproduce the reference global "
         "waterfill bit-for-bit, faults included";
}

TEST(FlowsimIncremental, RandomizedDifferentialMatchesReferenceWaterfill) {
  // >= 10k mixed arrival/completion/fault/weight-refresh events on a
  // leaf-spine fabric with mixed Reno/MLTCP channels; after every batch of
  // perturbations the incremental allocation must equal an independent
  // from-scratch waterfill (FlowSimulator::reference_rates) to 1e-9
  // relative — catching both dirty-set under-marking and stale caches.
  sim::Simulator sim;
  net::LeafSpineConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 4;
  cfg.spines = 2;
  cfg.host_rate_bps = 4e9;
  cfg.fabric_rate_bps = 1e9;
  auto ls = net::make_leaf_spine(sim, cfg);
  flowsim::FlowSimulator fs(sim, *ls.topology);
  workload::Cluster cluster(sim);
  cluster.set_backend(&fs);

  std::vector<net::Host*> hosts;
  for (const auto& rack : ls.racks) {
    hosts.insert(hosts.end(), rack.begin(), rack.end());
  }
  std::mt19937_64 rng(99);
  std::vector<workload::Channel*> chans;
  for (int i = 0; i < 48; ++i) {
    net::Host* src = hosts[rng() % hosts.size()];
    net::Host* dst = hosts[rng() % hosts.size()];
    while (dst == src) dst = hosts[rng() % hosts.size()];
    chans.push_back(cluster.add_channel(
        {src, dst, 0},
        i % 2 == 0 ? core::mltcp_reno_factory() : reno()));
  }
  std::vector<net::Link*> fabric;
  for (net::Switch* tor : ls.tors) {
    for (net::Switch* spine : ls.spines) {
      fabric.push_back(ls.topology->link_between(*tor, *spine));
    }
  }

  auto compare = [&] {
    const auto cur = fs.current_rates();
    const auto ref = fs.reference_rates();
    ASSERT_EQ(cur.size(), ref.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      ASSERT_EQ(cur[i].flow, ref[i].flow);
      const double tol = 1e-9 * std::max(1.0, std::abs(ref[i].rate_bps));
      ASSERT_NEAR(cur[i].rate_bps, ref[i].rate_bps, tol)
          << "flow " << cur[i].flow << " diverged from the reference "
          << "waterfill after step";
    }
  };

  sim::SimTime now = 0;
  int step = 0;
  bool faulted = false;
  while (fs.stats().messages_posted + fs.stats().messages_completed <
         10'000) {
    ++step;
    const int bursts = 1 + static_cast<int>(rng() % 3);
    for (int b = 0; b < bursts; ++b) {
      const std::int64_t bytes =
          20'000 + static_cast<std::int64_t>(rng() % 180'000);
      chans[rng() % chans.size()]->send_message(bytes, [](sim::SimTime) {});
    }
    if (rng() % 48 == 0) {
      net::Link* l = fabric[rng() % fabric.size()];
      l->set_blackhole(!faulted);
      ls.topology->notify_changed();
      faulted = !faulted;
    } else if (rng() % 48 == 0) {
      net::Link* l = fabric[rng() % fabric.size()];
      l->set_fault_drop(faulted ? 0.0 : 0.3, 7);
      ls.topology->notify_changed();
    }
    now += sim::microseconds(200 + static_cast<sim::SimTime>(rng() % 2000));
    sim.run_until(now);
    if (step % 16 == 0) compare();
  }
  compare();
  EXPECT_GE(fs.stats().messages_posted + fs.stats().messages_completed,
            10'000u);
  EXPECT_GT(fs.stats().frozen_skips, 0)
      << "the dirty-set never skipped a frozen channel — the incremental "
         "path is not actually incremental";
}

// ---------------------------------------------------------- drain-event heap

struct HeapNode {
  sim::SimTime key = 0;  ///< Mirror of the key the heap currently holds.
  std::int32_t pos = -1;
  int id = 0;
};
struct HeapNodePos {
  std::int32_t& operator()(HeapNode* n) const { return n->pos; }
};

TEST(FlowsimHeap, RandomizedDifferentialAgainstOrderedSet) {
  // The drain index must agree with an ordered-set reference across a long
  // random mix of insert / re-key / remove / pop-min — the exact operation
  // set reallocate() and on_timer() drive it with.
  sim::IndexedMinHeap4<sim::SimTime, HeapNode*, HeapNodePos> heap;
  std::vector<HeapNode> nodes(512);
  for (int i = 0; i < 512; ++i) nodes[i].id = i;
  // Reference: (key, id) pairs, so min_key comparisons are exact even with
  // duplicate keys.
  std::set<std::pair<sim::SimTime, int>> ref;

  std::mt19937_64 rng(1234);
  for (int op = 0; op < 20'000; ++op) {
    HeapNode* n = &nodes[rng() % nodes.size()];
    switch (rng() % 4) {
      case 0:
      case 1: {  // Insert-or-rekey (the dominant operation).
        const sim::SimTime key = static_cast<sim::SimTime>(rng() % 1'000'000);
        if (n->pos >= 0) ref.erase({n->key, n->id});
        heap.update(n, key);
        n->key = key;
        ref.insert({key, n->id});
        break;
      }
      case 2: {  // Remove (drain transition / completion).
        if (n->pos >= 0) ref.erase({n->key, n->id});
        heap.remove(n);
        break;
      }
      case 3: {  // Pop-min (due processing).
        if (heap.empty()) break;
        ASSERT_EQ(heap.min_key(), ref.begin()->first);
        HeapNode* top = heap.pop_min();
        ASSERT_EQ(top->key, ref.begin()->first)
            << "popped item's key is not the reference minimum";
        ref.erase({top->key, top->id});
        break;
      }
    }
    ASSERT_EQ(heap.size(), ref.size());
    ASSERT_EQ(heap.contains(n), ref.count({n->key, n->id}) > 0);
  }
  while (!heap.empty()) {
    ASSERT_EQ(heap.min_key(), ref.begin()->first);
    HeapNode* top = heap.pop_min();
    ref.erase({top->key, top->id});
  }
  EXPECT_TRUE(ref.empty());
}

// ------------------------------------------------------- PDES composition

/// Quick Poisson matrix on the fluid backend, serial or under the
/// cooperative sharded runner; returns the completed-FCT vector.
std::vector<double> sharded_poisson_fcts(int shards) {
  sim::Simulator sim;
  net::LeafSpineConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 4;
  cfg.spines = 2;
  cfg.host_rate_bps = 4e9;
  cfg.fabric_rate_bps = 1e9;
  auto ls = net::make_leaf_spine(sim, cfg);
  flowsim::FlowSimulator fs(sim, *ls.topology);
  workload::Cluster cluster(sim);
  cluster.set_backend(&fs);

  std::unique_ptr<pdes::ShardedRunner> runner;
  pdes::Partition part;
  if (shards > 1) {
    pdes::PartitionOptions popts;
    popts.shards = shards;
    part = pdes::partition_topology(*ls.topology, popts);
    sim.configure_shards(part.shards);
    runner = std::make_unique<pdes::ShardedRunner>(
        sim, *ls.topology, part, pdes::ShardedRunner::Mode::kCooperative);
  }

  std::vector<net::Host*> hosts;
  for (const auto& rack : ls.racks) {
    hosts.insert(hosts.end(), rack.begin(), rack.end());
  }
  traffic::TrafficSource source(
      sim, cluster, hosts, traffic::SourceOptions{reno(), {}, {}});
  traffic::TrafficConfig tc;
  tc.pattern = traffic::Pattern::kPoisson;
  tc.size_dist = traffic::SizeDist::kPareto;
  tc.mean_bytes = 40'000;
  tc.flows_per_second = 2000.0;
  tc.start = 0;
  tc.stop = sim::seconds(1);
  tc.seed = 17;
  source.install(tc);

  const sim::SimTime horizon = tc.stop + sim::seconds(2);
  if (runner != nullptr) {
    runner->run_until(horizon);
  } else {
    sim.run_until(horizon);
  }
  return source.completed_fcts_seconds();
}

TEST(FlowsimDeterminism, ShardedCooperativeByteIdenticalToSerial) {
  // The fluid backend posts no link deliveries, so partitioning the fabric
  // must not move or reorder a single flowsim event: the FCT vector under
  // the cooperative sharded runner is bit-identical to the serial run.
  const std::vector<double> serial = sharded_poisson_fcts(1);
  ASSERT_GT(serial.size(), 1000u);
  const std::vector<double> sharded = sharded_poisson_fcts(3);
  EXPECT_EQ(serial, sharded);
}

// ------------------------------------------------------- packet-level parity

TEST(FlowsimParity, SmallTopologyIterationTimesMatchPacketBackend) {
  // Stated tolerance: mean iteration time within 25% of the packet backend
  // on a 2-flow dumbbell training job. The fluid model has no slow start,
  // loss recovery or queueing delay, so it runs slightly fast; the fidelity
  // gate (bench/fidelity_gate) tracks the same bound campaign-wide.
  auto run = [](bool fluid) {
    sim::Simulator sim;
    net::DumbbellConfig dc;
    dc.hosts_per_side = 2;
    auto d = net::make_dumbbell(sim, dc);
    std::unique_ptr<flowsim::FlowSimulator> fs;
    workload::Cluster cluster(sim);
    if (fluid) {
      fs = std::make_unique<flowsim::FlowSimulator>(sim, *d.topology);
      cluster.set_backend(fs.get());
    }
    workload::JobSpec spec;
    spec.name = "train";
    spec.flows = {{d.left[0], d.right[0], 2'000'000},
                  {d.left[1], d.right[1], 2'000'000}};
    spec.compute_time = sim::milliseconds(10);
    spec.max_iterations = 15;
    spec.cc = core::mltcp_reno_factory();
    workload::Job* job = cluster.add_job(spec);
    cluster.start_all();
    sim.run_until(sim::seconds(10));
    const auto times = job->iteration_times_seconds();
    const double mean =
        std::accumulate(times.begin(), times.end(), 0.0) /
        static_cast<double>(times.size());
    return std::pair<int, double>{job->completed_iterations(), mean};
  };
  const auto [packet_iters, packet_mean] = run(false);
  const auto [fluid_iters, fluid_mean] = run(true);
  ASSERT_EQ(packet_iters, 15);
  ASSERT_EQ(fluid_iters, 15);
  EXPECT_NEAR(fluid_mean, packet_mean, 0.25 * packet_mean)
      << "fluid iteration time drifted beyond the 25% parity bound";
}

}  // namespace
}  // namespace mltcp
