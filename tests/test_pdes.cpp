// Sharded-PDES tests: the conservative-lookahead parallel engine must be
// invisible in the results — 1-shard, N-shard cooperative and N-shard
// threaded runs of the same experiment produce identical model state (the
// byte-identity matrix), the partitioner must respect rack atomicity and
// co-location on arbitrary fabrics, and the cross-shard channel must keep
// its FIFO/LBTS contract under concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/topology.hpp"
#include "pdes/channel.hpp"
#include "pdes/partition.hpp"
#include "pdes/sharded_runner.hpp"
#include "scenario/engine.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "tcp/reno.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"

namespace mltcp {
namespace {

using pdes::Partition;
using pdes::PartitionOptions;

// ------------------------------------------------------------- partitioner

net::LeafSpineConfig leaf_spine_config(int racks, int hosts_per_rack,
                                       int spines) {
  net::LeafSpineConfig cfg;
  cfg.racks = racks;
  cfg.hosts_per_rack = hosts_per_rack;
  cfg.spines = spines;
  return cfg;
}

TEST(PdesPartition, RandomFabricsCoverEveryNodeOnceAndKeepRacksAtomic) {
  std::mt19937 rng(20240807);
  for (int trial = 0; trial < 24; ++trial) {
    const int racks = 2 + static_cast<int>(rng() % 5);
    const int hosts_per_rack = 1 + static_cast<int>(rng() % 4);
    const int spines = 1 + static_cast<int>(rng() % 3);
    const int shards = 1 + static_cast<int>(rng() % 6);

    sim::Simulator sim;
    auto ls = net::make_leaf_spine(
        sim, leaf_spine_config(racks, hosts_per_rack, spines));
    const net::Topology& topo = *ls.topology;

    PartitionOptions opts;
    opts.shards = shards;
    const Partition part = pdes::partition_topology(topo, opts);

    SCOPED_TRACE("racks=" + std::to_string(racks) +
                 " hosts=" + std::to_string(hosts_per_rack) +
                 " spines=" + std::to_string(spines) +
                 " shards=" + std::to_string(shards));

    // Every node is assigned to exactly one in-range shard.
    ASSERT_EQ(part.shard_of_node.size(),
              topo.hosts().size() + topo.switches().size());
    EXPECT_GE(part.shards, 1);
    EXPECT_LE(part.shards, shards);
    for (const int s : part.shard_of_node) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, part.shards);
    }

    // Rack atomicity: a host shares its shard with its ToR, so no
    // host-access link is ever cut.
    for (const net::Host* h : topo.hosts()) {
      ASSERT_NE(h->uplink(), nullptr);
      EXPECT_EQ(part.shard_of(h), part.shard_of(h->uplink()->destination()));
    }

    // Cut set: exactly the links whose endpoints land in different shards,
    // each with strictly positive lookahead.
    std::size_t expected_cuts = 0;
    for (std::size_t src = 0; src < topo.adjacency().size(); ++src) {
      for (const auto& [dst, link] : topo.adjacency()[src]) {
        if (part.shard_of_node[src] !=
            part.shard_of_node[static_cast<std::size_t>(dst)]) {
          ++expected_cuts;
        }
      }
    }
    EXPECT_EQ(part.cut_links.size(), expected_cuts);
    for (const pdes::CutLink& cut : part.cut_links) {
      EXPECT_NE(cut.src_shard, cut.dst_shard);
      EXPECT_GT(cut.link->propagation_delay(), 0);
      EXPECT_GE(part.min_lookahead, 1);
      EXPECT_LE(part.min_lookahead, cut.link->propagation_delay());
    }
    if (part.shards == 1) {
      EXPECT_TRUE(part.cut_links.empty());
    }

    // Determinism: the partition is a pure function of (topology, options).
    const Partition again = pdes::partition_topology(topo, opts);
    EXPECT_EQ(part.shard_of_node, again.shard_of_node);
    ASSERT_EQ(part.cut_links.size(), again.cut_links.size());
    for (std::size_t i = 0; i < part.cut_links.size(); ++i) {
      EXPECT_EQ(part.cut_links[i].link, again.cut_links[i].link);
    }
  }
}

TEST(PdesPartition, CoLocateMergesGroupsAcrossRacks) {
  sim::Simulator sim;
  auto ls = net::make_leaf_spine(sim, leaf_spine_config(4, 2, 2));
  PartitionOptions opts;
  opts.shards = 4;
  // Pin one sender per rack into a single set: all four racks collapse into
  // one group, so they must share a shard.
  opts.co_locate.push_back({ls.racks[0][0], ls.racks[1][0], ls.racks[2][0],
                            ls.racks[3][0]});
  const Partition part = pdes::partition_topology(*ls.topology, opts);
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(part.shard_of(ls.racks[0][0]), part.shard_of(ls.racks[r][0]));
  }
}

TEST(PdesPartition, ShardsFromEnvParsesAndDefaults) {
  ::unsetenv("MLTCP_SHARDS");
  EXPECT_EQ(pdes::shards_from_env(), 1);
  ::setenv("MLTCP_SHARDS", "4", 1);
  EXPECT_EQ(pdes::shards_from_env(), 4);
  ::setenv("MLTCP_SHARDS", "1", 1);
  EXPECT_EQ(pdes::shards_from_env(), 1);
  ::setenv("MLTCP_SHARDS", "0", 1);
  EXPECT_EQ(pdes::shards_from_env(), 1);
  ::unsetenv("MLTCP_SHARDS");
}

// ---------------------------------------------------------------- channel

TEST(PdesChannel, KeepsFifoOrderAndMonotoneLbts) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.hosts_per_side = 1;
  auto d = net::make_dumbbell(sim, cfg);
  pdes::CrossShardChannel ch(d.bottleneck, 0, 1, 0);

  net::Packet pkt{};
  ch.deliver(100, 7, d.right_switch, pkt);
  ch.deliver(250, 8, d.right_switch, pkt);
  ch.advance(400);
  ch.advance(300);  // Stale: must not lower the bound.
  EXPECT_EQ(ch.lbts(), 400);

  std::vector<pdes::Delivery> out;
  EXPECT_EQ(ch.drain(out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].when, 100);
  EXPECT_EQ(out[1].when, 250);
  EXPECT_EQ(out[0].key, 7u);
  EXPECT_EQ(out[1].key, 8u);
  EXPECT_EQ(ch.pushes(), 2u);
  EXPECT_GE(ch.null_updates(), 2u);
  EXPECT_EQ(ch.max_backlog(), 2u);

  ch.force_lbts(10);  // Barrier reset may lower.
  EXPECT_EQ(ch.lbts(), 10);
}

TEST(PdesChannel, ThreadedProducerConsumerPreservesStreamOrder) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.hosts_per_side = 1;
  auto d = net::make_dumbbell(sim, cfg);
  pdes::CrossShardChannel ch(d.bottleneck, 0, 1, 0);
  pdes::ShardSignal signal;
  ch.set_consumer_signal(&signal);

  constexpr int kPushes = 20000;
  std::thread producer([&] {
    net::Packet pkt{};
    for (int i = 0; i < kPushes; ++i) {
      ch.deliver(1000 + i, static_cast<std::uint64_t>(i), d.right_switch, pkt);
    }
    ch.advance(sim::kTimeInfinity);
  });

  std::vector<pdes::Delivery> got;
  while (got.size() < kPushes) {
    const std::uint64_t seen = signal.version();
    if (ch.drain(got) == 0 && got.size() < kPushes) signal.wait(seen);
  }
  producer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kPushes));
  for (int i = 0; i < kPushes; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].when, 1000 + i);
    EXPECT_EQ(got[static_cast<std::size_t>(i)].key,
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(ch.lbts(), sim::kTimeInfinity);
}

// ----------------------------------------------------- byte-identity matrix

enum class Exec { kSerial, kCooperative, kThreaded };

/// Full observable model state of one run: every iteration record of every
/// job plus every per-link / per-node counter. Any divergence between
/// execution modes — an event reordered, a packet dropped differently —
/// shows up here.
std::string digest(const workload::Cluster& cluster,
                   const net::Topology& topo) {
  std::ostringstream os;
  for (std::size_t j = 0; j < cluster.job_count(); ++j) {
    const workload::Job* job = cluster.job(j);
    os << "job " << j << ' ' << job->completed_iterations() << '\n';
    for (const workload::IterationRecord& r : job->iterations()) {
      os << r.index << ' ' << r.comm_start << ' ' << r.comm_end << ' '
         << r.iter_end << '\n';
    }
  }
  for (const auto& link : topo.links()) {
    os << "link " << link->bytes_transmitted() << ' '
       << link->packets_transmitted() << ' ' << link->fault_drops() << '\n';
  }
  for (const net::Host* h : topo.hosts()) {
    os << "host " << h->delivered_packets() << '\n';
  }
  for (const net::Switch* s : topo.switches()) {
    os << "switch " << s->forwarded_packets() << '\n';
  }
  return os.str();
}

void append_fcts(const traffic::TrafficSource* source, std::ostringstream& os) {
  ASSERT_NE(source, nullptr);
  os << "traffic " << source->posted() << ' ' << source->completed() << ' '
     << source->bytes_completed() << '\n';
  for (const traffic::FctRecord& r : source->records()) {
    os << r.arrival << ' ' << r.completed << ' ' << r.bytes << ' ' << r.src
       << ' ' << r.dst << '\n';
  }
}

pdes::ShardedRunner::Mode runner_mode(Exec exec) {
  return exec == Exec::kThreaded ? pdes::ShardedRunner::Mode::kThreaded
                                 : pdes::ShardedRunner::Mode::kCooperative;
}

/// A dumbbell fine-tuning mix (the fig-6 shape: a few jobs sharing one
/// bottleneck), optionally with the faulted scenario layered on top.
std::string dumbbell_run(Exec exec, int shards, bool faulted) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.hosts_per_side = 3;
  auto d = net::make_dumbbell(sim, cfg);
  workload::Cluster cluster(sim);

  std::vector<workload::JobSpec> specs;
  for (int j = 0; j < 3; ++j) {
    workload::JobSpec spec;
    spec.name = "j" + std::to_string(j);
    spec.flows = workload::single_flow(d.left[j], d.right[j],
                                       400'000 + 100'000 * j);
    spec.compute_time = sim::milliseconds(3 + 2 * j);
    spec.max_iterations = 10;
    spec.cc = [] { return std::make_unique<tcp::RenoCC>(); };
    specs.push_back(spec);
  }
  for (const workload::JobSpec& spec : specs) cluster.add_job(spec);

  scenario::Scenario s;
  if (faulted) {
    s.link_down(sim::milliseconds(40), "swL", "swR")
        .link_up(sim::milliseconds(90), "swL", "swR")
        .drop_burst(sim::milliseconds(150), "swL", "swR", 0.02, 7)
        .drop_burst(sim::milliseconds(300), "swL", "swR", 0.0)
        .link_rate(sim::milliseconds(350), "swL", "swR", 8e8)
        .straggler(sim::milliseconds(200), "j1", 2, sim::milliseconds(10))
        .background_burst(sim::milliseconds(250), 0, 4, 200'000);
  }
  scenario::ScenarioEngine engine(sim, *d.topology, cluster);

  const sim::SimTime kEnd = sim::seconds(2);
  if (exec == Exec::kSerial) {
    if (faulted) engine.install(s);
    cluster.start_all();
    sim.run_until(kEnd);
  } else {
    PartitionOptions opts;
    opts.shards = shards;
    opts.co_locate = pdes::co_locate_senders(specs);
    const Partition part = pdes::partition_topology(*d.topology, opts);
    EXPECT_EQ(part.shards, shards) << "test expects a real split";
    sim.configure_shards(part.shards);
    engine.set_manual_replay(true);
    engine.set_shard_mapper(
        [part](const net::Node* n) { return part.shard_of(n); }, part.shards);
    if (faulted) engine.install(s);
    pdes::ShardedRunner runner(sim, *d.topology, part, runner_mode(exec));
    runner.set_scenario(&engine);
    pdes::start_all_sharded(cluster, specs, sim, part);
    runner.run_until(kEnd);
    EXPECT_GT(runner.totals().events, 0u);
    if (faulted) {
      EXPECT_GT(runner.totals().imports, 0u);
    }
  }

  std::ostringstream os;
  os << digest(cluster, *d.topology);
  if (faulted) os << "applied " << engine.applied_events() << '\n';
  return os.str();
}

TEST(PdesIdentity, DumbbellTwoShardsMatchSerial) {
  const std::string serial = dumbbell_run(Exec::kSerial, 1, false);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, dumbbell_run(Exec::kCooperative, 2, false));
  EXPECT_EQ(serial, dumbbell_run(Exec::kThreaded, 2, false));
}

TEST(PdesIdentity, FaultedScenarioMatchesSerial) {
  const std::string serial = dumbbell_run(Exec::kSerial, 1, true);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, dumbbell_run(Exec::kCooperative, 2, true));
  EXPECT_EQ(serial, dumbbell_run(Exec::kThreaded, 2, true));
}

/// Cross-rack ring traffic on a leaf-spine: every flow transits the fabric,
/// so every shard boundary carries load, including a traffic-matrix burst
/// replayed in per-shard lanes.
std::string leaf_spine_run(Exec exec, int shards) {
  sim::Simulator sim;
  auto ls = net::make_leaf_spine(sim, leaf_spine_config(4, 2, 2));
  workload::Cluster cluster(sim);

  std::vector<workload::JobSpec> specs;
  for (int r = 0; r < 4; ++r) {
    workload::JobSpec spec;
    spec.name = "ring" + std::to_string(r);
    spec.flows = workload::single_flow(ls.racks[r][0],
                                       ls.racks[(r + 1) % 4][0], 300'000);
    spec.compute_time = sim::milliseconds(2 + r);
    spec.max_iterations = 8;
    spec.cc = [] { return std::make_unique<tcp::RenoCC>(); };
    specs.push_back(spec);
  }
  for (const workload::JobSpec& spec : specs) cluster.add_job(spec);

  traffic::TrafficConfig tc;
  tc.pattern = traffic::Pattern::kPermutation;
  tc.mean_bytes = 50'000;
  tc.flows_per_second = 400.0;
  tc.start = sim::milliseconds(20);
  tc.stop = sim::milliseconds(120);
  scenario::Scenario s;
  s.traffic_burst(sim::milliseconds(10), "mix", tc);

  scenario::ScenarioEngine engine(sim, *ls.topology, cluster);
  const sim::SimTime kEnd = sim::seconds(1);
  if (exec == Exec::kSerial) {
    engine.install(s);
    cluster.start_all();
    sim.run_until(kEnd);
  } else {
    PartitionOptions opts;
    opts.shards = shards;
    opts.co_locate = pdes::co_locate_senders(specs);
    const Partition part = pdes::partition_topology(*ls.topology, opts);
    sim.configure_shards(part.shards);
    engine.set_manual_replay(true);
    engine.set_shard_mapper(
        [part](const net::Node* n) { return part.shard_of(n); }, part.shards);
    engine.install(s);
    pdes::ShardedRunner runner(sim, *ls.topology, part, runner_mode(exec));
    runner.set_scenario(&engine);
    pdes::start_all_sharded(cluster, specs, sim, part);
    runner.run_until(kEnd);
    EXPECT_GT(runner.totals().imports, 0u);
  }

  std::ostringstream os;
  os << digest(cluster, *ls.topology);
  append_fcts(engine.traffic_source("mix"), os);
  return os.str();
}

TEST(PdesIdentity, LeafSpineFourShardsWithTrafficMatchSerial) {
  const std::string serial = leaf_spine_run(Exec::kSerial, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, leaf_spine_run(Exec::kCooperative, 4));
  EXPECT_EQ(serial, leaf_spine_run(Exec::kThreaded, 4));
}

TEST(PdesIdentity, RepeatedRunUntilMatchesOneShot) {
  // Splitting the wall into many run_until calls exercises the frontier
  // reset on every re-entry; the result must not depend on the split.
  auto split_run = [](const std::vector<sim::SimTime>& stops) {
    sim::Simulator sim;
    net::DumbbellConfig cfg;
    cfg.hosts_per_side = 2;
    auto d = net::make_dumbbell(sim, cfg);
    workload::Cluster cluster(sim);
    std::vector<workload::JobSpec> specs;
    workload::JobSpec spec;
    spec.name = "j0";
    spec.flows = workload::single_flow(d.left[0], d.right[0], 500'000);
    spec.compute_time = sim::milliseconds(4);
    spec.max_iterations = 6;
    spec.cc = [] { return std::make_unique<tcp::RenoCC>(); };
    specs.push_back(spec);
    cluster.add_job(spec);

    PartitionOptions opts;
    opts.shards = 2;
    opts.co_locate = pdes::co_locate_senders(specs);
    const Partition part = pdes::partition_topology(*d.topology, opts);
    sim.configure_shards(part.shards);
    pdes::ShardedRunner runner(sim, *d.topology, part,
                               pdes::ShardedRunner::Mode::kCooperative);
    pdes::start_all_sharded(cluster, specs, sim, part);
    for (const sim::SimTime stop : stops) runner.run_until(stop);
    return digest(cluster, *d.topology);
  };

  const auto one_shot = split_run({sim::seconds(1)});
  const auto split = split_run({sim::milliseconds(17), sim::milliseconds(111),
                                sim::milliseconds(400), sim::seconds(1)});
  EXPECT_EQ(one_shot, split);
}

TEST(PdesRunner, ExportsShardMetrics) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.hosts_per_side = 2;
  auto d = net::make_dumbbell(sim, cfg);
  workload::Cluster cluster(sim);
  std::vector<workload::JobSpec> specs;
  workload::JobSpec spec;
  spec.name = "j0";
  spec.flows = workload::single_flow(d.left[0], d.right[0], 200'000);
  spec.compute_time = sim::milliseconds(5);
  spec.max_iterations = 3;
  spec.cc = [] { return std::make_unique<tcp::RenoCC>(); };
  specs.push_back(spec);
  cluster.add_job(spec);

  PartitionOptions opts;
  opts.shards = 2;
  opts.co_locate = pdes::co_locate_senders(specs);
  const Partition part = pdes::partition_topology(*d.topology, opts);
  sim.configure_shards(part.shards);
  pdes::ShardedRunner runner(sim, *d.topology, part,
                             pdes::ShardedRunner::Mode::kCooperative);
  pdes::start_all_sharded(cluster, specs, sim, part);
  runner.run_until(sim::milliseconds(500));

  ASSERT_EQ(runner.shards(), 2);
  EXPECT_EQ(runner.workers(), 1);
  const pdes::ShardStats totals = runner.totals();
  EXPECT_GT(totals.events, 0u);
  EXPECT_GT(totals.imports, 0u);  // Every data packet crosses the trunk.
  EXPECT_GT(totals.null_updates, 0u);

  telemetry::MetricRegistry registry;
  runner.export_metrics(registry);
  EXPECT_EQ(registry.counter("pdes/total/imports").value(),
            static_cast<std::int64_t>(totals.imports));
  EXPECT_GT(registry.counter("pdes/shard0/events").value() +
                registry.counter("pdes/shard1/events").value(),
            0);
}

}  // namespace
}  // namespace mltcp
