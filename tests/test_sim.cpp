#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace mltcp::sim {
namespace {

// ------------------------------------------------------------------- time

TEST(Time, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
}

TEST(Time, FromSecondsRoundsToNearest) {
  EXPECT_EQ(from_seconds(1.0), seconds(1));
  EXPECT_EQ(from_seconds(0.5), milliseconds(500));
  EXPECT_EQ(from_seconds(1e-9), 1);
}

TEST(Time, TransmissionTime) {
  // 1500 bytes at 1 Gbps = 12 microseconds.
  EXPECT_EQ(transmission_time(1500, 1e9), microseconds(12));
  // 125 MB at 1 Gbps = 1 second.
  EXPECT_EQ(transmission_time(125'000'000, 1e9), seconds(1));
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(seconds(2)), "2.000s");
  EXPECT_EQ(format_time(milliseconds(3)), "3.000ms");
  EXPECT_EQ(format_time(microseconds(4)), "4.000us");
  EXPECT_EQ(format_time(42), "42ns");
}

// ------------------------------------------------------------- event queue

TEST(EventQueue, FiresInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelAlreadyFiredIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1, [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, PendingTracksLifecycle) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  EXPECT_TRUE(q.pending(id));
  q.pop_and_run();
  EXPECT_FALSE(q.pending(id));
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  int count = 0;
  q.schedule(1, [&] {
    ++count;
    q.schedule(2, [&] { ++count; });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, NextTimeEmptyIsInfinity) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

// -------------------------------------------------------------- simulator

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule(milliseconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, milliseconds(5));
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulator, RelativeSchedulingAccumulates) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(10, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule(10, [&] {
    sim.schedule(-5, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 10);
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / n;
  const double var = sum_sq / n - m * m;
  EXPECT_NEAR(m, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u32() == child.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

// ------------------------------------------------------------- rate binner

TEST(RateBinner, BinsBytesIntoRates) {
  RateBinner binner(milliseconds(10));
  // 1250 bytes in a 10ms bin = 1250*8/0.01 = 1 Mbps.
  binner.add(milliseconds(5), 1250);
  EXPECT_DOUBLE_EQ(binner.rate_bps(0), 1'000'000.0);
  EXPECT_DOUBLE_EQ(binner.rate_bps(1), 0.0);
}

TEST(RateBinner, AccumulatesWithinBin) {
  RateBinner binner(milliseconds(1));
  binner.add(100, 500);
  binner.add(200, 500);
  EXPECT_DOUBLE_EQ(binner.rate_bps(0), 1000 * 8 / 0.001);
  EXPECT_EQ(binner.total_bytes(), 1000);
}

TEST(RateBinner, LateBinsExtendVector) {
  RateBinner binner(milliseconds(1));
  binner.add(milliseconds(99), 100);
  EXPECT_EQ(binner.bin_count(), 100u);
  EXPECT_GT(binner.rate_bps(99), 0.0);
}

}  // namespace
}  // namespace mltcp::sim
