// Tests for the campaign runner: work-stealing pool execution guarantees,
// spec-order result aggregation, deterministic (byte-identical) CSV/JSON
// sinks under any thread count, and the env-var plumbing. The end-to-end
// test runs a 32-spec campaign of real packet-level simulations serially
// and in parallel and asserts the serialized outputs are byte-identical —
// the property every refactored bench relies on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "runner/campaign.hpp"
#include "runner/sinks.hpp"
#include "runner/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "tcp/reno.hpp"

namespace mltcp::runner {
namespace {

// -------------------------------------------------------- WorkStealingPool

TEST(WorkStealingPool, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    constexpr std::size_t kCount = 100;
    std::vector<std::atomic<int>> hits(kCount);
    WorkStealingPool pool(threads);
    pool.run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(WorkStealingPool, FewerTasksThanThreads) {
  std::vector<std::atomic<int>> hits(3);
  WorkStealingPool pool(8);
  pool.run(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
  EXPECT_EQ(hits[2].load(), 1);
}

TEST(WorkStealingPool, ZeroTasksIsANoop) {
  WorkStealingPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(WorkStealingPool, NonPositiveThreadCountPicksHardwareConcurrency) {
  WorkStealingPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
}

TEST(WorkStealingPool, ExceptionPropagatesAndOtherTasksStillRun) {
  for (const int threads : {1, 4}) {
    constexpr std::size_t kCount = 20;
    std::vector<std::atomic<int>> hits(kCount);
    WorkStealingPool pool(threads);
    EXPECT_THROW(
        pool.run(kCount,
                 [&](std::size_t i) {
                   hits[i].fetch_add(1);
                   if (i == 5) throw std::runtime_error("task 5 failed");
                 }),
        std::runtime_error);
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

// ------------------------------------------------------------ run_campaign

TEST(Campaign, ResultsComeBackInSpecOrder) {
  std::vector<int> specs;
  for (int i = 0; i < 64; ++i) specs.push_back(i);
  CampaignOptions opts;
  opts.threads = 4;
  const std::vector<long> results = run_campaign<int, long>(
      specs,
      [](const int& spec, std::size_t i) {
        EXPECT_EQ(static_cast<std::size_t>(spec), i);
        return static_cast<long>(spec) * spec;
      },
      opts);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<long>(i) * static_cast<long>(i));
  }
}

TEST(Campaign, OptionsFromEnvReadsMltcpThreads) {
  ::setenv("MLTCP_THREADS", "3", 1);
  EXPECT_EQ(options_from_env().threads, 3);
  ::setenv("MLTCP_THREADS", "0", 1);
  EXPECT_EQ(options_from_env().threads, 0);
  ::unsetenv("MLTCP_THREADS");
  EXPECT_EQ(options_from_env().threads, 0);
}

TEST(Report, AddfAccumulatesFormattedText) {
  Report rep;
  EXPECT_TRUE(rep.empty());
  rep.addf("%s=%d", "jobs", 4);
  rep.addf(" (%.2f)", 0.5);
  rep.add("\n");
  EXPECT_EQ(rep.text(), "jobs=4 (0.50)\n");
}

// ------------------------------------------------------------------ sinks

TEST(CsvSink, OutOfOrderAppendsSerializeInRunOrder) {
  CsvSink sink({"run", "value"});
  sink.append(2, std::vector<std::string>{"2", "c"});
  sink.append(0, std::vector<std::string>{"0", "a"});
  sink.append(1, std::vector<std::string>{"1", "b"});
  sink.append(0, std::vector<std::string>{"0", "a2"});  // same-run order kept
  EXPECT_EQ(sink.row_count(), 4u);
  EXPECT_EQ(sink.serialize(), "run,value\n0,a\n0,a2\n1,b\n2,c\n");
}

TEST(CsvSink, DoubleRowsUseCsvWriterFormatting) {
  CsvSink sink({"x"});
  sink.append(0, std::vector<double>{0.25});
  sink.append(1, std::vector<double>{3.0});
  sink.append(2, std::vector<double>{1e-7});
  EXPECT_EQ(sink.serialize(), "x\n0.25\n3\n1e-07\n");  // %.9g, like CsvWriter
}

TEST(JsonSink, OutOfOrderPutsSerializeInRunOrder) {
  JsonSink sink;
  sink.put(1, "tail_s", 0.5);
  sink.put(0, "name", std::string("run \"zero\""));
  sink.put(0, "tail_s", 2.0);
  EXPECT_EQ(sink.serialize(),
            "[\n"
            "  {\"run\": 0, \"name\": \"run \\\"zero\\\"\", \"tail_s\": 2},\n"
            "  {\"run\": 1, \"tail_s\": 0.5}\n"
            "]\n");
}

// ------------------------------------- parallel == serial, byte for byte

/// One self-contained packet-level run: a Reno transfer of a spec-dependent
/// size over its own dumbbell. Small enough that 32 of them are fast, real
/// enough that completion times exercise the whole stack.
double tiny_sim_completion_seconds(std::size_t index) {
  sim::Simulator sim;
  net::DumbbellConfig dc;
  dc.hosts_per_side = 1;
  auto d = net::make_dumbbell(sim, dc);
  tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1,
                    std::make_unique<tcp::RenoCC>());
  sim::SimTime done = -1;
  flow.send_message(50'000 + 10'000 * static_cast<std::int64_t>(index),
                    [&](sim::SimTime t) { done = t; });
  sim.run();
  return sim::to_seconds(done);
}

struct CampaignOutput {
  std::string csv;
  std::string json;
};

CampaignOutput run_tiny_campaign(std::size_t runs, int threads) {
  CsvSink csv({"run", "completion_s"});
  JsonSink json;
  std::vector<std::size_t> specs(runs);
  for (std::size_t i = 0; i < runs; ++i) specs[i] = i;
  CampaignOptions opts;
  opts.threads = threads;
  run_campaign<std::size_t, double>(
      specs,
      [&](const std::size_t& spec, std::size_t i) {
        const double s = tiny_sim_completion_seconds(spec);
        csv.append(i, std::vector<double>{static_cast<double>(i), s});
        json.put(i, "completion_s", s);
        return s;
      },
      opts);
  return CampaignOutput{csv.serialize(), json.serialize()};
}

TEST(Campaign, ParallelSinkOutputByteIdenticalToSerial) {
  constexpr std::size_t kRuns = 32;
  const CampaignOutput serial = run_tiny_campaign(kRuns, 1);
  EXPECT_NE(serial.csv.find("\n31,"), std::string::npos);
  for (const int threads : {2, 4}) {
    const CampaignOutput par = run_tiny_campaign(kRuns, threads);
    EXPECT_EQ(par.csv, serial.csv) << "threads=" << threads;
    EXPECT_EQ(par.json, serial.json) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace mltcp::runner
