#include <gtest/gtest.h>

#include <vector>

#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mltcp::net {
namespace {

Packet data_to(NodeId dst, FlowId flow, std::int32_t size = 1500) {
  Packet p;
  p.type = PacketType::kData;
  p.dst = dst;
  p.flow = flow;
  p.size_bytes = size;
  return p;
}

// -------------------------------------------------------------- link layer

TEST(Link, SerializationPlusPropagationDelay) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  topo.connect(*a, *b, 1e9, sim::microseconds(10),
               make_droptail_factory(1'000'000));

  sim::SimTime arrival = -1;
  b->register_flow(1, [&](const Packet&) { arrival = sim.now(); });
  a->send(data_to(b->id(), 1));
  sim.run();
  // 1500 B at 1 Gbps = 12 us serialization + 10 us propagation.
  EXPECT_EQ(arrival, sim::microseconds(22));
}

TEST(Link, BackToBackPacketsSerialize) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  topo.connect(*a, *b, 1e9, sim::microseconds(10),
               make_droptail_factory(1'000'000));

  std::vector<sim::SimTime> arrivals;
  b->register_flow(1, [&](const Packet&) { arrivals.push_back(sim.now()); });
  a->send(data_to(b->id(), 1));
  a->send(data_to(b->id(), 1));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], sim::microseconds(12));
}

TEST(Link, CountsBytesAndUtilization) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  topo.connect(*a, *b, 1e9, 0, make_droptail_factory(1'000'000));
  b->register_flow(1, [](const Packet&) {});

  Link* link = topo.link_between(*a, *b);
  ASSERT_NE(link, nullptr);
  for (int i = 0; i < 5; ++i) a->send(data_to(b->id(), 1));
  sim.run();
  EXPECT_EQ(link->packets_transmitted(), 5);
  EXPECT_EQ(link->bytes_transmitted(), 5 * 1500);
  EXPECT_NEAR(link->utilization(sim.now()), 1.0, 1e-6);
}

TEST(Link, TxObserverSeesEveryTransmission) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  topo.connect(*a, *b, 1e9, 0, make_droptail_factory(1'000'000));
  b->register_flow(1, [](const Packet&) {});
  int observed = 0;
  topo.link_between(*a, *b)->add_tx_observer(
      [&](const Packet&, sim::SimTime) { ++observed; });
  for (int i = 0; i < 3; ++i) a->send(data_to(b->id(), 1));
  sim.run();
  EXPECT_EQ(observed, 3);
}

TEST(Link, QueueDropsUnderOverload) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  topo.connect(*a, *b, 1e9, 0, make_droptail_factory(3 * 1500));
  int received = 0;
  b->register_flow(1, [&](const Packet&) { ++received; });
  for (int i = 0; i < 10; ++i) a->send(data_to(b->id(), 1));
  sim.run();
  // 1 in flight + 3 queued admitted at burst time.
  EXPECT_EQ(received, 4);
  EXPECT_EQ(topo.link_between(*a, *b)->queue().stats().dropped_packets, 6);
}

// ---------------------------------------------------------------- routing

TEST(Dumbbell, RoutesAcrossBottleneck) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.hosts_per_side = 2;
  Dumbbell d = make_dumbbell(sim, cfg);

  int got = 0;
  d.right[1]->register_flow(7, [&](const Packet&) { ++got; });
  d.left[0]->send(data_to(d.right[1]->id(), 7));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(d.bottleneck->packets_transmitted(), 1);
}

TEST(Dumbbell, SameSideTrafficSkipsBottleneck) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.hosts_per_side = 2;
  Dumbbell d = make_dumbbell(sim, cfg);

  int got = 0;
  d.left[1]->register_flow(7, [&](const Packet&) { ++got; });
  d.left[0]->send(data_to(d.left[1]->id(), 7));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(d.bottleneck->packets_transmitted(), 0);
}

TEST(Dumbbell, ReverseDirectionUsesReverseLink) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.hosts_per_side = 1;
  Dumbbell d = make_dumbbell(sim, cfg);
  int got = 0;
  d.left[0]->register_flow(3, [&](const Packet&) { ++got; });
  d.right[0]->send(data_to(d.left[0]->id(), 3));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(d.bottleneck_reverse->packets_transmitted(), 1);
  EXPECT_EQ(d.bottleneck->packets_transmitted(), 0);
}

TEST(Star, AllPairsReachable) {
  sim::Simulator sim;
  StarConfig cfg;
  cfg.n_hosts = 4;
  Star s = make_star(sim, cfg);
  int got = 0;
  for (int i = 0; i < 4; ++i) {
    s.hosts[i]->register_flow(i + 1, [&](const Packet&) { ++got; });
  }
  for (int i = 0; i < 4; ++i) {
    s.hosts[i]->send(data_to(s.hosts[(i + 1) % 4]->id(), (i + 1) % 4 + 1));
  }
  sim.run();
  EXPECT_EQ(got, 4);
}

TEST(LeafSpine, CrossRackTraversesSpine) {
  sim::Simulator sim;
  LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 2;
  cfg.spines = 1;
  LeafSpine ls = make_leaf_spine(sim, cfg);

  int got = 0;
  ls.racks[1][0]->register_flow(5, [&](const Packet&) { ++got; });
  ls.racks[0][0]->send(data_to(ls.racks[1][0]->id(), 5));
  sim.run();
  EXPECT_EQ(got, 1);
  // tor0 -> spine and spine -> tor1 both carried the packet.
  EXPECT_EQ(
      ls.topology->link_between(*ls.tors[0], *ls.spines[0])->packets_transmitted(),
      1);
  EXPECT_EQ(
      ls.topology->link_between(*ls.spines[0], *ls.tors[1])->packets_transmitted(),
      1);
}

TEST(LeafSpine, IntraRackStaysLocal) {
  sim::Simulator sim;
  LeafSpineConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 2;
  LeafSpine ls = make_leaf_spine(sim, cfg);
  int got = 0;
  ls.racks[0][1]->register_flow(5, [&](const Packet&) { ++got; });
  ls.racks[0][0]->send(data_to(ls.racks[0][1]->id(), 5));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(
      ls.topology->link_between(*ls.tors[0], *ls.spines[0])->packets_transmitted(),
      0);
}

// ------------------------------------------------------------------ hosts

TEST(Host, UnclaimedPacketsCounted) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  topo.connect(*a, *b, 1e9, 0, make_droptail_factory(1'000'000));
  a->send(data_to(b->id(), 42));  // no handler registered
  sim.run();
  EXPECT_EQ(b->unclaimed_packets(), 1);
  EXPECT_EQ(b->delivered_packets(), 0);
}

TEST(Host, UnregisterStopsDelivery) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  topo.connect(*a, *b, 1e9, 0, make_droptail_factory(1'000'000));
  int got = 0;
  b->register_flow(1, [&](const Packet&) { ++got; });
  b->unregister_flow(1);
  a->send(data_to(b->id(), 1));
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(b->unclaimed_packets(), 1);
}

TEST(Switch, RoutelessPacketDropped) {
  sim::Simulator sim;
  Topology topo(sim);
  Switch* sw = topo.add_switch("sw");
  Host* a = topo.add_host("a");
  topo.connect(*a, *sw, 1e9, 0, make_droptail_factory(1'000'000));
  topo.build_routes();
  Packet p = data_to(999, 1);  // unknown destination
  a->send(p);
  sim.run();
  EXPECT_EQ(sw->routeless_drops(), 1);
}

}  // namespace
}  // namespace mltcp::net
