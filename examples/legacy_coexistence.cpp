// Traffic-class coexistence (§5): the paper modifies NCCL's FAST-socket
// plugin so each traffic class can select its own congestion control and
// aggressiveness function. This example models that: a per-class CC registry
// assigns MLTCP-Reno to training traffic, plain Reno to background bulk
// transfers, and a high-aggressiveness MLTCP function to a latency-sensitive
// class, all sharing one bottleneck.
//
//   ./build/examples/legacy_coexistence

#include <cstdio>
#include <functional>
#include <string>

#include "analysis/metrics.hpp"
#include "core/mltcp.hpp"
#include "core/traffic_class.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"
#include "workload/profiles.hpp"

using namespace mltcp;

int main() {
  std::printf("§5 coexistence demo: per-traffic-class congestion control.\n");

  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const std::int64_t train_bytes = workload::comm_bytes(gpt2, 1e9);

  // The FAST-socket-plugin analogue (§5): per-class congestion control.
  core::MltcpConfig train_cfg;
  train_cfg.tracker.total_bytes = train_bytes;
  train_cfg.tracker.comp_time = workload::compute_time(gpt2) / 2;
  const core::TrafficClassRegistry registry =
      core::TrafficClassRegistry::with_defaults(train_cfg);

  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.hosts_per_side = 4;
  net::Dumbbell d = net::make_dumbbell(sim, topo_cfg);
  workload::Cluster cluster(sim);

  // Two MLTCP training jobs.
  for (int i = 0; i < 2; ++i) {
    workload::JobSpec spec;
    spec.name = "train-" + std::to_string(i);
    spec.flows = workload::single_flow(d.left[i], d.right[i], train_bytes);
    spec.compute_time = workload::compute_time(gpt2);
    spec.max_iterations = 15;
    spec.cc = registry.factory("training");
    cluster.add_job(spec);
  }

  // A legacy bulk flow that must not starve.
  tcp::TcpFlow bulk(sim, *d.left[2], *d.right[2], 900,
                    registry.make("bulk"));
  std::int64_t bulk_bytes = 0;
  std::function<void(sim::SimTime)> refill = [&](sim::SimTime) {
    bulk_bytes += 8'000'000;
    bulk.send_message(8'000'000, refill);
  };
  bulk.send_message(8'000'000, refill);

  // Short latency-sensitive requests, one per 100 ms.
  tcp::TcpFlow latency(sim, *d.left[3], *d.right[3], 901,
                       registry.make("latency"));
  std::vector<double> request_latencies;
  std::function<void()> issue_request = [&] {
    const sim::SimTime start = sim.now();
    latency.send_message(200'000, [&, start](sim::SimTime done) {
      request_latencies.push_back(sim::to_milliseconds(done - start));
    });
    sim.schedule(sim::milliseconds(100), issue_request);
  };
  sim.schedule(sim::milliseconds(50), issue_request);

  cluster.start_all();
  sim.run_until(sim::seconds(30));

  std::printf("\nover %.0fs on a 1 Gbps bottleneck:\n",
              sim::to_seconds(sim.now()));
  for (std::size_t i = 0; i < cluster.job_count(); ++i) {
    const auto times = cluster.job(i)->iteration_times_seconds();
    std::printf("  %-9s iterations %2d, converged iter time %.3fs "
                "(ideal %.3fs)\n",
                cluster.job(i)->name().c_str(),
                cluster.job(i)->completed_iterations(),
                analysis::tail_mean(times, 5),
                sim::to_seconds(gpt2.ideal_iteration_time));
  }
  std::printf("  %-9s long-term rate %.3f Gbps (not starved)\n", "bulk",
              bulk_bytes * 8.0 / sim::to_seconds(sim.now()) * 1e-9);
  std::printf("  %-9s %zu requests, median latency %.1fms, p99 %.1fms\n",
              "latency", request_latencies.size(),
              analysis::percentile(request_latencies, 50),
              analysis::percentile(request_latencies, 99));
  return 0;
}
