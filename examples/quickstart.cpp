// Quickstart: three GPT-2-like training jobs share one bottleneck link.
// With plain TCP Reno they contend forever; switching the congestion control
// factory to MLTCP-Reno makes them self-interleave within ~20 iterations.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "analysis/metrics.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/tracer.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"
#include "workload/profiles.hpp"

using namespace mltcp;

namespace {

double run(const tcp::CcFactory& cc, const char* label,
           const char* trace_path = nullptr) {
  // 1. A simulated dumbbell: hosts on each side of a 1 Gbps bottleneck.
  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.hosts_per_side = 3;
  net::Dumbbell d = net::make_dumbbell(sim, topo_cfg);

  // Optional tracing: job phase slices + loss events + MLTCP milestones,
  // exported in the Chrome trace-event format.
  std::unique_ptr<telemetry::ChromeTraceSink> trace_sink;
  telemetry::Tracer tracer(telemetry::Tracer::Config{
      telemetry::Category::kJob | telemetry::Category::kTcp |
          telemetry::Category::kMltcp,
      0});
  if (trace_path != nullptr) {
    trace_sink = std::make_unique<telemetry::ChromeTraceSink>(trace_path);
    tracer.add_sink(trace_sink.get());
    sim.set_tracer(&tracer);
  }

  // 2. Three periodic training jobs, four parallel streams each (as NCCL
  //    would open), all crossing the bottleneck.
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const std::int64_t bytes =
      workload::comm_bytes(gpt2, topo_cfg.bottleneck_rate_bps);

  workload::Cluster cluster(sim);
  for (int i = 0; i < 3; ++i) {
    workload::JobSpec spec;
    spec.name = "gpt2-" + std::to_string(i);
    for (int f = 0; f < 4; ++f) {
      spec.flows.push_back(
          workload::FlowSpec{d.left[i], d.right[i], bytes / 4});
    }
    spec.compute_time = workload::compute_time(gpt2);
    spec.noise_stddev_seconds = 0.005;  // real clusters jitter a little
    spec.max_iterations = 40;
    spec.cc = cc;
    cluster.add_job(spec);
  }

  // 3. Run and report converged iteration times.
  cluster.start_all();
  sim.run_until(sim::seconds(120));
  if (trace_sink != nullptr) trace_sink->finish();

  std::printf("\n-- %s --\n", label);
  double worst_tail = 0.0;
  for (std::size_t j = 0; j < cluster.job_count(); ++j) {
    const auto times = cluster.job(j)->iteration_times_seconds();
    const double tail = analysis::tail_mean(times, 10);
    worst_tail = std::max(worst_tail, tail);
    std::printf("job %zu: %d iterations, mean %.3fs, last-10 mean %.3fs "
                "(ideal %.3fs)\n",
                j, cluster.job(j)->completed_iterations(),
                analysis::mean(times), tail,
                sim::to_seconds(gpt2.ideal_iteration_time));
  }
  return worst_tail;
}

}  // namespace

int main() {
  std::printf("MLTCP quickstart: three GPT-2 jobs on one bottleneck.\n");

  const double reno_tail = run(core::reno_factory(), "TCP Reno (baseline)");

  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  core::MltcpConfig mltcp_cfg;
  // Per-flow TOTAL_BYTES: each of the 4 streams carries a quarter.
  mltcp_cfg.tracker.total_bytes = workload::comm_bytes(gpt2, 1e9) / 4;
  mltcp_cfg.tracker.comp_time = workload::compute_time(gpt2) / 2;
  const char* trace_path = "quickstart.trace.json";
  const double mltcp_tail =
      run(core::mltcp_reno_factory(mltcp_cfg), "MLTCP-Reno", trace_path);

  std::printf("\nconverged iteration time: reno %.3fs vs mltcp %.3fs "
              "(%.2fx speedup)\n",
              reno_tail, mltcp_tail, reno_tail / mltcp_tail);
  std::printf("wrote %s -- open it in ui.perfetto.dev to see the jobs "
              "slide into interleaved comm/compute slices.\n", trace_path);
  return 0;
}
