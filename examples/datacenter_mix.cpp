// A mixed ML datacenter: one GPT-3-like job and three GPT-2-like jobs share
// a dumbbell bottleneck (the paper's §2 motivating scenario). Pick the
// scheduler on the command line and compare:
//
//   ./build/examples/datacenter_mix reno         # fair-share baseline
//   ./build/examples/datacenter_mix mltcp        # distributed MLTCP-Reno
//   ./build/examples/datacenter_mix pfabric      # SRPT via priority fabric
//   ./build/examples/datacenter_mix centralized  # Cassini-like offsets
//
// Optional second argument: iterations to run (default 60).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "sched/centralized.hpp"
#include "sched/pfabric.hpp"
#include "sim/simulator.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"
#include "workload/profiles.hpp"

using namespace mltcp;

namespace {

constexpr double kRate = 1e9;
constexpr int kFlowsPerJob = 4;

struct JobPlan {
  workload::ModelProfile profile;
  sim::SimTime start = 0;
  sim::SimTime gate_period = 0;
  sim::SimTime compute_pad = 0;
};

sim::SimTime wire_comm(const workload::ModelProfile& p) {
  const double wire_bytes = workload::comm_bytes(p, kRate) * 1500.0 / 1460.0;
  return sim::from_seconds(wire_bytes * 8.0 / kRate) + sim::milliseconds(10);
}

int run(const std::string& scheduler, int iterations) {
  std::vector<JobPlan> plans = {{workload::gpt3_profile()},
                                {workload::gpt2_profile()},
                                {workload::gpt2_profile()},
                                {workload::gpt2_profile()}};

  // Period harmonization so an interleaved schedule exists (see DESIGN.md).
  std::vector<sched::JobTiming> timings;
  for (const auto& p : plans) {
    timings.push_back(sched::JobTiming{p.profile.ideal_iteration_time,
                                       wire_comm(p.profile),
                                       workload::compute_time(p.profile)});
  }
  const auto pads = sched::harmonize_compute_pads(timings);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    plans[i].compute_pad = pads[i];
  }

  if (scheduler == "centralized") {
    std::vector<sched::PeriodicDemand> demands;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      demands.push_back(sched::PeriodicDemand{
          plans[i].profile.model_name,
          timings[i].wire_comm + timings[i].compute + pads[i],
          timings[i].wire_comm});
    }
    const sched::Schedule schedule = sched::optimize_interleaving(demands);
    std::printf("centralized schedule: excess %.4fs, offsets",
                sim::to_seconds(schedule.excess));
    for (const auto off : schedule.offsets) {
      std::printf(" %.3fs", sim::to_seconds(off));
    }
    std::printf("\n");
    for (std::size_t i = 0; i < plans.size(); ++i) {
      plans[i].start = schedule.offsets[i];
      plans[i].gate_period = demands[i].period;
    }
  }

  sim::Simulator sim;
  net::DumbbellConfig topo_cfg;
  topo_cfg.hosts_per_side = static_cast<int>(plans.size());
  topo_cfg.bottleneck_rate_bps = kRate;
  if (scheduler == "pfabric") {
    topo_cfg.bottleneck_queue = net::make_pfabric_factory(36 * 1500);
  }
  net::Dumbbell d = net::make_dumbbell(sim, topo_cfg);
  workload::Cluster cluster(sim);

  std::vector<workload::Job*> jobs;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const auto& plan = plans[i];
    workload::JobSpec spec;
    spec.name = plan.profile.model_name + "-" + std::to_string(i);
    const std::int64_t bytes = workload::comm_bytes(plan.profile, kRate);
    for (int f = 0; f < kFlowsPerJob; ++f) {
      spec.flows.push_back(workload::FlowSpec{
          d.left[i], d.right[i], bytes / kFlowsPerJob});
    }
    spec.compute_time =
        workload::compute_time(plan.profile) + plan.compute_pad;
    spec.start_time = plan.start;
    spec.gate_period = plan.gate_period;
    spec.max_iterations = iterations;

    if (scheduler == "mltcp") {
      core::MltcpConfig cfg;
      cfg.tracker.total_bytes = bytes / kFlowsPerJob;
      cfg.tracker.comp_time = workload::compute_time(plan.profile) / 2;
      spec.cc = core::mltcp_reno_factory(cfg);
    } else if (scheduler == "pfabric") {
      spec.cc = sched::pfabric_factory();
      spec.sender.pfabric_priority = true;
    } else {
      spec.cc = core::reno_factory();
    }
    jobs.push_back(cluster.add_job(spec));
  }

  cluster.start_all();
  sim.run_until(sim::seconds(4 + iterations * 2));

  std::printf("\nscheduler: %s (%d iterations)\n", scheduler.c_str(),
              iterations);
  std::printf("%-10s %10s %12s %12s\n", "job", "ideal_s", "mean_s",
              "converged_s");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto times = jobs[i]->iteration_times_seconds();
    std::printf("%-10s %10.3f %12.3f %12.3f\n", jobs[i]->name().c_str(),
                sim::to_seconds(plans[i].profile.ideal_iteration_time),
                analysis::mean(times), analysis::tail_mean(times, 10));
  }

  sim::SimTime end = 0;
  for (const workload::Job* job : jobs) {
    if (!job->iterations().empty()) {
      end = std::max(end, job->iterations().back().comm_end);
    }
  }
  std::vector<const workload::Job*> cjobs(jobs.begin(), jobs.end());
  std::printf("comm overlap in final 15s: %.3fs (0 = fully interleaved)\n",
              analysis::comm_overlap_seconds(cjobs, end - sim::seconds(15),
                                             end));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scheduler = argc > 1 ? argv[1] : "mltcp";
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 60;
  if (scheduler != "reno" && scheduler != "mltcp" && scheduler != "pfabric" &&
      scheduler != "centralized") {
    std::fprintf(stderr,
                 "usage: %s [reno|mltcp|pfabric|centralized] [iterations]\n",
                 argv[0]);
    return 2;
  }
  return run(scheduler, iterations);
}
