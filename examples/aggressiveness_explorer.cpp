// Explore the design space of bandwidth aggressiveness functions with the
// fast fluid model: how do Slope/Intercept (or an arbitrary custom F) change
// convergence speed and steady-state interleaving for N periodic jobs?
//
//   ./build/examples/aggressiveness_explorer              # default sweep
//   ./build/examples/aggressiveness_explorer 8 0.1 0.02   # jobs a noise
//
// Arguments: [jobs] [comm_fraction] [noise_stddev_seconds].

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/fluid_model.hpp"
#include "analysis/metrics.hpp"
#include "analysis/shift.hpp"
#include "core/aggressiveness.hpp"

using namespace mltcp;

namespace {

constexpr double kPeriod = 1.8;

struct SweepResult {
  int convergence_iteration = -1;  // -1: never converged
  double converged_time = 0.0;
  double tail_excess_per_second = 0.0;
};

SweepResult evaluate(std::shared_ptr<const core::AggressivenessFunction> f,
                     int jobs, double comm_fraction, double noise) {
  analysis::FluidConfig cfg;
  cfg.dt = 5e-4;
  cfg.f = std::move(f);
  cfg.seed = 11;

  std::vector<analysis::FluidJobSpec> specs(jobs);
  for (int j = 0; j < jobs; ++j) {
    specs[j].comm_seconds = comm_fraction * kPeriod;
    specs[j].compute_seconds = (1.0 - comm_fraction) * kPeriod;
    specs[j].noise_stddev = noise;
    specs[j].start_offset = 0.015 * j;  // symmetry breaker
  }
  analysis::FluidSimulator fluid(cfg, specs);
  const int iterations = 200;
  fluid.run_iterations(iterations, 1e4);

  SweepResult out;
  int conv = 0;
  std::vector<double> tails;
  for (int j = 0; j < jobs; ++j) {
    const auto times = fluid.iteration_times(j);
    tails.push_back(analysis::tail_mean(times, 20));
    int last_bad = -1;
    for (std::size_t i = 0; i + 20 < times.size(); ++i) {
      if (times[i] > kPeriod * 1.03) last_bad = static_cast<int>(i);
    }
    conv = std::max(conv, last_bad + 1);
  }
  out.converged_time = analysis::mean(tails);
  out.convergence_iteration =
      out.converged_time < kPeriod * 1.05 ? conv : -1;

  fluid.reset_excess();
  const double horizon = 20.0;
  fluid.run_until(fluid.now() + horizon);
  out.tail_excess_per_second = fluid.accumulated_excess() / horizon;
  return out;
}

void report(const char* label, const SweepResult& r) {
  if (r.convergence_iteration >= 0) {
    std::printf("%-28s converged by iter %3d, steady %.3fs, "
                "residual overlap %.3f\n",
                label, r.convergence_iteration, r.converged_time,
                r.tail_excess_per_second);
  } else {
    std::printf("%-28s NEVER converged (steady %.3fs, overlap %.3f)\n",
                label, r.converged_time, r.tail_excess_per_second);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = argc > 1 ? std::atoi(argv[1]) : 5;
  const double a = argc > 2 ? std::atof(argv[2]) : 0.15;
  const double noise = argc > 3 ? std::atof(argv[3]) : 0.0;
  if (jobs < 2 || a <= 0.0 || a * jobs >= 1.0) {
    std::fprintf(stderr,
                 "need >= 2 jobs and jobs * comm_fraction < 1 "
                 "(got %d x %.2f)\n",
                 jobs, a);
    return 2;
  }
  std::printf("fluid sweep: %d jobs, comm fraction %.2f (utilization %.2f), "
              "noise %.3fs, T = %.1fs\n\n",
              jobs, a, jobs * a, noise, kPeriod);

  std::printf("-- the paper's six candidates (Figure 3) --\n");
  for (int i = 1; i <= 6; ++i) {
    auto f = std::shared_ptr<const core::AggressivenessFunction>(
        core::make_figure3_function(i).release());
    const std::string name = "F" + std::to_string(i) + " " + f->name();
    report(name.c_str(), evaluate(f, jobs, a, noise));
  }

  std::printf("\n-- linear slope/intercept grid --\n");
  for (const double slope : {0.5, 1.0, 1.75, 3.0}) {
    for (const double intercept : {0.1, 0.25, 0.5, 1.0}) {
      auto f =
          std::make_shared<core::LinearAggressiveness>(slope, intercept);
      char label[64];
      std::snprintf(label, sizeof(label), "linear(%.2f, %.2f)", slope,
                    intercept);
      report(label, evaluate(f, jobs, a, noise));
    }
  }

  std::printf("\n-- §4 predicted steady-state error for the default F --\n");
  for (const double sigma : {0.005, 0.01, 0.02}) {
    std::printf("sigma %.3fs -> predicted offset error std %.4fs\n", sigma,
                analysis::predicted_error_stddev(sigma, core::kDefaultSlope,
                                                 core::kDefaultIntercept));
  }
  return 0;
}
