// Capacity planning for an ML cluster operator: given a mix of training
// jobs on one bottleneck, report
//   - whether a fully interleaved schedule exists (centralized optimizer),
//   - the iteration times MLTCP is predicted to converge to (fluid model),
//   - how many iterations convergence takes from a cold start,
// without running the packet-level simulator.
//
//   ./build/examples/cluster_report                # default mix
//   ./build/examples/cluster_report 1.8:0.15 1.8:0.15 1.2:0.25
//   ./build/examples/cluster_report 1.8:0.15 1.8:0.15 + 1.2:0.25 1.2:0.25
//
// Each argument is one job as <period_seconds>:<comm_fraction>; a literal
// '+' separates independent mixes. Multiple mixes are analyzed in parallel
// through the campaign runner (MLTCP_THREADS controls sharding) and the
// reports print in argument order regardless of which finishes first.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/fluid_model.hpp"
#include "analysis/metrics.hpp"
#include "runner/campaign.hpp"
#include "sched/centralized.hpp"

using namespace mltcp;

namespace {

struct JobMix {
  double period_s = 0.0;
  double comm_fraction = 0.0;
};

std::vector<std::vector<JobMix>> parse(int argc, char** argv) {
  std::vector<std::vector<JobMix>> mixes(1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "+") == 0) {
      if (!mixes.back().empty()) mixes.emplace_back();
      continue;
    }
    JobMix job;
    if (std::sscanf(argv[i], "%lf:%lf", &job.period_s,
                    &job.comm_fraction) != 2 ||
        job.period_s <= 0.0 || job.comm_fraction <= 0.0 ||
        job.comm_fraction >= 1.0) {
      std::fprintf(stderr, "bad job spec '%s' (want period:comm_fraction)\n",
                   argv[i]);
      std::exit(2);
    }
    mixes.back().push_back(job);
  }
  if (mixes.back().empty()) mixes.pop_back();
  if (mixes.empty()) {
    // Default: the paper's Figure 2 mix.
    mixes = {{{1.2, 0.25}, {1.8, 0.15}, {1.8, 0.15}, {1.8, 0.15}}};
  }
  return mixes;
}

runner::Report analyze(const std::vector<JobMix>& mix) {
  runner::Report rep;
  double utilization = 0.0;
  for (const auto& j : mix) utilization += j.comm_fraction;
  rep.addf("cluster report: %zu jobs, bottleneck utilization %.2f\n\n",
           mix.size(), utilization);

  // 1. Does an interleaved schedule exist at all? (centralized view)
  std::vector<sched::PeriodicDemand> demands;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    demands.push_back(sched::PeriodicDemand{
        "job" + std::to_string(i), sim::from_seconds(mix[i].period_s),
        sim::from_seconds(mix[i].period_s * mix[i].comm_fraction)});
  }
  const sched::Schedule schedule = sched::optimize_interleaving(demands);
  rep.addf("centralized optimizer: hyperperiod %.2fs, residual overlap "
           "%.4fs -> %s\n",
           sim::to_seconds(schedule.hyperperiod),
           sim::to_seconds(schedule.excess),
           schedule.excess == 0 ? "fully interleavable"
                                : "NOT fully interleavable");
  rep.addf("optimal offsets:");
  for (const auto off : schedule.offsets) {
    rep.addf(" %.3fs", sim::to_seconds(off));
  }
  rep.addf("\n\n");

  // 2. What does distributed MLTCP converge to? (fluid model)
  analysis::FluidConfig fc;
  fc.dt = 1e-3;
  std::vector<analysis::FluidJobSpec> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    analysis::FluidJobSpec spec;
    spec.comm_seconds = mix[i].period_s * mix[i].comm_fraction;
    spec.compute_seconds = mix[i].period_s - spec.comm_seconds;
    spec.start_offset = 0.01 * static_cast<double>(i);  // symmetry breaker
    jobs.push_back(spec);
  }
  analysis::FluidSimulator fluid(fc, jobs);
  fluid.run_iterations(300, 1e4);

  rep.addf("MLTCP (fluid model, Slope 1.75 / Intercept 0.25):\n");
  rep.addf("%-6s %10s %14s %16s %14s\n", "job", "ideal_s", "converged_s",
           "slowdown", "converged_by");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto times = fluid.iteration_times(j);
    const double converged = analysis::tail_mean(times, 20);
    int last_bad = -1;
    for (std::size_t i = 0; i + 20 < times.size(); ++i) {
      if (times[i] > converged * 1.05) last_bad = static_cast<int>(i);
    }
    rep.addf("%-6zu %10.3f %14.3f %15.1f%% %14d\n", j, mix[j].period_s,
             converged, 100.0 * (converged / mix[j].period_s - 1.0),
             last_bad + 1);
  }

  fluid.reset_excess();
  fluid.run_until(fluid.now() + 30.0);
  rep.addf("\nresidual comm overlap in steady state: %.4f s/s\n",
           fluid.accumulated_excess() / 30.0);
  if (schedule.excess == 0) {
    rep.addf("verdict: this mix self-interleaves under MLTCP; expect "
             "near-ideal iteration times.\n");
  } else {
    rep.addf("verdict: the mix is overloaded; MLTCP will still reduce "
             "contention but cannot reach the ideal.\n");
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::vector<JobMix>> mixes = parse(argc, argv);

  std::vector<runner::SimSpec> specs;
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    runner::SimSpec spec;
    spec.name = "mix" + std::to_string(m);
    const std::vector<JobMix>& mix = mixes[m];
    const bool banner = mixes.size() > 1;
    spec.run = [&mix, m, banner](const runner::SimSpec&) {
      runner::Report rep;
      if (banner) rep.addf("======== mix %zu ========\n", m);
      rep.add(analyze(mix).text());
      if (banner) rep.addf("\n");
      return rep;
    };
    specs.push_back(std::move(spec));
  }
  runner::run_and_print(specs, runner::options_from_env());
  return 0;
}
