// Capacity planning for an ML cluster operator: given a mix of training
// jobs on one bottleneck, report
//   - whether a fully interleaved schedule exists (centralized optimizer),
//   - the iteration times MLTCP is predicted to converge to (fluid model),
//   - how many iterations convergence takes from a cold start,
//   - a short packet-level MLTCP-Reno spot check of the same mix, with every
//     component's counters absorbed into one telemetry::MetricRegistry and
//     printed as a single consolidated stats table.
//
//   ./build/examples/cluster_report                # default mix
//   ./build/examples/cluster_report 1.8:0.15 1.8:0.15 1.2:0.25
//   ./build/examples/cluster_report 1.8:0.15 1.8:0.15 + 1.2:0.25 1.2:0.25
//
// Each argument is one job as <period_seconds>:<comm_fraction>; a literal
// '+' separates independent mixes. Multiple mixes are analyzed in parallel
// through the campaign runner (MLTCP_THREADS controls sharding) and the
// reports print in argument order regardless of which finishes first.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/fluid_model.hpp"
#include "analysis/metrics.hpp"
#include "core/mltcp.hpp"
#include "net/topology.hpp"
#include "runner/campaign.hpp"
#include "sched/centralized.hpp"
#include "telemetry/collect.hpp"
#include "telemetry/metrics.hpp"
#include "workload/cluster.hpp"
#include "workload/collective.hpp"

using namespace mltcp;

namespace {

struct JobMix {
  double period_s = 0.0;
  double comm_fraction = 0.0;
};

std::vector<std::vector<JobMix>> parse(int argc, char** argv) {
  std::vector<std::vector<JobMix>> mixes(1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "+") == 0) {
      if (!mixes.back().empty()) mixes.emplace_back();
      continue;
    }
    JobMix job;
    if (std::sscanf(argv[i], "%lf:%lf", &job.period_s,
                    &job.comm_fraction) != 2 ||
        job.period_s <= 0.0 || job.comm_fraction <= 0.0 ||
        job.comm_fraction >= 1.0) {
      std::fprintf(stderr, "bad job spec '%s' (want period:comm_fraction)\n",
                   argv[i]);
      std::exit(2);
    }
    mixes.back().push_back(job);
  }
  if (mixes.back().empty()) mixes.pop_back();
  if (mixes.empty()) {
    // Default: the paper's Figure 2 mix.
    mixes = {{{1.2, 0.25}, {1.8, 0.15}, {1.8, 0.15}, {1.8, 0.15}}};
  }
  return mixes;
}

/// Packet-level spot check: the same mix under MLTCP-Reno on a dumbbell for
/// a few iterations, reported as one consolidated registry table instead of
/// hand-rolled per-component printouts.
runner::Report packet_validation(const std::vector<JobMix>& mix) {
  runner::Report rep;
  constexpr int kIterations = 10;

  sim::Simulator sim;
  net::DumbbellConfig dcfg;
  dcfg.hosts_per_side = std::max<int>(2, static_cast<int>(mix.size()));
  net::Dumbbell d = net::make_dumbbell(sim, dcfg);
  workload::Cluster cluster(sim);

  double horizon_s = 0.0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const double comm_s = mix[i].period_s * mix[i].comm_fraction;
    const auto bytes = static_cast<std::int64_t>(
        comm_s * dcfg.bottleneck_rate_bps / 8.0);
    core::MltcpConfig cfg;
    cfg.tracker.total_bytes = bytes;
    cfg.tracker.comp_time =
        sim::from_seconds((mix[i].period_s - comm_s) / 2.0);

    workload::JobSpec spec;
    spec.name = "job" + std::to_string(i);
    spec.flows = workload::single_flow(d.left[i], d.right[i], bytes);
    spec.compute_time = sim::from_seconds(mix[i].period_s - comm_s);
    spec.max_iterations = kIterations;
    spec.cc = core::mltcp_reno_factory(cfg);
    cluster.add_job(spec);
    horizon_s = std::max(horizon_s, mix[i].period_s);
  }

  cluster.start_all();
  // Generous horizon: even a badly contended cold start finishes well within
  // a few periods per iteration.
  sim.run_until(sim::from_seconds(horizon_s * kIterations * 4.0));

  telemetry::MetricRegistry reg;
  telemetry::collect_cluster(reg, "cluster", cluster);
  telemetry::collect_link(reg, "net/bottleneck", *d.bottleneck);
  telemetry::collect_switch(reg, "net/left_switch", *d.left_switch);
  telemetry::collect_switch(reg, "net/right_switch", *d.right_switch);

  rep.addf("\npacket-level validation (MLTCP-Reno, %d iterations/job):\n",
           kIterations);
  rep.add(reg.table());
  return rep;
}

runner::Report analyze(const std::vector<JobMix>& mix) {
  runner::Report rep;
  double utilization = 0.0;
  for (const auto& j : mix) utilization += j.comm_fraction;
  rep.addf("cluster report: %zu jobs, bottleneck utilization %.2f\n\n",
           mix.size(), utilization);

  // 1. Does an interleaved schedule exist at all? (centralized view)
  std::vector<sched::PeriodicDemand> demands;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    demands.push_back(sched::PeriodicDemand{
        "job" + std::to_string(i), sim::from_seconds(mix[i].period_s),
        sim::from_seconds(mix[i].period_s * mix[i].comm_fraction)});
  }
  const sched::Schedule schedule = sched::optimize_interleaving(demands);
  rep.addf("centralized optimizer: hyperperiod %.2fs, residual overlap "
           "%.4fs -> %s\n",
           sim::to_seconds(schedule.hyperperiod),
           sim::to_seconds(schedule.excess),
           schedule.excess == 0 ? "fully interleavable"
                                : "NOT fully interleavable");
  rep.addf("optimal offsets:");
  for (const auto off : schedule.offsets) {
    rep.addf(" %.3fs", sim::to_seconds(off));
  }
  rep.addf("\n\n");

  // 2. What does distributed MLTCP converge to? (fluid model)
  analysis::FluidConfig fc;
  fc.dt = 1e-3;
  std::vector<analysis::FluidJobSpec> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    analysis::FluidJobSpec spec;
    spec.comm_seconds = mix[i].period_s * mix[i].comm_fraction;
    spec.compute_seconds = mix[i].period_s - spec.comm_seconds;
    spec.start_offset = 0.01 * static_cast<double>(i);  // symmetry breaker
    jobs.push_back(spec);
  }
  analysis::FluidSimulator fluid(fc, jobs);
  fluid.run_iterations(300, 1e4);

  rep.addf("MLTCP (fluid model, Slope 1.75 / Intercept 0.25):\n");
  rep.addf("%-6s %10s %14s %16s %14s\n", "job", "ideal_s", "converged_s",
           "slowdown", "converged_by");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto times = fluid.iteration_times(j);
    const double converged = analysis::tail_mean(times, 20);
    int last_bad = -1;
    for (std::size_t i = 0; i + 20 < times.size(); ++i) {
      if (times[i] > converged * 1.05) last_bad = static_cast<int>(i);
    }
    rep.addf("%-6zu %10.3f %14.3f %15.1f%% %14d\n", j, mix[j].period_s,
             converged, 100.0 * (converged / mix[j].period_s - 1.0),
             last_bad + 1);
  }

  fluid.reset_excess();
  fluid.run_until(fluid.now() + 30.0);
  rep.addf("\nresidual comm overlap in steady state: %.4f s/s\n",
           fluid.accumulated_excess() / 30.0);
  if (schedule.excess == 0) {
    rep.addf("verdict: this mix self-interleaves under MLTCP; expect "
             "near-ideal iteration times.\n");
  } else {
    rep.addf("verdict: the mix is overloaded; MLTCP will still reduce "
             "contention but cannot reach the ideal.\n");
  }

  // 3. Does the packet-level transport agree? One consolidated stats table.
  rep.add(packet_validation(mix).text());
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::vector<JobMix>> mixes = parse(argc, argv);

  std::vector<runner::SimSpec> specs;
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    runner::SimSpec spec;
    spec.name = "mix" + std::to_string(m);
    const std::vector<JobMix>& mix = mixes[m];
    const bool banner = mixes.size() > 1;
    spec.run = [&mix, m, banner](const runner::SimSpec&) {
      runner::Report rep;
      if (banner) rep.addf("======== mix %zu ========\n", m);
      rep.add(analyze(mix).text());
      if (banner) rep.addf("\n");
      return rep;
    };
    specs.push_back(std::move(spec));
  }
  runner::run_and_print(specs, runner::options_from_env());
  return 0;
}
