// Beyond the paper's evaluation — stress tests of MLTCP outside its stated
// assumptions and scale:
//  (E1) pipeline/microbatched jobs: §4 assumes one continuous communication
//       phase per iteration; here each iteration sends 3 chunks separated by
//       compute gaps. Does MLTCP still interleave?
//  (E2) job churn: a new job joins a converged system mid-run; how fast does
//       the system re-converge, and does it disturb the incumbents?
//  (E3) scalability: fluid-model sweep of convergence iterations vs number
//       of jobs at fixed 0.8 utilization.
//  (E4) switch-enforced fairness (DRR) baseline: even a perfectly fair
//       switch does not interleave periodic jobs — the gap MLTCP fills.
//  (E5) SACK vs NewReno loss recovery under MLTCP (transport robustness).
//  (E6) multiple bottlenecks: jobs on a 3-rack leaf-spine whose paths share
//       different fabric links; MLTCP must interleave per-link without any
//       global view.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/fluid_model.hpp"
#include "analysis/metrics.hpp"
#include "bench_common.hpp"

namespace {

using namespace mltcp;

double ideal_s() {
  return sim::to_seconds(workload::gpt2_profile().ideal_iteration_time);
}

// --------------------------------------------------------------------- E1

void pipeline_jobs() {
  bench::print_header("E1: microbatched communication (3 chunks/iteration)");
  auto run = [](int chunks) {
    auto exp = bench::make_experiment();
    const workload::ModelProfile gpt2 = workload::gpt2_profile();
    const std::int64_t total = workload::comm_bytes(gpt2, 1e9);
    std::vector<workload::Job*> jobs;
    for (int i = 0; i < 3; ++i) {
      workload::JobSpec spec;
      spec.name = "j" + std::to_string(i);
      for (int f = 0; f < 4; ++f) {
        spec.flows.push_back(workload::FlowSpec{
            exp->dumbbell.left[i], exp->dumbbell.right[i], total / 4});
      }
      // Keep the iteration budget constant: the chunk gaps come out of the
      // compute phase.
      spec.comm_chunks = chunks;
      spec.chunk_gap = sim::milliseconds(30);
      spec.compute_time = workload::compute_time(gpt2) -
                          sim::milliseconds(30) * (chunks - 1);
      spec.max_iterations = 50;
      core::MltcpConfig cfg = bench::mltcp_config_for(gpt2, 1e9, 4);
      // COMP_TIME must sit between the chunk gap and the real compute gap.
      cfg.tracker.comp_time = sim::milliseconds(200);
      spec.cc = core::mltcp_reno_factory(cfg);
      jobs.push_back(exp->cluster->add_job(spec));
    }
    exp->cluster->start_all();
    exp->sim.run_until(sim::seconds(170));
    std::vector<double> tails;
    for (workload::Job* job : jobs) {
      tails.push_back(analysis::tail_mean(job->iteration_times_seconds(), 8));
    }
    return analysis::mean(tails);
  };
  const std::vector<int> chunk_counts = {1, 3};
  const std::vector<double> tails = runner::run_campaign<int, double>(
      chunk_counts, [&run](const int c, std::size_t) { return run(c); },
      bench::campaign_options());
  const double single = tails[0];
  const double piped = tails[1];
  std::printf("1 chunk/iteration : converged %.3fs (ideal %.3fs)\n", single,
              ideal_s());
  std::printf("3 chunks/iteration: converged %.3fs -> MLTCP %s outside the "
              "single-phase assumption\n",
              piped, piped < ideal_s() * 1.10 ? "still interleaves" :
                                                "degrades");
}

// --------------------------------------------------------------------- E2

void job_churn() {
  bench::print_header("E2: job churn (4th job joins at t=40s)");
  auto exp = bench::make_experiment();
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const core::MltcpConfig cfg = bench::mltcp_config_for(gpt2, 1e9, 4);
  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 4; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = 60;
    if (i == 3) opts.start_time = sim::seconds(40);
    jobs.push_back(bench::add_profile_job(*exp, gpt2, i,
                                          core::mltcp_reno_factory(cfg),
                                          opts));
  }
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(180));

  // Per-iteration mean across incumbents, and the late joiner separately.
  std::printf("iteration,incumbent_mean_s,joiner_s\n");
  const auto j3 = jobs[3]->iteration_times_seconds();
  for (int k = 0; k < 60; k += 3) {
    double incumbents = 0.0;
    int n = 0;
    for (int i = 0; i < 3; ++i) {
      const auto t = jobs[i]->iteration_times_seconds();
      if (k < static_cast<int>(t.size())) {
        incumbents += t[k];
        ++n;
      }
    }
    std::printf("%d,%.3f,%s\n", k, n > 0 ? incumbents / n : 0.0,
                k < static_cast<int>(j3.size())
                    ? std::to_string(j3[k]).substr(0, 5).c_str()
                    : "-");
  }
  for (int i = 0; i < 4; ++i) {
    std::printf("job %d converged(last-8): %.3fs\n", i,
                analysis::tail_mean(jobs[i]->iteration_times_seconds(), 8));
  }
}

// --------------------------------------------------------------------- E3

void scalability() {
  bench::print_header("E3: fluid-model convergence vs number of jobs "
                      "(utilization fixed at 0.8)");
  std::printf("jobs,comm_fraction,iters_to_interleave\n");
  const std::vector<int> sizes = {2, 4, 6, 8, 12, 16, 24};
  const std::vector<int> convergence = runner::run_campaign<int, int>(
      sizes,
      [](const int n, std::size_t) {
        const double a = 0.8 / n;
        analysis::FluidConfig fc;
        fc.dt = 1e-3;
        std::vector<analysis::FluidJobSpec> jobs(n);
        for (int j = 0; j < n; ++j) {
          jobs[j].comm_seconds = a * 1.8;
          jobs[j].compute_seconds = 1.8 - a * 1.8;
          jobs[j].start_offset = 0.01 * j;
        }
        analysis::FluidSimulator fluid(fc, jobs);
        fluid.run_iterations(400, 2e4);
        int conv = 0;
        for (int j = 0; j < n; ++j) {
          const auto times = fluid.iteration_times(j);
          int last_bad = -1;
          for (std::size_t i = 0; i < times.size(); ++i) {
            if (times[i] > 1.8 * 1.02) last_bad = static_cast<int>(i);
          }
          conv = std::max(conv, last_bad + 1);
        }
        return conv;
      },
      bench::campaign_options());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%d,%.3f,%d\n", sizes[i], 0.8 / sizes[i], convergence[i]);
  }
}

// --------------------------------------------------------------------- E4

void drr_baseline() {
  bench::print_header("E4: switch-enforced fair queueing (DRR) vs MLTCP");
  auto run = [](bool drr, bool mltcp) {
    bench::ScenarioConfig scenario;
    if (drr) scenario.bottleneck_queue = net::make_drr_factory(256 * 1500);
    auto exp = bench::make_experiment(scenario);
    const workload::ModelProfile gpt2 = workload::gpt2_profile();
    const core::MltcpConfig cfg = bench::mltcp_config_for(gpt2, 1e9, 4);
    std::vector<workload::Job*> jobs;
    for (int i = 0; i < 3; ++i) {
      bench::ProfileJobOptions opts;
      opts.max_iterations = 40;
      opts.noise_stddev_seconds = 0.005;
      jobs.push_back(bench::add_profile_job(
          *exp, gpt2, i,
          mltcp ? core::mltcp_reno_factory(cfg) : core::reno_factory(),
          opts));
    }
    exp->cluster->start_all();
    exp->sim.run_until(sim::seconds(140));
    std::vector<double> tails;
    for (workload::Job* job : jobs) {
      tails.push_back(analysis::tail_mean(job->iteration_times_seconds(), 8));
    }
    return analysis::mean(tails);
  };
  struct Combo {
    bool drr;
    bool mltcp;
  };
  const std::vector<Combo> combos = {{false, false}, {true, false},
                                     {false, true}};
  const std::vector<double> tails = runner::run_campaign<Combo, double>(
      combos,
      [&run](const Combo& c, std::size_t) { return run(c.drr, c.mltcp); },
      bench::campaign_options());
  std::printf("reno + droptail : %.3fs\n", tails[0]);
  std::printf("reno + DRR      : %.3fs  <- perfect per-flow fairness alone "
              "does not interleave\n",
              tails[1]);
  std::printf("mltcp + droptail: %.3fs (ideal %.3fs)\n", tails[2],
              ideal_s());
}

// --------------------------------------------------------------------- E5

void sack_ablation() {
  bench::print_header("E5: SACK vs NewReno recovery under injected loss");
  auto run = [](bool sack, double loss) {
    sim::Simulator sim;
    net::DumbbellConfig dc;
    dc.hosts_per_side = 1;
    // WAN-ish RTT so recovery efficiency (not the link) limits throughput.
    dc.bottleneck_delay = sim::milliseconds(2);
    dc.bottleneck_queue = net::make_random_drop_factory(loss, 512 * 1500, 5);
    auto d = net::make_dumbbell(sim, dc);
    tcp::SenderConfig scfg;
    scfg.use_sack = sack;
    tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1,
                      std::make_unique<tcp::RenoCC>(), scfg);
    sim::SimTime done = -1;
    flow.send_message(20'000'000, [&](sim::SimTime t) { done = t; });
    sim.run_until(sim::seconds(120));
    struct Out {
      double seconds;
      std::int64_t timeouts;
    };
    return Out{done > 0 ? sim::to_seconds(done) : -1.0,
               flow.sender().stats().timeouts};
  };
  struct LossSpec {
    bool sack;
    double loss;
  };
  std::vector<LossSpec> specs;
  for (const double p : {0.001, 0.005, 0.02}) {
    specs.push_back(LossSpec{false, p});
    specs.push_back(LossSpec{true, p});
  }
  using Out = decltype(run(false, 0.0));
  const std::vector<Out> outs = runner::run_campaign<LossSpec, Out>(
      specs,
      [&run](const LossSpec& s, std::size_t) { return run(s.sack, s.loss); },
      bench::campaign_options());
  std::printf("loss_p,newreno_s,newreno_rtos,sack_s,sack_rtos\n");
  for (std::size_t i = 0; i + 1 < outs.size(); i += 2) {
    const Out& nr = outs[i];
    const Out& sk = outs[i + 1];
    std::printf("%.3f,%.2f,%lld,%.2f,%lld\n", specs[i].loss, nr.seconds,
                static_cast<long long>(nr.timeouts), sk.seconds,
                static_cast<long long>(sk.timeouts));
  }
  std::printf("Observed shape: in the loss-limited regime windows are small "
              "(<= ~10 segments),\nso NewReno rarely faces multiple holes per "
              "window and SACK's advantage is modest.\n");
}

// --------------------------------------------------------------------- E6

void multi_bottleneck() {
  bench::print_header("E6: leaf-spine with two shared fabric links");
  // 3 racks, 1 spine. Jobs: A spans rack0->rack1 (uses tor0->spine and
  // spine->tor1), B spans rack1->rack2, C spans rack0->rack2 (shares the
  // uplink with A and the rack2 downlink with B). All links 1 Gbps.
  sim::Simulator sim;
  net::LeafSpineConfig ls_cfg;
  ls_cfg.racks = 3;
  ls_cfg.hosts_per_rack = 4;
  ls_cfg.spines = 1;
  ls_cfg.host_rate_bps = 4e9;
  ls_cfg.fabric_rate_bps = 1e9;
  net::LeafSpine ls = net::make_leaf_spine(sim, ls_cfg);

  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const std::int64_t total = workload::comm_bytes(gpt2, 1e9);
  core::MltcpConfig cfg;
  cfg.tracker.total_bytes = total / 4;
  cfg.tracker.comp_time = workload::compute_time(gpt2) / 2;

  workload::Cluster cluster(sim);
  struct Placement {
    const char* name;
    int src_rack;
    int dst_rack;
  };
  const Placement placements[] = {{"A(r0->r1)", 0, 1},
                                  {"B(r1->r2)", 1, 2},
                                  {"C(r0->r2)", 0, 2}};
  std::vector<workload::Job*> jobs;
  int host_slot = 0;
  for (const auto& pl : placements) {
    workload::JobSpec spec;
    spec.name = pl.name;
    for (int f = 0; f < 4; ++f) {
      spec.flows.push_back(workload::FlowSpec{
          ls.racks[pl.src_rack][host_slot % 4],
          ls.racks[pl.dst_rack][(host_slot + 1) % 4], total / 4});
    }
    ++host_slot;
    spec.compute_time = workload::compute_time(gpt2);
    spec.max_iterations = 45;
    spec.cc = core::mltcp_reno_factory(cfg);
    jobs.push_back(cluster.add_job(spec));
  }
  cluster.start_all();
  sim.run_until(sim::seconds(160));

  for (const workload::Job* job : jobs) {
    std::printf("%s: converged(last-8) %.3fs (ideal %.3fs)\n",
                job->name().c_str(),
                analysis::tail_mean(job->iteration_times_seconds(), 8),
                ideal_s());
  }
  std::printf("Expected shape: every job reaches its ideal once the pairwise "
              "per-link conflicts (A/C and B/C) interleave.\n");
}

}  // namespace

int main() {
  std::printf("MLTCP extension experiments (beyond the paper's "
              "evaluation).\n");
  pipeline_jobs();
  job_churn();
  scalability();
  drr_baseline();
  sack_ablation();
  multi_bottleneck();
  return 0;
}
