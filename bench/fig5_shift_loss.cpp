// Figure 5: the analytical machinery of §4 for two identical jobs.
//  - Eq. 3 shift function Shift(D) over the offset circle,
//  - Eq. 4 loss function Loss(D) = -Int Shift (Figure 5c: for a = 1/2 the
//    loss is minimal at D = T/2, the fully interleaved configuration),
//  - gradient-descent trajectories from several starting offsets,
//  - cross-validation of the analytical descent against the fluid model.

#include <cmath>
#include <cstdio>

#include "analysis/fluid_model.hpp"
#include "analysis/shift.hpp"

namespace {

using namespace mltcp;

void print_shift_and_loss(const analysis::ShiftParams& p) {
  std::printf("\nD/T,shift_s,loss\n");
  const int n = 40;
  double min_loss = 1e100;
  double argmin = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double d = p.period * i / n;
    const double s = analysis::shift(d, p);
    const double l = analysis::loss(d, p);
    if (l < min_loss) {
      min_loss = l;
      argmin = d;
    }
    std::printf("%.3f,%.5f,%.5f\n", d / p.period, s, l);
  }
  std::printf("loss minimum at D = %.3f s = %.3f T (expected %.3f T for "
              "a=%.2f)\n",
              argmin, argmin / p.period, 0.5, p.alpha);
}

void print_descent(const analysis::ShiftParams& p) {
  std::printf("\ngradient descent trajectories (D_i in seconds):\n");
  for (const double frac : {0.02, 0.10, 0.30, 0.45, 0.70, 0.95}) {
    const auto res = analysis::descend(frac * p.period, p, 200, 1e-4);
    std::printf("D0=%.3f:", frac * p.period);
    for (std::size_t i = 0; i < res.trajectory.size(); i += 2) {
      std::printf(" %.3f", res.trajectory[i]);
    }
    std::printf("  (converged=%s after %d iters)\n",
                res.converged ? "yes" : "no", res.iterations);
  }
}

void cross_validate_with_fluid(const analysis::ShiftParams& p) {
  std::printf("\nanalytic descent vs fluid model (offset after k "
              "iterations, D0 = 0.1 T):\n");
  const double d0 = 0.1 * p.period;

  const auto analytic = analysis::descend(d0, p, 40, 1e-9);

  analysis::FluidConfig fc;
  fc.dt = 1e-4;
  fc.f = std::make_shared<core::LinearAggressiveness>(p.slope, p.intercept);
  std::vector<analysis::FluidJobSpec> jobs(2);
  const double comm = p.alpha * p.period;
  for (auto& j : jobs) {
    j.comm_seconds = comm;
    j.compute_seconds = p.period - comm;
  }
  jobs[1].start_offset = d0;
  analysis::FluidSimulator fluid(fc, jobs);
  fluid.run_iterations(30);

  std::printf("iter,analytic_D,fluid_D\n");
  for (int k = 0; k < 30; k += 3) {
    double analytic_d =
        k < static_cast<int>(analytic.trajectory.size())
            ? analytic.trajectory[k]
            : analytic.trajectory.back();
    double fluid_d = 0.0;
    const auto& r0 = fluid.iterations(0);
    const auto& r1 = fluid.iterations(1);
    if (k < static_cast<int>(r0.size()) && k < static_cast<int>(r1.size())) {
      fluid_d = std::fmod(r1[k].comm_start - r0[k].comm_start, p.period);
      if (fluid_d < 0) fluid_d += p.period;
    }
    std::printf("%d,%.4f,%.4f\n", k, analytic_d, fluid_d);
  }
}

}  // namespace

int main() {
  std::printf("Reproduces Figure 5 of MLTCP (HotNets'24): shift (Eq. 3), "
              "loss (Eq. 4)\nand the gradient-descent view of convergence. "
              "Two identical jobs, a=1/2, T=1.8s,\nSlope=1.75, "
              "Intercept=0.25.\n");

  analysis::ShiftParams p;
  p.alpha = 0.5;
  p.period = 1.8;

  print_shift_and_loss(p);
  print_descent(p);
  cross_validate_with_fluid(p);

  std::printf("\nEq. 3 sanity: Shift(0)=%.4f, Shift(aT)=%.4f (both must be "
              "0); peak near the middle.\n",
              analysis::shift_eq3(0.0, p),
              analysis::shift_eq3(p.alpha * p.period, p));
  return 0;
}
