#!/usr/bin/env bash
# Sharded-PDES gate: the two properties the executor must hold at bench
# scale, checked in one script so CI exercises them together.
#
#  1. Determinism — a quick leaf-spine campaign run at 1 shard and at
#     N shards must produce byte-identical cluster_scale_sim.csv files
#     (the sim-deterministic view: job/link/host/switch state digest,
#     no wall-clock or RSS columns). Any divergence fails the gate.
#  2. Speedup — on a host with >= N cores the N-shard run must beat the
#     serial run by SPEEDUP_FLOOR in wall time over the leaf-spine points.
#     On smaller hosts (CI runners are often 1-2 cores) the executor falls
#     back to cooperative scheduling, so the floor drops to "not slower
#     than 1/OVERHEAD_CEIL" — the gate then only bounds sharding overhead.
#
# Usage: bench/check_shard_speedup.sh [N]   (default 4 shards)
# Env:   BUILD_DIR, SPEEDUP_FLOOR (default 2.0), OVERHEAD_CEIL (default 1.4)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
SHARDS="${1:-4}"
SPEEDUP_FLOOR="${SPEEDUP_FLOOR:-2.0}"
OVERHEAD_CEIL="${OVERHEAD_CEIL:-1.4}"
BIN="$BUILD/bench/cluster_scale"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD --target cluster_scale)"
  exit 2
fi

CORES="$(nproc 2>/dev/null || echo 1)"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== serial reference (1 shard) =="
MLTCP_RESULTS_DIR="$TMP/serial" "$BIN" --quick --shards=1 \
  | tee "$TMP/serial.txt"
echo
echo "== sharded run ($SHARDS shards) =="
MLTCP_RESULTS_DIR="$TMP/sharded" "$BIN" --quick --shards="$SHARDS" \
  | tee "$TMP/sharded.txt"

echo
echo "== determinism: byte-diff of sim-deterministic CSVs =="
if ! diff -u "$TMP/serial/cluster_scale_sim.csv" \
             "$TMP/sharded/cluster_scale_sim.csv"; then
  echo "SHARD GATE FAILED: $SHARDS-shard run diverged from serial (digest or"
  echo "sim-state mismatch above) — the PDES determinism guarantee is broken."
  exit 1
fi
echo "identical: serial and $SHARDS-shard runs reached the same model state"

# Wall-time comparison over the leaf-spine points (the only scenarios the
# sharded path executes; dumbbell rows stay serial in both runs).
python3 - "$TMP/serial.txt" "$TMP/sharded.txt" "$SHARDS" "$CORES" \
    "$SPEEDUP_FLOOR" "$OVERHEAD_CEIL" <<'PY'
import sys

serial_path, sharded_path, shards, cores, floor, ceil = sys.argv[1:7]
shards, cores = int(shards), int(cores)
floor, ceil = float(floor), float(ceil)

def leafspine_wall(path):
    total = 0.0
    with open(path) as f:
        for line in f:
            if not line.startswith("RESULT "):
                continue
            kv = dict(item.split("=", 1) for item in line.split()[1:])
            if kv["name"].startswith("leafspine"):
                total += float(kv["wall_s"])
    return total

serial = leafspine_wall(serial_path)
sharded = leafspine_wall(sharded_path)
if sharded <= 0.0:
    sys.exit("no leaf-spine RESULT rows in the sharded run")
speedup = serial / sharded

if cores >= shards:
    need = floor
    print(f"speedup: {speedup:.2f}x over serial ({cores} cores, "
          f"floor {need:.1f}x)")
    if speedup < need:
        sys.exit(f"SHARD GATE FAILED: {speedup:.2f}x < {need:.1f}x floor "
                 f"on a {cores}-core host")
else:
    # Cooperative fallback: no parallel hardware to win on; bound the
    # overhead instead so sharding never silently becomes a slowdown.
    need = 1.0 / ceil
    print(f"speedup: {speedup:.2f}x over serial — host has {cores} core(s) "
          f"for {shards} shards, so only the overhead bound applies "
          f"(>= {need:.2f}x, i.e. <= {ceil:.1f}x slower)")
    if speedup < need:
        sys.exit(f"SHARD GATE FAILED: cooperative {shards}-shard run is "
                 f"{1.0 / speedup:.2f}x slower than serial "
                 f"(ceiling {ceil:.1f}x)")
print("shard gate passed")
PY
