// Traffic mix: training jobs sharing the dumbbell with production traffic.
// Two GPT-2 jobs train on host pairs 0-1 while one background workload —
// each of the five matrix patterns (poisson / incast / tornado / all_to_all
// / permutation), a hadoop-style shuffle, or a request-response serving job
// — loads the remaining pairs. Every workload runs twice, once with the
// training jobs on plain Reno and once MLTCP-augmented, plus a no-background
// reference per transport, as one campaign (sharded across MLTCP_THREADS;
// CSVs are keyed by run index, so output is byte-identical at every thread
// count — CI diffs a 1-thread against a 4-thread run).
//
// Reported per variant:
//   - training iteration slowdown vs the no-background reference, and
//   - the background flows' FCT tail (p50/p90/p99/p999), open flows
//     counted separately (results/traffic_mix.csv), with downsampled
//     per-variant CDFs in results/traffic_mix_cdf.csv.
//
// Self-checks (non-zero exit on violation):
//   - FCT accounting reconciles: posted == completed + open, and every
//     completed FCT is positive.
//   - MLTCP keeps training competitive: under every background workload the
//     MLTCP jobs' converged iteration time stays within 10% of the Reno
//     jobs' under the same workload (the bench-smoke gate; the simulation
//     is deterministic, so the gate is exact, not statistical). The
//     per-transport slowdown columns are relative to each transport's own
//     no-background reference — MLTCP's reference is the interleaved
//     schedule, so background perturbation shows up as a larger *relative*
//     slowdown even while its absolute times match or beat Reno's; gate on
//     absolute times, report both.
//
//   traffic_mix           full windows
//   traffic_mix --quick   CI smoke point (short windows, same variants)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "tcp/reno.hpp"
#include "traffic/jobs.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"

namespace {

using namespace mltcp;

enum class Background {
  kNone,
  kPoisson,
  kIncast,
  kTornado,
  kAllToAll,
  kPermutation,
  kShuffle,
  kServing,
};

const char* background_name(Background b) {
  switch (b) {
    case Background::kNone: return "none";
    case Background::kPoisson: return "poisson";
    case Background::kIncast: return "incast";
    case Background::kTornado: return "tornado";
    case Background::kAllToAll: return "all_to_all";
    case Background::kPermutation: return "permutation";
    case Background::kShuffle: return "shuffle";
    case Background::kServing: return "serving";
  }
  return "?";
}

struct Spec {
  Background background = Background::kNone;
  bool mltcp = false;  ///< Training transport; background is always Reno.
  bool quick = false;
};

struct Result {
  double train_tail_s = 0.0;  ///< Converged iteration time, mean of 2 jobs.
  analysis::FctStats fct;
  std::size_t posted = 0;
  bool reconciled = true;
};

tcp::CcFactory reno() {
  return [] { return std::make_unique<tcp::RenoCC>(); };
}

traffic::TrafficConfig pattern_config(Background b, bool quick) {
  traffic::TrafficConfig cfg;
  cfg.start = sim::seconds(quick ? 3 : 5);
  cfg.stop = sim::seconds(quick ? 12 : 40);
  cfg.seed = 1;  // One fixed stream per variant; runs are deterministic.
  switch (b) {
    case Background::kPoisson:
    case Background::kPermutation:
      cfg.pattern = b == Background::kPoisson ? traffic::Pattern::kPoisson
                                              : traffic::Pattern::kPermutation;
      cfg.size_dist = traffic::SizeDist::kPareto;
      cfg.mean_bytes = 40'000;
      cfg.flows_per_second = 400.0;
      break;
    case Background::kIncast:
      cfg.pattern = traffic::Pattern::kIncast;
      cfg.mean_bytes = 20'000;
      cfg.epoch = sim::milliseconds(50);
      cfg.incast_fanin = 8;
      break;
    case Background::kTornado:
      cfg.pattern = traffic::Pattern::kTornado;
      cfg.mean_bytes = 30'000;
      cfg.epoch = sim::milliseconds(100);
      break;
    case Background::kAllToAll:
      cfg.pattern = traffic::Pattern::kAllToAll;
      cfg.mean_bytes = 10'000;
      cfg.epoch = sim::milliseconds(250);
      break;
    default:
      break;
  }
  return cfg;
}

Result run(const Spec& spec, std::size_t run_index, runner::CsvSink& csv,
           runner::CsvSink& cdf_csv) {
  auto exp = bench::make_experiment();
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const sim::SimTime horizon = sim::seconds(spec.quick ? 30 : 90);

  // Two training jobs on pairs 0-1; the background loads pairs 2-7 (the
  // matrix patterns additionally touch every host, training pairs
  // included — production traffic does not route around the GPUs).
  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = spec.quick ? 12 : 36;
    tcp::CcFactory cc;
    if (spec.mltcp) {
      cc = core::mltcp_reno_factory(bench::mltcp_config_for(
          gpt2, exp->scenario.bottleneck_rate_bps, opts.num_flows));
    } else {
      cc = reno();
    }
    jobs.push_back(bench::add_profile_job(*exp, gpt2, i, cc, opts));
  }

  const auto& topo_hosts = exp->dumbbell.topology->hosts();
  std::vector<net::Host*> hosts(topo_hosts.begin(), topo_hosts.end());

  // At most one of these is live per run; all background flows are plain
  // Reno — the legacy traffic MLTCP must coexist with, per the paper.
  std::unique_ptr<traffic::TrafficSource> source;
  std::unique_ptr<traffic::ShuffleJob> shuffle;
  std::unique_ptr<traffic::ServingJob> serving;

  switch (spec.background) {
    case Background::kNone:
      break;
    case Background::kShuffle: {
      traffic::ShuffleConfig cfg;
      cfg.mappers = {exp->dumbbell.left[4], exp->dumbbell.left[5],
                     exp->dumbbell.left[6], exp->dumbbell.left[7]};
      cfg.reducers = {exp->dumbbell.right[4], exp->dumbbell.right[5],
                      exp->dumbbell.right[6], exp->dumbbell.right[7]};
      cfg.bytes_per_pair = 300'000;
      cfg.reduce_time = sim::milliseconds(50);
      cfg.waves = spec.quick ? 40 : 200;
      cfg.start_time = sim::seconds(spec.quick ? 3 : 5);
      cfg.cc = reno();
      shuffle = std::make_unique<traffic::ShuffleJob>(exp->sim, *exp->cluster,
                                                      std::move(cfg));
      shuffle->start();
      break;
    }
    case Background::kServing: {
      traffic::ServingConfig cfg;
      cfg.frontend = exp->dumbbell.left[2];
      cfg.backends = {exp->dumbbell.right[2], exp->dumbbell.right[3],
                      exp->dumbbell.right[4], exp->dumbbell.right[5]};
      cfg.requests_per_second = 150.0;
      cfg.fanout = 2;
      cfg.request_bytes = 2'000;
      cfg.response_bytes = 80'000;
      cfg.start_time = sim::seconds(spec.quick ? 3 : 5);
      cfg.stop_time = sim::seconds(spec.quick ? 12 : 40);
      cfg.cc = reno();
      serving = std::make_unique<traffic::ServingJob>(exp->sim, *exp->cluster,
                                                      std::move(cfg));
      serving->start();
      break;
    }
    default: {
      source = std::make_unique<traffic::TrafficSource>(
          exp->sim, *exp->cluster, hosts,
          traffic::SourceOptions{reno(), {}, {}});
      source->install(pattern_config(spec.background, spec.quick));
      break;
    }
  }

  exp->cluster->start_all();
  exp->sim.run_until(horizon);
  if (shuffle) shuffle->stop();
  if (serving) serving->stop();

  Result res;
  res.train_tail_s =
      0.5 * (analysis::tail_mean(jobs[0]->iteration_times_seconds(), 5) +
             analysis::tail_mean(jobs[1]->iteration_times_seconds(), 5));

  std::vector<double> fcts;
  std::size_t open = 0;
  if (source) {
    fcts = source->completed_fcts_seconds();
    open = source->open();
    res.posted = source->posted();
    res.reconciled = source->posted() == source->completed() + open &&
                     source->bytes_completed() <= source->bytes_posted();
  } else if (shuffle) {
    fcts = shuffle->completed_fcts_seconds();
    open = shuffle->open_transfers();
    res.posted = shuffle->transfers().size();
    res.reconciled = res.posted == fcts.size() + open;
  } else if (serving) {
    fcts = serving->completed_latencies_seconds();
    open = serving->open_requests();
    res.posted = serving->requests_issued();
    res.reconciled = res.posted == fcts.size() + open;
  }
  for (double f : fcts) {
    if (!(f > 0.0)) res.reconciled = false;
  }
  res.fct = analysis::fct_stats(fcts, open);

  csv.append(run_index,
             std::vector<double>{
                 static_cast<double>(run_index),
                 static_cast<double>(spec.mltcp), res.train_tail_s,
                 static_cast<double>(res.fct.completed),
                 static_cast<double>(res.fct.open), res.fct.mean_s,
                 res.fct.p50_s, res.fct.p90_s, res.fct.p99_s, res.fct.p999_s,
                 res.fct.max_s});

  // Downsampled CDF (≤ 128 points): enough to plot the tail, small enough
  // to diff between thread counts.
  const auto cdf = analysis::make_cdf(std::move(fcts));
  const std::size_t step = std::max<std::size_t>(1, cdf.size() / 128);
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    const std::size_t j = std::min(i + step - 1, cdf.size() - 1);
    cdf_csv.append(run_index,
                   std::vector<double>{static_cast<double>(run_index),
                                       cdf[j].value,
                                       cdf[j].cumulative_probability});
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<Background> backgrounds = {
      Background::kNone,     Background::kPoisson,  Background::kIncast,
      Background::kTornado,  Background::kAllToAll, Background::kPermutation,
      Background::kShuffle,  Background::kServing};

  // Layout: specs[2 * kind + (mltcp ? 1 : 0)].
  std::vector<Spec> specs;
  for (Background b : backgrounds) {
    specs.push_back(Spec{b, false, quick});
    specs.push_back(Spec{b, true, quick});
  }

  runner::CsvSink csv({"run", "mltcp", "train_tail_s", "fct_n", "fct_open",
                       "fct_mean_s", "fct_p50_s", "fct_p90_s", "fct_p99_s",
                       "fct_p999_s", "fct_max_s"});
  runner::CsvSink cdf_csv({"run", "fct_s", "cum_prob"});

  const std::vector<Result> results = runner::run_campaign<Spec, Result>(
      specs,
      [&](const Spec& s, std::size_t i) { return run(s, i, csv, cdf_csv); },
      bench::campaign_options());

  bench::write_sink(csv, "traffic_mix");
  bench::write_sink(cdf_csv, "traffic_mix_cdf");

  bench::print_header(quick ? "traffic mix (quick)" : "traffic mix");
  std::printf("background,cc,train_tail_s,slowdown,fct_n,fct_open,"
              "fct_p50_ms,fct_p90_ms,fct_p99_ms,fct_p999_ms\n");

  bool ok = true;
  const double base_reno = results[0].train_tail_s;
  const double base_mltcp = results[1].train_tail_s;
  for (std::size_t k = 0; k < backgrounds.size(); ++k) {
    double slowdown[2] = {0.0, 0.0};
    for (int m = 0; m < 2; ++m) {
      const Result& r = results[2 * k + static_cast<std::size_t>(m)];
      const double base = m == 0 ? base_reno : base_mltcp;
      slowdown[m] = r.train_tail_s / base;
      std::printf("%s,%s,%.3f,%.3fx,%zu,%zu,%.2f,%.2f,%.2f,%.2f\n",
                  background_name(backgrounds[k]), m == 0 ? "reno" : "mltcp",
                  r.train_tail_s, slowdown[m], r.fct.completed, r.fct.open,
                  1e3 * r.fct.p50_s, 1e3 * r.fct.p90_s, 1e3 * r.fct.p99_s,
                  1e3 * r.fct.p999_s);
      if (!r.reconciled) {
        std::printf("FCT accounting failed to reconcile for %s/%s\n",
                    background_name(backgrounds[k]),
                    m == 0 ? "reno" : "mltcp");
        ok = false;
      }
    }
    // The gate: under every background workload, MLTCP training must stay
    // within 10% of plain Reno training under the same workload.
    const double reno_tail = results[2 * k].train_tail_s;
    const double mltcp_tail = results[2 * k + 1].train_tail_s;
    if (mltcp_tail > reno_tail * 1.10) {
      std::printf("GATE: mltcp tail %.3fs exceeds reno %.3fs by more than "
                  "10%% under %s\n", mltcp_tail, reno_tail,
                  background_name(backgrounds[k]));
      ok = false;
    }
  }
  std::printf("Expected shape: MLTCP training stays within 10%% of Reno "
              "training under every background workload, and FCT accounting "
              "reconciles exactly.\n");
  std::printf("traffic_mix: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
