// Flow-level scale campaign: how far past the packet path's flow ceiling
// the flowsim backend goes. bench/cluster_scale tops out at 256 jobs x 16
// flows = 4096 concurrent transfers on the packet path; this campaign pushes
// the flow-level backend through >= 100x that many transfers (>= 409,600)
// on the same leaf-spine fabric, in wall time comparable to one
// cluster_scale point — the quantitative case for the hybrid-fidelity
// split (flowsim for scale, packets for fidelity, bench/fidelity_gate for
// the bound between them).
//
// Scenarios:
//  - poisson: a Poisson/Pareto traffic matrix replayed through
//    traffic::TrafficSource — hundreds of thousands of short transfers with
//    bounded in-flight concurrency (the regime the busy-list event loop is
//    built for).
//  - training: MLTCP training jobs on the same fabric — the weighted
//    max-min path (F(bytes_ratio) refresh + water-filling) under sustained
//    collective traffic.
//
// Output: `RESULT key=value ...` lines (parsed by
// bench/record_flowsim_baseline.sh into results/BENCH_flowsim.json) plus a
// CSV. In the full run the poisson scenario must complete >= 409,600
// transfers or the binary exits 1 — the 100x claim is enforced, not
// aspirational.
//
// Modes:
//   flowsim_scale            full campaign (enforces the 100x floor)
//   flowsim_scale --quick    CI smoke variant (~1/10 transfers, no floor)
//   flowsim_scale --shards=N accepted for CLI parity with cluster_scale
//                            (MLTCP_SHARDS is the env twin) and recorded in
//                            the RESULT lines / CSV, but the run itself
//                            stays serial: the flow-level backend is a
//                            centralized max-min allocator whose every
//                            rate refresh reads global fabric state — there
//                            is no link-propagation cut to shard along.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "core/mltcp.hpp"
#include "flowsim/flow_simulator.hpp"
#include "net/topology.hpp"
#include "pdes/partition.hpp"
#include "sim/simulator.hpp"
#include "tcp/reno.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"

namespace {

using namespace mltcp;

/// The packet path's ceiling this campaign is measured against
/// (cluster_scale: 256 jobs x 16 flows).
constexpr std::int64_t kPacketCeiling = 4096;
constexpr std::int64_t kTransferFloor = 100 * kPacketCeiling;  // 409,600.

struct RunResult {
  std::string name;
  std::int64_t transfers = 0;  ///< Messages posted.
  std::int64_t completed = 0;
  int shards = 1;  ///< Requested via --shards/MLTCP_SHARDS; run stays serial.
  double sim_s = 0.0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  std::int64_t recomputes = 0;
  double p99_fct_s = 0.0;  ///< 0 when the scenario has no FCT records.
  double rss_mb = 0.0;        ///< Process high-water mark at record time.
  double rss_delta_mb = 0.0;  ///< High-water growth across this run.
};

void print_result(const RunResult& r) {
  const double tps =
      r.wall_s > 0.0 ? static_cast<double>(r.completed) / r.wall_s : 0.0;
  const double eps =
      r.wall_s > 0.0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
  std::printf("RESULT name=%s transfers=%" PRId64 " completed=%" PRId64
              " shards=%d sim_s=%.3f events=%" PRIu64 " wall_s=%.4f "
              "transfers_per_sec=%.1f events_per_sec=%.1f recomputes=%" PRId64
              " p99_fct_s=%.5f peak_rss_mb=%.1f rss_delta_mb=%.1f\n",
              r.name.c_str(), r.transfers, r.completed, r.shards, r.sim_s,
              r.events, r.wall_s, tps, eps, r.recomputes, r.p99_fct_s,
              r.rss_mb, r.rss_delta_mb);
  std::fflush(stdout);
}

/// The cluster_scale leaf-spine fabric: 16 racks x 16 hosts, 4 spines.
net::LeafSpine make_fabric(sim::Simulator& sim) {
  net::LeafSpineConfig cfg;
  cfg.racks = 16;
  cfg.hosts_per_rack = 16;
  cfg.spines = 4;
  cfg.host_rate_bps = 4e9;
  cfg.fabric_rate_bps = 1e9;
  return net::make_leaf_spine(sim, cfg);
}

std::vector<net::Host*> all_hosts(const net::LeafSpine& ls) {
  std::vector<net::Host*> hosts;
  for (const auto& rack : ls.racks) {
    hosts.insert(hosts.end(), rack.begin(), rack.end());
  }
  return hosts;
}

/// Poisson/Pareto matrix over the whole fabric. Full mode: 60 s of arrivals
/// at 8000 flows/s = 480,000 transfers (117x the packet ceiling).
RunResult run_poisson(bool quick, int shards) {
  bench::RssProbe rss = bench::RssProbe::begin();
  sim::Simulator sim;
  net::LeafSpine ls = make_fabric(sim);
  flowsim::FlowSimulator fs(sim, *ls.topology);
  workload::Cluster cluster(sim);
  cluster.set_backend(&fs);

  traffic::TrafficSource source(
      sim, cluster, all_hosts(ls),
      traffic::SourceOptions{[] { return std::make_unique<tcp::RenoCC>(); },
                             {},
                             {}});
  traffic::TrafficConfig tc;
  tc.pattern = traffic::Pattern::kPoisson;
  tc.size_dist = traffic::SizeDist::kPareto;
  tc.mean_bytes = 40'000;
  tc.flows_per_second = 8000.0;
  tc.start = 0;
  tc.stop = sim::seconds(quick ? 6 : 60);
  tc.seed = 31;
  source.install(tc);

  const sim::SimTime horizon = tc.stop + sim::seconds(5);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  const auto t1 = std::chrono::steady_clock::now();

  rss.end();
  RunResult r;
  r.name = "poisson";
  r.transfers = fs.stats().messages_posted;
  r.completed = fs.stats().messages_completed;
  r.shards = shards;
  r.sim_s = sim::to_seconds(horizon);
  r.events = sim.events_executed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.recomputes = fs.stats().recomputes;
  r.p99_fct_s =
      analysis::fct_stats(source.completed_fcts_seconds(), source.open())
          .p99_s;
  r.rss_mb = rss.after_mb;
  r.rss_delta_mb = rss.delta_mb();
  return r;
}

/// MLTCP training jobs on the fabric: 256 jobs x 4 flows, enough iterations
/// that the weighted-allocation path carries >= 100k messages in the full
/// run. Placement mirrors cluster_scale (rack r -> rack r+1 round-robin).
RunResult run_training(bool quick, int shards) {
  bench::RssProbe rss = bench::RssProbe::begin();
  sim::Simulator sim;
  net::LeafSpine ls = make_fabric(sim);
  flowsim::FlowSimulator fs(sim, *ls.topology);
  workload::Cluster cluster(sim);
  cluster.set_backend(&fs);

  const int n_jobs = 256;
  const int flows_per_job = 4;
  const int iterations = quick ? 10 : 100;
  const int racks = static_cast<int>(ls.racks.size());
  const int hosts_per_rack = static_cast<int>(ls.racks[0].size());
  for (int j = 0; j < n_jobs; ++j) {
    const int src_rack = j % racks;
    const int dst_rack = (src_rack + 1) % racks;
    const int base_host = (j / racks) % hosts_per_rack;
    workload::JobSpec spec;
    spec.name = "job" + std::to_string(j);
    for (int f = 0; f < flows_per_job; ++f) {
      const int h = (base_host + f) % hosts_per_rack;
      spec.flows.push_back(
          workload::FlowSpec{ls.racks[src_rack][h], ls.racks[dst_rack][h],
                             500'000});
    }
    spec.compute_time = sim::milliseconds(50);
    spec.max_iterations = iterations;
    spec.start_time = sim::milliseconds(5 * (j % 64));
    spec.cc = core::mltcp_reno_factory();
    cluster.add_job(spec);
  }
  cluster.start_all();

  const sim::SimTime horizon = sim::seconds(quick ? 40 : 400);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  const auto t1 = std::chrono::steady_clock::now();

  rss.end();
  RunResult r;
  r.name = "training";
  r.transfers = fs.stats().messages_posted;
  r.completed = fs.stats().messages_completed;
  r.shards = shards;
  r.sim_s = sim::to_seconds(horizon);
  r.events = sim.events_executed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.recomputes = fs.stats().recomputes;
  r.rss_mb = rss.after_mb;
  r.rss_delta_mb = rss.delta_mb();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int shards = pdes::shards_from_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::max(1, std::atoi(argv[i] + 9));
    }
  }
  bench::print_header(quick ? "flowsim scale (quick)" : "flowsim scale");
  std::printf("packet-path ceiling (cluster_scale): %" PRId64
              " flows; full-mode floor: %" PRId64 " transfers (100x)\n",
              kPacketCeiling, kTransferFloor);
  if (shards > 1) {
    std::printf("note: %d shards requested, but the flow-level backend is a "
                "centralized max-min allocator (every rate refresh reads "
                "global fabric state) — runs stay serial; the flag is "
                "recorded for cross-campaign parity only\n",
                shards);
  }

  std::vector<RunResult> results;
  results.push_back(run_poisson(quick, shards));
  results.push_back(run_training(quick, shards));
  for (const RunResult& r : results) print_result(r);

  auto csv = bench::open_csv(
      "flowsim_scale",
      {"name", "transfers", "completed", "shards", "sim_s", "events",
       "wall_s", "recomputes", "p99_fct_s", "peak_rss_mb", "rss_delta_mb"});
  for (const RunResult& r : results) {
    csv->row({r.name, std::to_string(r.transfers), std::to_string(r.completed),
              std::to_string(r.shards), std::to_string(r.sim_s),
              std::to_string(r.events), std::to_string(r.wall_s),
              std::to_string(r.recomputes), std::to_string(r.p99_fct_s),
              std::to_string(r.rss_mb), std::to_string(r.rss_delta_mb)});
  }

  if (!quick) {
    const std::int64_t completed = results[0].completed;
    std::printf("\nscale ratio: %" PRId64 " completed transfers = %.0fx the "
                "packet ceiling\n",
                completed,
                static_cast<double>(completed) /
                    static_cast<double>(kPacketCeiling));
    if (completed < kTransferFloor) {
      std::printf("FLOWSIM SCALE FAILED: %" PRId64 " < %" PRId64
                  " transfers\n",
                  completed, kTransferFloor);
      return 1;
    }
  }
  return 0;
}
