// Flow-level scale campaign: how far past the packet path's flow ceiling
// the flowsim backend goes. bench/cluster_scale tops out at 256 jobs x 16
// flows = 4096 concurrent transfers on the packet path; this campaign pushes
// the flow-level backend through a >= 1,000,000-transfer poisson point
// (≈244x the packet ceiling) on the same leaf-spine fabric — the
// quantitative case for the incremental dirty-set waterfill + drain-event
// heap (PR 9) on top of the hybrid-fidelity split (flowsim for scale,
// packets for fidelity, bench/fidelity_gate for the bound between them).
//
// Scenarios, in execution order:
//  - poisson-1m: the million-transfer Poisson/Pareto matrix (16,000 flows/s,
//    --flows scales the arrival budget). Runs FIRST so its rss_delta_mb is
//    an honest attribution: the kernel peak-RSS high-water mark never
//    decreases, so only the first/biggest run's delta measures itself
//    rather than the campaign's tallest predecessor.
//  - poisson: the PR 7-era 480,000-transfer point, kept for baseline
//    comparability (transfers/sec gate in record_flowsim_baseline.sh).
//  - training: MLTCP training jobs — the weighted max-min path
//    (F(bytes_ratio) refresh + water-filling) under sustained collectives.
//  - poisson-sharded: PDES composition sanity point. The fabric is
//    partitioned exactly as cluster_scale --shards does and the run executes
//    under pdes::ShardedRunner; since the fluid backend posts no link
//    deliveries, every flowsim event stays in shard 0 and the canonical
//    (when,key) order makes the run byte-identical to serial — asserted
//    against a serial twin (matched=1) before the RESULT line is trusted.
//
// Solver counters (recomputes, full_recomputes, waterfill_rounds/channels,
// frozen_skips, dirty_links, heap_updates) are read back through the
// telemetry MetricRegistry "flowsim/..." group (telemetry::collect_flowsim)
// and emitted in the RESULT/CSV lines, so algorithmic regressions — e.g. a
// silent fall-back to full recomputes — show up in CI, not just wall time.
//
// Modes:
//   flowsim_scale            full campaign (enforces the 1M and 100x floors)
//   flowsim_scale --quick    CI smoke variant (~1/10 transfers, no floors;
//                            the sharded identity check still hard-fails)
//   flowsim_scale --flows=N  arrival budget of the poisson-1m point
//   flowsim_scale --shards=N shard count of the poisson-sharded point
//                            (MLTCP_SHARDS is the env twin; minimum 2)

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "core/mltcp.hpp"
#include "flowsim/flow_simulator.hpp"
#include "net/topology.hpp"
#include "pdes/partition.hpp"
#include "pdes/sharded_runner.hpp"
#include "sim/simulator.hpp"
#include "tcp/reno.hpp"
#include "telemetry/collect.hpp"
#include "telemetry/metrics.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"
#include "workload/cluster.hpp"

namespace {

using namespace mltcp;

/// The packet path's ceiling this campaign is measured against
/// (cluster_scale: 256 jobs x 16 flows).
constexpr std::int64_t kPacketCeiling = 4096;
constexpr std::int64_t kTransferFloor = 100 * kPacketCeiling;  // 409,600.
/// Completion floor of the poisson-1m point (full mode, default --flows).
constexpr std::int64_t kMillionFloor = 1'000'000;
/// Default arrival budget of poisson-1m: 16,000 flows/s for 63 s.
constexpr std::int64_t kDefaultFlows = 1'008'000;

struct RunResult {
  std::string name;
  std::int64_t transfers = 0;  ///< Messages posted.
  std::int64_t completed = 0;
  int shards = 1;
  double sim_s = 0.0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  std::int64_t recomputes = 0;
  std::int64_t full_recomputes = 0;
  std::int64_t waterfill_rounds = 0;
  std::int64_t waterfill_channels = 0;
  std::int64_t frozen_skips = 0;
  std::int64_t dirty_links = 0;
  std::int64_t heap_updates = 0;
  double p99_fct_s = 0.0;  ///< 0 when the scenario has no FCT records.
  double rss_mb = 0.0;        ///< Process high-water mark at record time.
  double rss_delta_mb = 0.0;  ///< High-water growth across this run.
  int matched = -1;  ///< Sharded sanity: 1 = identical to serial; -1 = n/a.
};

void print_result(const RunResult& r) {
  const double tps =
      r.wall_s > 0.0 ? static_cast<double>(r.completed) / r.wall_s : 0.0;
  const double eps =
      r.wall_s > 0.0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
  // fills_per_transfer is the gated work metric: channel-rate freezes the
  // solver performed per completed transfer. The old global waterfill paid
  // (3 recomputes/transfer) x (all busy channels); the dirty-set recompute
  // pays only the affected closure.
  const double fpt = r.completed > 0
                         ? static_cast<double>(r.waterfill_channels) /
                               static_cast<double>(r.completed)
                         : 0.0;
  std::printf("RESULT name=%s transfers=%" PRId64 " completed=%" PRId64
              " shards=%d sim_s=%.3f events=%" PRIu64 " wall_s=%.4f "
              "transfers_per_sec=%.1f events_per_sec=%.1f recomputes=%" PRId64
              " full_recomputes=%" PRId64 " waterfill_rounds=%" PRId64
              " waterfill_channels=%" PRId64 " fills_per_transfer=%.3f"
              " frozen_skips=%" PRId64 " dirty_links=%" PRId64
              " heap_updates=%" PRId64
              " p99_fct_s=%.5f peak_rss_mb=%.1f rss_delta_mb=%.1f",
              r.name.c_str(), r.transfers, r.completed, r.shards, r.sim_s,
              r.events, r.wall_s, tps, eps, r.recomputes, r.full_recomputes,
              r.waterfill_rounds, r.waterfill_channels, fpt, r.frozen_skips,
              r.dirty_links, r.heap_updates, r.p99_fct_s, r.rss_mb,
              r.rss_delta_mb);
  if (r.matched >= 0) std::printf(" matched=%d", r.matched);
  std::printf("\n");
  std::fflush(stdout);
}

/// Reads the solver counters back out of the telemetry registry's
/// "flowsim/..." metric group — the same consolidated path a serving
/// deployment would scrape — rather than poking the stats struct directly.
void fill_solver_counters(RunResult& r, const flowsim::FlowSimulator& fs) {
  telemetry::MetricRegistry reg;
  telemetry::collect_flowsim(reg, "flowsim", fs.stats());
  r.recomputes = reg.counter("flowsim/recomputes").value();
  r.full_recomputes = reg.counter("flowsim/full_recomputes").value();
  r.waterfill_rounds = reg.counter("flowsim/waterfill_rounds").value();
  r.waterfill_channels = reg.counter("flowsim/waterfill_channels").value();
  r.frozen_skips = reg.counter("flowsim/frozen_skips").value();
  r.dirty_links = reg.counter("flowsim/dirty_links").value();
  r.heap_updates = reg.counter("flowsim/heap_updates").value();
  r.transfers = reg.counter("flowsim/messages_posted").value();
  r.completed = reg.counter("flowsim/messages_completed").value();
}

/// The cluster_scale leaf-spine fabric: 16 racks x 16 hosts, 4 spines.
net::LeafSpine make_fabric(sim::Simulator& sim) {
  net::LeafSpineConfig cfg;
  cfg.racks = 16;
  cfg.hosts_per_rack = 16;
  cfg.spines = 4;
  cfg.host_rate_bps = 4e9;
  cfg.fabric_rate_bps = 1e9;
  return net::make_leaf_spine(sim, cfg);
}

std::vector<net::Host*> all_hosts(const net::LeafSpine& ls) {
  std::vector<net::Host*> hosts;
  for (const auto& rack : ls.racks) {
    hosts.insert(hosts.end(), rack.begin(), rack.end());
  }
  return hosts;
}

struct PoissonSpec {
  std::string name;
  double flows_per_second = 8000.0;
  int seconds = 60;
  int shards = 1;       ///< Recorded; > 1 only meaningful with sharded.
  bool sharded = false; ///< Execute under pdes::ShardedRunner (cooperative).
};

/// Poisson/Pareto matrix over the whole fabric.
RunResult run_poisson(const PoissonSpec& spec,
                      std::vector<double>* fcts_out = nullptr) {
  bench::RssProbe rss = bench::RssProbe::begin();
  sim::Simulator sim;
  net::LeafSpine ls = make_fabric(sim);
  flowsim::FlowSimulator fs(sim, *ls.topology);
  workload::Cluster cluster(sim);
  cluster.set_backend(&fs);

  // The sharded variant partitions the fabric exactly like cluster_scale
  // --shards. The fluid backend posts no link deliveries, so no event ever
  // crosses a shard cut: the arrival timer, the drain-heap timer and every
  // completion run in shard 0 under the canonical (when,key) order, and the
  // runner's conservative synchronization only advances the idle shards'
  // clocks. Composing is the point being proven — the output must be
  // byte-identical to the serial twin.
  std::unique_ptr<pdes::ShardedRunner> runner;
  pdes::Partition part;
  if (spec.sharded) {
    pdes::PartitionOptions popts;
    popts.shards = spec.shards;
    part = pdes::partition_topology(*ls.topology, popts);
    sim.configure_shards(part.shards);
    runner = std::make_unique<pdes::ShardedRunner>(
        sim, *ls.topology, part, pdes::ShardedRunner::Mode::kCooperative);
  }

  traffic::TrafficSource source(
      sim, cluster, all_hosts(ls),
      traffic::SourceOptions{[] { return std::make_unique<tcp::RenoCC>(); },
                             {},
                             {}});
  traffic::TrafficConfig tc;
  tc.pattern = traffic::Pattern::kPoisson;
  tc.size_dist = traffic::SizeDist::kPareto;
  tc.mean_bytes = 40'000;
  tc.flows_per_second = spec.flows_per_second;
  tc.start = 0;
  tc.stop = sim::seconds(spec.seconds);
  tc.seed = 31;
  source.install(tc);

  const sim::SimTime horizon = tc.stop + sim::seconds(5);
  const auto t0 = std::chrono::steady_clock::now();
  if (runner != nullptr) {
    runner->run_until(horizon);
  } else {
    sim.run_until(horizon);
  }
  const auto t1 = std::chrono::steady_clock::now();

  rss.end();
  RunResult r;
  r.name = spec.name;
  fill_solver_counters(r, fs);
  r.shards = spec.shards;
  r.sim_s = sim::to_seconds(horizon);
  r.events = sim.events_executed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.p99_fct_s =
      analysis::fct_stats(source.completed_fcts_seconds(), source.open())
          .p99_s;
  r.rss_mb = rss.after_mb;
  r.rss_delta_mb = rss.delta_mb();
  if (fcts_out != nullptr) *fcts_out = source.completed_fcts_seconds();
  return r;
}

/// MLTCP training jobs on the fabric: 256 jobs x 4 flows, enough iterations
/// that the weighted-allocation path carries >= 100k messages in the full
/// run. Placement mirrors cluster_scale (rack r -> rack r+1 round-robin).
RunResult run_training(bool quick, int shards) {
  bench::RssProbe rss = bench::RssProbe::begin();
  sim::Simulator sim;
  net::LeafSpine ls = make_fabric(sim);
  flowsim::FlowSimulator fs(sim, *ls.topology);
  workload::Cluster cluster(sim);
  cluster.set_backend(&fs);

  const int n_jobs = 256;
  const int flows_per_job = 4;
  const int iterations = quick ? 10 : 100;
  const int racks = static_cast<int>(ls.racks.size());
  const int hosts_per_rack = static_cast<int>(ls.racks[0].size());
  for (int j = 0; j < n_jobs; ++j) {
    const int src_rack = j % racks;
    const int dst_rack = (src_rack + 1) % racks;
    const int base_host = (j / racks) % hosts_per_rack;
    workload::JobSpec spec;
    spec.name = "job" + std::to_string(j);
    for (int f = 0; f < flows_per_job; ++f) {
      const int h = (base_host + f) % hosts_per_rack;
      spec.flows.push_back(
          workload::FlowSpec{ls.racks[src_rack][h], ls.racks[dst_rack][h],
                             500'000});
    }
    spec.compute_time = sim::milliseconds(50);
    spec.max_iterations = iterations;
    spec.start_time = sim::milliseconds(5 * (j % 64));
    spec.cc = core::mltcp_reno_factory();
    cluster.add_job(spec);
  }
  cluster.start_all();

  const sim::SimTime horizon = sim::seconds(quick ? 40 : 400);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  const auto t1 = std::chrono::steady_clock::now();

  rss.end();
  RunResult r;
  r.name = "training";
  fill_solver_counters(r, fs);
  r.shards = shards;
  r.sim_s = sim::to_seconds(horizon);
  r.events = sim.events_executed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.rss_mb = rss.after_mb;
  r.rss_delta_mb = rss.delta_mb();
  return r;
}

/// Serial twin vs. sharded run of the same quick-scale poisson matrix;
/// returns the sharded RunResult with matched=1 iff transfers, completions,
/// solver counters and the full FCT vector are bit-identical.
RunResult run_sharded_sanity(int shards) {
  PoissonSpec serial_spec;
  serial_spec.name = "poisson-sharded";
  serial_spec.flows_per_second = 8000.0;
  serial_spec.seconds = 6;
  std::vector<double> serial_fcts;
  const RunResult serial = run_poisson(serial_spec, &serial_fcts);

  PoissonSpec sharded_spec = serial_spec;
  sharded_spec.shards = shards;
  sharded_spec.sharded = true;
  std::vector<double> sharded_fcts;
  RunResult r = run_poisson(sharded_spec, &sharded_fcts);

  const bool matched =
      serial.transfers == r.transfers && serial.completed == r.completed &&
      serial.recomputes == r.recomputes &&
      serial.waterfill_rounds == r.waterfill_rounds &&
      serial.waterfill_channels == r.waterfill_channels &&
      serial_fcts.size() == sharded_fcts.size() &&
      std::equal(serial_fcts.begin(), serial_fcts.end(),
                 sharded_fcts.begin());
  r.matched = matched ? 1 : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int shards = pdes::shards_from_env();
  std::int64_t flows = kDefaultFlows;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::max(1, std::atoi(argv[i] + 9));
    }
    if (std::strncmp(argv[i], "--flows=", 8) == 0) {
      flows = std::max<std::int64_t>(1, std::atoll(argv[i] + 8));
    }
  }
  shards = std::max(2, shards);  // The sanity point needs a real partition.
  bench::print_header(quick ? "flowsim scale (quick)" : "flowsim scale");
  std::printf("packet-path ceiling (cluster_scale): %" PRId64
              " flows; poisson floor: %" PRId64 " transfers (100x); "
              "poisson-1m floor: %" PRId64 " completed\n",
              kPacketCeiling, kTransferFloor, kMillionFloor);

  // poisson-1m first: the kernel RSS high-water mark only grows, so only
  // the biggest point measured first gets an honest rss_delta_mb.
  PoissonSpec million;
  million.name = "poisson-1m";
  million.flows_per_second = 16000.0;
  million.seconds =
      quick ? 6
            : static_cast<int>((flows + 15'999) / 16'000);  // ceil to budget.

  std::vector<RunResult> results;
  results.push_back(run_poisson(million));
  PoissonSpec base;
  base.name = "poisson";
  base.flows_per_second = 8000.0;
  base.seconds = quick ? 6 : 60;
  results.push_back(run_poisson(base));
  results.push_back(run_training(quick, 1));
  results.push_back(run_sharded_sanity(shards));
  for (const RunResult& r : results) print_result(r);

  auto csv = bench::open_csv(
      "flowsim_scale",
      {"name", "transfers", "completed", "shards", "sim_s", "events",
       "wall_s", "recomputes", "full_recomputes", "waterfill_rounds",
       "waterfill_channels", "frozen_skips", "dirty_links", "heap_updates",
       "p99_fct_s", "peak_rss_mb", "rss_delta_mb", "matched"});
  for (const RunResult& r : results) {
    csv->row({r.name, std::to_string(r.transfers), std::to_string(r.completed),
              std::to_string(r.shards), std::to_string(r.sim_s),
              std::to_string(r.events), std::to_string(r.wall_s),
              std::to_string(r.recomputes), std::to_string(r.full_recomputes),
              std::to_string(r.waterfill_rounds),
              std::to_string(r.waterfill_channels),
              std::to_string(r.frozen_skips), std::to_string(r.dirty_links),
              std::to_string(r.heap_updates), std::to_string(r.p99_fct_s),
              std::to_string(r.rss_mb), std::to_string(r.rss_delta_mb),
              std::to_string(r.matched)});
  }

  bool failed = false;
  const RunResult& sharded = results.back();
  if (sharded.matched != 1) {
    std::printf("FLOWSIM SHARDED SANITY FAILED: sharded run diverged from "
                "the serial twin\n");
    failed = true;
  }
  if (!quick) {
    const std::int64_t million_done = results[0].completed;
    const std::int64_t completed = results[1].completed;
    std::printf("\nscale ratio: %" PRId64 " completed transfers = %.0fx the "
                "packet ceiling (poisson-1m: %" PRId64 ")\n",
                completed,
                static_cast<double>(completed) /
                    static_cast<double>(kPacketCeiling),
                million_done);
    if (completed < kTransferFloor) {
      std::printf("FLOWSIM SCALE FAILED: %" PRId64 " < %" PRId64
                  " transfers\n",
                  completed, kTransferFloor);
      failed = true;
    }
    if (flows >= kDefaultFlows && million_done < kMillionFloor) {
      std::printf("FLOWSIM 1M FAILED: %" PRId64 " < %" PRId64
                  " completed transfers\n",
                  million_done, kMillionFloor);
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
