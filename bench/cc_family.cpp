// §3.1/§6 claim: MLTCP is a technique for a *family* of congestion control
// algorithms — "other congestion control schemes are augmented in a similar
// way". Three GPT-2 jobs share the bottleneck under Reno, CUBIC and DCTCP,
// each with and without the MLTCP window gain. Every MLTCP variant should
// reach the interleaved (ideal) iteration time; the plain variants stay
// congested.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"

namespace {

using namespace mltcp;

constexpr int kJobs = 3;
constexpr int kIterations = 110;
constexpr double kNoise = 0.002;

struct Variant {
  std::string name;
  tcp::CcFactory cc;
  bool ecn_bottleneck = false;
};

struct Outcome {
  double mean = 0.0;
  double tail = 0.0;
  double overlap_tail = 0.0;
};

Outcome run(const Variant& v) {
  bench::ScenarioConfig scenario;
  if (v.ecn_bottleneck) {
    // DCTCP marking threshold: ~30 KB at 1 Gbps.
    scenario.bottleneck_queue = net::make_ecn_factory(256 * 1500, 20 * 1500);
  }
  auto exp = bench::make_experiment(scenario);
  const workload::ModelProfile gpt2 = workload::gpt2_profile();

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < kJobs; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIterations;
    opts.noise_stddev_seconds = kNoise;
    jobs.push_back(bench::add_profile_job(*exp, gpt2, i, v.cc, opts));
  }
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(380));

  Outcome out;
  std::vector<double> tails;
  std::vector<double> all;
  for (workload::Job* job : jobs) {
    const auto times = job->iteration_times_seconds();
    tails.push_back(analysis::tail_mean(times, 10));
    for (double t : times) all.push_back(t);
  }
  out.mean = analysis::mean(all);
  out.tail = analysis::mean(tails);

  sim::SimTime end = 0;
  for (const workload::Job* job : jobs) {
    if (!job->iterations().empty()) {
      end = std::max(end, job->iterations().back().comm_end);
    }
  }
  std::vector<const workload::Job*> cjobs(jobs.begin(), jobs.end());
  out.overlap_tail =
      analysis::comm_overlap_seconds(cjobs, end - sim::seconds(15), end);
  return out;
}

}  // namespace

int main() {
  std::printf("MLTCP across the congestion-control family (§3.1, §6): three "
              "GPT-2 jobs per variant.\n");

  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const core::MltcpConfig cfg = bench::mltcp_config_for(gpt2, 1e9, 4);

  std::vector<Variant> variants;
  variants.push_back({"reno", core::reno_factory(), false});
  variants.push_back({"mltcp-reno", core::mltcp_reno_factory(cfg), false});
  variants.push_back({"cubic", core::cubic_factory(), false});
  variants.push_back({"mltcp-cubic", core::mltcp_cubic_factory(cfg), false});
  variants.push_back({"dctcp", core::dctcp_factory(), true});
  variants.push_back({"mltcp-dctcp", core::mltcp_dctcp_factory(cfg), true});
  variants.push_back({"swift", core::swift_factory(), false});
  variants.push_back({"mltcp-swift", core::mltcp_swift_factory(cfg), false});

  const double ideal =
      sim::to_seconds(gpt2.ideal_iteration_time);
  std::printf("\n%-14s %12s %16s %18s\n", "variant", "mean_iter_s",
              "converged_iter_s", "tail_overlap_s");
  for (const auto& v : variants) {
    const Outcome o = run(v);
    const char* verdict = o.tail < ideal * 1.08   ? "interleaved"
                          : o.tail < ideal * 1.15 ? "partially interleaved"
                                                  : "congested";
    std::printf("%-14s %12.3f %16.3f %18.3f   %s\n", v.name.c_str(), o.mean,
                o.tail, o.overlap_tail, verdict);
  }
  std::printf("\nideal iteration time: %.3fs. Expected shape: every mltcp-* "
              "variant interleaves\n(mltcp-cubic only partially: CUBIC's "
              "W_max memory works against the gain asymmetry,\nso it "
              "converges slowest and is most easily re-scattered by noise), "
              "every plain variant\nstays congested.\n",
              ideal);
  return 0;
}
