// §3.1/§6 claim: MLTCP is a technique for a *family* of congestion control
// algorithms — "other congestion control schemes are augmented in a similar
// way". Three GPT-2 jobs share the bottleneck under Reno, CUBIC, DCTCP,
// Swift, BBR and Gemini, each with and without the MLTCP gain. Every MLTCP
// variant should reach the interleaved (ideal) iteration time; the plain
// variants stay congested. BBR and Gemini are the rate-based members of the
// family: their augmentation seam is the pacing-gain / additive-increase
// term rather than a window step, which is exactly what §6's agnosticism
// argument predicts should still interleave.
//
// Usage:
//   cc_family          full matrix (110 iterations per job)
//   cc_family --quick  CI smoke variant: fewer iterations, and the run
//                      fails (exit 1) unless every MLTCP variant beats its
//                      plain counterpart's converged tail.
//
// Any job that ends a run with an empty iteration record is a truncated
// run: its tail would silently read as 0 and make the variant look ideal,
// so the bench fails loudly instead (same policy as noise_error_bound).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "runner/campaign.hpp"

namespace {

using namespace mltcp;

constexpr int kJobs = 3;
constexpr double kNoise = 0.002;

struct Variant {
  std::string name;
  tcp::CcFactory cc;
  bool ecn_bottleneck = false;
};

struct Outcome {
  double mean = 0.0;
  double tail = 0.0;
  double overlap_tail = 0.0;
  int min_iterations = 0;  ///< Fewest completed iterations across the jobs.
  bool truncated = false;  ///< A job finished with no iterations at all.
};

Outcome run(const Variant& v, bool quick) {
  const int iterations = quick ? 30 : 110;
  const sim::SimTime horizon = sim::seconds(quick ? 140 : 420);

  bench::ScenarioConfig scenario;
  if (v.ecn_bottleneck) {
    // DCTCP/Gemini marking threshold: ~30 KB at 1 Gbps.
    scenario.bottleneck_queue = net::make_ecn_factory(256 * 1500, 20 * 1500);
  }
  auto exp = bench::make_experiment(scenario);
  const workload::ModelProfile gpt2 = workload::gpt2_profile();

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < kJobs; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = iterations;
    opts.noise_stddev_seconds = kNoise;
    jobs.push_back(bench::add_profile_job(*exp, gpt2, i, v.cc, opts));
  }
  exp->cluster->start_all();
  exp->sim.run_until(horizon);

  Outcome out;
  out.min_iterations = iterations;
  std::vector<double> tails;
  std::vector<double> all;
  for (workload::Job* job : jobs) {
    const auto times = job->iteration_times_seconds();
    if (times.empty()) out.truncated = true;
    out.min_iterations =
        std::min(out.min_iterations, static_cast<int>(times.size()));
    tails.push_back(analysis::tail_mean(times, 10));
    for (double t : times) all.push_back(t);
  }
  out.mean = analysis::mean(all);
  out.tail = analysis::mean(tails);

  sim::SimTime end = 0;
  for (const workload::Job* job : jobs) {
    if (!job->iterations().empty()) {
      end = std::max(end, job->iterations().back().comm_end);
    }
  }
  std::vector<const workload::Job*> cjobs(jobs.begin(), jobs.end());
  out.overlap_tail =
      analysis::comm_overlap_seconds(cjobs, end - sim::seconds(15), end);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::printf("MLTCP across the congestion-control family (§3.1, §6): three "
              "GPT-2 jobs per variant%s.\n",
              quick ? " (quick)" : "");

  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const core::MltcpConfig cfg = bench::mltcp_config_for(gpt2, 1e9, 4);

  // Ordered as (plain, mltcp) pairs: the quick gate compares index 2k+1
  // against 2k.
  std::vector<Variant> variants;
  variants.push_back({"reno", core::reno_factory(), false});
  variants.push_back({"mltcp-reno", core::mltcp_reno_factory(cfg), false});
  variants.push_back({"cubic", core::cubic_factory(), false});
  variants.push_back({"mltcp-cubic", core::mltcp_cubic_factory(cfg), false});
  variants.push_back({"dctcp", core::dctcp_factory(), true});
  variants.push_back({"mltcp-dctcp", core::mltcp_dctcp_factory(cfg), true});
  variants.push_back({"swift", core::swift_factory(), false});
  variants.push_back({"mltcp-swift", core::mltcp_swift_factory(cfg), false});
  variants.push_back({"bbr", core::bbr_factory(), false});
  variants.push_back({"mltcp-bbr", core::mltcp_bbr_factory(cfg), false});
  variants.push_back({"gemini", core::gemini_factory(), true});
  variants.push_back({"mltcp-gemini", core::mltcp_gemini_factory(cfg), true});

  // Independent worlds: shard the matrix across threads, print in order.
  const std::vector<Outcome> results = runner::run_campaign<Variant, Outcome>(
      variants,
      [quick](const Variant& v, std::size_t) { return run(v, quick); },
      bench::campaign_options());

  const double ideal = sim::to_seconds(gpt2.ideal_iteration_time);
  bool truncated = false;
  std::printf("\n%-14s %12s %16s %18s %6s\n", "variant", "mean_iter_s",
              "converged_iter_s", "tail_overlap_s", "iters");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Outcome& o = results[i];
    const char* verdict = o.truncated              ? "TRUNCATED"
                          : o.tail < ideal * 1.08  ? "interleaved"
                          : o.tail < ideal * 1.15  ? "partially interleaved"
                                                   : "congested";
    std::printf("%-14s %12.3f %16.3f %18.3f %6d   %s\n",
                variants[i].name.c_str(), o.mean, o.tail, o.overlap_tail,
                o.min_iterations, verdict);
    truncated = truncated || o.truncated;
  }
  std::printf("\nideal iteration time: %.3fs. Expected shape: every mltcp-* "
              "variant ends interleaved;\nevery plain variant stays "
              "off-ideal (congested, or at best partially interleaved\nwhen "
              "noise hands it a lucky tail). Slowest convergers: "
              "mltcp-cubic (W_max memory\nworks against the gain asymmetry) "
              "and mltcp-bbr (its yield is estimate-coupled,\nso one job "
              "lags as a straggler before locking in — converged tail is "
              "ideal but it\nneeds the most iterations).\n",
              ideal);

  if (truncated) {
    std::fprintf(stderr,
                 "FATAL: at least one job recorded zero iterations — its "
                 "tail mean silently reads as 0 and fakes convergence. "
                 "Raise the horizon or lower the iteration count.\n");
    return 1;
  }

  if (quick) {
    // CI gate: the family claim in its weakest testable form — each MLTCP
    // variant must at least beat its own plain counterpart's converged
    // tail (full convergence to ideal needs the long run).
    int failures = 0;
    for (std::size_t i = 0; i + 1 < variants.size(); i += 2) {
      const double plain = results[i].tail;
      const double mltcp = results[i + 1].tail;
      if (!(mltcp < plain)) {
        std::fprintf(stderr, "GATE FAIL: %s tail %.3fs !< %s tail %.3fs\n",
                     variants[i + 1].name.c_str(), mltcp,
                     variants[i].name.c_str(), plain);
        ++failures;
      }
    }
    if (failures > 0) return 1;
    std::printf("\nquick gate: every mltcp variant beat its plain "
                "counterpart's tail.\n");
  }
  return 0;
}
