// Figure 3: three GPT-2 jobs run MLTCP-Reno under each of the six candidate
// bandwidth aggressiveness functions. The increasing functions F1..F4 drive
// the jobs into an interleaved state (iteration time decays to the ideal
// within a few tens of iterations); the decreasing functions F5, F6 never
// improve.

#include <cstdio>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "core/aggressiveness.hpp"

namespace {

using namespace mltcp;

constexpr int kJobs = 3;
constexpr int kIterations = 70;

std::vector<double> run_function(int f_index) {
  auto exp = bench::make_experiment();
  const workload::ModelProfile gpt2 = workload::gpt2_profile();

  std::shared_ptr<const core::AggressivenessFunction> f =
      core::make_figure3_function(f_index);

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < kJobs; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIterations;
    const core::MltcpConfig cfg = bench::mltcp_config_for(
        gpt2, exp->scenario.bottleneck_rate_bps, opts.num_flows);
    jobs.push_back(bench::add_profile_job(
        *exp, gpt2, i, core::mltcp_reno_factory(cfg, f), opts));
  }
  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(240));

  // Average iteration time across jobs, per iteration index.
  std::vector<double> avg(kIterations, 0.0);
  int completed = kIterations;
  for (workload::Job* job : jobs) {
    const auto times = job->iteration_times_seconds();
    completed = std::min<int>(completed, static_cast<int>(times.size()));
    for (int i = 0; i < static_cast<int>(times.size()) && i < kIterations;
         ++i) {
      avg[i] += times[i] / kJobs;
    }
  }
  avg.resize(completed);
  return avg;
}

}  // namespace

int main() {
  std::printf("Reproduces Figure 3 of MLTCP (HotNets'24): average iteration\n"
              "time vs iteration number for aggressiveness functions F1..F6\n"
              "(three GPT-2 jobs, MLTCP-Reno).\n");

  std::vector<std::vector<double>> series;
  for (int f = 1; f <= 6; ++f) {
    series.push_back(run_function(f));
    const auto check =
        core::check_aggressiveness(*core::make_figure3_function(f));
    std::printf("F%d: range [%.2f, %.2f], monotone-nondecreasing=%s\n", f,
                check.min_value, check.max_value,
                check.derivative_non_negative ? "yes" : "no");
  }

  bench::print_header("Figure 3: avg iteration time (ms) per iteration");
  auto csv = bench::open_csv(
      "fig3_aggressiveness", {"iter", "F1", "F2", "F3", "F4", "F5", "F6"});
  std::printf("iter");
  for (int f = 1; f <= 6; ++f) std::printf(",F%d", f);
  std::printf("\n");
  for (int i = 0; i < kIterations; ++i) {
    std::printf("%d", i + 1);
    std::vector<double> row = {static_cast<double>(i + 1)};
    for (const auto& s : series) {
      if (i < static_cast<int>(s.size())) {
        std::printf(",%.0f", s[i] * 1000.0);
        row.push_back(s[i] * 1000.0);
      } else {
        std::printf(",");
        row.push_back(0.0);
      }
    }
    csv->row(row);
    std::printf("\n");
  }

  bench::print_header("Converged (last-10 mean, ms) per function");
  const double ideal_ms =
      sim::to_milliseconds(workload::gpt2_profile().ideal_iteration_time);
  for (int f = 1; f <= 6; ++f) {
    const double tail = analysis::tail_mean(series[f - 1], 10) * 1000.0;
    std::printf("F%d: %.0f ms (ideal %.0f ms) -> %s\n", f, tail, ideal_ms,
                tail < ideal_ms * 1.08 ? "interleaved" : "NOT interleaved");
  }
  std::printf("\nExpected shape: F1..F4 reach the ideal; F5, F6 do not.\n");
  return 0;
}
