// Telemetry overhead microbenchmarks (google-benchmark): the tracing layer
// promises near-zero cost when disabled. Each benchmark pushes 1 MB through
// a dumbbell — the same workload as BM_PacketTransferOneMegabyte — under
// three telemetry configurations:
//
//   Baseline          no tracer attached to the simulator at all
//   DisabledCategory  tracer attached, but the hot kTcpAck category masked
//                     off (the common production setup: loss events on,
//                     per-ACK counters off)
//   EnabledRing       kTcpAck enabled into a 4096-event flight recorder
//
// Acceptance: DisabledCategory within ~2% of Baseline. EnabledRing shows
// the real cost of per-ACK cwnd tracking.
//
//   ./build/bench/telemetry_overhead --benchmark_min_time=2s

#include <benchmark/benchmark.h>

#include <memory>

#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "tcp/reno.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/tracer.hpp"

namespace {

using namespace mltcp;

void transfer_one_megabyte(telemetry::Tracer* tracer) {
  sim::Simulator sim;
  if (tracer != nullptr) sim.set_tracer(tracer);
  net::DumbbellConfig cfg;
  cfg.hosts_per_side = 1;
  auto d = net::make_dumbbell(sim, cfg);
  tcp::TcpFlow flow(sim, *d.left[0], *d.right[0], 1,
                    std::make_unique<tcp::RenoCC>());
  bool done = false;
  flow.send_message(1'000'000, [&](sim::SimTime) { done = true; });
  sim.run();
  benchmark::DoNotOptimize(done);
}

void BM_TransferBaseline(benchmark::State& state) {
  for (auto _ : state) transfer_one_megabyte(nullptr);
}
BENCHMARK(BM_TransferBaseline);

void BM_TransferTracerDisabledCategory(benchmark::State& state) {
  // Loss diagnostics on, the per-ACK categories off: every emit site on the
  // ACK path still runs its tracer_for() gate, which must stay ~free.
  telemetry::Tracer tracer(telemetry::Tracer::Config{
      telemetry::Category::kTcp | telemetry::Category::kQueue, 0});
  for (auto _ : state) transfer_one_megabyte(&tracer);
}
BENCHMARK(BM_TransferTracerDisabledCategory);

void BM_TransferTracerEnabledRing(benchmark::State& state) {
  telemetry::Tracer tracer(telemetry::Tracer::Config{
      telemetry::kAllCategories, 4096});
  for (auto _ : state) {
    transfer_one_megabyte(&tracer);
    state.PauseTiming();
    tracer.clear_ring();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_TransferTracerEnabledRing);

}  // namespace
