// Fault recovery: MLTCP re-converging after mid-training faults. Two GPT-2
// jobs slide into the interleaved schedule as in Figure 6; at t=20s a
// scripted scenario injects a fault and we measure how the schedule
// re-forms. Three variants run as one campaign (scenarios are per-run Spec
// config, so the sweep shards across MLTCP_THREADS and the CSV stays
// byte-identical at any thread count):
//
//   baseline  — empty scenario (the engine schedules nothing at all).
//   flap      — the bottleneck cable is cut for 150 ms (both directions
//               down, incremental route repair, capped-RTO probing brings
//               the flows back after the heal).
//   churn     — the same flap, plus a third GPT-2 job arriving mid-run on a
//               fresh host pair and a 2 MB legacy background burst.
//
// Acceptance (ISSUE 5): after the fault clears, both original jobs'
// converged tail iteration times must be within 5% of the baseline
// variant's tails — the random walk finds the interleaved schedule again.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "bench_common.hpp"
#include "runner/trace.hpp"
#include "scenario/engine.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace mltcp;

constexpr int kIterations = 40;
constexpr double kFaultAtS = 20.0;   ///< well after initial convergence
constexpr double kFlapS = 0.150;     ///< blackout length (≫ typical RTO)

struct Spec {
  std::string name;
  scenario::Scenario scenario;
};

struct VariantResult {
  int applied = 0;         ///< scenario events replayed
  int arrivals_done = 0;   ///< iterations completed by the mid-run arrival
  double tail0 = 0.0;      ///< converged iteration time, job 0
  double tail1 = 0.0;      ///< converged iteration time, job 1
  int reconverged_by = 0;  ///< first iteration with both within 5% of ideal
};

VariantResult run(const Spec& spec, std::size_t run_index,
                  runner::CsvSink& csv) {
  auto exp = bench::make_experiment();
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const double period = sim::to_seconds(gpt2.ideal_iteration_time);

  std::vector<workload::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    bench::ProfileJobOptions opts;
    opts.max_iterations = kIterations;
    const core::MltcpConfig cfg = bench::mltcp_config_for(
        gpt2, exp->scenario.bottleneck_rate_bps, opts.num_flows);
    jobs.push_back(bench::add_profile_job(
        *exp, gpt2, i, core::mltcp_reno_factory(cfg), opts));
  }

  // The fault category lands in the same Perfetto trace as the job phases,
  // so the flap and the recovery are visible side by side.
  runner::RunTrace trace(
      runner::trace_path(bench::results_dir(), "fault_recovery", run_index),
      telemetry::Category::kJob | telemetry::Category::kTcp |
          telemetry::Category::kFault);
  trace.attach(exp->sim);

  scenario::ScenarioEngine engine(exp->sim, *exp->dumbbell.topology,
                                  *exp->cluster);
  engine.install(spec.scenario);

  exp->cluster->start_all();
  exp->sim.run_until(sim::seconds(100));
  trace.finish();

  VariantResult res;
  res.applied = engine.applied_events();
  if (workload::Job* late = exp->cluster->find_job("late")) {
    res.arrivals_done = late->completed_iterations();
  }

  const auto& r0 = jobs[0]->iterations();
  const auto& r1 = jobs[1]->iterations();
  const std::size_t n = std::min(r0.size(), r1.size());
  int last_bad = -1;
  for (std::size_t i = 0; i < n; ++i) {
    double offset = std::fmod(
        sim::to_seconds(r1[i].comm_start - r0[i].comm_start), period);
    if (offset < 0) offset += period;
    const double it0 = sim::to_seconds(r0[i].iter_end - r0[i].comm_start);
    const double it1 = sim::to_seconds(r1[i].iter_end - r1[i].comm_start);
    csv.append(run_index, std::vector<double>{static_cast<double>(run_index),
                                              static_cast<double>(i), offset,
                                              it0, it1});
    if (it0 > period * 1.05 || it1 > period * 1.05) {
      last_bad = static_cast<int>(i);
    }
  }
  res.reconverged_by = last_bad + 1;
  res.tail0 = analysis::tail_mean(jobs[0]->iteration_times_seconds(), 5);
  res.tail1 = analysis::tail_mean(jobs[1]->iteration_times_seconds(), 5);
  return res;
}

/// The churn variant's arrival: a third GPT-2 job on host pair 2 (the two
/// resident jobs occupy pairs 0 and 1). Built inside the run via the engine
/// context — FlowSpecs hold Host pointers, so construction must resolve
/// against each run's own world, never the spec-building thread's.
void spawn_late_job(scenario::EngineContext& ctx) {
  const workload::ModelProfile gpt2 = workload::gpt2_profile();
  const bench::ScenarioConfig defaults;  // campaign uses the stock dumbbell
  const std::int64_t total =
      workload::comm_bytes(gpt2, defaults.bottleneck_rate_bps);
  constexpr int kFlows = 4;
  const core::MltcpConfig cfg =
      bench::mltcp_config_for(gpt2, defaults.bottleneck_rate_bps, kFlows);

  // hosts() interleaves sides (hL0, hR0, hL1, ...): pair i = (2i, 2i+1).
  const auto& hosts = ctx.topology().hosts();
  workload::JobSpec spec;
  spec.name = "late";
  for (int f = 0; f < kFlows; ++f) {
    spec.flows.push_back(
        workload::FlowSpec{hosts.at(4), hosts.at(5), total / kFlows});
  }
  spec.compute_time = workload::compute_time(gpt2);
  spec.start_time = ctx.simulator().now();
  spec.max_iterations = 8;
  spec.cc = core::mltcp_reno_factory(cfg);
  ctx.cluster().add_job(spec)->start();
}

}  // namespace

int main() {
  std::printf("Fault recovery: MLTCP re-converging after a mid-training "
              "link flap and job churn.\n");

  const double period =
      sim::to_seconds(workload::gpt2_profile().ideal_iteration_time);

  std::vector<Spec> specs;
  specs.push_back({"baseline", scenario::Scenario{}});
  {
    scenario::Scenario flap;
    flap.link_down(sim::from_seconds(kFaultAtS), "swL", "swR")
        .link_up(sim::from_seconds(kFaultAtS + kFlapS), "swL", "swR");
    specs.push_back({"flap", std::move(flap)});
  }
  {
    scenario::Scenario churn;
    churn.link_down(sim::from_seconds(kFaultAtS), "swL", "swR")
        .link_up(sim::from_seconds(kFaultAtS + kFlapS), "swL", "swR")
        .job_arrival(sim::from_seconds(kFaultAtS + 6.0), "late",
                     spawn_late_job)
        .background_burst(sim::from_seconds(kFaultAtS + 10.0), 6, 7,
                          2'000'000);
    specs.push_back({"churn", std::move(churn)});
  }

  runner::CsvSink csv({"variant", "iter", "offset_s", "iter0_s", "iter1_s"});
  const std::vector<VariantResult> results =
      runner::run_campaign<Spec, VariantResult>(
          specs,
          [&csv](const Spec& s, std::size_t i) { return run(s, i, csv); },
          bench::campaign_options());
  bench::write_sink(csv, "fault_recovery");

  bench::print_header("re-convergence after mid-training faults");
  std::printf("variant,events,late_iters,reconverged_by_iter,tail0_s,"
              "tail1_s,vs_baseline_pct\n");
  const double base_tail =
      0.5 * (results[0].tail0 + results[0].tail1);
  bool ok = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const VariantResult& r = results[i];
    const double tail = 0.5 * (r.tail0 + r.tail1);
    const double delta_pct = 100.0 * (tail - base_tail) / base_tail;
    std::printf("%s,%d,%d,%d,%.3f,%.3f,%+.2f%%\n", specs[i].name.c_str(),
                r.applied, r.arrivals_done, r.reconverged_by, r.tail0,
                r.tail1, delta_pct);
    if (std::abs(delta_pct) > 5.0) ok = false;
  }
  std::printf("Expected shape: every variant's converged tails sit within "
              "5%% of baseline (ideal %.1fs) — the schedule re-forms after "
              "the flap and absorbs the churn.\n", period);
  std::printf("fault_recovery: %s\n", ok ? "RECONVERGED" : "DIVERGED");
  return ok ? 0 : 1;
}
